#!/bin/sh
# Differential fuzzer smoke test: 200 seeded random C programs must
# normalize to exactly the points-to sets a tiny reference model
# predicts — zero divergences, zero crashes.  On failure `cla fuzz`
# writes a minimized reproducer and exits 1; promote that file into
# examples/fuzz/ as a regression input.  Wired into `dune runtest`
# (see bench/dune); takes the cla binary as $1.
set -eu

cla=${1:?usage: fuzz_smoke.sh path/to/cla.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

rc=0
"$cla" fuzz --cases 200 --seed 42 -o repro.c >out.txt 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "fuzz_smoke.sh: cla fuzz exited $rc" >&2
  cat out.txt >&2
  [ -f repro.c ] && { echo "--- minimized reproducer ---" >&2; cat repro.c >&2; }
  exit 1
fi
grep -q '0 divergences, 0 crashes' out.txt || {
  echo "fuzz_smoke.sh: missing clean summary line" >&2
  cat out.txt >&2
  exit 1
}

echo "fuzz_smoke.sh: ok"
