#!/bin/sh
# Open-world soundness gate smoke test: the body-deletion stream must
# hold the ⊇ property at every step (exit 0), and --inject-unsound —
# which analyzes the stripped fragments closed-world instead of
# synthesizing havoc — must make the gate fail (exit 1), proving the
# gate is live, not decorative.  Wired into `dune runtest` (see
# bench/dune); takes the bench binary as $1.
set -eu

bench=${1:?usage: openworld_smoke.sh path/to/main.exe}
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

# 1. The gate itself: every deletion step keeps every surviving
#    closed-world fact.
"$bench" openworld >out.txt
grep -q 'openworld: ok' out.txt || {
  echo "openworld_smoke.sh: gate did not report ok" >&2
  cat out.txt >&2
  exit 1
}

# 2. The gate must actually fail when havoc synthesis is skipped.
rc=0
"$bench" --inject-unsound openworld >inject.txt 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "openworld_smoke.sh: --inject-unsound exited $rc, want 1" >&2
  cat inject.txt >&2
  exit 1
fi
grep -q 'openworld: FAIL' inject.txt || {
  echo "openworld_smoke.sh: --inject-unsound exit 1 without a FAIL line" >&2
  cat inject.txt >&2
  exit 1
}

echo "openworld_smoke.sh: ok"
