(* Benchmark harness: regenerates every table and figure of the paper.

   Sections (all run by default; select with command-line flags):

     table2    benchmark characteristics (Table 2)
     table3    field-based analysis results + demand-loading stats (Table 3)
     table4    field-based vs field-independent (Table 4)
     ablation  caching / cycle-elimination ablation (Section 5's ">50K x")
     solvers   pre-transitive vs worklist vs bit-vector vs Steensgaard
     transforms offline variable substitution (reference [21])
     figures   the worked examples (Figures 1, 3, 4)
     bechamel  one Bechamel micro-benchmark per table
     parallel  compile / verify / solve sweep over --jobs=N,N,... x
               --units=N,N,... synthesized compile units (writes
               BENCH_parallel.json v2; -jN bytes and solutions must
               match -j1, solve speedup gated at the largest unit
               count on multi-core hosts; --inject-divergence proves
               the solution gate fires)
     solver    solver micro-bench: sparse/dense/cyclic workloads x every
               solver and Pretrans.config cell, hybrid lval-sets vs the
               sorted-array baseline (writes BENCH_solver.json; any
               divergence from the baseline solution is a hard failure)
     serve     serving sweep: shard count (--shards=N,N,...) x offered
               load (--load=N,N,... concurrent closed-loop clients) over
               an in-process server driven by the Servebench stream;
               client-measured latency percentiles + throughput per cell
               land in BENCH_serve.json (schema cla.bench.serve/v1)
     openworld open-world soundness gate: delete function bodies from a
               complete Genc program in a seeded stream and check the
               havocked analysis keeps every surviving closed-world fact
               (⊇ at every step; --inject-unsound must make it exit 1)
     chaos     self-healing serve gate: freeze a snapshot, boot a sharded
               server from it, and drive the Servebench stream while a
               deterministic fault schedule kills and wedges the solver
               shards mid-flight.  Gates: a corrupt snapshot falls back
               to live solves, a good one answers without a single shard
               solve, zero well-formed queries fail across the faults,
               recovery p99 over the kill windows stays bounded, and the
               supervisor logged the restarts.  Writes BENCH_chaos.json
               (cla.bench.chaos/v1); --inject-no-supervise disables the
               supervisor and must make the gate exit 1.
     incremental delta-solve gate: replay a seeded one-TU edit stream
               (--steps=N, --p-remove=P, --seed=S) through the
               Incremental driver and, at every step, redo the honest
               from-scratch pipeline (every unit recompiled, full link,
               cold solve).  Solution.equal at every step is a hard
               gate; additions must resume the solver; the compile
               cache must score 1 miss / n-1 hits per one-TU edit; and
               the incremental-vs-scratch speedup at the stream's tail
               must beat 1.0.  Writes BENCH_incremental.json (schema
               cla.bench.incremental/v1); --inject-stale checks each
               step against the previous step's solution and must make
               the gate exit 1.

   Every table prints the paper's reported row (p:) next to the measured
   row (m:).  Absolute times are not comparable (the paper used an 800MHz
   Pentium III and hand-tuned C; we run synthetic workloads matched to
   Table 2 on an OCaml implementation) — the *shape* is the claim: which
   configuration wins, by roughly what factor, and where the blowups are.

   Usage:
     dune exec bench/main.exe                 # every section, full scale
     dune exec bench/main.exe -- --quick      # scale the big profiles down
     dune exec bench/main.exe -- table3       # one section
     dune exec bench/main.exe -- --budget=N table3
                # bound retained assignments in core (LRU block eviction)
     dune exec bench/main.exe -- --scale=0.5 solver
                # scale the solver workloads (default 1.0; --quick: 0.25)
     dune exec bench/main.exe -- --check-against=BENCH_solver.json solver
                # warn when a cell regresses > 25% vs a previous run
                # (add --check-hard to turn the warning into exit 1)
*)

open Cla_core
open Cla_workload
module Obs = Cla_obs.Obs
module Span = Cla_obs.Span
module Json = Cla_obs.Json

let quick = ref false
let budget = ref None
let sections = ref []
let jobs_sweep = ref [ 1; 2; 4 ]
let units_sweep = ref []
let serve_shards = ref [ 1; 2; 4 ]
let serve_load = ref [ 2; 8 ]
let solver_scale = ref None
let check_against = ref None
let check_hard = ref false
let inject_divergence = ref false
let inject_unsound = ref false
let inject_no_supervise = ref false
let inject_stale = ref false
let incr_steps = ref 8
let incr_seed = ref 1 (* seed 1's default stream includes a removal step *)
let incr_p_remove = ref 0.2

(* shared "--flag=value" parsing — every sweep used to hand-roll its own
   String.sub prefix dance; these cover them all *)
let chop s prefix =
  let np = String.length prefix and ns = String.length s in
  if ns > np && String.sub s 0 np = prefix then
    Some (String.sub s np (ns - np))
  else None

let has s prefix = chop s prefix <> None

let int_list_arg ?(min = 1) s prefix tgt =
  let body = Option.value ~default:"" (chop s prefix) in
  match List.map int_of_string_opt (String.split_on_char ',' body) with
  | js
    when js <> []
         && List.for_all (function Some j -> j >= min | None -> false) js ->
      tgt := List.map Option.get js
  | _ -> Fmt.epr "bad %s value %S, ignored@." prefix s

let int_arg ?(min = 1) s prefix tgt =
  match int_of_string_opt (Option.value ~default:"" (chop s prefix)) with
  | Some n when n >= min -> tgt := n
  | _ -> Fmt.epr "bad %s value %S, ignored@." prefix s

let float_arg ~lo s prefix tgt =
  match float_of_string_opt (Option.value ~default:"" (chop s prefix)) with
  | Some f when f >= lo -> tgt := f
  | _ -> Fmt.epr "bad %s value %S, ignored@." prefix s

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--check-hard" -> check_hard := true
        | "--inject-divergence" -> inject_divergence := true
        | "--inject-unsound" -> inject_unsound := true
        | "--inject-no-supervise" -> inject_no_supervise := true
        | "--inject-stale" -> inject_stale := true
        | s when has s "--scale=" -> (
            match float_of_string_opt (Option.get (chop s "--scale=")) with
            | Some f when f > 0. -> solver_scale := Some f
            | _ -> Fmt.epr "bad --scale value %S, ignored@." s)
        | s when has s "--check-against=" ->
            check_against := chop s "--check-against="
        | s when has s "--budget=" -> (
            match int_of_string_opt (Option.get (chop s "--budget=")) with
            | Some n when n > 0 -> budget := Some n
            | _ -> Fmt.epr "bad --budget value %S, ignored@." s)
        | s when has s "--units=" -> int_list_arg s "--units=" units_sweep
        | s when has s "--shards=" -> int_list_arg s "--shards=" serve_shards
        | s when has s "--load=" -> int_list_arg s "--load=" serve_load
        | s when has s "--jobs=" -> int_list_arg ~min:0 s "--jobs=" jobs_sweep
        | s when has s "--steps=" -> int_arg s "--steps=" incr_steps
        | s when has s "--seed=" -> int_arg ~min:0 s "--seed=" incr_seed
        | s when has s "--p-remove=" ->
            float_arg ~lo:0. s "--p-remove=" incr_p_remove
        | s -> sections := s :: !sections)
    Sys.argv

let want name = !sections = [] || List.mem name !sections

(* scale the two large profiles down in quick mode *)
let profiles () =
  List.map
    (fun p ->
      if !quick && (p.Profile.name = "gimp" || p.Profile.name = "lucent") then
        Profile.scaled 0.25 p
      else p)
    Profile.all

let heap_mb () =
  let s = Gc.quick_stat () in
  float_of_int (s.Gc.heap_words * 8) /. 1e6

(* All timing below goes through Cla_obs spans: run [f] with recording
   on and return its result plus the recorded top-level spans. *)
let with_recording f =
  Obs.enable ();
  Obs.reset ();
  let r = f () in
  Obs.disable ();
  (r, Span.roots ())

(* Wall-clock a thunk that carries no spans of its own. *)
let time f =
  let (), spans =
    with_recording (fun () -> Obs.with_span "run" (fun () -> ignore (f ())))
  in
  match Span.find "run" spans with Some s -> s.Span.wall_s | None -> 0.

(* The analyze span of a recorded Andersen.solve run. *)
let analyze_span spans =
  match Span.find "analyze" spans with
  | Some s -> s
  | None -> failwith "no analyze span recorded"

(* One row per profile run lands here and is written to
   BENCH_pipeline.json at exit — the start of the repo's perf
   trajectory. *)
let bench_rows : Json.t list ref = ref []

(* Per-profile workload cache: generating + compiling gimp takes a while,
   so each (profile, mode) is compiled once and reused across sections. *)
let workload_cache : (string, Objfile.view) Hashtbl.t = Hashtbl.create 16

let compiled ?(mode = Cla_cfront.Normalize.Field_based) (p : Profile.t) =
  let key =
    Fmt.str "%s/%s/%.2f" p.Profile.name
      (match mode with
      | Cla_cfront.Normalize.Field_based -> "fb"
      | Cla_cfront.Normalize.Field_independent -> "fi")
      p.Profile.scale
  in
  match Hashtbl.find_opt workload_cache key with
  | Some v -> v
  | None ->
      let files = Genc.generate p in
      let options = { Compilep.default_options with Compilep.mode } in
      let v = Pipeline.compile_link ~options files in
      Hashtbl.replace workload_cache key v;
      v

let hr () = Fmt.pr "%s@." (String.make 100 '-')

let k n =
  if n >= 10_000 then Fmt.str "%dK" (n / 1000) else string_of_int n

(* ------------------------------------------------------------------ *)
(* Table 2: benchmark characteristics                                  *)
(* ------------------------------------------------------------------ *)

let table2 () =
  hr ();
  Fmt.pr "TABLE 2: benchmarks (m: measured on the synthetic workload, p: paper)@.";
  hr ();
  Fmt.pr "%-10s %2s %10s %10s %9s %9s %8s %8s %8s %8s@." "bench" "" "obj bytes"
    "variables" "x=y" "x=&y" "*x=y" "*x=*y" "x=*y" "LOC";
  List.iter
    (fun (p : Profile.t) ->
      let v = compiled p in
      let c = v.Objfile.rmeta.Objfile.mcounts in
      let obj_bytes = String.length (Objfile.write (fst (Linkp.link_views [ v ]))) in
      Fmt.pr "%-10s %2s %10d %10d %9d %9d %8d %8d %8d %8d@." p.Profile.name
        "m:" obj_bytes (Objfile.n_vars v) c.Cla_ir.Prim.n_copy
        c.Cla_ir.Prim.n_addr c.Cla_ir.Prim.n_store c.Cla_ir.Prim.n_deref2
        c.Cla_ir.Prim.n_load v.Objfile.rmeta.Objfile.msource_lines;
      let pc = p.Profile.counts in
      Fmt.pr "%-10s %2s %10s %10d %9d %9d %8d %8d %8d %8s@." "" "p:" "-"
        p.Profile.variables pc.Cla_ir.Prim.n_copy pc.Cla_ir.Prim.n_addr
        pc.Cla_ir.Prim.n_store pc.Cla_ir.Prim.n_deref2 pc.Cla_ir.Prim.n_load
        p.Profile.loc_display)
    (profiles ())

(* ------------------------------------------------------------------ *)
(* Table 3: analysis results                                           *)
(* ------------------------------------------------------------------ *)

(* The Table-3 row of one profile run, as a BENCH_pipeline.json record:
   profile identity, per-phase span timings, the paper's Table 3 metrics,
   and the pre-transitive graph statistics with per-pass convergence. *)
let bench_row (p : Profile.t) ~compile_link_s ~heap_mb (a : Span.t)
    (r : Andersen.result) : Json.t =
  let sol = r.Andersen.solution in
  let ls = r.Andersen.loader_stats in
  let gs = r.Andersen.graph_stats in
  Json.Obj
    [
      ("profile", Json.Str p.Profile.name);
      ("scale", Json.Float p.Profile.scale);
      ( "phases",
        Json.Obj
          [
            ("compile_link_wall_s", Json.Float compile_link_s);
            ("analyze_wall_s", Json.Float a.Span.wall_s);
            ("analyze_user_s", Json.Float a.Span.user_s);
            ("analyze_gc_minor_words", Json.Float a.Span.gc_minor_words);
            ("analyze_gc_major_words", Json.Float a.Span.gc_major_words);
          ] );
      ( "table3",
        Json.Obj
          [
            ("pointer_vars", Json.Int (Solution.n_pointer_vars sol));
            ("relations", Json.Int (Solution.n_relations sol));
            ("heap_mb", Json.Float heap_mb);
            ("in_core", Json.Int ls.Loader.s_in_core);
            ("loaded", Json.Int ls.Loader.s_loaded);
            ("in_file", Json.Int ls.Loader.s_in_file);
            ("reloads", Json.Int ls.Loader.s_reloads);
          ] );
      ( "graph",
        Json.Obj
          [
            ("nodes", Json.Int gs.Pretrans.nodes);
            ("edges", Json.Int gs.Pretrans.edges);
            ("unified", Json.Int gs.Pretrans.unified);
            ("queries", Json.Int gs.Pretrans.queries);
            ("visits", Json.Int gs.Pretrans.visits);
            ("cache_hits", Json.Int gs.Pretrans.cache_hits);
          ] );
      ("passes", Json.Int r.Andersen.passes);
      ( "pass_log",
        Json.Arr
          (List.map
             (fun (ps : Andersen.pass_stats) ->
               Json.Obj
                 [
                   ("pass", Json.Int ps.Andersen.ps_pass);
                   ("edges_added", Json.Int ps.Andersen.ps_edges_added);
                   ( "lvals_discovered",
                     Json.Int ps.Andersen.ps_lvals_discovered );
                   ("unified", Json.Int ps.Andersen.ps_unified);
                   ("queries", Json.Int ps.Andersen.ps_queries);
                 ])
             r.Andersen.pass_log) );
    ]

let table3 () =
  hr ();
  Fmt.pr "TABLE 3: field-based points-to analysis, demand loading@.";
  hr ();
  Fmt.pr "%-10s %2s %8s %10s %8s %8s %8s %9s %9s %9s@." "bench" "" "ptrs"
    "relations" "real" "user" "heap MB" "in core" "loaded" "in file";
  List.iter
    (fun (p : Profile.t) ->
      (* record compile+link spans too (zero if the workload is cached) *)
      let v, cspans = with_recording (fun () -> compiled p) in
      let compile_link_s =
        Span.total_wall "compile" cspans +. Span.total_wall "link" cspans
      in
      Gc.compact ();
      let h0 = heap_mb () in
      let r, aspans =
        with_recording (fun () -> Andersen.solve ?budget:!budget v)
      in
      let h1 = heap_mb () in
      let a = analyze_span aspans in
      let heap = Float.max 0. (h1 -. h0) in
      let ls = r.Andersen.loader_stats in
      Fmt.pr "%-10s %2s %8d %10s %7.2fs %7.2fs %8.1f %9d %9d %9d@."
        p.Profile.name "m:"
        (Solution.n_pointer_vars r.Andersen.solution)
        (k (Solution.n_relations r.Andersen.solution))
        a.Span.wall_s a.Span.user_s heap ls.Loader.s_in_core
        ls.Loader.s_loaded ls.Loader.s_in_file;
      Option.iter
        (fun b ->
          Fmt.pr "%-10s     budget=%d: evictions=%d reloads=%d@." "" b
            ls.Loader.s_evictions ls.Loader.s_reloads)
        !budget;
      let t3 = p.Profile.table3 in
      Fmt.pr "%-10s %2s %8d %10s %7.2fs %7.2fs %8.1f %9d %9d %9d@." "" "p:"
        t3.Profile.t3_pointer_vars
        (k t3.Profile.t3_relations)
        t3.Profile.t3_real_s t3.Profile.t3_user_s t3.Profile.t3_size_mb
        t3.Profile.t3_in_core t3.Profile.t3_loaded t3.Profile.t3_in_file;
      bench_rows :=
        bench_row p ~compile_link_s ~heap_mb:heap a r :: !bench_rows)
    (profiles ())

(* ------------------------------------------------------------------ *)
(* Table 4: field-based vs field-independent                           *)
(* ------------------------------------------------------------------ *)

let table4 () =
  hr ();
  Fmt.pr "TABLE 4: effect of a field-independent treatment of structs@.";
  hr ();
  Fmt.pr "%-10s %2s | %8s %10s %8s | %8s %10s %8s %9s@." "bench" ""
    "fb ptrs" "fb rel" "fb utime" "fi ptrs" "fi rel" "fi utime" "slowdown";
  List.iter
    (fun (p : Profile.t) ->
      let run mode =
        let v = compiled ~mode p in
        let r, spans = with_recording (fun () -> Andersen.solve v) in
        ( Solution.n_pointer_vars r.Andersen.solution,
          Solution.n_relations r.Andersen.solution,
          (analyze_span spans).Span.user_s )
      in
      let fb_p, fb_r, fb_t = run Cla_cfront.Normalize.Field_based in
      let fi_p, fi_r, fi_t = run Cla_cfront.Normalize.Field_independent in
      Fmt.pr "%-10s %2s | %8d %10s %7.2fs | %8d %10s %7.2fs %8.1fx@."
        p.Profile.name "m:" fb_p (k fb_r) fb_t fi_p (k fi_r) fi_t
        (if fb_t > 1e-4 then fi_t /. fb_t else Float.nan);
      let t3 = p.Profile.table3 and t4 = p.Profile.table4 in
      Fmt.pr "%-10s %2s | %8d %10s %7.2fs | %8d %10s %7.2fs %8.1fx@." "" "p:"
        t3.Profile.t3_pointer_vars (k t3.Profile.t3_relations)
        t3.Profile.t3_user_s t4.Profile.t4_pointer_vars
        (k t4.Profile.t4_relations) t4.Profile.t4_user_s
        (if t3.Profile.t3_user_s > 0. then
           t4.Profile.t4_user_s /. t3.Profile.t3_user_s
         else Float.nan))
    (profiles ())

(* ------------------------------------------------------------------ *)
(* Ablation (Section 5): caching and cycle elimination                 *)
(* ------------------------------------------------------------------ *)

exception Timeout

let run_ablation_config v config budget_s =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. budget_s in
  try
    let st = Andersen.init ~config v in
    let cont = ref true in
    while !cont do
      if Unix.gettimeofday () > deadline then raise Timeout;
      cont := Andersen.pass st
    done;
    Pretrans.new_pass st.Andersen.g;
    for var = 0 to Objfile.n_vars v - 1 do
      if var land 63 = 0 && Unix.gettimeofday () > deadline then raise Timeout;
      ignore (Pretrans.get_lvals st.Andersen.g var)
    done;
    Some (Unix.gettimeofday () -. t0)
  with Timeout -> None

let ablation_row label v budget =
  let cell = function
    | Some t -> Fmt.str "%11.3fs" t
    | None -> Fmt.str "%11s" "t/o"
  in
  let full = run_ablation_config v { Pretrans.cache = true; cycle_elim = true } budget in
  let nc = run_ablation_config v { Pretrans.cache = false; cycle_elim = true } budget in
  let ne = run_ablation_config v { Pretrans.cache = true; cycle_elim = false } budget in
  let nn = run_ablation_config v { Pretrans.cache = false; cycle_elim = false } budget in
  Fmt.pr "%-22s %12s %12s %12s %12s@." label (cell full) (cell nc) (cell ne)
    (cell nn);
  match (full, nn) with
  | Some f, Some n when f > 1e-4 ->
      Fmt.pr "%-22s neither/full slowdown: %.0fx@." "" (n /. f)
  | Some f, None when f > 0. ->
      Fmt.pr "%-22s neither/full slowdown: > %.0fx (timed out)@." ""
        (budget /. f)
  | _ -> ()

let ablation () =
  hr ();
  Fmt.pr "ABLATION (Section 5): caching of reachability + cycle elimination@.";
  Fmt.pr "(the paper reports a > 50,000x slowdown on gimp with both off —@.";
  Fmt.pr " 45,000s vs 0.8s.  The ablated configurations blow up superlinearly,@.";
  Fmt.pr " so the sweep runs growing constraint graphs until timeout; the@.";
  Fmt.pr " factor's growth is the claim)@.";
  hr ();
  Fmt.pr "%-22s %12s %12s %12s %12s@." "workload" "full" "no cache"
    "no cyc-elim" "neither";
  (* dense random constraint graphs: the regime where reachability caching
     and cycle collapsing carry the algorithm *)
  List.iter
    (fun n ->
      let params =
        {
          Cla_workload.Genir.n_vars = n;
          n_addr = n;
          n_copy = 2 * n;
          n_store = n / 2;
          n_load = n / 2;
          n_deref2 = n / 10;
          n_funcs = 4;
          n_indirect = 4;
        }
      in
      let v = Cla_workload.Genir.view ~params 7L in
      ablation_row (Fmt.str "dense graph n=%d" n) v 30.)
    (if !quick then [ 250; 500 ] else [ 250; 500; 1000; 2000 ]);
  (* and one realistic pipeline workload for reference *)
  let p = Profile.scaled 0.05 Profile.gimp in
  ablation_row "gimp x 0.05 (C code)" (compiled p) 30.

(* ------------------------------------------------------------------ *)
(* Solver comparison (Section 6's related-work discussion)             *)
(* ------------------------------------------------------------------ *)

let solvers () =
  hr ();
  Fmt.pr "SOLVERS: pre-transitive vs transitively-closed vs bit-vector vs unification@.";
  Fmt.pr "(the paper's positioning: subset-based precision at near-unification speed)@.";
  hr ();
  Fmt.pr "%-10s %14s %14s %14s %14s@." "bench" "pretransitive" "worklist"
    "bitvector" "steensgaard";
  List.iter
    (fun (p : Profile.t) ->
      let v = compiled p in
      let pre = time (fun () -> Andersen.solve v) in
      let wl = time (fun () -> Worklist.solve v) in
      let bv = time (fun () -> Bitsolver.solve v) in
      let st = time (fun () -> Steensgaard.solve v) in
      Fmt.pr "%-10s %13.3fs %13.3fs %13.3fs %13.3fs@." p.Profile.name pre wl
        bv st)
    [ Profile.nethack; Profile.burlap; Profile.vortex; Profile.povray; Profile.gcc ]

(* ------------------------------------------------------------------ *)
(* Transformers: offline variable substitution (reference [21])        *)
(* ------------------------------------------------------------------ *)

let transforms () =
  hr ();
  Fmt.pr "TRANSFORMERS: offline variable substitution before analysis@.";
  Fmt.pr "(the paper's database-to-database optimizer hook, instantiated@.";
  Fmt.pr " with Rountev-Chandra-style substitution — its PLDI'00 table is@.";
  Fmt.pr " variables/assignments removed and the analysis-time effect)@.";
  hr ();
  Fmt.pr "%-10s %10s %10s %10s %10s %10s %10s@." "bench" "vars" "vars'"
    "assigns" "assigns'" "t before" "t after";
  List.iter
    (fun (p : Profile.t) ->
      let v = compiled p in
      let db = fst (Linkp.link_views [ v ]) in
      let n_assigns (d : Objfile.db) =
        List.length d.Objfile.statics
        + Array.fold_left (fun a l -> a + List.length l) 0 d.Objfile.blocks
      in
      let t_before = time (fun () -> Andersen.solve v) in
      let db', _ = Transform.substitute_variables db in
      let v' = Objfile.view_of_string (Objfile.write db') in
      let t_after = time (fun () -> Andersen.solve v') in
      Fmt.pr "%-10s %10d %10d %10d %10d %9.3fs %9.3fs@." p.Profile.name
        (Array.length db.Objfile.vars)
        (Array.length db'.Objfile.vars)
        (n_assigns db) (n_assigns db') t_before t_after)
    [ Profile.nethack; Profile.burlap; Profile.vortex; Profile.gcc ]

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let figures () =
  hr ();
  Fmt.pr "FIGURES: the paper's worked examples@.";
  hr ();
  (* Figure 3 *)
  let v3 =
    Pipeline.compile_link
      [ ("fig3.c", "int x, *y;\nint **z;\nvoid main(void) { z = &y; *z = &x; }") ]
  in
  let s3 = Pipeline.points_to v3 in
  let show sol name =
    match Solution.find sol name with
    | Some v ->
        Fmt.str "%s -> {%s}" name
          (String.concat ", "
             (List.map (Solution.var_name sol)
                (Lvalset.to_list (Solution.points_to sol v))))
    | None -> name ^ " -> ?"
  in
  Fmt.pr "Figure 3 (expect y -> {x}):   %s ; %s@." (show s3 "y") (show s3 "z");
  (* Figure 4: object file layout *)
  let db4 =
    Compilep.compile_string ~file:"a.c"
      "int x, y, z, *p, *q;\n\
       void f(void) { x = y; x = z; *p = z; p = q; q = &y; x = *p; }"
  in
  let v4 = Objfile.view_of_string (Objfile.write db4) in
  Fmt.pr "Figure 4 (object file for a.c): %d bytes, %d static record(s), blocks:@."
    (String.length (Objfile.write db4))
    (Array.length v4.Objfile.rstatics);
  for var = 0 to Objfile.n_vars v4 - 1 do
    if Objfile.has_block v4 var then
      Fmt.pr "  block %-4s: %d assignment(s)@."
        v4.Objfile.rvars.(var).Objfile.vname
        (List.length (Objfile.read_block v4 var))
  done;
  (* Figure 1: dependence chains *)
  let v1 =
    Pipeline.compile_link
      [
        ( "eg1.c",
          "short target;\n\
           struct S { short x; short y; };\n\
           short u, *v, w;\n\
           struct S s, t;\n\
           void main(void) {\n\
           v = &w;\n\
           u = target;\n\
           *v = u;\n\
           s.x = w;\n\
           }" );
      ]
  in
  let pta = Andersen.solve v1 in
  let dep = Cla_depend.Depend.prepare v1 pta in
  match Cla_depend.Depend.query_by_name dep "target" with
  | Some r ->
      Fmt.pr "Figure 1 (dependence chains for 'target'):@.%a"
        (Cla_depend.Depend.pp_report dep) r
  | None -> Fmt.pr "Figure 1: target not found?!@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                  *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  hr ();
  Fmt.pr "BECHAMEL: micro-benchmarks (one Test.make per table)@.";
  hr ();
  let open Bechamel in
  let p = Profile.scaled 0.1 Profile.nethack in
  let files = Genc.generate p in
  let view = Pipeline.compile_link files in
  let view_fi =
    Pipeline.compile_link
      ~options:
        {
          Compilep.default_options with
          Compilep.mode = Cla_cfront.Normalize.Field_independent;
        }
      files
  in
  let tests =
    Test.make_grouped ~name:"cla"
      [
        (* Table 2's cost: the compile+link phases *)
        Test.make ~name:"table2.compile_link"
          (Staged.stage (fun () -> ignore (Pipeline.compile_link files)));
        (* Table 3's cost: field-based demand-driven analysis *)
        Test.make ~name:"table3.analyze_field_based"
          (Staged.stage (fun () -> ignore (Andersen.solve view)));
        (* Table 4's cost: field-independent analysis *)
        Test.make ~name:"table4.analyze_field_independent"
          (Staged.stage (fun () -> ignore (Andersen.solve view_fi)));
        (* Table 1 drives the dependence ranking *)
        Test.make ~name:"table1.dependence_query"
          (Staged.stage (fun () ->
               let pta = Andersen.solve view in
               let dep = Cla_depend.Depend.prepare view pta in
               match Objfile.find_targets view "g0_0" with
               | t :: _ -> ignore (Cla_depend.Depend.query dep t)
               | [] -> ()));
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-45s %12.3f ms/run@." name (est /. 1e6)
      | _ -> Fmt.pr "%-45s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Parallel: compile / verify / solve sweep over units x job counts    *)
(* ------------------------------------------------------------------ *)

(* v2 methodology.  For each --units entry, synthesize a corpus of that
   many compile units (Genc over a scaled nethack profile); for each
   --jobs entry (0 = auto) on that corpus: compile across the shared
   pool, byte-compare every object and the linked database against the
   corpus's fresh -j1 baseline, time the pooled CRC verify, then run
   both parallel solvers — the pre-transitive query fan-out and the
   row-parallel bit-vector passes — and require [Solution.equal]
   against the -j1 solve.  Any divergence, bytes or solution, in any
   cell is a hard failure (exit 1); --inject-divergence perturbs one
   j>=2 solution to prove that gate fires.

   The speedup gate is the part v1 got wrong: it measured 3 units at
   whole-pool spawn cost per call and could only report the loss.  Now
   domains are spawned once (Pool.shared) and the gate asserts solve
   speedup_vs_j1 > 1.0 at the LARGEST unit count, where there is enough
   work to amortize chunking — hard on multi-core hosts, informational
   on a 1-core box where j>=2 resolves to 1 domain. *)
let parallel () =
  hr ();
  let units_list =
    match !units_sweep with
    | [] -> if !quick then [ 2; 8 ] else [ 2; 8; 32 ]
    | u -> u
  in
  let host_cores = Domain.recommended_domain_count () in
  Fmt.pr "PARALLEL: compile/verify/solve sweep (--units=%s x --jobs=%s, %d core(s))@."
    (String.concat "," (List.map string_of_int units_list))
    (String.concat "," (List.map string_of_int !jobs_sweep))
    host_cores;
  hr ();
  let options = Compilep.default_options in
  (* perturb one points-to set so the Solution.equal gate provably
     fires (same shape as the solver bench's --inject-divergence) *)
  let perturb v (sol : Solution.t) =
    let pool = Lvalset.create_pool () in
    let pts = Array.copy sol.Solution.pts in
    if Array.length pts > 0 then
      pts.(0) <-
        (if Lvalset.cardinal pts.(0) = 0 then Lvalset.of_list pool [ 0 ]
         else Lvalset.empty);
    Solution.create v pts
  in
  let largest = List.fold_left max 0 units_list in
  let best_solve_speedup_at_largest = ref 0. in
  let rows = ref [] in
  let divergent = ref false in
  Fmt.pr "%-6s %-5s %-5s %10s %9s %9s %11s %11s %9s  %s@." "units" "req"
    "jobs" "compile_s" "link_s" "verify_s" "pretrans_s" "bitvec_s" "speedup"
    "identical";
  List.iter
    (fun n_units ->
      (* scale the profile so Genc emits ~n_units translation units
         (it cuts one file per ~1200 variables) *)
      let scale =
        float_of_int n_units *. 1200. /. float_of_int Profile.nethack.Profile.variables
      in
      let p = Profile.scaled scale Profile.nethack in
      let files = Genc.generate p in
      let compile_one (file, src) =
        Objfile.write (Compilep.compile_string ~options ~file src)
      in
      let compile_all ~jobs =
        if jobs <= 1 then List.map compile_one files
        else
          let pool = Cla_par.Pool.shared ~jobs in
          Cla_par.Pool.map pool compile_one files
      in
      let link objs =
        let views = List.map Objfile.view_of_string objs in
        let db, _stats = Linkp.link_views views in
        Objfile.write db
      in
      (* per-corpus -j1 baseline: bytes and both exact solutions *)
      let t0 = Unix.gettimeofday () in
      let base_objs = compile_all ~jobs:1 in
      let base_compile_s = Unix.gettimeofday () -. t0 in
      let base_db = link base_objs in
      let base_view = Objfile.view_of_string base_db in
      let t0 = Unix.gettimeofday () in
      let base_pre = (Andersen.solve ~demand:false base_view).Andersen.solution in
      let base_pre_s = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let base_bv = Bitsolver.solve base_view in
      let base_bv_s = Unix.gettimeofday () -. t0 in
      List.iter
        (fun jobs_requested ->
          let jobs = Cla_par.Pool.resolve_jobs jobs_requested in
          let t0 = Unix.gettimeofday () in
          let objs = compile_all ~jobs in
          let compile_s = Unix.gettimeofday () -. t0 in
          let t1 = Unix.gettimeofday () in
          let db = link objs in
          let link_s = Unix.gettimeofday () -. t1 in
          let t2 = Unix.gettimeofday () in
          let view =
            if jobs <= 1 then Objfile.view_of_string db
            else
              let pool = Cla_par.Pool.shared ~jobs in
              Loader.view_par ~pool db
          in
          let verify_s = Unix.gettimeofday () -. t2 in
          let solve_pool =
            if jobs > 1 then Some (Cla_par.Pool.shared ~jobs) else None
          in
          let t3 = Unix.gettimeofday () in
          let pre =
            (Andersen.solve ~demand:false ?pool:solve_pool view)
              .Andersen.solution
          in
          let pre_s = Unix.gettimeofday () -. t3 in
          let pre =
            if !inject_divergence && jobs >= 2 then perturb view pre else pre
          in
          let t4 = Unix.gettimeofday () in
          let bv = Bitsolver.solve ?pool:solve_pool view in
          let bv_s = Unix.gettimeofday () -. t4 in
          let bytes_ok =
            List.equal String.equal objs base_objs && String.equal db base_db
          in
          let pre_ok = Solution.equal base_pre pre in
          let bv_ok = Solution.equal base_bv bv in
          let identical = bytes_ok && pre_ok && bv_ok in
          if not identical then divergent := true;
          let speedup base s = if s > 0. then base /. s else 0. in
          let compile_speedup = speedup base_compile_s compile_s in
          let pre_speedup = speedup base_pre_s pre_s in
          let bv_speedup = speedup base_bv_s bv_s in
          let solve_speedup = Float.max pre_speedup bv_speedup in
          if n_units = largest && jobs_requested >= 2 then
            best_solve_speedup_at_largest :=
              Float.max !best_solve_speedup_at_largest solve_speedup;
          Fmt.pr "%-6d %-5d %-5d %10.3f %9.3f %9.3f %11.3f %11.3f %8.2fx  %s@."
            n_units jobs_requested jobs compile_s link_s verify_s pre_s bv_s
            solve_speedup
            (if identical then "yes"
             else if not bytes_ok then "NO — BYTES DIVERGED"
             else "NO — SOLUTION DIVERGED");
          rows :=
            Json.Obj
              [
                ("units", Json.Int (List.length files));
                ("jobs_requested", Json.Int jobs_requested);
                ("jobs", Json.Int jobs);
                ("compile_wall_s", Json.Float compile_s);
                ("link_wall_s", Json.Float link_s);
                ("verify_wall_s", Json.Float verify_s);
                ("solve_pretrans_wall_s", Json.Float pre_s);
                ("solve_bitvector_wall_s", Json.Float bv_s);
                ("compile_speedup_vs_j1", Json.Float compile_speedup);
                ("solve_pretrans_speedup_vs_j1", Json.Float pre_speedup);
                ("solve_bitvector_speedup_vs_j1", Json.Float bv_speedup);
                ("speedup_vs_j1", Json.Float solve_speedup);
                ("identical", Json.Bool identical);
              ]
            :: !rows)
        !jobs_sweep)
    units_list;
  Json.write_file "BENCH_parallel.json"
    (Json.Obj
       [
         ("schema", Json.Str "cla.bench.parallel/v2");
         ("quick", Json.Bool !quick);
         ("profile", Json.Str Profile.nethack.Profile.name);
         ("host_cores", Json.Int host_cores);
         ("units_sweep", Json.Arr (List.map (fun u -> Json.Int u) units_list));
         ("rows", Json.Arr (List.rev !rows));
       ]);
  Fmt.pr "wrote BENCH_parallel.json (%d row(s))@." (List.length !rows);
  if !divergent then begin
    Fmt.epr
      "parallel: FAIL — a -jN run diverged from -j1 (bytes or solution)@.";
    exit 1
  end;
  if host_cores > 1 then begin
    if !best_solve_speedup_at_largest <= 1.0 then begin
      Fmt.epr
        "parallel: FAIL — solve speedup_vs_j1 %.2fx <= 1.0 at the largest \
         unit count (%d units) on a %d-core host@."
        !best_solve_speedup_at_largest largest host_cores;
      exit 1
    end
  end
  else
    Fmt.pr
      "parallel: 1-core host, solve speedup (%.2fx at %d units) is \
       informational only@."
      !best_solve_speedup_at_largest largest

(* ------------------------------------------------------------------ *)
(* Solver micro-bench: hybrid lval-sets + allocation-free reachability *)
(* ------------------------------------------------------------------ *)

(* Sweep the sparse/dense/cyclic Genir shapes over every solver and
   every Pretrans.config cell, at the hybrid lval-set threshold and at
   the sorted-array baseline (threshold = max_int).  The baseline
   solution is the correctness oracle: any exact solver or configuration
   that diverges from it is a hard failure (exit 1); Steensgaard is
   checked as a sound superset.  Wall time, allocation per query, and
   the pool's set-representation histogram land in BENCH_solver.json
   (schema cla.bench.solver/v1).  --check-against=FILE compares each
   cell's wall time against a previous run and warns on > 25%
   regressions (informational; --check-hard exits 1 instead).
   --inject-divergence deliberately perturbs one solution to prove the
   hard-fail path fires — the smoke script asserts exit 1. *)

let solver () =
  hr ();
  let scale =
    match !solver_scale with
    | Some s -> s
    | None -> if !quick then 0.25 else 1.0
  in
  Fmt.pr
    "SOLVER: micro-bench over shaped workloads (scale %.2f, dense threshold %d)@."
    scale
    (Lvalset.default_dense_threshold ());
  hr ();
  let saved_threshold = Lvalset.default_dense_threshold () in
  let rows = ref [] in
  let divergent = ref false in
  let dense_hybrid_t = ref None and dense_array_t = ref None in
  let alloc_timed f =
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0, Gc.allocated_bytes () -. a0)
  in
  let superset (big : Solution.t) (small : Solution.t) nvars =
    let ok = ref true in
    for var = 0 to nvars - 1 do
      Lvalset.iter
        (fun z -> if not (Lvalset.mem z (Solution.points_to big var)) then ok := false)
        (Solution.points_to small var)
    done;
    !ok
  in
  let perturb v (sol : Solution.t) =
    let pool = Lvalset.create_pool () in
    let pts = Array.copy sol.Solution.pts in
    if Array.length pts > 0 then
      pts.(0) <-
        (if Lvalset.cardinal pts.(0) = 0 then Lvalset.of_list pool [ 0 ]
         else Lvalset.empty);
    Solution.create v pts
  in
  Fmt.pr "%-8s %-22s %9s %6s %8s %12s %8s %8s  %s@." "workload" "cell"
    "wall_s" "passes" "queries" "alloc/query" "arrays" "bitmaps" "ok";
  List.iter
    (fun shape ->
      let wname = Genir.shape_name shape in
      let v = Genir.shaped ~scale shape 42L in
      let nvars = Objfile.n_vars v in
      (* histogram of the solution's set representations *)
      let sol_histo (sol : Solution.t) =
        let arrays = ref 0 and bitmaps = ref 0 in
        Array.iter
          (fun s ->
            if Lvalset.cardinal s > 0 then
              if Lvalset.is_bitmap s then incr bitmaps else incr arrays)
          sol.Solution.pts;
        (!arrays, !bitmaps)
      in
      let emit ~cell ~wall_s ~alloc ~sol ~ok ?result () =
        let arrays, bitmaps = sol_histo sol in
        let queries, passes, pool_fields, pass_wall =
          match result with
          | Some (r : Andersen.result) ->
              let gs = r.Andersen.graph_stats in
              ( gs.Pretrans.queries,
                r.Andersen.passes,
                [
                  ( "pool",
                    Json.Obj
                      [
                        ("hits", Json.Int gs.Pretrans.pool_hits);
                        ("misses", Json.Int gs.Pretrans.pool_misses);
                        ("small_sets", Json.Int gs.Pretrans.pool_small);
                        ("dense_sets", Json.Int gs.Pretrans.pool_dense);
                      ] );
                ],
                [
                  ( "pass_wall_s",
                    Json.Arr
                      (List.map
                         (fun (ps : Andersen.pass_stats) ->
                           Json.Float ps.Andersen.ps_wall_s)
                         r.Andersen.pass_log) );
                ] )
          | None -> (0, 0, [], [])
        in
        let alloc_per_query =
          if queries > 0 then alloc /. float_of_int queries else Float.nan
        in
        Fmt.pr "%-8s %-22s %8.3fs %6d %8d %12s %8d %8d  %s@." wname cell
          wall_s passes queries
          (if queries > 0 then Fmt.str "%.0fB" alloc_per_query else "-")
          arrays bitmaps
          (if ok then "yes" else "NO — DIVERGED");
        if not ok then divergent := true;
        rows :=
          Json.Obj
            ([
               ("workload", Json.Str wname);
               ("cell", Json.Str cell);
               ("scale", Json.Float scale);
               ("wall_s", Json.Float wall_s);
               ("passes", Json.Int passes);
               ("queries", Json.Int queries);
               ("alloc_bytes", Json.Float alloc);
               ("alloc_bytes_per_query", Json.Float alloc_per_query);
               ("solution_arrays", Json.Int arrays);
               ("solution_bitmaps", Json.Int bitmaps);
               ("equal_to_baseline", Json.Bool ok);
             ]
            @ pool_fields @ pass_wall)
          :: !rows
      in
      (* correctness oracle: pre-transitive, pure sorted-array pool *)
      Lvalset.set_default_dense_threshold max_int;
      let base_r, base_t, base_alloc =
        alloc_timed (fun () -> Andersen.solve v)
      in
      Lvalset.set_default_dense_threshold saved_threshold;
      let base_sol = base_r.Andersen.solution in
      if shape = Genir.Dense then dense_array_t := Some base_t;
      emit ~cell:"pretrans/full/array" ~wall_s:base_t ~alloc:base_alloc
        ~sol:base_sol ~ok:true ~result:base_r ();
      (* pre-transitive ablation cells, hybrid sets *)
      List.iter
        (fun (cname, config) ->
          let r, t, alloc =
            alloc_timed (fun () -> Andersen.solve ~config v)
          in
          let sol = r.Andersen.solution in
          if cname = "pretrans/full" && shape = Genir.Dense then
            dense_hybrid_t := Some t;
          emit ~cell:cname ~wall_s:t ~alloc ~sol
            ~ok:(Solution.equal base_sol sol)
            ~result:r ())
        [
          ("pretrans/full", { Pretrans.cache = true; cycle_elim = true });
          ("pretrans/nocache", { Pretrans.cache = false; cycle_elim = true });
          ("pretrans/nocycle", { Pretrans.cache = true; cycle_elim = false });
          ("pretrans/neither", { Pretrans.cache = false; cycle_elim = false });
        ];
      (* the other exact solvers *)
      let wl, wl_t, wl_alloc = alloc_timed (fun () -> Worklist.solve v) in
      let wl = if !inject_divergence then perturb v wl else wl in
      emit ~cell:"worklist" ~wall_s:wl_t ~alloc:wl_alloc ~sol:wl
        ~ok:(Solution.equal base_sol wl) ();
      let bv, bv_t, bv_alloc = alloc_timed (fun () -> Bitsolver.solve v) in
      emit ~cell:"bitvector" ~wall_s:bv_t ~alloc:bv_alloc ~sol:bv
        ~ok:(Solution.equal base_sol bv) ();
      (* unification: sound over-approximation, checked as a superset *)
      let st, st_t, st_alloc = alloc_timed (fun () -> Steensgaard.solve v) in
      emit ~cell:"steensgaard" ~wall_s:st_t ~alloc:st_alloc ~sol:st
        ~ok:(superset st base_sol nvars) ())
    Genir.all_shapes;
  let speedup =
    match (!dense_array_t, !dense_hybrid_t) with
    | Some a, Some h when h > 1e-6 -> a /. h
    | _ -> Float.nan
  in
  if not (Float.is_nan speedup) then
    Fmt.pr
      "dense profile: hybrid pretransitive %.2fx vs sorted-array baseline \
       (target >= 1.5x, informational)@."
      speedup;
  Json.write_file "BENCH_solver.json"
    (Json.Obj
       [
         ("schema", Json.Str "cla.bench.solver/v1");
         ("quick", Json.Bool !quick);
         ("scale", Json.Float scale);
         ("dense_threshold", Json.Int saved_threshold);
         ("rows", Json.Arr (List.rev !rows));
         ( "summary",
           Json.Obj
             [
               ("dense_speedup_vs_array", Json.Float speedup);
               ("dense_speedup_target", Json.Float 1.5);
             ] );
       ]);
  Fmt.pr "wrote BENCH_solver.json (%d row(s))@." (List.length !rows);
  (* regression gate against a previous run *)
  (match !check_against with
  | None -> ()
  | Some file ->
      let prev =
        try Some (Json.of_string (In_channel.with_open_bin file In_channel.input_all))
        with _ ->
          Fmt.epr "solver: cannot read %s, skipping regression check@." file;
          None
      in
      Option.iter
        (fun prev ->
          let prev_rows =
            match Json.member "rows" prev with
            | Some (Json.Arr rs) -> rs
            | _ -> []
          in
          let key r =
            match (Json.member "workload" r, Json.member "cell" r) with
            | Some (Json.Str w), Some (Json.Str c) -> Some (w ^ "/" ^ c)
            | _ -> None
          in
          let prev_wall = Hashtbl.create 32 in
          List.iter
            (fun r ->
              match (key r, Option.bind (Json.member "wall_s" r) Json.to_float) with
              | Some k, Some t -> Hashtbl.replace prev_wall k t
              | _ -> ())
            prev_rows;
          let regressions = ref [] in
          List.iter
            (fun r ->
              match (key r, Option.bind (Json.member "wall_s" r) Json.to_float) with
              | Some k, Some t -> (
                  match Hashtbl.find_opt prev_wall k with
                  (* ignore sub-5ms cells: pure timer noise *)
                  | Some t0 when t0 > 0.005 && t > t0 *. 1.25 ->
                      regressions := (k, t0, t) :: !regressions
                  | _ -> ())
              | _ -> ())
            (List.rev !rows);
          match !regressions with
          | [] -> Fmt.pr "regression check vs %s: clean@." file
          | rs ->
              List.iter
                (fun (k, t0, t) ->
                  Fmt.epr
                    "solver: REGRESSION %s: %.3fs -> %.3fs (+%.0f%%)@." k t0 t
                    ((t /. t0 -. 1.) *. 100.))
                rs;
              if !check_hard then exit 1)
        prev);
  if !divergent then begin
    Fmt.epr "solver: FAIL — a solver diverged from the sorted-array baseline@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Open world: the body-deletion soundness gate                        *)
(* ------------------------------------------------------------------ *)

(* Delete function bodies from a complete program in a seeded stream and
   check at every step that open-world havoc keeps the closed-world
   facts (set inclusion over surviving objects, Deletion's contract).
   --inject-unsound analyzes the stripped fragments closed-world
   instead, which must make the gate fail (exit 1) — the smoke script
   asserts both directions. *)
let openworld () =
  let profile = Profile.scaled 0.12 Profile.nethack in
  let seed = 42L in
  Fmt.pr "openworld: deletion gate on %s (scale %.2f, seed %Ld%s)@."
    profile.Profile.name profile.Profile.scale seed
    (if !inject_unsound then ", INJECTING unsoundness" else "");
  match Deletion.run ~inject_unsound:!inject_unsound ~seed profile with
  | Ok o ->
      Fmt.pr
        "openworld: ok — %d step(s), %d/%d bodies deleted by the last, %d \
         inclusion check(s)@."
        o.Deletion.n_steps o.Deletion.n_dropped o.Deletion.n_funcs
        o.Deletion.n_checked
  | Error v ->
      Fmt.epr
        "openworld: FAIL — step %d (%d bodies deleted): %s lost {%s}@."
        v.Deletion.v_step
        (List.length v.Deletion.v_dropped)
        v.Deletion.v_var
        (String.concat ", " v.Deletion.v_missing);
      exit 1

(* ------------------------------------------------------------------ *)
(* Serve: shard-count x offered-load sweep (BENCH_serve.json)          *)
(* ------------------------------------------------------------------ *)

(* Each cell boots an in-process server ([shards] solver replicas) and
   drives it with the Servebench stream from [load] closed-loop client
   threads; latency is measured client-side on the monotonic clock into
   a Histo, so the percentiles carry the same bucket error bound as the
   server's own telemetry.  Before shutdown the cell asks the live
   server for a [stats] snapshot and embeds its merged latency block —
   the before/after baseline the ROADMAP's shared-snapshot refactor
   needs, and proof live introspection survives load. *)
let serve () =
  hr ();
  Fmt.pr "SERVE: shard x load sweep (shards=%s, load=%s)@."
    (String.concat "," (List.map string_of_int !serve_shards))
    (String.concat "," (List.map string_of_int !serve_load));
  hr ();
  let module Sv = Cla_serve.Server in
  let module Cl = Cla_serve.Client in
  let module Pr = Cla_serve.Protocol in
  let module D = Cla_resilience.Deadline in
  let module H = Cla_obs.Histo in
  let p =
    Profile.scaled (if !quick then 0.05 else 0.1) Profile.nethack
  in
  let view = compiled p in
  (* named program variables for the good queries *)
  let vars =
    let out = ref [] and count = ref 0 in
    Array.iter
      (fun (vi : Objfile.varinfo) ->
        if
          !count < 32 && vi.Objfile.vname <> ""
          && (not (String.contains vi.Objfile.vname '$'))
          && vi.Objfile.vkind <> Cla_ir.Var.Temp
        then begin
          incr count;
          out := vi.Objfile.vname :: !out
        end)
      view.Objfile.rvars;
    Array.of_list (List.rev !out)
  in
  if Array.length vars = 0 then failwith "serve: no named variables to query";
  let n = if !quick then 80 else 240 in
  let slow_ms = if !quick then 40 else 80 in
  let rows = ref [] in
  let cell_idx = ref 0 in
  Fmt.pr "%-7s %-5s %6s %8s %10s %9s %9s %9s %9s  %s@." "shards" "load" "n"
    "wall_s" "qps" "p50_ms" "p90_ms" "p99_ms" "max_ms" "ok/shed/tmo/err";
  List.iter
    (fun shards ->
      List.iter
        (fun load ->
          incr cell_idx;
          let socket =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Fmt.str "cla-bs-%d-%d.sock" (Unix.getpid ()) !cell_idx)
          in
          let config =
            {
              Sv.default_config with
              Sv.socket_path = socket;
              shards;
              allow_sleep = true;
            }
          in
          let ready_m = Mutex.create () and ready_c = Condition.create () in
          let handle = ref None in
          let on_ready t =
            Mutex.lock ready_m;
            handle := Some t;
            Condition.broadcast ready_c;
            Mutex.unlock ready_m
          in
          let srv =
            Thread.create (fun () -> ignore (Sv.run ~config ~on_ready view)) ()
          in
          Mutex.lock ready_m;
          while !handle = None do
            Condition.wait ready_c ready_m
          done;
          Mutex.unlock ready_m;
          let queries =
            Array.of_list
              (Servebench.generate
                 ~mix:{ Servebench.m_good = 8; m_poison = 1; m_slow = 1 }
                 ~seed:(Int64.of_int (1000 + !cell_idx))
                 ~n ~vars ~deadline_ms:2000 ~slow_ms ())
          in
          let histo = H.create () in
          let next = Atomic.make 0 in
          let results = Array.make n None in
          let worker _ =
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                let t0 = D.now_ns () in
                let r = Cl.round_trip ~socket queries.(i).Servebench.q_line in
                H.record histo (D.now_ns () - t0);
                results.(i) <- Some r;
                loop ()
              end
            in
            loop ()
          in
          let t0 = D.now_s () in
          let threads = List.init (max 1 load) (Thread.create worker) in
          List.iter Thread.join threads;
          let wall_s = D.now_s () -. t0 in
          (* live introspection under this cell's residue, pre-shutdown *)
          let stats_reply =
            Cl.round_trip ~socket "{\"id\":0,\"op\":\"stats\"}"
          in
          (match !handle with Some t -> Sv.request_shutdown t | None -> ());
          Thread.join srv;
          let ok = ref 0 and shed = ref 0 and tmo = ref 0 and err = ref 0 in
          let transport = ref 0 in
          Array.iter
            (function
              | None -> ()
              | Some (Error _) -> incr transport
              | Some (Ok l) -> (
                  match Pr.status_of_line l with
                  | Pr.S_ok -> incr ok
                  | Pr.S_shed -> incr shed
                  | Pr.S_timeout -> incr tmo
                  | Pr.S_error -> incr err
                  | Pr.S_bye | Pr.S_malformed -> incr transport))
            results;
          let answered = !ok + !shed + !tmo + !err in
          let qps = if wall_s > 0. then float_of_int answered /. wall_s else 0. in
          let pms q = float_of_int (H.quantile histo q) /. 1e6 in
          let server_latency =
            match stats_reply with
            | Error _ -> Json.Null
            | Ok l -> (
                match Json.of_string l with
                | exception Json.Parse_error _ -> Json.Null
                | j -> Option.value ~default:Json.Null (Json.member "latency" j))
          in
          Fmt.pr "%-7d %-5d %6d %8.3f %10.1f %9.3f %9.3f %9.3f %9.3f  %d/%d/%d/%d@."
            shards load n wall_s qps (pms 0.5) (pms 0.9) (pms 0.99)
            (float_of_int (H.max_value histo) /. 1e6)
            !ok !shed !tmo !err;
          rows :=
            Json.Obj
              [
                ("shards", Json.Int shards);
                ("load", Json.Int load);
                ("n", Json.Int n);
                ("wall_s", Json.Float wall_s);
                ("throughput_qps", Json.Float qps);
                ("ok", Json.Int !ok);
                ("shed", Json.Int !shed);
                ("timeout", Json.Int !tmo);
                ("error", Json.Int !err);
                ("transport_errors", Json.Int !transport);
                ( "latency",
                  Json.Obj
                    [
                      ("count", Json.Int (H.count histo));
                      ("mean_ms", Json.Float (H.mean histo /. 1e6));
                      ("p50_ms", Json.Float (pms 0.5));
                      ("p90_ms", Json.Float (pms 0.9));
                      ("p99_ms", Json.Float (pms 0.99));
                      ("p999_ms", Json.Float (pms 0.999));
                      ( "max_ms",
                        Json.Float (float_of_int (H.max_value histo) /. 1e6) );
                    ] );
                ("server_latency", server_latency);
              ]
            :: !rows)
        !serve_load)
    !serve_shards;
  Json.write_file "BENCH_serve.json"
    (Json.Obj
       [
         ("schema", Json.Str "cla.bench.serve/v1");
         ("quick", Json.Bool !quick);
         ("profile", Json.Str p.Profile.name);
         ("scale", Json.Float p.Profile.scale);
         ("queries_per_cell", Json.Int n);
         ("rows", Json.Arr (List.rev !rows));
       ]);
  Fmt.pr "wrote BENCH_serve.json (%d row(s))@." (List.length !rows)

(* ------------------------------------------------------------------ *)
(* Chaos: self-healing serve gate (BENCH_chaos.json)                   *)
(* ------------------------------------------------------------------ *)

(* The resilience exam for the self-healing stack as one harness:
   snapshot persistence (answering must be O(read), corruption must fall
   back, never mis-answer), shard supervision (killed and wedged worker
   domains must be restarted with their queued jobs intact), and the
   client retry loop (a restart window must be invisible to well-formed
   queries).  Faults are fired at deterministic points of the query
   stream, not wall-clock times, so the schedule cannot miss a fast run.

   Gates (each lands in BENCH_chaos.json; any failure exits 1):
     corrupt_fallback   bit-flipped snapshot rejected, live answer correct
     snapshot_oread     good snapshot: zero shard solves for the stream
     zero_failed_good   every well-formed query answered ok under faults
     recovery_p99       p99 latency of the queries right behind each kill
     restarts_observed  the supervisor actually restarted shards *)
let chaos () =
  hr ();
  Fmt.pr "CHAOS: snapshot + supervision gate%s@."
    (if !inject_no_supervise then " [INJECTED: supervisor disabled]" else "");
  hr ();
  let module Sv = Cla_serve.Server in
  let module Cl = Cla_serve.Client in
  let module Pr = Cla_serve.Protocol in
  let module D = Cla_resilience.Deadline in
  let module H = Cla_obs.Histo in
  let p = Profile.scaled (if !quick then 0.05 else 0.1) Profile.nethack in
  let view = compiled p in
  let vars =
    let out = ref [] and count = ref 0 in
    Array.iter
      (fun (vi : Objfile.varinfo) ->
        if
          !count < 32 && vi.Objfile.vname <> ""
          && (not (String.contains vi.Objfile.vname '$'))
          && vi.Objfile.vkind <> Cla_ir.Var.Temp
        then begin
          incr count;
          out := vi.Objfile.vname :: !out
        end)
      view.Objfile.rvars;
    Array.of_list (List.rev !out)
  in
  if Array.length vars = 0 then failwith "chaos: no named variables to query";
  let tmp name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "cla-chaos-%d-%s" (Unix.getpid ()) name)
  in
  (* boot an in-process server, run [body handle socket], drain *)
  let with_server config body =
    let ready_m = Mutex.create () and ready_c = Condition.create () in
    let handle = ref None in
    let on_ready t =
      Mutex.lock ready_m;
      handle := Some t;
      Condition.broadcast ready_c;
      Mutex.unlock ready_m
    in
    let srv = Thread.create (fun () -> ignore (Sv.run ~config ~on_ready view)) () in
    Mutex.lock ready_m;
    while !handle = None do
      Condition.wait ready_c ready_m
    done;
    Mutex.unlock ready_m;
    let h = Option.get !handle in
    let r = body h config.Sv.socket_path in
    Sv.request_shutdown h;
    Thread.join srv;
    r
  in
  let probe_var = vars.(0) in
  let points_to_line ?(fresh = false) id var =
    Cla_obs.Json.to_string ~indent:false
      (Json.Obj
         ([
            ("id", Json.Int id);
            ("op", Json.Str "points-to");
            ("var", Json.Str var);
            ("deadline_ms", Json.Int 4000);
          ]
         @ if fresh then [ ("fresh", Json.Bool true) ] else []))
  in
  let targets_of_line l =
    match Json.of_string l with
    | exception Json.Parse_error _ -> None
    | j -> (
        match Json.member "targets" j with
        | Some (Json.Arr ts) ->
            Some
              (List.sort compare
                 (List.filter_map
                    (function Json.Str s -> Some s | _ -> None)
                    ts))
        | _ -> None)
  in
  let stat_of_line l path =
    match Json.of_string l with
    | exception Json.Parse_error _ -> None
    | j ->
        List.fold_left
          (fun acc k -> Option.bind acc (Json.member k))
          (Some j) path
  in
  (* -- phase 0: freeze the reference solution ----------------------- *)
  let outcome = Pipeline.points_to_ladder view in
  let snap = tmp "good.snap" in
  Snapshot.save snap ~view outcome;
  let live_targets =
    with_server { Sv.default_config with socket_path = tmp "live.sock" }
      (fun _ socket ->
        match Cl.round_trip ~socket (points_to_line 1 probe_var) with
        | Ok l -> targets_of_line l
        | Error e -> failwith ("chaos: live probe failed: " ^ Cl.describe e))
  in
  (* -- gate: corrupt snapshot is rejected, answer still correct ----- *)
  let bad = tmp "bad.snap" in
  let bytes_of f =
    let ic = open_in_bin f in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  in
  let b = Bytes.of_string (bytes_of snap) in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
  let oc = open_out_bin bad in
  output_bytes oc b;
  close_out oc;
  let corrupt_fallback_ok =
    with_server
      {
        Sv.default_config with
        socket_path = tmp "corrupt.sock";
        snapshot_path = Some bad;
        shards = 2;
      }
      (fun _ socket ->
        let answer =
          match Cl.round_trip ~socket (points_to_line 2 probe_var) with
          | Ok l -> targets_of_line l
          | Error _ -> None
        in
        let snapshot_active =
          match Cl.round_trip ~socket "{\"id\":3,\"op\":\"stats\"}" with
          | Ok l -> stat_of_line l [ "snapshot" ] = Some (Json.Bool true)
          | Error _ -> true
        in
        answer <> None && answer = live_targets && not snapshot_active)
  in
  Fmt.pr "corrupt snapshot: rejected + correct live answer  %s@."
    (if corrupt_fallback_ok then "ok" else "FAIL");
  (* -- gate: good snapshot answers without a single shard solve ----- *)
  let n_warm = 40 in
  let snapshot_oread_ok, snapshot_targets_ok =
    with_server
      {
        Sv.default_config with
        socket_path = tmp "snap.sock";
        snapshot_path = Some snap;
        shards = 2;
      }
      (fun _ socket ->
        let all_ok = ref true in
        let first_targets = ref None in
        for i = 0 to n_warm - 1 do
          let var = vars.(i mod Array.length vars) in
          match Cl.round_trip ~socket (points_to_line (100 + i) var) with
          | Ok l ->
              if Pr.status_of_line l <> Pr.S_ok then all_ok := false;
              if var = probe_var && !first_targets = None then
                first_targets := targets_of_line l
          | Error _ -> all_ok := false
        done;
        let solves =
          match Cl.round_trip ~socket "{\"id\":4,\"op\":\"stats\"}" with
          | Error _ -> max_int
          | Ok l -> (
              match stat_of_line l [ "shards" ] with
              | Some (Json.Arr shards) ->
                  List.fold_left
                    (fun acc sh ->
                      acc
                      + Option.value ~default:0
                          (Option.bind (Json.member "solves" sh) Json.to_int))
                    0 shards
              | _ -> max_int)
        in
        (!all_ok && solves = 0, !first_targets = live_targets))
  in
  Fmt.pr "good snapshot: %d queries, zero shard solves      %s@." n_warm
    (if snapshot_oread_ok then "ok" else "FAIL");
  Fmt.pr "good snapshot: answers match the live solve       %s@."
    (if snapshot_targets_ok then "ok" else "FAIL");
  (* -- the chaos run: faults under load ----------------------------- *)
  let shards = 3 in
  let n = if !quick then 160 else 400 in
  let load = 4 in
  let kills = 2 and wedges = 1 in
  let wedge_ms = 300 in
  let recovery_bound_ms = 2000. in
  let queries =
    Array.of_list
      (Servebench.generate
         ~mix:{ Servebench.m_good = 8; m_poison = 2; m_slow = 0 }
         ~fresh_frac:0.5 ~seed:4242L ~n ~vars ~deadline_ms:4000 ~slow_ms:40 ())
  in
  (* map the time-based schedule onto query indices: fault f lands when
     the stream reaches index at_ms * n / span_ms — deterministic and
     immune to how fast the queries actually drain *)
  let span_ms = 1000 in
  let schedule =
    Servebench.fault_schedule ~kills ~wedges ~seed:99L ~shards ~span_ms
      ~wedge_ms ()
  in
  let faults_at = Array.make n [] in
  let kill_indices = ref [] in
  List.iter
    (fun ev ->
      let idx = min (n - 1) (ev.Servebench.f_at_ms * n / span_ms) in
      (match ev.Servebench.f_fault with
      | Servebench.Kill_shard _ -> kill_indices := idx :: !kill_indices
      | Servebench.Wedge_shard _ -> ());
      faults_at.(idx) <- ev.Servebench.f_fault :: faults_at.(idx))
    schedule;
  let config =
    {
      Sv.default_config with
      socket_path = tmp "chaos.sock";
      snapshot_path = Some snap;
      shards;
      supervise = not !inject_no_supervise;
      heartbeat_grace_ms = 150;
      restart_budget = 8;
      restart_window_ms = 10_000;
    }
  in
  let lat_ns = Array.make n 0 in
  let failed_good = ref 0 and answered = ref 0 in
  let fired = ref [] in
  let restarts_seen, shards_down =
    with_server config (fun h socket ->
        let next = Atomic.make 0 in
        let fired_m = Mutex.create () in
        let worker _ =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              List.iter
                (fun f ->
                  let okay =
                    match f with
                    | Servebench.Kill_shard s -> Sv.chaos_kill_shard h s
                    | Servebench.Wedge_shard (s, ms) ->
                        Sv.chaos_wedge_shard h s ~wedge_ms:ms
                  in
                  if okay then begin
                    Mutex.lock fired_m;
                    fired := Servebench.fault_name f :: !fired;
                    Mutex.unlock fired_m
                  end)
                faults_at.(i);
              let q = queries.(i) in
              let t0 = D.now_ns () in
              let outcome =
                Cl.with_retry
                  ~policy:{ Cl.default_policy with attempts = 4; seed = i }
                  ~socket q.Servebench.q_line
              in
              lat_ns.(i) <- D.now_ns () - t0;
              (match (q.Servebench.q_kind, outcome.Cl.reply) with
              | Servebench.Good, Ok l ->
                  incr answered;
                  if Pr.status_of_line l <> Pr.S_ok then incr failed_good
              | Servebench.Good, Error _ ->
                  incr answered;
                  incr failed_good
              | _, _ -> incr answered);
              loop ()
            end
          in
          loop ()
        in
        let threads = List.init load (Thread.create worker) in
        List.iter Thread.join threads;
        (* supervision counters, read live before drain *)
        match Cl.round_trip ~socket "{\"id\":5,\"op\":\"stats\"}" with
        | Error _ -> (-1, -1)
        | Ok l ->
            let counter k =
              Option.value ~default:(-1)
                (Option.bind (stat_of_line l [ "counters"; k ]) Json.to_int)
            in
            (counter "serve.shard_restarts", counter "serve.shards_down"))
  in
  (* recovery: the tail of queries issued right behind each kill *)
  let recovery_window = max 8 (n / 20) in
  let recovery_lats =
    List.concat_map
      (fun k ->
        Array.to_list (Array.sub lat_ns k (min recovery_window (n - k))))
      !kill_indices
  in
  let recovery_p99_ms =
    match List.sort compare recovery_lats with
    | [] -> 0.
    | sorted ->
        let arr = Array.of_list sorted in
        float_of_int arr.(min (Array.length arr - 1)
                            (Array.length arr * 99 / 100))
        /. 1e6
  in
  let zero_failed_good = !failed_good = 0 && !answered = n in
  let recovery_ok = recovery_p99_ms <= recovery_bound_ms in
  let restarts_ok =
    if !inject_no_supervise then true (* nothing to observe by design *)
    else restarts_seen >= 1
  in
  Fmt.pr "chaos stream: n=%d faults=[%s] failed_good=%d     %s@." n
    (String.concat ", " (List.rev !fired))
    !failed_good
    (if zero_failed_good then "ok" else "FAIL");
  Fmt.pr "recovery p99 over kill windows: %.1fms (<= %.0fms) %s@."
    recovery_p99_ms recovery_bound_ms
    (if recovery_ok then "ok" else "FAIL");
  Fmt.pr "supervisor restarts observed: %d down: %d         %s@." restarts_seen
    shards_down
    (if restarts_ok then "ok" else "FAIL");
  let gates =
    [
      ("corrupt_fallback", corrupt_fallback_ok);
      ("snapshot_oread", snapshot_oread_ok);
      ("snapshot_answers_match", snapshot_targets_ok);
      ("zero_failed_good", zero_failed_good);
      ("recovery_p99", recovery_ok);
      ("restarts_observed", restarts_ok);
    ]
  in
  Json.write_file "BENCH_chaos.json"
    (Json.Obj
       [
         ("schema", Json.Str "cla.bench.chaos/v1");
         ("quick", Json.Bool !quick);
         ("profile", Json.Str p.Profile.name);
         ("scale", Json.Float p.Profile.scale);
         ("supervised", Json.Bool (not !inject_no_supervise));
         ("shards", Json.Int shards);
         ("n", Json.Int n);
         ("load", Json.Int load);
         ( "faults",
           Json.Arr (List.map (fun s -> Json.Str s) (List.rev !fired)) );
         ("failed_good", Json.Int !failed_good);
         ("recovery_p99_ms", Json.Float recovery_p99_ms);
         ("recovery_bound_ms", Json.Float recovery_bound_ms);
         ("shard_restarts", Json.Int restarts_seen);
         ("shards_down", Json.Int shards_down);
         ( "gates",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Bool v)) gates) );
       ]);
  Fmt.pr "wrote BENCH_chaos.json@.";
  if List.exists (fun (_, v) -> not v) gates then begin
    Fmt.pr "CHAOS GATE FAILED: %s@."
      (String.concat ", "
         (List.filter_map (fun (k, v) -> if v then None else Some k) gates));
    exit 1
  end

(* --- incremental: delta compile-link-solve vs from-scratch ----------- *)

(* The hard gate behind the incremental pipeline: replay a seeded
   Editstream (one-TU append-only edits; with probability --p-remove a
   step instead removes a prior edit) and, at every step, redo the
   from-scratch pipeline over the same sources — every unit recompiled
   through Compilep.compile_string (the compile cache never sees them),
   a full Linkp.link_views merge, and a cold Andersen.solve.  The cold
   solve runs over the incremental driver's own linked view so
   Solution.equal compares like ids (the full merge interleaves ids
   where the delta linker appends; the constraint sets are identical —
   the delta-link tests check that equivalence name-wise).

   --inject-stale swaps the previous step's from-scratch solution into
   the equality check, so the gate must fail and the section must exit
   1 — proof the gate can fire. *)

let incremental () =
  hr ();
  (* vortex, not burlap: unit count is what the compile cache leverages
     (Genc splits ~1200 variables per file), and vortex's 11.4K
     variables give 9 units at full scale where burlap gives 5 *)
  let scale =
    match !solver_scale with
    | Some s -> s
    | None -> if !quick then 0.5 else 1.0
  in
  let steps = !incr_steps and p_remove = !incr_p_remove in
  let p = Profile.scaled scale Profile.vortex in
  Fmt.pr
    "INCREMENTAL: %d-step edit stream over %s (scale %.2f, p_remove %.2f, \
     seed %d)%s@."
    steps p.Profile.name p.Profile.scale p_remove !incr_seed
    (if !inject_stale then " [INJECTING STALE SOLUTION]" else "");
  hr ();
  let es =
    Editstream.create ~seed:(Int64.of_int !incr_seed) ~p_remove p
  in
  (* from-scratch baseline: recompile every unit (no compile cache),
     full link, cold solve — serialization round-trips included, exactly
     like the incremental driver's own unit handling *)
  let scratch sources view =
    let t0 = Unix.gettimeofday () in
    let views =
      List.map
        (fun (file, src) ->
          Objfile.view_of_string
            (Objfile.write (Compilep.compile_string ~file src)))
        sources
    in
    let t1 = Unix.gettimeofday () in
    let _db, _stats = Linkp.link_views views in
    let t2 = Unix.gettimeofday () in
    let sol = (Andersen.solve view).Andersen.solution in
    let t3 = Unix.gettimeofday () in
    (sol, t1 -. t0, t2 -. t1, t3 -. t2)
  in
  let t, s0 = Incremental.create (Editstream.sources es) in
  let n_files = s0.Incremental.sources in
  let base_scratch, _, _, _ =
    scratch (Editstream.sources es) (Incremental.view t)
  in
  let base_ok = Solution.equal (Incremental.solution t) base_scratch in
  Fmt.pr "base: %d unit(s), solution %s scratch@." n_files
    (if base_ok then "==" else "!=");
  let prev_scratch = ref base_scratch in
  let rows = ref [] in
  let all_equal = ref base_ok in
  let cache_ok = ref true in
  let adds_resumed = ref true in
  let totals = ref [] in
  for _ = 1 to steps do
    let step = Editstream.next es in
    let s = Incremental.update t step.Editstream.ssources in
    let inc_total =
      s.Incremental.wall_compile_s +. s.Incremental.wall_link_s
      +. s.Incremental.wall_solve_s
    in
    let sol_scratch, sc_compile, sc_link, sc_solve =
      scratch step.Editstream.ssources (Incremental.view t)
    in
    let sc_total = sc_compile +. sc_link +. sc_solve in
    (* the gate; --inject-stale deliberately compares against the
       previous step's solution, which each edit invalidates *)
    let oracle = if !inject_stale then !prev_scratch else sol_scratch in
    let equal = Solution.equal (Incremental.solution t) oracle in
    prev_scratch := sol_scratch;
    let speedup = if inc_total > 0. then sc_total /. inc_total else 0. in
    totals := (inc_total, sc_total) :: !totals;
    if not equal then all_equal := false;
    if s.Incremental.cache_misses <> 1
       || s.Incremental.cache_hits <> n_files - 1
    then cache_ok := false;
    if (not step.Editstream.sremoval) && not s.Incremental.resumed then
      adds_resumed := false;
    Fmt.pr
      "step %2d %-9s %-28s inc %6.1fms  scratch %6.1fms  %5.1fx  %s@."
      step.Editstream.snum
      (if step.Editstream.sremoval then "(remove)"
       else if s.Incremental.resumed then "(resume)"
       else "(fallback)")
      step.Editstream.sdesc (inc_total *. 1e3) (sc_total *. 1e3) speedup
      (if equal then "ok" else "STALE");
    rows :=
      Json.Obj
        [
          ("step", Json.Int step.Editstream.snum);
          ("desc", Json.Str step.Editstream.sdesc);
          ("removal", Json.Bool step.Editstream.sremoval);
          ("resumed", Json.Bool s.Incremental.resumed);
          ("cache_hits", Json.Int s.Incremental.cache_hits);
          ("cache_misses", Json.Int s.Incremental.cache_misses);
          ("inc_compile_s", Json.Float s.Incremental.wall_compile_s);
          ("inc_link_s", Json.Float s.Incremental.wall_link_s);
          ("inc_solve_s", Json.Float s.Incremental.wall_solve_s);
          ("inc_total_s", Json.Float inc_total);
          ("scratch_compile_s", Json.Float sc_compile);
          ("scratch_link_s", Json.Float sc_link);
          ("scratch_solve_s", Json.Float sc_solve);
          ("scratch_total_s", Json.Float sc_total);
          ("speedup", Json.Float speedup);
          ("equal", Json.Bool equal);
        ]
      :: !rows
  done;
  (* the steady-state claim: aggregate the last three steps (noise at
     millisecond walls makes a single step an unfair judge either way) *)
  let tail = List.filteri (fun i _ -> i < 3) !totals in
  let tail_speedup =
    let inc = List.fold_left (fun a (i, _) -> a +. i) 0. tail
    and sc = List.fold_left (fun a (_, s) -> a +. s) 0. tail in
    if inc > 0. then sc /. inc else 0.
  in
  let speedup_ok = tail_speedup > 1.0 in
  Fmt.pr "tail speedup (last %d step(s)): %.1fx (> 1.0) %s@."
    (List.length tail) tail_speedup
    (if speedup_ok then "ok" else "FAIL");
  let gates =
    [
      ("solutions_equal", !all_equal);
      ("cache_discipline", !cache_ok);
      ("additions_resumed", !adds_resumed);
      ("tail_speedup_gt_1", speedup_ok);
    ]
  in
  Json.write_file "BENCH_incremental.json"
    (Json.Obj
       [
         ("schema", Json.Str "cla.bench.incremental/v1");
         ("quick", Json.Bool !quick);
         ("profile", Json.Str p.Profile.name);
         ("scale", Json.Float p.Profile.scale);
         ("steps", Json.Int steps);
         ("p_remove", Json.Float p_remove);
         ("seed", Json.Int !incr_seed);
         ("injected_stale", Json.Bool !inject_stale);
         ("units", Json.Int n_files);
         ("tail_speedup", Json.Float tail_speedup);
         ("rows", Json.Arr (List.rev !rows));
         ( "gates",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Bool v)) gates) );
       ]);
  Fmt.pr "wrote BENCH_incremental.json@.";
  if List.exists (fun (_, v) -> not v) gates then begin
    Fmt.pr "INCREMENTAL GATE FAILED: %s@."
      (String.concat ", "
         (List.filter_map (fun (k, v) -> if v then None else Some k) gates));
    exit 1
  end

let () =
  let t0 = Unix.gettimeofday () in
  if want "table2" then table2 ();
  if want "table3" then table3 ();
  if want "table4" then table4 ();
  if want "ablation" then ablation ();
  if want "solvers" then solvers ();
  if want "transforms" then transforms ();
  if want "figures" then figures ();
  if want "bechamel" then bechamel ();
  if want "parallel" then parallel ();
  if want "solver" then solver ();
  if want "openworld" then openworld ();
  if want "serve" then serve ();
  if want "chaos" then chaos ();
  if want "incremental" then incremental ();
  if !bench_rows <> [] then begin
    Json.write_file "BENCH_pipeline.json"
      (Json.Obj
         [
           ("schema", Json.Str "cla.bench.pipeline/v1");
           ("quick", Json.Bool !quick);
           ("rows", Json.Arr (List.rev !bench_rows));
         ]);
    Fmt.pr "wrote BENCH_pipeline.json (%d row(s))@."
      (List.length !bench_rows)
  end;
  hr ();
  Fmt.pr "total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
