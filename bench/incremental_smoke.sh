#!/bin/sh
# Incremental-pipeline smoke test, in three acts:
#   1. `bench incremental` must pass its hard gate honestly: replaying
#      the edit stream keeps Solution.equal at every step, the compile
#      cache scores 1 miss / n-1 hits per one-TU edit, additions resume
#      the solver, the tail speedup beats 1.0, and a schema-tagged
#      BENCH_incremental.json lands with every gate true;
#   2. --inject-stale compares each step against the previous step's
#      solution and must blow the gate (exit 1) — proof it can fire;
#   3. `cla serve --watch DIR` answers across an edit: query, append an
#      assignment to one TU, force a rescan with the `reanalyze` op
#      (one recompile, delta link, solver resume, atomic swap), and the
#      next query must see the new points-to target.
# Wired into `dune runtest` (see bench/dune); takes cla.exe and the
# bench binary.
set -eu

cla=${1:?usage: incremental_smoke.sh path/to/cla.exe path/to/main.exe}
bench=${2:?usage: incremental_smoke.sh path/to/cla.exe path/to/main.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
srv_pid=
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || :
  rm -rf "$dir"
}
trap cleanup EXIT INT TERM
cd "$dir"

# 1. honest run: the gate must hold and the report must say so
"$bench" --quick incremental >out.txt 2>err.txt || {
  echo "incremental_smoke.sh: bench incremental failed honestly" >&2
  cat out.txt err.txt >&2
  exit 1
}
grep -q 'cla\.bench\.incremental/v1' BENCH_incremental.json || {
  echo "incremental_smoke.sh: schema missing from BENCH_incremental.json" >&2
  cat BENCH_incremental.json >&2
  exit 1
}
for gate in solutions_equal cache_discipline additions_resumed \
            tail_speedup_gt_1; do
  grep -q "\"$gate\": *true" BENCH_incremental.json || {
    echo "incremental_smoke.sh: gate $gate not true" >&2
    cat BENCH_incremental.json >&2
    exit 1
  }
done
# the default stream must exercise both solver paths
grep -q '(resume)' out.txt || {
  echo "incremental_smoke.sh: no step resumed the solver" >&2
  cat out.txt >&2
  exit 1
}
grep -q '(remove)' out.txt || {
  echo "incremental_smoke.sh: no removal step in the default stream" >&2
  cat out.txt >&2
  exit 1
}

# 2. the gate must bite: a stale solution has to fail the run
if "$bench" --quick --inject-stale incremental >out2.txt 2>err2.txt; then
  echo "incremental_smoke.sh: --inject-stale did NOT fail the gate" >&2
  cat out2.txt >&2
  exit 1
fi
grep -q 'INCREMENTAL GATE FAILED.*solutions_equal' out2.txt || {
  echo "incremental_smoke.sh: stale run failed for the wrong reason" >&2
  cat out2.txt err2.txt >&2
  exit 1
}

# 3. live watch round-trip: edit -> reanalyze -> the answer moved.
#    A huge poll period makes the explicit `reanalyze` op the only
#    trigger, so the test is deterministic.
mkdir src
cat > src/a.c <<'EOF'
int x; int *p;
void f(void) { p = &x; }
EOF
cat > src/b.c <<'EOF'
extern int *p; int *q;
void g(void) { q = p; }
EOF

"$cla" serve --watch src --socket s.sock --watch-poll-ms 60000 \
  > serve.log 2>&1 &
srv_pid=$!
i=0
while [ ! -S s.sock ]; do
  i=$((i + 1))
  [ "$i" -lt 200 ] || {
    echo "incremental_smoke.sh: watch server never bound" >&2
    cat serve.log >&2
    exit 1
  }
  sleep 0.05
done

out=$("$cla" query --socket s.sock --points-to q)
case "$out" in
  *'"x"'*) : ;;
  *) echo "incremental_smoke.sh: baseline points-to q missing x: $out" >&2
     exit 1 ;;
esac
case "$out" in
  *'"z"'*) echo "incremental_smoke.sh: z visible before the edit: $out" >&2
           exit 1 ;;
  *) : ;;
esac

# the one-TU edit: append an assignment giving q a second target
cat >> src/b.c <<'EOF'
int z;
void h(void) { q = &z; }
EOF

re=$("$cla" query --socket s.sock --raw '{"id":1,"op":"reanalyze"}')
case "$re" in
  *'"changed": 1'*) : ;;
  *) echo "incremental_smoke.sh: reanalyze saw wrong change count: $re" >&2
     exit 1 ;;
esac
case "$re" in
  *'"cache_hits": 1'*) : ;;
  *) echo "incremental_smoke.sh: unchanged TU was recompiled: $re" >&2
     exit 1 ;;
esac
case "$re" in
  *'"resumed": true'*) : ;;
  *) echo "incremental_smoke.sh: append-only edit did not resume: $re" >&2
     exit 1 ;;
esac

out=$("$cla" query --socket s.sock --points-to q)
case "$out" in
  *'"x"'*) : ;;
  *) echo "incremental_smoke.sh: post-edit points-to q lost x: $out" >&2
     exit 1 ;;
esac
case "$out" in
  *'"z"'*) : ;;
  *) echo "incremental_smoke.sh: post-edit points-to q missing z: $out" >&2
     exit 1 ;;
esac

# a second reanalyze with nothing changed must be a cheap no-op
re=$("$cla" query --socket s.sock --raw '{"id":2,"op":"reanalyze"}')
case "$re" in
  *'"changed": 0'*) : ;;
  *) echo "incremental_smoke.sh: no-op reanalyze reported changes: $re" >&2
     exit 1 ;;
esac

kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
srv_pid=
if [ "$rc" -ne 0 ]; then
  echo "incremental_smoke.sh: watch server exited $rc on SIGTERM" >&2
  cat serve.log >&2
  exit 1
fi

echo "incremental_smoke.sh: ok"
