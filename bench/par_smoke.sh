#!/bin/sh
# Parallelism smoke test: the bench --jobs sweep must report identical
# bytes for every job count (and write a parseable BENCH_parallel.json),
# `cla compile -j2` must produce objects byte-identical to -j1, and a
# negative job count must be a clean usage error, not a crash.
# Wired into `dune runtest` (see bench/dune); takes the cla binary as $1
# and the bench binary as $2.
set -eu

cla=${1:?usage: par_smoke.sh path/to/cla.exe path/to/main.exe}
bench=${2:?usage: par_smoke.sh path/to/cla.exe path/to/main.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

# 1. Tiny sweep: exits 1 on any divergence (bytes or solution) from
#    -j1 and writes BENCH_parallel.json.
"$bench" parallel --jobs=1,2 --units=2 --quick >/dev/null
grep -q 'cla\.bench\.parallel/v2' BENCH_parallel.json || {
  echo "par_smoke.sh: schema missing from BENCH_parallel.json" >&2
  cat BENCH_parallel.json >&2
  exit 1
}
if grep -q '"identical": false' BENCH_parallel.json; then
  echo "par_smoke.sh: a sweep row reports identical=false" >&2
  cat BENCH_parallel.json >&2
  exit 1
fi

# 2. cla compile -j2 object bytes must match -j1 exactly.  Compile the
#    same sources twice (objects embed the source path, so the paths
#    must not change between runs), stashing the -j1 outputs in between.
"$cla" gen nethack --scale 0.05 --dir srcA >/dev/null
"$cla" compile -j 1 srcA/*.c >/dev/null
mkdir j1 && mv srcA/*.clo j1/
"$cla" compile -j 2 srcA/*.c >/dev/null
for a in srcA/*.clo; do
  b=j1/$(basename "$a")
  cmp -s "$a" "$b" || {
    echo "par_smoke.sh: $a and $b differ (-j2 vs -j1)" >&2
    exit 1
  }
done

# 3. Negative job counts are a usage error (exit 2), not a crash.
rc=0
"$cla" compile --jobs=-2 srcA/*.c >/dev/null 2>err.txt || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "par_smoke.sh: cla compile --jobs=-2 exited $rc, want 2" >&2
  cat err.txt >&2
  exit 1
fi
grep -q 'invalid job count' err.txt || {
  echo "par_smoke.sh: missing 'invalid job count' message" >&2
  cat err.txt >&2
  exit 1
}

echo "par_smoke.sh: ok"
