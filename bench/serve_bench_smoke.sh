#!/bin/sh
# Serving-sweep smoke test: a tiny shard x load sweep must write a
# schema-tagged BENCH_serve.json where every cell carries throughput and
# latency percentile fields, with p50 <= p99 per cell (the quantile
# walk is monotone; a violation means the histogram is broken).  Wired
# into `dune runtest` (see bench/dune); takes the bench binary as $1.
set -eu

bench=${1:?usage: serve_bench_smoke.sh path/to/main.exe}
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

"$bench" --quick --shards=1,2 --load=2 serve >out.txt || {
  echo "serve_bench_smoke.sh: bench serve failed" >&2
  cat out.txt >&2
  exit 1
}

grep -q 'cla\.bench\.serve/v1' BENCH_serve.json || {
  echo "serve_bench_smoke.sh: schema missing from BENCH_serve.json" >&2
  cat BENCH_serve.json >&2
  exit 1
}

# every cell must carry the percentile fields and throughput
cells=$(grep -c '"shards":' BENCH_serve.json)
[ "$cells" -eq 2 ] || {
  echo "serve_bench_smoke.sh: want 2 cells, got $cells" >&2
  exit 1
}
for field in throughput_qps p50_ms p90_ms p99_ms p999_ms; do
  n=$(grep -c "\"$field\":" BENCH_serve.json)
  [ "$n" -ge "$cells" ] || {
    echo "serve_bench_smoke.sh: field $field present in $n of $cells cells" >&2
    cat BENCH_serve.json >&2
    exit 1
  }
done

# p50 <= p99 in every latency block (client-side and server-reported)
awk '
  /"p50_ms":/ { gsub(/[",]/, ""); p50 = $2 }
  /"p99_ms":/ {
    gsub(/[",]/, "");
    if (p50 == "") { print "p99 before p50?"; exit 1 }
    if (p50 + 0 > $2 + 0) {
      printf "p50 %s > p99 %s\n", p50, $2; exit 1
    }
    p50 = ""
  }
' BENCH_serve.json || {
  echo "serve_bench_smoke.sh: p50 > p99 in a latency block" >&2
  cat BENCH_serve.json >&2
  exit 1
}

echo "serve_bench_smoke.sh: ok"
