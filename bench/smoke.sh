#!/bin/sh
# Pipeline smoke test for the observability export path: generate a
# small synthetic workload, run it through compile -> link -> analyze
# with --stats-json, and check the export carries the expected metrics.
# Wired into `dune runtest` (see bench/dune); takes the cla binary as $1.
set -eu

cla=${1:?usage: smoke.sh path/to/cla.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

"$cla" gen nethack --scale 0.05 --dir src >/dev/null
"$cla" compile src/*.c >/dev/null
"$cla" link src/*.clo -o prog.cla >/dev/null
"$cla" analyze prog.cla --stats-json stats.json >/dev/null

for key in '"analyze.passes"' '"analyze.pretrans.cache_hits"' \
           '"analyze.pool.hits"' '"analyze.pool.misses"' \
           '"analyze.alloc_bytes"' '"load.blocks.in_core"'; do
  grep -q "$key" stats.json || {
    echo "smoke.sh: $key missing from stats.json" >&2
    cat stats.json >&2
    exit 1
  }
done
echo "smoke.sh: ok"
