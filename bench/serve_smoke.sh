#!/bin/sh
# Serving smoke test, mirroring faults_smoke.sh: build a small database,
# boot `cla serve` for real, and check the resilience contract from the
# outside:
#   1. good queries answer (exit 0), unknown variables reject (exit 2),
#      a sleep past its deadline times out (exit 4), garbage is a clean
#      error (exit 2) — and the server survives all of it;
#   2. with one execution slot and no waiting room, a busy server sheds
#      (exit 4) and `cla query --retry` rides the backoff to an answer;
#   3. `cla serve-bench` drives a mixed good/poisoned/slow stream and
#      must report zero transport errors and zero malformed replies;
#   4. `cla stats` snapshots the live server without restarting it:
#      uptime, per-shard latency percentiles, and the query counters
#      the run just generated;
#   5. SIGTERM drains gracefully: the server exits 0 and prints its
#      final counters.
# Wired into `dune runtest` (see bench/dune); takes the cla binary as $1.
set -eu

cla=${1:?usage: serve_smoke.sh path/to/cla.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac

dir=$(mktemp -d)
srv_pid=
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || :
  rm -rf "$dir"
}
trap cleanup EXIT INT TERM
cd "$dir"

cat > a.c <<'EOF'
int x, y, z;
int *p, *q, *r;
void f(void) { p = &x; q = &y; r = p; }
void g(void) { q = p; }
EOF
"$cla" compile a.c -o a.clo >/dev/null
"$cla" link a.clo -o prog.cla >/dev/null

"$cla" serve prog.cla --socket s.sock --allow-sleep \
  --max-inflight 1 --max-queue 0 --watchdog-grace-ms 100 > serve.log 2>&1 &
srv_pid=$!

# wait for the socket (bounded)
i=0
while [ ! -S s.sock ]; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "serve_smoke.sh: server never bound" >&2; exit 1; }
  sleep 0.05
done

expect() {
  want=$1; shift
  rc=0
  "$@" >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne "$want" ]; then
    echo "serve_smoke.sh: '$*' exited $rc, want $want" >&2
    exit 1
  fi
}

# 1. the protocol's verdicts map to the documented exit codes
expect 0 "$cla" query --socket s.sock --ping
expect 0 "$cla" query --socket s.sock --points-to p
expect 0 "$cla" query --socket s.sock --alias p,q
expect 2 "$cla" query --socket s.sock --points-to no_such_var
expect 4 "$cla" query --socket s.sock --raw \
  '{"id":1,"op":"sleep","ms":400,"deadline_ms":40}'
expect 2 "$cla" query --socket s.sock --raw 'this is not json'

# the alias answer itself must be right (q = p, so p and q alias)
out=$("$cla" query --socket s.sock --alias p,q)
case "$out" in
  *'"aliased": true'*) : ;;
  *) echo "serve_smoke.sh: expected p,q to alias: $out" >&2; exit 1 ;;
esac

# 2. occupy the single slot; the next bare query is shed, --retry wins
"$cla" query --socket s.sock --raw \
  '{"id":2,"op":"sleep","ms":500,"deadline_ms":5000}' >/dev/null 2>&1 &
slow_pid=$!
sleep 0.1
expect 4 "$cla" query --socket s.sock --points-to p
expect 0 "$cla" query --socket s.sock --points-to p --retry --attempts 10
wait "$slow_pid" || { echo "serve_smoke.sh: slow query failed" >&2; exit 1; }

# 3. a mixed good/poisoned/slow stream: exits non-zero if any query is
#    dropped, any reply is malformed, or the server dies mid-stream
"$cla" serve-bench prog.cla --socket s.sock -n 40 --clients 4 \
  --slow-ms 100 --deadline-ms 2000 >/dev/null || {
  echo "serve_smoke.sh: serve-bench failed (exit $?)" >&2
  exit 1
}

# 4. live introspection: `cla stats` snapshots the running server.
#    The table view must answer at all; the raw view must carry uptime,
#    per-shard percentile blocks, and the counters the stream above
#    just generated.  And the numbers must be sane: the server has
#    answered dozens of queries by now, so serve.queries >= 40 and
#    p50 <= p99 in every latency block.
expect 0 "$cla" stats --socket s.sock
"$cla" stats --socket s.sock --json > stats.json
for field in '"uptime_s"' '"shards"' '"p50_ms"' '"p99_ms"' '"serve.queries"'; do
  grep -q "$field" stats.json || {
    echo "serve_smoke.sh: stats snapshot missing $field" >&2
    cat stats.json >&2
    exit 1
  }
done
queries=$(sed -n 's/.*"serve\.queries": \([0-9]*\).*/\1/p' stats.json)
[ -n "$queries" ] && [ "$queries" -ge 40 ] || {
  echo "serve_smoke.sh: stats reports serve.queries=$queries, want >= 40" >&2
  cat stats.json >&2
  exit 1
}
awk '
  BEGIN { RS = "," }
  /"p50_ms":/ { gsub(/[^0-9.eE+-]/, "", $0); p50 = $0 }
  /"p99_ms":/ {
    gsub(/[^0-9.eE+-]/, "", $0)
    if (p50 == "") { print "p99 before p50?"; exit 1 }
    if (p50 + 0 > $0 + 0) { printf "p50 %s > p99 %s\n", p50, $0; exit 1 }
    p50 = ""
  }
' stats.json || {
  echo "serve_smoke.sh: p50 > p99 in a stats latency block" >&2
  cat stats.json >&2
  exit 1
}
# a verbose query must surface the server-side telemetry on stderr
"$cla" query --socket s.sock --points-to p --verbose 2> verbose.err >/dev/null
grep -q '^server: shard=' verbose.err || {
  echo "serve_smoke.sh: query --verbose printed no server telemetry" >&2
  cat verbose.err >&2
  exit 1
}

# 5. graceful drain: exit 0, socket unlinked, counters printed
kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
srv_pid=
if [ "$rc" -ne 0 ]; then
  echo "serve_smoke.sh: server exited $rc on SIGTERM" >&2
  cat serve.log >&2
  exit 1
fi
[ ! -S s.sock ] || { echo "serve_smoke.sh: socket left behind" >&2; exit 1; }
grep -q 'drained\.' serve.log || {
  echo "serve_smoke.sh: no drain summary in server log" >&2
  cat serve.log >&2
  exit 1
}

echo "serve_smoke.sh: ok"
