#!/bin/sh
# Parallel-solve oracle smoke test: the bench parallel sweep must
# hard-gate byte-identical solutions at j2 (exit 0 when they match,
# and — proven via --inject-divergence — exit 1 when one diverges).
# Also checks `cla analyze -j 2` answers match -j 1 end to end, and
# that an oversubscribed `cla serve --shards` is a clean usage error.
# Wired into `dune runtest` (see bench/dune); takes the cla binary as
# $1 and the bench binary as $2.
set -eu

cla=${1:?usage: par_solver_smoke.sh path/to/cla.exe path/to/main.exe}
bench=${2:?usage: par_solver_smoke.sh path/to/cla.exe path/to/main.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

# 1. The j2 solve oracle passes on an honest run: every cell solves
#    with both parallel solvers and Solution.equal against -j1.
"$bench" parallel --jobs=1,2 --units=2 --quick >/dev/null
if grep -q '"identical": false' BENCH_parallel.json; then
  echo "par_solver_smoke.sh: honest sweep reports identical=false" >&2
  cat BENCH_parallel.json >&2
  exit 1
fi
grep -q 'solve_pretrans_wall_s' BENCH_parallel.json || {
  echo "par_solver_smoke.sh: v2 sweep has no solve cells" >&2
  cat BENCH_parallel.json >&2
  exit 1
}

# 2. The gate can actually fail: --inject-divergence perturbs one j>=2
#    solution and the sweep must exit 1 and say the solution diverged.
rc=0
"$bench" parallel --jobs=1,2 --units=2 --quick --inject-divergence \
  >/dev/null 2>err.txt || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "par_solver_smoke.sh: injected divergence exited $rc, want 1" >&2
  cat err.txt >&2
  exit 1
fi
grep -q 'diverged' err.txt || {
  echo "par_solver_smoke.sh: missing divergence message" >&2
  cat err.txt >&2
  exit 1
}

# 3. End to end: cla analyze -j 2 prints the same summary as -j 1 for
#    both parallel solvers (same variable/relation counts, same rung).
"$cla" gen nethack --scale 0.05 --dir src >/dev/null
"$cla" compile src/*.c >/dev/null
"$cla" link src/*.clo -o prog.cla >/dev/null
for algo in pretransitive bitvector; do
  "$cla" analyze --algo "$algo" -j 1 prog.cla | sed 's/, [0-9][0-9.]*s//' >j1.txt
  "$cla" analyze --algo "$algo" -j 2 prog.cla | sed 's/, [0-9][0-9.]*s//' >j2.txt
  cmp -s j1.txt j2.txt || {
    echo "par_solver_smoke.sh: analyze -j2 differs from -j1 ($algo)" >&2
    diff j1.txt j2.txt >&2 || true
    exit 1
  }
done

# 4. Shard counts past the host's pool capacity are refused with exit 2
#    (oversubscription), not accepted.
rc=0
"$cla" serve prog.cla --shards 4096 >/dev/null 2>err.txt || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "par_solver_smoke.sh: serve --shards 4096 exited $rc, want 2" >&2
  cat err.txt >&2
  exit 1
fi
grep -q 'invalid shard count' err.txt || {
  echo "par_solver_smoke.sh: missing shard-cap message" >&2
  cat err.txt >&2
  exit 1
}

echo "par_solver_smoke.sh: ok"
