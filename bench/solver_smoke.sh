#!/bin/sh
# Solver micro-bench smoke test: a tiny --scale sweep must report zero
# divergence and write a schema-tagged BENCH_solver.json whose regression
# check round-trips cleanly against itself, and --inject-divergence must
# make the hard-fail path fire (exit 1) — proving the gate is live, not
# decorative.  Wired into `dune runtest` (see bench/dune); takes the
# bench binary as $1.
set -eu

bench=${1:?usage: solver_smoke.sh path/to/main.exe}
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

# 1. Tiny sweep: every solver and config cell must match the sorted-array
#    baseline, and the JSON must carry the schema tag and the summary.
"$bench" --scale=0.05 solver >out.txt
grep -q 'cla\.bench\.solver/v1' BENCH_solver.json || {
  echo "solver_smoke.sh: schema missing from BENCH_solver.json" >&2
  cat BENCH_solver.json >&2
  exit 1
}
grep -q 'dense_speedup_vs_array' BENCH_solver.json || {
  echo "solver_smoke.sh: summary missing from BENCH_solver.json" >&2
  exit 1
}
if grep -q '"equal_to_baseline": false' BENCH_solver.json; then
  echo "solver_smoke.sh: a sweep row reports equal_to_baseline=false" >&2
  cat BENCH_solver.json >&2
  exit 1
fi

# 2. The divergence gate must actually exit 1 when a solution is
#    deliberately perturbed.
rc=0
"$bench" --scale=0.05 --inject-divergence solver >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "solver_smoke.sh: --inject-divergence exited $rc, want 1" >&2
  exit 1
fi

# 3. Regression check against the run's own JSON must be clean (and must
#    not crash on re-parse — proves the file is well-formed).
"$bench" --scale=0.05 --check-against=BENCH_solver.json solver | \
  grep -q 'regression check .*: clean' || {
  echo "solver_smoke.sh: self check-against not clean" >&2
  exit 1
}

echo "solver_smoke.sh: ok"
