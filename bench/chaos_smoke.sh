#!/bin/sh
# Chaos-harness smoke test: the self-healing serve gate must pass with
# faults enabled (kills + wedges against a snapshot-backed sharded
# server recover with zero failed well-formed queries), must write a
# schema-tagged BENCH_chaos.json with every gate true, and must FAIL
# when --inject-no-supervise disables the supervisor — proof the gate
# actually bites.  Wired into `dune runtest` (see bench/dune); takes
# the bench binary as $1.
set -eu

bench=${1:?usage: chaos_smoke.sh path/to/main.exe}
case "$bench" in
  /*) : ;;
  *) bench=$(pwd)/$bench ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

# 1. supervised run: every gate must hold
"$bench" --quick chaos >out.txt 2>err.txt || {
  echo "chaos_smoke.sh: bench chaos failed under supervision" >&2
  cat out.txt err.txt >&2
  exit 1
}

grep -q 'cla\.bench\.chaos/v1' BENCH_chaos.json || {
  echo "chaos_smoke.sh: schema missing from BENCH_chaos.json" >&2
  cat BENCH_chaos.json >&2
  exit 1
}

for gate in corrupt_fallback snapshot_oread snapshot_answers_match \
            zero_failed_good recovery_p99 restarts_observed; do
  grep -q "\"$gate\": *true" BENCH_chaos.json || {
    echo "chaos_smoke.sh: gate $gate not true in BENCH_chaos.json" >&2
    cat BENCH_chaos.json >&2
    exit 1
  }
done

# faults must actually have fired, and the supervisor must have restarted
grep -q '"kill:' BENCH_chaos.json || {
  echo "chaos_smoke.sh: no kill fault fired" >&2
  cat BENCH_chaos.json >&2
  exit 1
}
grep -q '"shard_restarts": *0' BENCH_chaos.json && {
  echo "chaos_smoke.sh: supervised run logged zero restarts" >&2
  cat BENCH_chaos.json >&2
  exit 1
}

# 2. unsupervised run: the same faults must blow the gate (exit 1)
if "$bench" --quick --inject-no-supervise chaos >out2.txt 2>err2.txt; then
  echo "chaos_smoke.sh: --inject-no-supervise did NOT fail the gate" >&2
  cat out2.txt >&2
  exit 1
fi

grep -q 'CHAOS GATE FAILED' out2.txt || {
  echo "chaos_smoke.sh: unsupervised run failed for the wrong reason" >&2
  cat out2.txt err2.txt >&2
  exit 1
}

echo "chaos_smoke.sh: ok"
