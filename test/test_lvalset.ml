(* Property-based validation of the hybrid lval-set representation.

   Every operation is checked against a reference model (OCaml's
   [Set.Make (Int)]) under three pool thresholds — [max_int] (pure
   sorted arrays), [4] (almost everything becomes a bitmap), and the
   default — plus the pool invariants the solvers lean on: canonical
   representation, physical sharing of equal sets, buffer non-retention
   in [of_dyn], and the stamp-based distinctness protocol. *)

open Cla_core
module IS = Set.Make (Int)

let model l = IS.of_list l
let mk pool l = Lvalset.of_list pool l

(* elements drawn from a small range so bitmap density is reachable,
   mixed with an occasional large outlier to exercise sparse tails *)
let elems =
  QCheck.(
    list_of_size Gen.(0 -- 150)
      (map
         (fun (big, x) -> if big then 5000 + (x mod 200) else x mod 300)
         (pair bool (int_bound 100_000))))

let thresholds = [ ("array", max_int); ("hybrid", 4); ("default", 64) ]

let per_threshold name prop =
  List.map
    (fun (tn, th) ->
      QCheck.Test.make ~count:200 ~name:(Fmt.str "%s [%s]" name tn) elems
        (fun l -> prop (Lvalset.create_pool ~dense_threshold:th ()) l))
    thresholds

let contents_match =
  per_threshold "of_list matches reference model" (fun pool l ->
      let s = mk pool l and m = model l in
      Lvalset.cardinal s = IS.cardinal m
      && Lvalset.to_list s = IS.elements m
      && IS.for_all (fun x -> Lvalset.mem x s) m
      && (not (Lvalset.mem (-1) s))
      && not (Lvalset.mem 200_001 s))

let iter_ascending =
  per_threshold "iter is ascending and complete" (fun pool l ->
      let s = mk pool l in
      let seen = ref [] in
      Lvalset.iter (fun x -> seen := x :: !seen) s;
      List.rev !seen = IS.elements (model l))

let union_matches =
  per_threshold "union matches reference model" (fun pool l ->
      let n = List.length l / 2 in
      let a = List.filteri (fun i _ -> i < n) l in
      let b = List.filteri (fun i _ -> i >= n) l in
      let u = Lvalset.union pool (mk pool a) (mk pool b) in
      Lvalset.to_list u = IS.elements (IS.union (model a) (model b)))

let union_many_matches =
  per_threshold "union_many = fold of unions + raw buffer" (fun pool l ->
      let third = max 1 (List.length l / 3) in
      let part i = List.filteri (fun j _ -> j / third = i) l in
      let sets = [| mk pool (part 0); mk pool (part 1); Lvalset.empty |] in
      let buf = Array.of_list (part 2 @ part 2) in
      let u = Lvalset.union_many pool sets 3 buf (Array.length buf) in
      let expect = IS.union (model (part 0)) (IS.union (model (part 1)) (model (part 2))) in
      Lvalset.to_list u = IS.elements expect)

let diff_matches =
  per_threshold "iter_diff visits exactly cur minus prev" (fun pool l ->
      let n = List.length l / 2 in
      let prev_l = List.filteri (fun i _ -> i < n) l in
      let prev = mk pool prev_l in
      let cur = Lvalset.union pool prev (mk pool l) in
      let seen = ref IS.empty in
      Lvalset.iter_diff ~prev cur (fun x -> seen := IS.add x !seen);
      IS.equal !seen (IS.diff (model l) (model prev_l)))

let physically_shared =
  per_threshold "equal sets share one pooled representative" (fun pool l ->
      let a = mk pool l and b = mk pool (List.rev l) in
      a == b)

let cross_representation_equal =
  QCheck.Test.make ~count:200
    ~name:"equal holds across array and bitmap pools" elems (fun l ->
      let pa = Lvalset.create_pool ~dense_threshold:max_int () in
      let pb = Lvalset.create_pool ~dense_threshold:4 () in
      let a = mk pa l and b = mk pb l in
      Lvalset.equal a b && Lvalset.equal b a
      && (not (Lvalset.equal a (mk pb (0 :: List.map (fun x -> x + 1) l)))))

let union_canonical =
  (* a union's result must be the same pooled object as interning its
     contents directly — canonicality across construction paths *)
  per_threshold "union result is canonical" (fun pool l ->
      let n = List.length l / 2 in
      let a = List.filteri (fun i _ -> i < n) l in
      let b = List.filteri (fun i _ -> i >= n) l in
      Lvalset.union pool (mk pool a) (mk pool b) == mk pool l)

let of_dyn_no_retention =
  QCheck.Test.make ~count:200 ~name:"of_dyn never retains the buffer" elems
    (fun l ->
      let pool = Lvalset.create_pool ~dense_threshold:4 () in
      let buf = Array.of_list l in
      let s = Lvalset.of_dyn pool buf (Array.length buf) in
      let before = Lvalset.to_list s in
      Array.fill buf 0 (Array.length buf) (-42);
      Lvalset.to_list s = before)

let unit_tests =
  let open Alcotest in
  [
    test_case "empty basics" `Quick (fun () ->
        check int "cardinal" 0 (Lvalset.cardinal Lvalset.empty);
        check bool "mem" false (Lvalset.mem 0 Lvalset.empty);
        check bool "bitmap" false (Lvalset.is_bitmap Lvalset.empty);
        check (list int) "to_list" [] (Lvalset.to_list Lvalset.empty));
    test_case "try_stamp protocol" `Quick (fun () ->
        let pool = Lvalset.create_pool () in
        let s = Lvalset.of_list pool [ 3; 1; 2 ] in
        check bool "fresh stamp answers" true (Lvalset.try_stamp s 7);
        check bool "repeat stamp refused" false (Lvalset.try_stamp s 7);
        check bool "new stamp answers" true (Lvalset.try_stamp s 8);
        check bool "empty never stamps" false (Lvalset.try_stamp Lvalset.empty 9));
    test_case "dense sets become bitmaps, sparse stay arrays" `Quick (fun () ->
        let pool = Lvalset.create_pool ~dense_threshold:4 () in
        let dense = Lvalset.of_list pool (List.init 40 Fun.id) in
        check bool "dense is bitmap" true (Lvalset.is_bitmap dense);
        let sparse = Lvalset.of_list pool (List.init 8 (fun i -> i * 10_000)) in
        check bool "sparse stays array" false (Lvalset.is_bitmap sparse);
        check int "dense cardinal" 40 (Lvalset.cardinal dense);
        check int "sparse cardinal" 8 (Lvalset.cardinal sparse));
    test_case "pool stats count hits and misses" `Quick (fun () ->
        let pool = Lvalset.create_pool () in
        ignore (Lvalset.of_list pool [ 1; 2 ]);
        ignore (Lvalset.of_list pool [ 1; 2 ]);
        ignore (Lvalset.of_list pool [ 3 ]);
        let st = Lvalset.pool_stats pool in
        check int "misses" 2 st.Lvalset.p_misses;
        check int "hits" 1 st.Lvalset.p_hits;
        Lvalset.flush_pool pool;
        ignore (Lvalset.of_list pool [ 1; 2 ]);
        let st = Lvalset.pool_stats pool in
        check int "counters survive flush" 3 st.Lvalset.p_misses);
    test_case "share returns the pooled representative" `Quick (fun () ->
        let pool = Lvalset.create_pool () in
        let a = Lvalset.share pool [| 1; 5; 9 |] in
        let b = Lvalset.of_list pool [ 9; 1; 5 ] in
        check bool "physical" true (a == b));
  ]

let () =
  Alcotest.run "lvalset"
    [
      ("units", unit_tests);
      ( "model properties",
        List.map QCheck_alcotest.to_alcotest
          (contents_match @ iter_ascending @ union_matches @ union_many_matches
         @ diff_matches) );
      ( "sharing and canonicality",
        List.map QCheck_alcotest.to_alcotest
          (physically_shared @ union_canonical
          @ [ cross_representation_equal; of_dyn_no_retention ]) );
    ]
