(* Tests for the normalizer: C constructs -> primitive assignments.
   These pin down the translation rules of Sections 3-4 of the paper. *)

open Cla_ir
open Cla_cfront

let prog ?(mode = Normalize.Field_based) src =
  Frontend.prog_of_string ~options:{ Frontend.default_options with mode }
    ~file:"t.c" src

(* primitive assignments as strings, e.g. "p = &x", "u =[+] v" *)
let prims ?mode src =
  List.map Prim.to_string (prog ?mode src).Prog.assigns

let has ?mode src s = List.mem s (prims ?mode src)

let check_has name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let ps = prims src in
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Fmt.str "%s in [%s]" e (String.concat "; " ps))
            true (List.mem e ps))
        expected)

let check_not name src absent =
  Alcotest.test_case name `Quick (fun () ->
      let ps = prims src in
      List.iter
        (fun e ->
          Alcotest.(check bool) (e ^ " must be absent") false (List.mem e ps))
        absent)

(* ------------------------------------------------------------------ *)
(* Core forms (Figure 2/3 of the paper)                                *)
(* ------------------------------------------------------------------ *)

let core_tests =
  [
    check_has "simple copy" "int x, y; void f(void) { x = y; }" [ "x = y" ];
    check_has "address of" "int x, *p; void f(void) { p = &x; }" [ "p = &x" ];
    check_has "store" "int x, *p; void f(void) { *p = x; }" [ "*p = x" ];
    check_has "load" "int x, *p; void f(void) { x = *p; }" [ "x = *p" ];
    check_has "deref both sides" "int *p, *q; void f(void) { *p = *q; }"
      [ "*p = *q" ];
    check_has "figure 3 temp split"
      "int x, *y; int **z; void f(void) { z = &y; *z = &x; }"
      [ "z = &y"; "#0 = &x"; "*z = #0" ];
    check_has "deref of addr collapses"
      "int x, y; void f(void) { x = *(&y); }" [ "x = y" ];
    check_has "addr of deref collapses"
      "int *p, *q; void f(void) { p = &(*q); }" [ "p = q" ];
  ]

(* ------------------------------------------------------------------ *)
(* Operations and strength provenance                                  *)
(* ------------------------------------------------------------------ *)

let op_tests =
  [
    check_has "binop splits into two copies"
      "int x, y, z; void f(void) { x = y + z; }" [ "x =[+] y"; "x =[+] z" ];
    check_has "nested binop uses temp"
      "int x, a, b, c; void f(void) { x = (a + b) * c; }"
      [ "#0 =[+] a"; "#0 =[+] b"; "x =[*] #0"; "x =[*] c" ];
    check_has "unary not recorded" "int x, y; void f(void) { x = !y; }"
      [ "x =[!] y" ];
    check_has "cast recorded" "int x; long y; void f(void) { x = (int)y; }"
      [ "x =[cast] y" ];
    check_has "conditional contributes both arms"
      "int x, a, b, c; void f(void) { x = c ? a : b; }"
      [ "x =[?:] a"; "x =[?:] b" ];
    check_has "compound assignment"
      "int x, y; void f(void) { x += y; }" [ "x =[+] y" ];
    check_not "increment is a no-op" "int x; void f(void) { x++; ++x; }"
      [ "x = x" ];
    check_has "comma evaluates both"
      "int x, a, b, c; void f(void) { x = (a = b, c); }" [ "a = b"; "x = c" ];
  ]

(* ------------------------------------------------------------------ *)
(* Structs: field-based vs field-independent (Section 3)               *)
(* ------------------------------------------------------------------ *)

let fields_src =
  "struct S { int *x; int *y; } A, B;\n\
   int z;\n\
   void f(void) { A.x = &z; }\n"

let test_field_based () =
  Alcotest.(check bool) "assigns to S.x" true (has fields_src "S.x = &z");
  Alcotest.(check bool) "not to A" false (has fields_src "A = &z")

let test_field_independent () =
  Alcotest.(check bool) "assigns to A" true
    (has ~mode:Normalize.Field_independent fields_src "A = &z");
  Alcotest.(check bool) "not to S.x" false
    (has ~mode:Normalize.Field_independent fields_src "S.x = &z")

let test_same_name_distinct_structs () =
  (* "two fields of different structs that happen to have the same name are
     treated as separate entities" *)
  let src =
    "struct A { int *x; } a; struct B { int *x; } b; int z;\n\
     void f(void) { a.x = &z; b.x = a.x; }"
  in
  let ps = prims src in
  Alcotest.(check bool) "A.x" true (List.mem "A.x = &z" ps);
  Alcotest.(check bool) "B.x = A.x" true (List.mem "B.x = A.x" ps)

let test_arrow_is_field_based () =
  let src =
    "struct S { int *x; } s, *p; int z;\nvoid f(void) { p->x = &z; }"
  in
  Alcotest.(check bool) "p->x assigns the field var" true (has src "S.x = &z")

let test_field_var_declared_per_definition () =
  (* field variables exist even when never accessed *)
  let p = prog "struct S { int *never_used; int also_unused; };" in
  let names = Array.to_list (Array.map Var.display p.Prog.vars) in
  Alcotest.(check bool) "S.never_used exists" true
    (List.mem "S.never_used" names)

let test_struct_initializer () =
  let src = "int z; struct S { int *a; int *b; } s = { &z, 0 };" in
  Alcotest.(check bool) "init assigns first field" true (has src "S.a = &z")

let test_designated_initializer () =
  let src = "int z; struct S { int *a; int *b; } s = { .b = &z };" in
  Alcotest.(check bool) "designator respected" true (has src "S.b = &z")

(* ------------------------------------------------------------------ *)
(* Arrays (index-independent) and strings                              *)
(* ------------------------------------------------------------------ *)

let array_tests =
  [
    check_has "array element write is array write"
      "int *a[4]; int z; void f(int i) { a[i] = &z; }" [ "a = &z" ];
    check_has "array element read"
      "int *a[4]; int *p; void f(int i) { p = a[i]; }" [ "p = a" ];
    check_has "array decays to its own address"
      "int a[4]; int *p; void f(void) { p = a; }" [ "p = &a" ];
    check_has "pointer subscript is a deref"
      "int *p; int x; void f(int i) { x = p[i]; }" [ "x = *p" ];
    check_has "pointer subscript store"
      "int *p; int x; void f(int i) { p[i] = x; }" [ "*p = x" ];
    check_not "string literals ignored"
      "char *s; void f(void) { s = \"hello\"; }" [ "s = &hello" ];
  ]

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let fun_tests =
  [
    check_has "definition binds params and return"
      "int f(int a) { return a; }" [ "a = f@1"; "f@ret = a" ];
    check_has "direct call"
      "int g(int x) { return x; } int y, r; void f(void) { r = g(y); }"
      [ "g@1 = y"; "r = g@ret" ];
    check_has "function name decays to function pointer"
      "int g(void) { return 0; } int (*fp)(void); void f(void) { fp = g; }"
      [ "fp = &g" ];
    check_has "explicit address of function"
      "int g(void) { return 0; } int (*fp)(void); void f(void) { fp = &g; }"
      [ "fp = &g" ];
    check_has "argument through operation"
      "int g(int x) { return x; } int a, b; void f(void) { g(a + b); }"
      [ "g@1 =[+] a"; "g@1 =[+] b" ];
  ]

let test_indirect_call_marked () =
  let p =
    prog
      "int (*fp)(int); int a, r;\nvoid f(void) { r = (*fp)(a); r = fp(a); }"
  in
  Alcotest.(check int) "two indirect sites" 2 (List.length p.Prog.indirects)

let test_fundef_records () =
  let p = prog "int f(int a, int b) { return a; } void g(void) {}" in
  Alcotest.(check int) "two fundefs" 2 (List.length p.Prog.fundefs);
  let f = List.find (fun (fd : Prog.fundef) -> Var.name fd.Prog.fvar = "f") p.Prog.fundefs in
  Alcotest.(check int) "arity 2" 2 f.Prog.arity

(* ------------------------------------------------------------------ *)
(* Heap, locals, statics                                               *)
(* ------------------------------------------------------------------ *)

let test_malloc_fresh_sites () =
  let p =
    prog
      "char *a, *b;\nvoid f(void) { a = (char*)malloc(4); b = (char*)malloc(4); }"
  in
  let heaps =
    Array.to_list p.Prog.vars
    |> List.filter (fun v -> Var.kind v = Var.Heap)
  in
  Alcotest.(check int) "two heap sites" 2 (List.length heaps)

let test_locals_of_different_functions_distinct () =
  let p = prog "void f(void) { int x; x = 1; } void g(void) { int x; x = 2; }" in
  let xs =
    Array.to_list p.Prog.vars
    |> List.filter (fun v -> Var.name v = "x")
  in
  Alcotest.(check int) "two distinct x" 2 (List.length xs)

let test_static_is_intern () =
  let p = prog "static int s; int g;" in
  let find n = Array.to_list p.Prog.vars |> List.find (fun v -> Var.name v = n) in
  Alcotest.(check bool) "static intern" true (Var.linkage (find "s") = Var.Intern);
  Alcotest.(check bool) "global extern" true (Var.linkage (find "g") = Var.Extern)

let test_undeclared_id_becomes_global () =
  (* common when a system header was skipped *)
  let p = prog "void f(void) { undeclared_var = 3; }" in
  let names = Array.to_list (Array.map Var.name p.Prog.vars) in
  Alcotest.(check bool) "implicit global" true (List.mem "undeclared_var" names)

let test_union_like_struct () =
  (* unions get the field-based treatment too: one object per field of
     the union type *)
  let src =
    "union U { int *p; long bits; } u;\nint z;\nvoid f(void) { u.p = &z; }"
  in
  Alcotest.(check bool) "assigns to U.p" true (has src "U.p = &z")

let test_anonymous_member_flattened () =
  (* fields of an anonymous struct member belong to the enclosing type *)
  let src =
    "struct Outer { struct { int *inner; }; int tag; } o;\n\
     int z;\nvoid f(void) { o.inner = &z; }"
  in
  let ps = prims src in
  Alcotest.(check bool)
    (Fmt.str "inner reachable through Outer: [%s]" (String.concat "; " ps))
    true
    (List.mem "Outer.inner = &z" ps)

let test_struct_assignment_tolerated () =
  (* whole-struct copies are value copies of the base objects; the
     field-based analysis carries fields per type, so nothing extra is
     needed — but it must not crash or corrupt counts *)
  let src = "struct S { int *f; } s1, s2;\nvoid f(void) { s1 = s2; }" in
  let c = Prog.counts (prog src) in
  Alcotest.(check int) "one copy" 1 c.Prim.n_copy

let check_has' src expected =
  let ps = prims src in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Fmt.str "%s in [%s]" e (String.concat "; " ps))
        true (List.mem e ps))
    expected

let test_nested_calls () =
  let src =
    "int g(int v) { return v; }\nint h(int v) { return v; }\n\
     int x, r;\nvoid f(void) { r = g(h(x)); }"
  in
  check_has' src [ "h@1 = x"; "g@1 = h@ret"; "r = g@ret" ]

let test_function_returning_funptr () =
  let src =
    "int cb(int v) { return v; }\n\
     int (*pick(void))(int) { return cb; }\n\
     int (*chosen)(int);\n\
     void f(void) { chosen = pick(); }"
  in
  check_has' src [ "pick@ret = &cb"; "chosen = pick@ret" ]

let test_address_of_array_element () =
  (* &a[i] is the address of the (index-independent) array object *)
  let src = "int a[8]; int *p;\nvoid f(int i) { p = &a[i]; }" in
  Alcotest.(check bool) "p = &a" true (has src "p = &a")

let test_ternary_pointer () =
  let src =
    "int x, y; int *p;\nvoid f(int c) { p = c ? &x : &y; }"
  in
  let ps = prims src in
  Alcotest.(check bool) "both arms" true
    (List.mem "p = &x" ps && List.mem "p = &y" ps)

let test_table2_counts () =
  let src =
    "int x, y, z, *p, *q;\n\
     void f(void) { x = y; x = z; *p = z; p = q; q = &y; x = *p; }"
  in
  let c = Prog.counts (prog src) in
  (* x=y, x=z, p=q, plus nothing for the fundef (no params) *)
  Alcotest.(check int) "copies" 3 c.Prim.n_copy;
  Alcotest.(check int) "addr" 1 c.Prim.n_addr;
  Alcotest.(check int) "store" 1 c.Prim.n_store;
  Alcotest.(check int) "load" 1 c.Prim.n_load;
  Alcotest.(check int) "deref2" 0 c.Prim.n_deref2

(* ------------------------------------------------------------------ *)
(* Previously-failing corners, pinned as fixed inputs (examples/fuzz)  *)
(* ------------------------------------------------------------------ *)

(* The differential fuzzer (`cla fuzz`) surfaced these three dropped
   corners; each lives as a fixed input under examples/fuzz/ and is
   pinned here to its full primitive-statement dump. *)
let read_example name =
  let file = Filename.concat "../examples/fuzz" name in
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_dump name file expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        (file ^ " primitive dump") expected
        (prims (read_example file)))

let corner_tests =
  [
    check_dump "function pointer through struct field"
      "fptr_struct_field.c"
      [ "p = f0@1"; "sp = &s"; "S.h0 = &f0"; "ip0@1 = &g0"; "ip0@1 = &g0" ];
    Alcotest.test_case "struct-field calls link indirectly" `Quick
      (fun () ->
        let p = prog (read_example "fptr_struct_field.c") in
        Alcotest.(check (list string))
          "both call sites go through the field object" [ "S.h0"; "S.h0" ]
          (List.map
             (fun (i : Prog.indirect) -> Var.name i.Prog.ptr)
             p.Prog.indirects));
    check_dump "multi-level array decay" "array_decay.c"
      [ "arr = &g0"; "m = &g1"; "row = &m"; "#0 = &g0"; "*row = #0" ];
    check_dump "varargs call site fills the bucket" "varargs_bucket.c"
      [
        "n = v0@1"; "ap = &v0@..."; "t = *ap"; "v0@ret = t"; "v0@2 = &g0";
        "v0@... = &g0"; "v0@3 = &g1"; "v0@... = &g1"; "t0 = v0@ret";
      ];
  ]

let () =
  Alcotest.run "normalize"
    [
      ("core forms", core_tests);
      ("operations", op_tests);
      ( "structs",
        [
          Alcotest.test_case "field-based" `Quick test_field_based;
          Alcotest.test_case "field-independent" `Quick test_field_independent;
          Alcotest.test_case "same field name, different structs" `Quick
            test_same_name_distinct_structs;
          Alcotest.test_case "arrow access" `Quick test_arrow_is_field_based;
          Alcotest.test_case "fields exist per definition" `Quick
            test_field_var_declared_per_definition;
          Alcotest.test_case "initializers" `Quick test_struct_initializer;
          Alcotest.test_case "designators" `Quick test_designated_initializer;
        ] );
      ("arrays and strings", array_tests);
      ( "functions",
        fun_tests
        @ [
            Alcotest.test_case "indirect calls marked" `Quick test_indirect_call_marked;
            Alcotest.test_case "fundef records" `Quick test_fundef_records;
          ] );
      ( "objects",
        [
          Alcotest.test_case "malloc sites fresh" `Quick test_malloc_fresh_sites;
          Alcotest.test_case "local scoping" `Quick test_locals_of_different_functions_distinct;
          Alcotest.test_case "linkage" `Quick test_static_is_intern;
          Alcotest.test_case "undeclared ids" `Quick test_undeclared_id_becomes_global;
          Alcotest.test_case "table 2 counts" `Quick test_table2_counts;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "unions" `Quick test_union_like_struct;
          Alcotest.test_case "anonymous members" `Quick test_anonymous_member_flattened;
          Alcotest.test_case "struct assignment" `Quick test_struct_assignment_tolerated;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "function returning funptr" `Quick test_function_returning_funptr;
          Alcotest.test_case "&a[i]" `Quick test_address_of_array_element;
          Alcotest.test_case "ternary pointers" `Quick test_ternary_pointer;
        ] );
      ("fuzz corners", corner_tests);
    ]
