(* Tests for the multicore layer: the Cla_par domain pool's ordering,
   first-error and cancellation contracts; byte-identical parallel
   compilation; pooled CRC verification (including catching a corrupt
   section); the hedged degradation ladder; and domain-sharded serving
   answering exactly like the single-solver path. *)

open Cla_core
open Cla_resilience
module Pool = Cla_par.Pool

(* ------------------------------------------------------------------ *)
(* Pool contracts                                                      *)
(* ------------------------------------------------------------------ *)

let test_resolve_jobs () =
  Alcotest.(check int) "positive passes through" 7 (Pool.resolve_jobs 7);
  Alcotest.(check bool) "auto is at least 1" true (Pool.resolve_jobs 0 >= 1);
  match Pool.resolve_jobs (-3) with
  | _ -> Alcotest.fail "negative job count should be rejected"
  | exception Invalid_argument _ -> ()

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys =
        Pool.map pool
          (fun i ->
            (* jitter the schedule so order preservation is earned *)
            if i mod 7 = 0 then Unix.sleepf 0.001;
            i * i)
          xs
      in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun i -> i * i) xs)
        ys)

(* Two tasks fail; index 5 finishes *after* index 12 (it sleeps first),
   yet the batch must re-raise the lowest-index error — error choice
   depends on input position, never on scheduling. *)
let test_first_error_is_lowest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map pool
          (fun i ->
            if i = 12 then failwith "12";
            if i = 5 then begin
              Unix.sleepf 0.01;
              failwith "5"
            end;
            i)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "batch with failing tasks should raise"
      | exception Failure msg ->
          Alcotest.(check string) "lowest failing index wins" "5" msg)

let test_preset_cancel_aborts_batch () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let cancel = Cancel.create () in
      Cancel.set cancel;
      match Pool.map ~cancel pool Fun.id [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "pre-set cancel token should abort the batch"
      | exception Cancel.Cancelled _ -> ())

(* A task body that trips the batch token (without raising) cancels the
   rest of the batch. *)
let test_task_can_cancel_peers () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map_token pool
          (fun batch i ->
            if i = 0 then Cancel.set batch;
            Unix.sleepf 0.002;
            i)
          (List.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "batch-token cancellation should raise"
      | exception Cancel.Cancelled _ -> ())

let test_shared_pool_is_persistent () =
  let p1 = Pool.shared ~jobs:2 in
  let p2 = Pool.shared ~jobs:2 in
  Alcotest.(check bool) "same pool instance" true (p1 == p2);
  let p3 = Pool.shared ~jobs:1 in
  Alcotest.(check bool) "narrower request reuses the wide pool" true (p1 == p3);
  Alcotest.(check int) "width kept" 2 (Pool.jobs p3)

let test_async_future () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let f = Pool.async pool (fun () -> 6 * 7) in
      Alcotest.(check int) "future value" 42 (Pool.await f);
      let g = Pool.async pool (fun () -> failwith "boom") in
      match Pool.await g with
      | _ -> Alcotest.fail "failed future must re-raise"
      | exception Failure msg -> Alcotest.(check string) "error kept" "boom" msg);
  (* width-1 pools have no workers: async must still run concurrently *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let f = Pool.async pool (fun () -> 2 + 2) in
      Alcotest.(check int) "width-1 future value" 4 (Pool.await f))

let test_pool_telemetry_published () =
  Pool.with_pool ~jobs:3 (fun pool ->
      ignore (Pool.map pool (fun i -> i + 1) (List.init 64 Fun.id)));
  let has name = Cla_obs.Metrics.find name <> None in
  Alcotest.(check bool) "par.steals exported" true (has "par.steals");
  Alcotest.(check bool) "par.lane.busy_us exported" true (has "par.lane.busy_us");
  Alcotest.(check bool) "par.lane.idle_us exported" true (has "par.lane.idle_us");
  Alcotest.(check bool) "par.queue_wait_us exported" true (has "par.queue_wait_us")

(* ------------------------------------------------------------------ *)
(* Byte-identical parallel compilation                                 *)
(* ------------------------------------------------------------------ *)

let corpus =
  lazy
    (Cla_workload.Genc.generate ~seed:3L
       (Cla_workload.Profile.scaled 0.05
          (Option.get (Cla_workload.Profile.find "nethack"))))

let compile_bytes ~jobs files =
  let compile (file, src) = Objfile.write (Compilep.compile_string ~file src) in
  if jobs <= 1 then List.map compile files
  else Pool.with_pool ~jobs (fun pool -> Pool.map pool compile files)

let link_bytes objs =
  let views = List.map Objfile.view_of_string objs in
  let db, _stats = Linkp.link_views views in
  Objfile.write db

let test_parallel_compile_is_byte_identical () =
  let files = Lazy.force corpus in
  let seq = compile_bytes ~jobs:1 files in
  let par = compile_bytes ~jobs:4 files in
  Alcotest.(check bool) "object bytes identical" true
    (List.equal String.equal seq par);
  Alcotest.(check bool) "linked database identical" true
    (String.equal (link_bytes seq) (link_bytes par))

(* ------------------------------------------------------------------ *)
(* Pooled CRC verification                                             *)
(* ------------------------------------------------------------------ *)

let linked_db = lazy (link_bytes (compile_bytes ~jobs:1 (Lazy.force corpus)))

let test_parallel_verify_matches_sequential () =
  let bytes = Lazy.force linked_db in
  let seq = Objfile.view_of_string bytes in
  let par = Pool.with_pool ~jobs:4 (fun pool -> Loader.view_par ~pool bytes) in
  Alcotest.(check bool) "same solution from both views" true
    (Solution.equal (Pipeline.points_to seq) (Pipeline.points_to par))

let test_parallel_verify_catches_corruption () =
  let bytes = Lazy.force linked_db in
  (* flip one byte in the middle of a checksummed section's payload *)
  let e =
    List.find
      (fun e -> e.Objfile.sec_size > 0 && e.Objfile.sec_crc <> None)
      (Objfile.section_table bytes)
  in
  let b = Bytes.of_string bytes in
  let pos = e.Objfile.sec_off + (e.Objfile.sec_size / 2) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  let corrupt = Bytes.to_string b in
  Pool.with_pool ~jobs:4 (fun pool ->
      match Loader.view_par ~pool corrupt with
      | _ -> Alcotest.fail "corrupt section must fail verification"
      | exception Binio.Corrupt _ -> ())

(* ------------------------------------------------------------------ *)
(* Parallel solve oracle                                               *)
(* ------------------------------------------------------------------ *)

module Genir = Cla_workload.Genir

let shaped_views =
  lazy
    (List.map
       (fun sh -> (Genir.shape_name sh, Genir.shaped ~scale:0.3 sh 11L))
       Genir.all_shapes)

(* The sharing-pool canonicality invariant: every pool miss builds
   exactly one canonical set, stored as either a small sorted array or
   a dense bitmap.  It must hold at any pool width — a racy build would
   double-count or leak a non-canonical set. *)
let check_pool_canonicality name (s : Pretrans.stats) =
  Alcotest.(check int)
    (name ^ ": pool misses = small + dense sets")
    s.Pretrans.pool_misses
    (s.Pretrans.pool_small + s.Pretrans.pool_dense)

let test_solvers_byte_identical_across_jobs () =
  List.iter
    (fun (shape, view) ->
      let base_bv = Bitsolver.solve view in
      let base_r = Andersen.solve ~demand:false view in
      check_pool_canonicality (shape ^ " j1") base_r.Andersen.graph_stats;
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let bv = Bitsolver.solve ~pool view in
              Alcotest.(check bool)
                (Printf.sprintf "%s: bitvector j%d = j1" shape jobs)
                true
                (Solution.equal base_bv bv);
              let r = Andersen.solve ~pool ~demand:false view in
              Alcotest.(check bool)
                (Printf.sprintf "%s: pretransitive j%d = j1" shape jobs)
                true
                (Solution.equal base_r.Andersen.solution r.Andersen.solution);
              check_pool_canonicality
                (Printf.sprintf "%s j%d" shape jobs)
                r.Andersen.graph_stats;
              (* the fan-out replays the same constraint graph: node
                 creation is load-driven, never traversal-driven *)
              Alcotest.(check int)
                (Printf.sprintf "%s j%d: same graph nodes" shape jobs)
                base_r.Andersen.graph_stats.Pretrans.nodes
                r.Andersen.graph_stats.Pretrans.nodes))
        [ 2; 4 ])
    (Lazy.force shaped_views)

(* ------------------------------------------------------------------ *)
(* Hedged degradation ladder                                           *)
(* ------------------------------------------------------------------ *)

let big_view =
  lazy
    (let p =
       Cla_workload.Profile.scaled 0.08
         (Option.get (Cla_workload.Profile.find "burlap"))
     in
     let files = Cla_workload.Genc.generate ~seed:7L p in
     Pipeline.compile_link files)

let baseline = lazy (Andersen.solve ~demand:false (Lazy.force big_view))

let check_sound_superset base (sol : Solution.t) =
  let ok = ref true in
  for v = 0 to Array.length base.Solution.pts - 1 do
    if Solution.is_program_var base v then
      Lvalset.iter
        (fun tgt ->
          if not (Lvalset.mem tgt (Solution.points_to sol v)) then ok := false)
        (Solution.points_to base v)
  done;
  !ok

let test_hedge_zero_deadline_lands_on_final_rung () =
  let view = Lazy.force big_view in
  let base = (Lazy.force baseline).Andersen.solution in
  let o =
    Pipeline.points_to_ladder ~hedge:true ~deadline:(Deadline.of_ms 0) view
  in
  Alcotest.(check bool) "degraded" true o.Pipeline.lo_degraded;
  Alcotest.(check string) "answered by the final rung" "steensgaard"
    (Pipeline.algorithm_name o.Pipeline.lo_algorithm);
  Alcotest.(check bool) "answer is a sound superset" true
    (check_sound_superset base o.Pipeline.lo_solution)

let test_hedge_generous_deadline_stays_exact () =
  let view = Lazy.force big_view in
  let base = (Lazy.force baseline).Andersen.solution in
  let o =
    Pipeline.points_to_ladder ~hedge:true
      ~deadline:(Deadline.after ~seconds:120.)
      view
  in
  Alcotest.(check bool) "not degraded" false o.Pipeline.lo_degraded;
  Alcotest.(check string) "answered by the paper's rung" "pretransitive"
    (Pipeline.algorithm_name o.Pipeline.lo_algorithm);
  Alcotest.(check bool) "exact answer" true
    (Solution.equal base o.Pipeline.lo_solution)

(* ------------------------------------------------------------------ *)
(* Domain-sharded serving                                              *)
(* ------------------------------------------------------------------ *)

let view_of src =
  Objfile.view_of_string
    (Objfile.write (Compilep.compile_string ~file:"t.c" src))

(* Boot an in-process server with [shards] replicas over [view], run
   [f socket], then drain. *)
let with_server ~shards view f =
  let dir = Filename.temp_file "cla_par_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let config =
    {
      Cla_serve.Server.default_config with
      socket_path = socket;
      default_deadline_ms = 5000;
      shards;
    }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Cla_serve.Server.run ~config
          ~on_ready:(fun t ->
            Mutex.lock ready_m;
            handle := Some t;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          view)
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let r = f socket in
  (match !handle with
  | Some t -> Cla_serve.Server.request_shutdown t
  | None -> ());
  Thread.join server;
  (try Sys.remove socket with Sys_error _ -> ());
  Unix.rmdir dir;
  r

(* The same query stream against a 1-shard and a 2-shard server must
   produce identical reply lines — sharding changes who solves, never
   the answer.  The fresh:true repeats force every replica to actually
   run its own solve (round-robin) rather than serve one shard's
   cache.  The per-query "server" telemetry object is the one part of
   a reply that legitimately differs (timings, shard id), so it is
   stripped before comparing. *)
let strip_telemetry line =
  let module Json = Cla_obs.Json in
  match Json.of_string line with
  | Json.Obj fields ->
      Json.to_string (Json.Obj (List.filter (fun (k, _) -> k <> "server") fields))
  | j -> Json.to_string j
let test_sharded_serve_matches_single () =
  let view =
    view_of
      "int x, y; int *p, *q;\n\
       void f(void) { p = &x; q = p; }\n\
       void g(void) { q = &y; }"
  in
  let lines =
    [
      {|{"id":1,"op":"points-to","var":"p"}|};
      {|{"id":2,"op":"points-to","var":"q"}|};
      {|{"id":3,"op":"alias","var":"p","var2":"q"}|};
      {|{"id":4,"op":"points-to","var":"p","fresh":true}|};
      {|{"id":5,"op":"points-to","var":"q","fresh":true}|};
      {|{"id":6,"op":"points-to","var":"x","fresh":true}|};
      {|{"id":7,"op":"alias","var":"q","var2":"x","fresh":true}|};
    ]
  in
  let ask socket line =
    match Cla_serve.Client.round_trip ~socket line with
    | Ok reply -> reply
    | Error e -> Alcotest.fail (Cla_serve.Client.describe e)
  in
  let single =
    with_server ~shards:1 view (fun socket -> List.map (ask socket) lines)
  in
  let sharded =
    with_server ~shards:2 view (fun socket -> List.map (ask socket) lines)
  in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identical reply" (strip_telemetry a)
        (strip_telemetry b))
    single sharded

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "first error is lowest index" `Quick
            test_first_error_is_lowest_index;
          Alcotest.test_case "pre-set cancel aborts batch" `Quick
            test_preset_cancel_aborts_batch;
          Alcotest.test_case "task can cancel peers" `Quick
            test_task_can_cancel_peers;
          Alcotest.test_case "shared pool is persistent" `Quick
            test_shared_pool_is_persistent;
          Alcotest.test_case "async future" `Quick test_async_future;
          Alcotest.test_case "telemetry published" `Quick
            test_pool_telemetry_published;
        ] );
      ( "solve",
        [
          Alcotest.test_case "solvers byte-identical at j1/j2/j4" `Quick
            test_solvers_byte_identical_across_jobs;
        ] );
      ( "compile",
        [
          Alcotest.test_case "-j4 bytes identical to -j1" `Quick
            test_parallel_compile_is_byte_identical;
        ] );
      ( "verify",
        [
          Alcotest.test_case "pooled verify matches sequential" `Quick
            test_parallel_verify_matches_sequential;
          Alcotest.test_case "pooled verify catches corruption" `Quick
            test_parallel_verify_catches_corruption;
        ] );
      ( "hedge",
        [
          Alcotest.test_case "zero deadline lands on final rung" `Quick
            test_hedge_zero_deadline_lands_on_final_rung;
          Alcotest.test_case "generous deadline stays exact" `Quick
            test_hedge_generous_deadline_stays_exact;
        ] );
      ( "serve",
        [
          Alcotest.test_case "sharded replies match single-solver" `Quick
            test_sharded_serve_matches_single;
        ] );
    ]
