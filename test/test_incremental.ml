(* Tests for the incremental compile-link-analyze chain: TU content
   hashing, the delta linker against a full-merge oracle, and the
   solver's delta resume against from-scratch solves over edit
   streams. *)

open Cla_core
module W = Cla_workload

let small_profile = W.Profile.scaled 0.02 W.Profile.burlap

(* ------------------------------------------------------------------ *)
(* TU content hash                                                     *)
(* ------------------------------------------------------------------ *)

let test_tuhash_matrix () =
  let src = "int x; int *p; void f(void) { p = &x; }" in
  let h = Compilep.tu_hash ~file:"a.c" src in
  (* deterministic *)
  Alcotest.(check string) "same input, same hash" h
    (Compilep.tu_hash ~file:"a.c" src);
  (* the hash is over the preprocessed text: whitespace-only changes
     that survive preprocessing change it, a comment does not
     necessarily — so probe with a semantic change *)
  let h2 = Compilep.tu_hash ~file:"a.c" (src ^ " int y;") in
  Alcotest.(check bool) "edited source, new hash" false (String.equal h h2);
  (* options are part of the hash *)
  let opt_d =
    { Compilep.default_options with Compilep.defines = [ ("A", "1") ] }
  in
  Alcotest.(check bool) "defines change the hash" false
    (String.equal h (Compilep.tu_hash ~options:opt_d ~file:"a.c" src));
  let opt_m =
    {
      Compilep.default_options with
      Compilep.mode = Cla_cfront.Normalize.Field_independent;
    }
  in
  Alcotest.(check bool) "mode changes the hash" false
    (String.equal h (Compilep.tu_hash ~options:opt_m ~file:"a.c" src))

let test_tuhash_recorded () =
  let src = "int x; int *p; void f(void) { p = &x; }" in
  let db = Compilep.compile_string ~file:"a.c" src in
  (match db.Objfile.tuhash with
  | Some h ->
      Alcotest.(check string) "compile records tu_hash" h
        (Compilep.tu_hash ~file:"a.c" src)
  | None -> Alcotest.fail "unit object carries no tuhash");
  (* and it round-trips through the object format *)
  let view = Objfile.view_of_string (Objfile.write db) in
  Alcotest.(check (option string)) "tuhash round-trips" db.Objfile.tuhash
    view.Objfile.rtuhash;
  (* linked databases don't carry one *)
  let linked, _ = Linkp.link_views [ view ] in
  Alcotest.(check (option string)) "linked db has none" None
    linked.Objfile.tuhash

(* ------------------------------------------------------------------ *)
(* Delta link vs full merge                                            *)
(* ------------------------------------------------------------------ *)

let compile_unit (file, src) =
  (file, Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file src)))

(* Name-keyed points-to map — the id-independent oracle: the delta
   linker assigns different ids than a from-scratch merge (it appends
   where the full merge interleaves), but the named relation must
   match. *)
let named_pts view =
  let sol = Pipeline.points_to view in
  let tbl = Hashtbl.create 256 in
  Array.iteri
    (fun v _ ->
      let pts = Solution.points_to sol v in
      if Lvalset.cardinal pts > 0 then
        Hashtbl.replace tbl
          (Solution.var_name sol v)
          (List.sort compare
             (List.map (Solution.var_name sol) (Lvalset.to_list pts))))
    view.Objfile.rvars;
  tbl

let check_same_named_pts msg va vb =
  let a = named_pts va and b = named_pts vb in
  Alcotest.(check int)
    (msg ^ ": same pointer count")
    (Hashtbl.length a) (Hashtbl.length b);
  Hashtbl.iter
    (fun name pts ->
      match Hashtbl.find_opt b name with
      | Some pts' -> Alcotest.(check (list string)) (msg ^ ": " ^ name) pts pts'
      | None -> Alcotest.fail (msg ^ ": " ^ name ^ " missing from oracle"))
    a

let test_delta_link_pure_add () =
  let u1 = ("a.c", "int x; int *p; void f(void) { p = &x; }") in
  let u2 = ("b.c", "extern int *p; int *q; void g(void) { q = p; }") in
  let st, d0 = Linkp.state_create (List.map compile_unit [ u1; u2 ]) in
  Alcotest.(check bool) "initial delta is all-added" true
    (Linkp.delta_is_pure_add d0);
  (* append-only edit to b.c *)
  let u2' =
    ("b.c", snd u2 ^ "\nint y;\nvoid ce_edit_0(void) { q = &y; }\n")
  in
  let units' = List.map compile_unit [ u1; u2' ] in
  let d = Linkp.relink st units' in
  Alcotest.(check bool) "append-only edit is pure-add" true
    (Linkp.delta_is_pure_add d);
  Alcotest.(check bool) "no full relink" false d.Linkp.d_full_relink;
  Alcotest.(check bool) "constraints were added" true
    (Linkp.delta_size_added d > 0);
  let oracle = Objfile.view_of_string (Objfile.write (fst (Linkp.link_views (List.map snd units')))) in
  check_same_named_pts "patched view vs full merge" (Linkp.state_view st)
    oracle

let test_delta_link_removal_falls_back () =
  let u1 = ("a.c", "int x; int *p; void f(void) { p = &x; }") in
  let u2 = ("b.c", "extern int *p; int *q; void g(void) { q = p; }") in
  let st, _ = Linkp.state_create (List.map compile_unit [ u1; u2 ]) in
  (* remove the assignment from b.c *)
  let u2' = ("b.c", "extern int *p; int *q;") in
  let units' = List.map compile_unit [ u1; u2' ] in
  let d = Linkp.relink st units' in
  Alcotest.(check bool) "removal is not pure-add" false
    (Linkp.delta_is_pure_add d);
  let oracle = Objfile.view_of_string (Objfile.write (fst (Linkp.link_views (List.map snd units')))) in
  check_same_named_pts "post-removal view vs full merge" (Linkp.state_view st)
    oracle

(* ------------------------------------------------------------------ *)
(* Incremental driver over edit streams                                *)
(* ------------------------------------------------------------------ *)

(* The hard gate: after every step, the incrementally-maintained
   solution must equal a from-scratch solve of the same linked view. *)
let run_stream ~p_remove ~steps ~seed () =
  let es = W.Editstream.create ~seed ~p_remove small_profile in
  let t, s0 = Incremental.create (W.Editstream.sources es) in
  let n_files = s0.Incremental.sources in
  Alcotest.(check bool) "base build compiles everything" true
    (s0.Incremental.cache_misses = n_files);
  let scratch = Andersen.solve (Incremental.view t) in
  Alcotest.(check bool) "base solution equals scratch" true
    (Solution.equal (Incremental.solution t) scratch.Andersen.solution);
  for _ = 1 to steps do
    let step = W.Editstream.next es in
    let s = Incremental.update t step.W.Editstream.ssources in
    Alcotest.(check int)
      (Fmt.str "step %d (%s): one recompile" step.W.Editstream.snum
         step.W.Editstream.sdesc)
      1 s.Incremental.cache_misses;
    Alcotest.(check int)
      (Fmt.str "step %d: rest cached" step.W.Editstream.snum)
      (n_files - 1) s.Incremental.cache_hits;
    if not step.W.Editstream.sremoval then begin
      Alcotest.(check bool)
        (Fmt.str "step %d: pure-add delta" step.W.Editstream.snum)
        true s.Incremental.delta_pure;
      Alcotest.(check bool)
        (Fmt.str "step %d: solver resumed" step.W.Editstream.snum)
        true s.Incremental.resumed
    end
    else
      Alcotest.(check bool)
        (Fmt.str "step %d: removal fell back" step.W.Editstream.snum)
        false s.Incremental.resumed;
    let scratch = Andersen.solve (Incremental.view t) in
    Alcotest.(check bool)
      (Fmt.str "step %d: incremental == scratch" step.W.Editstream.snum)
      true
      (Solution.equal (Incremental.solution t) scratch.Andersen.solution)
  done

let test_stream_add_only () = run_stream ~p_remove:0.0 ~steps:12 ~seed:7L ()

let test_stream_with_removals () =
  run_stream ~p_remove:0.35 ~steps:12 ~seed:11L ()

let test_update_noop () =
  let es = W.Editstream.create ~seed:3L small_profile in
  let t, _ = Incremental.create (W.Editstream.sources es) in
  let before = Incremental.solution t in
  let s = Incremental.update t (W.Editstream.sources es) in
  Alcotest.(check int) "no recompiles" 0 s.Incremental.cache_misses;
  Alcotest.(check bool) "solution unchanged" true
    (Solution.equal before (Incremental.solution t))

(* ------------------------------------------------------------------ *)
(* Live --watch server across a swap                                   *)
(* ------------------------------------------------------------------ *)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Boot a real watch-mode server over a two-file tree, query it, append
   an assignment to one TU, force the rescan through the [reanalyze]
   protocol op, and check the next query sees the swapped solution:
   one recompile, the other TU cached, the solver resumed. *)
let test_watch_server () =
  let dir = Filename.temp_file "cla_watch" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let src = Filename.concat dir "src" in
  Unix.mkdir src 0o700;
  write_file (Filename.concat src "a.c")
    "int x; int *p;\nvoid f(void) { p = &x; }\n";
  let b_base = "extern int *p; int *q;\nvoid g(void) { q = p; }\n" in
  write_file (Filename.concat src "b.c") b_base;
  let socket = Filename.concat dir "s.sock" in
  let config =
    {
      Cla_serve.Server.default_config with
      socket_path = socket;
      (* a poll period the test never reaches: the explicit reanalyze
         op is the only trigger, so the swap point is deterministic *)
      watch_poll_ms = 60_000;
    }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        ignore
          (Cla_serve.Server.run_watch ~config
             ~on_ready:(fun t ->
               Mutex.lock ready_m;
               handle := Some t;
               Condition.signal ready_c;
               Mutex.unlock ready_m)
             src))
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let ask line =
    match Cla_serve.Client.round_trip ~socket line with
    | Ok reply -> reply
    | Error _ -> Alcotest.fail ("no reply to " ^ line)
  in
  let reply = ask "{\"id\":1,\"op\":\"points-to\",\"var\":\"q\"}" in
  Alcotest.(check bool) "baseline sees x" true (contains reply "\"x\"");
  Alcotest.(check bool) "no z before the edit" false (contains reply "\"z\"");
  (* the one-TU append-only edit: q gains a second target *)
  write_file (Filename.concat src "b.c")
    (b_base ^ "int z;\nvoid h(void) { q = &z; }\n");
  let re = ask "{\"id\":2,\"op\":\"reanalyze\"}" in
  Alcotest.(check bool) "one TU changed" true (contains re "\"changed\": 1");
  Alcotest.(check bool) "unchanged TU cached" true
    (contains re "\"cache_hits\": 1");
  Alcotest.(check bool) "solver resumed" true (contains re "\"resumed\": true");
  let reply = ask "{\"id\":3,\"op\":\"points-to\",\"var\":\"q\"}" in
  Alcotest.(check bool) "swap kept x" true (contains reply "\"x\"");
  Alcotest.(check bool) "swap sees z" true (contains reply "\"z\"");
  (* nothing changed: the rescan must be a no-op *)
  let re = ask "{\"id\":4,\"op\":\"reanalyze\"}" in
  Alcotest.(check bool) "no-op rescan" true (contains re "\"changed\": 0");
  (match !handle with
  | Some t -> Cla_serve.Server.request_shutdown t
  | None -> ());
  Thread.join server

let () =
  Alcotest.run "incremental"
    [
      ( "tuhash",
        [
          Alcotest.test_case "hit/miss matrix" `Quick test_tuhash_matrix;
          Alcotest.test_case "recorded and round-tripped" `Quick
            test_tuhash_recorded;
        ] );
      ( "delta-link",
        [
          Alcotest.test_case "pure-add vs full merge" `Quick
            test_delta_link_pure_add;
          Alcotest.test_case "removal vs full merge" `Quick
            test_delta_link_removal_falls_back;
        ] );
      ( "delta-solve",
        [
          Alcotest.test_case "add-only stream" `Quick test_stream_add_only;
          Alcotest.test_case "stream with removals" `Quick
            test_stream_with_removals;
          Alcotest.test_case "no-op update" `Quick test_update_noop;
        ] );
      ( "serve-watch",
        [ Alcotest.test_case "query across a swap" `Quick test_watch_server ] );
    ]
