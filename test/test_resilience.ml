(* Tests for the resilience layer: deadline sweeps over the solvers (a
   solve either returns the exact solution or unwinds with a typed
   timeout — never a crash, never a partial answer), the degradation
   ladder's always-answers + soundness contract, cooperative
   cancellation, and the query server surviving a mixed
   good/poisoned/slow stream. *)

open Cla_core
open Cla_resilience

let view_of src =
  Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file:"t.c" src))

(* A workload big enough that tight deadlines actually interrupt it. *)
let big_view =
  lazy
    (let p =
       Cla_workload.Profile.scaled 0.08
         (Option.get (Cla_workload.Profile.find "burlap"))
     in
     let files = Cla_workload.Genc.generate ~seed:7L p in
     Pipeline.compile_link files)

let baseline = lazy (Andersen.solve ~demand:false (Lazy.force big_view))

(* For every program variable, the candidate's answer must contain the
   exact (Andersen) points-to set: subset rungs are exact and the
   unification rung over-approximates, so a missing target would be a
   soundness bug, not a precision loss. *)
let check_sound_superset base (sol : Solution.t) =
  let ok = ref true in
  for v = 0 to Array.length base.Solution.pts - 1 do
    if Solution.is_program_var base v then
      Lvalset.iter
        (fun tgt -> if not (Lvalset.mem tgt (Solution.points_to sol v)) then ok := false)
        (Solution.points_to base v)
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Deadline sweep                                                      *)
(* ------------------------------------------------------------------ *)

(* Sweep deadlines from "instantly expired" to "effectively infinite":
   every solve must either agree with the unhurried baseline (exactly
   for the subset-based solvers, as a sound superset for unification) or
   unwind with [Timed_out] carrying sane progress.  Catching anything
   else (or a partial solution) fails the test. *)
let sweep_one ?(exact = true) solve =
  let view = Lazy.force big_view in
  let base = (Lazy.force baseline).Andersen.solution in
  let timeouts = ref 0 and completions = ref 0 in
  List.iter
    (fun seconds ->
      let deadline =
        if seconds = infinity then Deadline.never else Deadline.after ~seconds
      in
      match solve ~deadline view with
      | (sol : Solution.t) ->
          incr completions;
          if exact then
            Alcotest.(check bool)
              (Fmt.str "deadline %g: completed solve is exact" seconds)
              true (Solution.equal base sol)
          else
            Alcotest.(check bool)
              (Fmt.str "deadline %g: completed solve is a sound superset"
                 seconds)
              true
              (check_sound_superset base sol)
      | exception Deadline.Timed_out p ->
          incr timeouts;
          Alcotest.(check bool)
            (Fmt.str "deadline %g: progress is sane" seconds)
            true
            (p.Progress.at_pass >= 0 && p.Progress.elapsed_s >= 0.))
    [ 0.; 1e-5; 1e-4; 1e-3; 5e-3; 0.05; infinity ];
  (* the extremes must behave: 0 always times out, infinity never *)
  Alcotest.(check bool) "zero deadline timed out" true (!timeouts >= 1);
  Alcotest.(check bool) "unbounded solve completed" true (!completions >= 1)

let test_sweep_pretransitive () =
  sweep_one (fun ~deadline view ->
      (Andersen.solve ~demand:false ~deadline view).Andersen.solution)

let test_sweep_worklist () =
  sweep_one (fun ~deadline view ->
      Pipeline.points_to ~algorithm:Pipeline.Worklist ~deadline view)

let test_sweep_bitvector () =
  sweep_one (fun ~deadline view ->
      Pipeline.points_to ~algorithm:Pipeline.Bitvector ~deadline view)

let test_sweep_steensgaard () =
  sweep_one ~exact:false (fun ~deadline view ->
      Pipeline.points_to ~algorithm:Pipeline.Steensgaard ~deadline view)

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let test_ladder_always_answers () =
  let view = Lazy.force big_view in
  let base = (Lazy.force baseline).Andersen.solution in
  let saw_degraded = ref false in
  List.iter
    (fun seconds ->
      let deadline =
        if seconds = infinity then Deadline.never else Deadline.after ~seconds
      in
      let o = Pipeline.points_to_ladder ~deadline view in
      if o.Pipeline.lo_degraded then saw_degraded := true;
      Alcotest.(check bool)
        (Fmt.str "deadline %g: ladder answer is a sound superset" seconds)
        true
        (check_sound_superset base o.Pipeline.lo_solution);
      (* the answer is labeled with the rung that produced it *)
      match Solution.provenance o.Pipeline.lo_solution with
      | None -> Alcotest.fail "ladder solution has no provenance"
      | Some p ->
          Alcotest.(check string)
            (Fmt.str "deadline %g: provenance rung" seconds)
            (Pipeline.algorithm_name o.Pipeline.lo_algorithm)
            p.Solution.p_rung;
          Alcotest.(check bool)
            (Fmt.str "deadline %g: degraded flags agree" seconds)
            o.Pipeline.lo_degraded p.Solution.p_degraded)
    [ 0.; 1e-4; 1e-3; infinity ];
  (* the zero deadline must actually exercise the fallback path *)
  Alcotest.(check bool) "some deadline degraded" true !saw_degraded

let test_ladder_zero_deadline_lands_on_final_rung () =
  let view = Lazy.force big_view in
  let o = Pipeline.points_to_ladder ~deadline:(Deadline.of_ms 0) view in
  Alcotest.(check bool) "degraded" true o.Pipeline.lo_degraded;
  Alcotest.(check string) "answered by the final rung" "steensgaard"
    (Pipeline.algorithm_name o.Pipeline.lo_algorithm);
  (* every earlier rung reported a timeout with its progress *)
  Alcotest.(check int) "two rungs timed out" 2
    (List.length o.Pipeline.lo_timeouts)

let test_ladder_strict_can_time_out () =
  let view = Lazy.force big_view in
  match
    Pipeline.points_to_ladder ~strict:true ~deadline:(Deadline.of_ms 0) view
  with
  | _ -> Alcotest.fail "strict ladder with zero deadline should time out"
  | exception Deadline.Timed_out _ -> ()

(* ------------------------------------------------------------------ *)
(* Cancellation                                                        *)
(* ------------------------------------------------------------------ *)

let test_cancel_preset () =
  let view = Lazy.force big_view in
  let cancel = Cancel.create () in
  Cancel.set cancel;
  match Andersen.solve ~demand:false ~cancel view with
  | _ -> Alcotest.fail "pre-set cancel token should abort the solve"
  | exception Cancel.Cancelled p ->
      (* checked at solve entry: no pass may run after cancellation *)
      Alcotest.(check int) "aborted before the first pass" 0
        p.Progress.at_pass

let test_cancel_from_another_thread () =
  let view = Lazy.force big_view in
  let cancel = Cancel.create () in
  let killer = Thread.create (fun () -> Thread.delay 0.005; Cancel.set cancel) () in
  let outcome =
    match Andersen.solve ~demand:false ~cancel view with
    | r -> `Finished r.Andersen.passes
    | exception Cancel.Cancelled p -> `Cancelled p.Progress.at_pass
  in
  Thread.join killer;
  match outcome with
  | `Finished _ -> () (* small machine won the race: fine, solve was exact *)
  | `Cancelled at_pass ->
      (* the token is polled inside every pass, so the abort lands
         during the pass in flight when it was set — it never runs the
         solve to completion first *)
      Alcotest.(check bool) "aborted at a real pass" true (at_pass >= 0)

(* ------------------------------------------------------------------ *)
(* Degrade.run plumbing                                                *)
(* ------------------------------------------------------------------ *)

let test_degrade_order_and_attempts () =
  let calls = ref [] in
  let rung name result ~deadline =
    calls := name :: !calls;
    if Deadline.expired deadline then
      raise (Deadline.Timed_out (Progress.make name))
    else result
  in
  let o =
    Degrade.run
      ~deadline:(Deadline.of_ms 0)
      ~rungs:[ ("a", rung "a" 1); ("b", rung "b" 2); ("c", rung "c" 3) ]
      ()
  in
  (* a and b time out against the expired deadline; c runs exempt *)
  Alcotest.(check (list string)) "call order" [ "a"; "b"; "c" ] (List.rev !calls);
  Alcotest.(check int) "final rung answered" 3 o.Degrade.value;
  Alcotest.(check string) "rung name" "c" o.Degrade.rung;
  Alcotest.(check bool) "degraded" true o.Degrade.degraded;
  Alcotest.(check int) "two failed attempts" 2 (List.length o.Degrade.attempts)

let test_algorithm_of_string_case_insensitive () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check bool)
        s true
        (Pipeline.algorithm_of_string s = want))
    [
      ("Pretransitive", Some Pipeline.Pretransitive);
      ("BITVECTOR", Some Pipeline.Bitvector);
      ("Steensgaard", Some Pipeline.Steensgaard);
      ("WorkList", Some Pipeline.Worklist);
      ("bitvec", Some Pipeline.Bitvector);
      ("nope", None);
    ]

(* ------------------------------------------------------------------ *)
(* Server under a hostile stream                                       *)
(* ------------------------------------------------------------------ *)

(* Boot an in-process server over a small database, drive the Servebench
   mixed good/poison/slow stream through real sockets from several
   client threads, then drain.  The server must answer every line with
   a well-formed classified response and survive to return its stats. *)
let test_server_survives_mixed_stream () =
  let view =
    view_of
      "int x, y; int *p, *q;\n\
       void f(void) { p = &x; q = p; }\n\
       void g(void) { q = &y; }"
  in
  let dir = Filename.temp_file "cla_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let config =
    {
      Cla_serve.Server.default_config with
      socket_path = socket;
      max_inflight = 1;
      max_queue = 1;
      default_deadline_ms = 500;
      watchdog_grace_ms = 50;
      allow_sleep = true;
    }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Cla_serve.Server.run ~config
          ~on_ready:(fun t ->
            Mutex.lock ready_m;
            handle := Some t;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          view)
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let queries =
    Cla_workload.Servebench.generate ~seed:11L ~n:40
      ~vars:[| "p"; "q"; "x" |] ~deadline_ms:400 ~slow_ms:60 ()
  in
  let qs = Array.of_list queries in
  let replies = Array.make (Array.length qs) None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length qs then begin
        replies.(i) <-
          Some
            (Cla_serve.Client.with_retry
               ~policy:{ Cla_serve.Client.default_policy with seed = i }
               ~socket qs.(i).Cla_workload.Servebench.q_line);
        loop ()
      end
    in
    loop ()
  in
  let clients = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join clients;
  (match !handle with
  | Some t -> Cla_serve.Server.request_shutdown t
  | None -> ());
  Thread.join server;
  (* every query got exactly one well-formed, classified response *)
  Array.iteri
    (fun i r ->
      match r with
      | None -> Alcotest.fail (Fmt.str "query %d never ran" i)
      | Some o -> (
          match o.Cla_serve.Client.reply with
          | Error e ->
              Alcotest.fail
                (Fmt.str "query %d: transport error: %s" i
                   (Cla_serve.Client.describe e))
          | Ok line -> (
              match Cla_serve.Protocol.status_of_line line with
              | Cla_serve.Protocol.S_malformed ->
                  Alcotest.fail (Fmt.str "query %d: malformed reply %s" i line)
              | _ -> ())))
    replies;
  (* poisoned queries must have come back as clean errors *)
  let poison_errors = ref 0 and n_poison = ref 0 in
  Array.iteri
    (fun i q ->
      if q.Cla_workload.Servebench.q_kind = Cla_workload.Servebench.Poison then begin
        incr n_poison;
        match replies.(i) with
        | Some { Cla_serve.Client.reply = Ok line; _ }
          when Cla_serve.Protocol.status_of_line line = Cla_serve.Protocol.S_error
          ->
            incr poison_errors
        | _ -> ()
      end)
    qs;
  Alcotest.(check int) "every poisoned query rejected cleanly" !n_poison
    !poison_errors;
  (* the server unlinks its socket during drain; tolerate either order *)
  (try Sys.remove socket with Sys_error _ -> ());
  Unix.rmdir dir

(* A server with no waiting room sheds immediately while its only slot
   is busy — and the shed response names a retry delay. *)
let test_server_sheds_when_full () =
  let view = view_of "int x; int *p;\nvoid f(void) { p = &x; }" in
  let dir = Filename.temp_file "cla_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let config =
    {
      Cla_serve.Server.default_config with
      socket_path = socket;
      max_inflight = 1;
      max_queue = 0;
      allow_sleep = true;
    }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Cla_serve.Server.run ~config
          ~on_ready:(fun t ->
            Mutex.lock ready_m;
            handle := Some t;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          view)
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  (* occupy the slot with an in-deadline sleep... *)
  let slow =
    Thread.create
      (fun () ->
        Cla_serve.Client.round_trip ~socket
          "{\"id\":0,\"op\":\"sleep\",\"ms\":300,\"deadline_ms\":2000}")
      ()
  in
  Thread.delay 0.05;
  (* ...and the next query must be shed, not queued or dropped *)
  (match Cla_serve.Client.round_trip ~socket "{\"id\":1,\"op\":\"ping\"}" with
  | Error e -> Alcotest.fail (Cla_serve.Client.describe e)
  | Ok line ->
      Alcotest.(check bool) "shed" true
        (Cla_serve.Protocol.status_of_line line = Cla_serve.Protocol.S_shed);
      Alcotest.(check bool) "carries retry_after_ms" true
        (Cla_serve.Protocol.retry_after_ms_of_line line <> None));
  Thread.join slow;
  (match !handle with
  | Some t -> Cla_serve.Server.request_shutdown t
  | None -> ());
  Thread.join server;
  (try Sys.remove socket with Sys_error _ -> ());
  Unix.rmdir dir

(* A sharded server answers a live Stats query mid-flight: after a
   hostile Servebench stream, the snapshot must carry the query
   counters, an uptime, one percentile block per shard, and quantiles
   that are internally consistent (p50 <= p99) — all without restarting
   or draining the server. *)
let test_server_stats_introspection () =
  let module Json = Cla_obs.Json in
  let view =
    view_of
      "int x, y; int *p, *q;\n\
       void f(void) { p = &x; q = p; }\n\
       void g(void) { q = &y; }"
  in
  let dir = Filename.temp_file "cla_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let config =
    {
      Cla_serve.Server.default_config with
      socket_path = socket;
      shards = 2;
      default_deadline_ms = 1000;
      allow_sleep = true;
    }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Cla_serve.Server.run ~config
          ~on_ready:(fun t ->
            Mutex.lock ready_m;
            handle := Some t;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          view)
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let queries =
    Cla_workload.Servebench.generate ~seed:23L ~n:40
      ~vars:[| "p"; "q"; "x" |] ~deadline_ms:800 ~slow_ms:20 ()
  in
  let qs = Array.of_list queries in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length qs then begin
        ignore
          (Cla_serve.Client.with_retry
             ~policy:{ Cla_serve.Client.default_policy with seed = i }
             ~socket qs.(i).Cla_workload.Servebench.q_line);
        loop ()
      end
    in
    loop ()
  in
  let clients = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join clients;
  (* the server is still live: snapshot it *)
  let reply =
    match
      Cla_serve.Client.round_trip ~socket "{\"id\":99,\"op\":\"stats\"}"
    with
    | Error e -> Alcotest.fail (Cla_serve.Client.describe e)
    | Ok line ->
        Alcotest.(check bool) "stats is ok" true
          (Cla_serve.Protocol.status_of_line line = Cla_serve.Protocol.S_ok);
        Json.of_string line
  in
  (* the flat counters saw the stream *)
  let counters = Option.get (Json.member "counters" reply) in
  (match Option.bind (Json.member "serve.queries" counters) Json.to_int with
  | Some n ->
      Alcotest.(check bool) "serve.queries counted the stream" true (n >= 40)
  | None -> Alcotest.fail "serve.queries missing from counters");
  (* live introspection: uptime, per-shard percentile blocks *)
  (match Option.bind (Json.member "uptime_s" reply) Json.to_float with
  | Some u -> Alcotest.(check bool) "uptime_s >= 0" true (u >= 0.)
  | None -> Alcotest.fail "uptime_s missing");
  let pcts block =
    let f name =
      match Option.bind (Json.member name block) Json.to_float with
      | Some v -> v
      | None -> Alcotest.fail (Fmt.str "%s missing from latency block" name)
    in
    (f "p50_ms", f "p99_ms")
  in
  (match Json.member "shards" reply with
  | Some (Json.Arr blocks) ->
      Alcotest.(check int) "one block per shard" 2 (List.length blocks);
      List.iter
        (fun b ->
          let lat = Option.get (Json.member "latency" b) in
          let p50, p99 = pcts lat in
          Alcotest.(check bool) "shard p50 <= p99" true (p50 <= p99))
        blocks
  | _ -> Alcotest.fail "shards array missing");
  (* the merged cross-shard block is consistent and saw every query *)
  (match Json.member "latency" reply with
  | Some merged ->
      let p50, p99 = pcts merged in
      Alcotest.(check bool) "merged p50 <= p99" true (p50 <= p99);
      (match Option.bind (Json.member "count" merged) Json.to_int with
      | Some n ->
          Alcotest.(check bool) "merged count covers the stream" true (n >= 40)
      | None -> Alcotest.fail "merged latency count missing")
  | None -> Alcotest.fail "merged latency block missing");
  (match !handle with
  | Some t -> Cla_serve.Server.request_shutdown t
  | None -> ());
  Thread.join server;
  (try Sys.remove socket with Sys_error _ -> ());
  Unix.rmdir dir

(* Kill a solver shard's worker domain mid-stream: the supervisor must
   notice the death, respawn the worker over the shard's surviving
   queue, and the query stream must never see a failure — the restart
   is invisible except in the serve.shard_restarts counter.  Fresh
   queries force real shard solves so the stream actually exercises the
   killed worker. *)
let test_server_shard_kill_recovers () =
  let view =
    view_of "int x, y; int *p, *q;\nvoid f(void) { p = &x; q = &y; }"
  in
  let dir = Filename.temp_file "cla_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let config =
    {
      Cla_serve.Server.default_config with
      socket_path = socket;
      shards = 2;
      default_deadline_ms = 4000;
    }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Cla_serve.Server.run ~config
          ~on_ready:(fun t ->
            Mutex.lock ready_m;
            handle := Some t;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          view)
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let h = Option.get !handle in
  let fresh_q id =
    Fmt.str
      "{\"id\":%d,\"op\":\"points-to\",\"var\":\"p\",\"fresh\":true,\"deadline_ms\":4000}"
      id
  in
  (* injection is bounds-checked, and impossible on a shard that is not
     there *)
  Alcotest.(check bool) "kill of shard 0 accepted" true
    (Cla_serve.Server.chaos_kill_shard h 0);
  Alcotest.(check bool) "kill of bogus shard refused" false
    (Cla_serve.Server.chaos_kill_shard h 99);
  (* the stream across the death + restart: every query must answer ok *)
  let ok = ref 0 in
  let n = 20 in
  for i = 1 to n do
    let o =
      Cla_serve.Client.with_retry
        ~policy:{ Cla_serve.Client.default_policy with seed = i }
        ~socket (fresh_q i)
    in
    match o.Cla_serve.Client.reply with
    | Ok line
      when Cla_serve.Protocol.status_of_line line = Cla_serve.Protocol.S_ok ->
        incr ok
    | Ok line -> Alcotest.fail (Fmt.str "query %d: unexpected reply %s" i line)
    | Error e ->
        Alcotest.fail
          (Fmt.str "query %d: transport error: %s" i
             (Cla_serve.Client.describe e))
  done;
  Alcotest.(check int) "every query across the kill answered ok" n !ok;
  (* the restart must land in the counters (the supervisor polls every
     10ms; give it a bounded moment) *)
  let module Json = Cla_obs.Json in
  let restarts () =
    match
      Cla_serve.Client.round_trip ~socket "{\"id\":999,\"op\":\"stats\"}"
    with
    | Error _ -> 0
    | Ok line -> (
        match Json.of_string line with
        | exception Json.Parse_error _ -> 0
        | j ->
            Option.value ~default:0
              (Option.bind
                 (Option.bind (Json.member "counters" j)
                    (Json.member "serve.shard_restarts"))
                 Json.to_int))
  in
  let deadline = Deadline.after ~seconds:3. in
  let rec wait () =
    if restarts () >= 1 then ()
    else if Deadline.expired deadline then
      Alcotest.fail "supervisor never logged the restart"
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ();
  Cla_serve.Server.request_shutdown h;
  Thread.join server;
  (try Sys.remove socket with Sys_error _ -> ());
  Unix.rmdir dir

(* A stale socket file (a previous server crashed before unlinking) must
   not block a restart: the new server probes it, finds no listener,
   takes the path over — and removes it again on its own way out. *)
let test_server_stale_socket_takeover () =
  let view = view_of "int x; int *p;\nvoid f(void) { p = &x; }" in
  let dir = Filename.temp_file "cla_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  (* fake the crash residue: bind, listen, close without unlinking *)
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind s (Unix.ADDR_UNIX socket);
  Unix.listen s 1;
  Unix.close s;
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists socket);
  let config =
    { Cla_serve.Server.default_config with socket_path = socket }
  in
  let handle = ref None in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Cla_serve.Server.run ~config
          ~on_ready:(fun t ->
            Mutex.lock ready_m;
            handle := Some t;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          view)
      ()
  in
  Mutex.lock ready_m;
  while !handle = None do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  (match Cla_serve.Client.round_trip ~socket "{\"id\":1,\"op\":\"ping\"}" with
  | Error e -> Alcotest.fail (Cla_serve.Client.describe e)
  | Ok line ->
      Alcotest.(check bool) "takeover server answers" true
        (Cla_serve.Protocol.status_of_line line = Cla_serve.Protocol.S_ok));
  (match !handle with
  | Some t -> Cla_serve.Server.request_shutdown t
  | None -> ());
  Thread.join server;
  Alcotest.(check bool) "socket removed at exit" false (Sys.file_exists socket);
  Unix.rmdir dir

let () =
  Alcotest.run "resilience"
    [
      ( "deadline-sweep",
        [
          Alcotest.test_case "pretransitive" `Quick test_sweep_pretransitive;
          Alcotest.test_case "worklist" `Quick test_sweep_worklist;
          Alcotest.test_case "bitvector" `Quick test_sweep_bitvector;
          Alcotest.test_case "steensgaard" `Quick test_sweep_steensgaard;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "always answers soundly" `Quick
            test_ladder_always_answers;
          Alcotest.test_case "zero deadline lands on final rung" `Quick
            test_ladder_zero_deadline_lands_on_final_rung;
          Alcotest.test_case "strict ladder can time out" `Quick
            test_ladder_strict_can_time_out;
          Alcotest.test_case "degrade order and attempts" `Quick
            test_degrade_order_and_attempts;
          Alcotest.test_case "algorithm_of_string case-insensitive" `Quick
            test_algorithm_of_string_case_insensitive;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "pre-set token aborts before pass 1" `Quick
            test_cancel_preset;
          Alcotest.test_case "cross-thread cancel aborts mid-solve" `Quick
            test_cancel_from_another_thread;
        ] );
      ( "server",
        [
          Alcotest.test_case "survives mixed good/poison/slow stream" `Quick
            test_server_survives_mixed_stream;
          Alcotest.test_case "sheds when full" `Quick test_server_sheds_when_full;
          Alcotest.test_case "live stats introspection" `Quick
            test_server_stats_introspection;
          Alcotest.test_case "shard kill recovers under supervision" `Quick
            test_server_shard_kill_recovers;
          Alcotest.test_case "stale socket takeover" `Quick
            test_server_stale_socket_takeover;
        ] );
    ]
