(* Open-world analysis: havoc synthesis, the link-time undefined-function
   policies and their exit codes, the Steensgaard rejection, the
   OPENWORLD section's disk roundtrip, and the body-deletion soundness
   gate in both directions (pass, and fail under --inject-unsound). *)

open Cla_core
open Cla_workload
module SS = Set.Make (String)

let solve ?undefined files =
  let view = Pipeline.compile_link ?undefined files in
  (Andersen.solve ~demand:false view).Andersen.solution

let pts sol name =
  match Solution.find sol name with
  | None -> SS.empty
  | Some id ->
      Lvalset.to_list (Solution.points_to sol id)
      |> List.map (Solution.var_name sol)
      |> SS.of_list

(* ------------------------------------------------------------------ *)
(* Library level: havoc semantics                                      *)
(* ------------------------------------------------------------------ *)

let incomplete =
  [
    ( "a.c",
      "int g;\nint *p;\nvoid missing(int **q);\n\
       void start(void) { p = &g; missing(&p); }\n" );
  ]

let test_arg_havoc () =
  (* closed world: the call to the undefined function vanishes and p
     keeps only the local fact *)
  let closed = solve ~undefined:Linkp.Ignore incomplete in
  Alcotest.(check bool) "closed: p -> {g} only" true
    (SS.equal (pts closed "p") (SS.singleton "g"));
  (* open world: &p escaped into the missing code, which may overwrite
     p with anything it can name — the blob *)
  let opened = solve ~undefined:Linkp.Open_world incomplete in
  Alcotest.(check bool) "open: p keeps g" true (SS.mem "g" (pts opened "p"));
  Alcotest.(check bool) "open: p gains the blob" true
    (SS.mem "<blob>" (pts opened "p"))

let test_return_havoc () =
  let files =
    [ ("a.c", "int *h(void);\nint *r;\nvoid start(void) { r = h(); }\n") ]
  in
  let opened = solve ~undefined:Linkp.Open_world files in
  Alcotest.(check bool) "r receives the blob from h's result" true
    (SS.mem "<blob>" (pts opened "r"))

let test_escaped_callback () =
  (* registering a callback with unknown code means the unknown external
     caller may invoke it with arbitrary arguments *)
  let files =
    [
      ( "a.c",
        "int g;\nint *seen;\nvoid reg(void (*cb)(int *));\n\
         void mine(int *a) { seen = a; }\n\
         void start(void) { reg(mine); }\n" );
    ]
  in
  let opened = solve ~undefined:Linkp.Open_world files in
  Alcotest.(check bool) "callback parameter is havocked" true
    (SS.mem "<blob>" (pts opened "seen"))

let test_superset_property () =
  (* every closed-world fact must survive open-world havoc *)
  let files =
    [
      ( "a.c",
        "int x, y;\nint *p, *q, **pp;\nvoid missing(void);\n\
         void start(void) { p = &x; q = &y; pp = &p; *pp = q; }\n" );
    ]
  in
  let closed = solve ~undefined:Linkp.Ignore files in
  let opened = solve ~undefined:Linkp.Open_world files in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "open(%s) ⊇ closed(%s)" v v)
        true
        (SS.subset (pts closed v) (pts opened v)))
    [ "p"; "q"; "pp"; "x"; "y" ]

let test_section_roundtrip () =
  let view = Pipeline.compile_link ~undefined:Linkp.Open_world incomplete in
  match view.Objfile.ropenworld with
  | None -> Alcotest.fail "open-world link lost its OPENWORLD summary"
  | Some ow ->
      Alcotest.(check (list string))
        "undefined functions recorded" [ "missing" ] ow.Objfile.owundef;
      Alcotest.(check string)
        "blob var present" "<blob>"
        view.Objfile.rvars.(ow.Objfile.owblob).Objfile.vname;
      Alcotest.(check bool) "escape set non-empty" true
        (ow.Objfile.owescape <> [])

let test_steensgaard_rejected () =
  let view = Pipeline.compile_link ~undefined:Linkp.Open_world incomplete in
  (match Pipeline.points_to ~algorithm:Pipeline.Steensgaard view with
  | exception Diag.Fail _ -> ()
  | _ -> Alcotest.fail "Steensgaard must refuse an open-world view");
  Alcotest.(check bool) "ladder skips Steensgaard" true
    (not (List.mem Pipeline.Steensgaard Pipeline.open_world_ladder))

(* ------------------------------------------------------------------ *)
(* The deletion gate, both directions                                  *)
(* ------------------------------------------------------------------ *)

let tiny = Profile.scaled 0.05 Profile.nethack

let test_gate_holds () =
  match Deletion.run ~steps:2 ~seed:7L tiny with
  | Ok o ->
      Alcotest.(check bool) "checked something" true (o.Deletion.n_checked > 0);
      Alcotest.(check bool) "dropped something" true (o.Deletion.n_dropped > 0)
  | Error v ->
      Alcotest.fail
        (Fmt.str "gate violated at step %d: %s lost %s" v.Deletion.v_step
           v.Deletion.v_var
           (String.concat ", " v.Deletion.v_missing))

let test_gate_can_fail () =
  match Deletion.run ~inject_unsound:true ~steps:2 ~seed:7L tiny with
  | Ok _ -> Alcotest.fail "gate missed deliberately injected unsoundness"
  | Error v ->
      Alcotest.(check bool) "violation names missing facts" true
        (v.Deletion.v_missing <> [])

(* ------------------------------------------------------------------ *)
(* CLI: exit codes and metrics                                         *)
(* ------------------------------------------------------------------ *)

let cla =
  let candidates =
    [ "../bin/cla.exe"; "_build/default/bin/cla.exe"; "bin/cla.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/cla.exe"

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let tmpdir = Filename.temp_file "cla_ow" ""

let () =
  Sys.remove tmpdir;
  Sys.mkdir tmpdir 0o755

let in_tmp name = Filename.concat tmpdir name
let q = Filename.quote

let () =
  let oc = open_out (in_tmp "inc.c") in
  output_string oc
    "int g;\nint *p;\nvoid missing(int **q);\n\
     void start(void) { p = &g; missing(&p); }\n";
  close_out oc

let setup () =
  let code, out =
    run_capture
      (Fmt.str "%s compile %s -o %s" cla (q (in_tmp "inc.c"))
         (q (in_tmp "inc.clo")))
  in
  Alcotest.(check int) ("compile: " ^ out) 0 code

let test_strict_link_exits_3 () =
  setup ();
  let code, out =
    run_capture
      (Fmt.str "%s link %s -o %s" cla (q (in_tmp "inc.clo"))
         (q (in_tmp "inc.cla")))
  in
  Alcotest.(check int) ("strict link exit: " ^ out) 3 code;
  Alcotest.(check bool) ("names the function: " ^ out) true
    (contains ~affix:"missing" out);
  Alcotest.(check bool) ("suggests --open-world: " ^ out) true
    (contains ~affix:"--open-world" out)

let test_open_world_link_exits_0 () =
  setup ();
  let code, out =
    run_capture
      (Fmt.str "%s link --open-world %s -o %s --stats" cla
         (q (in_tmp "inc.clo"))
         (q (in_tmp "inc.cla")))
  in
  Alcotest.(check int) ("open-world link exit: " ^ out) 0 code;
  Alcotest.(check bool) ("reports havoc: " ^ out) true
    (contains ~affix:"open world: 1 undefined function(s) havocked" out);
  Alcotest.(check bool) ("link.open_world.undefined metric: " ^ out) true
    (contains ~affix:"link.open_world.undefined" out)

let test_analyze_steensgaard_exits_2 () =
  let code, out =
    run_capture
      (Fmt.str "%s analyze --open-world --algo steensgaard %s" cla
         (q (in_tmp "inc.cla")))
  in
  Alcotest.(check int) ("exit: " ^ out) 2 code;
  Alcotest.(check bool) ("lists supported modes: " ^ out) true
    (contains ~affix:"valid with --open-world" out)

let test_analyze_open_world () =
  let code, out =
    run_capture
      (Fmt.str "%s analyze --open-world %s --print --stats" cla
         (q (in_tmp "inc.cla")))
  in
  Alcotest.(check int) ("exit: " ^ out) 0 code;
  Alcotest.(check bool) ("p sees the blob: " ^ out) true
    (contains ~affix:"<blob>" out);
  Alcotest.(check bool) ("analyze.open_world.undefined metric: " ^ out) true
    (contains ~affix:"analyze.open_world.undefined" out)

let () =
  Alcotest.run "openworld"
    [
      ( "havoc",
        [
          Alcotest.test_case "argument havoc" `Quick test_arg_havoc;
          Alcotest.test_case "return havoc" `Quick test_return_havoc;
          Alcotest.test_case "escaped callback" `Quick test_escaped_callback;
          Alcotest.test_case "open ⊇ closed" `Quick test_superset_property;
          Alcotest.test_case "section roundtrip" `Quick test_section_roundtrip;
          Alcotest.test_case "steensgaard rejected" `Quick
            test_steensgaard_rejected;
        ] );
      ( "deletion gate",
        [
          Alcotest.test_case "holds on a stream" `Quick test_gate_holds;
          Alcotest.test_case "catches injected unsoundness" `Quick
            test_gate_can_fail;
        ] );
      ( "cli",
        [
          Alcotest.test_case "strict link exits 3" `Quick
            test_strict_link_exits_3;
          Alcotest.test_case "open-world link exits 0" `Quick
            test_open_world_link_exits_0;
          Alcotest.test_case "steensgaard flag exits 2" `Quick
            test_analyze_steensgaard_exits_2;
          Alcotest.test_case "analyze open world" `Quick
            test_analyze_open_world;
        ] );
    ]
