(* Property-based cross-validation of the solvers.

   On any random constraint program:
   - the pre-transitive solver, the transitively-closed worklist solver and
     the bit-vector solver must produce *identical* points-to sets;
   - every ablation configuration of the pre-transitive solver (caching
     off, cycle elimination off, both off) must agree with the default;
   - demand loading must agree with full loading;
   - Steensgaard's unification-based result must be a superset of
     Andersen's on every variable. *)

open Cla_core

let params_small =
  {
    Cla_workload.Genir.n_vars = 12;
    n_addr = 10;
    n_copy = 15;
    n_store = 5;
    n_load = 5;
    n_deref2 = 2;
    n_funcs = 2;
    n_indirect = 2;
  }

let params_medium =
  {
    Cla_workload.Genir.n_vars = 60;
    n_addr = 45;
    n_copy = 90;
    n_store = 25;
    n_load = 25;
    n_deref2 = 10;
    n_funcs = 4;
    n_indirect = 5;
  }

let view ~params seed =
  Cla_workload.Genir.view ~params (Int64.of_int seed)

let agree name params count solve_b =
  QCheck.Test.make ~count ~name
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let v = view ~params seed in
      let a = (Andersen.solve v).Andersen.solution in
      let b = solve_b v in
      if not (Solution.equal a b) then
        QCheck.Test.fail_reportf "solver mismatch on seed %d:@.A:@.%a@.B:@.%a"
          seed Solution.pp a Solution.pp b
      else true)

let pretrans_eq_worklist =
  agree "pretransitive = worklist (small)" params_small 150 Worklist.solve

let pretrans_eq_worklist_medium =
  agree "pretransitive = worklist (medium)" params_medium 50 Worklist.solve

let pretrans_eq_bitvector =
  agree "pretransitive = bitvector (small)" params_small 150 Bitsolver.solve

let pretrans_eq_bitvector_medium =
  agree "pretransitive = bitvector (medium)" params_medium 50 Bitsolver.solve

let ablation name config =
  agree name params_small 100 (fun v ->
      (Andersen.solve ~config v).Andersen.solution)

let no_cache = ablation "caching off agrees" { Pretrans.cache = false; cycle_elim = true }
let no_cycle = ablation "cycle elim off agrees" { Pretrans.cache = true; cycle_elim = false }

let neither =
  ablation "both optimizations off agree"
    { Pretrans.cache = false; cycle_elim = false }

let full_load =
  agree "demand = full load" params_small 100 (fun v ->
      (Andersen.solve ~demand:false v).Andersen.solution)

let with_threshold th f =
  let saved = Lvalset.default_dense_threshold () in
  Lvalset.set_default_dense_threshold th;
  Fun.protect ~finally:(fun () -> Lvalset.set_default_dense_threshold saved) f

(* force the bitmap representation even on these small workloads (dense
   threshold 4) and compare against the pure sorted-array pool — the
   hybrid representation must be invisible to the solution *)
let hybrid_eq_array name params count =
  QCheck.Test.make ~count ~name
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let v = view ~params seed in
      let a =
        with_threshold max_int (fun () -> (Andersen.solve v).Andersen.solution)
      in
      let b =
        with_threshold 4 (fun () -> (Andersen.solve v).Andersen.solution)
      in
      let w = with_threshold 4 (fun () -> Worklist.solve v) in
      let bv = with_threshold 4 (fun () -> Bitsolver.solve v) in
      if not (Solution.equal a b && Solution.equal a w && Solution.equal a bv)
      then
        QCheck.Test.fail_reportf
          "hybrid pool diverged from array pool on seed %d" seed
      else true)

let hybrid_small = hybrid_eq_array "bitmap pool = array pool (small)" params_small 100
let hybrid_medium = hybrid_eq_array "bitmap pool = array pool (medium)" params_medium 40

let steensgaard_superset =
  QCheck.Test.make ~count:150 ~name:"steensgaard over-approximates andersen"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let v = view ~params:params_small seed in
      let a = (Andersen.solve v).Andersen.solution in
      let s = Steensgaard.solve v in
      let ok = ref true in
      for var = 0 to Objfile.n_vars v - 1 do
        let pa = Solution.points_to a var in
        let ps = Solution.points_to s var in
        Lvalset.iter (fun z -> if not (Lvalset.mem z ps) then ok := false) pa
      done;
      if not !ok then
        QCheck.Test.fail_reportf
          "steensgaard not a superset on seed %d:@.andersen:@.%a@.steens:@.%a"
          seed Solution.pp a Solution.pp s
      else true)

let monotone_under_extra_constraints =
  (* adding one more base assignment can only grow the solution *)
  QCheck.Test.make ~count:80 ~name:"solutions grow monotonically"
    QCheck.(pair (int_bound 1_000_000) (pair (int_bound 11) (int_bound 11)))
    (fun (seed, (x, z)) ->
      let db = Cla_workload.Genir.generate ~params:params_small (Int64.of_int seed) in
      let v1 = Objfile.view_of_string (Objfile.write db) in
      let extra =
        {
          Objfile.pkind = Objfile.Paddr;
          pdst = x;
          psrc = z;
          pop = None;
          ploc = Cla_ir.Loc.none;
        }
      in
      let db2 = { db with Objfile.statics = extra :: db.Objfile.statics } in
      let v2 = Objfile.view_of_string (Objfile.write db2) in
      let a = (Andersen.solve v1).Andersen.solution in
      let b = (Andersen.solve v2).Andersen.solution in
      let ok = ref true in
      for var = 0 to Objfile.n_vars v1 - 1 do
        Lvalset.iter
          (fun l -> if not (Lvalset.mem l (Solution.points_to b var)) then ok := false)
          (Solution.points_to a var)
      done;
      !ok)

let c_workload_agreement =
  (* the solvers must also agree on real generated C (frontend-shaped
     constraints: fields, heap sites, standardized args, indirect calls) *)
  QCheck.Test.make ~count:8 ~name:"solvers agree on generated C workloads"
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = Cla_workload.Profile.scaled 0.04 Cla_workload.Profile.burlap in
      let files = Cla_workload.Genc.generate ~seed:(Int64.of_int seed) p in
      let v = Pipeline.compile_link files in
      let a = (Andersen.solve v).Andersen.solution in
      let w = Worklist.solve v in
      let b = Bitsolver.solve v in
      Solution.equal a w && Solution.equal a b)

let idempotent =
  QCheck.Test.make ~count:60 ~name:"solving twice gives the same answer"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let v = view ~params:params_small seed in
      Solution.equal (Andersen.solve v).Andersen.solution
        (Andersen.solve v).Andersen.solution)

let () =
  Alcotest.run "equiv"
    [
      ( "exact equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            pretrans_eq_worklist;
            pretrans_eq_worklist_medium;
            pretrans_eq_bitvector;
            pretrans_eq_bitvector_medium;
          ] );
      ( "ablations",
        List.map QCheck_alcotest.to_alcotest
          [ no_cache; no_cycle; neither; full_load; hybrid_small; hybrid_medium ] );
      ( "semantic properties",
        List.map QCheck_alcotest.to_alcotest
          [
            steensgaard_superset;
            monotone_under_extra_constraints;
            idempotent;
            c_workload_agreement;
          ] );
    ]
