(* Tests for solution snapshots: freeze/thaw must round-trip a ladder
   outcome exactly (same sets, same provenance — the differential the
   server's O(read) restart rests on), and every way a snapshot can be
   wrong — bit flips anywhere in the file, truncation at any prefix, a
   bumped version word, binding it to a different database, freezing a
   degraded outcome — must be rejected loudly, never served. *)

open Cla_core

let view_of src =
  Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file:"t.c" src))

let src =
  {|
    int x, y, z;
    int *p, *q, **pp;
    void f() {
      p = &x;
      q = &y;
      pp = &p;
      *pp = q;
      p = &z;
    }
  |}

let other_src =
  {|
    int a;
    int *r;
    void g() { r = &a; }
  |}

let outcome_of view = Pipeline.points_to_ladder view

(* The thawed outcome must be indistinguishable from the frozen one:
   equal solution, same rung, same note, clean provenance. *)
let check_same (a : Pipeline.ladder_outcome) (b : Pipeline.ladder_outcome) =
  Alcotest.(check bool)
    "solutions equal" true
    (Solution.equal a.Pipeline.lo_solution b.Pipeline.lo_solution);
  Alcotest.(check string)
    "same rung"
    (Pipeline.algorithm_name a.Pipeline.lo_algorithm)
    (Pipeline.algorithm_name b.Pipeline.lo_algorithm);
  Alcotest.(check string) "same note" a.Pipeline.lo_note b.Pipeline.lo_note;
  Alcotest.(check bool) "not degraded" false b.Pipeline.lo_degraded;
  Alcotest.(check bool) "no timeouts" true (b.Pipeline.lo_timeouts = []);
  match Solution.provenance b.Pipeline.lo_solution with
  | None -> Alcotest.fail "thawed solution carries no provenance"
  | Some pr ->
      Alcotest.(check string) "provenance rung" pr.Solution.p_rung
        (Pipeline.algorithm_name a.Pipeline.lo_algorithm);
      Alcotest.(check bool) "provenance clean" false pr.Solution.p_degraded

let test_roundtrip () =
  let view = view_of src in
  let o = outcome_of view in
  let bytes = Snapshot.freeze ~view o in
  let o' = Snapshot.thaw ~view bytes in
  check_same o o';
  (* freezing the thawed outcome must be byte-identical: the format is
     canonical, so a snapshot survives any number of round trips *)
  Alcotest.(check string)
    "refreeze is byte-identical" bytes
    (Snapshot.freeze ~view o')

let test_disk_roundtrip () =
  let view = view_of src in
  let o = outcome_of view in
  let path = Filename.temp_file "cla_snap" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Snapshot.save path ~view o;
  check_same o (Snapshot.load path ~view)

(* Every single-byte flip anywhere in the file must be caught by the
   magic check, a checksum, or a bounds check — thaw either raises
   [Binio.Corrupt] or (never) returns a value equal to the original.
   Undetected-but-equal is impossible with CRC32 on every section, so we
   require Corrupt outright. *)
let test_bitflip_rejected () =
  let view = view_of src in
  let o = outcome_of view in
  let good = Snapshot.freeze ~view o in
  for i = 0 to String.length good - 1 do
    let b = Bytes.of_string good in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Snapshot.thaw ~view (Bytes.to_string b) with
    | exception Binio.Corrupt _ -> ()
    | _ -> Alcotest.failf "bit flip at byte %d not detected" i
  done

let test_truncation_rejected () =
  let view = view_of src in
  let good = Snapshot.freeze ~view (outcome_of view) in
  for len = 0 to String.length good - 1 do
    match Snapshot.thaw ~view (String.sub good 0 len) with
    | exception Binio.Corrupt _ -> ()
    | _ -> Alcotest.failf "truncation to %d bytes not detected" len
  done

let test_version_bump_rejected () =
  let view = view_of src in
  let good = Snapshot.freeze ~view (outcome_of view) in
  (* the version word sits right after the 4-byte magic, little-endian *)
  let b = Bytes.of_string good in
  Bytes.set b 4 (Char.chr (Snapshot.current_version + 1));
  match Snapshot.thaw ~view (Bytes.to_string b) with
  | exception Binio.Corrupt _ -> ()
  | _ -> Alcotest.fail "bumped version not rejected"

(* A snapshot is bound to the database bytes it was solved from: thawing
   it against a different program must be refused even though the file
   itself is pristine. *)
let test_binding_mismatch_rejected () =
  let view = view_of src in
  let good = Snapshot.freeze ~view (outcome_of view) in
  let other = view_of other_src in
  match Snapshot.thaw ~view:other good with
  | exception Binio.Corrupt _ -> ()
  | _ -> Alcotest.fail "snapshot accepted against the wrong database"

let test_degraded_refused () =
  let view = view_of src in
  let o = outcome_of view in
  let degraded = { o with Pipeline.lo_degraded = true } in
  match Snapshot.freeze ~view degraded with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "degraded outcome frozen"

(* load_result: corruption surfaces as a Load-phase diagnostic naming
   the file (the [load.corrupt] path the server's fallback rides on),
   and a missing file is a diagnostic too, not an exception. *)
let test_load_result_diag () =
  let view = view_of src in
  let o = outcome_of view in
  let path = Filename.temp_file "cla_snap" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Snapshot.save path ~view o;
  (match Snapshot.load_result path ~view with
  | Ok o' -> check_same o o'
  | Error d -> Alcotest.failf "pristine snapshot rejected: %s" (Diag.to_string d));
  let b = Bytes.of_string (Snapshot.freeze ~view o) in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match Snapshot.load_result path ~view with
  | Ok _ -> Alcotest.fail "corrupt snapshot accepted"
  | Error d ->
      Alcotest.(check bool) "load phase" true (d.Diag.phase = Diag.Load));
  match Snapshot.load_result (path ^ ".does-not-exist") ~view with
  | Ok _ -> Alcotest.fail "missing snapshot accepted"
  | Error d -> Alcotest.(check bool) "load phase" true (d.Diag.phase = Diag.Load)

(* Differential against the serving path: a server answering from the
   thawed arena must report exactly the sets the live solve reports. *)
let test_thaw_matches_live_queries () =
  let view = view_of src in
  let o = outcome_of view in
  let o' = Snapshot.thaw ~view (Snapshot.freeze ~view o) in
  Array.iteri
    (fun v _ ->
      let live = Solution.points_to o.Pipeline.lo_solution v in
      let thawed = Solution.points_to o'.Pipeline.lo_solution v in
      Alcotest.(check (list string))
        (Fmt.str "points-to of var %d" v)
        (List.map
           (Solution.var_name o.Pipeline.lo_solution)
           (Lvalset.to_list live))
        (List.map
           (Solution.var_name o'.Pipeline.lo_solution)
           (Lvalset.to_list thawed)))
    o.Pipeline.lo_solution.Solution.pts

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "freeze/thaw" `Quick test_roundtrip;
          Alcotest.test_case "disk" `Quick test_disk_roundtrip;
          Alcotest.test_case "query differential" `Quick
            test_thaw_matches_live_queries;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "every bit flip" `Quick test_bitflip_rejected;
          Alcotest.test_case "every truncation" `Quick test_truncation_rejected;
          Alcotest.test_case "version bump" `Quick test_version_bump_rejected;
          Alcotest.test_case "wrong database" `Quick
            test_binding_mismatch_rejected;
          Alcotest.test_case "degraded outcome" `Quick test_degraded_refused;
          Alcotest.test_case "load_result diagnostics" `Quick
            test_load_result_diag;
        ] );
    ]
