(* Tests for the observability layer (Cla_obs): span nesting and
   ordering, metrics-registry name uniqueness, JSON export round-trips,
   Pretrans stats invariants, and an end-to-end pipeline smoke test of
   the --stats-json export content. *)

open Cla_core
module Obs = Cla_obs.Obs
module Span = Cla_obs.Span
module Metrics = Cla_obs.Metrics
module Json = Cla_obs.Json
module Export = Cla_obs.Export
module Trace = Cla_obs.Trace

(* Every test drives the process-wide recorder; start from a clean
   slate and leave recording off. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  fresh ();
  Obs.enable ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "first" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.with_span "second" ~label:"x" (fun () ->
          Obs.with_span "inner" (fun () -> ())));
  Obs.disable ();
  match Span.roots () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" outer.Span.name;
      Alcotest.(check (list string))
        "children in execution order" [ "first"; "second" ]
        (List.map (fun s -> s.Span.name) outer.Span.children);
      let second = List.nth outer.Span.children 1 in
      Alcotest.(check (option string)) "label" (Some "x") second.Span.label;
      Alcotest.(check (list string))
        "grandchild" [ "inner" ]
        (List.map (fun s -> s.Span.name) second.Span.children);
      Alcotest.(check bool) "wall time non-negative" true
        (outer.Span.wall_s >= 0.);
      Alcotest.(check bool) "outer at least as long as children" true
        (outer.Span.wall_s
        >= List.fold_left
             (fun a c -> a +. c.Span.wall_s)
             0. outer.Span.children
           -. 1e-6)
  | spans ->
      Alcotest.fail (Fmt.str "expected one root span, got %d" (List.length spans))

let test_span_sibling_order () =
  fresh ();
  Obs.enable ();
  List.iter (fun n -> Obs.with_span n (fun () -> ())) [ "a"; "b"; "c" ];
  Obs.disable ();
  Alcotest.(check (list string))
    "roots in execution order" [ "a"; "b"; "c" ]
    (List.map (fun s -> s.Span.name) (Span.roots ()))

let test_span_disabled_is_noop () =
  fresh ();
  let v = Obs.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.roots ()))

let test_span_survives_exception () =
  fresh ();
  Obs.enable ();
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  Obs.disable ();
  Alcotest.(check (list string))
    "span closed on exception, recorder still consistent" [ "boom"; "after" ]
    (List.map (fun s -> s.Span.name) (Span.roots ()))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let reg = Metrics.create () in
  Metrics.set ~reg "a.count" 3;
  Metrics.incr ~reg "a.count";
  Metrics.incr ~reg ~by:2 "a.count";
  Metrics.setf ~reg "a.seconds" 1.5;
  Metrics.set_str ~reg "a.name" "gimp";
  Metrics.observe ~reg "a.series" 1;
  Metrics.observe ~reg "a.series" 2;
  Alcotest.(check (option int)) "incr" (Some 6) (Metrics.get_int ~reg "a.count");
  Alcotest.(check (option (list int)))
    "series order" (Some [ 1; 2 ])
    (Metrics.get_series ~reg "a.series");
  Alcotest.(check (list string))
    "snapshot sorted by name"
    [ "a.count"; "a.name"; "a.seconds"; "a.series" ]
    (List.map fst (Metrics.snapshot ~reg ()))

let test_metrics_name_uniqueness () =
  let reg = Metrics.create () in
  Metrics.set ~reg "x" 1;
  Alcotest.check_raises "rebind int as series"
    (Invalid_argument "Metrics: \"x\" is a int metric, cannot rebind as series")
    (fun () -> Metrics.set_series ~reg "x" [ 1 ]);
  Alcotest.check_raises "observe an int metric"
    (Invalid_argument "Metrics: \"x\" is a int metric, cannot observe")
    (fun () -> Metrics.observe ~reg "x" 1);
  Metrics.setf ~reg "y" 1.0;
  Alcotest.check_raises "incr a float metric"
    (Invalid_argument "Metrics: \"y\" is a float metric, cannot incr")
    (fun () -> Metrics.incr ~reg "y");
  (* same-kind republish overwrites *)
  Metrics.set ~reg "x" 9;
  Alcotest.(check (option int)) "overwrite" (Some 9) (Metrics.get_int ~reg "x")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histo = Cla_obs.Histo

(* Deterministic xorshift so the oracle comparison is reproducible. *)
let xorshift seed =
  let s = ref seed in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x land max_int;
    !s

(* Exact nearest-rank quantile over a sample, mirroring Histo.quantile's
   documented rank choice. *)
let exact_quantile samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (q *. float n)) - 1 in
  a.(max 0 (min (n - 1) rank))

let test_histo_bucket_geometry () =
  (* index is monotone and bounds really bracket the value, across the
     unit region, the first octaves, and some large values *)
  let probes =
    [ 0; 1; 31; 32; 33; 63; 64; 100; 1_000; 123_456; 10_000_000;
      1_000_000_000; max_int / 2 ]
  in
  List.iter
    (fun v ->
      let i = Histo.index v in
      let lo, hi = Histo.bounds i in
      Alcotest.(check bool) (Fmt.str "bounds bracket %d" v) true
        (lo <= v && v < hi))
    probes;
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) (Fmt.str "index monotone at %d<%d" a b) true
          (Histo.index a <= Histo.index b);
        pairs rest
    | _ -> ()
  in
  pairs probes;
  (* below linear_limit buckets are exact unit buckets *)
  for v = 0 to Histo.linear_limit - 1 do
    Alcotest.(check int) (Fmt.str "unit bucket %d" v) v (Histo.index v)
  done

let test_histo_quantile_oracle () =
  (* the histogram's quantile must land in the same bucket as the exact
     sample quantile — i.e. within relative_error — for a spread of
     distributions the serving path actually produces *)
  let rand = xorshift 0x5eed in
  let distributions =
    [
      ("uniform-small", List.init 500 (fun _ -> rand () mod 31));
      ("uniform-wide", List.init 1000 (fun _ -> rand () mod 5_000_000));
      ( "bimodal",
        List.init 1000 (fun i ->
            if i mod 10 = 0 then 2_000_000 + (rand () mod 50_000)
            else 1_000 + (rand () mod 500)) );
      ("heavy-tail", List.init 800 (fun _ ->
           let r = rand () mod 1000 in
           r * r * 37));
      ("constant", List.init 100 (fun _ -> 777));
    ]
  in
  List.iter
    (fun (name, samples) ->
      let h = Histo.create () in
      List.iter (Histo.record h) samples;
      Alcotest.(check int) (name ^ " count") (List.length samples)
        (Histo.count h);
      Alcotest.(check int) (name ^ " total")
        (List.fold_left ( + ) 0 samples)
        (Histo.total h);
      List.iter
        (fun q ->
          let exact = exact_quantile samples q in
          let est = Histo.quantile h q in
          Alcotest.(check int)
            (Fmt.str "%s p%g same bucket" name (q *. 100.))
            (Histo.index exact) (Histo.index est);
          (* and below the unit region the estimate is literally exact *)
          if exact < Histo.linear_limit then
            Alcotest.(check int)
              (Fmt.str "%s p%g exact below linear_limit" name (q *. 100.))
              exact est)
        [ 0.; 0.5; 0.9; 0.99; 0.999; 1.0 ])
    distributions

let test_histo_min_max_mean () =
  let h = Histo.create () in
  Alcotest.(check int) "empty quantile" 0 (Histo.quantile h 0.5);
  Alcotest.(check int) "empty min" 0 (Histo.min_value h);
  List.iter (Histo.record h) [ 5; 100; 42 ];
  Alcotest.(check int) "min" 5 (Histo.min_value h);
  Alcotest.(check int) "max" 100 (Histo.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 49.0 (Histo.mean h);
  (* quantile estimates are clamped to the observed range *)
  Alcotest.(check bool) "p100 <= max" true (Histo.quantile h 1.0 <= 100);
  Alcotest.(check bool) "p0 >= min" true (Histo.quantile h 0.0 >= 5);
  (* negative values clamp to 0 rather than crash *)
  Histo.record h (-7);
  Alcotest.(check int) "negative clamps to 0" 0 (Histo.min_value h)

let test_histo_merge_laws () =
  let fill seed n spread =
    let rand = xorshift seed in
    let h = Histo.create () in
    for _ = 1 to n do
      Histo.record h (rand () mod spread)
    done;
    h
  in
  let a () = fill 1 300 1_000 in
  let b () = fill 2 500 1_000_000 in
  let c () = fill 3 200 50 in
  (* commutative *)
  Alcotest.(check bool) "merge commutes" true
    (Histo.equal (Histo.merge (a ()) (b ())) (Histo.merge (b ()) (a ())));
  (* associative *)
  Alcotest.(check bool) "merge associates" true
    (Histo.equal
       (Histo.merge (Histo.merge (a ()) (b ())) (c ()))
       (Histo.merge (a ()) (Histo.merge (b ()) (c ()))));
  (* merge_into agrees with merge, and sums counts/totals *)
  let tgt = a () and src = b () in
  let expect = Histo.merge (a ()) (b ()) in
  Histo.merge_into ~into:tgt src;
  Alcotest.(check bool) "merge_into = merge" true (Histo.equal tgt expect);
  Alcotest.(check int) "merged count" 800 (Histo.count tgt);
  Alcotest.(check int) "merged total"
    (Histo.total (a ()) + Histo.total (b ()))
    (Histo.total tgt);
  (* src is untouched by the merge *)
  Alcotest.(check bool) "src unchanged" true (Histo.equal src (b ()))

let test_histo_cross_domain () =
  (* 4 domains hammering one histogram: lock-free recording must lose
     nothing — count and total land exactly *)
  let h = Histo.create () in
  let per_domain = 10_000 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Histo.record h ((d * per_domain) + i)
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "no lost counts" (4 * per_domain) (Histo.count h);
  let expect_total =
    let n = 4 * per_domain in
    n * (n + 1) / 2
  in
  Alcotest.(check int) "no lost total" expect_total (Histo.total h);
  Alcotest.(check int) "min survived the races" 1 (Histo.min_value h);
  Alcotest.(check int) "max survived the races" (4 * per_domain)
    (Histo.max_value h)

let test_histo_json_export () =
  let h = Histo.create () in
  List.iter (Histo.record h) (List.init 100 (fun i -> i * 1000));
  let parsed = Json.of_string (Json.to_string (Histo.to_json h)) in
  let geti name = Option.bind (Json.member name parsed) Json.to_int in
  Alcotest.(check (option int)) "count" (Some 100) (geti "count");
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " present") true
        (Json.member f parsed <> None))
    [ "min"; "max"; "mean"; "p50"; "p90"; "p99"; "p999"; "buckets" ];
  (* a Histo-valued metric flows through the registry export too *)
  let reg = Metrics.create () in
  let hm = Metrics.histo ~reg "t.lat" in
  Histo.record hm 12345;
  match Metrics.snapshot ~reg () with
  | [ ("t.lat", Metrics.Histo h') ] ->
      Alcotest.(check int) "registry histo live" 1 (Histo.count h')
  | _ -> Alcotest.fail "histo metric missing from snapshot"

let test_metrics_bounded_series () =
  let reg = Metrics.create () in
  (* capped observation keeps only the newest [cap] points, in order *)
  for i = 1 to 100 do
    Metrics.observe ~reg ~cap:8 "s" i
  done;
  Alcotest.(check (option (list int)))
    "newest 8, oldest first"
    (Some [ 93; 94; 95; 96; 97; 98; 99; 100 ])
    (Metrics.get_series ~reg "s");
  (* uncapped keeps everything, still in order *)
  for i = 1 to 50 do
    Metrics.observe ~reg "u" i
  done;
  Alcotest.(check (option int))
    "uncapped length" (Some 50)
    (Option.map List.length (Metrics.get_series ~reg "u"))

let test_metrics_merge_into () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.set ~reg:a "n" 3;
  Metrics.set ~reg:b "n" 4;
  Metrics.setf ~reg:a "f" 1.5;
  Metrics.setf ~reg:b "f" 2.5;
  Metrics.set_str ~reg:a "s" "keep";
  Metrics.set_str ~reg:b "s" "drop";
  Metrics.observe ~reg:a "ser" 1;
  Metrics.observe ~reg:b "ser" 2;
  Metrics.set ~reg:b "only_b" 9;
  let hb = Metrics.histo ~reg:b "h" in
  Histo.record hb 50;
  Metrics.merge_into ~into:a b;
  Alcotest.(check (option int)) "ints add" (Some 7) (Metrics.get_int ~reg:a "n");
  Alcotest.(check (option int)) "absent copies" (Some 9)
    (Metrics.get_int ~reg:a "only_b");
  Alcotest.(check (option (list int)))
    "series concat" (Some [ 1; 2 ])
    (Metrics.get_series ~reg:a "ser");
  (* the merged histogram is a private copy: recording into b's handle
     afterwards must not leak into a's view *)
  Histo.record hb 60;
  match Metrics.get_histo ~reg:a "h" with
  | Some ha -> Alcotest.(check int) "histo copied, not shared" 1 (Histo.count ha)
  | None -> Alcotest.fail "merged histogram missing"

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("f", Json.Float 0.125);
        ("s", Json.Str "quote \" backslash \\ newline \n done");
        ("arr", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Arr [] ]);
        ("obj", Json.Obj [ ("k", Json.Obj []) ]);
      ]
  in
  List.iter
    (fun indent ->
      let s = Json.to_string ~indent doc in
      Alcotest.(check bool)
        (Fmt.str "round-trip (indent=%b)" indent)
        true
        (Json.equal doc (Json.of_string s)))
    [ true; false ]

let test_json_number_kinds () =
  (match Json.of_string "[1, 1.0, 2e3]" with
  | Json.Arr [ Json.Int 1; Json.Float 1.0; Json.Float 2000.0 ] -> ()
  | _ -> Alcotest.fail "number parsing kinds");
  (* floats always re-parse as floats *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Json.Float 3.0 -> ()
  | _ -> Alcotest.fail "integral float must stay a float"

let test_export_roundtrip () =
  fresh ();
  Obs.enable ();
  Obs.with_span "phase" (fun () -> Obs.with_span "sub" (fun () -> ()));
  Obs.disable ();
  Metrics.set "m.count" 7;
  Metrics.set_series "m.series" [ 3; 2; 1 ];
  let parsed = Json.of_string (Json.to_string (Export.to_json ())) in
  let metrics = Option.get (Json.member "metrics" parsed) in
  Alcotest.(check (option int))
    "metric value" (Some 7)
    (Option.bind (Json.member "m.count" metrics) Json.to_int);
  (match Json.member "m.series" metrics with
  | Some (Json.Arr [ Json.Int 3; Json.Int 2; Json.Int 1 ]) -> ()
  | _ -> Alcotest.fail "series exported in order");
  (match Json.member "spans" parsed with
  | Some (Json.Arr [ span ]) -> (
      Alcotest.(check bool)
        "span name" true
        (Json.member "name" span = Some (Json.Str "phase"));
      match Json.member "children" span with
      | Some (Json.Arr [ child ]) ->
          Alcotest.(check bool)
            "child name" true
            (Json.member "name" child = Some (Json.Str "sub"))
      | _ -> Alcotest.fail "child span missing")
  | _ -> Alcotest.fail "spans missing");
  (* the Chrome trace export parses too, one event per span *)
  match Json.member "traceEvents" (Json.of_string (Json.to_string (Trace.to_json (Span.roots ())))) with
  | Some (Json.Arr events) ->
      Alcotest.(check int) "trace events" 2 (List.length events)
  | _ -> Alcotest.fail "traceEvents missing"

(* ------------------------------------------------------------------ *)
(* Pretrans stats invariants                                           *)
(* ------------------------------------------------------------------ *)

let solved_workload () =
  fresh ();
  let view =
    Pipeline.compile_link
      [
        ( "w.c",
          {|
int o1, o2, o3;
int *p, *q, *r, **pp;
void f(void) {
  p = &o1; q = &o2; r = &o3;
  pp = &p; *pp = q; p = *pp;
  q = p; r = q; p = r;  /* a cycle */
}
|}
        );
      ]
  in
  Andersen.solve view

let test_pretrans_invariants () =
  let r = solved_workload () in
  let s = r.Andersen.graph_stats in
  Alcotest.(check bool) "cache_hits <= queries" true
    (s.Pretrans.cache_hits <= s.Pretrans.queries);
  Alcotest.(check bool) "unified <= nodes" true
    (s.Pretrans.unified <= s.Pretrans.nodes);
  Alcotest.(check bool) "visits >= queries - cache_hits" true
    (s.Pretrans.visits >= s.Pretrans.queries - s.Pretrans.cache_hits);
  Alcotest.(check bool) "did some work" true (s.Pretrans.queries > 0)

let test_pretrans_reset_stats () =
  let g = Pretrans.create ~nodes:4 () in
  ignore (Pretrans.add_edge g 0 1);
  ignore (Pretrans.add_edge g 1 2);
  Pretrans.add_base g 2 3;
  ignore (Pretrans.get_lvals g 0);
  ignore (Pretrans.get_lvals g 0);
  let before = Pretrans.stats g in
  Alcotest.(check bool) "queries counted" true (before.Pretrans.queries = 2);
  Alcotest.(check bool) "second query hit the cache" true
    (before.Pretrans.cache_hits = 1);
  Pretrans.reset_stats g;
  let after = Pretrans.stats g in
  Alcotest.(check int) "queries reset" 0 after.Pretrans.queries;
  Alcotest.(check int) "visits reset" 0 after.Pretrans.visits;
  Alcotest.(check int) "cache_hits reset" 0 after.Pretrans.cache_hits;
  Alcotest.(check int) "structure kept: nodes" before.Pretrans.nodes
    after.Pretrans.nodes;
  Alcotest.(check int) "structure kept: edges" before.Pretrans.edges
    after.Pretrans.edges

(* ------------------------------------------------------------------ *)
(* Solution.points_to guard                                            *)
(* ------------------------------------------------------------------ *)

let test_points_to_guards () =
  let r = solved_workload () in
  let sol = r.Andersen.solution in
  Alcotest.check_raises "negative id fails loudly"
    (Invalid_argument "Solution.points_to: negative variable id -1")
    (fun () -> ignore (Solution.points_to sol (-1)));
  Alcotest.(check int) "beyond-table id is empty" 0
    (Lvalset.cardinal (Solution.points_to sol 1_000_000))

(* ------------------------------------------------------------------ *)
(* Pipeline smoke: the --stats-json content contract                   *)
(* ------------------------------------------------------------------ *)

let test_pipeline_stats_export () =
  fresh ();
  Obs.enable ();
  let view =
    Pipeline.compile_link
      [
        ("a.c", "int x, *y; int **z;\nvoid main(void) { z = &y; *z = &x; }");
        ("b.c", "extern int *y;\nint *alias;\nvoid g(void) { alias = y; }");
      ]
  in
  let r = Pipeline.points_to_result view in
  Obs.disable ();
  let parsed = Json.of_string (Json.to_string (Export.to_json ())) in
  let metrics = Option.get (Json.member "metrics" parsed) in
  let metric name = Option.bind (Json.member name metrics) Json.to_int in
  (match metric "analyze.passes" with
  | Some n -> Alcotest.(check bool) "analyze.passes >= 1" true (n >= 1)
  | None -> Alcotest.fail "analyze.passes missing");
  (* the registry mirrors the result's own stats records *)
  let gs = r.Andersen.graph_stats in
  Alcotest.(check (option int))
    "analyze.pretrans.queries matches Pretrans.stats"
    (Some gs.Pretrans.queries)
    (metric "analyze.pretrans.queries");
  Alcotest.(check (option int))
    "analyze.pretrans.cache_hits matches"
    (Some gs.Pretrans.cache_hits)
    (metric "analyze.pretrans.cache_hits");
  let ls = r.Andersen.loader_stats in
  Alcotest.(check (option int))
    "load.blocks.in_core matches Loader.stats"
    (Some ls.Loader.s_in_core)
    (metric "load.blocks.in_core");
  (* per-pass convergence series, one entry per pass *)
  (match Json.member "analyze.pass.edges_added" metrics with
  | Some (Json.Arr entries) ->
      Alcotest.(check int) "one series entry per pass" r.Andersen.passes
        (List.length entries)
  | _ -> Alcotest.fail "analyze.pass.edges_added missing");
  (* per-phase spans: compile and link recorded, analyze with children *)
  let span_names =
    List.map (fun s -> s.Span.name) (Span.roots ())
  in
  Alcotest.(check bool) "compile spans" true (List.mem "compile" span_names);
  Alcotest.(check bool) "link span" true (List.mem "link" span_names);
  match Span.find "analyze" (Span.roots ()) with
  | Some a ->
      Alcotest.(check bool) "analyze has pass children" true
        (List.exists (fun c -> c.Span.name = "analyze.pass") a.Span.children)
  | None -> Alcotest.fail "analyze span missing"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "sibling order" `Quick test_span_sibling_order;
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "name uniqueness" `Quick test_metrics_name_uniqueness;
          Alcotest.test_case "bounded series" `Quick test_metrics_bounded_series;
          Alcotest.test_case "merge_into" `Quick test_metrics_merge_into;
        ] );
      ( "histo",
        [
          Alcotest.test_case "bucket geometry" `Quick test_histo_bucket_geometry;
          Alcotest.test_case "quantile vs oracle" `Quick
            test_histo_quantile_oracle;
          Alcotest.test_case "min/max/mean" `Quick test_histo_min_max_mean;
          Alcotest.test_case "merge laws" `Quick test_histo_merge_laws;
          Alcotest.test_case "cross-domain recording" `Quick
            test_histo_cross_domain;
          Alcotest.test_case "json export" `Quick test_histo_json_export;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "number kinds" `Quick test_json_number_kinds;
          Alcotest.test_case "export round-trip" `Quick test_export_roundtrip;
        ] );
      ( "pretrans stats",
        [
          Alcotest.test_case "invariants" `Quick test_pretrans_invariants;
          Alcotest.test_case "reset_stats" `Quick test_pretrans_reset_stats;
        ] );
      ( "solution",
        [ Alcotest.test_case "points_to guards" `Quick test_points_to_guards ] );
      ( "pipeline",
        [
          Alcotest.test_case "stats export content" `Quick
            test_pipeline_stats_export;
        ] );
    ]
