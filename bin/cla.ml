(* The cla command-line driver, mirroring the paper's three-phase
   architecture plus the applications built on it.

     cla compile a.c -o a.clo
     cla link a.clo b.clo -o prog.cla
     cla analyze prog.cla [--algo pretransitive|worklist|bitvector|steensgaard]
                          [--no-cache] [--no-cycle-elim] [--print]
     cla depend prog.cla --target x [--non-target y] [--new-type int] [--tree]
     cla transform prog.cla [--substitute] [--duplicate-contexts] -o out.cla
     cla dump prog.cla [--blocks]
     cla gen gimp -d outdir [--scale 0.1] [--seed 7]
*)

open Cmdliner
open Cla_core

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Bad input (exit 2) is separated from internal failure (exit 3):
   scripts driving a keep-going build want to know whether to fix their
   sources or file a bug.  Usage errors keep cmdliner's 124. *)
let err_input msg = Error (msg, Diag.exit_input)

let handle_errors f =
  try f () with
  | Cla_cfront.Cparser.Parse_error (msg, loc) ->
      err_input (Fmt.str "parse error: %s at %a" msg Cla_ir.Loc.pp loc)
  | Cla_cfront.Cpp.Cpp_error (msg, file, line) ->
      err_input (Fmt.str "cpp error: %s at %s:%d" msg file line)
  | Cla_cfront.Clexer.Error (msg, pos) ->
      err_input
        (Fmt.str "lex error: %s at %s:%d" msg pos.Lexing.pos_fname
           pos.Lexing.pos_lnum)
  | Binio.Corrupt msg -> err_input ("corrupt object file: " ^ msg)
  | Diag.Fail d -> err_input (Diag.to_string d)
  | Sys_error msg -> err_input msg
  | Stack_overflow ->
      Error ("internal error: stack overflow", Diag.exit_internal)
  | e -> Error ("internal error: " ^ Printexc.to_string e, Diag.exit_internal)

let to_exit = function
  | Ok () -> Diag.exit_ok
  | Error (msg, code) ->
      Fmt.epr "cla: %s@." msg;
      code

(* Open a database, turning corruption into a one-line diagnostic that
   names the offending file. *)
let load_view path =
  Cla_obs.Obs.with_span "load" ~label:path @@ fun () ->
  match Objfile.load_result path with
  | Ok v -> v
  | Error d ->
      Cla_obs.Metrics.incr (Diag.metric_of_phase d.Diag.phase);
      raise (Diag.Fail d)

(* Like [load_view], with the per-section checksum sweep fanned out
   across [jobs] domains ([cla analyze -j N]).  The domains come from
   the process-wide persistent pool, so the solve that follows reuses
   the same parked workers. *)
let load_view_jobs ~jobs path =
  if jobs <= 1 then load_view path
  else
    Cla_obs.Obs.with_span "load" ~label:path @@ fun () ->
    let pool = Cla_par.Pool.shared ~jobs in
    match Loader.load_file_par ~pool path with
    | Ok v -> v
    | Error d ->
        Cla_obs.Metrics.incr (Diag.metric_of_phase d.Diag.phase);
        raise (Diag.Fail d)

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:
          "Report failing inputs as diagnostics and continue with the \
           rest instead of stopping at the first failure.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Use $(docv) worker domains for the parallel phases (unit \
           compilation, section checksum verification, and the solve \
           itself: the pre-transitive query fan-out and the row-parallel \
           bit-vector passes).  0 means auto: one domain per core.  \
           Output is byte-identical regardless of $(docv).")

(* Resolve a [-j N] request once per run, publishing the requested and
   resolved widths so [--stats-json] records what actually ran.  A
   negative count is a clean input error (exit 2), not an exception
   trace. *)
let resolve_jobs jobs =
  if jobs < 0 then
    err_input
      (Fmt.str "invalid job count %d: -j expects N >= 0 (0 = auto-detect)"
         jobs)
  else begin
    let j = Cla_par.Pool.resolve_jobs jobs in
    Cla_obs.Metrics.set "par.jobs_requested" jobs;
    Cla_obs.Metrics.set "par.jobs" j;
    Ok j
  end

(* ------------------------------------------------------------------ *)
(* Observability options (compile, link, analyze)                      *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  o_stats : bool;
  o_stats_json : string option;
  o_trace : string option;
}

let obs_term =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the span tree and metrics registry after the command.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Dump the full metrics registry and span tree as JSON to \
             $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write Chrome trace_event JSON to $(docv) (load in \
             chrome://tracing or ui.perfetto.dev).")
  in
  Term.(
    const (fun o_stats o_stats_json o_trace ->
        { o_stats; o_stats_json; o_trace })
    $ stats $ stats_json $ trace)

(* Enable span recording iff some sink asked for it (spans are no-ops
   otherwise), run, then emit to every requested sink.  Sinks are
   written even when the command fails: a keep-going run's error
   counters ([compile.errors], [load.corrupt], ...) are part of its
   result. *)
let with_obs o f =
  let active = o.o_stats || o.o_stats_json <> None || o.o_trace <> None in
  if active then Cla_obs.Obs.enable ();
  let r = f () in
  if not active then r
  else begin
    if o.o_stats then
      Fmt.pr "%a" (fun ppf () -> Cla_obs.Export.pp_table ppf ()) ();
    try
      Option.iter (fun p -> Cla_obs.Export.write_json p) o.o_stats_json;
      Option.iter
        (fun p -> Cla_obs.Trace.write p (Cla_obs.Span.roots ()))
        o.o_trace;
      r
    with Sys_error msg -> ( match r with Ok () -> err_input msg | Error _ -> r)
  end

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let mode_arg =
  let field_independent =
    Arg.(
      value & flag
      & info [ "field-independent" ]
          ~doc:
            "Treat struct field accesses as accesses to the whole base \
             object (the default is the paper's field-based mode).")
  in
  Term.(
    const (fun fi ->
        if fi then Cla_cfront.Normalize.Field_independent
        else Cla_cfront.Normalize.Field_based)
    $ field_independent)

let include_dirs_arg =
  Arg.(
    value & opt_all dir []
    & info [ "I" ] ~docv:"DIR" ~doc:"Add $(docv) to the #include search path.")

let defines_arg =
  Arg.(
    value & opt_all string []
    & info [ "D" ] ~docv:"NAME[=VALUE]"
        ~doc:"Predefine $(docv) for the preprocessor.")

let parse_defines ds =
  List.map
    (fun d ->
      match String.index_opt d '=' with
      | Some i -> (String.sub d 0 i, String.sub d (i + 1) (String.length d - i - 1))
      | None -> (d, "1"))
    ds

let options_term =
  Term.(
    const (fun mode include_dirs defines ->
        {
          Compilep.mode;
          include_dirs;
          defines = parse_defines defines;
          virtual_fs = [];
          drop_bodies = (fun _ -> false);
        })
    $ mode_arg $ include_dirs_arg $ defines_arg)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let sources =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.c")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE.clo"
          ~doc:"Output object file (default: source with .clo extension).")
  in
  let run options sources output keep_going jobs obs =
    with_obs obs (fun () ->
        handle_errors (fun () ->
            let* jobs = resolve_jobs jobs in
            (* Compile every unit (fanning out across a domain pool when
               -j > 1; compilation is file-local, so units are
               independent and each unit's bytes are scheduling-
               independent), then write outputs and report diagnostics
               strictly in input order — -jN output is byte-identical
               and diagnostic-identical to -j1. *)
            let out_for src =
              match (output, sources) with
              | Some o, [ _ ] -> o
              | _ -> Filename.remove_extension src ^ ".clo"
            in
            (* Incremental compile: when the output object already
               exists and records the same TU content hash (preprocessed
               source + flags), the expensive parse/serialize is
               skipped.  A hash probe is just the preprocessor plus a
               digest; mismatches, unreadable objects, and pre-hash
               objects all fall through to a fresh compile. *)
            let up_to_date src =
              let out = out_for src in
              Sys.file_exists out
              && (match Objfile.load_result out with
                 | Error _ -> false
                 | Ok v -> (
                     match v.Objfile.rtuhash with
                     | None -> false
                     | Some h -> (
                         match
                           let ic = open_in_bin src in
                           let n = in_channel_length ic in
                           let s = really_input_string ic n in
                           close_in ic;
                           Compilep.tu_hash ~options ~file:src s
                         with
                         | h' -> String.equal h h'
                         | exception _ -> false)))
            in
            let results =
              let compile src =
                if up_to_date src then begin
                  Cla_obs.Metrics.incr "compile.cache.hits";
                  (src, `Cached)
                end
                else begin
                  Cla_obs.Metrics.incr "compile.cache.misses";
                  (src, `Fresh (Compilep.compile_file_result ~options src))
                end
              in
              if jobs <= 1 then List.map compile sources
              else
                Cla_obs.Obs.with_span "compile"
                  ~label:(Fmt.str "fan-out -j%d" jobs) (fun () ->
                    let pool = Cla_par.Pool.shared ~jobs in
                    Cla_par.Pool.map pool compile sources)
            in
            let c = Diag.collector () in
            List.iter
              (fun (src, result) ->
                let out = out_for src in
                match result with
                | `Cached -> Fmt.pr "%s -> %s (cached)@." src out
                | `Fresh (Ok db) ->
                    Objfile.save out db;
                    Fmt.pr "%s -> %s@." src out
                | `Fresh (Error d) ->
                    if keep_going then begin
                      Diag.add c d;
                      Fmt.epr "cla: %a@." Diag.pp d
                    end
                    else raise (Diag.Fail d))
              results;
            match Diag.error_count c with
            | 0 -> Ok ()
            | n ->
                err_input
                  (Fmt.str "%d of %d unit(s) failed" n (List.length sources))))
    |> to_exit
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Parse C sources into CLA object files (no analysis).")
    Term.(
      const run $ options_term $ sources $ output $ keep_going_arg $ jobs_arg
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* link                                                                *)
(* ------------------------------------------------------------------ *)

let open_world_arg =
  Arg.(
    value & flag
    & info [ "open-world" ]
        ~doc:
          "Treat the program as an incomplete fragment: synthesize havoc \
           constraints for declared-but-undefined functions and escaping \
           externs so the analysis stays sound.")

let link_cmd =
  let objects = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.clo") in
  let output =
    Arg.(
      value
      & opt string "prog.cla"
      & info [ "o"; "output" ] ~docv:"FILE.cla" ~doc:"Linked database output.")
  in
  let run objects output keep_going open_world obs =
    with_obs obs (fun () ->
        handle_errors (fun () ->
            let undefined =
              if open_world then Linkp.Open_world else Linkp.Error
            in
            (* A Link-phase failure is the strict linker refusing an
               incomplete program — the closed-world contract cannot be
               met, which the taxonomy files under exit 3 (internal),
               not exit 2 (the inputs themselves are fine). *)
            match Linkp.link_files_result ~keep_going ~undefined ~output objects with
            | exception Diag.Fail d when d.Diag.phase = Diag.Link ->
                Error (Diag.to_string d, Diag.exit_internal)
            | stats, diags -> (
                List.iter (fun d -> Fmt.epr "cla: %a@." Diag.pp d) diags;
                match stats with
                | None -> err_input "no usable object files"
                | Some stats ->
                    Fmt.pr
                      "%d unit(s) -> %s: %d objects (%d extern references \
                       merged)@."
                      stats.Linkp.n_units output stats.Linkp.n_vars_out
                      stats.Linkp.n_extern_merged;
                    if open_world then
                      Fmt.pr
                        "open world: %d undefined function(s) havocked@."
                        stats.Linkp.n_undefined;
                    if diags = [] then Ok ()
                    else
                      err_input
                        (Fmt.str "%d object file(s) skipped"
                           (List.length diags)))))
    |> to_exit
  in
  Cmd.v
    (Cmd.info "link"
       ~doc:
         "Merge object files into one database, linking global symbols.  \
          Without $(b,--open-world), declared-but-undefined functions are \
          a link failure (exit 3); with it they are havocked soundly.")
    Term.(
      const run $ objects $ output $ keep_going_arg $ open_world_arg
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let db = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cla") in
  let algo =
    Arg.(
      value
      & opt string "pretransitive"
      & info [ "algo" ] ~docv:"NAME"
          ~doc:
            "Solver: pretransitive (paper), worklist, bitvector, or \
             steensgaard.")
  in
  let print_sets =
    Arg.(value & flag & info [ "print" ] ~doc:"Print every points-to set.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the points-to sets as JSON (for downstream tooling).")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable reachability caching (ablation).")
  in
  let no_cycle =
    Arg.(value & flag & info [ "no-cycle-elim" ] ~doc:"Disable cycle elimination (ablation).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Keep at most $(docv) retained assignments in core; \
             least-recently-used blocks are discarded and re-loaded on \
             demand (pretransitive solver only).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Abort the analysis after $(docv) milliseconds of wall-clock \
             time (monotonic).  Without $(b,--ladder) a blown deadline \
             exits with code 4; with it the solve degrades to a cheaper \
             rung instead.")
  in
  let ladder =
    Arg.(
      value & flag
      & info [ "ladder" ]
          ~doc:
            "On deadline expiry, fall back through the degradation \
             ladder (pretransitive, bitvector, steensgaard) instead of \
             failing; the final rung runs deadline-exempt, so the \
             command always reports a sound solution labeled with the \
             rung that produced it.")
  in
  let strict_deadline =
    Arg.(
      value & flag
      & info [ "strict-deadline" ]
          ~doc:
            "With $(b,--ladder): the final rung also honors the \
             deadline, so the whole ladder may time out (exit code 4) \
             instead of always answering.")
  in
  let hedge =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "With $(b,--ladder) and $(b,--deadline-ms): run the final \
             (cheapest, always-sound) rung concurrently on its own \
             domain from the start; the first sound answer wins and the \
             loser is cancelled.  Eliminates the latency cliff of \
             starting the fallback only after the precise rungs time \
             out.")
  in
  let save_snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-snapshot" ] ~docv:"FILE.snap"
          ~doc:
            "Persist the solution as a snapshot sidecar: $(b,cla serve \
             --snapshot) $(docv) then restarts in the time it takes to \
             read the file, answering from the frozen solution without a \
             single solve.  Degraded solutions are refused — a snapshot \
             must never pin reduced precision.")
  in
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 32 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let print_json sol =
    Fmt.pr "{@.";
    let first = ref true in
    for v = 0 to Array.length sol.Solution.pts - 1 do
      let pts = Solution.points_to sol v in
      if Lvalset.cardinal pts > 0 && Solution.is_program_var sol v then begin
        if not !first then Fmt.pr ",@.";
        first := false;
        let targets =
          Lvalset.to_list pts
          |> List.map (fun z -> Fmt.str "%S" (json_escape (Solution.var_name sol z)))
        in
        Fmt.pr "  \"%s\": [%s]" (json_escape (Solution.var_name sol v))
          (String.concat ", " targets)
      end
    done;
    Fmt.pr "@.}@."
  in
  let run db algo print_sets json no_cache no_cycle budget deadline_ms ladder
      strict_deadline hedge save_snapshot open_world jobs obs =
    with_obs obs (fun () ->
        handle_errors (fun () ->
            let* jobs = resolve_jobs jobs in
            let* algorithm =
              match Pipeline.algorithm_of_string algo with
              | Some a -> Ok a
              | None ->
                  err_input
                    (Fmt.str "unknown algorithm %S (valid: %s)" algo
                       (String.concat ", " Pipeline.algorithm_names))
            in
            (* Steensgaard unifies, and unification would collapse the
               open-world blob with every escaping object — reject the
               combination up front, like an unknown algorithm name. *)
            let* () =
              if open_world && algorithm = Pipeline.Steensgaard then
                err_input
                  (Fmt.str
                     "algorithm %S cannot analyze an open-world database \
                      (valid with --open-world: %s)"
                     algo
                     (String.concat ", "
                        (List.filter
                           (fun n -> n <> "steensgaard")
                           Pipeline.algorithm_names)))
              else Ok ()
            in
            (* --budget only reaches the pre-transitive solver's loader;
               warn instead of silently ignoring it *)
            if budget <> None && (ladder || algorithm <> Pipeline.Pretransitive)
            then
              Fmt.epr "cla: %a@." Diag.pp
                (Diag.warning ~phase:Diag.Analyze
                   (if ladder then
                      "--budget applies to the pretransitive rung only; \
                       fallback rungs ignore it"
                    else
                      Fmt.str "--budget is ignored by the %s solver \
                               (pretransitive only)"
                        (Pipeline.algorithm_name algorithm)));
            (* --hedge is meaningful only for a deadlined ladder run;
               warn instead of silently ignoring it *)
            if hedge && (not ladder || deadline_ms = None) then
              Fmt.epr "cla: %a@." Diag.pp
                (Diag.warning ~phase:Diag.Analyze
                   (if not ladder then
                      "--hedge requires --ladder; ignoring it"
                    else
                      "--hedge is inactive without --deadline-ms (there \
                       is nothing to hedge against)"));
            Cla_obs.Metrics.set_str "analyze.algorithm"
              (Pipeline.algorithm_name algorithm);
            let view = load_view_jobs ~jobs db in
            let* () =
              if open_world && view.Objfile.ropenworld = None then
                err_input
                  (Fmt.str
                     "%s carries no open-world section: re-link with `cla \
                      link --open-world`"
                     db)
              else Ok ()
            in
            (match view.Objfile.ropenworld with
            | Some ow ->
                Cla_obs.Metrics.set "analyze.open_world.undefined"
                  (List.length ow.Objfile.owundef)
            | None -> ());
            let deadline =
              match deadline_ms with
              | Some ms -> Cla_resilience.Deadline.of_ms ms
              | None -> Cla_resilience.Deadline.never
            in
            let t0 = Unix.gettimeofday () in
            let outcome =
              if ladder then
                match
                  Pipeline.points_to_ladder ~strict:strict_deadline ~hedge
                    ?budget ~deadline ~jobs view
                with
                | o ->
                    List.iter
                      (fun (a, p) ->
                        Fmt.epr "cla: %a@." Diag.pp
                          (Diag.warning ~phase:Diag.Analyze
                             (Fmt.str
                                "deadline: %s rung timed out (%a); degrading"
                                (Pipeline.algorithm_name a)
                                Cla_resilience.Progress.pp p)))
                      o.Pipeline.lo_timeouts;
                    Ok
                      ( o.Pipeline.lo_solution,
                        o.Pipeline.lo_algorithm,
                        (if o.Pipeline.lo_degraded then
                           Fmt.str " [degraded: %s]" o.Pipeline.lo_note
                         else ""),
                        Some o )
                | exception Cla_resilience.Deadline.Timed_out p -> Error p
              else
                match algorithm with
                | Pipeline.Pretransitive -> (
                    let config =
                      { Pretrans.cache = not no_cache; cycle_elim = not no_cycle }
                    in
                    let pool =
                      if jobs > 1 then Some (Cla_par.Pool.shared ~jobs)
                      else None
                    in
                    match
                      Andersen.solve ~config ?budget ~deadline ?pool view
                    with
                    | r ->
                        let ls = r.Andersen.loader_stats in
                        Ok
                          ( r.Andersen.solution,
                            algorithm,
                            Fmt.str
                              " passes=%d in-core=%d loaded=%d in-file=%d \
                               evictions=%d"
                              r.Andersen.passes ls.Loader.s_in_core
                              ls.Loader.s_loaded ls.Loader.s_in_file
                              ls.Loader.s_evictions,
                            None )
                    | exception Cla_resilience.Deadline.Timed_out p -> Error p)
                | _ -> (
                    match
                      Pipeline.points_to ~algorithm ~deadline ~jobs view
                    with
                    | sol -> Ok (sol, algorithm, "", None)
                    | exception Cla_resilience.Deadline.Timed_out p -> Error p)
            in
            let dt = Unix.gettimeofday () -. t0 in
            match outcome with
            | Error p ->
                Error
                  ( Fmt.str "deadline of %dms expired (%a)"
                      (Option.value ~default:0 deadline_ms)
                      Cla_resilience.Progress.pp p,
                    Diag.exit_deadline )
            | Ok (sol, answered_by, extra, lo) ->
                if json then print_json sol
                else begin
                  if print_sets then Fmt.pr "%a" Solution.pp sol;
                  Fmt.pr
                    "%s: %d pointer variables, %d points-to relations, \
                     %.3fs%s@."
                    (Pipeline.algorithm_name answered_by)
                    (Solution.n_pointer_vars sol)
                    (Solution.n_relations sol) dt extra
                end;
                match save_snapshot with
                | None -> Ok ()
                | Some path ->
                    (* a plain solve has no ladder outcome; synthesize
                       one with the rung's own soundness label *)
                    let o =
                      match lo with
                      | Some o -> o
                      | None ->
                          {
                            Pipeline.lo_solution = sol;
                            lo_algorithm = answered_by;
                            lo_degraded = false;
                            lo_note = Pipeline.soundness_note answered_by;
                            lo_timeouts = [];
                          }
                    in
                    if o.Pipeline.lo_degraded then
                      err_input
                        "refusing to save a snapshot of a degraded \
                         solution: it would pin the fallback rung's \
                         precision forever (re-run with a larger \
                         --deadline-ms)"
                    else begin
                      Snapshot.save path ~view o;
                      Fmt.pr "snapshot: wrote %s (%s)@." path
                        (Pipeline.algorithm_name o.Pipeline.lo_algorithm);
                      Ok ()
                    end))
    |> to_exit
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run a points-to analysis over a linked database.")
    Term.(
      const run $ db $ algo $ print_sets $ json $ no_cache $ no_cycle $ budget
      $ deadline_ms $ ladder $ strict_deadline $ hedge $ save_snapshot
      $ open_world_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* depend                                                              *)
(* ------------------------------------------------------------------ *)

let depend_cmd =
  let db = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cla") in
  let target =
    Arg.(
      required
      & opt (some string) None
      & info [ "target"; "t" ] ~docv:"NAME"
          ~doc:"The object whose type is to be changed.")
  in
  let non_targets =
    Arg.(
      value & opt_all string []
      & info [ "non-target" ] ~docv:"NAME"
          ~doc:"Objects known to be irrelevant; chains through them are pruned.")
  in
  let limit =
    Arg.(
      value & opt int 50
      & info [ "limit" ] ~docv:"N" ~doc:"Print at most $(docv) chains.")
  in
  let new_type =
    Arg.(
      value
      & opt (some string) None
      & info [ "new-type" ] ~docv:"TYPE"
          ~doc:
            "Annotate each dependent with whether it must widen when the \
             target's type becomes $(docv) (e.g. int).")
  in
  let tree =
    Arg.(
      value & flag
      & info [ "tree" ] ~doc:"Render the chains as a tree rooted at the target.")
  in
  let run db target non_targets limit new_type tree =
    handle_errors (fun () ->
        let view = load_view db in
        let pta = Andersen.solve view in
        let dep = Cla_depend.Depend.prepare view pta in
        match Cla_depend.Depend.query_by_name dep ~non_targets target with
        | None -> err_input (Fmt.str "target %S not found" target)
        | Some r ->
            let r =
              {
                r with
                Cla_depend.Depend.r_dependents =
                  List.filteri
                    (fun i _ -> i < limit)
                    r.Cla_depend.Depend.r_dependents;
              }
            in
            (match (tree, new_type) with
            | true, _ -> Fmt.pr "%a" (Cla_depend.Depend.pp_tree dep) r
            | false, Some ty ->
                Fmt.pr "%a" (Cla_depend.Depend.pp_report_narrowing dep ~new_type:ty) r
            | false, None -> Fmt.pr "%a" (Cla_depend.Depend.pp_report dep) r);
            Ok ())
    |> to_exit
  in
  Cmd.v
    (Cmd.info "depend"
       ~doc:"Forward data-dependence analysis: find objects that take values from the target.")
    Term.(const run $ db $ target $ non_targets $ limit $ new_type $ tree)

(* ------------------------------------------------------------------ *)
(* transform                                                           *)
(* ------------------------------------------------------------------ *)

let transform_cmd =
  let db = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cla") in
  let output =
    Arg.(
      value
      & opt string "out.cla"
      & info [ "o"; "output" ] ~docv:"FILE.cla" ~doc:"Transformed database.")
  in
  let substitute =
    Arg.(
      value & flag
      & info [ "substitute" ]
          ~doc:"Offline variable substitution: merge copy-equivalent objects.")
  in
  let duplicate =
    Arg.(
      value & flag
      & info [ "duplicate-contexts" ]
          ~doc:
            "Simulate context-sensitivity by cloning functions per direct \
             call site.")
  in
  let run db output substitute duplicate =
    handle_errors (fun () ->
        let view = load_view db in
        let d = fst (Linkp.link_views [ view ]) in
        let d =
          if duplicate then begin
            let d', st = Transform.duplicate_contexts d in
            Fmt.pr "duplicate-contexts: %d function(s) cloned, %d clone(s)@."
              st.Transform.cloned_functions st.Transform.clones;
            d'
          end
          else d
        in
        let d =
          if substitute then begin
            let d', st = Transform.substitute_variables d in
            Fmt.pr "substitute: %d variable(s) merged, %d assignment(s) dropped@."
              st.Transform.merged_vars st.Transform.dropped_assignments;
            d'
          end
          else d
        in
        Objfile.save output d;
        Fmt.pr "%s -> %s@." db output;
        Ok ())
    |> to_exit
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Apply database-to-database pre-analysis optimizers (Section 4).")
    Term.(const run $ db $ output $ substitute $ duplicate)

(* ------------------------------------------------------------------ *)
(* dump                                                                *)
(* ------------------------------------------------------------------ *)

let dump_cmd =
  let db = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let blocks =
    Arg.(value & flag & info [ "blocks" ] ~doc:"Also dump every dynamic block.")
  in
  let run db blocks =
    handle_errors (fun () ->
        let view = load_view db in
        let m = view.Objfile.rmeta in
        Fmt.pr "files: %a@." Fmt.(list ~sep:comma string) m.Objfile.mfiles;
        Fmt.pr "source lines: %d, preprocessed lines: %d@."
          m.Objfile.msource_lines m.Objfile.mpreproc_lines;
        Fmt.pr "assignments: %a@." Cla_ir.Prim.pp_counts m.Objfile.mcounts;
        Fmt.pr "objects: %d; fundefs: %d; indirect call sites: %d@."
          (Objfile.n_vars view)
          (Array.length view.Objfile.rfundefs)
          (Array.length view.Objfile.rindirects);
        Fmt.pr "@.static section (always loaded):@.";
        Array.iter
          (fun (p : Objfile.prim_rec) ->
            Fmt.pr "  %s = &%s %a@."
              view.Objfile.rvars.(p.Objfile.pdst).Objfile.vname
              view.Objfile.rvars.(p.Objfile.psrc).Objfile.vname Cla_ir.Loc.pp
              p.Objfile.ploc)
          view.Objfile.rstatics;
        if blocks then begin
          Fmt.pr "@.dynamic section (loaded on demand, by source object):@.";
          for v = 0 to Objfile.n_vars view - 1 do
            if Objfile.has_block view v then begin
              let vi = view.Objfile.rvars.(v) in
              Fmt.pr "  %s @@ %a@." vi.Objfile.vname Cla_ir.Loc.pp vi.Objfile.vloc;
              List.iter
                (fun (p : Objfile.prim_rec) ->
                  let dst = view.Objfile.rvars.(p.Objfile.pdst).Objfile.vname in
                  let src = vi.Objfile.vname in
                  let txt =
                    match p.Objfile.pkind with
                    | Objfile.Pcopy -> Fmt.str "%s = %s" dst src
                    | Objfile.Paddr -> Fmt.str "%s = &%s" dst src
                    | Objfile.Pstore -> Fmt.str "*%s = %s" dst src
                    | Objfile.Pload -> Fmt.str "%s = *%s" dst src
                    | Objfile.Pderef2 -> Fmt.str "*%s = *%s" dst src
                  in
                  let op =
                    match p.Objfile.pop with
                    | Some (o, s) ->
                        Fmt.str " [%s/%s]" o (Cla_ir.Strength.to_string s)
                    | None -> ""
                  in
                  Fmt.pr "    %s%s %a@." txt op Cla_ir.Loc.pp p.Objfile.ploc)
                (Objfile.read_block view v)
            end
          done
        end;
        Ok ())
    |> to_exit
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Inspect an object file or linked database (Figure 4's view).")
    Term.(const run $ db $ blocks)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)
(* ------------------------------------------------------------------ *)

let faults_cmd =
  let db = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cla") in
  let n =
    Arg.(
      value & opt int 500
      & info [ "n"; "mutations" ] ~docv:"N"
          ~doc:"Number of random mutations to inject.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Mutation seed.")
  in
  let run db n seed obs =
    with_obs obs (fun () ->
        handle_errors (fun () ->
            let ic = open_in_bin db in
            let data = really_input_string ic (in_channel_length ic) in
            close_in ic;
            (* the unmutated file must be sound before we corrupt it *)
            let baseline =
              (Andersen.solve ~demand:false (Objfile.view_of_string data))
                .Andersen.solution
            in
            match
              Cla_workload.Faults.sweep ~baseline ~seed:(Int64.of_int seed) ~n
                data
            with
            | stats ->
                Fmt.pr
                  "%s: %d mutation(s), %d accepted (identical solution), %d \
                   rejected as corrupt@."
                  db stats.Cla_workload.Faults.n_total
                  stats.Cla_workload.Faults.n_accepted
                  stats.Cla_workload.Faults.n_rejected;
                Ok ()
            | exception Cla_workload.Faults.Invariant_violation (m, e) ->
                Error
                  ( Fmt.str "fault invariant violated on %S: %s raised %s" db
                      (Cla_workload.Faults.describe m)
                      (Printexc.to_string e),
                    Diag.exit_internal )))
    |> to_exit
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection sweep: corrupt the database N ways and check \
          every mutant is either analyzed identically or rejected cleanly.")
    Term.(const run $ db $ n $ seed $ obs_term)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let cases =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"N" ~doc:"Number of random programs to try.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Stream seed.")
  in
  let out =
    Arg.(
      value & opt string "fuzz-repro.c"
      & info [ "o"; "output" ] ~docv:"FILE.c"
          ~doc:"Where to write the minimized reproducer on failure.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Print a dot per finished case.")
  in
  let run cases seed out verbose obs =
    with_obs obs (fun () ->
        handle_errors (fun () ->
            let on_progress i =
              if verbose then begin
                Fmt.pr ".";
                if (i + 1) mod 50 = 0 then Fmt.pr "@.";
                Fmt.pr "%!"
              end
            in
            match
              Cla_workload.Fuzzc.run ~on_progress ~seed:(Int64.of_int seed)
                ~cases ()
            with
            | Ok s ->
                if verbose then Fmt.pr "@.";
                Fmt.pr
                  "fuzz: %d case(s), %d points-to set(s) compared, 0 \
                   divergences, 0 crashes@."
                  s.Cla_workload.Fuzzc.n_cases s.Cla_workload.Fuzzc.n_probes;
                Ok ()
            | Error f ->
                if verbose then Fmt.pr "@.";
                let oc = open_out out in
                output_string oc f.Cla_workload.Fuzzc.f_source;
                close_out oc;
                (* exit 1: a divergence is a normalizer bug, not bad
                   input (2) or an infrastructure failure (3) *)
                Error
                  ( Fmt.str "case %d (seed %d) failed — %a@.reproducer: %s"
                      f.Cla_workload.Fuzzc.f_index seed
                      Cla_workload.Fuzzc.pp_kind f.Cla_workload.Fuzzc.f_kind
                      out,
                    1 )))
    |> to_exit
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential frontend fuzzing: random C programs stressing \
          function pointers through structs, multi-level arrays and \
          varargs are normalized and solved, then checked against an \
          independent reference normalizer.  Exit 1 with a minimized \
          reproducer on the first divergence or crash.")
    Term.(const run $ cases $ seed $ out $ verbose $ obs_term)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let profile =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROFILE"
          ~doc:"One of nethack, burlap, vortex, emacs, povray, gcc, gimp, lucent.")
  in
  let dir =
    Arg.(
      value & opt string "."
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Directory for the generated sources.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F" ~doc:"Scale the profile down (0 < F <= 1).")
  in
  let run profile dir seed scale =
    handle_errors (fun () ->
        let* p =
          match Cla_workload.Profile.find profile with
          | Some p -> Ok p
          | None -> err_input (Fmt.str "unknown profile %S" profile)
        in
        let p =
          if scale < 1.0 then Cla_workload.Profile.scaled scale p else p
        in
        let files = Cla_workload.Genc.generate ~seed:(Int64.of_int seed) p in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (name, content) ->
            let path = Filename.concat dir name in
            let oc = open_out path in
            output_string oc content;
            close_out oc;
            Fmt.pr "%s@." path)
          files;
        Ok ())
    |> to_exit
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic C workload matching a Table 2 profile.")
    Term.(const run $ profile $ dir $ seed $ scale)

(* ------------------------------------------------------------------ *)
(* serve / query / serve-bench                                         *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "cla.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let db = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.cla") in
  let watch =
    Arg.(
      value
      & opt (some dir) None
      & info [ "watch" ] ~docv:"DIR"
          ~doc:
            "Serve a directory of .c / .clo files instead of a linked \
             database: compile-link-analyze it once, then keep the served \
             solution in sync with edits — only changed units recompile \
             (TU content hash), the linker patches a delta, the solver \
             resumes from its surviving state, and the fresh solution is \
             swapped in atomically.  The $(b,reanalyze) protocol op \
             forces a rescan on demand.")
  in
  let watch_poll =
    Arg.(
      value & opt int 500
      & info [ "watch-poll-ms" ] ~docv:"MS"
          ~doc:"How often --watch polls the directory for changes.")
  in
  let save_snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-snapshot" ] ~docv:"FILE.snap"
          ~doc:
            "Rewrite $(docv) after every non-degraded solution swap (and \
             at --watch boot), refreezing the lock-free frozen arena over \
             the new view.  Pair with --snapshot $(docv) to also thaw it \
             at the next restart.")
  in
  let max_inflight =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Queries executing at once; more wait in the queue.")
  in
  let max_queue =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Queries allowed to wait for a slot; beyond this, shed.")
  in
  let default_deadline =
    Arg.(
      value & opt int 2000
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Deadline for queries that do not name one.")
  in
  let watchdog_grace =
    Arg.(
      value & opt int 200
      & info [ "watchdog-grace-ms" ] ~docv:"MS"
          ~doc:
            "The watchdog cancels a query this long after its deadline \
             if it has not unwound on its own.")
  in
  let allow_sleep =
    Arg.(
      value & flag
      & info [ "allow-sleep" ]
          ~doc:"Enable the debug sleep op (load tests drive it).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run $(docv) solver replicas, each with its own cache on its \
             own domain, fed round-robin.  1 (the default) keeps the \
             single serialized solver.")
  in
  let query_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "query-log" ] ~docv:"FILE"
          ~doc:"Append one JSON line per finished query to $(docv).")
  in
  let ring =
    Arg.(
      value & opt int 256
      & info [ "ring" ] ~docv:"N"
          ~doc:
            "Keep the last $(docv) queries in memory (feeds --trace and \
             the serve.recent_total_us series).")
  in
  let snapshot =
    Arg.(
      value
      & opt (some file) None
      & info [ "snapshot" ] ~docv:"FILE.snap"
          ~doc:
            "Thaw a solution persisted by $(b,cla analyze \
             --save-snapshot) and answer every non-fresh query from the \
             frozen arena — restart cost is the file read, no solve.  A \
             corrupt or wrong-database snapshot is rejected and the \
             server falls back to live solves.")
  in
  let no_supervise =
    Arg.(
      value & flag
      & info [ "no-supervise" ]
          ~doc:
            "Disable shard supervision (heartbeats, automatic restart of \
             dead or wedged solver shards).  Chaos testing only.")
  in
  let heartbeat_grace =
    Arg.(
      value & opt int 30_000
      & info [ "heartbeat-grace-ms" ] ~docv:"MS"
          ~doc:
            "A busy shard silent for $(docv) is declared wedged and \
             restarted.")
  in
  let restart_budget =
    Arg.(
      value & opt int 5
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "Circuit breaker: after $(docv) restarts of one shard inside \
             the restart window, leave it down and route around it.")
  in
  let restart_window =
    Arg.(
      value & opt int 60_000
      & info [ "restart-window-ms" ] ~docv:"MS"
          ~doc:"The restart budget's sliding window.")
  in
  let run db watch watch_poll save_snapshot socket max_inflight max_queue
      default_deadline watchdog_grace allow_sleep shards query_log ring
      snapshot no_supervise heartbeat_grace restart_budget restart_window jobs
      obs =
    handle_errors (fun () ->
        (* [--trace] here means the serving timeline (per-query lanes,
           written by the server at drain), not the batch span tree *)
        with_obs { obs with o_trace = None } @@ fun () ->
        let* jobs = resolve_jobs jobs in
        let* () =
          if shards < 1 then
            err_input
              (Fmt.str "invalid shard count %d: --shards expects N >= 1"
                 shards)
          else begin
            (* Each shard is a dedicated solver domain; asking for more
               than the host can park (cores minus the supervisor)
               oversubscribes the runtime, so refuse it up front like
               any other invalid count. *)
            let cap = Cla_par.Pool.auto_cap () in
            if shards > cap then
              err_input
                (Fmt.str
                   "invalid shard count %d: this host supports at most %d \
                    solver shard(s) (cores minus the supervisor domain)"
                   shards cap)
            else Ok ()
          end
        in
        let* source =
          match (db, watch) with
          | Some db, None -> Ok (`Db db)
          | None, Some dir -> Ok (`Watch dir)
          | Some _, Some _ ->
              err_input "pass either FILE.cla or --watch DIR, not both"
          | None, None -> err_input "pass a FILE.cla to serve, or --watch DIR"
        in
        let config =
          {
            Cla_serve.Server.socket_path = socket;
            max_inflight;
            max_queue;
            default_deadline_ms = default_deadline;
            max_deadline_ms = 60_000;
            watchdog_grace_ms = watchdog_grace;
            allow_sleep;
            shards;
            solve_jobs = jobs;
            query_log;
            trace_path = obs.o_trace;
            ring_capacity = max 1 ring;
            snapshot_path = snapshot;
            supervise = not no_supervise;
            heartbeat_grace_ms = max 1 heartbeat_grace;
            restart_budget = max 1 restart_budget;
            restart_window_ms = max 1 restart_window;
            watch_dir = watch;
            watch_poll_ms = max 10 watch_poll;
            save_snapshot;
          }
        in
        Fmt.pr "cla serve: %s on %s (inflight<=%d queue<=%d shards=%d%s)@."
          (match source with `Db db -> db | `Watch dir -> "--watch " ^ dir)
          socket max_inflight max_queue shards
          (match snapshot with Some p -> " snapshot=" ^ p | None -> "");
        let stats =
          match source with
          | `Db db -> Cla_serve.Server.run ~config (load_view db)
          | `Watch dir -> Cla_serve.Server.run_watch ~config dir
        in
        Fmt.pr "cla serve: drained.";
        List.iter
          (fun (k, v) -> Fmt.pr " %s=%d" k v)
          (Cla_serve.Server.stats_counters stats);
        Fmt.pr "@.";
        Ok ())
    |> to_exit
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve points-to and alias queries over a linked database until \
          SIGINT/SIGTERM, then drain gracefully.  --stats/--stats-json \
          report the merged per-shard latency histograms at exit; --trace \
          writes the recent-query serving timeline.")
    Term.(
      const run $ db $ watch $ watch_poll $ save_snapshot $ socket_arg
      $ max_inflight $ max_queue $ default_deadline $ watchdog_grace
      $ allow_sleep $ shards $ query_log $ ring $ snapshot $ no_supervise
      $ heartbeat_grace $ restart_budget $ restart_window $ jobs_arg
      $ obs_term)

let query_cmd =
  let points_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "points-to" ] ~docv:"VAR" ~doc:"Ask for $(docv)'s points-to set.")
  in
  let alias =
    Arg.(
      value
      & opt (some (pair ~sep:',' string string)) None
      & info [ "alias" ] ~docv:"V1,V2" ~doc:"Ask whether $(docv) may alias.")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check.") in
  let stats =
    Arg.(value & flag & info [ "server-stats" ] ~doc:"Fetch server counters.")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON" ~doc:"Send $(docv) verbatim as the request line.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-query deadline.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ] ~doc:"Bypass the server's cached solution and re-solve.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:
            "After the reply, print the server-reported timing (queue, \
             solve, total), shard id, and ladder provenance for the \
             answered query.")
  in
  let retry =
    Arg.(
      value & flag
      & info [ "retry" ]
          ~doc:
            "Retry transient failures (connection refused, shed, \
             draining) with exponential backoff and jitter.")
  in
  let attempts =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"N"
          ~doc:"Total tries with $(b,--retry), including the first.")
  in
  let run socket points_to alias ping stats raw deadline_ms fresh verbose retry
      attempts =
    handle_errors (fun () ->
        let base op extra =
          let fields =
            (("id", Cla_obs.Json.Int (Unix.getpid ()))
            :: ("op", Cla_obs.Json.Str op)
            :: extra)
            @ (match deadline_ms with
              | Some ms -> [ ("deadline_ms", Cla_obs.Json.Int ms) ]
              | None -> [])
            @ if fresh then [ ("fresh", Cla_obs.Json.Bool true) ] else []
          in
          Cla_obs.Json.to_string ~indent:false (Cla_obs.Json.Obj fields)
        in
        let* line =
          match (points_to, alias, ping, stats, raw) with
          | Some v, None, false, false, None ->
              Ok (base "points-to" [ ("var", Cla_obs.Json.Str v) ])
          | None, Some (a, b), false, false, None ->
              Ok
                (base "alias"
                   [ ("var", Cla_obs.Json.Str a); ("var2", Cla_obs.Json.Str b) ])
          | None, None, true, false, None -> Ok (base "ping" [])
          | None, None, false, true, None -> Ok (base "stats" [])
          | None, None, false, false, Some l -> Ok l
          | None, None, false, false, None ->
              err_input
                "nothing to ask: pass --points-to, --alias, --ping, \
                 --server-stats or --raw"
          | _ -> err_input "pass exactly one of --points-to/--alias/--ping/--server-stats/--raw"
        in
        let reply, tries =
          if retry then begin
            let policy =
              { Cla_serve.Client.default_policy with attempts = max 1 attempts }
            in
            let o = Cla_serve.Client.with_retry ~policy ~socket line in
            (o.Cla_serve.Client.reply, o.Cla_serve.Client.tries)
          end
          else (Cla_serve.Client.round_trip ~socket line, 1)
        in
        match reply with
        | Error e ->
            Error
              ( Fmt.str "%s (%d attempt(s); is `cla serve` running on %s?)"
                  (Cla_serve.Client.describe e) tries socket,
                Diag.exit_input )
        | Ok l -> (
            print_endline l;
            if verbose then begin
              (* server-reported per-query telemetry; absent on old
                 servers and non-query ops, in which case say so *)
              match Cla_obs.Json.of_string l with
              | exception Cla_obs.Json.Parse_error _ -> ()
              | j -> (
                  let jf o k =
                    Option.bind (Cla_obs.Json.member k o) Cla_obs.Json.to_float
                  in
                  let js o k =
                    match Cla_obs.Json.member k o with
                    | Some (Cla_obs.Json.Str s) -> Some s
                    | _ -> None
                  in
                  match Cla_obs.Json.member "server" j with
                  | Some srv ->
                      let shard =
                        Option.bind (Cla_obs.Json.member "shard" srv)
                          Cla_obs.Json.to_int
                      in
                      let cache_hit =
                        match Cla_obs.Json.member "cache_hit" srv with
                        | Some (Cla_obs.Json.Bool b) -> b
                        | _ -> false
                      in
                      Fmt.epr "server: shard=%s queue=%.3fms solve=%.3fms \
                               total=%.3fms cache=%s rung=%s degraded=%b@."
                        (match shard with
                        | Some s when s >= 0 -> string_of_int s
                        | _ -> "-")
                        (Option.value ~default:0. (jf srv "queue_ms"))
                        (Option.value ~default:0. (jf srv "solve_ms"))
                        (Option.value ~default:0. (jf srv "server_ms"))
                        (if cache_hit then "hit" else "miss")
                        (Option.value ~default:"-" (js j "rung"))
                        (match Cla_obs.Json.member "degraded" j with
                        | Some (Cla_obs.Json.Bool b) -> b
                        | _ -> false)
                  | None ->
                      Fmt.epr
                        "server: no telemetry in reply (old server or \
                         non-query op)@.")
            end;
            match Cla_serve.Protocol.status_of_line l with
            | Cla_serve.Protocol.S_ok -> Ok ()
            | Cla_serve.Protocol.S_error -> Error ("query rejected", Diag.exit_input)
            | Cla_serve.Protocol.S_timeout ->
                Error ("query timed out", Diag.exit_deadline)
            | Cla_serve.Protocol.S_shed | Cla_serve.Protocol.S_bye ->
                Error ("server refused the query", Diag.exit_deadline)
            | Cla_serve.Protocol.S_malformed ->
                Error ("malformed server response", Diag.exit_internal)))
    |> to_exit
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Ask a running `cla serve` one question.  Exit: 0 answered, 2 \
          rejected, 4 timed out or refused for capacity.")
    Term.(
      const run $ socket_arg $ points_to $ alias $ ping $ stats $ raw
      $ deadline_ms $ fresh $ verbose $ retry $ attempts)

(* Live server introspection: one stats round-trip rendered as the usual
   metrics table (or raw JSON), optionally repeated --watch style.  The
   reply is flattened into a private registry so Export.pp_table does
   the rendering — the same look as --stats everywhere else. *)
let stats_cmd =
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:"Refresh the snapshot every --interval-ms until interrupted.")
  in
  let interval_ms =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh period for --watch.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw stats reply instead of a table.")
  in
  let flatten_reply reg reply =
    let rec go prefix (j : Cla_obs.Json.t) =
      let join k = if prefix = "" then k else prefix ^ "." ^ k in
      match j with
      | Cla_obs.Json.Obj fields ->
          List.iter (fun (k, v) -> go (join k) v) fields
      | Cla_obs.Json.Arr items ->
          List.iteri (fun i v -> go (join (string_of_int i)) v) items
      | Cla_obs.Json.Int n -> Cla_obs.Metrics.set ~reg prefix n
      | Cla_obs.Json.Float f -> Cla_obs.Metrics.setf ~reg prefix f
      | Cla_obs.Json.Str s -> Cla_obs.Metrics.set_str ~reg prefix s
      | Cla_obs.Json.Bool b ->
          Cla_obs.Metrics.set_str ~reg prefix (string_of_bool b)
      | Cla_obs.Json.Null -> ()
    in
    match reply with
    | Cla_obs.Json.Obj fields ->
        List.iter
          (fun (k, v) ->
            match k with
            | "id" | "status" | "code" | "op" -> ()
            | "counters" -> go "" v (* counters carry their own dotted names *)
            | k -> go k v)
          fields
    | j -> go "" j
  in
  let snapshot ~socket ~json () =
    let line =
      Cla_obs.Json.to_string ~indent:false
        (Cla_obs.Json.Obj
           [
             ("id", Cla_obs.Json.Int (Unix.getpid ()));
             ("op", Cla_obs.Json.Str "stats");
           ])
    in
    match Cla_serve.Client.round_trip ~socket line with
    | Error e ->
        Error
          ( Fmt.str "%s (is `cla serve` running on %s?)"
              (Cla_serve.Client.describe e) socket,
            Diag.exit_input )
    | Ok reply -> (
        match Cla_serve.Protocol.status_of_line reply with
        | Cla_serve.Protocol.S_ok ->
            if json then print_endline reply
            else begin
              let reg = Cla_obs.Metrics.create () in
              (match Cla_obs.Json.of_string reply with
              | j -> flatten_reply reg j
              | exception Cla_obs.Json.Parse_error _ -> ());
              Fmt.pr "%a" (fun ppf () -> Cla_obs.Export.pp_table ~reg ppf ()) ()
            end;
            Ok ()
        | _ -> Error ("server refused the stats query", Diag.exit_deadline))
  in
  let run socket watch interval_ms json =
    handle_errors (fun () ->
        if not watch then snapshot ~socket ~json ()
        else
          let rec loop () =
            (* clear + home, like watch(1) *)
            Fmt.pr "\027[2J\027[H";
            let* () = snapshot ~socket ~json () in
            Fmt.pr "%!";
            Unix.sleepf (float_of_int (max 100 interval_ms) /. 1000.);
            loop ()
          in
          loop ())
    |> to_exit
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Fetch a live stats snapshot (uptime, inflight, per-shard \
          counters and latency percentiles) from a running `cla serve` \
          without restarting it.")
    Term.(const run $ socket_arg $ watch $ interval_ms $ json)

(* Drive a serve instance with Servebench's mixed good/poison/slow
   stream from [clients] threads and tally what comes back.  The checked
   invariant: every query gets exactly one classified response — the
   sum of the tallies equals the stream length, with zero malformed
   replies and zero transport errors. *)
let serve_bench_cmd =
  let n =
    Arg.(
      value & opt int 60
      & info [ "n"; "queries" ] ~docv:"N" ~doc:"Stream length.")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Stream seed.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 2000
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Deadline on good queries.")
  in
  let slow_ms =
    Arg.(
      value & opt int 120
      & info [ "slow-ms" ] ~docv:"MS" ~doc:"How long slow queries sleep.")
  in
  let vars =
    Arg.(
      value & opt_all string []
      & info [ "var" ] ~docv:"NAME"
          ~doc:
            "Variable names for good queries (repeatable; default: a \
             sample of the database's globals).")
  in
  let run socket db n clients seed deadline_ms slow_ms vars =
    handle_errors (fun () ->
        let view = load_view db in
        let vars =
          match vars with
          | _ :: _ -> Array.of_list vars
          | [] ->
              (* sample named program variables for the good queries *)
              let out = ref [] and count = ref 0 in
              Array.iter
                (fun (vi : Objfile.varinfo) ->
                  if
                    !count < 32 && vi.Objfile.vname <> ""
                    && (not (String.contains vi.Objfile.vname '$'))
                    && vi.Objfile.vkind <> Cla_ir.Var.Temp
                  then begin
                    incr count;
                    out := vi.Objfile.vname :: !out
                  end)
                view.Objfile.rvars;
              Array.of_list (List.rev !out)
        in
        let* () =
          if Array.length vars = 0 then
            err_input "database has no named variables to query"
          else Ok ()
        in
        let queries =
          Cla_workload.Servebench.generate ~seed:(Int64.of_int seed) ~n ~vars
            ~deadline_ms ~slow_ms ()
        in
        (* one tally slot per query, filled by whichever client ran it *)
        let results = Array.make (List.length queries) None in
        let qs = Array.of_list queries in
        let next = Atomic.make 0 in
        let worker _ =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < Array.length qs then begin
              let q = qs.(i) in
              let o =
                Cla_serve.Client.with_retry
                  ~policy:
                    { Cla_serve.Client.default_policy with seed = seed + i }
                  ~socket q.Cla_workload.Servebench.q_line
              in
              results.(i) <- Some (q, o);
              loop ()
            end
          in
          loop ()
        in
        let threads = List.init (max 1 clients) (Thread.create worker) in
        List.iter Thread.join threads;
        let tally = Hashtbl.create 8 in
        let bump k = Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)) in
        let transport_errors = ref 0 and answered = ref 0 in
        Array.iter
          (function
            | None -> ()
            | Some (_, o) -> (
                incr answered;
                match o.Cla_serve.Client.reply with
                | Error _ -> incr transport_errors
                | Ok l ->
                    bump (Cla_serve.Protocol.status_name (Cla_serve.Protocol.status_of_line l))))
          results;
        let shown k = Option.value ~default:0 (Hashtbl.find_opt tally k) in
        Fmt.pr
          "serve-bench: %d queries via %d client(s): ok=%d error=%d \
           timeout=%d shed=%d bye=%d malformed=%d transport-errors=%d@."
          n clients (shown "ok") (shown "error") (shown "timeout")
          (shown "shed") (shown "bye") (shown "malformed") !transport_errors;
        if !answered <> n then
          Error
            ( Fmt.str "%d of %d queries got no verdict" (n - !answered) n,
              Diag.exit_internal )
        else if !transport_errors > 0 || shown "malformed" > 0 then
          Error
            ( "server dropped connections or emitted malformed replies",
              Diag.exit_internal )
        else Ok ())
    |> to_exit
  in
  let db = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cla") in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Drive a running `cla serve` with a mixed good/poisoned/slow query \
          stream and check every query is answered, shed, or timed out — \
          never dropped.")
    Term.(
      const run $ socket_arg $ db $ n $ clients $ seed $ deadline_ms $ slow_ms
      $ vars)

let main =
  Cmd.group
    (Cmd.info "cla" ~version:"1.0.0"
       ~doc:"Compile-link-analyze points-to and dependence analysis for C.")
    [
      compile_cmd; link_cmd; analyze_cmd; depend_cmd; transform_cmd; dump_cmd;
      faults_cmd; fuzz_cmd; gen_cmd; serve_cmd; query_cmd; stats_cmd;
      serve_bench_cmd;
    ]

let () = exit (Cmd.eval' main)
