(** Best-effort type synthesis for expressions.

    The field-based mode needs to know, for every [e.f] / [e->f], *which*
    struct's field is accessed — the paper treats "the same field of the
    same struct type" as one object (Section 2).  The normalizer also needs
    to distinguish arrays from pointers (arrays are index-independent
    objects; pointers are dereferenced).  Synthesis is purely syntactic and
    falls back to [None] when the program is too dynamic to type, in which
    case the normalizer degrades gracefully (field accesses fall back to a
    per-name wildcard struct). *)

open Cast

type env = {
  comps : (string, compdef) Hashtbl.t;  (** struct/union tag -> definition *)
  typedefs : (string, typ) Hashtbl.t;
  lookup : string -> typ option;  (** visible object types, scope-aware *)
}

(** Unroll typedef indirections (cycle-guarded). *)
let rec resolve env t =
  match t with
  | Tnamed n -> (
      match Hashtbl.find_opt env.typedefs n with
      | Some t' when t' <> t -> resolve env t'
      | _ -> t)
  | t -> t

let field_type env tag f =
  match Hashtbl.find_opt env.comps tag with
  | Some def -> List.assoc_opt f def.cfields
  | None -> None

(** Tag of the composite a field access goes through, if resolvable. *)
let comp_tag env t =
  match resolve env t with Tcomp (_, tag) -> Some tag | _ -> None

let rec typeof env (e : expr) : typ option =
  match e.edesc with
  | Eident x -> env.lookup x
  | Eint _ -> Some (Tint "int")
  | Efloat _ -> Some (Tfloat "double")
  | Echar _ -> Some (Tint "char")
  | Estring _ -> Some (Tptr (Tint "char"))
  | Eunop ("!", _) -> Some (Tint "int")
  | Eunop (_, e1) -> typeof env e1
  | Ederef e1 -> (
      match Option.map (resolve env) (typeof env e1) with
      | Some (Tptr t) | Some (Tarray (t, _)) -> Some (resolve env t)
      | Some (Tfun _ as t) -> Some t (* *f on a function is the function *)
      | _ -> None)
  | Eaddrof e1 -> Option.map (fun t -> Tptr t) (typeof env e1)
  | Ebinop (("==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||"), _, _) ->
      Some (Tint "int")
  | Ebinop (_, a, b) -> (
      (* pointer arithmetic keeps the pointer type *)
      match Option.map (resolve env) (typeof env a) with
      | Some (Tptr _ as t) -> Some t
      | Some (Tarray (t, _)) -> Some (Tptr t)
      | other -> (
          match Option.map (resolve env) (typeof env b) with
          | Some (Tptr _ as t) -> Some t
          | Some (Tarray (t, _)) -> Some (Tptr t)
          | _ -> other))
  | Eassign (_, l, _) -> typeof env l
  | Econd (_, a, b) -> (
      match typeof env a with Some t -> Some t | None -> typeof env b)
  | Ecall (f, _) -> (
      match Option.map (resolve env) (typeof env f) with
      | Some (Tfun (r, _, _)) -> Some (resolve env r)
      | Some (Tptr t) -> (
          match resolve env t with
          | Tfun (r, _, _) -> Some (resolve env r)
          | _ -> None)
      | _ -> None)
  | Emember (e1, f) -> (
      match Option.bind (typeof env e1) (comp_tag env) with
      | Some tag -> Option.map (resolve env) (field_type env tag f)
      | None -> None)
  | Earrow (e1, f) -> (
      match Option.map (resolve env) (typeof env e1) with
      | Some (Tptr t) | Some (Tarray (t, _)) -> (
          match comp_tag env t with
          | Some tag -> Option.map (resolve env) (field_type env tag f)
          | None -> None)
      | _ -> None)
  | Eindex (a, i) -> (
      match Option.map (resolve env) (typeof env a) with
      | Some (Tarray (t, _)) | Some (Tptr t) -> Some (resolve env t)
      | _ -> (
          (* the C curiosity i[a] *)
          match Option.map (resolve env) (typeof env i) with
          | Some (Tarray (t, _)) | Some (Tptr t) -> Some (resolve env t)
          | _ -> None))
  | Ecast (t, _) -> Some (resolve env t)
  | Esizeof_expr _ | Esizeof_typ _ -> Some (Tint "unsigned long")
  | Ecomma (_, b) -> typeof env b
  | Ecompound (t, _) -> Some (resolve env t)

(** Tag of the struct/union that [e.f] accesses in [Emember (e, f)]. *)
let member_tag env e = Option.bind (typeof env e) (comp_tag env)

(** Tag of the struct/union that [e->f] accesses in [Earrow (e, f)]. *)
let arrow_tag env e =
  match Option.map (resolve env) (typeof env e) with
  | Some (Tptr t) | Some (Tarray (t, _)) -> comp_tag env t
  | _ -> None

(** Is [t] (after typedef resolution) an array type? *)
let is_array env t = match resolve env t with Tarray _ -> true | _ -> false

let is_function env t = match resolve env t with Tfun _ -> true | _ -> false

(** Does dereferencing a value of type [t] in call position denote a
    function?  True for function types (which decay back to themselves)
    and pointers to functions — but {e not} for pointers to function
    pointers, where [*e] is a genuine load. *)
let is_function_pointer env t =
  match resolve env t with
  | Tfun _ -> true
  | Tptr t' -> ( match resolve env t' with Tfun _ -> true | _ -> false)
  | _ -> false
