(** Typedef-aware recursive-descent parser for the C subset of {!Cast}.

    C's grammar is context-sensitive: [x * y;] is a declaration when [x]
    names a type and an expression otherwise.  The parser therefore keeps a
    scope stack recording, for each visible identifier, whether it currently
    names a typedef or an object, consulting it whenever it must decide
    whether a token sequence starts a type. *)

open Cla_ir
open Cast
module T = Ctoken

exception Parse_error of string * Loc.t

type binding = Btypedef | Bobject

type state = {
  toks : (T.t * Loc.t) array;
  mutable pos : int;
  mutable scopes : (string, binding) Hashtbl.t list;
  typedefs : (string, typ) Hashtbl.t;  (* name -> definition *)
  mutable comps : compdef list;  (* collected struct/union defs, reversed *)
  mutable enums : (string * (string * int64 option) list) list;
  mutable anon : int;
  file : string;
}

let err st fmt =
  let loc = if st.pos < Array.length st.toks then snd st.toks.(st.pos) else Loc.none in
  Fmt.kstr (fun m -> raise (Parse_error (m, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                *)
(* ------------------------------------------------------------------ *)

let peek st = fst st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else T.EOF
let loc st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st tok =
  if T.equal (peek st) tok then advance st
  else err st "expected %S but found %S" (T.to_string tok) (T.to_string (peek st))

let eat_ident st =
  match peek st with
  | T.IDENT s -> advance st; s
  | t -> err st "expected identifier, found %S" (T.to_string t)

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let enter_scope st = st.scopes <- Hashtbl.create 16 :: st.scopes
let leave_scope st =
  match st.scopes with
  | _ :: (_ :: _ as rest) -> st.scopes <- rest
  | _ -> err st "internal: scope underflow"

let bind st name b =
  match st.scopes with
  | tbl :: _ -> Hashtbl.replace tbl name b
  | [] -> assert false

let lookup st name =
  let rec go = function
    | [] -> None
    | tbl :: rest -> (
        match Hashtbl.find_opt tbl name with Some b -> Some b | None -> go rest)
  in
  go st.scopes

let is_typedef_name st name = lookup st name = Some Btypedef

(* GNU noise we tolerate and discard: attributes, asm annotations. *)
let rec skip_gnu_noise st =
  match peek st with
  | T.IDENT ("__attribute__" | "__attribute" | "__asm__" | "__asm" | "asm") ->
      advance st;
      if T.equal (peek st) T.LPAREN then begin
        (* skip balanced parens *)
        let depth = ref 0 in
        let continue = ref true in
        while !continue do
          (match peek st with
          | T.LPAREN -> incr depth
          | T.RPAREN -> decr depth
          | T.EOF -> err st "unterminated __attribute__"
          | _ -> ());
          advance st;
          if !depth = 0 then continue := false
        done
      end;
      skip_gnu_noise st
  | T.IDENT ("__extension__" | "__restrict" | "__restrict__" | "restrict") ->
      advance st; skip_gnu_noise st
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Does the current token start a type?                                *)
(* ------------------------------------------------------------------ *)

let starts_type st =
  match peek st with
  | T.KW_VOID | T.KW_CHAR | T.KW_SHORT | T.KW_INT | T.KW_LONG | T.KW_FLOAT
  | T.KW_DOUBLE | T.KW_SIGNED | T.KW_UNSIGNED | T.KW_STRUCT | T.KW_UNION
  | T.KW_ENUM | T.KW_CONST | T.KW_VOLATILE | T.KW_TYPEDEF | T.KW_EXTERN
  | T.KW_STATIC | T.KW_AUTO | T.KW_REGISTER | T.KW_INLINE ->
      true
  | T.IDENT name -> is_typedef_name st name
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declaration specifiers                                              *)
(* ------------------------------------------------------------------ *)

type specs = { base : typ; storage : storage }

let fresh_anon st what =
  let n = st.anon in
  st.anon <- n + 1;
  Fmt.str "$%s%d@%s" what n (Filename.basename st.file)

(* forward declarations for the mutually recursive grammar *)
let rec parse_specs st : specs =
  let storage = ref Sauto in
  let int_words = ref [] in (* signed/unsigned/short/long/int/char/float/double *)
  let named : typ option ref = ref None in
  let seen_any = ref false in
  let continue = ref true in
  while !continue do
    skip_gnu_noise st;
    match peek st with
    | T.KW_TYPEDEF -> storage := Stypedef; advance st
    | T.KW_EXTERN -> storage := Sextern; advance st
    | T.KW_STATIC -> storage := Sstatic; advance st
    | T.KW_AUTO -> advance st
    | T.KW_REGISTER -> storage := Sregister; advance st
    | T.KW_INLINE | T.KW_CONST | T.KW_VOLATILE -> advance st
    | T.KW_VOID -> named := Some Tvoid; seen_any := true; advance st
    | T.KW_CHAR -> int_words := "char" :: !int_words; seen_any := true; advance st
    | T.KW_SHORT -> int_words := "short" :: !int_words; seen_any := true; advance st
    | T.KW_INT -> int_words := "int" :: !int_words; seen_any := true; advance st
    | T.KW_LONG -> int_words := "long" :: !int_words; seen_any := true; advance st
    | T.KW_FLOAT -> named := Some (Tfloat "float"); seen_any := true; advance st
    | T.KW_DOUBLE ->
        named := Some (Tfloat (if List.mem "long" !int_words then "long double" else "double"));
        int_words := List.filter (fun w -> w <> "long") !int_words;
        seen_any := true;
        advance st
    | T.KW_SIGNED -> int_words := "signed" :: !int_words; seen_any := true; advance st
    | T.KW_UNSIGNED -> int_words := "unsigned" :: !int_words; seen_any := true; advance st
    | T.KW_STRUCT | T.KW_UNION ->
        let is_union = T.equal (peek st) T.KW_UNION in
        advance st;
        named := Some (parse_comp_spec st is_union);
        seen_any := true
    | T.KW_ENUM ->
        advance st;
        named := Some (parse_enum_spec st);
        seen_any := true
    | T.IDENT name
      when (not !seen_any) && !int_words = [] && !named = None
           && is_typedef_name st name ->
        advance st;
        named := Some (Tnamed name);
        seen_any := true
    | _ -> continue := false
  done;
  let base =
    match (!named, List.rev !int_words) with
    | Some t, [] -> t
    | Some t, _ -> t (* e.g. "unsigned" with a typedef: tolerate *)
    | None, [] -> Tint "int" (* implicit int (K&R style) *)
    | None, words ->
        let canonical =
          match List.sort String.compare words with
          | ws when List.mem "char" ws ->
              if List.mem "unsigned" ws then "unsigned char"
              else if List.mem "signed" ws then "signed char"
              else "char"
          | ws when List.mem "short" ws ->
              if List.mem "unsigned" ws then "unsigned short" else "short"
          | ws when List.filter (( = ) "long") ws = [ "long"; "long" ] ->
              if List.mem "unsigned" ws then "unsigned long long" else "long long"
          | ws when List.mem "long" ws ->
              if List.mem "unsigned" ws then "unsigned long" else "long"
          | ws when List.mem "unsigned" ws -> "unsigned int"
          | _ -> "int"
        in
        Tint canonical
  in
  { base; storage = !storage }

and parse_comp_spec st is_union =
  skip_gnu_noise st;
  let def_loc = loc st in
  let tag =
    match peek st with
    | T.IDENT name -> advance st; name
    | _ -> fresh_anon st (if is_union then "union" else "struct")
  in
  (match peek st with
  | T.LBRACE ->
      advance st;
      let fields = ref [] in
      while not (T.equal (peek st) T.RBRACE) do
        let fs = parse_struct_declaration st in
        fields := List.rev_append fs !fields
      done;
      eat st T.RBRACE;
      let def =
        { ctag = tag; cunion = is_union; cfields = List.rev !fields; cloc = def_loc }
      in
      st.comps <- def :: st.comps
  | _ -> ());
  Tcomp (is_union, tag)

and parse_struct_declaration st : (string * typ) list =
  (* spec-qualifier-list struct-declarator-list ; *)
  let specs = parse_specs st in
  let fields = ref [] in
  if T.equal (peek st) T.SEMI then begin
    (* anonymous struct/union member or tag-only: keep fields of anonymous
       members by flattening them into the enclosing composite *)
    (match specs.base with
    | Tcomp (_, tag) -> (
        match List.find_opt (fun c -> c.ctag = tag) st.comps with
        | Some def -> fields := List.rev def.cfields
        | None -> ())
    | _ -> ());
    advance st;
    List.rev !fields
  end
  else begin
    let continue = ref true in
    while !continue do
      if T.equal (peek st) T.COLON then begin
        (* unnamed bit-field: skip its width *)
        advance st;
        ignore (parse_cond_expr st)
      end
      else begin
        let name, typ = parse_declarator st specs.base in
        if T.equal (peek st) T.COLON then begin
          advance st;
          ignore (parse_cond_expr st)
        end;
        skip_gnu_noise st;
        fields := (name, typ) :: !fields
      end;
      if T.equal (peek st) T.COMMA then advance st else continue := false
    done;
    eat st T.SEMI;
    List.rev !fields
  end

and parse_enum_spec st =
  skip_gnu_noise st;
  let tag =
    match peek st with
    | T.IDENT name -> advance st; name
    | _ -> fresh_anon st "enum"
  in
  (match peek st with
  | T.LBRACE ->
      advance st;
      let items = ref [] in
      while not (T.equal (peek st) T.RBRACE) do
        let name = eat_ident st in
        bind st name Bobject;
        let v =
          if T.equal (peek st) T.EQ then begin
            advance st;
            match (parse_cond_expr st).edesc with
            | Eint (v, _) -> Some v
            | _ -> None
          end
          else None
        in
        items := (name, v) :: !items;
        if T.equal (peek st) T.COMMA then advance st
      done;
      eat st T.RBRACE;
      st.enums <- (tag, List.rev !items) :: st.enums
  | _ -> ());
  Tenum tag

(* ------------------------------------------------------------------ *)
(* Declarators.  A declarator is parsed as a function from the base     *)
(* type to the declared type ("inside-out" construction).               *)
(* ------------------------------------------------------------------ *)

and parse_declarator st base : string * typ =
  match parse_declarator_opt st base with
  | Some name, typ -> (name, typ)
  | None, _ -> err st "expected declarator name"

and parse_abstract_declarator st base : typ =
  let _, typ = parse_declarator_opt st base in
  typ

(* Parses pointer direct-declarator; the name is optional (abstract
   declarators in casts and prototypes omit it). *)
and parse_declarator_opt st base : string option * typ =
  skip_gnu_noise st;
  if T.equal (peek st) T.STAR then begin
    advance st;
    let rec quals () =
      match peek st with
      | T.KW_CONST | T.KW_VOLATILE -> advance st; quals ()
      | T.IDENT ("__restrict" | "__restrict__" | "restrict") ->
          advance st; quals ()
      | _ -> ()
    in
    quals ();
    parse_declarator_opt st (Tptr base)
  end
  else parse_direct_declarator st base

and parse_direct_declarator st base : string option * typ =
  skip_gnu_noise st;
  (* The tricky case: '(' may open a parenthesized declarator or a
     parameter list of an omitted-name function declarator.  It is a
     parenthesized declarator iff what follows looks like a declarator
     (i.e. '*', '(' or an identifier that is not a typedef name). *)
  let name, wrap =
    match peek st with
    | T.IDENT id ->
        (* even a typedef name: in declarator position an identifier is the
           declared name (the new declaration shadows the typedef) *)
        advance st;
        (Some id, fun t -> t)
    | T.LPAREN
      when (match peek2 st with
           | T.STAR | T.LPAREN -> true
           | T.IDENT id -> not (is_typedef_name st id)
           | _ -> false) ->
        advance st;
        (* parse the inner declarator against a placeholder; we apply the
           suffixes of the outer declarator *inside* it afterwards. *)
        let inner_name, inner_typ = parse_declarator_opt st Tvoid in
        eat st T.RPAREN;
        let wrap outer =
          (* substitute [outer] for the Tvoid placeholder inside inner_typ *)
          let rec subst t =
            match t with
            | Tvoid -> outer
            | Tptr t' -> Tptr (subst t')
            | Tarray (t', e) -> Tarray (subst t', e)
            | Tfun (r, ps, va) -> Tfun (subst r, ps, va)
            | other -> other
          in
          subst inner_typ
        in
        (inner_name, wrap)
    | _ -> (None, fun t -> t)
  in
  (* suffixes: [...] and (...) *)
  let rec suffixes t =
    match peek st with
    | T.LBRACKET ->
        advance st;
        let size =
          if T.equal (peek st) T.RBRACKET then None else Some (parse_expr st)
        in
        eat st T.RBRACKET;
        let inner = suffixes t in
        Tarray (inner, size)
    | T.LPAREN ->
        advance st;
        let params, variadic = parse_param_list st in
        eat st T.RPAREN;
        let inner = suffixes t in
        Tfun (inner, params, variadic)
    | _ -> t
  in
  let declared = suffixes base in
  (name, wrap declared)

and parse_param_list st : param list * bool =
  if T.equal (peek st) T.RPAREN then ([], false)
  else if T.equal (peek st) T.KW_VOID && T.equal (peek2 st) T.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] in
    let variadic = ref false in
    let continue = ref true in
    while !continue do
      if T.equal (peek st) T.ELLIPSIS then begin
        advance st;
        variadic := true;
        continue := false
      end
      else if starts_type st then begin
        let specs = parse_specs st in
        let name, typ = parse_declarator_opt st specs.base in
        params := { pname = name; ptyp = typ } :: !params;
        if T.equal (peek st) T.COMMA then advance st else continue := false
      end
      else begin
        (* K&R identifier list: f(a, b, c) — record names with int type *)
        let name = eat_ident st in
        params := { pname = Some name; ptyp = Tint "int" } :: !params;
        if T.equal (peek st) T.COMMA then advance st else continue := false
      end
    done;
    (List.rev !params, !variadic)
  end

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

and parse_primary st : expr =
  let l = loc st in
  match peek st with
  | T.INTLIT (v, s) -> advance st; mk_expr ~loc:l (Eint (v, s))
  | T.FLOATLIT s -> advance st; mk_expr ~loc:l (Efloat s)
  | T.CHARLIT c -> advance st; mk_expr ~loc:l (Echar c)
  | T.STRLIT s ->
      advance st;
      (* adjacent string literals concatenate *)
      let b = Buffer.create (String.length s) in
      Buffer.add_string b s;
      let rec more () =
        match peek st with
        | T.STRLIT s2 -> advance st; Buffer.add_string b s2; more ()
        | _ -> ()
      in
      more ();
      mk_expr ~loc:l (Estring (Buffer.contents b))
  | T.IDENT x -> advance st; mk_expr ~loc:l (Eident x)
  | T.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st T.RPAREN;
      e
  | t -> err st "unexpected token %S in expression" (T.to_string t)

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let l = loc st in
    match peek st with
    | T.LPAREN ->
        advance st;
        let args = ref [] in
        if not (T.equal (peek st) T.RPAREN) then begin
          let more = ref true in
          while !more do
            (* builtins like va_arg(ap, T) take a type name as an
               argument; represent it as a (pointer-free) sizeof *)
            (if starts_type st then
               let t = parse_type_name st in
               args := mk_expr ~loc:(loc st) (Esizeof_typ t) :: !args
             else args := parse_assign_expr st :: !args);
            if T.equal (peek st) T.COMMA then advance st else more := false
          done
        end;
        eat st T.RPAREN;
        e := mk_expr ~loc:l (Ecall (!e, List.rev !args))
    | T.LBRACKET ->
        advance st;
        let i = parse_expr st in
        eat st T.RBRACKET;
        e := mk_expr ~loc:l (Eindex (!e, i))
    | T.DOT ->
        advance st;
        let f = eat_ident st in
        e := mk_expr ~loc:l (Emember (!e, f))
    | T.ARROW ->
        advance st;
        let f = eat_ident st in
        e := mk_expr ~loc:l (Earrow (!e, f))
    | T.PLUSPLUS ->
        advance st;
        e := mk_expr ~loc:l (Eunop ("++post", !e))
    | T.MINUSMINUS ->
        advance st;
        e := mk_expr ~loc:l (Eunop ("--post", !e))
    | _ -> continue := false
  done;
  !e

and parse_unary st : expr =
  let l = loc st in
  match peek st with
  | T.PLUSPLUS ->
      advance st;
      mk_expr ~loc:l (Eunop ("++pre", parse_unary st))
  | T.MINUSMINUS ->
      advance st;
      mk_expr ~loc:l (Eunop ("--pre", parse_unary st))
  | T.AMP -> advance st; mk_expr ~loc:l (Eaddrof (parse_cast_expr st))
  | T.STAR -> advance st; mk_expr ~loc:l (Ederef (parse_cast_expr st))
  | T.PLUS -> advance st; mk_expr ~loc:l (Eunop ("u+", parse_cast_expr st))
  | T.MINUS -> advance st; mk_expr ~loc:l (Eunop ("u-", parse_cast_expr st))
  | T.TILDE -> advance st; mk_expr ~loc:l (Eunop ("~", parse_cast_expr st))
  | T.BANG -> advance st; mk_expr ~loc:l (Eunop ("!", parse_cast_expr st))
  | T.KW_SIZEOF ->
      advance st;
      if T.equal (peek st) T.LPAREN && starts_type_after_lparen st then begin
        advance st;
        let t = parse_type_name st in
        eat st T.RPAREN;
        (* sizeof(T){...} is a compound literal being sized; tolerate *)
        mk_expr ~loc:l (Esizeof_typ t)
      end
      else mk_expr ~loc:l (Esizeof_expr (parse_unary st))
  | _ -> parse_postfix st

and starts_type_after_lparen st =
  (* we are AT the lparen; look one ahead *)
  match peek2 st with
  | T.KW_VOID | T.KW_CHAR | T.KW_SHORT | T.KW_INT | T.KW_LONG | T.KW_FLOAT
  | T.KW_DOUBLE | T.KW_SIGNED | T.KW_UNSIGNED | T.KW_STRUCT | T.KW_UNION
  | T.KW_ENUM | T.KW_CONST | T.KW_VOLATILE ->
      true
  | T.IDENT name -> is_typedef_name st name
  | _ -> false

and parse_cast_expr st : expr =
  let l = loc st in
  if T.equal (peek st) T.LPAREN && starts_type_after_lparen st then begin
    advance st;
    let t = parse_type_name st in
    eat st T.RPAREN;
    if T.equal (peek st) T.LBRACE then begin
      (* compound literal *)
      let init = parse_initializer st in
      mk_expr ~loc:l (Ecompound (t, init))
    end
    else mk_expr ~loc:l (Ecast (t, parse_cast_expr st))
  end
  else parse_unary st

and parse_type_name st : typ =
  let specs = parse_specs st in
  parse_abstract_declarator st specs.base

and binop_prec = function
  | T.STAR | T.SLASH | T.PERCENT -> 10
  | T.PLUS | T.MINUS -> 9
  | T.LTLT | T.GTGT -> 8
  | T.LT | T.GT | T.LE | T.GE -> 7
  | T.EQEQ | T.BANGEQ -> 6
  | T.AMP -> 5
  | T.CARET -> 4
  | T.BAR -> 3
  | T.AMPAMP -> 2
  | T.BARBAR -> 1
  | _ -> 0

and parse_binary st level : expr =
  let lhs = ref (parse_cast_expr st) in
  let continue = ref true in
  while !continue do
    let tok = peek st in
    let p = binop_prec tok in
    if p >= level && p > 0 then begin
      let l = loc st in
      advance st;
      let rhs = parse_binary st (p + 1) in
      lhs := mk_expr ~loc:l (Ebinop (T.to_string tok, !lhs, rhs))
    end
    else continue := false
  done;
  !lhs

and parse_cond_expr st : expr =
  let c = parse_binary st 1 in
  if T.equal (peek st) T.QUESTION then begin
    let l = loc st in
    advance st;
    let a = parse_expr st in
    eat st T.COLON;
    let b = parse_cond_expr st in
    mk_expr ~loc:l (Econd (c, a, b))
  end
  else c

and parse_assign_expr st : expr =
  let lhs = parse_cond_expr st in
  let l = loc st in
  let mk op =
    advance st;
    let rhs = parse_assign_expr st in
    mk_expr ~loc:l (Eassign (op, lhs, rhs))
  in
  match peek st with
  | T.EQ -> mk None
  | T.PLUSEQ -> mk (Some "+")
  | T.MINUSEQ -> mk (Some "-")
  | T.STAREQ -> mk (Some "*")
  | T.SLASHEQ -> mk (Some "/")
  | T.PERCENTEQ -> mk (Some "%")
  | T.LTLTEQ -> mk (Some "<<")
  | T.GTGTEQ -> mk (Some ">>")
  | T.AMPEQ -> mk (Some "&")
  | T.CARETEQ -> mk (Some "^")
  | T.BAREQ -> mk (Some "|")
  | _ -> lhs

and parse_expr st : expr =
  let e = parse_assign_expr st in
  if T.equal (peek st) T.COMMA then begin
    let l = loc st in
    advance st;
    let rest = parse_expr st in
    mk_expr ~loc:l (Ecomma (e, rest))
  end
  else e

(* ------------------------------------------------------------------ *)
(* Initializers                                                        *)
(* ------------------------------------------------------------------ *)

and parse_initializer st : init =
  if T.equal (peek st) T.LBRACE then begin
    advance st;
    let items = ref [] in
    while not (T.equal (peek st) T.RBRACE) do
      let designator = parse_designator_opt st in
      let i = parse_initializer st in
      items := (designator, i) :: !items;
      if T.equal (peek st) T.COMMA then advance st
    done;
    eat st T.RBRACE;
    Ilist (List.rev !items)
  end
  else Iexpr (parse_assign_expr st)

and parse_designator_opt st : string option =
  let rec go acc =
    match peek st with
    | T.DOT ->
        advance st;
        let f = eat_ident st in
        go (Some f)
    | T.LBRACKET ->
        advance st;
        let _ = parse_cond_expr st in
        eat st T.RBRACKET;
        go acc
    | T.EQ when acc <> None || T.equal (peek2 st) T.EOF -> advance st; acc
    | _ -> acc
  in
  match peek st with
  | T.DOT | T.LBRACKET ->
      let d = go None in
      if T.equal (peek st) T.EQ then advance st;
      d
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_stmt st : stmt =
  let l = loc st in
  match peek st with
  | T.SEMI -> advance st; mk_stmt ~loc:l Snull
  | T.LBRACE ->
      enter_scope st;
      let stmts = parse_block st in
      leave_scope st;
      mk_stmt ~loc:l (Sblock stmts)
  | T.KW_IF ->
      advance st;
      eat st T.LPAREN;
      let c = parse_expr st in
      eat st T.RPAREN;
      let then_ = parse_stmt st in
      let else_ =
        if T.equal (peek st) T.KW_ELSE then begin
          advance st;
          Some (parse_stmt st)
        end
        else None
      in
      mk_stmt ~loc:l (Sif (c, then_, else_))
  | T.KW_WHILE ->
      advance st;
      eat st T.LPAREN;
      let c = parse_expr st in
      eat st T.RPAREN;
      mk_stmt ~loc:l (Swhile (c, parse_stmt st))
  | T.KW_DO ->
      advance st;
      let body = parse_stmt st in
      eat st T.KW_WHILE;
      eat st T.LPAREN;
      let c = parse_expr st in
      eat st T.RPAREN;
      eat st T.SEMI;
      mk_stmt ~loc:l (Sdo (body, c))
  | T.KW_FOR ->
      advance st;
      eat st T.LPAREN;
      enter_scope st;
      let init =
        if T.equal (peek st) T.SEMI then (advance st; None)
        else if starts_type st then begin
          let ds = parse_declaration st in
          Some (Fdecl ds)
        end
        else begin
          let e = parse_expr st in
          eat st T.SEMI;
          Some (Fexpr e)
        end
      in
      let cond =
        if T.equal (peek st) T.SEMI then None else Some (parse_expr st)
      in
      eat st T.SEMI;
      let step =
        if T.equal (peek st) T.RPAREN then None else Some (parse_expr st)
      in
      eat st T.RPAREN;
      let body = parse_stmt st in
      leave_scope st;
      mk_stmt ~loc:l (Sfor (init, cond, step, body))
  | T.KW_RETURN ->
      advance st;
      let e = if T.equal (peek st) T.SEMI then None else Some (parse_expr st) in
      eat st T.SEMI;
      mk_stmt ~loc:l (Sreturn e)
  | T.KW_BREAK -> advance st; eat st T.SEMI; mk_stmt ~loc:l Sbreak
  | T.KW_CONTINUE -> advance st; eat st T.SEMI; mk_stmt ~loc:l Scontinue
  | T.KW_SWITCH ->
      advance st;
      eat st T.LPAREN;
      let e = parse_expr st in
      eat st T.RPAREN;
      mk_stmt ~loc:l (Sswitch (e, parse_stmt st))
  | T.KW_CASE ->
      advance st;
      let e = parse_cond_expr st in
      eat st T.COLON;
      mk_stmt ~loc:l (Scase (e, parse_stmt st))
  | T.KW_DEFAULT ->
      advance st;
      eat st T.COLON;
      mk_stmt ~loc:l (Sdefault (parse_stmt st))
  | T.KW_GOTO ->
      advance st;
      let lbl = eat_ident st in
      eat st T.SEMI;
      mk_stmt ~loc:l (Sgoto lbl)
  | T.IDENT name when T.equal (peek2 st) T.COLON && not (is_typedef_name st name) ->
      advance st;
      advance st;
      mk_stmt ~loc:l (Slabel (name, parse_stmt st))
  | _ when starts_type st ->
      let ds = parse_declaration st in
      mk_stmt ~loc:l (Sdecl ds)
  | _ ->
      let e = parse_expr st in
      eat st T.SEMI;
      mk_stmt ~loc:l (Sexpr e)

and parse_block st : stmt list =
  eat st T.LBRACE;
  let stmts = ref [] in
  while not (T.equal (peek st) T.RBRACE) do
    stmts := parse_stmt st :: !stmts
  done;
  eat st T.RBRACE;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

(* Parses "specs init-declarator-list ;" and registers names. *)
and parse_declaration st : decl list =
  let specs = parse_specs st in
  if T.equal (peek st) T.SEMI then begin
    advance st;
    [] (* pure type declaration: struct S { ... }; *)
  end
  else begin
    let decls = ref [] in
    let continue = ref true in
    while !continue do
      let l = loc st in
      let name, typ = parse_declarator st specs.base in
      skip_gnu_noise st;
      if specs.storage = Stypedef then begin
        bind st name Btypedef;
        Hashtbl.replace st.typedefs name typ
      end
      else bind st name Bobject;
      let init =
        if T.equal (peek st) T.EQ then begin
          advance st;
          Some (parse_initializer st)
        end
        else None
      in
      decls :=
        { dname = name; dtyp = typ; dstorage = specs.storage; dinit = init; dloc = l }
        :: !decls;
      if T.equal (peek st) T.COMMA then advance st else continue := false
    done;
    eat st T.SEMI;
    List.rev !decls
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_top st : top option =
  skip_gnu_noise st;
  match peek st with
  | T.SEMI -> advance st; Some (Tdecl [])
  | T.EOF -> None
  | _ ->
      let specs = parse_specs st in
      if T.equal (peek st) T.SEMI then begin
        advance st;
        Some (Tdecl [])
      end
      else begin
        let l = loc st in
        let name, typ = parse_declarator st specs.base in
        skip_gnu_noise st;
        match (typ, peek st) with
        | Tfun (ret, params, variadic), T.LBRACE ->
            bind st name Bobject;
            enter_scope st;
            List.iter
              (fun p -> match p.pname with Some n -> bind st n Bobject | None -> ())
              params;
            let body = parse_block st in
            leave_scope st;
            Some
              (Tfundef
                 {
                   fname = name;
                   freturn = ret;
                   fparams = params;
                   fvariadic = variadic;
                   fstorage = specs.storage;
                   fbody = body;
                   floc = l;
                 })
        | Tfun (ret, _, variadic), t
          when (match t with T.IDENT _ -> true | _ -> false) || starts_type st
          -> (
            (* K&R parameter declarations between ')' and '{' *)
            let kr_decls = ref [] in
            while starts_type st do
              kr_decls := parse_declaration st @ !kr_decls
            done;
            match peek st with
            | T.LBRACE ->
                bind st name Bobject;
                enter_scope st;
                let params =
                  List.map
                    (fun d -> { pname = Some d.dname; ptyp = d.dtyp })
                    (List.rev !kr_decls)
                in
                List.iter
                  (fun p ->
                    match p.pname with Some n -> bind st n Bobject | None -> ())
                  params;
                let body = parse_block st in
                leave_scope st;
                Some
                  (Tfundef
                     {
                       fname = name;
                       freturn = ret;
                       fparams = params;
                       fvariadic = variadic;
                       fstorage = specs.storage;
                       fbody = body;
                       floc = l;
                     })
            | _ -> err st "expected function body after K&R declarations")
        | _ ->
            (* ordinary declaration list *)
            if specs.storage = Stypedef then begin
              bind st name Btypedef;
              Hashtbl.replace st.typedefs name typ
            end
            else bind st name Bobject;
            let init =
              if T.equal (peek st) T.EQ then begin
                advance st;
                Some (parse_initializer st)
              end
              else None
            in
            let first =
              {
                dname = name;
                dtyp = typ;
                dstorage = specs.storage;
                dinit = init;
                dloc = l;
              }
            in
            let decls = ref [ first ] in
            while T.equal (peek st) T.COMMA do
              advance st;
              let l = loc st in
              let name, typ = parse_declarator st specs.base in
              skip_gnu_noise st;
              if specs.storage = Stypedef then begin
                bind st name Btypedef;
                Hashtbl.replace st.typedefs name typ
              end
              else bind st name Bobject;
              let init =
                if T.equal (peek st) T.EQ then begin
                  advance st;
                  Some (parse_initializer st)
                end
                else None
              in
              decls :=
                {
                  dname = name;
                  dtyp = typ;
                  dstorage = specs.storage;
                  dinit = init;
                  dloc = l;
                }
                :: !decls
            done;
            eat st T.SEMI;
            Some (Tdecl (List.rev !decls))
      end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let lex_all ~file text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf file;
  let toks = ref [] in
  let rec go () =
    let p = lexbuf.Lexing.lex_curr_p in
    let tok = Clexer.token lexbuf in
    let l =
      Loc.make ~file:p.Lexing.pos_fname ~line:p.Lexing.pos_lnum
        ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)
    in
    toks := (tok, l) :: !toks;
    match tok with T.EOF -> () | _ -> go ()
  in
  go ();
  Array.of_list (List.rev !toks)

(** Result of parsing: the translation unit plus the typedef environment
    (the normalizer resolves {!Cast.Tnamed} through it). *)
type result = { tunit : tunit; typedefs : (string, typ) Hashtbl.t }

(** Parse preprocessed text (with optional [# line "file"] markers). *)
let parse_string ?(file = "<string>") text : result =
  let st =
    {
      toks = lex_all ~file text;
      pos = 0;
      scopes = [ Hashtbl.create 64 ];
      typedefs = Hashtbl.create 64;
      comps = [];
      enums = [];
      anon = 0;
      file;
    }
  in
  (* the compiler-provided varargs carrier: model va_list as a pointer
     (va_start points it at the callee's varargs bucket) *)
  Hashtbl.replace st.typedefs "__builtin_va_list" (Tptr Tvoid);
  bind st "__builtin_va_list" Btypedef;
  let tops = ref [] in
  let rec go () =
    match parse_top st with
    | Some t ->
        tops := t :: !tops;
        go ()
    | None -> ()
  in
  go ();
  let tunit =
    {
      file;
      tops = List.rev !tops;
      comps = List.rev st.comps;
      enums = List.rev st.enums;
    }
  in
  { tunit; typedefs = st.typedefs }
