(** Normalization: C AST -> primitive assignments (the "analysis" half of
    the compile phase, Section 4 of the paper).

    Every expression in the unit is walked flow-insensitively.  Complex
    assignments are broken into the five primitive kinds by introducing
    temporaries; operations are recorded on the copies they give rise to
    ([x = y + z] becomes [x =(+) y] and [x =(+) z]); functions get
    standardized argument/return variables; each static occurrence of an
    allocation primitive becomes a fresh heap location; constant strings
    are ignored; arrays are index-independent; structs are handled
    field-based or field-independent according to {!mode}. *)

open Cla_ir
open Cast

type mode = Field_based | Field_independent

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

type scope = { sname : string; bindings : (string, Var.t * typ) Hashtbl.t }

type env = {
  vt : Vartab.t;
  mode : mode;
  tenv : Typechk.env;
  enum_consts : (string, unit) Hashtbl.t;
  funcs : (string, typ) Hashtbl.t;  (* declared/defined function types *)
  static_funcs : (string, unit) Hashtbl.t;
  mutable scopes : scope list;  (* innermost first; last is the file scope *)
  mutable cur_fun : string option;
  mutable block_id : int;  (* unique suffix for nested block scopes *)
  mutable assigns : Prim.t list;  (* reversed *)
  mutable fundefs : Prog.fundef list;
  mutable indirects : Prog.indirect list;
  mutable heap_count : int;
  mutable consts : (Var.t * int64) list;
  file : string;
}

let alloc_names =
  [ "malloc"; "calloc"; "realloc"; "valloc"; "memalign"; "strdup"; "xmalloc"; "alloca" ]

let emit env p = env.assigns <- p :: env.assigns

let push_scope env name =
  env.scopes <- { sname = name; bindings = Hashtbl.create 16 } :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: (_ :: _ as rest) -> env.scopes <- rest
  | _ -> invalid_arg "Normalize: scope underflow"

let fresh_block_scope env =
  let id = env.block_id in
  env.block_id <- id + 1;
  let base = match env.cur_fun with Some f -> f | None -> "" in
  push_scope env (Fmt.str "%s#%d" base id)

let find_binding env name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s.bindings name with
        | Some b -> Some b
        | None -> go rest)
  in
  go env.scopes

(* Type lookup used by Typechk. *)
let lookup_type env name =
  match find_binding env name with
  | Some (_, t) -> Some t
  | None -> Hashtbl.find_opt env.funcs name

(* ------------------------------------------------------------------ *)
(* Variable creation                                                   *)
(* ------------------------------------------------------------------ *)

let typ_str t = Cast.typ_to_string t

(* Declare an object in the current scope and return its variable.  An
   [extern] declaration without initializer does not define the object:
   the open-world linker treats externs never defined by any unit as
   escaping into the unanalyzed part of the program. *)
let declare ?(defined = true) env ~loc name typ storage =
  let file_scope = match env.scopes with [ _ ] -> true | _ -> false in
  let kind, scope, linkage =
    if file_scope then
      match storage with
      | Sstatic -> (Var.Filelocal, "", Some Var.Intern)
      | _ -> (Var.Global, "", None)
    else
      let sname = (List.hd env.scopes).sname in
      (Var.Filelocal, sname, Some Var.Intern)
  in
  let v =
    Vartab.intern env.vt ~kind ~name ~scope ~typ:(typ_str typ) ~loc ?linkage
      ~defined ()
  in
  (match env.scopes with
  | s :: _ -> Hashtbl.replace s.bindings name (v, typ)
  | [] -> ());
  v

(* The variable for a struct field in field-based mode.  [tag] may be
   [None] when type synthesis failed; we then fall back to a per-name
   wildcard composite, written "?", so accesses still meet soundly. *)
let field_var env ~loc tag fname ftyp =
  let tag = match tag with Some t -> t | None -> "?" in
  let name = tag ^ "." ^ fname in
  let typ = match ftyp with Some t -> typ_str t | None -> "" in
  Vartab.intern env.vt ~kind:Var.Field ~name ~typ ~loc ()

let func_var env ~loc name =
  let linkage =
    if Hashtbl.mem env.static_funcs name then Some Var.Intern else None
  in
  let typ =
    match Hashtbl.find_opt env.funcs name with
    | Some t -> typ_str t
    | None -> ""
  in
  Vartab.intern env.vt ~kind:Var.Func ~name ~typ ~loc ?linkage ()

let arg_var env ~loc fname i =
  let linkage =
    if Hashtbl.mem env.static_funcs fname then Some Var.Intern else None
  in
  Vartab.intern env.vt ~kind:(Var.Arg i) ~name:fname ~loc ?linkage ()

let ret_var env ~loc fname =
  let linkage =
    if Hashtbl.mem env.static_funcs fname then Some Var.Intern else None
  in
  Vartab.intern env.vt ~kind:Var.Ret ~name:fname ~loc ?linkage ()

(* Standardized arg/ret variables of an indirectly-called pointer [p]; they
   are unit-private and tied to p's uid (Section 4: "(*f)(x, y) ... adding
   the primitive assignments f1 = x, f2 = y"). *)
let iarg_var env ~loc p i =
  Vartab.intern env.vt ~kind:(Var.Arg i)
    ~name:(Fmt.str "ip%d" (Var.uid p))
    ~loc ~linkage:Var.Intern ()

let iret_var env ~loc p =
  Vartab.intern env.vt ~kind:Var.Ret
    ~name:(Fmt.str "ip%d" (Var.uid p))
    ~loc ~linkage:Var.Intern ()

let heap_var env ~loc callee =
  let n = env.heap_count in
  env.heap_count <- n + 1;
  Vartab.intern env.vt ~kind:Var.Heap
    ~name:(Fmt.str "%s@%s:%d#%d" callee (Filename.basename loc.Loc.file) loc.Loc.line n)
    ~loc ~linkage:Var.Intern ()

(* Resolve an identifier appearing in an expression. *)
type resolved =
  | Robj of Var.t * typ
  | Rfun of Var.t  (* function designator *)
  | Rconst  (* enum constant *)

let resolve_ident env ~loc name =
  match find_binding env name with
  | Some (v, t) -> Robj (v, t)
  | None ->
      if Hashtbl.mem env.enum_consts name then Rconst
      else if Hashtbl.mem env.funcs name then Rfun (func_var env ~loc name)
      else begin
        (* undeclared identifier (e.g. from a skipped system header):
           implicitly declare it as a global int; its definition, if any,
           lives outside this unit *)
        let v =
          Vartab.intern env.vt ~kind:Var.Global ~name ~typ:"int" ~loc
            ~defined:false ()
        in
        (match List.rev env.scopes with
        | file_scope :: _ -> Hashtbl.replace file_scope.bindings name (v, Tint "int")
        | [] -> ());
        Robj (v, Tint "int")
      end

(* ------------------------------------------------------------------ *)
(* Values, contributions, places                                       *)
(* ------------------------------------------------------------------ *)

(* One contribution of an rvalue: a value together with the operation it
   flows through (None = direct). *)
type value =
  | Vnone  (* constants, strings, severed values *)
  | Vvar of Var.t  (* the value of an object *)
  | Vaddr of Var.t  (* &object (an lval in the paper's terms) *)
  | Vload of Var.t  (* *p where p holds the pointer value *)

type contrib = value * Prim.opinfo option

type place =
  | Pvar of Var.t
  | Pderef of Var.t  (* assignment through *p *)
  | Pnone

(* Emit the primitive assignments for "dst <- contribs". *)
let assign_var env ~loc dst (contribs : contrib list) =
  List.iter
    (fun (v, op) ->
      match v with
      | Vnone -> ()
      | Vvar s -> emit env (Prim.copy ?op ~loc dst s)
      | Vaddr s -> emit env (Prim.addr ~loc dst s)
      | Vload s -> emit env (Prim.load ~loc dst s))
    contribs

let assign_deref env ~loc p (contribs : contrib list) =
  List.iter
    (fun (v, _op) ->
      match v with
      | Vnone -> ()
      | Vvar s -> emit env (Prim.store ~loc p s)
      | Vaddr s ->
          (* *p = &y is not primitive: go through a temp *)
          let t = Vartab.fresh_temp ~loc env.vt in
          emit env (Prim.addr ~loc t s);
          emit env (Prim.store ~loc p t)
      | Vload s -> emit env (Prim.deref2 ~loc p s))
    contribs

let assign_place env ~loc place contribs =
  match place with
  | Pvar v -> assign_var env ~loc v contribs
  | Pderef p -> assign_deref env ~loc p contribs
  | Pnone -> ()

(* Materialize a contribution list as a single variable-or-address. *)
let collapse env ~loc (contribs : contrib list) : value =
  match contribs with
  | [] -> Vnone
  | [ (v, None) ] -> v
  | [ (Vaddr s, Some _) ] -> Vaddr s (* &x through arithmetic still points to x *)
  | _ ->
      let t = Vartab.fresh_temp ~loc env.vt in
      assign_var env ~loc t contribs;
      Vvar t

(* Apply an operation to every contribution ([x op e] / [e op x]).  A
   subexpression that already flows through an operation is materialized
   into a single temporary first — this is the paper's "complex assignments
   are broken down into primitive ones by introducing temporary variables"
   (and why "considerable implementation effort is required to avoid
   introducing too many temporary variables": one temp per subexpression,
   not one per contribution). *)
let reop env ~loc op pos (contribs : contrib list) : contrib list =
  let info = Prim.opinfo op pos in
  let needs_temp =
    List.exists
      (fun (v, prev) ->
        match (v, prev) with
        | (Vvar _ | Vload _), Some _ -> true
        | Vload _, None -> false
        | _ -> false)
      contribs
  in
  if needs_temp then begin
    let t = Vartab.fresh_temp ~loc env.vt in
    assign_var env ~loc t contribs;
    [ (Vvar t, info) ]
  end
  else
    List.map
      (fun (v, prev) ->
        match (v, prev) with
        | Vnone, _ -> ((Vnone : value), None)
        | _, None -> (v, info)
        | Vaddr s, Some _ -> (Vaddr s, info)
        | (Vvar _ | Vload _), Some _ -> assert false)
      contribs

(* ------------------------------------------------------------------ *)
(* Expression translation                                              *)
(* ------------------------------------------------------------------ *)

let rec rval env (e : expr) : contrib list =
  let loc = e.eloc in
  match e.edesc with
  | Eint _ | Efloat _ | Echar _ | Esizeof_typ _ -> []
  | Estring _ -> [] (* paper Section 6: constant strings are ignored *)
  | Esizeof_expr _ -> [] (* operand is not evaluated in C *)
  | Eident name -> (
      match resolve_ident env ~loc name with
      | Rconst -> []
      | Rfun fv -> [ (Vaddr fv, None) ] (* function designator decays *)
      | Robj (v, t) ->
          if Typechk.is_array env.tenv t then [ (Vaddr v, None) ]
            (* array decays to a pointer to the (index-independent) object *)
          else if Typechk.is_function env.tenv t then [ (Vaddr v, None) ]
          else [ (Vvar v, None) ])
  | Eunop (("++pre" | "--pre" | "++post" | "--post"), e1) ->
      (* x++ is x = x + 1: a self-copy, irrelevant to both analyses; its
         value is x *)
      rval env e1
  | Eunop (op, e1) ->
      let op = if op = "u-" then "u-" else op in
      reop env ~loc op Strength.Arg1 (rval env e1)
  | Ederef e1 -> (
      (* when *e denotes an array (e points to an array, as with
         pointer-to-array or a partially-indexed multi-dim array), the
         result decays to the array's address — a copy, not a load *)
      let decays =
        match Typechk.typeof env.tenv e with
        | Some t -> Typechk.is_array env.tenv t
        | None -> false
      in
      match place_of_deref env ~loc e1 with
      | Pvar v -> if decays then [ (Vaddr v, None) ] else [ (Vvar v, None) ]
      | Pderef p -> if decays then [ (Vvar p, None) ] else [ (Vload p, None) ]
      | Pnone -> [])
  | Eaddrof e1 -> (
      match lval env e1 with
      | Pvar v -> [ (Vaddr v, None) ]
      | Pderef p -> [ (Vvar p, None) ] (* &*p = p *)
      | Pnone -> [])
  | Ebinop (op, a, b) ->
      reop env ~loc op Strength.Arg1 (rval env a)
      @ reop env ~loc op Strength.Arg2 (rval env b)
  | Eassign (op, l, r) -> do_assign env ~loc op l r
  | Econd (c, a, b) ->
      ignore (rval env c);
      reop env ~loc "?:" Strength.Arg1 (rval env a)
      @ reop env ~loc "?:" Strength.Arg2 (rval env b)
  | Ecall (f, args) -> do_call env ~loc f args
  | Emember (e1, f) -> member_rval env ~loc e1 f ~arrow:false
  | Earrow (e1, f) -> member_rval env ~loc e1 f ~arrow:true
  | Eindex _ -> (
      let row =
        match Typechk.typeof env.tenv e with
        | Some t -> Typechk.is_array env.tenv t
        | None -> false
      in
      match lval env e with
      | Pvar v ->
          (* element of an index-independent array object *)
          if row then [ (Vaddr v, None) ] (* multi-dim: row decays to same object *)
          else [ (Vvar v, None) ]
      | Pderef p ->
          (* p[i] through a pointer-to-array: the row decays to p's own
             value — a copy, not a load of the array's contents *)
          if row then [ (Vvar p, None) ] else [ (Vload p, None) ]
      | Pnone -> [])
  | Ecast (_, e1) -> reop env ~loc "cast" Strength.Arg1 (rval env e1)
  | Ecomma (a, b) ->
      ignore (rval env a);
      rval env b
  | Ecompound (t, init) ->
      let tv = Vartab.fresh_temp ~loc env.vt in
      init_object env ~loc (Pvar tv) t init;
      if Typechk.is_array env.tenv t then [ (Vaddr tv, None) ]
      else [ (Vvar tv, None) ]

(* Literal integer value of an expression, if syntactically evident. *)
and const_of (e : expr) : int64 option =
  match e.edesc with
  | Eint (v, _) -> Some v
  | Echar c -> Some (Int64.of_int c)
  | Eunop ("u-", e1) -> Option.map Int64.neg (const_of e1)
  | Eunop ("u+", e1) -> const_of e1
  | Ecast (_, e1) -> const_of e1
  | _ -> None

(* The place denoted by *e1 (e1 is the pointer expression). *)
and place_of_deref env ~loc e1 =
  match collapse env ~loc (rval env e1) with
  | Vnone -> Pnone
  | Vvar p -> Pderef p
  | Vaddr v -> Pvar v (* *(&x) = x *)
  | Vload p ->
      let t = Vartab.fresh_temp ~loc env.vt in
      emit env (Prim.load ~loc t p);
      Pderef t

and member_rval env ~loc e1 f ~arrow =
  match env.mode with
  | Field_based ->
      (* evaluate the base for side effects only; the object is the field *)
      ignore (rval env e1);
      let tag =
        if arrow then Typechk.arrow_tag env.tenv e1
        else Typechk.member_tag env.tenv e1
      in
      let ftyp =
        match tag with
        | Some tg -> Typechk.field_type env.tenv tg f
        | None -> None
      in
      let fv = field_var env ~loc tag f ftyp in
      if
        match ftyp with
        | Some t -> Typechk.is_array env.tenv t
        | None -> false
      then [ (Vaddr fv, None) ]
      else [ (Vvar fv, None) ]
  | Field_independent ->
      if arrow then
        match collapse env ~loc (rval env e1) with
        | Vnone -> []
        | Vvar p -> [ (Vload p, None) ]
        | Vaddr v -> [ (Vvar v, None) ]
        | Vload p ->
            let t = Vartab.fresh_temp ~loc env.vt in
            emit env (Prim.load ~loc t p);
            [ (Vload t, None) ]
      else rval env e1 (* x.f reads the chunk x *)

and lval env (e : expr) : place =
  let loc = e.eloc in
  match e.edesc with
  | Eident name -> (
      match resolve_ident env ~loc name with
      | Rconst -> Pnone
      | Rfun fv -> Pvar fv
      | Robj (v, _) -> Pvar v)
  | Ederef e1 -> place_of_deref env ~loc e1
  | Eindex (a, i) -> (
      ignore (rval env i);
      let arrayish =
        match Typechk.typeof env.tenv a with
        | Some t -> Typechk.is_array env.tenv t
        | None -> false
      in
      if arrayish then lval env a (* index-independent: a[i] is the object a *)
      else place_of_deref env ~loc a)
  | Emember (e1, f) -> (
      match env.mode with
      | Field_based ->
          ignore_effects_of_base env e1;
          let tag = Typechk.member_tag env.tenv e1 in
          let ftyp =
            match tag with
            | Some tg -> Typechk.field_type env.tenv tg f
            | None -> None
          in
          Pvar (field_var env ~loc tag f ftyp)
      | Field_independent -> lval env e1 (* writing x.f writes the chunk x *))
  | Earrow (e1, f) -> (
      match env.mode with
      | Field_based ->
          ignore (rval env e1);
          let tag = Typechk.arrow_tag env.tenv e1 in
          let ftyp =
            match tag with
            | Some tg -> Typechk.field_type env.tenv tg f
            | None -> None
          in
          Pvar (field_var env ~loc tag f ftyp)
      | Field_independent -> place_of_deref env ~loc e1)
  | Ecast (_, e1) -> lval env e1
  | Ecomma (a, b) ->
      ignore (rval env a);
      lval env b
  | Eassign _ | Econd _ | Ecall _ ->
      (* rare as lvalues; evaluate for effects, no assignable place *)
      ignore (rval env e);
      Pnone
  | _ -> Pnone

(* Evaluate a member base for side effects only when it could have some
   (calls, assignments); plain variable bases have none. *)
and ignore_effects_of_base env e1 =
  match e1.edesc with Eident _ -> () | _ -> ignore (rval env e1)

and do_assign env ~loc op l r : contrib list =
  let place = lval env l in
  (* record integer constants assigned to objects (the object file's
     constants section feeds the narrowing checker) *)
  (match (place, op, const_of r) with
  | Pvar x, None, Some v -> env.consts <- (x, v) :: env.consts
  | _ -> ());
  let rhs = rval env r in
  let rhs =
    match op with
    | None -> rhs
    | Some op -> reop env ~loc op Strength.Arg2 rhs
    (* x op= e : the x-to-x self dependence is a no-op, only e flows in *)
  in
  assign_place env ~loc place rhs;
  (* the value of the assignment expression *)
  match place with
  | Pvar v -> [ (Vvar v, None) ]
  | Pderef p -> [ (Vload p, None) ]
  | Pnone -> rhs

and do_call env ~loc f args : contrib list =
  (* allocation primitives: each static occurrence is a fresh location *)
  let direct_name =
    match f.edesc with
    | Eident g -> Some g
    | Ederef { edesc = Eident g; _ } when Hashtbl.mem env.funcs g ->
        Some g (* ( *f)(...) on a plain function *)
    | _ -> None
  in
  match direct_name with
  | Some ("__builtin_va_start" | "va_start") -> (
      (* va_start(ap, last): ap now designates the caller-filled varargs
         bucket of the current (variadic) function *)
      match (args, env.cur_fun) with
      | ap :: rest, Some fn ->
          List.iter (fun a -> ignore (rval env a)) rest;
          let bucket = arg_var env ~loc fn 0 in
          assign_place env ~loc (lval env ap) [ (Vaddr bucket, None) ];
          []
      | args, _ ->
          List.iter (fun a -> ignore (rval env a)) args;
          [])
  | Some ("__builtin_va_arg" | "va_arg") -> (
      (* va_arg(ap, T) reads the next variadic argument: a load through
         ap, which va_start pointed at the varargs bucket *)
      match args with
      | ap :: _ -> (
          match place_of_deref env ~loc ap with
          | Pvar v -> [ (Vvar v, None) ]
          | Pderef p -> [ (Vload p, None) ]
          | Pnone -> [])
      | [] -> [])
  | Some ("__builtin_va_end" | "va_end") ->
      List.iter (fun a -> ignore (rval env a)) args;
      []
  | Some ("__builtin_va_copy" | "va_copy") -> (
      match args with
      | [ dst; src ] ->
          assign_place env ~loc (lval env dst) (rval env src);
          []
      | args ->
          List.iter (fun a -> ignore (rval env a)) args;
          [])
  | Some g when List.mem g alloc_names ->
      (* each static occurrence of an allocation primitive is a fresh
         location, whether or not a declaration of it is in scope *)
      List.iter (fun a -> ignore (rval env a)) args;
      [ (Vaddr (heap_var env ~loc g), None) ]
  | Some g when Hashtbl.mem env.funcs g || find_binding env g = None ->
      (* direct call; unknown identifiers become implicit declarations *)
      if not (Hashtbl.mem env.funcs g) then
        Hashtbl.replace env.funcs g (Tfun (Tint "int", [], true));
      (* calls to a known variadic prototype also feed arguments past the
         fixed arity into the callee's varargs bucket (read by va_arg) *)
      let fixed =
        match Typechk.resolve env.tenv (Hashtbl.find env.funcs g) with
        | Tfun (_, params, true) when params <> [] -> List.length params
        | _ -> max_int
      in
      List.iteri
        (fun i a ->
          let contribs = rval env a in
          assign_var env ~loc (arg_var env ~loc g (i + 1)) contribs;
          if i + 1 > fixed then
            assign_var env ~loc (arg_var env ~loc g 0) contribs)
        args;
      [ (Vvar (ret_var env ~loc g), None) ]
  | _ -> (
      (* indirect call through a pointer value *)
      let fptr =
        match f.edesc with
        | Ederef inner
          when (match Typechk.typeof env.tenv inner with
               | Some t -> Typechk.is_function_pointer env.tenv t
               | None -> true) ->
            (* ( *e)(...) where *e denotes the function itself: the deref
               is a no-op.  When e is a pointer to a function pointer the
               guard fails and the deref below is a genuine load. *)
            collapse env ~loc (rval env inner)
        | _ -> collapse env ~loc (rval env f)
      in
      match fptr with
      | Vnone ->
          List.iter (fun a -> ignore (rval env a)) args;
          []
      | Vaddr fv ->
          (* pointer literally to a known function object: direct *)
          List.iteri
            (fun i a ->
              let av = arg_var env ~loc (Var.name fv) (i + 1) in
              assign_var env ~loc av (rval env a))
            args;
          [ (Vvar (ret_var env ~loc (Var.name fv)), None) ]
      | Vload p ->
          let t = Vartab.fresh_temp ~loc env.vt in
          emit env (Prim.load ~loc t p);
          indirect_call env ~loc t args
      | Vvar p -> indirect_call env ~loc p args)

and indirect_call env ~loc p args : contrib list =
  env.indirects <- { Prog.ptr = p; nargs = List.length args; iloc = loc } :: env.indirects;
  List.iteri
    (fun i a ->
      let av = iarg_var env ~loc p (i + 1) in
      assign_var env ~loc av (rval env a))
    args;
  [ (Vvar (iret_var env ~loc p), None) ]

(* ------------------------------------------------------------------ *)
(* Initializers                                                        *)
(* ------------------------------------------------------------------ *)

and init_object env ~loc place typ (i : init) =
  match i with
  | Iexpr e ->
      (match (place, const_of e) with
      | Pvar x, Some v -> env.consts <- (x, v) :: env.consts
      | _ -> ());
      assign_place env ~loc place (rval env e)
  | Ilist items -> (
      match (Typechk.resolve env.tenv typ, env.mode) with
      | Tcomp (_, tag), Field_based ->
          let fields =
            match Hashtbl.find_opt env.tenv.Typechk.comps tag with
            | Some def -> def.cfields
            | None -> []
          in
          (* walk items positionally, honouring .f designators *)
          let rec go items fields =
            match items with
            | [] -> ()
            | (desig, item) :: rest -> (
                let fname, ftyp, remaining =
                  match desig with
                  | Some f ->
                      let ft = List.assoc_opt f fields in
                      (Some f, ft, fields)
                  | None -> (
                      match fields with
                      | (f, t) :: tl -> (Some f, Some t, tl)
                      | [] -> (None, None, []))
                in
                match fname with
                | Some f ->
                    let fv = field_var env ~loc (Some tag) f ftyp in
                    let ft = match ftyp with Some t -> t | None -> Tint "int" in
                    init_object env ~loc (Pvar fv) ft item;
                    go rest remaining
                | None ->
                    (* excess initializer: evaluate for effects *)
                    (match item with
                    | Iexpr e -> ignore (rval env e)
                    | Ilist _ -> ());
                    go rest remaining)
          in
          go items fields
      | Tarray (elem, _), _ ->
          (* index-independent: every element initializes the array object *)
          List.iter (fun (_, item) -> init_object env ~loc place elem item) items
      | _, _ ->
          (* field-independent struct (or untyped fallback): every element
             initializes the base chunk *)
          List.iter (fun (_, item) -> init_object env ~loc place typ item) items)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt env (s : stmt) =
  let loc = s.sloc in
  match s.sdesc with
  | Sexpr e -> ignore (rval env e)
  | Sblock ss ->
      fresh_block_scope env;
      List.iter (stmt env) ss;
      pop_scope env
  | Sif (c, a, b) ->
      ignore (rval env c);
      stmt env a;
      Option.iter (stmt env) b
  | Swhile (c, b) ->
      ignore (rval env c);
      stmt env b
  | Sdo (b, c) ->
      stmt env b;
      ignore (rval env c)
  | Sfor (init, c, step, b) ->
      fresh_block_scope env;
      (match init with
      | Some (Fexpr e) -> ignore (rval env e)
      | Some (Fdecl ds) -> List.iter (local_decl env) ds
      | None -> ());
      Option.iter (fun e -> ignore (rval env e)) c;
      Option.iter (fun e -> ignore (rval env e)) step;
      stmt env b;
      pop_scope env
  | Sreturn (Some e) -> (
      let contribs = rval env e in
      match env.cur_fun with
      | Some f -> assign_var env ~loc (ret_var env ~loc f) contribs
      | None -> ())
  | Sreturn None -> ()
  | Sbreak | Scontinue | Sgoto _ | Snull -> ()
  | Sswitch (e, b) ->
      ignore (rval env e);
      stmt env b
  | Scase (e, b) ->
      ignore (rval env e);
      stmt env b
  | Sdefault b | Slabel (_, b) -> stmt env b
  | Sdecl ds -> List.iter (local_decl env) ds

and local_decl env (d : decl) =
  match d.dstorage with
  | Stypedef -> ()
  | Sextern ->
      (* extern declaration inside a function: binds the global without
         defining it *)
      let v =
        Vartab.intern env.vt ~kind:Var.Global ~name:d.dname
          ~typ:(typ_str d.dtyp) ~loc:d.dloc ~defined:false ()
      in
      (match env.scopes with
      | s :: _ -> Hashtbl.replace s.bindings d.dname (v, d.dtyp)
      | [] -> ())
  | _ ->
      if Typechk.is_function env.tenv d.dtyp then
        Hashtbl.replace env.funcs d.dname d.dtyp
      else begin
        let defined = not (d.dstorage = Sextern && d.dinit = None) in
        let v = declare ~defined env ~loc:d.dloc d.dname d.dtyp d.dstorage in
        match d.dinit with
        | Some i -> init_object env ~loc:d.dloc (Pvar v) d.dtyp i
        | None -> ()
      end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let top_decl env (d : decl) =
  match d.dstorage with
  | Stypedef -> ()
  | _ ->
      if Typechk.is_function env.tenv d.dtyp then begin
        Hashtbl.replace env.funcs d.dname d.dtyp;
        if d.dstorage = Sstatic then
          Hashtbl.replace env.static_funcs d.dname ()
      end
      else begin
        (* C makes a file-scope [int x;] a tentative definition; only a
           plain [extern] declaration leaves the object undefined here *)
        let defined = not (d.dstorage = Sextern && d.dinit = None) in
        let v = declare ~defined env ~loc:d.dloc d.dname d.dtyp d.dstorage in
        match d.dinit with
        | Some i -> init_object env ~loc:d.dloc (Pvar v) d.dtyp i
        | None -> ()
      end

let fundef env (fd : fundef) =
  let loc = fd.floc in
  let ftyp = Tfun (fd.freturn, fd.fparams, fd.fvariadic) in
  Hashtbl.replace env.funcs fd.fname ftyp;
  if fd.fstorage = Sstatic then Hashtbl.replace env.static_funcs fd.fname ();
  let fv = func_var env ~loc fd.fname in
  let arity = List.length fd.fparams in
  env.fundefs <- { Prog.fvar = fv; arity; floc = loc } :: env.fundefs;
  env.cur_fun <- Some fd.fname;
  push_scope env fd.fname;
  (* bind parameters; each takes its value from the standardized arg var *)
  List.iteri
    (fun i p ->
      (* the standardized variable exists even for unnamed parameters, so
         the function's object-file record is complete *)
      let av = arg_var env ~loc fd.fname (i + 1) in
      match p.pname with
      | Some name ->
          let pv = declare env ~loc name p.ptyp Sauto in
          emit env (Prim.copy ~loc pv av)
      | None -> ())
    fd.fparams;
  (* a variadic function owns a varargs bucket f@..., filled by direct
     callers past the fixed arity and read through va_arg *)
  if fd.fvariadic then ignore (arg_var env ~loc fd.fname 0);
  (* make sure the return variable exists even for void functions *)
  ignore (ret_var env ~loc fd.fname);
  List.iter (stmt env) fd.fbody;
  pop_scope env;
  env.cur_fun <- None

(** Record a function's interface — prototype, standardized arg/ret
    variables — without normalizing its body or emitting a definition
    record.  Models deleting the definition from an otherwise-complete
    program: the linker then sees a declared-but-undefined function. *)
let fundef_drop env (fd : fundef) =
  let loc = fd.floc in
  Hashtbl.replace env.funcs fd.fname (Tfun (fd.freturn, fd.fparams, fd.fvariadic));
  if fd.fstorage = Sstatic then Hashtbl.replace env.static_funcs fd.fname ();
  List.iteri (fun i _ -> ignore (arg_var env ~loc fd.fname (i + 1))) fd.fparams;
  if fd.fvariadic then ignore (arg_var env ~loc fd.fname 0);
  ignore (ret_var env ~loc fd.fname)

(** Normalize a parsed translation unit into primitive form.
    [drop_bodies name] suppresses the body (and definition record) of
    function [name], leaving only its declared interface. *)
let run ?(mode = Field_based) ?(drop_bodies = fun _ -> false)
    (parsed : Cparser.result) : Prog.t =
  let tu = parsed.Cparser.tunit in
  let comps = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace comps c.ctag c) tu.comps;
  let enum_consts = Hashtbl.create 64 in
  List.iter
    (fun (_, items) -> List.iter (fun (n, _) -> Hashtbl.replace enum_consts n ()) items)
    tu.enums;
  let env_ref = ref None in
  let lookup name =
    match !env_ref with Some env -> lookup_type env name | None -> None
  in
  let tenv =
    { Typechk.comps; typedefs = parsed.Cparser.typedefs; lookup }
  in
  let env =
    {
      vt = Vartab.create ();
      mode;
      tenv;
      enum_consts;
      funcs = Hashtbl.create 64;
      static_funcs = Hashtbl.create 16;
      scopes = [ { sname = ""; bindings = Hashtbl.create 64 } ];
      cur_fun = None;
      block_id = 0;
      assigns = [];
      fundefs = [];
      indirects = [];
      heap_count = 0;
      consts = [];
      file = tu.file;
    }
  in
  env_ref := Some env;
  (* Field-based mode generates "a new variable for each field f of a
     struct definition" (Section 6) — intern them at their definition
     site, before any use. *)
  if mode = Field_based then
    List.iter
      (fun (c : compdef) ->
        List.iter
          (fun (fname, ftyp) ->
            ignore (field_var env ~loc:c.cloc (Some c.ctag) fname (Some ftyp)))
          c.cfields)
      tu.comps;
  List.iter
    (function
      | Tdecl ds -> List.iter (top_decl env) ds
      | Tfundef fd ->
          if drop_bodies fd.fname then fundef_drop env fd else fundef env fd)
    tu.tops;
  {
    Prog.file = tu.file;
    assigns = List.rev env.assigns;
    fundefs = List.rev env.fundefs;
    indirects = List.rev env.indirects;
    vars = Vartab.to_array env.vt;
    consts = List.rev env.consts;
  }
