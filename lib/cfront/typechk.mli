(** Best-effort type synthesis for expressions.

    Field-based mode needs to know {e which} struct's field an access
    [e.f] / [e->f] goes through ("the same field of the same struct
    type", Section 2), and the normalizer must distinguish arrays
    (index-independent objects) from pointers (dereferenced).  Synthesis
    is purely syntactic; failure degrades gracefully to a per-name
    wildcard composite. *)

open Cast

type env = {
  comps : (string, compdef) Hashtbl.t;  (** struct/union tag -> definition *)
  typedefs : (string, typ) Hashtbl.t;
  lookup : string -> typ option;  (** visible object types, scope-aware *)
}

(** Unroll typedef indirections. *)
val resolve : env -> typ -> typ

val field_type : env -> string -> string -> typ option

(** Tag of the composite a type denotes, after resolution. *)
val comp_tag : env -> typ -> string option

val typeof : env -> expr -> typ option

(** Tag of the struct/union that [e.f] (resp. [e->f]) accesses. *)
val member_tag : env -> expr -> string option

val arrow_tag : env -> expr -> string option
val is_array : env -> typ -> bool
val is_function : env -> typ -> bool

(** Does dereferencing a value of type [t] in call position denote a
    function?  True for function types and pointers to functions, false
    for pointers to function pointers (where [*e] is a genuine load). *)
val is_function_pointer : env -> typ -> bool
