(** Normalization: C AST -> primitive assignments (the analysis half of
    the compile phase, Section 4 of the paper).

    Every expression is walked flow-insensitively; complex assignments are
    broken into the five primitive kinds through temporaries; operations
    are recorded on the copies they give rise to; functions get
    standardized argument/return variables; each static occurrence of an
    allocation primitive becomes a fresh heap location; constant strings
    are ignored; arrays are index-independent. *)

open Cla_ir

(** How struct field accesses map to objects (Section 3): [Field_based]
    (the paper's choice) gives every field of every struct definition its
    own object shared across instances; [Field_independent] treats an
    access to [x.f] as an access to the whole chunk [x]. *)
type mode = Field_based | Field_independent

(** Normalize a parsed translation unit into primitive form.
    [drop_bodies name] (default: never) suppresses the body and
    definition record of function [name], keeping only its declared
    interface — the building block of open-world deletion testing. *)
val run :
  ?mode:mode -> ?drop_bodies:(string -> bool) -> Cparser.result -> Prog.t
