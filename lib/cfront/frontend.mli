(** Convenience entry points: preprocess + parse + normalize in one
    call.  (The compile phase proper, which also serializes to an object
    file, lives in [Cla_core.Compilep].) *)

open Cla_ir

type options = {
  mode : Normalize.mode;
  include_dirs : string list;
  defines : (string * string) list;
  virtual_fs : (string * string) list;  (** in-memory headers, for tests *)
  drop_bodies : string -> bool;
      (** suppress these function bodies, keeping declared interfaces *)
}

val default_options : options

(** Compile C source text to primitive form. *)
val prog_of_string : ?options:options -> file:string -> string -> Prog.t

(** Compile a C file from disk to primitive form. *)
val prog_of_file : ?options:options -> string -> Prog.t
