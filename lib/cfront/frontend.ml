(** Convenience entry points: preprocess + parse + normalize in one call. *)

open Cla_ir

type options = {
  mode : Normalize.mode;
  include_dirs : string list;
  defines : (string * string) list;
  virtual_fs : (string * string) list;  (** in-memory headers, for tests *)
  drop_bodies : string -> bool;
      (** suppress these function bodies, keeping declared interfaces *)
}

let default_options =
  {
    mode = Normalize.Field_based;
    include_dirs = [];
    defines = [];
    virtual_fs = [];
    drop_bodies = (fun _ -> false);
  }

(** Compile C source text to primitive form. *)
let prog_of_string ?(options = default_options) ~file source : Prog.t =
  let preprocessed =
    Cpp.preprocess_string ~include_dirs:options.include_dirs
      ~virtual_fs:options.virtual_fs ~defines:options.defines ~file source
  in
  let parsed = Cparser.parse_string ~file preprocessed in
  Normalize.run ~mode:options.mode ~drop_bodies:options.drop_bodies parsed

(** Compile a C file from disk to primitive form. *)
let prog_of_file ?(options = default_options) path : Prog.t =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  prog_of_string ~options ~file:path source
