(** Nestable named timers over the compile-link-analyze pipeline.

    A span records wall time ([Unix.gettimeofday]), user CPU time
    ([Unix.times]) and GC activity ([Gc.quick_stat] minor/major word
    deltas) between its open and close, plus its children in execution
    order.  Completed top-level spans accumulate in a process-wide list
    ({!roots}) that the exporters read.

    Cost discipline: when recording is off (the default), {!with_span} is
    a single mutable-bool load before the thunk — no clock reads, no
    allocation — so instrumented code paths pay effectively nothing
    unless a sink ([--stats], [--stats-json], [--trace], the bench
    harness) has switched recording on.

    Spans are a {e main-domain} narrative: the frame stack and the
    completed-roots list are plain refs, so {!with_span} runs the thunk
    without recording when called from a worker domain (parallel compile
    tasks, sharded solvers).  Parallel phases are measured by the span
    the main domain wraps around the whole fan-out, plus the [par.*]
    metrics, which {e are} domain-safe. *)

type t = {
  name : string;
  label : string option;  (** free-form qualifier (file name, pass number) *)
  start_s : float;  (** wall-clock open time (epoch seconds) *)
  wall_s : float;
  user_s : float;
  gc_minor_words : float;
  gc_major_words : float;
  children : t list;  (** execution order *)
}

type frame = {
  fname : string;
  flabel : string option;
  fstart : float;
  fuser0 : float;
  fminor0 : float;
  fmajor0 : float;
  mutable fchildren : t list;  (* reverse execution order *)
}

let enabled_flag = ref false
let stack : frame list ref = ref []
let completed : t list ref = ref []  (* reverse execution order *)

let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v

let reset () =
  stack := [];
  completed := []

let user_time () = (Unix.times ()).Unix.tms_utime

let with_span ?label name f =
  if (not !enabled_flag) || not (Domain.is_main_domain ()) then f ()
  else begin
    let gc0 = Gc.quick_stat () in
    let fr =
      {
        fname = name;
        flabel = label;
        fstart = Unix.gettimeofday ();
        fuser0 = user_time ();
        fminor0 = gc0.Gc.minor_words;
        fmajor0 = gc0.Gc.major_words;
        fchildren = [];
      }
    in
    stack := fr :: !stack;
    let finish () =
      let gc1 = Gc.quick_stat () in
      let span =
        {
          name = fr.fname;
          label = fr.flabel;
          start_s = fr.fstart;
          wall_s = Unix.gettimeofday () -. fr.fstart;
          user_s = user_time () -. fr.fuser0;
          gc_minor_words = gc1.Gc.minor_words -. fr.fminor0;
          gc_major_words = gc1.Gc.major_words -. fr.fmajor0;
          children = List.rev fr.fchildren;
        }
      in
      (* pop up to and including our frame — tolerates an unbalanced
         stack if an inner span escaped via an exception we didn't see *)
      let rec pop = function
        | f :: rest when f == fr -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack;
      match !stack with
      | parent :: _ -> parent.fchildren <- span :: parent.fchildren
      | [] -> completed := span :: !completed
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let roots () = List.rev !completed

(** First span named [name], depth-first over a span forest. *)
let rec find name = function
  | [] -> None
  | s :: rest ->
      if s.name = name then Some s
      else (
        match find name s.children with
        | Some _ as r -> r
        | None -> find name rest)

(** Total wall time of the top-level spans named [name]. *)
let total_wall name spans =
  List.fold_left
    (fun acc s -> if s.name = name then acc +. s.wall_s else acc)
    0. spans
