(** Fixed-size log-bucketed (HDR-style) histograms for latency
    recording on serving paths.

    A histogram is a constant-size array of buckets whose widths grow
    geometrically: values below {!linear_limit} get exact unit buckets,
    larger values land in one of [2^sub_bits] sub-buckets per power of
    two, bounding the relative quantile error by {!relative_error}
    (~3.1%).  Values are unit-agnostic non-negative integers; the
    serving stack records monotonic nanoseconds.

    Recording is lock-free ([Atomic] bucket counters), so histograms may
    be recorded into concurrently from several domains without loss and
    merged at snapshot time — the cheap-record / merge-on-read shape the
    per-shard server registries rely on. *)

type t

(** Number of buckets every histogram carries. *)
val n_buckets : int

(** Values below this are counted exactly (bucket width 1). *)
val linear_limit : int

(** Upper bound on the relative error of {!quantile} for values at or
    above {!linear_limit} (bucket width / bucket lower bound). *)
val relative_error : float

val create : unit -> t

(** Record one value.  Negative values clamp to 0.  Lock-free and
    domain-safe: concurrent records never lose counts. *)
val record : t -> int -> unit

val count : t -> int

(** Sum of every recorded value (useful for means over raw ns). *)
val total : t -> int

(** Smallest / largest recorded value; 0 when the histogram is empty. *)
val min_value : t -> int

val max_value : t -> int

(** Mean of the recorded values; 0 when empty. *)
val mean : t -> float

(** [quantile t q] estimates the [q]-quantile (0 <= q <= 1) using the
    nearest-rank method: the bucket holding the [ceil (q*n) - 1]-th
    smallest recorded value, reported as that bucket's midpoint — so the
    estimate is exact below {!linear_limit} and within
    {!relative_error} of the true sample quantile above it.  0 when
    empty. *)
val quantile : t -> float -> int

(** Bucket index of a value (monotone in the value) — exposed so tests
    can assert a quantile estimate lands in the same bucket as the exact
    sample quantile. *)
val index : int -> int

(** [bounds i] is the half-open value range [\[lo, hi)] of bucket [i]. *)
val bounds : int -> int * int

(** Non-empty buckets as [(index, count)] pairs, ascending by index. *)
val buckets : t -> (int * int) list

(** A new histogram holding both inputs' observations. *)
val merge : t -> t -> t

(** Fold [src] into [into] (commutative and associative over the
    recorded multiset). *)
val merge_into : into:t -> t -> unit

(** Structural equality of the recorded multisets (bucket-resolution). *)
val equal : t -> t -> bool

(** Summary export: count, min/max/mean, p50/p90/p99/p99.9, and the
    non-empty buckets.  All values in the recording unit. *)
val to_json : t -> Json.t

(** One-line summary ([count=… p50=… p99=… max=…]) for stat tables. *)
val pp : Format.formatter -> t -> unit
