(** The unified metrics registry.

    Every pipeline phase publishes its statistics here under stable dotted
    names ([analyze.pretrans.cache_hits], [load.blocks.in_core], ...), so
    one [--stats] / [--stats-json] export covers the whole run regardless
    of which subcommand produced it.

    A name is bound to exactly one kind of value for the lifetime of a
    registry; re-publishing under the same name with the same kind
    overwrites (phases republish on every run), but publishing a
    different kind under an existing name raises [Invalid_argument] — a
    registry-wide uniqueness guarantee that catches dotted-name typos and
    collisions between subsystems early. *)

type value =
  | Int of int  (** counters and integer gauges *)
  | Float of float  (** float gauges (seconds, ratios) *)
  | Str of string  (** labels (profile names, algorithm names) *)
  | Series of int list  (** observation series, oldest first *)
  | Histo of Histo.t  (** log-bucketed latency histogram *)

let kind_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Series _ -> "series"
  | Histo _ -> "histogram"

(* Series are accumulated newest-first with a length counter so
   [observe] is O(1) — the seed implementation's [l @ [v]] was O(n) per
   observation and grew without bound, which leaks in a long-running
   [cla serve].  A capped series keeps (at least) the [cap] most recent
   observations and compacts lazily at 2*cap, so the bound costs
   amortized O(1) too. *)
type series_acc = {
  mutable sa_rev : int list; (* newest first *)
  mutable sa_len : int;
  mutable sa_cap : int option;
}

type entry = Plain of value | Acc of series_acc

let entry_kind = function
  | Plain v -> kind_name v
  | Acc _ -> kind_name (Series [])

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let materialize = function
  | Plain v -> v
  | Acc a ->
      let rev =
        match a.sa_cap with
        | Some cap when a.sa_len > cap -> take cap a.sa_rev
        | _ -> a.sa_rev
      in
      Series (List.rev rev)

(* The mutex makes a registry safe to publish into from worker domains
   (parallel compile tasks bump [compile.units], sharded solvers publish
   [analyze.*]); contention is negligible next to the work being
   measured.  Hot serving paths avoid even that: they fetch a [Histo]
   handle once via {!histo} and record through its lock-free counters. *)
type t = { tbl : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

(** The process-wide registry the pipeline publishes into. *)
let default = create ()

let locked reg f =
  Mutex.lock reg.lock;
  match f () with
  | v ->
      Mutex.unlock reg.lock;
      v
  | exception e ->
      Mutex.unlock reg.lock;
      raise e

let same_kind a b =
  match (a, b) with
  | Int _, Int _ | Float _, Float _ | Str _, Str _ | Series _, Series _
  | Histo _, Histo _ ->
      true
  | _ -> false

let put reg name v =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some old when not (same_kind (materialize old) v) ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot rebind as %s"
           name (entry_kind old) (kind_name v))
  | _ -> Hashtbl.replace reg.tbl name (Plain v)

let set ?(reg = default) name v = put reg name (Int v)
let setf ?(reg = default) name v = put reg name (Float v)
let set_str ?(reg = default) name v = put reg name (Str v)
let set_series ?(reg = default) name v = put reg name (Series v)

let incr ?(reg = default) ?(by = 1) name =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | None -> Hashtbl.replace reg.tbl name (Plain (Int by))
  | Some (Plain (Int v)) -> Hashtbl.replace reg.tbl name (Plain (Int (v + by)))
  | Some old ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot incr" name
           (entry_kind old))

(** Append one observation to a series (creating it if absent).  Series
    are kept oldest-first.  [cap], when given, bounds the series to its
    most recent [cap] observations (and sticks for later uncapped
    observes) — serve-path series must pass it, or a long-running server
    accumulates forever. *)
let observe ?(reg = default) ?cap name v =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | None ->
      Hashtbl.replace reg.tbl name
        (Acc { sa_rev = [ v ]; sa_len = 1; sa_cap = cap })
  | Some (Acc a) ->
      (match cap with Some _ -> a.sa_cap <- cap | None -> ());
      a.sa_rev <- v :: a.sa_rev;
      a.sa_len <- a.sa_len + 1;
      (match a.sa_cap with
      | Some c when a.sa_len >= 2 * c && c > 0 ->
          a.sa_rev <- take c a.sa_rev;
          a.sa_len <- c
      | _ -> ())
  | Some (Plain (Series l)) ->
      (* a series published whole via [set_series] keeps accumulating *)
      Hashtbl.replace reg.tbl name
        (Acc { sa_rev = v :: List.rev l; sa_len = List.length l + 1; sa_cap = cap })
  | Some old ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot observe" name
           (entry_kind old))

(** The histogram registered under [name], created on first use — fetch
    the handle once and record through it: {!Histo.record} is lock-free,
    so the registry mutex is never touched on the recording path. *)
let histo ?(reg = default) name =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some (Plain (Histo h)) -> h
  | None ->
      let h = Histo.create () in
      Hashtbl.replace reg.tbl name (Plain (Histo h));
      h
  | Some old ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot use as histogram"
           name (entry_kind old))

let find ?(reg = default) name =
  locked reg @@ fun () ->
  Option.map materialize (Hashtbl.find_opt reg.tbl name)

let get_int ?(reg = default) name =
  match find ~reg name with Some (Int v) -> Some v | _ -> None

let get_series ?(reg = default) name =
  match find ~reg name with Some (Series l) -> Some l | _ -> None

let get_histo ?(reg = default) name =
  match find ~reg name with Some (Histo h) -> Some h | _ -> None

(** All metrics, sorted by name — the stable export order. *)
let snapshot ?(reg = default) () =
  locked reg (fun () ->
      Hashtbl.fold (fun k v acc -> (k, materialize v) :: acc) reg.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Fold every metric of [src] into [into] (used to merge per-shard
    server registries at snapshot time): [Int]s add, [Float]s add,
    [Series] concatenate (src appended), [Histo]s merge, [Str] keeps
    [into]'s binding when both exist.  Same-name kind mismatches raise
    [Invalid_argument], like every other registry operation. *)
let merge_into ~into src =
  let entries = snapshot ~reg:src () in
  List.iter
    (fun (name, v) ->
      locked into @@ fun () ->
      match (Hashtbl.find_opt into.tbl name, v) with
      | None, Histo h ->
          (* never share the live histogram: [into] gets its own copy *)
          let fresh = Histo.create () in
          Histo.merge_into ~into:fresh h;
          Hashtbl.replace into.tbl name (Plain (Histo fresh))
      | None, v -> Hashtbl.replace into.tbl name (Plain v)
      | Some old, v -> (
          match (materialize old, v) with
          | Int a, Int b -> Hashtbl.replace into.tbl name (Plain (Int (a + b)))
          | Float a, Float b ->
              Hashtbl.replace into.tbl name (Plain (Float (a +. b)))
          | Str _, Str _ -> ()
          | Series a, Series b ->
              Hashtbl.replace into.tbl name (Plain (Series (a @ b)))
          | Histo a, Histo b -> Histo.merge_into ~into:a b
          | old_v, v ->
              invalid_arg
                (Printf.sprintf
                   "Metrics.merge_into: %S is a %s metric in the target, \
                    cannot merge a %s"
                   name (kind_name old_v) (kind_name v))))
    entries

let reset ?(reg = default) () = locked reg @@ fun () -> Hashtbl.reset reg.tbl
