(** The unified metrics registry.

    Every pipeline phase publishes its statistics here under stable dotted
    names ([analyze.pretrans.cache_hits], [load.blocks.in_core], ...), so
    one [--stats] / [--stats-json] export covers the whole run regardless
    of which subcommand produced it.

    A name is bound to exactly one kind of value for the lifetime of a
    registry; re-publishing under the same name with the same kind
    overwrites (phases republish on every run), but publishing a
    different kind under an existing name raises [Invalid_argument] — a
    registry-wide uniqueness guarantee that catches dotted-name typos and
    collisions between subsystems early. *)

type value =
  | Int of int  (** counters and integer gauges *)
  | Float of float  (** float gauges (seconds, ratios) *)
  | Str of string  (** labels (profile names, algorithm names) *)
  | Series of int list  (** per-pass counter series, oldest first *)

let kind_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Series _ -> "series"

(* The mutex makes a registry safe to publish into from worker domains
   (parallel compile tasks bump [compile.units], sharded solvers publish
   [analyze.*]); contention is negligible next to the work being
   measured. *)
type t = { tbl : (string, value) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

(** The process-wide registry the pipeline publishes into. *)
let default = create ()

let locked reg f =
  Mutex.lock reg.lock;
  match f () with
  | v ->
      Mutex.unlock reg.lock;
      v
  | exception e ->
      Mutex.unlock reg.lock;
      raise e

let same_kind a b =
  match (a, b) with
  | Int _, Int _ | Float _, Float _ | Str _, Str _ | Series _, Series _ ->
      true
  | _ -> false

let put reg name v =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some old when not (same_kind old v) ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot rebind as %s"
           name (kind_name old) (kind_name v))
  | _ -> Hashtbl.replace reg.tbl name v

let set ?(reg = default) name v = put reg name (Int v)
let setf ?(reg = default) name v = put reg name (Float v)
let set_str ?(reg = default) name v = put reg name (Str v)
let set_series ?(reg = default) name v = put reg name (Series v)

let incr ?(reg = default) ?(by = 1) name =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | None -> Hashtbl.replace reg.tbl name (Int by)
  | Some (Int v) -> Hashtbl.replace reg.tbl name (Int (v + by))
  | Some old ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot incr" name
           (kind_name old))

(** Append one observation to a series (creating it if absent).  Series
    are kept oldest-first. *)
let observe ?(reg = default) name v =
  locked reg @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | None -> Hashtbl.replace reg.tbl name (Series [ v ])
  | Some (Series l) -> Hashtbl.replace reg.tbl name (Series (l @ [ v ]))
  | Some old ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s metric, cannot observe" name
           (kind_name old))

let find ?(reg = default) name =
  locked reg @@ fun () -> Hashtbl.find_opt reg.tbl name

let get_int ?(reg = default) name =
  match find ~reg name with Some (Int v) -> Some v | _ -> None

let get_series ?(reg = default) name =
  match find ~reg name with Some (Series l) -> Some l | _ -> None

(** All metrics, sorted by name — the stable export order. *)
let snapshot ?(reg = default) () =
  locked reg (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset ?(reg = default) () = locked reg @@ fun () -> Hashtbl.reset reg.tbl
