(** Minimal JSON values for the observability exports ([--stats-json],
    [--trace], [BENCH_pipeline.json]) — emit and parse, no external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Render to a string.  [indent] (default [true]) pretty-prints with two
    spaces per level.  Non-finite floats are emitted as [null]. *)
val to_string : ?indent:bool -> t -> string

(** Write [to_string] plus a trailing newline to [path]. *)
val write_file : string -> t -> unit

(** Parse a complete JSON document.  Numbers with a ['.'] or exponent
    become [Float], others [Int].  Raises {!Parse_error}. *)
val of_string : string -> t

(** Field lookup on [Obj]; [None] on other values or missing keys. *)
val member : string -> t -> t option

val to_int : t -> int option

(** [Int] values coerce to float. *)
val to_float : t -> float option

(** Structural equality, with tolerance for float round-tripping. *)
val equal : t -> t -> bool
