(** Export: the registry plus the span tree, as a human-readable table
    ([--stats]) or a machine-readable JSON document ([--stats-json]). *)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let metric_json : Metrics.value -> Json.t = function
  | Metrics.Int v -> Json.Int v
  | Metrics.Float v -> Json.Float v
  | Metrics.Str v -> Json.Str v
  | Metrics.Series l -> Json.Arr (List.map (fun v -> Json.Int v) l)
  | Metrics.Histo h -> Histo.to_json h

let rec span_json (s : Span.t) : Json.t =
  Json.Obj
    ((match s.Span.label with
     | Some l -> [ ("label", Json.Str l) ]
     | None -> [])
    @ [
        ("name", Json.Str s.Span.name);
        ("wall_s", Json.Float s.Span.wall_s);
        ("user_s", Json.Float s.Span.user_s);
        ("gc_minor_words", Json.Float s.Span.gc_minor_words);
        ("gc_major_words", Json.Float s.Span.gc_major_words);
        ("children", Json.Arr (List.map span_json s.Span.children));
      ])

(** The full export: [{"metrics": {...}, "spans": [...]}], metrics sorted
    by name, spans in execution order. *)
let to_json ?reg () : Json.t =
  Json.Obj
    [
      ( "metrics",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, metric_json v))
             (Metrics.snapshot ?reg ())) );
      ("spans", Json.Arr (List.map span_json (Span.roots ())));
    ]

let write_json ?reg path = Json.write_file path (to_json ?reg ())

(* ------------------------------------------------------------------ *)
(* Human table                                                         *)
(* ------------------------------------------------------------------ *)

let pp_value ppf : Metrics.value -> unit = function
  | Metrics.Int v -> Fmt.int ppf v
  | Metrics.Float v -> Fmt.pf ppf "%.6g" v
  | Metrics.Str v -> Fmt.string ppf v
  | Metrics.Series l ->
      Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") int) l
  | Metrics.Histo h -> Histo.pp ppf h

let rec pp_span depth ppf (s : Span.t) =
  Fmt.pf ppf "%s%-*s %8.3fs wall %8.3fs user %10.0f minor w %10.0f major w%s@."
    (String.make (2 * depth) ' ')
    (max 1 (24 - (2 * depth)))
    s.Span.name s.Span.wall_s s.Span.user_s s.Span.gc_minor_words
    s.Span.gc_major_words
    (match s.Span.label with Some l -> " (" ^ l ^ ")" | None -> "");
  List.iter (pp_span (depth + 1) ppf) s.Span.children

let pp_table ?reg ppf () =
  let spans = Span.roots () in
  if spans <> [] then begin
    Fmt.pf ppf "spans:@.";
    List.iter (pp_span 1 ppf) spans
  end;
  let metrics = Metrics.snapshot ?reg () in
  if metrics <> [] then begin
    Fmt.pf ppf "metrics:@.";
    List.iter
      (fun (k, v) -> Fmt.pf ppf "  %-36s %a@." k pp_value v)
      metrics
  end
