(** Chrome [trace_event] export: turn a span forest into a JSON document
    loadable by [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Each span becomes one complete event ([ph = "X"]) with microsecond
    timestamps relative to the earliest root span; GC word deltas and the
    optional label ride along in [args]. *)

let rec events ?(tid = 1) t0 (s : Span.t) acc =
  let args =
    (match s.Span.label with
    | Some l -> [ ("label", Json.Str l) ]
    | None -> [])
    @ [
        ("user_s", Json.Float s.Span.user_s);
        ("gc_minor_words", Json.Float s.Span.gc_minor_words);
        ("gc_major_words", Json.Float s.Span.gc_major_words);
      ]
  in
  let ev =
    Json.Obj
      [
        ("name", Json.Str s.Span.name);
        ("cat", Json.Str "cla");
        ("ph", Json.Str "X");
        ("ts", Json.Float ((s.Span.start_s -. t0) *. 1e6));
        ("dur", Json.Float (s.Span.wall_s *. 1e6));
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  List.fold_left (fun acc c -> events ~tid t0 c acc) (ev :: acc) s.Span.children

let to_json (spans : Span.t list) : Json.t =
  let t0 =
    List.fold_left
      (fun acc (s : Span.t) -> Float.min acc s.Span.start_s)
      Float.infinity spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let evs = List.fold_left (fun acc s -> events t0 s acc) [] spans in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write path spans = Json.write_file path (to_json spans)

(* Serving traces are lane-addressed: one Chrome thread row per shard, so
   the per-shard interleaving of queries is visible at a glance. *)
let to_json_lanes (spans : (int * Span.t) list) : Json.t =
  let t0 =
    List.fold_left
      (fun acc (_, (s : Span.t)) -> Float.min acc s.Span.start_s)
      Float.infinity spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let evs =
    List.fold_left (fun acc (lane, s) -> events ~tid:lane t0 s acc) [] spans
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_lanes path spans = Json.write_file path (to_json_lanes spans)
