(** Fixed-size log-bucketed (HDR-style) histograms.

    Layout: values in [0, linear_limit) get one bucket each; every
    larger power-of-two octave [2^m, 2^(m+1)) is split into [sub]
    equal sub-buckets, so bucket width / lower bound <= 1/sub — the
    relative-error bound on quantile estimates.  The index function is
    monotone in the value, which is what lets tests compare a quantile
    estimate against an exact sorted-sample oracle bucket-for-bucket.

    Counters are [Atomic.t], so [record] is lock-free: several domains
    (server shards) and several systhreads within a domain (connection
    handlers) can record into one histogram with no mutex and no lost
    updates; readers pay the aggregation cost at snapshot time. *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 sub-buckets per octave *)
let linear_limit = sub
let relative_error = 1.0 /. float_of_int sub

(* Octaves m = sub_bits .. 62 cover every non-negative OCaml int. *)
let n_buckets = sub + ((62 - sub_bits + 1) * sub)

type t = {
  counts : int Atomic.t array;
  count : int Atomic.t;
  total : int Atomic.t;
  min_v : int Atomic.t; (* max_int when empty *)
  max_v : int Atomic.t; (* -1 when empty *)
}

let create () =
  {
    counts = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    total = Atomic.make 0;
    min_v = Atomic.make max_int;
    max_v = Atomic.make (-1);
  }

(* Position of the highest set bit of [v > 0]. *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let index v =
  let v = if v < 0 then 0 else v in
  if v < linear_limit then v
  else
    let m = msb v in
    (* sub-bucket within the octave: the sub_bits bits below the msb *)
    let j = (v lsr (m - sub_bits)) - sub in
    sub + (((m - sub_bits) * sub) + j)

let bounds i =
  if i < linear_limit then (i, i + 1)
  else
    let o = (i - sub) / sub and j = (i - sub) mod sub in
    let step = 1 lsl o in
    let lo = (sub + j) * step in
    (lo, lo + step)

(* Saturating CAS loops for the extrema; uncontended in practice. *)
let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let record t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.counts.(index v) 1);
  ignore (Atomic.fetch_and_add t.count 1);
  ignore (Atomic.fetch_and_add t.total v);
  atomic_min t.min_v v;
  atomic_max t.max_v v

let count t = Atomic.get t.count
let total t = Atomic.get t.total
let min_value t = if count t = 0 then 0 else Atomic.get t.min_v
let max_value t = if count t = 0 then 0 else Atomic.get t.max_v

let mean t =
  let n = count t in
  if n = 0 then 0. else float_of_int (total t) /. float_of_int n

(* Midpoint of bucket [i], clamped to the recorded extrema so estimates
   never fall outside the observed range. *)
let bucket_estimate t i =
  let lo, hi = bounds i in
  let mid = (lo + hi - 1) / 2 in
  let mid = if mid < Atomic.get t.min_v then Atomic.get t.min_v else mid in
  if Atomic.get t.max_v >= 0 && mid > Atomic.get t.max_v then
    Atomic.get t.max_v
  else mid

let quantile t q =
  let n = count t in
  if n = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    (* nearest-rank: 0-based index of the target observation *)
    let rank =
      let r = int_of_float (ceil (q *. float_of_int n)) - 1 in
      if r < 0 then 0 else if r >= n then n - 1 else r
    in
    let cum = ref 0 and i = ref 0 and found = ref (n_buckets - 1) in
    (try
       while !i < n_buckets do
         cum := !cum + Atomic.get t.counts.(!i);
         if !cum > rank then begin
           found := !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    bucket_estimate t !found
  end

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Atomic.get t.counts.(i) in
    if c > 0 then acc := (i, c) :: !acc
  done;
  !acc

let merge_into ~into src =
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n > 0 then ignore (Atomic.fetch_and_add into.counts.(i) n))
    src.counts;
  ignore (Atomic.fetch_and_add into.count (count src));
  ignore (Atomic.fetch_and_add into.total (total src));
  atomic_min into.min_v (Atomic.get src.min_v);
  atomic_max into.max_v (Atomic.get src.max_v)

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let equal a b =
  count a = count b && total a = total b
  && min_value a = min_value b
  && max_value a = max_value b
  && buckets a = buckets b

let to_json t =
  Json.Obj
    [
      ("count", Json.Int (count t));
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (quantile t 0.5));
      ("p90", Json.Int (quantile t 0.9));
      ("p99", Json.Int (quantile t 0.99));
      ("p999", Json.Int (quantile t 0.999));
      ( "buckets",
        Json.Arr
          (List.map
             (fun (i, c) -> Json.Arr [ Json.Int i; Json.Int c ])
             (buckets t)) );
    ]

let pp ppf t =
  if count t = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "count=%d p50=%d p90=%d p99=%d max=%d" (count t)
      (quantile t 0.5) (quantile t 0.9) (quantile t 0.99) (max_value t)
