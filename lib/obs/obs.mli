(** Façade over the observability layer: span recording on/off, combined
    reset, and the {!with_span} timer used throughout the pipeline.  When
    recording is off (the default) {!with_span} costs one boolean load. *)

(** Start recording spans. *)
val enable : unit -> unit

(** Stop recording spans (already-recorded spans are kept). *)
val disable : unit -> unit

val enabled : unit -> bool

(** Drop recorded spans and clear the default metrics registry. *)
val reset : unit -> unit

(** [with_span name f] runs [f], recording a nested span when enabled.
    Exceptions propagate; the span still closes. *)
val with_span : ?label:string -> string -> (unit -> 'a) -> 'a
