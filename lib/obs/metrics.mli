(** The unified metrics registry: every pipeline phase publishes its
    statistics under stable dotted names ([analyze.pretrans.cache_hits],
    [load.blocks.in_core], ...), so one [--stats] / [--stats-json] export
    covers the whole run.

    A name is bound to exactly one kind of value per registry;
    re-publishing with the same kind overwrites, a different kind raises
    [Invalid_argument] (catches dotted-name collisions early).

    Every operation is protected by a per-registry mutex, so worker
    domains (parallel compile tasks, sharded solver replicas) may
    publish into the same registry as the main domain.  Hot serving
    paths sidestep even that: {!histo} hands out a lock-free
    {!Histo.t} handle once, and recording through it never touches the
    registry mutex. *)

type value =
  | Int of int  (** counters and integer gauges *)
  | Float of float  (** float gauges (seconds, ratios) *)
  | Str of string  (** labels (profile names, algorithm names) *)
  | Series of int list  (** per-pass counter series, oldest first *)
  | Histo of Histo.t  (** log-bucketed latency histogram *)

type t

val create : unit -> t

(** The process-wide registry the pipeline publishes into; all functions
    default to it. *)
val default : t

val set : ?reg:t -> string -> int -> unit
val setf : ?reg:t -> string -> float -> unit
val set_str : ?reg:t -> string -> string -> unit
val set_series : ?reg:t -> string -> int list -> unit

(** Add [by] (default 1) to an [Int] metric, creating it at [by]. *)
val incr : ?reg:t -> ?by:int -> string -> unit

(** Append one observation to a [Series] metric, creating it if absent.
    [observe] is O(1) amortized regardless of series length.  [cap],
    when given, bounds the series to its most recent [cap] observations
    (the bound sticks for later uncapped observes on the same name) —
    series fed from a long-running server must pass it or they grow
    without bound. *)
val observe : ?reg:t -> ?cap:int -> string -> int -> unit

(** [histo name] is the histogram registered under [name], created on
    first use.  Fetch the handle once and record through it —
    {!Histo.record} is lock-free, so the registry mutex is never touched
    on the recording path.  Raises [Invalid_argument] if [name] is bound
    to a different kind. *)
val histo : ?reg:t -> string -> Histo.t

val find : ?reg:t -> string -> value option
val get_int : ?reg:t -> string -> int option
val get_series : ?reg:t -> string -> int list option
val get_histo : ?reg:t -> string -> Histo.t option

(** All metrics, sorted by name — the stable export order. *)
val snapshot : ?reg:t -> unit -> (string * value) list

(** [merge_into ~into src] folds every metric of [src] into [into]:
    [Int]/[Float] add, [Series] concatenate, [Histo]s merge (into a
    private copy, never sharing [src]'s live counters), [Str] keeps the
    target's binding.  Used to aggregate per-shard server registries at
    snapshot time.  Raises [Invalid_argument] on a same-name kind
    mismatch. *)
val merge_into : into:t -> t -> unit

val reset : ?reg:t -> unit -> unit
