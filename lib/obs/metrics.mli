(** The unified metrics registry: every pipeline phase publishes its
    statistics under stable dotted names ([analyze.pretrans.cache_hits],
    [load.blocks.in_core], ...), so one [--stats] / [--stats-json] export
    covers the whole run.

    A name is bound to exactly one kind of value per registry;
    re-publishing with the same kind overwrites, a different kind raises
    [Invalid_argument] (catches dotted-name collisions early).

    Every operation is protected by a per-registry mutex, so worker
    domains (parallel compile tasks, sharded solver replicas) may
    publish into the same registry as the main domain. *)

type value =
  | Int of int  (** counters and integer gauges *)
  | Float of float  (** float gauges (seconds, ratios) *)
  | Str of string  (** labels (profile names, algorithm names) *)
  | Series of int list  (** per-pass counter series, oldest first *)

type t

val create : unit -> t

(** The process-wide registry the pipeline publishes into; all functions
    default to it. *)
val default : t

val set : ?reg:t -> string -> int -> unit
val setf : ?reg:t -> string -> float -> unit
val set_str : ?reg:t -> string -> string -> unit
val set_series : ?reg:t -> string -> int list -> unit

(** Add [by] (default 1) to an [Int] metric, creating it at [by]. *)
val incr : ?reg:t -> ?by:int -> string -> unit

(** Append one observation to a [Series] metric, creating it if absent. *)
val observe : ?reg:t -> string -> int -> unit

val find : ?reg:t -> string -> value option
val get_int : ?reg:t -> string -> int option
val get_series : ?reg:t -> string -> int list option

(** All metrics, sorted by name — the stable export order. *)
val snapshot : ?reg:t -> unit -> (string * value) list

val reset : ?reg:t -> unit -> unit
