(** Chrome [trace_event] export: a span forest as a JSON document
    loadable by [chrome://tracing] or Perfetto.  Each span becomes one
    complete event ([ph = "X"]) with microsecond timestamps relative to
    the earliest root span. *)

val to_json : Span.t list -> Json.t

(** Write the trace document (plus trailing newline) to [path]. *)
val write : string -> Span.t list -> unit

(** Lane-addressed variant for serving traces: each [(lane, span)] pair
    renders on Chrome thread row [lane] (one row per server shard). *)
val to_json_lanes : (int * Span.t) list -> Json.t

val write_lanes : string -> (int * Span.t) list -> unit
