(** Work-stealing domain pool.  See the interface for the contract.

    Shape: [width] lanes, each a mutex-guarded ring deque of chunk
    closures.  Lanes [1 .. width-1] are owned by parked worker domains;
    lane 0 belongs to whichever domain submits a batch.  A batch is
    split into at most [chunks_per_lane * width] contiguous chunks and
    dealt round-robin across the lanes; an owner drains its own lane in
    deal order, an idle lane steals the oldest chunk from a busy
    victim.  Between
    batches the workers park on one condition variable, so an idle pool
    costs no CPU and a process keeps one pool alive across runs instead
    of paying [width - 1] domain spawns per batch ({!shared}).

    Each {!map} batch carries its own completion latch and its own
    {!Cla_resilience.Cancel} token, so concurrent submitters may share
    the pool.  Task closures never let an exception escape into a
    worker: failures are recorded per index and the lowest-indexed one
    is re-raised by the caller once the batch settles, so the observed
    error does not depend on scheduling. *)

module Cancel = Cla_resilience.Cancel
module Progress = Cla_resilience.Progress
module Deadline = Cla_resilience.Deadline
module Metrics = Cla_obs.Metrics

(* A queued chunk: the closure plus its enqueue timestamp, feeding the
   [par.queue_wait_us] histogram when the chunk starts running. *)
type job = { jrun : unit -> unit; jenq_ns : int }

let dummy_job = { jrun = ignore; jenq_ns = 0 }

(* Mutex-guarded ring deque.  Both the owner and a thief take from the
   head — oldest chunk first.  FIFO at both ends keeps the global start
   order close to submission order, which is what lets a batch cancel
   propagate {e forward} (a token set while processing item [k] skips
   items after [k], as with v1's single shared FIFO) — a map batch has
   no recursive-spawn locality to justify owner-LIFO.  Per-lane mutexes
   keep contention local: a push, take or steal touches one lane, never
   a global queue lock. *)
type deque = {
  dm : Mutex.t;
  mutable arr : job array;
  mutable head : int;  (* index of the oldest job *)
  mutable len : int;
}

let deque_create () = { dm = Mutex.create (); arr = Array.make 8 dummy_job; head = 0; len = 0 }

let deque_grow d =
  let cap = Array.length d.arr in
  let arr' = Array.make (2 * cap) dummy_job in
  for i = 0 to d.len - 1 do
    arr'.(i) <- d.arr.((d.head + i) mod cap)
  done;
  d.arr <- arr';
  d.head <- 0

let deque_push d j =
  Mutex.lock d.dm;
  if d.len = Array.length d.arr then deque_grow d;
  d.arr.((d.head + d.len) mod Array.length d.arr) <- j;
  d.len <- d.len + 1;
  Mutex.unlock d.dm

(* Take the oldest chunk (owner take and thief steal alike). *)
let deque_take d =
  Mutex.lock d.dm;
  let r =
    if d.len = 0 then None
    else begin
      let j = d.arr.(d.head) in
      d.arr.(d.head) <- dummy_job;
      d.head <- (d.head + 1) mod Array.length d.arr;
      d.len <- d.len - 1;
      Some j
    end
  in
  Mutex.unlock d.dm;
  r

(* Per-lane telemetry, written by the lane's owner (or, for [steals],
   the stealing lane).  Read racily at publish time — monotonic int
   counters, a stale read is at worst one chunk behind. *)
type ltel = {
  mutable busy_ns : int;  (* wall time spent running chunks *)
  mutable idle_ns : int;  (* wall time parked on the condition *)
  mutable steals : int;  (* chunks this lane stole from a peer *)
}

type t = {
  width : int;
  m : Mutex.t;  (* parking lot: guards [closing] and the condition *)
  c : Condition.t;  (* signalled on enqueue and on shutdown *)
  mutable closing : bool;
  pending : int Atomic.t;  (* chunks enqueued and not yet dequeued *)
  lanes : deque array;  (* length [width]; lane 0 = submitters *)
  tel : ltel array;
  qwait : Cla_obs.Histo.t;  (* par.queue_wait_us *)
  next_lane : int Atomic.t;  (* round-robin deal cursor *)
  mutable workers : unit Domain.t list;
}

let jobs t = t.width

(* Upper clamp: a pool wider than any plausible machine is a config
   error, not a request we should honour with 10k domains. *)
let max_width = 64

let clamp jobs = if jobs < 1 then 1 else if jobs > max_width then max_width else jobs

(* Auto width: one lane per core, minus one core reserved for the
   process's supervisor/accept systhreads (the serve path runs a 10ms
   supervisor thread; a pool as wide as the machine would starve it). *)
let auto_cap () = max 1 (Domain.recommended_domain_count () - 1)

let resolve_jobs n =
  if n < 0 then
    invalid_arg
      (Printf.sprintf "job count must be >= 0 (got %d; 0 means auto)" n)
  else if n = 0 then auto_cap ()
  else n

(* Take one chunk for lane [i]: own lane first, then sweep the peers
   (stealing their oldest).  Decrements [pending] when a chunk is
   taken. *)
let take_job pool i =
  match deque_take pool.lanes.(i) with
  | Some j ->
      Atomic.decr pool.pending;
      Some j
  | None ->
      let w = pool.width in
      let rec sweep k =
        if k >= w then None
        else
          let v = (i + k) mod w in
          match deque_take pool.lanes.(v) with
          | Some j ->
              Atomic.decr pool.pending;
              pool.tel.(i).steals <- pool.tel.(i).steals + 1;
              Some j
          | None -> sweep (k + 1)
      in
      sweep 1

(* Run one chunk on lane [i], recording queue wait and busy time. *)
let run_job pool i (j : job) =
  let t0 = Deadline.now_ns () in
  Cla_obs.Histo.record pool.qwait ((t0 - j.jenq_ns) / 1000);
  (try j.jrun () with _ -> ());
  pool.tel.(i).busy_ns <- pool.tel.(i).busy_ns + (Deadline.now_ns () - t0)

let rec worker_loop pool i =
  match take_job pool i with
  | Some j ->
      run_job pool i j;
      worker_loop pool i
  | None ->
      (* nothing anywhere: park until an enqueue or shutdown *)
      Mutex.lock pool.m;
      let t0 = Deadline.now_ns () in
      while Atomic.get pool.pending = 0 && not pool.closing do
        Condition.wait pool.c pool.m
      done;
      pool.tel.(i).idle_ns <-
        pool.tel.(i).idle_ns + (Deadline.now_ns () - t0);
      let closing = pool.closing in
      Mutex.unlock pool.m;
      if not closing then worker_loop pool i

let create ~jobs =
  let width = clamp jobs in
  let pool =
    {
      width;
      m = Mutex.create ();
      c = Condition.create ();
      closing = false;
      pending = Atomic.make 0;
      lanes = Array.init width (fun _ -> deque_create ());
      tel = Array.init width (fun _ -> { busy_ns = 0; idle_ns = 0; steals = 0 });
      qwait = Metrics.histo "par.queue_wait_us";
      next_lane = Atomic.make 0;
      workers = [];
    }
  in
  pool.workers <-
    List.init (width - 1)
      (fun k -> Domain.spawn (fun () -> worker_loop pool (k + 1)));
  Metrics.set "par.jobs" width;
  pool

let shutdown pool =
  Mutex.lock pool.m;
  pool.closing <- true;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m;
  let ws = pool.workers in
  pool.workers <- [];
  List.iter Domain.join ws

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* The process-shared pool                                             *)
(* ------------------------------------------------------------------ *)

let shared_mu = Mutex.create ()
let shared_ref : t option ref = ref None

(* Workers parked on a condition variable would keep the process alive
   past [exit]; drain them at exit.  Registered at module init so the
   handler always lands on the main domain — [at_exit] is per-domain in
   OCaml 5, and the first [shared] call may come from a worker or shard
   domain whose exit must not tear the process-wide pool down. *)
let () =
  at_exit (fun () ->
      Mutex.lock shared_mu;
      let p = !shared_ref in
      shared_ref := None;
      Mutex.unlock shared_mu;
      Option.iter shutdown p)

let shared ~jobs =
  let jobs = clamp jobs in
  Mutex.lock shared_mu;
  let p =
    match !shared_ref with
    | Some p when p.width >= jobs -> p
    | narrower ->
        (* widen by replacement; only safe between batches, so callers
           size the pool once up front (CLI -j resolution) *)
        Option.iter shutdown narrower;
        let p = create ~jobs in
        shared_ref := Some p;
        p
  in
  Mutex.unlock shared_mu;
  p

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

(* Per-batch completion latch, counting chunks. *)
type latch = { lm : Mutex.t; lc : Condition.t; mutable remaining : int }

let latch_count_down l =
  Mutex.lock l.lm;
  l.remaining <- l.remaining - 1;
  if l.remaining = 0 then Condition.broadcast l.lc;
  Mutex.unlock l.lm

let latch_wait l =
  Mutex.lock l.lm;
  while l.remaining > 0 do
    Condition.wait l.lc l.lm
  done;
  Mutex.unlock l.lm

(* Deal [jobs] round-robin across the lanes, then wake the workers. *)
let enqueue_jobs pool js =
  List.iter
    (fun j ->
      let lane =
        (Atomic.fetch_and_add pool.next_lane 1) land max_int mod pool.width
      in
      deque_push pool.lanes.(lane) j;
      Atomic.incr pool.pending)
    js;
  Mutex.lock pool.m;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m

(* Publish the pool-level telemetry after a batch: cumulative steal
   count plus per-lane busy/idle wall time as series (one entry per
   lane, lane 0 = submitter). *)
let publish_tel pool =
  let steals = Array.fold_left (fun a l -> a + l.steals) 0 pool.tel in
  Metrics.set "par.steals" steals;
  let us ns = ns / 1000 in
  Metrics.set_series "par.lane.busy_us"
    (Array.to_list (Array.map (fun l -> us l.busy_ns) pool.tel));
  Metrics.set_series "par.lane.idle_us"
    (Array.to_list (Array.map (fun l -> us l.idle_ns) pool.tel));
  Metrics.set_series "par.lane.steals"
    (Array.to_list (Array.map (fun l -> l.steals) pool.tel))

(* Target chunk granularity: a few chunks per lane so a slow chunk can
   be compensated by stealing, but never more chunks than items. *)
let chunks_per_lane = 4

let map_array_token ?cancel pool f (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then begin
    Metrics.incr "par.batches";
    [||]
  end
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let batch = Cancel.create () in
    (* Lowest index with a recorded error so far.  Chunks run in a
       schedule-dependent order, so determinism of the reported error
       cannot lean on FIFO start order the way a single shared queue
       could: instead, item [k] is only skipped once an error {e below}
       [k] exists — every item below the eventual winner always runs,
       so the re-raised error is exactly the lowest-indexed item that
       errors, regardless of scheduling. *)
    let min_err = Atomic.make max_int in
    let record_err k e =
      errors.(k) <- Some e;
      let rec cas_min () =
        let cur = Atomic.get min_err in
        if k < cur && not (Atomic.compare_and_set min_err cur k) then
          cas_min ()
      in
      cas_min ();
      Cancel.set batch
    in
    let ext_set () =
      match cancel with Some c -> Cancel.is_set c | None -> false
    in
    (* skipped items leave both cells empty; the caller raises for the
       whole batch, so a hole is never read as a result *)
    let skip k =
      ext_set ()
      || (Cancel.is_set batch
         &&
         let m = Atomic.get min_err in
         (* manual token set (no error recorded): skip everything;
            error recorded: skip only above it *)
         m = max_int || m < k)
    in
    let nchunks =
      if pool.width = 1 then 1 else min n (pool.width * chunks_per_lane)
    in
    let latch =
      { lm = Mutex.create (); lc = Condition.create (); remaining = nchunks }
    in
    let run_chunk lo hi () =
      (try
         for k = lo to hi - 1 do
           if not (skip k) then
             match f batch xs.(k) with
             | v -> results.(k) <- Some v
             | exception e -> record_err k e
         done
       with e ->
         (* belt and braces: [f] raising is handled per item above;
            this catches a bug in the loop itself *)
         if errors.(lo) = None then record_err lo e);
      latch_count_down latch
    in
    let base = n / nchunks and rem = n mod nchunks in
    let js = ref [] in
    let lo = ref 0 in
    for c = 0 to nchunks - 1 do
      let size = base + if c < rem then 1 else 0 in
      let hi = !lo + size in
      js := { jrun = run_chunk !lo hi; jenq_ns = Deadline.now_ns () } :: !js;
      lo := hi
    done;
    enqueue_jobs pool (List.rev !js);
    (* The submitting domain is a full lane: drain lane 0 (stealing from
       the workers' lanes when it runs dry), then wait for chunks still
       in flight. *)
    let rec drain () =
      match take_job pool 0 with
      | Some j ->
          run_job pool 0 j;
          drain ()
      | None -> ()
    in
    drain ();
    latch_wait latch;
    let errs = ref 0 and skipped = ref 0 in
    Array.iteri
      (fun i r ->
        match (r, errors.(i)) with
        | None, None -> incr skipped
        | _, Some _ -> incr errs
        | Some _, None -> ())
      results;
    Metrics.incr "par.batches";
    Metrics.incr ~by:n "par.tasks";
    if !errs > 0 then Metrics.incr ~by:!errs "par.task_errors";
    if !skipped > 0 then Metrics.incr ~by:!skipped "par.tasks_skipped";
    publish_tel pool;
    (match cancel with Some c -> Cancel.check c | None -> ());
    let rec first_error i =
      if i >= n then None
      else match errors.(i) with Some e -> Some e | None -> first_error (i + 1)
    in
    match first_error 0 with
    | Some e -> raise e
    | None ->
        Array.init n (fun i ->
            match results.(i) with
            | Some v -> v
            | None ->
                (* only reachable if a task body set the batch token
                   itself without raising — surface it as cancellation *)
                raise
                  (Cancel.Cancelled
                     (Progress.make "task skipped: batch token set by a task body")))
  end

let map_array ?cancel pool f xs =
  map_array_token ?cancel pool (fun _tok x -> f x) xs

let map_token ?cancel pool f xs =
  Array.to_list (map_array_token ?cancel pool f (Array.of_list xs))

let map ?cancel pool f xs = map_token ?cancel pool (fun _tok x -> f x) xs

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

(* A one-shot future.  With a worker available the task runs on the
   pool; a width-1 pool has no workers, so the task gets a dedicated
   domain — [async] must stay concurrent with the submitter (the hedged
   ladder races it against the precise rungs). *)
type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable fval : ('a, exn) result option;
  mutable fjoin : unit Domain.t option;  (* the fallback domain to join *)
}

let fulfil fut r =
  Mutex.lock fut.fm;
  fut.fval <- Some r;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let async pool f =
  let fut =
    { fm = Mutex.create (); fc = Condition.create (); fval = None; fjoin = None }
  in
  let body () =
    fulfil fut (match f () with v -> Ok v | exception e -> Error e)
  in
  if pool.width <= 1 then fut.fjoin <- Some (Domain.spawn body)
  else enqueue_jobs pool [ { jrun = body; jenq_ns = Deadline.now_ns () } ];
  fut

let await fut =
  Mutex.lock fut.fm;
  while fut.fval = None do
    Condition.wait fut.fc fut.fm
  done;
  let r = Option.get fut.fval in
  Mutex.unlock fut.fm;
  Option.iter (fun d -> Domain.join d) fut.fjoin;
  match r with Ok v -> v | Error e -> raise e

let is_done fut =
  Mutex.lock fut.fm;
  let r = fut.fval <> None in
  Mutex.unlock fut.fm;
  r
