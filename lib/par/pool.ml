(** Fixed-size domain pool.  See the interface for the contract.

    Shape: one shared FIFO of [unit -> unit] closures guarded by a
    mutex/condition pair; [jobs - 1] worker domains block on the
    condition when idle.  The submitting domain is the last lane: after
    enqueueing a batch it drains the queue itself, so a width-1 pool
    spawns no domains and runs tasks inline in submission order — the
    sequential baseline and the parallel path are the same code.

    Each {!map} batch carries its own completion latch (mutex, condition,
    remaining-count) and its own {!Cla_resilience.Cancel} token.  Task
    closures never let an exception escape into a worker: failures are
    recorded per index and the lowest-indexed one is re-raised by the
    caller once the batch settles, so the observed error does not depend
    on scheduling. *)

module Cancel = Cla_resilience.Cancel
module Progress = Cla_resilience.Progress
module Metrics = Cla_obs.Metrics

type t = {
  width : int;
  m : Mutex.t;
  c : Condition.t;  (* signalled on enqueue and on shutdown *)
  q : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.width

(* Upper clamp: a pool wider than any plausible machine is a config
   error, not a request we should honour with 10k domains. *)
let max_width = 64

let clamp jobs = if jobs < 1 then 1 else if jobs > max_width then max_width else jobs

let resolve_jobs n =
  if n < 0 then
    invalid_arg
      (Printf.sprintf "job count must be >= 0 (got %d; 0 means auto)" n)
  else if n = 0 then Domain.recommended_domain_count ()
  else n

(* Pop-and-run one queued task; [false] when the queue is empty.  Task
   closures handle their own exceptions, but a belt-and-braces catch
   keeps a bug in one batch from killing an unrelated worker domain. *)
let run_one pool =
  Mutex.lock pool.m;
  match Queue.take_opt pool.q with
  | Some task ->
      Mutex.unlock pool.m;
      (try task () with _ -> ());
      true
  | None ->
      Mutex.unlock pool.m;
      false

let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.q && not pool.closing do
    Condition.wait pool.c pool.m
  done;
  match Queue.take_opt pool.q with
  | Some task ->
      Mutex.unlock pool.m;
      (try task () with _ -> ());
      worker_loop pool
  | None ->
      (* closing, and the queue is drained *)
      Mutex.unlock pool.m

let create ~jobs =
  let width = clamp jobs in
  let pool =
    {
      width;
      m = Mutex.create ();
      c = Condition.create ();
      q = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  Metrics.set "par.jobs" width;
  pool

let shutdown pool =
  Mutex.lock pool.m;
  pool.closing <- true;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m;
  let ws = pool.workers in
  pool.workers <- [];
  List.iter Domain.join ws

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Per-batch completion latch. *)
type latch = { lm : Mutex.t; lc : Condition.t; mutable remaining : int }

let latch_count_down l =
  Mutex.lock l.lm;
  l.remaining <- l.remaining - 1;
  if l.remaining = 0 then Condition.broadcast l.lc;
  Mutex.unlock l.lm

let latch_wait l =
  Mutex.lock l.lm;
  while l.remaining > 0 do
    Condition.wait l.lc l.lm
  done;
  Mutex.unlock l.lm

let map_token ?cancel pool f xs =
  let n = List.length xs in
  if n = 0 then (
    Metrics.incr "par.batches";
    [])
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let batch = Cancel.create () in
    let latch = { lm = Mutex.create (); lc = Condition.create (); remaining = n } in
    let ext_set () =
      match cancel with Some c -> Cancel.is_set c | None -> false
    in
    let task i x () =
      (if Cancel.is_set batch || ext_set () then ()
         (* skipped: leave both cells empty; the caller raises for the
            whole batch, so the hole is never read as a result *)
       else
         match f batch x with
         | v -> results.(i) <- Some v
         | exception e ->
             errors.(i) <- Some e;
             Cancel.set batch);
      latch_count_down latch
    in
    Mutex.lock pool.m;
    List.iteri (fun i x -> Queue.add (task i x) pool.q) xs;
    Condition.broadcast pool.c;
    Mutex.unlock pool.m;
    (* The submitting domain is a full lane: drain the queue, then wait
       for tasks still in flight on the workers. *)
    while run_one pool do
      ()
    done;
    latch_wait latch;
    let errs = ref 0 and skipped = ref 0 in
    Array.iteri
      (fun i r ->
        match (r, errors.(i)) with
        | None, None -> incr skipped
        | _, Some _ -> incr errs
        | Some _, None -> ())
      results;
    Metrics.incr "par.batches";
    Metrics.incr ~by:n "par.tasks";
    if !errs > 0 then Metrics.incr ~by:!errs "par.task_errors";
    if !skipped > 0 then Metrics.incr ~by:!skipped "par.tasks_skipped";
    (match cancel with Some c -> Cancel.check c | None -> ());
    let rec first_error i =
      if i >= n then None
      else match errors.(i) with Some e -> Some e | None -> first_error (i + 1)
    in
    match first_error 0 with
    | Some e -> raise e
    | None ->
        List.init n (fun i ->
            match results.(i) with
            | Some v -> v
            | None ->
                (* only reachable if a task body set the batch token
                   itself without raising — surface it as cancellation *)
                raise
                  (Cancel.Cancelled
                     (Progress.make "task skipped: batch token set by a task body")))
  end

let map ?cancel pool f xs = map_token ?cancel pool (fun _tok x -> f x) xs
