(** A fixed-size domain pool for the embarrassingly parallel phases of
    the pipeline (per-unit compilation, per-section integrity checks,
    independent queries).

    The pool owns [jobs - 1] worker domains plus the submitting domain,
    which helps drain the queue — so [~jobs:1] spawns no domains at all
    and runs every task inline, in order: the sequential and parallel
    code paths are literally the same code, which is what makes the
    "[-j N] output is byte-identical to [-j 1]" guarantee cheap to keep.

    {!map} preserves input order, propagates the first (lowest-index)
    task error after the batch settles, and cancels in-flight peers
    through a per-batch {!Cla_resilience.Cancel} token: once a task
    fails, queued tasks are skipped and running tasks that poll the
    token unwind early.

    Publishes [par.*] metrics into the default registry: [par.jobs]
    (pool width), [par.batches], [par.tasks], [par.task_errors],
    [par.tasks_skipped].

    Not reentrant: do not call {!map} from inside a task of the same
    pool. *)

type t

(** Spawn a pool of width [jobs] (clamped to [1 .. 64]; [~jobs:1] spawns
    nothing).  Idle workers block on a condition variable — an idle pool
    costs no CPU. *)
val create : jobs:int -> t

(** The pool's width (after clamping), i.e. the maximum number of tasks
    running at once. *)
val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs] across the
    pool and returns the results {e in input order}.

    If any task raises, the remaining queued tasks of the batch are
    skipped, the batch's cancel token is set (so running peers that
    poll it unwind), and — once every task has settled — the exception
    of the {e lowest-indexed} failed task is re-raised, making the
    error deterministic regardless of scheduling.

    [cancel] aborts the whole batch from outside: queued tasks are
    skipped and {!Cla_resilience.Cancel.Cancelled} is raised. *)
val map : ?cancel:Cla_resilience.Cancel.t -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map}, but each task also receives the batch's cancel token so
    long-running task bodies can poll it ({!Cla_resilience.Cancel.check})
    and unwind as soon as a peer fails. *)
val map_token :
  ?cancel:Cla_resilience.Cancel.t ->
  t ->
  (Cla_resilience.Cancel.t -> 'a -> 'b) ->
  'a list ->
  'b list

(** Stop the workers and join their domains.  Idempotent.  Must not be
    called while a {!map} is in flight. *)
val shutdown : t -> unit

(** [with_pool ~jobs f]: create, run [f], always shut down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** Resolve a [-j N] request: [0] means "auto" —
    [Domain.recommended_domain_count ()] — and anything negative raises
    [Invalid_argument] (CLI layers turn that into a clean [Diag]).
    Positive values pass through unchanged. *)
val resolve_jobs : int -> int
