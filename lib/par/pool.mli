(** A persistent work-stealing domain pool for the parallel phases of
    the pipeline (per-unit compilation, per-section integrity checks,
    row-parallel solving, independent queries).

    The pool owns [jobs - 1] worker domains plus the submitting domain,
    which helps drain its own lane — so [~jobs:1] spawns no domains at
    all and runs every task inline, in order: the sequential and
    parallel code paths are literally the same code, which is what makes
    the "[-j N] output is byte-identical to [-j 1]" guarantee cheap to
    keep.

    Workers are spawned once at {!create} and {e parked} on a condition
    variable between batches, so a long-lived process (the CLI driving
    many passes, the server answering many queries) pays the domain
    spawn cost once, not per batch.  Batches are split into contiguous
    chunks dealt across per-domain deques; an idle domain steals the
    oldest chunk from a busy peer, so an unlucky chunk distribution
    degrades into stealing instead of idling.

    {!map} preserves input order, propagates the first (lowest-index)
    task error after the batch settles, and cancels in-flight peers
    through a per-batch {!Cla_resilience.Cancel} token: once a task
    fails, queued tasks are skipped and running tasks that poll the
    token unwind early.

    Publishes [par.*] metrics into the default registry: [par.jobs]
    (pool width), [par.batches], [par.tasks], [par.task_errors],
    [par.tasks_skipped], [par.steals] (chunks run by a domain other
    than the one they were dealt to), [par.lane.busy_us] /
    [par.lane.idle_us] / [par.lane.steals] (per-lane series, lane 0 =
    the submitting domain), and a [par.queue_wait_us] histogram
    (enqueue-to-start latency per chunk) via {!Cla_obs.Histo}.

    Each batch carries its own completion latch, so multiple domains
    may submit batches to one pool concurrently (the server's shards
    share one pool).  Do not call {!map} from {e inside} a task of the
    same pool — a task waiting on a nested batch occupies the lane the
    nested chunks need. *)

type t

(** Spawn a pool of width [jobs] (clamped to [1 .. 64]; [~jobs:1] spawns
    nothing).  Idle workers park on a condition variable — an idle pool
    costs no CPU. *)
val create : jobs:int -> t

(** The pool's width (after clamping), i.e. the maximum number of tasks
    running at once. *)
val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs] across the
    pool and returns the results {e in input order}.

    If any task raises, the remaining queued tasks of the batch are
    skipped, the batch's cancel token is set (so running peers that
    poll it unwind), and — once every task has settled — the exception
    of the {e lowest-indexed} failed task is re-raised, making the
    error deterministic regardless of scheduling.

    [cancel] aborts the whole batch from outside: queued tasks are
    skipped and {!Cla_resilience.Cancel.Cancelled} is raised. *)
val map : ?cancel:Cla_resilience.Cancel.t -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map}, but each task also receives the batch's cancel token so
    long-running task bodies can poll it ({!Cla_resilience.Cancel.check})
    and unwind as soon as a peer fails. *)
val map_token :
  ?cancel:Cla_resilience.Cancel.t ->
  t ->
  (Cla_resilience.Cancel.t -> 'a -> 'b) ->
  'a list ->
  'b list

(** Array variant of {!map} — same ordering, error and cancellation
    contract, without the list-to-array shuffling.  The solvers use this
    on hot paths. *)
val map_array : ?cancel:Cla_resilience.Cancel.t -> t -> ('a -> 'b) -> 'a array -> 'b array

(** Array variant of {!map_token}. *)
val map_array_token :
  ?cancel:Cla_resilience.Cancel.t ->
  t ->
  (Cla_resilience.Cancel.t -> 'a -> 'b) ->
  'a array ->
  'b array

(** {1 Futures}

    One-shot tasks racing the submitting domain — the hedged ladder
    runs its always-sound fallback rung this way. *)

type 'a future

(** [async pool f] starts [f] concurrently and returns immediately.  On
    a pool with workers ([jobs >= 2]) the task runs on the pool; a
    width-1 pool has no workers, so the task gets a dedicated domain
    (an [async] must stay concurrent with the submitter, unlike a
    width-1 {!map} which runs inline). *)
val async : t -> (unit -> 'a) -> 'a future

(** Wait for the future and return its value, re-raising the task's
    exception if it failed.  Joins the fallback domain if one was
    spawned.  May be called at most once per future from one domain. *)
val await : 'a future -> 'a

(** [true] once the task has finished (successfully or not); never
    blocks. *)
val is_done : 'a future -> bool

(** {1 Lifecycle} *)

(** Stop the workers and join their domains.  Must not be called while
    a {!map} or un-awaited {!async} is in flight. *)
val shutdown : t -> unit

(** [with_pool ~jobs f]: create, run [f], always shut down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [shared ~jobs] returns the process-wide shared pool, creating it on
    first use and widening it (by replacement, between batches) if
    [jobs] exceeds the current width.  Never narrows.  The CLI, bench
    and server draw from this pool instead of spawning per-run pools so
    domain spawns are paid once per process.  Shut down automatically
    at exit. *)
val shared : jobs:int -> t

(** The automatic width: [Domain.recommended_domain_count () - 1]
    (at least 1) — one core is reserved for the supervisor/accept
    threads the serve path runs. *)
val auto_cap : unit -> int

(** Resolve a [-j N] request: [0] means "auto" — {!auto_cap} — and
    anything negative raises [Invalid_argument] (CLI layers turn that
    into a clean [Diag]).  Positive values pass through unchanged. *)
val resolve_jobs : int -> int
