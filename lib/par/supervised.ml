(** A supervised worker domain: spawn, heartbeat, detect death or wedge,
    respawn under a restart budget.

    OCaml domains cannot be killed from outside, so supervision is
    cooperative and generation-based: each spawn carries a generation
    number, and a body that polls {!current} after every unit of work
    notices it has been superseded and exits on its own.  The supervisor
    meanwhile:

    - detects {e death} through the alive sentinel — the spawn wrapper
      clears it when the body returns or raises, so a worker that died
      is visible without blocking in [Domain.join];
    - detects {e wedge} through the heartbeat stamp — the body calls
      {!beat} as it makes progress, and {!beat_age_ns} reports how stale
      the stamp is;
    - enforces a {e restart budget} (circuit breaker): at most [budget]
      restarts within a sliding [window]; beyond that {!note_restart}
      answers [`Give_up] and the worker should stay down.

    Handles of superseded-but-possibly-running domains are parked and
    reaped by {!join_all} at shutdown (a wedged domain is joined when it
    finally returns; death is joined eagerly). *)

type t = {
  gen : int Atomic.t;  (* current generation; bumped by respawn *)
  alive : bool Atomic.t;  (* cleared by the wrapper on body exit *)
  beat : int Atomic.t;  (* monotonic ns stamp of last progress *)
  mutable handle : unit Domain.t option;  (* current generation's domain *)
  mutable zombies : unit Domain.t list;  (* superseded, join at shutdown *)
  mutable restart_log : int list;  (* monotonic ns stamps, newest first *)
}

let now_ns () = Cla_resilience.Deadline.now_ns ()

let create () =
  {
    gen = Atomic.make 0;
    alive = Atomic.make false;
    beat = Atomic.make (now_ns ());
    handle = None;
    zombies = [];
    restart_log = [];
  }

let current t = Atomic.get t.gen

(* Spawn the next generation.  The previous generation's domain, if any,
   is parked for [join_all] — it may still be running (wedged); it must
   notice the generation bump and exit on its own. *)
let spawn t body =
  (match t.handle with
  | Some d -> t.zombies <- d :: t.zombies
  | None -> ());
  let gen = Atomic.get t.gen + 1 in
  Atomic.set t.gen gen;
  Atomic.set t.alive true;
  Atomic.set t.beat (now_ns ());
  t.handle <-
    Some
      (Domain.spawn (fun () ->
           Fun.protect
             ~finally:(fun () ->
               (* only the current generation may clear the sentinel: a
                  late-exiting zombie must not make its healthy
                  replacement look dead *)
               if Atomic.get t.gen = gen then Atomic.set t.alive false)
             (fun () -> try body ~gen with _ -> ())))

let is_alive t = Atomic.get t.alive

let beat t = Atomic.set t.beat (now_ns ())

let beat_age_ns t = now_ns () - Atomic.get t.beat

(* Record a restart attempt against the sliding window.  Answers
   [`Give_up] once [budget] restarts have landed within [window_ns] —
   the circuit breaker that keeps a crash-looping worker from burning
   the host. *)
let note_restart t ~budget ~window_ns =
  let now = now_ns () in
  let recent = List.filter (fun s -> now - s < window_ns) t.restart_log in
  if List.length recent >= budget then begin
    t.restart_log <- recent;
    `Give_up
  end
  else begin
    t.restart_log <- now :: recent;
    `Restart
  end

let restarts t = List.length t.restart_log

(* Reap the current domain (if it already died) without blocking: only
   joins when the sentinel says the body returned. *)
let reap_dead t =
  if not (Atomic.get t.alive) then
    match t.handle with
    | Some d ->
        Domain.join d;
        t.handle <- None
    | None -> ()

let join_all t =
  (match t.handle with
  | Some d ->
      Domain.join d;
      t.handle <- None
  | None -> ());
  List.iter Domain.join t.zombies;
  t.zombies <- []
