(** A supervised worker domain: cooperative restart for workers that
    cannot be killed.

    Domains cannot be terminated from outside, so supervision is
    generation-based: every {!spawn} carries a generation number, the
    body compares it against {!current} between units of work and exits
    when superseded.  Death (body returned or raised) is visible through
    {!is_alive} without blocking; wedge is visible through the
    {!beat}/{!beat_age_ns} heartbeat; {!note_restart} enforces a
    sliding-window restart budget (circuit breaker).  Superseded domains
    are parked and reaped by {!join_all}. *)

type t

val create : unit -> t

(** The current generation; bodies poll this to learn they have been
    superseded. *)
val current : t -> int

(** Spawn the next generation's domain.  The body receives its
    generation; exceptions it raises are swallowed (death is reported
    through {!is_alive}, not a poisoned join).  Any previous domain is
    parked for {!join_all}. *)
val spawn : t -> (gen:int -> unit) -> unit

(** False once the current generation's body has returned or raised. *)
val is_alive : t -> bool

(** Stamp the heartbeat with the monotonic clock; the body calls this as
    it makes progress. *)
val beat : t -> unit

(** Nanoseconds since the last {!beat} (or spawn). *)
val beat_age_ns : t -> int

(** Record a restart attempt: [`Restart] while fewer than [budget]
    restarts landed within the last [window_ns]; [`Give_up] once the
    budget is exhausted — the worker should stay down. *)
val note_restart : t -> budget:int -> window_ns:int -> [ `Restart | `Give_up ]

(** Restarts currently inside the sliding window (after the last
    {!note_restart} pruned it). *)
val restarts : t -> int

(** Join the current domain iff it already died (non-blocking
    otherwise). *)
val reap_dead : t -> unit

(** Join the current domain and every parked zombie.  Blocks until they
    return — callers flip their closing flag first. *)
val join_all : t -> unit
