(** Client side of the [cla serve] protocol: one-shot round trips and a
    retrying wrapper with exponential backoff and equal jitter.

    Retries cover the transient outcomes — connection refused or socket
    not yet there (the server is starting, restarting after a crash, or
    draining), ["shed"] (admission control refused the query under
    load), and torn connections.  Permission or address errors are
    final, as are ["timeout"] and ["error"]: retrying a timed-out query
    would just burn another deadline, and a malformed query never
    becomes well-formed. *)

type attempt_error =
  | Connect_failed of Unix.error * string
      (** carries the errno so the retry loop can tell a restart window
          (ECONNREFUSED, ENOENT) from a hopeless target (EACCES, ...) *)
  | Io_failed of string

let describe = function
  | Connect_failed (_, m) -> "connect failed: " ^ m
  | Io_failed m -> "i/o failed: " ^ m

(* Is this attempt worth retrying?  Connection refused means a stale
   socket file or a listener mid-restart; ENOENT means the replacement
   has not bound yet — both clear up within the restart window.  An
   interrupted or reset attempt may succeed verbatim.  Anything else
   (EACCES, EISDIR, ...) will fail identically forever.  Torn i/o
   (server died mid-reply) is always worth one more connect. *)
let retryable = function
  | Connect_failed
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN
        | Unix.EINTR ),
        _ ) ->
      true
  | Connect_failed _ -> false
  | Io_failed _ -> true

let round_trip ~socket line : (string, attempt_error) result =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Connect_failed (e, Unix.error_message e))
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Connect_failed (e, Unix.error_message e))
      | () -> (
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          match
            output_string oc line;
            output_char oc '\n';
            flush oc;
            input_line ic
          with
          | reply -> Ok reply
          | exception End_of_file -> Error (Io_failed "connection closed")
          | exception Sys_error m -> Error (Io_failed m)
          | exception Unix.Unix_error (e, _, _) ->
              Error (Io_failed (Unix.error_message e))))

(* Deterministic per-client jitter stream (splitmix64) — no wall-clock
   seeding, so tests can pin the schedule. *)
type rng = { mutable s : int64 }

let rng_make seed = { s = Int64.of_int seed }

let rng_next r =
  let open Int64 in
  r.s <- add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* uniform int in [0, bound) *)
let rng_below r bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (rng_next r) 1)
                       (Int64.of_int bound))

type retry_policy = {
  attempts : int;  (** total tries, including the first *)
  base_delay_ms : int;  (** backoff starts here and doubles *)
  max_delay_ms : int;  (** backoff cap *)
  seed : int;  (** jitter stream seed *)
}

let default_policy =
  { attempts = 5; base_delay_ms = 25; max_delay_ms = 1000; seed = 1 }

type outcome = {
  reply : (string, attempt_error) result;  (** last attempt's result *)
  tries : int;
  retried_sheds : int;
  retried_connects : int;
}

(* Equal jitter: sleep half the exponential step plus a random half, so
   synchronized clients fan out instead of retrying in lockstep. *)
let backoff_ms rng policy ~try_idx ~retry_after =
  let exp_ms =
    min policy.max_delay_ms (policy.base_delay_ms lsl min try_idx 16)
  in
  let base = match retry_after with Some ms -> max ms (exp_ms / 2) | None -> exp_ms / 2 in
  base + rng_below rng (max 1 (exp_ms / 2))

let with_retry ?(policy = default_policy) ~socket line : outcome =
  let rng = rng_make policy.seed in
  let retried_sheds = ref 0 and retried_connects = ref 0 in
  let rec go try_idx =
    let reply = round_trip ~socket line in
    let retry kind ~retry_after =
      if try_idx + 1 >= policy.attempts then
        { reply; tries = try_idx + 1;
          retried_sheds = !retried_sheds;
          retried_connects = !retried_connects }
      else begin
        incr kind;
        Thread.delay
          (float_of_int (backoff_ms rng policy ~try_idx ~retry_after) /. 1000.);
        go (try_idx + 1)
      end
    in
    match reply with
    | Error e when retryable e -> retry retried_connects ~retry_after:None
    | Error _ ->
        (* fail fast: this errno will not clear up on its own *)
        { reply; tries = try_idx + 1;
          retried_sheds = !retried_sheds;
          retried_connects = !retried_connects }
    | Ok l -> (
        match Protocol.status_of_line l with
        | Protocol.S_shed ->
            retry retried_sheds
              ~retry_after:(Protocol.retry_after_ms_of_line l)
        | Protocol.S_bye ->
            (* draining server: connecting again may reach its
               replacement *)
            retry retried_connects ~retry_after:None
        | _ ->
            { reply; tries = try_idx + 1;
              retried_sheds = !retried_sheds;
              retried_connects = !retried_connects })
  in
  go 0
