(** The resilient query server behind [cla serve]: a Unix-domain-socket,
    line-oriented JSON server over one linked CLA database.

    Resilience layers, in the order a query meets them: bounded
    admission (429-style shedding past [max_inflight]+[max_queue]); a
    per-query {!Cla_resilience.Deadline} polled by the solver ladder; a
    watchdog thread that fires the query's {!Cla_resilience.Cancel}
    token [watchdog_grace_ms] past the deadline so even a query that
    dodges its deadline checks is aborted and its slot recycled; and
    graceful drain on SIGINT/SIGTERM.  Solves are serialized and the
    first non-degraded ladder outcome is cached, so steady-state queries
    are lock-free lookups. *)

type config = {
  socket_path : string;
  max_inflight : int;  (** queries executing at once *)
  max_queue : int;  (** queries allowed to wait; beyond -> shed *)
  default_deadline_ms : int;  (** when the request names none *)
  max_deadline_ms : int;  (** cap on client-requested deadlines *)
  watchdog_grace_ms : int;  (** cancel fires this long after the deadline *)
  allow_sleep : bool;  (** enable the debug [sleep] op (load tests) *)
  shards : int;
      (** solver replicas, each with its own cache on its own domain,
          fed round-robin.  [1] (the default) keeps the in-thread
          serialized-solve path; systhreads share one runtime lock per
          domain, so replicas must be domains to solve concurrently. *)
  solve_jobs : int;
      (** width each solve draws from the process-wide persistent pool
          ({!Cla_par.Pool.shared}) — the pre-transitive query fan-out
          and row-parallel bit-vector passes, never ad-hoc domain
          spawns.  [1] (the default) keeps solves sequential.  Shards
          submit to the one shared pool concurrently; answers are
          byte-identical at any width. *)
  query_log : string option;
      (** append one JSONL line per finished query (op, outcome, shard,
          queue/solve/total timings, rung, cache hit) *)
  trace_path : string option;
      (** at drain, write the recent-query ring as a Chrome trace, one
          lane per shard *)
  ring_capacity : int;
      (** recent-query ring size; also bounds the serve-path series
          ([serve.recent_total_us]) *)
  snapshot_path : string option;
      (** thaw a persisted {!Cla_core.Snapshot} at startup and answer
          every non-[fresh] query from the shared frozen arena,
          lock-free.  A corrupt, truncated, version-bumped or
          wrongly-bound snapshot is rejected ([load.corrupt] diagnostic
          on stderr) and the server falls back to live solves — never a
          wrong answer. *)
  supervise : bool;
      (** run the shard supervisor: heartbeat the worker domains,
          restart dead or wedged ones (queued jobs survive the restart),
          under the restart budget below.  On by default; [bench chaos
          --inject-no-supervise] turns it off to prove the gate bites. *)
  heartbeat_grace_ms : int;
      (** a busy shard whose heartbeat is older than this is declared
          wedged and superseded *)
  restart_budget : int;
      (** circuit breaker: after this many restarts inside
          [restart_window_ms] the shard stays down and dispatch routes
          around it *)
  restart_window_ms : int;  (** the breaker's sliding window *)
  watch_dir : string option;
      (** serve a directory of [.c] / [.clo] files instead of a fixed
          linked database ({!run_watch} sets this): a poll thread stats
          the directory every [watch_poll_ms]; on change it recompiles
          only the edited units (TU content hash —
          [compile.cache.hits]), delta-links, delta-solves
          ({!Cla_core.Incremental}) and atomically swaps the served
          solution.  The [reanalyze] protocol op forces the same rescan
          on demand.  A broken edit (unparsable source) keeps the last
          consistent solution serving. *)
  watch_poll_ms : int;  (** watch-mode poll period *)
  save_snapshot : string option;
      (** rewrite this snapshot sidecar after every non-degraded swap
          (and at watch-mode boot), refreezing the lock-free frozen
          arena over the new view — restart cost stays one file read as
          the watched tree evolves.  Without it, a swap under
          [snapshot_path] marks the thawed arena stale
          ([serve.snapshot_stale], one diagnostic) and live caches take
          over. *)
}

val default_config : config

type stats = {
  mutable s_queries : int;  (** request lines received *)
  mutable s_ok : int;
  mutable s_shed : int;
  mutable s_timeout : int;  (** deadline and watchdog aborts *)
  mutable s_error : int;
  mutable s_bye : int;  (** requests refused during drain *)
  mutable s_degraded : int;  (** ok answers from a fallback rung *)
  mutable s_watchdog_cancels : int;
  mutable s_connections : int;
  mutable s_shard_restarts : int;  (** supervisor respawns (dead or wedged) *)
  mutable s_shards_down : int;  (** shards the circuit breaker gave up on *)
}

(** The stats as labeled counters, for reports and the [stats] op. *)
val stats_counters : stats -> (string * int) list

type t

(** Flip the drain flag: the accept loop stops, in-flight queries
    finish, further request lines get a ["bye"].  Safe to call from a
    signal handler or another thread. *)
val request_shutdown : t -> unit

(** Fault injection for the chaos harness: make shard [i]'s worker
    domain die (its alive sentinel clears; the supervisor respawns it
    over the surviving queue).  [false] when the server is unsharded or
    [i] is out of range.  The fault is an ordinary queue entry, so it
    lands when the worker next pops — deterministic, no signals. *)
val chaos_kill_shard : t -> int -> bool

(** Make shard [i]'s worker sit busy without heartbeats for [wedge_ms]
    — the supervisor declares it wedged once the grace passes and
    supersedes it. *)
val chaos_wedge_shard : t -> int -> wedge_ms:int -> bool

(** Serve queries over [view] until SIGINT/SIGTERM (or
    {!request_shutdown}), then drain and return the final counters.
    [on_ready] runs once the socket is listening — tests use it to
    launch clients, and it receives the server handle so an embedded
    caller can stop the server without a signal.  Installs handlers for
    SIGINT/SIGTERM and ignores SIGPIPE. *)
val run : ?config:config -> ?on_ready:(t -> unit) -> Cla_core.Objfile.view -> stats

(** Like {!run}, but over a watched directory of [.c] / [.clo] files
    instead of a pre-linked database: compile-link-analyze it once,
    serve, and keep the served solution in sync with edits through the
    incremental pipeline (see [watch_dir]).  Raises [Sys_error] when
    the directory holds nothing to analyze. *)
val run_watch : ?config:config -> ?on_ready:(t -> unit) -> string -> stats
