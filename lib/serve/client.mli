(** Client side of the [cla serve] protocol: one-shot round trips and a
    retrying wrapper with exponential backoff and equal jitter.

    Retries cover the transient outcomes only — {!retryable} connection
    failures (the server is starting, restarting after a crash, or
    draining), torn connections, and ["shed"]/["bye"] responses.
    ["timeout"] and ["error"] are final: retrying a timed-out query
    would just burn another deadline, and a malformed query never
    becomes well-formed. *)

type attempt_error =
  | Connect_failed of Unix.error * string
      (** the errno plus its rendered message — kept separate so the
          retry loop can classify without string matching *)
  | Io_failed of string

val describe : attempt_error -> string

(** Transient, worth another attempt: [ECONNREFUSED]/[ENOENT] (a
    restart window — stale socket or the replacement not yet bound),
    [ECONNRESET]/[EAGAIN]/[EINTR], and any torn i/o.  Other connect
    errnos ([EACCES], ...) fail identically forever, so {!with_retry}
    fails fast on them. *)
val retryable : attempt_error -> bool

(** Connect, send one request line, read one response line, close. *)
val round_trip : socket:string -> string -> (string, attempt_error) result

type retry_policy = {
  attempts : int;  (** total tries, including the first *)
  base_delay_ms : int;  (** backoff starts here and doubles *)
  max_delay_ms : int;  (** backoff cap *)
  seed : int;  (** jitter stream seed (deterministic, no wall clock) *)
}

(** 5 attempts, 25ms base, 1s cap, seed 1. *)
val default_policy : retry_policy

type outcome = {
  reply : (string, attempt_error) result;  (** last attempt's result *)
  tries : int;
  retried_sheds : int;
  retried_connects : int;
}

(** {!round_trip} with retries under [policy], sleeping an
    equal-jittered exponential backoff between attempts (a ["shed"]
    response's [retry_after_ms] raises the floor of the next sleep). *)
val with_retry : ?policy:retry_policy -> socket:string -> string -> outcome
