(** The `cla serve` wire protocol: one JSON object per line, each
    request answered by exactly one JSON response line on the same
    connection.

    Requests:
    {v
    {"id":7,"op":"points-to","var":"p","deadline_ms":100,"fresh":false}
    {"id":8,"op":"alias","var":"p","var2":"q"}
    {"id":9,"op":"ping"}          {"id":10,"op":"stats"}
    {"id":11,"op":"sleep","ms":50}   (debug; gated by --allow-sleep)
    {"id":12,"op":"reanalyze"}       (servers started with --watch)
    v}

    Responses always carry ["status"] and echo ["id"] (null when the
    request was too malformed to have one):
    - ["ok"] — the answer, with the ladder rung that produced it;
    - ["timeout"] (code 504) — the deadline passed or the watchdog
      cancelled the query; carries the abort progress;
    - ["shed"] (code 429) — admission control refused the query because
      the in-flight queue is full; carries [retry_after_ms];
    - ["error"] (code 400/404) — malformed request or unknown variable;
    - ["bye"] (code 503) — the server is draining; reconnect later.

    The HTTP-flavored codes are advisory labels for client backoff
    logic, not an HTTP implementation. *)

open Cla_obs

type op =
  | Points_to of string
  | Alias of string * string
  | Ping
  | Stats
  | Sleep of int  (** milliseconds; gated by the server's [allow_sleep] *)
  | Reanalyze
      (** rescan the watched directory now and swap in the fresh
          solution; rejected on servers not started with [--watch] *)

type request = {
  r_id : Json.t;  (** echoed verbatim; [Null] when absent *)
  r_op : op;
  r_deadline_ms : int option;
  r_fresh : bool;  (** bypass the cached solution and re-solve *)
}

(* Parse errors keep whatever "id" the line managed to carry so the
   error response can still be correlated by the client. *)
let parse line : (request, Json.t * string) result =
  match Json.of_string line with
  | exception Json.Parse_error m -> Error (Json.Null, "bad json: " ^ m)
  | Json.Obj _ as j -> (
      let id = Option.value ~default:Json.Null (Json.member "id" j) in
      let str k =
        match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
      in
      let int k = Option.bind (Json.member k j) Json.to_int in
      let mk r_op =
        Ok
          {
            r_id = id;
            r_op;
            r_deadline_ms = int "deadline_ms";
            r_fresh =
              (match Json.member "fresh" j with
              | Some (Json.Bool b) -> b
              | _ -> false);
          }
      in
      match str "op" with
      | None -> Error (id, "missing or non-string \"op\"")
      | Some "points-to" -> (
          match str "var" with
          | Some v -> mk (Points_to v)
          | None -> Error (id, "points-to: missing \"var\""))
      | Some "alias" -> (
          match (str "var", str "var2") with
          | Some a, Some b -> mk (Alias (a, b))
          | _ -> Error (id, "alias: missing \"var\" or \"var2\""))
      | Some "ping" -> mk Ping
      | Some "stats" -> mk Stats
      | Some "reanalyze" -> mk Reanalyze
      | Some "sleep" -> (
          match int "ms" with
          | Some ms when ms >= 0 -> mk (Sleep ms)
          | _ -> Error (id, "sleep: missing or negative \"ms\""))
      | Some o -> Error (id, Printf.sprintf "unknown op %S" o))
  | _ -> Error (Json.Null, "request must be a json object")

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let line j = Json.to_string ~indent:false j

let resp id status code extra =
  line
    (Json.Obj
       (("id", id)
       :: ("status", Json.Str status)
       :: ("code", Json.Int code)
       :: extra))

(* Per-query server-side telemetry, attached to ok responses under a
   "server" field.  Additive: clients that predate it ignore unknown
   fields, so old clients keep working against new servers. *)
type telemetry = {
  t_shard : int;  (** -1 when answered without a shard (single mode) *)
  t_queue_ms : float;
  t_solve_ms : float;
  t_server_ms : float;
  t_cache_hit : bool;
}

let telemetry_json t =
  Json.Obj
    [
      ("shard", Json.Int t.t_shard);
      ("queue_ms", Json.Float t.t_queue_ms);
      ("solve_ms", Json.Float t.t_solve_ms);
      ("server_ms", Json.Float t.t_server_ms);
      ("cache_hit", Json.Bool t.t_cache_hit);
    ]

let telemetry_field = function
  | None -> []
  | Some t -> [ ("server", telemetry_json t) ]

let ok_points_to ~id ?telemetry ~rung ~degraded ~var ~targets () =
  resp id "ok" 200
    ([
       ("op", Json.Str "points-to");
       ("var", Json.Str var);
       ("rung", Json.Str rung);
       ("degraded", Json.Bool degraded);
       ("targets", Json.Arr (List.map (fun s -> Json.Str s) targets));
     ]
    @ telemetry_field telemetry)

let ok_alias ~id ?telemetry ~rung ~degraded ~var ~var2 ~aliased () =
  resp id "ok" 200
    ([
       ("op", Json.Str "alias");
       ("var", Json.Str var);
       ("var2", Json.Str var2);
       ("rung", Json.Str rung);
       ("degraded", Json.Bool degraded);
       ("aliased", Json.Bool aliased);
     ]
    @ telemetry_field telemetry)

let ok_ping ~id = resp id "ok" 200 [ ("op", Json.Str "ping") ]

(* [changed = 0] means the rescan found the directory byte-stable (by
   stat) and left the solution alone. *)
let ok_reanalyze ~id ~epoch ~changed ~sources ~cache_hits ~cache_misses
    ~resumed ~wall_ms () =
  resp id "ok" 200
    [
      ("op", Json.Str "reanalyze");
      ("epoch", Json.Int epoch);
      ("changed", Json.Int changed);
      ("sources", Json.Int sources);
      ("cache_hits", Json.Int cache_hits);
      ("cache_misses", Json.Int cache_misses);
      ("resumed", Json.Bool resumed);
      ("wall_ms", Json.Float wall_ms);
    ]

let ok_sleep ~id ~ms =
  resp id "ok" 200 [ ("op", Json.Str "sleep"); ("ms", Json.Int ms) ]

(* [extra] carries the live-introspection payload (uptime, inflight,
   per-shard percentiles) next to the flat counters kept for old
   clients. *)
let ok_stats ~id ?(extra = []) counters =
  resp id "ok" 200
    (( "op", Json.Str "stats")
    :: ( "counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) )
    :: extra)

let timeout ~id ~at_pass ~elapsed_ms ~detail =
  resp id "timeout" 504
    [
      ("at_pass", Json.Int at_pass);
      ("elapsed_ms", Json.Int (int_of_float elapsed_ms));
      ("detail", Json.Str detail);
    ]

let shed ~id ~retry_after_ms =
  resp id "shed" 429 [ ("retry_after_ms", Json.Int retry_after_ms) ]

let error ~id ?(code = 400) msg = resp id "error" code [ ("message", Json.Str msg) ]

let bye ~id = resp id "bye" 503 [ ("message", Json.Str "server draining") ]

(* ------------------------------------------------------------------ *)
(* Response classification (clients, retry logic, serve-bench)         *)
(* ------------------------------------------------------------------ *)

type status = S_ok | S_shed | S_timeout | S_error | S_bye | S_malformed

let status_of_line l =
  match Json.of_string l with
  | exception Json.Parse_error _ -> S_malformed
  | j -> (
      match Json.member "status" j with
      | Some (Json.Str "ok") -> S_ok
      | Some (Json.Str "shed") -> S_shed
      | Some (Json.Str "timeout") -> S_timeout
      | Some (Json.Str "error") -> S_error
      | Some (Json.Str "bye") -> S_bye
      | _ -> S_malformed)

let status_name = function
  | S_ok -> "ok"
  | S_shed -> "shed"
  | S_timeout -> "timeout"
  | S_error -> "error"
  | S_bye -> "bye"
  | S_malformed -> "malformed"

let degraded_of_line l =
  match Json.of_string l with
  | exception Json.Parse_error _ -> false
  | j -> (
      match Json.member "degraded" j with
      | Some (Json.Bool b) -> b
      | _ -> false)

let retry_after_ms_of_line l =
  match Json.of_string l with
  | exception Json.Parse_error _ -> None
  | j -> Option.bind (Json.member "retry_after_ms" j) Json.to_int
