(** The `cla serve` wire protocol: one JSON object per request line,
    exactly one JSON response line each.  See {!parse} for the request
    shapes and the response constructors for the answer shapes; the
    numeric [code] fields (200/400/404/429/503/504) are advisory labels
    for client backoff logic, not an HTTP implementation. *)

open Cla_obs

type op =
  | Points_to of string
  | Alias of string * string
  | Ping
  | Stats
  | Sleep of int  (** milliseconds; gated by the server's [allow_sleep] *)
  | Reanalyze
      (** rescan the watched directory now and swap in the fresh
          solution; rejected on servers not started with [--watch] *)

type request = {
  r_id : Json.t;  (** echoed verbatim; [Null] when absent *)
  r_op : op;
  r_deadline_ms : int option;
  r_fresh : bool;  (** bypass the cached solution and re-solve *)
}

(** Parse one request line.  The error carries whatever ["id"] the line
    managed to include (else [Null]) so the error response can still be
    correlated. *)
val parse : string -> (request, Json.t * string) result

(** Per-query server-side timing, attached to ok responses under a
    ["server"] field.  Additive — old clients ignore it. *)
type telemetry = {
  t_shard : int;  (** -1 when answered without a shard (single mode) *)
  t_queue_ms : float;
  t_solve_ms : float;
  t_server_ms : float;
  t_cache_hit : bool;
}

val ok_points_to :
  id:Json.t ->
  ?telemetry:telemetry ->
  rung:string ->
  degraded:bool ->
  var:string ->
  targets:string list ->
  unit ->
  string

val ok_alias :
  id:Json.t ->
  ?telemetry:telemetry ->
  rung:string ->
  degraded:bool ->
  var:string ->
  var2:string ->
  aliased:bool ->
  unit ->
  string

val ok_ping : id:Json.t -> string
val ok_sleep : id:Json.t -> ms:int -> string

(** The reanalyze answer: the post-rescan [epoch] (swaps since boot),
    how many watched files changed ([0] = no-op, nothing swapped), and
    the incremental-update accounting for the swap. *)
val ok_reanalyze :
  id:Json.t ->
  epoch:int ->
  changed:int ->
  sources:int ->
  cache_hits:int ->
  cache_misses:int ->
  resumed:bool ->
  wall_ms:float ->
  unit ->
  string

(** [extra] rides next to the flat [counters] object (kept for old
    clients): uptime, inflight, per-shard percentile blocks. *)
val ok_stats :
  id:Json.t -> ?extra:(string * Json.t) list -> (string * int) list -> string

val timeout :
  id:Json.t -> at_pass:int -> elapsed_ms:float -> detail:string -> string

val shed : id:Json.t -> retry_after_ms:int -> string
val error : id:Json.t -> ?code:int -> string -> string
val bye : id:Json.t -> string

(** Classification of a response line, for retry logic and tallying. *)
type status = S_ok | S_shed | S_timeout | S_error | S_bye | S_malformed

val status_of_line : string -> status
val status_name : status -> string
val degraded_of_line : string -> bool
val retry_after_ms_of_line : string -> int option
