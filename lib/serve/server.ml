(** The resilient query server behind [cla serve].

    A Unix-domain-socket, line-oriented JSON server over one linked CLA
    database.  Resilience machinery, in the order a query meets it:

    - {b admission control}: at most [max_inflight] queries execute at
      once; up to [max_queue] more may wait (polling their own
      deadlines); beyond that the query is refused immediately with a
      429-style ["shed"] response — overload degrades into fast
      refusals, never into unbounded queueing;
    - {b per-query deadline}: every admitted query carries a
      {!Cla_resilience.Deadline} token (client-requested, capped), which
      the solver ladder polls at pass boundaries and traversal loops;
    - {b watchdog}: a background thread sets the query's
      {!Cla_resilience.Cancel} token [watchdog_grace_ms] after the
      deadline — if a poisoned query somehow outruns its deadline
      checks, the cancel token aborts it at the next poll point and the
      slot is recycled;
    - {b graceful drain}: SIGINT/SIGTERM stop the accept loop, let
      in-flight queries finish (new lines get a ["bye"]), then the
      socket is removed and [run] returns its final counters.

    Solves are serialized behind one lock (the solvers and the metrics
    registry are not re-entrant); the first non-degraded ladder outcome
    is cached, so steady-state queries are lock-free lookups.  A query
    blocked behind a long solve keeps polling its own deadline while it
    waits, so a stuck solve delays answers but cannot wedge them. *)

open Cla_core
module R = Cla_resilience
module Json = Cla_obs.Json

type config = {
  socket_path : string;
  max_inflight : int;  (** queries executing at once *)
  max_queue : int;  (** queries allowed to wait; beyond -> shed *)
  default_deadline_ms : int;  (** when the request names none *)
  max_deadline_ms : int;  (** cap on client-requested deadlines *)
  watchdog_grace_ms : int;  (** cancel fires this long after the deadline *)
  allow_sleep : bool;  (** enable the debug [sleep] op (load tests) *)
  shards : int;  (** solver replicas, each on its own domain; 1 = in-thread *)
  solve_jobs : int;
      (** domains each solve draws from the shared pool
          ({!Cla_par.Pool.shared}); 1 = sequential solves *)
  query_log : string option;  (** JSONL sink, one line per query *)
  trace_path : string option;  (** Chrome trace of recent queries at drain *)
  ring_capacity : int;  (** recent-query ring (query log + trace + series) *)
  snapshot_path : string option;
      (** thaw a persisted solution at startup; corrupt or mismatched
          snapshots are rejected ([load.corrupt]) and the server falls
          back to live solves *)
  supervise : bool;  (** heartbeat the shards; restart dead/wedged ones *)
  heartbeat_grace_ms : int;
      (** a busy shard whose heartbeat is older than this is wedged *)
  restart_budget : int;  (** circuit breaker: max restarts per window *)
  restart_window_ms : int;  (** the breaker's sliding window *)
  watch_dir : string option;
      (** serve a directory of [.c] / [.clo] files instead of a linked
          database: poll for changes, recompile only edited units (TU
          content hash), delta-link, delta-solve, and atomically swap
          the served solution ([run_watch] sets this) *)
  watch_poll_ms : int;  (** watch-mode poll period *)
  save_snapshot : string option;
      (** rewrite this snapshot after every non-degraded swap, and
          refreeze the frozen arena from it — restart cost stays one
          file read even as the watched tree evolves *)
}

let default_config =
  {
    socket_path = "cla.sock";
    max_inflight = 4;
    max_queue = 16;
    default_deadline_ms = 2000;
    max_deadline_ms = 60_000;
    watchdog_grace_ms = 200;
    allow_sleep = false;
    shards = 1;
    solve_jobs = 1;
    query_log = None;
    trace_path = None;
    ring_capacity = 256;
    snapshot_path = None;
    supervise = true;
    heartbeat_grace_ms = 30_000;
    restart_budget = 5;
    restart_window_ms = 60_000;
    watch_dir = None;
    watch_poll_ms = 500;
    save_snapshot = None;
  }

type stats = {
  mutable s_queries : int;  (** request lines received *)
  mutable s_ok : int;
  mutable s_shed : int;
  mutable s_timeout : int;  (** deadline and watchdog aborts *)
  mutable s_error : int;
  mutable s_bye : int;  (** requests refused during drain *)
  mutable s_degraded : int;  (** ok answers from a fallback rung *)
  mutable s_watchdog_cancels : int;
  mutable s_connections : int;
  mutable s_shard_restarts : int;  (** supervisor respawns (dead or wedged) *)
  mutable s_shards_down : int;  (** shards the circuit breaker gave up on *)
}

let stats_counters s =
  [
    ("serve.queries", s.s_queries);
    ("serve.ok", s.s_ok);
    ("serve.shed", s.s_shed);
    ("serve.timeouts", s.s_timeout);
    ("serve.errors", s.s_error);
    ("serve.bye", s.s_bye);
    ("serve.degraded", s.s_degraded);
    ("serve.watchdog_cancels", s.s_watchdog_cancels);
    ("serve.connections", s.s_connections);
    ("serve.shard_restarts", s.s_shard_restarts);
    ("serve.shards_down", s.s_shards_down);
  ]

(* Per-query telemetry, filled in as the query moves through admission,
   dispatch and solve; durations in monotonic nanoseconds
   ([R.Deadline.now_ns]). *)
type qctx = {
  mutable qc_shard : int;  (* -1: answered without a shard *)
  mutable qc_queue_ns : int;  (* admission wait *)
  mutable qc_solve_ns : int;  (* 0 when no solve ran (cache hit, ping) *)
  mutable qc_cache_hit : bool;
  mutable qc_rung : string;  (* "" when no ladder ran *)
  mutable qc_degraded : bool;
}

(* One finished query, as kept in the recent ring / query log / trace. *)
type query_event = {
  qe_start_ns : int;  (* monotonic *)
  qe_op : string;
  qe_outcome : string;  (* ok / shed / timeout / error / bye *)
  qe_shard : int;
  qe_queue_ns : int;
  qe_solve_ns : int;
  qe_total_ns : int;
  qe_rung : string;
  qe_degraded : bool;
  qe_cache_hit : bool;
}

(* One query handed to a solver shard.  The submitting connection thread
   polls [j_reply] (2ms, the server's polling idiom); before the shard
   picks the job up ([j_started]) the waiter may abandon it on its own
   deadline/cancel, after which the shard skips it. *)
type job = {
  j_deadline : R.Deadline.t;
  j_cancel : R.Cancel.t;
  j_fresh : bool;
  j_m : Mutex.t;
  mutable j_started : bool;
  mutable j_cache_hit : bool;
  mutable j_solve_ns : int;
  mutable j_reply : (Pipeline.ladder_outcome, R.Progress.t) result option;
}

(* Fault-injection entries for the chaos harness: [Chaos_kill] makes the
   worker domain die (its body raises, the alive sentinel clears) and
   [Chaos_wedge ms] makes it sit heartbeat-less for [ms] — the two
   failure modes supervision must recover from, injectable on demand. *)
type entry = Job of job | Chaos_kill | Chaos_wedge of int

(* A solver replica: its own queue, cache and worker domain.  Each solve
   builds fresh solver state over the shared immutable view, so shards
   solve truly concurrently — systhreads share one runtime lock per
   domain, which is why replicas must be domains to parallelize.

   The queue, cache, and supervision state belong to the {e shard}, not
   the domain: a respawned domain inherits them, so queued jobs survive
   a restart and the snapshot-seeded cache makes the replacement warm
   from its first pop.  [sh_ejected]/[sh_down] are written by the
   supervisor thread and read by dispatch — both systhreads of the main
   domain.  [sh_busy] crosses domains and is atomic. *)
type shard = {
  sh_id : int;
  sh_m : Mutex.t;
  sh_c : Condition.t;
  sh_q : entry Queue.t;
  mutable sh_cache : Pipeline.ladder_outcome option;
  mutable sh_closing : bool;
  mutable sh_ejected : bool;  (* round-robin skips; flipped by supervisor *)
  mutable sh_down : bool;  (* circuit breaker tripped: stays ejected *)
  mutable sh_doing : job option;  (* in-flight job, for restart re-queue *)
  sh_busy : bool Atomic.t;  (* worker between pop and reply *)
  sh_sup : Cla_par.Supervised.t;
}

(* Watch-mode state: the persistent incremental pipeline over the
   watched directory plus the last stat signature of its [.c]/[.clo]
   files.  [wa_m] serializes rescans (the poll thread and concurrent
   [reanalyze] requests); everything below it is protected by it. *)
type watcher = {
  wa_dir : string;
  wa_m : Mutex.t;
  wa_inc : Incremental.t;
  mutable wa_sig : (string * int * float) list;  (* (path, size, mtime) *)
  mutable wa_epoch : int;  (* swaps installed since boot *)
}

type t = {
  cfg : config;
  mutable view : Objfile.view;
      (* immutable once set, except for watch-mode swaps
         ([install_outcome]), which replace it whole under [solve_m] *)
  stats : stats;
  stats_m : Mutex.t;
  (* admission gate *)
  adm_m : Mutex.t;
  mutable inflight : int;
  mutable waiting : int;
  (* watchdog registry: query serial -> (cancel token, abort instant) *)
  wd_m : Mutex.t;
  wd : (int, R.Cancel.t * float) Hashtbl.t;
  mutable serial : int;
  (* the shared frozen arena: a thawed snapshot every query answers from
     lock-free; [None] without --snapshot or when the snapshot was
     rejected.  Mutable for watch mode only: a swap invalidates it
     (snapshot staleness) and [save_snapshot] refreezes it. *)
  mutable frozen : Pipeline.ladder_outcome option;
  (* solve lock + cached ladder outcome (single-shard path) *)
  solve_m : Mutex.t;
  mutable cache : Pipeline.ladder_outcome option;
  (* sharded path: empty array when [cfg.shards <= 1] *)
  shard_tab : shard array;
  rr : int Atomic.t;  (* round-robin dispatch counter *)
  (* bumped by every watch-mode swap; solves stamp it at start and skip
     the cache write when it moved, so an in-flight solve over the old
     view can never poison a post-swap cache *)
  epoch : int Atomic.t;
  mutable watcher : watcher option;  (* set by [run_watch] before serving *)
  mutable snapshot_stale : bool;  (* the staleness diagnostic fired once *)
  shutdown : bool Atomic.t;
  stopped : bool Atomic.t;  (* watchdog terminator, set after drain *)
  conns_m : Mutex.t;
  mutable live_conns : int;
  (* telemetry: one registry per shard (index 0 doubles as the
     single-mode registry) so recording never touches the global
     [Metrics.default] mutex; histogram handles are fetched once here so
     the per-query path is lock-free atomic increments *)
  started_s : float;  (* monotonic, for uptime *)
  shard_regs : Cla_obs.Metrics.t array;
  lat_h : Cla_obs.Histo.t array;  (* total latency, ns *)
  queue_h : Cla_obs.Histo.t array;  (* admission wait, ns *)
  solve_h : Cla_obs.Histo.t array;  (* solver wall, ns *)
  tel_m : Mutex.t;  (* ring + query-log writes *)
  ring : query_event option array;
  mutable ring_pos : int;
  mutable ring_len : int;
  log_oc : out_channel option;
}

let bump t f =
  Mutex.lock t.stats_m;
  f t.stats;
  Mutex.unlock t.stats_m

(* ------------------------------------------------------------------ *)
(* Per-query telemetry                                                 *)
(* ------------------------------------------------------------------ *)

let op_name = function
  | Protocol.Points_to _ -> "points-to"
  | Protocol.Alias _ -> "alias"
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Sleep _ -> "sleep"
  | Protocol.Reanalyze -> "reanalyze"

let event_json ev =
  Json.Obj
    [
      ("ts_s", Json.Float (float_of_int ev.qe_start_ns /. 1e9));
      ("op", Json.Str ev.qe_op);
      ("outcome", Json.Str ev.qe_outcome);
      ("shard", Json.Int ev.qe_shard);
      ("queue_us", Json.Int (ev.qe_queue_ns / 1000));
      ("solve_us", Json.Int (ev.qe_solve_ns / 1000));
      ("total_us", Json.Int (ev.qe_total_ns / 1000));
      ("rung", Json.Str ev.qe_rung);
      ("degraded", Json.Bool ev.qe_degraded);
      ("cache_hit", Json.Bool ev.qe_cache_hit);
    ]

(* Record one finished query: per-shard histograms (lock-free), the
   bounded recent-series, the ring, and the JSONL sink.  Events from a
   query no shard answered (ping, shed, parse errors) attribute to
   registry 0. *)
let record_event t ev =
  let i = if ev.qe_shard >= 0 then ev.qe_shard else 0 in
  Cla_obs.Histo.record t.lat_h.(i) ev.qe_total_ns;
  Cla_obs.Histo.record t.queue_h.(i) ev.qe_queue_ns;
  if ev.qe_solve_ns > 0 then Cla_obs.Histo.record t.solve_h.(i) ev.qe_solve_ns;
  Cla_obs.Metrics.observe ~reg:t.shard_regs.(i)
    ~cap:(max 1 t.cfg.ring_capacity)
    "serve.recent_total_us" (ev.qe_total_ns / 1000);
  Mutex.lock t.tel_m;
  let cap = Array.length t.ring in
  if cap > 0 then begin
    t.ring.(t.ring_pos) <- Some ev;
    t.ring_pos <- (t.ring_pos + 1) mod cap;
    if t.ring_len < cap then t.ring_len <- t.ring_len + 1
  end;
  (match t.log_oc with
  | Some oc ->
      output_string oc (Json.to_string ~indent:false (event_json ev));
      output_char oc '\n';
      flush oc
  | None -> ());
  Mutex.unlock t.tel_m

(* Ring contents, oldest first. *)
let ring_events t =
  Mutex.lock t.tel_m;
  let cap = Array.length t.ring in
  let out = ref [] in
  for k = t.ring_len - 1 downto 0 do
    let idx = (t.ring_pos - t.ring_len + k + (2 * cap)) mod cap in
    match t.ring.(idx) with Some ev -> out := ev :: !out | None -> ()
  done;
  Mutex.unlock t.tel_m;
  !out

(* Percentile block for one histogram of nanoseconds, reported in ms. *)
let pct_json h =
  let ms v = Json.Float (float_of_int v /. 1e6) in
  Json.Obj
    [
      ("count", Json.Int (Cla_obs.Histo.count h));
      ("mean_ms", Json.Float (Cla_obs.Histo.mean h /. 1e6));
      ("p50_ms", ms (Cla_obs.Histo.quantile h 0.5));
      ("p90_ms", ms (Cla_obs.Histo.quantile h 0.9));
      ("p99_ms", ms (Cla_obs.Histo.quantile h 0.99));
      ("p999_ms", ms (Cla_obs.Histo.quantile h 0.999));
      ("max_ms", ms (Cla_obs.Histo.max_value h));
    ]

(* The live-introspection payload of the [stats] op: uptime, admission
   occupancy, per-shard percentile blocks, and the merged latency
   distribution.  Histograms are merged at snapshot time only — this is
   the one place the per-shard data meets. *)
let stats_extra t =
  let uptime_s = R.Deadline.now_s () -. t.started_s in
  Mutex.lock t.adm_m;
  let inflight = t.inflight and waiting = t.waiting in
  Mutex.unlock t.adm_m;
  let shard_json i =
    (* supervision fields only exist for real shards; registry 0 of a
       single-mode server reports the base block *)
    let sup_fields =
      if i < Array.length t.shard_tab then begin
        let sh = t.shard_tab.(i) in
        [
          ("restarts", Json.Int (Cla_par.Supervised.restarts sh.sh_sup));
          ("alive", Json.Bool (Cla_par.Supervised.is_alive sh.sh_sup));
          ("ejected", Json.Bool (sh.sh_ejected || sh.sh_down));
          ("down", Json.Bool sh.sh_down);
        ]
      end
      else []
    in
    Json.Obj
      ([
         ("shard", Json.Int i);
         ( "solves",
           Json.Int
             (Option.value ~default:0
                (Cla_obs.Metrics.get_int ~reg:t.shard_regs.(i)
                   "serve.shard_solves")) );
       ]
      @ sup_fields
      @ [
          ("latency", pct_json t.lat_h.(i));
          ("queue", pct_json t.queue_h.(i));
          ("solve", pct_json t.solve_h.(i));
        ])
  in
  let merged = Cla_obs.Histo.create () in
  Array.iter (fun h -> Cla_obs.Histo.merge_into ~into:merged h) t.lat_h;
  [
    ("uptime_s", Json.Float uptime_s);
    ("inflight", Json.Int inflight);
    ("waiting", Json.Int waiting);
    ("snapshot", Json.Bool (t.frozen <> None));
    ("watching", Json.Bool (t.watcher <> None));
    ("epoch", Json.Int (Atomic.get t.epoch));
    ("shards", Json.Arr (List.init (Array.length t.lat_h) shard_json));
    ("latency", pct_json merged);
  ]

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let admit t ~deadline =
  Mutex.lock t.adm_m;
  if t.inflight < t.cfg.max_inflight then begin
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.adm_m;
    `Admitted
  end
  else if t.waiting >= t.cfg.max_queue then begin
    Mutex.unlock t.adm_m;
    `Shed
  end
  else begin
    t.waiting <- t.waiting + 1;
    (* waiting queries poll: a slot, their own deadline, or drain —
       whichever comes first.  Bounded by the query's deadline, which is
       always finite (the server fills in a default). *)
    let rec poll () =
      if t.inflight < t.cfg.max_inflight then begin
        t.waiting <- t.waiting - 1;
        t.inflight <- t.inflight + 1;
        Mutex.unlock t.adm_m;
        `Admitted
      end
      else if Atomic.get t.shutdown then begin
        t.waiting <- t.waiting - 1;
        Mutex.unlock t.adm_m;
        `Bye
      end
      else if R.Deadline.expired deadline then begin
        t.waiting <- t.waiting - 1;
        Mutex.unlock t.adm_m;
        `Queued_past_deadline
      end
      else begin
        Mutex.unlock t.adm_m;
        Thread.delay 0.002;
        Mutex.lock t.adm_m;
        poll ()
      end
    in
    poll ()
  end

let release t =
  Mutex.lock t.adm_m;
  t.inflight <- t.inflight - 1;
  Mutex.unlock t.adm_m

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let with_watchdog t ~abort_at cancel f =
  Mutex.lock t.wd_m;
  t.serial <- t.serial + 1;
  let key = t.serial in
  Hashtbl.replace t.wd key (cancel, abort_at);
  Mutex.unlock t.wd_m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.wd_m;
      Hashtbl.remove t.wd key;
      Mutex.unlock t.wd_m)
    f

let watchdog_loop t =
  while not (Atomic.get t.stopped) do
    Thread.delay 0.02;
    let now = R.Deadline.now_s () in
    Mutex.lock t.wd_m;
    Hashtbl.iter
      (fun _ (c, abort_at) ->
        if now >= abort_at && not (R.Cancel.is_set c) then begin
          R.Cancel.set c;
          bump t (fun s -> s.s_watchdog_cancels <- s.s_watchdog_cancels + 1)
        end)
      t.wd;
    Mutex.unlock t.wd_m
  done

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

(* Serialize actual solves; a waiter keeps polling its own deadline and
   cancel token so a long solve ahead of it cannot wedge it. *)
let acquire_solve_lock t ~deadline ~cancel =
  let rec go () =
    if Mutex.try_lock t.solve_m then `Locked
    else if R.Cancel.is_set cancel then `Aborted
    else if R.Deadline.expired deadline then `Aborted
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let solution_single t qc ~fresh ~deadline ~cancel :
    (Pipeline.ladder_outcome, R.Progress.t) result =
  let cached = if fresh then None else t.cache in
  match cached with
  | Some o ->
      qc.qc_cache_hit <- true;
      Ok o
  | None -> (
      let t0 = R.Deadline.now_s () in
      match acquire_solve_lock t ~deadline ~cancel with
      | `Aborted ->
          Error
            (R.Progress.make
               ~elapsed_s:(R.Deadline.now_s () -. t0)
               "aborted while waiting for the solver")
      | `Locked -> (
          Fun.protect ~finally:(fun () -> Mutex.unlock t.solve_m) @@ fun () ->
          (* someone may have filled the cache while we waited *)
          match (if fresh then None else t.cache) with
          | Some o ->
              qc.qc_cache_hit <- true;
              Ok o
          | None -> (
              let s0 = R.Deadline.now_ns () in
              match
                Pipeline.points_to_ladder ~deadline ~cancel
                  ~jobs:t.cfg.solve_jobs t.view
              with
              | o ->
                  qc.qc_solve_ns <- R.Deadline.now_ns () - s0;
                  (* degraded answers serve this query but never poison
                     the cache: the next unhurried query recomputes *)
                  if not o.Pipeline.lo_degraded then t.cache <- Some o;
                  Ok o
              | exception R.Deadline.Timed_out p ->
                  qc.qc_solve_ns <- R.Deadline.now_ns () - s0;
                  Error p
              | exception R.Cancel.Cancelled p ->
                  qc.qc_solve_ns <- R.Deadline.now_ns () - s0;
                  Error p)))

(* One shard's worker domain: pop an entry, solve (or enact a chaos
   fault), reply.  Jobs abandoned by their waiter (cancel token already
   set) are answered and skipped.  On [sh_closing] the queue is drained
   — every queued job still gets a reply — before the domain exits.

   The body is generation-stamped: a superseded domain (the supervisor
   respawned the shard while this one was wedged) exits at the next loop
   head without touching the queue, which now belongs to its
   replacement.  [Supervised.beat] stamps the heartbeat around every
   unit of progress; the supervisor reads its age. *)
let shard_loop t sh ~gen =
  let sup = sh.sh_sup in
  let reply job r =
    Mutex.lock job.j_m;
    job.j_reply <- Some r;
    Mutex.unlock job.j_m
  in
  let run_job job =
    let cached = if job.j_fresh then None else sh.sh_cache in
    Mutex.lock job.j_m;
    job.j_started <- true;
    Mutex.unlock job.j_m;
    if R.Cancel.is_set job.j_cancel then
      reply job (Error (R.Progress.make "cancelled while queued for a solver shard"))
    else
      match cached with
      | Some o ->
          job.j_cache_hit <- true;
          reply job (Ok o)
      | None -> (
          Cla_obs.Metrics.incr "serve.shard_solves";
          Cla_obs.Metrics.incr ~reg:t.shard_regs.(sh.sh_id)
            "serve.shard_solves";
          let s0 = R.Deadline.now_ns () in
          let done_solving () = job.j_solve_ns <- R.Deadline.now_ns () - s0 in
          (* stamp the epoch and pin the view: a watch-mode swap while we
             solve must not let this (now stale) outcome into the cache *)
          let epoch0 = Atomic.get t.epoch in
          let view = t.view in
          match
            Pipeline.points_to_ladder ~deadline:job.j_deadline
              ~cancel:job.j_cancel ~jobs:t.cfg.solve_jobs view
          with
          | o ->
              done_solving ();
              if not o.Pipeline.lo_degraded then begin
                Mutex.lock sh.sh_m;
                if Atomic.get t.epoch = epoch0 then sh.sh_cache <- Some o;
                Mutex.unlock sh.sh_m
              end;
              reply job (Ok o)
          | exception R.Deadline.Timed_out p ->
              done_solving ();
              reply job (Error p)
          | exception R.Cancel.Cancelled p ->
              done_solving ();
              reply job (Error p)
          | exception e ->
              done_solving ();
              reply job
                (Error
                   (R.Progress.make ("solver error: " ^ Printexc.to_string e))))
  in
  let rec loop () =
    if Cla_par.Supervised.current sup <> gen then () (* superseded: exit *)
    else begin
      Mutex.lock sh.sh_m;
      while
        Queue.is_empty sh.sh_q && (not sh.sh_closing)
        && Cla_par.Supervised.current sup = gen
      do
        Condition.wait sh.sh_c sh.sh_m
      done;
      if Cla_par.Supervised.current sup <> gen then Mutex.unlock sh.sh_m
      else
        match Queue.take_opt sh.sh_q with
        | None -> Mutex.unlock sh.sh_m (* closing, queue drained *)
        | Some (Job job) ->
            sh.sh_doing <- Some job;
            Mutex.unlock sh.sh_m;
            Atomic.set sh.sh_busy true;
            Cla_par.Supervised.beat sup;
            run_job job;
            Cla_par.Supervised.beat sup;
            Atomic.set sh.sh_busy false;
            Mutex.lock sh.sh_m;
            sh.sh_doing <- None;
            Mutex.unlock sh.sh_m;
            loop ()
        | Some Chaos_kill ->
            (* injected death: the body raises, the spawn wrapper clears
               the alive sentinel, the supervisor notices *)
            Mutex.unlock sh.sh_m;
            raise Exit
        | Some (Chaos_wedge ms) ->
            (* injected wedge: busy without heartbeat for [ms] *)
            Mutex.unlock sh.sh_m;
            Atomic.set sh.sh_busy true;
            Unix.sleepf (float_of_int ms /. 1000.);
            Atomic.set sh.sh_busy false;
            loop ()
    end
  in
  loop ()

(* Dispatch a query to a shard, round-robin.  A waiter that has not been
   picked up yet gives up on its own deadline/cancel (setting the job's
   cancel token so the shard skips it); once started, the solve bounds
   itself through the same deadline/cancel the in-thread path uses —
   including the watchdog, which fires the cancel token past the
   deadline grace. *)
(* Pick the next live shard, round-robin.  The counter is masked with
   [land max_int] before the modulo: [fetch_and_add] wraps to negative
   after 2^62 queries, and a negative [mod] would index out of bounds.
   Ejected / breaker-tripped shards are skipped; when every shard is out
   the caller falls back to the in-thread path. *)
let pick_shard t =
  let n = Array.length t.shard_tab in
  let rec go tries =
    if tries >= n then None
    else
      let i = Atomic.fetch_and_add t.rr 1 land max_int mod n in
      let sh = t.shard_tab.(i) in
      if sh.sh_ejected || sh.sh_down then go (tries + 1) else Some sh
  in
  go 0

let solution_on_shard qc sh ~fresh ~deadline ~cancel :
    (Pipeline.ladder_outcome, R.Progress.t) result =
  qc.qc_shard <- sh.sh_id;
  let cached =
    if fresh then None
    else begin
      Mutex.lock sh.sh_m;
      let c = sh.sh_cache in
      Mutex.unlock sh.sh_m;
      c
    end
  in
  match cached with
  | Some o ->
      qc.qc_cache_hit <- true;
      Ok o
  | None ->
      let t0 = R.Deadline.now_s () in
      let job =
        {
          j_deadline = deadline;
          j_cancel = cancel;
          j_fresh = fresh;
          j_m = Mutex.create ();
          j_started = false;
          j_cache_hit = false;
          j_solve_ns = 0;
          j_reply = None;
        }
      in
      Mutex.lock sh.sh_m;
      Queue.add (Job job) sh.sh_q;
      Condition.broadcast sh.sh_c;
      Mutex.unlock sh.sh_m;
      let rec wait () =
        Mutex.lock job.j_m;
        let r = job.j_reply and started = job.j_started in
        Mutex.unlock job.j_m;
        match r with
        | Some r ->
            qc.qc_cache_hit <- job.j_cache_hit;
            qc.qc_solve_ns <- job.j_solve_ns;
            r
        | None ->
            if
              (not started)
              && (R.Cancel.is_set cancel || R.Deadline.expired deadline)
            then begin
              (* abandon: mark the job so the shard skips it when popped *)
              R.Cancel.set cancel;
              Error
                (R.Progress.make
                   ~elapsed_s:(R.Deadline.now_s () -. t0)
                   "aborted while queued for a solver shard")
            end
            else begin
              Thread.delay 0.002;
              wait ()
            end
      in
      wait ()

let solution_sharded t qc ~fresh ~deadline ~cancel :
    (Pipeline.ladder_outcome, R.Progress.t) result =
  match pick_shard t with
  | None ->
      (* every shard ejected or down: serve in-thread rather than refuse *)
      solution_single t qc ~fresh ~deadline ~cancel
  | Some sh -> solution_on_shard qc sh ~fresh ~deadline ~cancel

(* The frozen arena answers first: a thawed snapshot is immutable and
   shared by every thread and shard, so steady-state queries never take
   a lock or touch a queue.  [fresh:true] bypasses it (and every cache)
   — the one way to force a live solve against a snapshot-backed
   server. *)
let solution t qc ~fresh ~deadline ~cancel =
  match (if fresh then None else t.frozen) with
  | Some o ->
      qc.qc_cache_hit <- true;
      Ok o
  | None ->
      if Array.length t.shard_tab = 0 then
        solution_single t qc ~fresh ~deadline ~cancel
      else solution_sharded t qc ~fresh ~deadline ~cancel

(* ------------------------------------------------------------------ *)
(* Shard supervision                                                   *)
(* ------------------------------------------------------------------ *)

(* Move every queued job of a shard the breaker gave up on to a live
   shard (or answer it with an error when none is left).  Chaos entries
   die with the shard. *)
let rehome_queue t sh =
  let orphans = ref [] in
  Mutex.lock sh.sh_m;
  Queue.iter
    (fun e -> match e with Job j -> orphans := j :: !orphans | _ -> ())
    sh.sh_q;
  Queue.clear sh.sh_q;
  (match sh.sh_doing with
  | Some j when (not (Cla_par.Supervised.is_alive sh.sh_sup)) && j.j_reply = None
    ->
      (* the dead domain never answered it; treat it as queued again *)
      Mutex.lock j.j_m;
      j.j_started <- false;
      Mutex.unlock j.j_m;
      orphans := j :: !orphans;
      sh.sh_doing <- None
  | _ -> ());
  Mutex.unlock sh.sh_m;
  List.iter
    (fun j ->
      match pick_shard t with
      | Some sh2 ->
          Mutex.lock sh2.sh_m;
          Queue.add (Job j) sh2.sh_q;
          Condition.broadcast sh2.sh_c;
          Mutex.unlock sh2.sh_m
      | None ->
          Mutex.lock j.j_m;
          if j.j_reply = None then
            j.j_reply <-
              Some (Error (R.Progress.make "solver shard down, none left"));
          Mutex.unlock j.j_m)
    (List.rev !orphans)

(* Restart one dead or wedged shard: eject it from dispatch, reap the
   corpse (dead only — a wedged domain cannot be joined and is parked as
   a zombie by the respawn), charge the restart budget, and either
   respawn the worker over the shard's surviving queue/cache or trip the
   breaker and leave the shard down for good. *)
let restart_shard t sh ~dead ~window_ns =
  Mutex.lock sh.sh_m;
  sh.sh_ejected <- true;
  Mutex.unlock sh.sh_m;
  if dead then Cla_par.Supervised.reap_dead sh.sh_sup;
  match
    Cla_par.Supervised.note_restart sh.sh_sup ~budget:t.cfg.restart_budget
      ~window_ns
  with
  | `Give_up ->
      Mutex.lock sh.sh_m;
      sh.sh_down <- true;
      Mutex.unlock sh.sh_m;
      bump t (fun s -> s.s_shards_down <- s.s_shards_down + 1);
      Cla_obs.Metrics.incr "serve.shards_down";
      rehome_queue t sh
  | `Restart ->
      (* a dead domain's in-flight job never answered: put it back first
         so the replacement pops it *)
      Mutex.lock sh.sh_m;
      (match sh.sh_doing with
      | Some j when dead && j.j_reply = None ->
          Mutex.lock j.j_m;
          j.j_started <- false;
          Mutex.unlock j.j_m;
          Queue.add (Job j) sh.sh_q;
          sh.sh_doing <- None
      | _ -> ());
      Mutex.unlock sh.sh_m;
      Atomic.set sh.sh_busy false;
      Cla_par.Supervised.spawn sh.sh_sup (fun ~gen -> shard_loop t sh ~gen);
      bump t (fun s -> s.s_shard_restarts <- s.s_shard_restarts + 1);
      Cla_obs.Metrics.incr "serve.shard_restarts";
      Mutex.lock sh.sh_m;
      sh.sh_ejected <- false;
      Condition.broadcast sh.sh_c;
      Mutex.unlock sh.sh_m

(* The supervisor systhread: every 10ms, look for shards whose domain
   died (alive sentinel cleared) or wedged (busy with a heartbeat older
   than the grace).  Long legitimate solves are bounded by their query's
   deadline + watchdog, so a sensible grace never fires on them — and a
   false positive is benign anyway: the superseded domain finishes its
   reply and exits at its next generation check. *)
let supervisor_loop t =
  let grace_ns = t.cfg.heartbeat_grace_ms * 1_000_000 in
  let window_ns = t.cfg.restart_window_ms * 1_000_000 in
  while not (Atomic.get t.stopped) do
    Thread.delay 0.01;
    if not (Atomic.get t.shutdown) then
      Array.iter
        (fun sh ->
          if not sh.sh_down then begin
            let dead = not (Cla_par.Supervised.is_alive sh.sh_sup) in
            let wedged =
              (not dead)
              && Atomic.get sh.sh_busy
              && Cla_par.Supervised.beat_age_ns sh.sh_sup > grace_ns
            in
            if dead || wedged then restart_shard t sh ~dead ~window_ns
          end)
        t.shard_tab
  done

(* ------------------------------------------------------------------ *)
(* Chaos injection (the [bench chaos] harness drives these)            *)
(* ------------------------------------------------------------------ *)

let chaos_enqueue t i e =
  if i < 0 || i >= Array.length t.shard_tab then false
  else begin
    let sh = t.shard_tab.(i) in
    Mutex.lock sh.sh_m;
    Queue.add e sh.sh_q;
    Condition.broadcast sh.sh_c;
    Mutex.unlock sh.sh_m;
    true
  end

let chaos_kill_shard t i = chaos_enqueue t i Chaos_kill
let chaos_wedge_shard t i ~wedge_ms = chaos_enqueue t i (Chaos_wedge wedge_ms)

(* ------------------------------------------------------------------ *)
(* Watch mode: scan, swap, rescan ([cla serve --watch])                 *)
(* ------------------------------------------------------------------ *)

let outcome_view (o : Pipeline.ladder_outcome) =
  o.Pipeline.lo_solution.Solution.view

(* Rewrite the snapshot sidecar from a fresh non-degraded outcome and
   restore the lock-free frozen-arena path over the new view. *)
let refreeze t (outcome : Pipeline.ladder_outcome) =
  match t.cfg.save_snapshot with
  | Some path when not outcome.Pipeline.lo_degraded -> (
      match Snapshot.save path ~view:(outcome_view outcome) outcome with
      | () ->
          t.frozen <- Some outcome;
          Cla_obs.Metrics.incr "serve.snapshot_refreeze"
      | exception Sys_error m ->
          Printf.eprintf "cla serve: --save-snapshot: %s\n%!" m)
  | _ -> ()

(* Install a freshly-analyzed view as the served solution.  The epoch
   bump comes first: a shard solve that started before it skips its
   cache write (see [run_job]), and the single-shard path serializes
   with us on [solve_m] — so no solve over the old view can poison a
   post-swap cache.  Queries already in flight finish against whichever
   outcome they hold; that stays internally consistent because answers
   resolve variable names against the outcome's own view. *)
let install_outcome t (outcome : Pipeline.ladder_outcome) =
  Atomic.incr t.epoch;
  Mutex.lock t.solve_m;
  t.view <- outcome_view outcome;
  t.cache <- Some outcome;
  Mutex.unlock t.solve_m;
  Array.iter
    (fun sh ->
      Mutex.lock sh.sh_m;
      sh.sh_cache <- Some outcome;
      Mutex.unlock sh.sh_m)
    t.shard_tab;
  (* snapshot staleness: the frozen arena is bound to the pre-swap view
     and must stop answering — one structured diagnostic, first swap
     only *)
  if t.frozen <> None then begin
    t.frozen <- None;
    if not t.snapshot_stale then begin
      t.snapshot_stale <- true;
      Cla_obs.Metrics.incr "serve.snapshot_stale";
      Printf.eprintf "cla serve: %s\n%!"
        (Diag.to_string
           (Diag.warning ~phase:Diag.Load
              "snapshot stale after relink: the frozen arena no longer \
               matches the served database and stops answering \
               (--save-snapshot refreezes it)"))
    end
  end;
  refreeze t outcome

let scan_watch_dir dir =
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare names;
  let acc = ref [] in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".c" || Filename.check_suffix name ".clo"
      then
        let path = Filename.concat dir name in
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
            acc := (path, st_size, st_mtime) :: !acc
        | _ -> ()
        | exception Unix.Unix_error _ -> ())
    names;
  List.rev !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Split a scan into compile inputs ([.c], read now — the TU-hash probe
   needs the text anyway) and pre-compiled units ([.clo], loaded through
   the revalidating {!Loader.load_file_cached}).  A file that fails to
   read or load is reported and left out of this round — the server
   keeps answering from the last consistent solution. *)
let watch_inputs sg =
  let sources = ref [] and units = ref [] in
  List.iter
    (fun (path, _, _) ->
      if Filename.check_suffix path ".c" then
        match read_file path with
        | s -> sources := (path, s) :: !sources
        | exception Sys_error m ->
            Printf.eprintf "cla serve: watch: %s\n%!" m
      else
        match Loader.load_file_cached path with
        | Ok v -> units := (path, v) :: !units
        | Error d ->
            Cla_obs.Metrics.incr (Diag.metric_of_phase d.Diag.phase);
            Printf.eprintf "cla serve: watch: %s\n%!" (Diag.to_string d))
    sg;
  (List.rev !sources, List.rev !units)

(* Full build over the watched directory, before the server exists. *)
let watch_boot dir =
  let sg = scan_watch_dir dir in
  let sources, units = watch_inputs sg in
  if sources = [] && units = [] then
    raise (Sys_error (dir ^ ": no .c or .clo files to watch"));
  let inc, _ = Incremental.create ~units sources in
  {
    wa_dir = dir;
    wa_m = Mutex.create ();
    wa_inc = inc;
    wa_sig = sg;
    wa_epoch = 0;
  }

(* One rescan: stat the directory and, when the signature moved (or
   [force]), rebuild the inputs, run the incremental update and swap the
   served solution.  Any failure (a source unparsable mid-edit, an
   unreadable object) leaves the previous solution serving and is
   reported — stale-but-consistent beats down. *)
let watch_rescan t w ~force =
  Mutex.lock w.wa_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.wa_m) @@ fun () ->
  let sg = scan_watch_dir w.wa_dir in
  let changed =
    let old = Hashtbl.create 64 in
    List.iter (fun (p, sz, mt) -> Hashtbl.replace old p (sz, mt)) w.wa_sig;
    let c = ref 0 in
    List.iter
      (fun (p, sz, mt) ->
        (match Hashtbl.find_opt old p with
        | Some (sz', mt') when sz' = sz && Float.equal mt' mt -> ()
        | _ -> incr c);
        Hashtbl.remove old p)
      sg;
    !c + Hashtbl.length old
  in
  if changed = 0 && not force then `Unchanged
  else begin
    let t0 = R.Deadline.now_s () in
    match
      let sources, units = watch_inputs sg in
      if sources = [] && units = [] then
        failwith (w.wa_dir ^ ": no .c or .clo files left to serve");
      Incremental.update w.wa_inc ~units sources
    with
    | st ->
        w.wa_sig <- sg;
        install_outcome t
          (Pipeline.outcome_of_solution Pipeline.Pretransitive
             (Incremental.solution w.wa_inc));
        w.wa_epoch <- w.wa_epoch + 1;
        Cla_obs.Metrics.incr "serve.reanalyzes";
        `Swapped (changed, st, R.Deadline.now_s () -. t0)
    | exception e ->
        Cla_obs.Metrics.incr "serve.watch_errors";
        let msg = Printexc.to_string e in
        Printf.eprintf "cla serve: watch: reanalyze failed: %s\n%!" msg;
        `Failed msg
  end

(* The poll thread: a stat sweep every [watch_poll_ms], napping in short
   slices so drain is not held up by the period. *)
let watch_loop t w =
  let period = Float.max 0.01 (float_of_int t.cfg.watch_poll_ms /. 1000.) in
  while not (Atomic.get t.stopped) do
    let left = ref period in
    while !left > 0. && not (Atomic.get t.stopped) do
      Thread.delay (Float.min 0.05 !left);
      left := !left -. 0.05
    done;
    if not (Atomic.get t.stopped) && not (Atomic.get t.shutdown) then
      ignore (watch_rescan t w ~force:false)
  done

let find_var t name = Objfile.find_targets t.view name

let pts_of (o : Pipeline.ladder_outcome) v =
  Solution.points_to o.Pipeline.lo_solution v

let target_names (o : Pipeline.ladder_outcome) set =
  Lvalset.fold
    (fun acc z -> Solution.var_name o.Pipeline.lo_solution z :: acc)
    [] set
  |> List.rev

let sets_intersect (a : Lvalset.t) (b : Lvalset.t) =
  let small, big =
    if Lvalset.cardinal a <= Lvalset.cardinal b then (a, b) else (b, a)
  in
  let hit = ref false in
  Lvalset.iter (fun z -> if (not !hit) && Lvalset.mem z big then hit := true) small;
  !hit

let timeout_response ~id (p : R.Progress.t) =
  Protocol.timeout ~id ~at_pass:p.R.Progress.at_pass
    ~elapsed_ms:(p.R.Progress.elapsed_s *. 1000.)
    ~detail:p.R.Progress.detail

(* Interruptible sleep (debug op for load tests): honors deadline and
   cancel in 5ms slices, holding its admission slot throughout — the
   deterministic way to make the server busy. *)
let do_sleep ~deadline ~cancel ms =
  let until = R.Deadline.now_s () +. (float_of_int ms /. 1000.) in
  let rec nap () =
    if R.Deadline.expired deadline || R.Cancel.is_set cancel then
      Error
        (R.Progress.make
           ~elapsed_s:(float_of_int ms /. 1000.)
           "sleep interrupted")
    else if R.Deadline.now_s () >= until then Ok ()
    else begin
      Thread.delay 0.005;
      nap ()
    end
  in
  nap ()

let run_admitted t (req : Protocol.request) qc ~start_ns ~deadline ~cancel =
  let id = req.Protocol.r_id in
  (* server-side timing attached to ok answers, built at reply time *)
  let telemetry () =
    {
      Protocol.t_shard = qc.qc_shard;
      t_queue_ms = float_of_int qc.qc_queue_ns /. 1e6;
      t_solve_ms = float_of_int qc.qc_solve_ns /. 1e6;
      t_server_ms = float_of_int (R.Deadline.now_ns () - start_ns) /. 1e6;
      t_cache_hit = qc.qc_cache_hit;
    }
  in
  match req.Protocol.r_op with
  | Protocol.Ping ->
      bump t (fun s -> s.s_ok <- s.s_ok + 1);
      Protocol.ok_ping ~id
  | Protocol.Stats ->
      Mutex.lock t.stats_m;
      t.stats.s_ok <- t.stats.s_ok + 1;
      let cs = stats_counters t.stats in
      Mutex.unlock t.stats_m;
      Protocol.ok_stats ~id ~extra:(stats_extra t) cs
  | Protocol.Sleep ms -> (
      if not t.cfg.allow_sleep then begin
        bump t (fun s -> s.s_error <- s.s_error + 1);
        Protocol.error ~id "sleep op disabled (start the server with --allow-sleep)"
      end
      else
        match do_sleep ~deadline ~cancel ms with
        | Ok () ->
            bump t (fun s -> s.s_ok <- s.s_ok + 1);
            Protocol.ok_sleep ~id ~ms
        | Error p ->
            bump t (fun s -> s.s_timeout <- s.s_timeout + 1);
            timeout_response ~id p)
  | Protocol.Reanalyze -> (
      match t.watcher with
      | None ->
          bump t (fun s -> s.s_error <- s.s_error + 1);
          Protocol.error ~id
            "reanalyze: this server is not watching a directory (start it \
             with --watch DIR)"
      | Some w -> (
          match watch_rescan t w ~force:false with
          | `Unchanged ->
              bump t (fun s -> s.s_ok <- s.s_ok + 1);
              Protocol.ok_reanalyze ~id ~epoch:(Atomic.get t.epoch) ~changed:0
                ~sources:0 ~cache_hits:0 ~cache_misses:0 ~resumed:false
                ~wall_ms:0. ()
          | `Swapped (changed, st, wall_s) ->
              bump t (fun s -> s.s_ok <- s.s_ok + 1);
              Protocol.ok_reanalyze ~id ~epoch:(Atomic.get t.epoch) ~changed
                ~sources:st.Incremental.sources
                ~cache_hits:st.Incremental.cache_hits
                ~cache_misses:st.Incremental.cache_misses
                ~resumed:st.Incremental.resumed
                ~wall_ms:(wall_s *. 1000.) ()
          | `Failed msg ->
              bump t (fun s -> s.s_error <- s.s_error + 1);
              Protocol.error ~id ~code:500 ("reanalyze failed: " ^ msg)))
  | Protocol.Points_to name -> (
      (* cheap pre-check against the current view so unknown variables
         never pay for a solve *)
      match find_var t name with
      | [] ->
          bump t (fun s -> s.s_error <- s.s_error + 1);
          Protocol.error ~id ~code:404 (Printf.sprintf "unknown variable %S" name)
      | _ :: _ -> (
          match solution t qc ~fresh:req.Protocol.r_fresh ~deadline ~cancel with
          | Error p ->
              bump t (fun s -> s.s_timeout <- s.s_timeout + 1);
              timeout_response ~id p
          | Ok o -> (
              (* resolve against the outcome's own view: a watch-mode
                 swap between the pre-check and the solve must not mix
                 pre-swap ids with a post-swap solution *)
              match Objfile.find_targets (outcome_view o) name with
              | [] ->
                  bump t (fun s -> s.s_error <- s.s_error + 1);
                  Protocol.error ~id ~code:404
                    (Printf.sprintf "unknown variable %S" name)
              | v :: _ ->
                  bump t (fun s ->
                      s.s_ok <- s.s_ok + 1;
                      if o.Pipeline.lo_degraded then
                        s.s_degraded <- s.s_degraded + 1);
                  let rung = Pipeline.algorithm_name o.Pipeline.lo_algorithm in
                  qc.qc_rung <- rung;
                  qc.qc_degraded <- o.Pipeline.lo_degraded;
                  Protocol.ok_points_to ~id ~telemetry:(telemetry ()) ~rung
                    ~degraded:o.Pipeline.lo_degraded ~var:name
                    ~targets:(target_names o (pts_of o v))
                    ())))
  | Protocol.Alias (n1, n2) -> (
      match (find_var t n1, find_var t n2) with
      | [], _ ->
          bump t (fun s -> s.s_error <- s.s_error + 1);
          Protocol.error ~id ~code:404 (Printf.sprintf "unknown variable %S" n1)
      | _, [] ->
          bump t (fun s -> s.s_error <- s.s_error + 1);
          Protocol.error ~id ~code:404 (Printf.sprintf "unknown variable %S" n2)
      | _ :: _, _ :: _ -> (
          match solution t qc ~fresh:req.Protocol.r_fresh ~deadline ~cancel with
          | Error p ->
              bump t (fun s -> s.s_timeout <- s.s_timeout + 1);
              timeout_response ~id p
          | Ok o -> (
              match
                ( Objfile.find_targets (outcome_view o) n1,
                  Objfile.find_targets (outcome_view o) n2 )
              with
              | [], _ | _, [] ->
                  bump t (fun s -> s.s_error <- s.s_error + 1);
                  Protocol.error ~id ~code:404
                    (Printf.sprintf "unknown variable %S"
                       (if Objfile.find_targets (outcome_view o) n1 = [] then
                          n1
                        else n2))
              | v1 :: _, v2 :: _ ->
                  bump t (fun s ->
                      s.s_ok <- s.s_ok + 1;
                      if o.Pipeline.lo_degraded then
                        s.s_degraded <- s.s_degraded + 1);
                  let rung = Pipeline.algorithm_name o.Pipeline.lo_algorithm in
                  qc.qc_rung <- rung;
                  qc.qc_degraded <- o.Pipeline.lo_degraded;
                  Protocol.ok_alias ~id ~telemetry:(telemetry ()) ~rung
                    ~degraded:o.Pipeline.lo_degraded ~var:n1 ~var2:n2
                    ~aliased:(sets_intersect (pts_of o v1) (pts_of o v2))
                    ())))

let handle_line t line =
  let start_ns = R.Deadline.now_ns () in
  let qc =
    {
      qc_shard = -1;
      qc_queue_ns = 0;
      qc_solve_ns = 0;
      qc_cache_hit = false;
      qc_rung = "";
      qc_degraded = false;
    }
  in
  let opn = ref "parse" in
  bump t (fun s -> s.s_queries <- s.s_queries + 1);
  let response =
    match Protocol.parse line with
    | Error (id, msg) ->
        bump t (fun s -> s.s_error <- s.s_error + 1);
        Protocol.error ~id msg
    | Ok req -> (
        opn := op_name req.Protocol.r_op;
        let id = req.Protocol.r_id in
        if Atomic.get t.shutdown then begin
          bump t (fun s -> s.s_bye <- s.s_bye + 1);
          Protocol.bye ~id
        end
        else
          let dl_ms =
            match req.Protocol.r_deadline_ms with
            | Some d -> max 1 (min d t.cfg.max_deadline_ms)
            | None -> t.cfg.default_deadline_ms
          in
          let deadline = R.Deadline.of_ms dl_ms in
          let adm0 = R.Deadline.now_ns () in
          match admit t ~deadline with
          | `Shed ->
              bump t (fun s -> s.s_shed <- s.s_shed + 1);
              Protocol.shed ~id ~retry_after_ms:(max 10 (dl_ms / 4))
          | `Bye ->
              bump t (fun s -> s.s_bye <- s.s_bye + 1);
              Protocol.bye ~id
          | `Queued_past_deadline ->
              qc.qc_queue_ns <- R.Deadline.now_ns () - adm0;
              bump t (fun s -> s.s_timeout <- s.s_timeout + 1);
              timeout_response ~id
                (R.Progress.make
                   ~elapsed_s:(float_of_int dl_ms /. 1000.)
                   "deadline passed while queued for admission")
          | `Admitted ->
              qc.qc_queue_ns <- R.Deadline.now_ns () - adm0;
              Fun.protect ~finally:(fun () -> release t) @@ fun () ->
              let cancel = R.Cancel.create () in
              let abort_at =
                R.Deadline.now_s ()
                +. Float.max 0. (R.Deadline.remaining_s deadline)
                +. (float_of_int t.cfg.watchdog_grace_ms /. 1000.)
              in
              with_watchdog t ~abort_at cancel @@ fun () ->
              (* last-resort catch: a query must answer, not kill its
                 connection *)
              (try run_admitted t req qc ~start_ns ~deadline ~cancel with
              | R.Deadline.Timed_out p | R.Cancel.Cancelled p ->
                  bump t (fun s -> s.s_timeout <- s.s_timeout + 1);
                  timeout_response ~id p
              | e ->
                  bump t (fun s -> s.s_error <- s.s_error + 1);
                  Protocol.error ~id ~code:500
                    ("internal error: " ^ Printexc.to_string e)))
  in
  record_event t
    {
      qe_start_ns = start_ns;
      qe_op = !opn;
      qe_outcome = Protocol.(status_name (status_of_line response));
      qe_shard = qc.qc_shard;
      qe_queue_ns = qc.qc_queue_ns;
      qe_solve_ns = qc.qc_solve_ns;
      qe_total_ns = R.Deadline.now_ns () - start_ns;
      qe_rung = qc.qc_rung;
      qe_degraded = qc.qc_degraded;
      qe_cache_hit = qc.qc_cache_hit;
    };
  response

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let handle_conn t fd =
  bump t (fun s -> s.s_connections <- s.s_connections + 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
           let line = String.trim line in
           if line = "" then loop ()
           else begin
             let response = handle_line t line in
             output_string oc response;
             output_char oc '\n';
             flush oc;
             (* during drain, answer the line that was already in flight
                and close; new connections are not accepted anyway *)
             if not (Atomic.get t.shutdown) then loop ()
           end
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_m;
  t.live_conns <- t.live_conns - 1;
  Mutex.unlock t.conns_m

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) view =
  (* one registry (and one handle per histogram) per shard; single mode
     gets exactly one of each *)
  let n_regs = if config.shards <= 1 then 1 else min config.shards 64 in
  let shard_regs = Array.init n_regs (fun _ -> Cla_obs.Metrics.create ()) in
  let histos name =
    Array.init n_regs (fun i -> Cla_obs.Metrics.histo ~reg:shard_regs.(i) name)
  in
  (* thaw the persisted solution, if any.  Rejection (corrupt bytes,
     version bump, wrong database) is a diagnostic plus a fallback to
     live solves — never a wrong answer, never a refusal to start. *)
  let frozen =
    match config.snapshot_path with
    | None -> None
    | Some path -> (
        match Snapshot.load_result path ~view with
        | Ok o ->
            Cla_obs.Metrics.set "serve.snapshot" 1;
            Some o
        | Error d ->
            Cla_obs.Metrics.incr (Diag.metric_of_phase d.Diag.phase);
            Printf.eprintf
              "cla serve: %s\ncla serve: falling back to a live solve\n%!"
              (Diag.to_string d);
            None)
  in
  {
    cfg = config;
    view;
    stats =
      {
        s_queries = 0;
        s_ok = 0;
        s_shed = 0;
        s_timeout = 0;
        s_error = 0;
        s_bye = 0;
        s_degraded = 0;
        s_watchdog_cancels = 0;
        s_connections = 0;
        s_shard_restarts = 0;
        s_shards_down = 0;
      };
    stats_m = Mutex.create ();
    adm_m = Mutex.create ();
    inflight = 0;
    waiting = 0;
    wd_m = Mutex.create ();
    wd = Hashtbl.create 32;
    serial = 0;
    frozen;
    solve_m = Mutex.create ();
    cache = frozen;
    shard_tab =
      (if config.shards <= 1 then [||]
       else
         Array.init
           (min config.shards 64)
           (fun i ->
             {
               sh_id = i;
               sh_m = Mutex.create ();
               sh_c = Condition.create ();
               sh_q = Queue.create ();
               sh_cache = frozen;
               sh_closing = false;
               sh_ejected = false;
               sh_down = false;
               sh_doing = None;
               sh_busy = Atomic.make false;
               sh_sup = Cla_par.Supervised.create ();
             }));
    rr = Atomic.make 0;
    epoch = Atomic.make 0;
    watcher = None;
    snapshot_stale = false;
    shutdown = Atomic.make false;
    stopped = Atomic.make false;
    conns_m = Mutex.create ();
    live_conns = 0;
    started_s = R.Deadline.now_s ();
    shard_regs;
    lat_h = histos "serve.latency_ns";
    queue_h = histos "serve.queue_ns";
    solve_h = histos "serve.solve_ns";
    tel_m = Mutex.create ();
    ring = Array.make (max 1 config.ring_capacity) None;
    ring_pos = 0;
    ring_len = 0;
    log_oc =
      Option.map
        (fun p ->
          open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 p)
        config.query_log;
  }

(** Ask a running server to drain (what the SIGINT/SIGTERM handlers
    call). *)
let request_shutdown t = Atomic.set t.shutdown true

(* Claim the socket path.  A leftover socket from a crashed server (no
   listener behind it) is taken over: probe with a connect — refused or
   vanished means stale, unlink and rebind.  A live listener or a
   non-socket file at the path is an error; never silently unlink
   another server out from under its clients. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    (match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK -> ()
    | _ ->
        raise (Sys_error (path ^ ": exists and is not a socket"))
    | exception Unix.Unix_error _ -> ());
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> `Live
          | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
            ->
              `Stale
          | exception Unix.Unix_error _ -> `Stale)
    in
    match verdict with
    | `Live -> raise (Sys_error (path ^ ": a server is already listening"))
    | `Stale -> ( try Sys.remove path with Sys_error _ -> ())
  end

let run_server t (config : config) on_ready : stats =
  (* a client that disconnects mid-response must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  List.iter
    (fun sg ->
      try Sys.set_signal sg (Sys.Signal_handle (fun _ -> request_shutdown t))
      with Invalid_argument _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  claim_socket_path config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 64;
  (* from here on the socket file is ours: remove it on every exit path
     — graceful drain, accept-loop exception, anything — so a crash
     leaves at worst a stale file the next server takes over *)
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove config.socket_path with Sys_error _ -> ())
  @@ fun () ->
  let wd_thread = Thread.create watchdog_loop t in
  Cla_obs.Metrics.set "serve.shards" (max 1 (Array.length t.shard_tab));
  Array.iter
    (fun sh -> Cla_par.Supervised.spawn sh.sh_sup (fun ~gen -> shard_loop t sh ~gen))
    t.shard_tab;
  let sup_thread =
    if config.supervise && Array.length t.shard_tab > 0 then
      Some (Thread.create supervisor_loop t)
    else None
  in
  let watch_thread =
    Option.map (fun w -> Thread.create (watch_loop t) w) t.watcher
  in
  let stop_workers () =
    (* stop the solver shards: each drains its queue (every queued job
       still answers) and exits; superseded zombies are reaped too *)
    Array.iter
      (fun sh ->
        Mutex.lock sh.sh_m;
        sh.sh_closing <- true;
        Condition.broadcast sh.sh_c;
        Mutex.unlock sh.sh_m)
      t.shard_tab;
    Array.iter (fun sh -> Cla_par.Supervised.join_all sh.sh_sup) t.shard_tab;
    Atomic.set t.stopped true;
    Thread.join wd_thread;
    (match sup_thread with Some th -> Thread.join th | None -> ());
    match watch_thread with Some th -> Thread.join th | None -> ()
  in
  (try
     on_ready t;
     (* accept loop: select with a short timeout so SIGTERM (which flips
        [shutdown] from the handler) is noticed promptly *)
     while not (Atomic.get t.shutdown) do
       match Unix.select [ sock ] [] [] 0.1 with
       | [], _, _ -> ()
       | _ -> (
           match Unix.accept sock with
           | fd, _ ->
               Mutex.lock t.conns_m;
               t.live_conns <- t.live_conns + 1;
               Mutex.unlock t.conns_m;
               ignore (Thread.create (handle_conn t) fd)
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with e ->
     (* accept-loop failure: stop workers before re-raising so the
        process exits instead of hanging on live domains *)
     Atomic.set t.shutdown true;
     stop_workers ();
     raise e);
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Sys.remove config.socket_path with Sys_error _ -> ());
  (* drain: in-flight queries finish (their watchdogs still armed);
     bounded so a wedged connection cannot hold the exit hostage *)
  let drain_deadline = R.Deadline.after ~seconds:10. in
  let live () =
    Mutex.lock t.conns_m;
    let n = t.live_conns in
    Mutex.unlock t.conns_m;
    n
  in
  while live () > 0 && not (R.Deadline.expired drain_deadline) do
    Thread.delay 0.02
  done;
  stop_workers ();
  (* the per-shard registries meet the global one exactly once, here —
     [--stats] / [--stats-json] at exit show the aggregated histograms *)
  Array.iter
    (fun reg -> Cla_obs.Metrics.merge_into ~into:Cla_obs.Metrics.default reg)
    t.shard_regs;
  (match config.trace_path with
  | None -> ()
  | Some path ->
      (* the ring as a Chrome trace: one complete event per recent query,
         one lane per shard (lane 0 doubles as the shardless lane) *)
      let lanes =
        List.map
          (fun ev ->
            ( max 0 ev.qe_shard,
              {
                Cla_obs.Span.name = ev.qe_op;
                label =
                  Some
                    (if ev.qe_rung = "" then ev.qe_outcome
                     else ev.qe_outcome ^ ":" ^ ev.qe_rung);
                start_s = float_of_int ev.qe_start_ns /. 1e9;
                wall_s = float_of_int ev.qe_total_ns /. 1e9;
                user_s = float_of_int ev.qe_solve_ns /. 1e9;
                gc_minor_words = 0.;
                gc_major_words = 0.;
                children = [];
              } ))
          (ring_events t)
      in
      try Cla_obs.Trace.write_lanes path lanes with Sys_error _ -> ());
  (match t.log_oc with Some oc -> (try close_out oc with Sys_error _ -> ()) | None -> ());
  t.stats

let run ?(config = default_config) ?(on_ready = fun _ -> ()) view : stats =
  let t = create ~config view in
  run_server t config on_ready

let run_watch ?(config = default_config) ?(on_ready = fun _ -> ()) dir : stats
    =
  let config = { config with watch_dir = Some dir } in
  let w = watch_boot dir in
  let t = create ~config (Incremental.view w.wa_inc) in
  t.watcher <- Some w;
  (* seed the caches with the boot solve so first queries hit; an
     accepted --snapshot (already seeded by [create]) keeps precedence
     until the first swap marks it stale *)
  let boot =
    Pipeline.outcome_of_solution Pipeline.Pretransitive
      (Incremental.solution w.wa_inc)
  in
  if t.frozen = None then begin
    t.cache <- Some boot;
    Array.iter (fun sh -> sh.sh_cache <- Some boot) t.shard_tab;
    (* --save-snapshot from boot: the arena is lock-free immediately and
       the sidecar exists before the first edit *)
    refreeze t boot
  end;
  run_server t config on_ready
