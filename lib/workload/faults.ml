(** Fault injection for CLA object files.

    Robustness harness: mutate serialized database bytes in ways that
    model real-world corruption — truncated downloads, flipped bits,
    reordered section tables — and check that the reader upholds its
    contract: every mutated file either loads and analyzes to the
    {e identical} solution, or is rejected with a structured
    [Binio.Corrupt] / [Diag.Fail].  Any other exception, out-of-bounds
    access, or runaway allocation is a bug in the reader.

    Mutations are drawn from the deterministic {!Rng}, so a sweep is
    reproducible from its seed. *)

open Cla_core

type mutation =
  | Truncate of int  (** keep only the first [n] bytes *)
  | Byte_flip of int * int  (** xor the byte at [offset] with [mask] *)
  | Table_swap of int * int
      (** swap section-table entries [i] and [j] wholesale *)

let describe = function
  | Truncate n -> Fmt.str "truncate to %d bytes" n
  | Byte_flip (off, mask) -> Fmt.str "flip byte %d with 0x%02x" off mask
  | Table_swap (i, j) -> Fmt.str "swap section-table entries %d and %d" i j

(* The section-table geometry of serialized bytes, or None if the file is
   too mangled to locate a table (mutations then fall back to byte
   flips). *)
let table_geometry data =
  if String.length data < 8 then None
  else
    let esize =
      if String.sub data 0 4 = "CLA2" then Some 13
      else if String.sub data 0 4 = "CLA1" then Some 9
      else None
    in
    match esize with
    | None -> None
    | Some esize ->
        let b i = Char.code data.[i] in
        let nsec = b 4 lor (b 5 lsl 8) lor (b 6 lsl 16) lor (b 7 lsl 24) in
        if nsec < 2 || 8 + (nsec * esize) > String.length data then None
        else Some (nsec, esize)

let apply data = function
  | Truncate n -> String.sub data 0 (min n (String.length data))
  | Byte_flip (off, mask) ->
      if off >= String.length data then data
      else begin
        let b = Bytes.of_string data in
        Bytes.set b off (Char.chr (Char.code data.[off] lxor (mask land 0xff)));
        Bytes.unsafe_to_string b
      end
  | Table_swap (i, j) -> (
      match table_geometry data with
      | None -> data
      | Some (nsec, esize) ->
          let i = i mod nsec and j = j mod nsec in
          let b = Bytes.of_string data in
          let oi = 8 + (i * esize) and oj = 8 + (j * esize) in
          Bytes.blit_string data oj b oi esize;
          Bytes.blit_string data oi b oj esize;
          Bytes.unsafe_to_string b)

(* CLA2's table checksum deliberately rejects reordered tables, so a
   Table_swap on current-format bytes must re-seal the header to test
   what it is meant to test: that the *reader* is order-independent.
   [reseal] recomputes the table crc32; on CLA1 (or unrecognizable)
   bytes it is the identity. *)
let reseal data =
  match table_geometry data with
  | Some (nsec, 13) when String.length data >= 8 + (nsec * 13) + 4 ->
      let table_end = 8 + (nsec * 13) in
      let crc = Crc32.sub data ~pos:4 ~len:(table_end - 4) in
      let b = Bytes.of_string data in
      Bytes.set_uint8 b table_end (crc land 0xff);
      Bytes.set_uint8 b (table_end + 1) ((crc lsr 8) land 0xff);
      Bytes.set_uint8 b (table_end + 2) ((crc lsr 16) land 0xff);
      Bytes.set_uint8 b (table_end + 3) ((crc lsr 24) land 0xff);
      Bytes.unsafe_to_string b
  | _ -> data

let random rng data =
  let len = String.length data in
  match Rng.int rng 3 with
  | 0 -> Truncate (Rng.int rng (max 1 len))
  | 1 -> Byte_flip (Rng.int rng (max 1 len), 1 + Rng.int rng 255)
  | _ -> Table_swap (Rng.int rng 64, Rng.int rng 64)

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Accepted of Solution.t  (** parsed and analyzed *)
  | Rejected of string  (** structured corruption diagnostic *)

(** The reader's contract was broken: a mutation escaped as something
    other than [Binio.Corrupt] / [Diag.Fail]. *)
exception Invariant_violation of mutation * exn

(* Load + analyze mutated bytes.  [demand:false] forces every dynamic
   block through the decoder, so corruption in a block the analysis
   would not otherwise touch is still exercised. *)
let check_bytes mutated =
  match
    let v = Objfile.view_of_string mutated in
    (Andersen.solve ~demand:false v).Andersen.solution
  with
  | sol -> Accepted sol
  | exception Binio.Corrupt msg -> Rejected msg
  | exception Diag.Fail d -> Rejected (Diag.to_string d)

let check data m =
  let mutated =
    match m with
    | Table_swap _ -> reseal (apply data m)
    | _ -> apply data m
  in
  try check_bytes mutated
  with e -> raise (Invariant_violation (m, e))

type stats = {
  n_total : int;
  n_accepted : int;  (** loaded and analyzed (identical solution) *)
  n_rejected : int;  (** rejected with a structured diagnostic *)
}

(** Run [n] random mutations of [data] through load + analyze.  When
    [baseline] is given, an accepted mutant whose solution differs from
    it is an {!Invariant_violation} — corruption must never silently
    change analysis results. *)
let sweep ?baseline ~seed ~n data =
  let rng = Rng.create seed in
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to n do
    let m = random rng data in
    match check data m with
    | Accepted sol ->
        (match baseline with
        | Some b when not (Solution.equal b sol) ->
            raise
              (Invariant_violation
                 (m, Failure "accepted mutant with a different solution"))
        | _ -> ());
        incr accepted
    | Rejected _ -> incr rejected
  done;
  { n_total = n; n_accepted = !accepted; n_rejected = !rejected }
