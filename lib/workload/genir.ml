(** Random constraint-program generator (database level, no C involved).

    Used by the property-based tests — on any generated program the
    pre-transitive, worklist and bit-vector solvers must produce identical
    points-to sets, and Steensgaard's must be a superset — and by the
    ablation benchmarks, which need pure solver workloads without parse
    cost. *)

open Cla_ir
open Cla_core

type params = {
  n_vars : int;
  n_addr : int;
  n_copy : int;
  n_store : int;
  n_load : int;
  n_deref2 : int;
  n_funcs : int;  (** functions with standardized arg/ret vars *)
  n_indirect : int;  (** indirect call sites *)
}

let default_params =
  {
    n_vars = 30;
    n_addr = 15;
    n_copy = 25;
    n_store = 8;
    n_load = 8;
    n_deref2 = 3;
    n_funcs = 2;
    n_indirect = 2;
  }

(** Generate a database: plain variables [0, n_vars), then per function a
    [Func] variable, [2] args and a ret. *)
let generate ?(params = default_params) seed : Objfile.db =
  let rng = Rng.create seed in
  let vars = ref [] in
  let nv = ref 0 in
  let add_var name kind =
    let id = !nv in
    incr nv;
    vars :=
      {
        Objfile.vname = name;
        vkind = kind;
        vlinkage = Var.Intern;
        vtyp = "int*";
        vloc = Loc.make ~file:"gen.c" ~line:(id + 1) ~col:0;
        vowner = "";
        vdefined = true;
      }
      :: !vars;
    id
  in
  for i = 0 to params.n_vars - 1 do
    ignore (add_var (Fmt.str "v%d" i) Var.Global)
  done;
  let fundefs = ref [] in
  let funptr_pool = ref [] in
  for f = 0 to params.n_funcs - 1 do
    let fv = add_var (Fmt.str "f%d" f) Var.Func in
    let a1 = add_var (Fmt.str "f%d@1" f) (Var.Arg 1) in
    let a2 = add_var (Fmt.str "f%d@2" f) (Var.Arg 2) in
    let ret = add_var (Fmt.str "f%d@ret" f) Var.Ret in
    fundefs :=
      {
        Objfile.ffvar = fv;
        farity = 2;
        fret = ret;
        fargs = [| a1; a2 |];
        ffloc = Loc.none;
      }
      :: !fundefs;
    funptr_pool := fv :: !funptr_pool
  done;
  let indirects = ref [] in
  for i = 0 to params.n_indirect - 1 do
    let p = Rng.int rng params.n_vars in
    let a1 = add_var (Fmt.str "ip%d@1" i) (Var.Arg 1) in
    let ret = add_var (Fmt.str "ip%d@ret" i) Var.Ret in
    indirects :=
      {
        Objfile.iptr = p;
        inargs = 1;
        iret = ret;
        iargs = [| a1 |];
        iiloc = Loc.none;
      }
      :: !indirects
  done;
  let nvars = !nv in
  let any () = Rng.int rng nvars in
  let plain () = Rng.int rng params.n_vars in
  let statics = ref [] in
  let blocks = Array.make nvars [] in
  let loc = Loc.make ~file:"gen.c" ~line:0 ~col:0 in
  let prim pkind pdst psrc =
    { Objfile.pkind; pdst; psrc; pop = None; ploc = loc }
  in
  for _ = 1 to params.n_addr do
    (* occasionally take a function's address so indirect calls resolve *)
    let src =
      if params.n_funcs > 0 && Rng.flip rng 0.2 then
        List.nth !funptr_pool (Rng.int rng (List.length !funptr_pool))
      else plain ()
    in
    statics := prim Objfile.Paddr (any ()) src :: !statics
  done;
  let block pkind =
    let dst = any () and src = any () in
    blocks.(src) <- prim pkind dst src :: blocks.(src)
  in
  for _ = 1 to params.n_copy do
    block Objfile.Pcopy
  done;
  for _ = 1 to params.n_store do
    block Objfile.Pstore
  done;
  for _ = 1 to params.n_load do
    block Objfile.Pload
  done;
  for _ = 1 to params.n_deref2 do
    block Objfile.Pderef2
  done;
  let vars_arr = Array.of_list (List.rev !vars) in
  {
    Objfile.vars = vars_arr;
    keys = [];
    statics = List.rev !statics;
    blocks;
    fundefs = List.rev !fundefs;
    indirects = List.rev !indirects;
    consts = [];
    openworld = None;
    tuhash = None;
    meta =
      {
        Objfile.mfiles = [ "gen.c" ];
        msource_lines = 0;
        mpreproc_lines = 0;
        mcounts =
          {
            Prim.n_copy = params.n_copy;
            n_addr = params.n_addr;
            n_store = params.n_store;
            n_deref2 = params.n_deref2;
            n_load = params.n_load;
          };
      };
  }

(** Generate and roundtrip through serialization (what the solvers see). *)
let view ?params seed : Objfile.view =
  Objfile.view_of_string (Objfile.write (generate ?params seed))

(* ------------------------------------------------------------------ *)
(* Shaped solver workloads                                             *)
(* ------------------------------------------------------------------ *)

type shape = Sparse | Dense | Cyclic

let all_shapes = [ Sparse; Dense; Cyclic ]
let shape_name = function Sparse -> "sparse" | Dense -> "dense" | Cyclic -> "cyclic"

(* Build a db out of plain global pointer variables, address-of statics
   and block-resident records — the common scaffolding of the shaped
   generators below. *)
let mk_shaped_db ~nvars ~statics ~blocks ~counts : Objfile.db =
  let vars =
    Array.init nvars (fun id ->
        {
          Objfile.vname = Fmt.str "v%d" id;
          vkind = Var.Global;
          vlinkage = Var.Intern;
          vtyp = "int*";
          vloc = Loc.make ~file:"gen.c" ~line:(id + 1) ~col:0;
          vowner = "";
          vdefined = true;
        })
  in
  {
    Objfile.vars;
    keys = [];
    statics;
    blocks;
    fundefs = [];
    indirects = [];
    consts = [];
    openworld = None;
    tuhash = None;
    meta =
      {
        Objfile.mfiles = [ "gen.c" ];
        msource_lines = 0;
        mpreproc_lines = 0;
        mcounts = counts;
      };
  }

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

(** [shaped ?scale shape seed] — a deterministic pure-solver workload in
    one of three profiles (see the .mli).  [scale] multiplies every size
    knob; 1.0 is the bench's default, tiny fractions make smoke tests. *)
let shaped ?(scale = 1.0) shape seed : Objfile.view =
  let rng = Rng.create seed in
  let loc = Loc.make ~file:"gen.c" ~line:0 ~col:0 in
  let prim pkind pdst psrc =
    { Objfile.pkind; pdst; psrc; pop = None; ploc = loc }
  in
  let statics = ref [] in
  let n_addr = ref 0 and n_copy = ref 0 in
  let n_store = ref 0 and n_load = ref 0 in
  let addr blocks dst src =
    ignore blocks;
    incr n_addr;
    statics := prim Objfile.Paddr dst src :: !statics
  in
  let record blocks k dst src =
    (match k with
    | Objfile.Pcopy -> incr n_copy
    | Objfile.Pstore -> incr n_store
    | Objfile.Pload -> incr n_load
    | _ -> ());
    blocks.(src) <- prim k dst src :: blocks.(src)
  in
  let db =
    match shape with
    | Sparse ->
        (* many variables, few constraints each: points-to sets stay
           small, exercising the sorted-array representation and the
           pool's sharing of tiny sets *)
        let nvars = scaled scale 1200 in
        let blocks = Array.make nvars [] in
        let v () = Rng.int rng nvars in
        for _ = 1 to scaled scale 700 do
          addr blocks (v ()) (v ())
        done;
        for _ = 1 to scaled scale 1800 do
          record blocks Objfile.Pcopy (v ()) (v ())
        done;
        for _ = 1 to scaled scale 90 do
          record blocks Objfile.Pstore (v ()) (v ())
        done;
        for _ = 1 to scaled scale 90 do
          record blocks Objfile.Pload (v ()) (v ())
        done;
        mk_shaped_db ~nvars ~statics:(List.rev !statics) ~blocks
          ~counts:
            {
              Prim.n_copy = !n_copy;
              n_addr = !n_addr;
              n_store = !n_store;
              n_deref2 = 0;
              n_load = !n_load;
            }
    | Dense ->
        (* a layered DAG with wide fan-in over a compact pool of base
           locations (allocated first, so bitmap extents stay tight):
           upper layers accumulate most of the base pool, producing the
           large dense sets where word-ORs beat array merges *)
        let nbase = scaled scale 400 in
        let width = max 8 (int_of_float (32. *. sqrt scale)) in
        let layers = 6 in
        let fanin = 6 in
        let node l j = nbase + (l * width) + j in
        let nvars = nbase + (layers * width) in
        let blocks = Array.make nvars [] in
        (* bottom layer: several address-of records per node *)
        for j = 0 to width - 1 do
          for _ = 1 to 5 do
            addr blocks (node 0 j) (Rng.int rng nbase)
          done
        done;
        (* upper layers: each node copies from [fanin] nodes below *)
        for l = 1 to layers - 1 do
          for j = 0 to width - 1 do
            for _ = 1 to fanin do
              record blocks Objfile.Pcopy (node l j)
                (node (l - 1) (Rng.int rng width))
            done
          done
        done;
        (* a few stores/loads through top-layer pointers, so complex
           assignments see the big sets and force extra passes *)
        for _ = 1 to max 2 (width / 4) do
          let top = node (layers - 1) (Rng.int rng width) in
          record blocks Objfile.Pstore top (node 1 (Rng.int rng width));
          record blocks Objfile.Pload (node 2 (Rng.int rng width)) top
        done;
        mk_shaped_db ~nvars ~statics:(List.rev !statics) ~blocks
          ~counts:
            {
              Prim.n_copy = !n_copy;
              n_addr = !n_addr;
              n_store = !n_store;
              n_deref2 = 0;
              n_load = !n_load;
            }
    | Cyclic ->
        (* rings of copy edges with cross-ring chords: every reachability
           walk runs into cycles, stressing Tarjan SCC collapse and the
           skip-pointer/unification machinery *)
        let ring_size = 24 in
        let nrings = scaled scale 10 in
        let nbase = scaled scale 80 in
        let node r i = nbase + (r * ring_size) + i in
        let nvars = nbase + (nrings * ring_size) in
        let blocks = Array.make nvars [] in
        for r = 0 to nrings - 1 do
          (* the ring itself *)
          for i = 0 to ring_size - 1 do
            record blocks Objfile.Pcopy (node r i) (node r ((i + 1) mod ring_size))
          done;
          (* seed each ring with a few bases *)
          for _ = 1 to 4 do
            addr blocks (node r (Rng.int rng ring_size)) (Rng.int rng nbase)
          done;
          (* chords into the next ring *)
          if r + 1 < nrings then begin
            record blocks Objfile.Pcopy (node r 0) (node (r + 1) (ring_size / 2));
            record blocks Objfile.Pcopy (node (r + 1) 1) (node r (ring_size / 3))
          end
        done;
        (* cross-ring loads/stores so complexes keep the passes honest *)
        for _ = 1 to nrings do
          let p = node (Rng.int rng nrings) (Rng.int rng ring_size) in
          record blocks Objfile.Pstore p (node (Rng.int rng nrings) 2);
          record blocks Objfile.Pload (node (Rng.int rng nrings) 3) p
        done;
        mk_shaped_db ~nvars ~statics:(List.rev !statics) ~blocks
          ~counts:
            {
              Prim.n_copy = !n_copy;
              n_addr = !n_addr;
              n_store = !n_store;
              n_deref2 = 0;
              n_load = !n_load;
            }
  in
  Objfile.view_of_string (Objfile.write db)
