(** Differential fuzzing of the C normalizer.

    Generates small random C programs stressing the frontend corners
    that historically dropped constraints — function pointers through
    struct fields, multi-level arrays of pointers, varargs call sites —
    and checks the real pipeline (parse, normalize, link, solve) against
    a tiny independent reference: each statement template carries its
    own meaning as abstract inclusion constraints, solved by a naive
    fixpoint.  The points-to sets of the named program variables must be
    identical on both sides.

    Deterministic: a run is reproducible from its seed, and failing
    cases are minimized by greedy statement deletion. *)

type divergence = {
  d_var : string;  (** the variable whose sets differ *)
  d_expected : string list;  (** reference solver, sorted *)
  d_actual : string list;  (** real pipeline, sorted *)
}

type kind =
  | Crash of string  (** exception out of the real pipeline *)
  | Diverge of divergence list

type failure = {
  f_index : int;  (** which case in the stream failed *)
  f_kind : kind;  (** from the minimized reproducer *)
  f_source : string;  (** greedily minimized reproducer *)
  f_full_source : string;  (** the original, unminimized case *)
}

type stats = {
  n_cases : int;
  n_probes : int;  (** points-to sets compared across all cases *)
}

(** Run [cases] differential cases derived from [seed], stopping at the
    first failure (returned minimized).  [on_progress] is called with
    each finished case index. *)
val run :
  ?on_progress:(int -> unit) ->
  seed:int64 ->
  cases:int ->
  unit ->
  (stats, failure) result

val pp_kind : Format.formatter -> kind -> unit
