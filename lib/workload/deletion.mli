(** The open-world soundness gate: body-deletion streams.

    Deletes function bodies from a complete synthetic program in a
    seeded random order and checks, at every step, that the open-world
    analysis of the stripped fragment keeps every may-point-to fact the
    exact closed-world analysis of the complete program established —
    restricted to the objects that survive deletion (deleted bodies'
    locals are abstracted by the blob).  The check is set inclusion
    (⊇), not equality: havoc is an over-approximation by design
    (DESIGN.md, "Open world"). *)

type violation = {
  v_step : int;  (** 1-based deletion step *)
  v_dropped : string list;  (** bodies deleted at this step *)
  v_var : string;  (** the variable whose facts went missing *)
  v_missing : string list;
      (** closed-world targets that survive deletion but are absent from
          the open-world set *)
}

type outcome = {
  n_steps : int;
  n_funcs : int;  (** defined functions in the complete program *)
  n_dropped : int;  (** bodies deleted by the final step *)
  n_checked : int;  (** (variable, step) inclusion checks performed *)
}

(** Run the gate over [steps] (default 5) deletion steps derived from
    [seed].  [inject_unsound] analyzes the stripped fragments
    closed-world instead of synthesizing havoc — the gate must then
    report a violation, proving it can fail. *)
val run :
  ?inject_unsound:bool ->
  ?steps:int ->
  seed:int64 ->
  Profile.t ->
  (outcome, violation) result
