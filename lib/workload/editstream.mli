(** Seeded random TU edit streams over a {!Genc} base program — the
    workload behind the incremental (delta-solve) bench and tests.

    Edits touch exactly one translation unit each and are strictly
    append-only at the text level (declarations a block needs, then a
    fresh carrier function holding one new assignment), which keeps
    every pre-existing variable's uid — and through the delta linker's
    stable-id matching, its linked id — unchanged, so the resulting
    constraint delta is pure-add.  With [p_remove > 0] a step may
    instead delete a previously-added carrier function (declarations
    stay): constraints disappear, the delta stops being pure-add, and
    the solver is expected to take its from-scratch fallback. *)

type t

type step = {
  snum : int;  (** 1-based step number *)
  sfile : string;  (** the one edited file *)
  sdesc : string;  (** what the edit did, for logs *)
  sremoval : bool;  (** removed constraints: expect the solver fallback *)
  ssources : (string * string) list;  (** full program after the edit *)
}

(** [create ?seed ?p_remove profile] seeds a stream over the Genc
    program of [profile].  [p_remove] (default 0) is the probability a
    step removes a prior edit instead of adding one. *)
val create : ?seed:int64 -> ?p_remove:float -> Profile.t -> t

(** The current full source set ([(file, source)] pairs); before any
    {!next} this is the Genc base program. *)
val sources : t -> (string * string) list

(** Apply one random edit and return it (with the post-edit sources). *)
val next : t -> step
