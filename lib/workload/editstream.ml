(** Seeded random TU edit streams over a {!Genc} base program — the
    workload behind the incremental (delta-solve) bench and tests.

    Every edit touches exactly one translation unit and is {e strictly
    append-only at the text level}: an edit appends a block at the end
    of the chosen file consisting of the declarations it needs (a
    definition in the block's file, [extern] elsewhere — each global has
    one owning file, so no symbol is defined twice) followed by a fresh
    top-level function [void ce_edit_<k>(void) { <stmt> }] carrying the
    new assignment.  Appending after all existing text keeps every
    previously-compiled variable's uid — and hence, through the delta
    linker's stable-id matching, its linked id — unchanged, which is
    what makes the resulting constraint delta pure-add.

    A {e removal} edit deletes the function of a previously-added block
    (its declarations stay, so no variable disappears and ids of keyed
    symbols survive); the assignments it carried go away, the link
    delta stops being pure-add, and the solver is expected to take its
    from-scratch fallback.  [p_remove] sets how often that happens. *)

type gkind = Gint | Gptr | Gptr2 | Gfun | Gfunptr

type global = { gname : string; gkind : gkind; gowner : int }

(* One appended edit block in a file: declaration lines (never removed)
   plus the removable function text. *)
type block = { b_decls : string; mutable b_fn : string }

type file_state = {
  f_name : string;
  f_base : string;
  mutable f_blocks : block list;  (* reverse order of addition *)
  f_declared : (string, unit) Hashtbl.t;
}

type t = {
  rng : Rng.t;
  files : file_state array;
  mutable globals : global list;  (* reverse order of creation *)
  mutable next_id : int;
  mutable steps : int;
  p_remove : float;
}

type step = {
  snum : int;  (** 1-based step number *)
  sfile : string;  (** the one edited file *)
  sdesc : string;
  sremoval : bool;  (** removed constraints: expect the solver fallback *)
  ssources : (string * string) list;  (** full program after the edit *)
}

let create ?(seed = 0xed17L) ?(p_remove = 0.0) profile =
  let base = Genc.generate ~seed profile in
  if base = [] then invalid_arg "Editstream.create: empty base program";
  {
    rng = Rng.create seed;
    files =
      Array.of_list
        (List.map
           (fun (name, src) ->
             {
               f_name = name;
               f_base = src;
               f_blocks = [];
               f_declared = Hashtbl.create 16;
             })
           base);
    globals = [];
    next_id = 0;
    steps = 0;
    p_remove;
  }

let render fs =
  let b = Buffer.create (String.length fs.f_base + 256) in
  Buffer.add_string b fs.f_base;
  List.iter
    (fun blk ->
      Buffer.add_string b blk.b_decls;
      Buffer.add_string b blk.b_fn)
    (List.rev fs.f_blocks);
  Buffer.contents b

let sources t =
  Array.to_list (Array.map (fun fs -> (fs.f_name, render fs)) t.files)

let fresh t =
  let k = t.next_id in
  t.next_id <- k + 1;
  k

(* Declaration line for [g] as seen from file [fi]. *)
let decl_line fi (g : global) =
  let ext = if g.gowner = fi then "" else "extern " in
  match g.gkind with
  | Gint -> Fmt.str "%sint %s;\n" ext g.gname
  | Gptr -> Fmt.str "%sint *%s;\n" ext g.gname
  | Gptr2 -> Fmt.str "%sint **%s;\n" ext g.gname
  | Gfun -> Fmt.str "extern int %s(int);\n" g.gname
      (* the definition text lives in the owner's block *)
  | Gfunptr -> Fmt.str "%sint (*%s)(int);\n" ext g.gname

(* Globals of a kind usable from file [fi] (any owner — cross-file use
   just costs an extern declaration, which is the point). *)
let usable t kind =
  List.filter (fun g -> g.gkind = kind) t.globals |> Array.of_list

let new_global t ~owner kind =
  let k = fresh t in
  let gname =
    match kind with
    | Gint -> Fmt.str "ce_i%d" k
    | Gptr -> Fmt.str "ce_p%d" k
    | Gptr2 -> Fmt.str "ce_pp%d" k
    | Gfun -> Fmt.str "ce_f%d" k
    | Gfunptr -> Fmt.str "ce_fp%d" k
  in
  let g = { gname; gkind = kind; gowner = owner } in
  t.globals <- g :: t.globals;
  g

(* Pick an existing global of [kind], or mint one owned by [fi]. *)
let pick_or_new t fi kind =
  let pool = usable t kind in
  if Array.length pool > 0 && not (Rng.flip t.rng 0.25) then
    Rng.choose t.rng pool
  else new_global t ~owner:fi kind

let removable t =
  let acc = ref [] in
  Array.iter
    (fun fs ->
      List.iter (fun blk -> if blk.b_fn <> "" then acc := (fs, blk) :: !acc)
        fs.f_blocks)
    t.files;
  Array.of_list !acc

(* Append one edit block in file [fi]: the needed declarations (only
   those not yet declared there) and a fresh carrier function around
   [stmt].  [extra_top] is extra top-level text placed before the
   carrier (a new function's definition). *)
let append_block t fi ~globals ~extra_top ~stmt =
  let fs = t.files.(fi) in
  let decls = Buffer.create 64 in
  List.iter
    (fun (g : global) ->
      let skip_decl = g.gkind = Gfun && g.gowner = fi in
      if (not (Hashtbl.mem fs.f_declared g.gname)) && not skip_decl then begin
        Hashtbl.replace fs.f_declared g.gname ();
        Buffer.add_string decls (decl_line fi g)
      end)
    globals;
  let k = fresh t in
  let fn = Fmt.str "%svoid ce_edit_%d(void) { %s }\n" extra_top k stmt in
  fs.f_blocks <- { b_decls = Buffer.contents decls; b_fn = fn } :: fs.f_blocks

let next t =
  t.steps <- t.steps + 1;
  let fi = Rng.int t.rng (Array.length t.files) in
  let removables = removable t in
  let remove_now =
    Array.length removables > 0 && Rng.flip t.rng t.p_remove
  in
  let sfile, sdesc, sremoval =
    if remove_now then begin
      let fs, blk = Rng.choose t.rng removables in
      blk.b_fn <- "";
      (fs.f_name, "remove edit block", true)
    end
    else begin
      let fs = t.files.(fi) in
      let kind = Rng.int t.rng 6 in
      let desc =
        match kind with
        | 0 ->
            (* fresh address-of chain: p = &i *)
            let i = new_global t ~owner:fi Gint in
            let p = new_global t ~owner:fi Gptr in
            append_block t fi ~globals:[ i; p ] ~extra_top:""
              ~stmt:(Fmt.str "%s = &%s;" p.gname i.gname);
            "new chain p = &i"
        | 1 ->
            (* point an existing pointer somewhere (maybe cross-file) *)
            let p = pick_or_new t fi Gptr in
            let i = pick_or_new t fi Gint in
            append_block t fi ~globals:[ p; i ] ~extra_top:""
              ~stmt:(Fmt.str "%s = &%s;" p.gname i.gname);
            "point p = &i"
        | 2 ->
            (* pointer copy *)
            let p1 = pick_or_new t fi Gptr in
            let p2 = pick_or_new t fi Gptr in
            append_block t fi ~globals:[ p1; p2 ] ~extra_top:""
              ~stmt:(Fmt.str "%s = %s;" p1.gname p2.gname);
            "copy p1 = p2"
        | 3 ->
            (* aim a double pointer: pp = &p *)
            let pp = pick_or_new t fi Gptr2 in
            let p = pick_or_new t fi Gptr in
            append_block t fi ~globals:[ pp; p ] ~extra_top:""
              ~stmt:(Fmt.str "%s = &%s;" pp.gname p.gname);
            "aim pp = &p"
        | 4 ->
            (* complex traffic through a double pointer *)
            let pp = pick_or_new t fi Gptr2 in
            let p = pick_or_new t fi Gptr in
            let stmt =
              if Rng.flip t.rng 0.5 then
                Fmt.str "*%s = %s;" pp.gname p.gname
              else Fmt.str "%s = *%s;" p.gname pp.gname
            in
            append_block t fi ~globals:[ pp; p ] ~extra_top:"" ~stmt;
            "deref *pp/p"
        | _ ->
            if Rng.flip t.rng 0.5 then begin
              (* new function, aimed at by a function pointer *)
              let f = new_global t ~owner:fi Gfun in
              let fp = pick_or_new t fi Gfunptr in
              let def = Fmt.str "int %s(int p) { return p; }\n" f.gname in
              append_block t fi ~globals:[ f; fp ] ~extra_top:def
                ~stmt:(Fmt.str "%s = &%s;" fp.gname f.gname);
              "new fn, fp = &f"
            end
            else begin
              (* indirect call through a function pointer *)
              let fp = pick_or_new t fi Gfunptr in
              let i = pick_or_new t fi Gint in
              append_block t fi ~globals:[ fp; i ] ~extra_top:""
                ~stmt:(Fmt.str "%s = (*%s)(%s);" i.gname fp.gname i.gname);
              "indirect call i = (*fp)(i)"
            end
      in
      (fs.f_name, desc, false)
    end
  in
  { snum = t.steps; sfile; sdesc; sremoval; ssources = sources t }
