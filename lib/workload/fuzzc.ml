(** Differential fuzzing of the C normalizer.

    Each case is a small random C program built from templates that
    stress the frontend corners most likely to drop constraints:
    function pointers stored in (and called through) struct fields,
    multi-level arrays of pointers, varargs call sites, loads and stores
    through multi-level pointers, and direct/indirect calls mixing all
    of them.

    Every statement template carries its own meaning as reference
    constraints over abstract locations, so each case has two
    independent renderings: C text fed to the real pipeline
    (parse, normalize, link, Andersen solve) and constraints fed to a
    ~40-line naive inclusion solver.  The observable points-to sets of
    the named program variables must be identical; any difference means
    the normalizer dropped or invented a constraint.  Crashes anywhere
    in the real pipeline are failures too.

    Cases are drawn from the deterministic {!Rng}, so a run is
    reproducible from its seed, and a failing case is shrunk by greedy
    statement deletion before being reported. *)

open Cla_core
module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Reference constraints and their naive solver                        *)
(* ------------------------------------------------------------------ *)

(* Abstract locations are strings; functions appear as their own name
   and their interface variables as "f@1" / "f@ret" like the real
   standardized variables. *)
type rcon =
  | Raddr of string * string  (* dst gains src itself *)
  | Rcopy of string * string  (* dst includes src *)
  | Rstore of string * string  (* every target of dst includes src *)
  | Rload of string * string  (* dst includes every target of src *)
  | Rcall of string * string list * string
      (* call through ptr loc: args flow to params, ret flows back *)

(* Fixpoint over the constraint set: fine for the tens of constraints a
   case holds, and independently simple enough to trust. *)
let ref_solve (cons : rcon list) ~(arity : (string * int) list) :
    string -> SS.t =
  let pts : (string, SS.t) Hashtbl.t = Hashtbl.create 64 in
  let get l = Option.value ~default:SS.empty (Hashtbl.find_opt pts l) in
  let changed = ref true in
  let add l s =
    if not (SS.subset s (get l)) then begin
      Hashtbl.replace pts l (SS.union s (get l));
      changed := true
    end
  in
  while !changed do
    changed := false;
    List.iter
      (function
        | Raddr (d, s) -> add d (SS.singleton s)
        | Rcopy (d, s) -> add d (get s)
        | Rstore (d, s) -> SS.iter (fun t -> add t (get s)) (get d)
        | Rload (d, s) -> SS.iter (fun t -> add d (get t)) (get s)
        | Rcall (p, args, ret) ->
            SS.iter
              (fun f ->
                match List.assoc_opt f arity with
                | None -> () (* a non-function value: no call effect *)
                | Some n ->
                    List.iteri
                      (fun i a ->
                        if i < n then
                          add (f ^ "@" ^ string_of_int (i + 1)) (get a))
                      args;
                    add ret (get (f ^ "@ret")))
              (get p))
      cons
  done;
  get

(* ------------------------------------------------------------------ *)
(* Case model                                                          *)
(* ------------------------------------------------------------------ *)

(* One statement: the C text, which function body owns it (-1 is the
   driver), and what it means. *)
type action = { a_owner : int; a_code : string; a_ref : rcon list }

type case = {
  k_ng : int;  (* int globals g0.. — the address-taken targets *)
  k_np : int;  (* int* globals p0.. *)
  k_nq : int;  (* int** globals q0.. *)
  k_nf : int;  (* void f<k>(int *x) functions — the fptr candidates *)
  k_actions : action array;
}

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_case rng : case =
  let ng = 3 + Rng.int rng 4 in
  let np = 3 + Rng.int rng 4 in
  let nq = 2 + Rng.int rng 2 in
  let nf = 2 + Rng.int rng 2 in
  let tmp = ref 0 in
  let fresh () =
    incr tmp;
    Fmt.str "$t%d" !tmp
  in
  let g () = Fmt.str "g%d" (Rng.int rng ng) in
  let p () = Fmt.str "p%d" (Rng.int rng np) in
  let q () = Fmt.str "q%d" (Rng.int rng nq) in
  let f () = Fmt.str "f%d" (Rng.int rng nf) in
  (* a pointer-valued source expression: C text, the abstract location
     holding its value, and the constraints materializing that location *)
  let psrc owner =
    let n = if owner >= 0 then 8 else 7 in
    match Rng.int rng n with
    | 0 ->
        let gv = g () in
        let t = fresh () in
        (Fmt.str "&%s" gv, t, [ Raddr (t, gv) ])
    | 1 | 2 -> let pv = p () in (pv, pv, [])
    | 3 ->
        let qv = q () in
        let t = fresh () in
        (Fmt.str "*%s" qv, t, [ Rload (t, qv) ])
    | 4 -> (Fmt.str "arr[%d]" (Rng.int rng 3), "arr", [])
    | 5 -> (Fmt.str "m[%d][%d]" (Rng.int rng 2) (Rng.int rng 2), "m", [])
    | 6 -> ((if Rng.flip rng 0.5 then "s.d0" else "sp->d0"), "S.d0", [])
    | _ ->
        (* the enclosing function's own parameter *)
        ("x", Fmt.str "%s$x" (if owner < nf then Fmt.str "f%d" owner else "r0"), [])
  in
  (* a pointer-valued destination lvalue *)
  let pdst () =
    match Rng.int rng 6 with
    | 0 | 1 -> let pv = p () in (pv, pv)
    | 2 -> ((if Rng.flip rng 0.5 then "s.d0" else "sp->d0"), "S.d0")
    | 3 -> (Fmt.str "arr[%d]" (Rng.int rng 3), "arr")
    | 4 -> (Fmt.str "m[%d][%d]" (Rng.int rng 2) (Rng.int rng 2), "m")
    | _ -> let pv = p () in (pv, pv)
  in
  (* a function-pointer lvalue / call head *)
  let fptr () =
    match Rng.int rng 6 with
    | 0 -> ("s.h0", "S.h0")
    | 1 -> ("s.h1", "S.h1")
    | 2 -> ("sp->h0", "S.h0")
    | 3 -> ("sp->h1", "S.h1")
    | 4 -> (Fmt.str "tab[%d]" (Rng.int rng 3), "tab")
    | _ -> ("fp0", "fp0")
  in
  let n_actions = 8 + Rng.int rng 20 in
  let actions =
    Array.init n_actions (fun _ ->
        (* most statements live in the driver; some in function bodies so
           parameter flows are exercised *)
        let owner = if Rng.flip rng 0.25 then Rng.int rng (nf + 1) else -1 in
        match Rng.int rng 10 with
        | 0 | 1 ->
            (* plain pointer assignment, possibly through fields/arrays *)
            let src, l, setup = psrc owner in
            let dst, dl = pdst () in
            { a_owner = owner;
              a_code = Fmt.str "%s = %s;" dst src;
              a_ref = setup @ [ Rcopy (dl, l) ] }
        | 2 ->
            let pv = p () in
            let qv = q () in
            { a_owner = owner;
              a_code = Fmt.str "%s = &%s;" qv pv;
              a_ref = [ Raddr (qv, pv) ] }
        | 3 ->
            let src, l, setup = psrc owner in
            let qv = q () in
            { a_owner = owner;
              a_code = Fmt.str "*%s = %s;" qv src;
              a_ref = setup @ [ Rstore (qv, l) ] }
        | 4 ->
            let pv = p () in
            let qv = q () in
            { a_owner = owner;
              a_code = Fmt.str "%s = *%s;" pv qv;
              a_ref = [ Rload (pv, qv) ] }
        | 5 ->
            (* store a function into a function-pointer slot *)
            let fv = f () in
            let dst, dl = fptr () in
            let amp = if Rng.flip rng 0.5 then "&" else "" in
            { a_owner = owner;
              a_code = Fmt.str "%s = %s%s;" dst amp fv;
              a_ref = [ Raddr (dl, fv) ] }
        | 6 ->
            (* indirect call through a function-pointer slot *)
            let head, hl = fptr () in
            let head =
              if head = "fp0" && Rng.flip rng 0.5 then "(*fp0)" else head
            in
            let src, l, setup = psrc owner in
            { a_owner = owner;
              a_code = Fmt.str "%s(%s);" head src;
              a_ref = setup @ [ Rcall (hl, [ l ], fresh ()) ] }
        | 7 ->
            let fv = f () in
            let src, l, setup = psrc owner in
            { a_owner = owner;
              a_code = Fmt.str "%s(%s);" fv src;
              a_ref = setup @ [ Rcopy (fv ^ "@1", l) ] }
        | 8 ->
            let src, l, setup = psrc owner in
            let dst, dl = pdst () in
            { a_owner = owner;
              a_code = Fmt.str "%s = r0(%s);" dst src;
              a_ref = setup @ [ Rcopy ("r0@1", l); Rcopy (dl, "r0@ret") ] }
        | _ ->
            (* variadic call: the extras land in v0's varargs bucket *)
            let s1, l1, su1 = psrc owner in
            let s2, l2, su2 = psrc owner in
            let dst, dl = pdst () in
            { a_owner = owner;
              a_code = Fmt.str "%s = v0(0, %s, %s);" dst s1 s2;
              a_ref =
                su1 @ su2
                @ [ Rcopy ("v0@0", l1); Rcopy ("v0@0", l2);
                    Rcopy (dl, "v0@ret") ] })
  in
  { k_ng = ng; k_np = np; k_nq = nq; k_nf = nf; k_actions = actions }

(* ------------------------------------------------------------------ *)
(* Rendering — C text and reference constraints from the same case     *)
(* ------------------------------------------------------------------ *)

let render (k : case) ~(keep : bool array) : string =
  let b = Buffer.create 1024 in
  let pr fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pr "struct S { void (*h0)(int *); void (*h1)(int *); int *d0; };\n";
  for i = 0 to k.k_nf - 1 do
    pr "void f%d(int *x);\n" i
  done;
  pr "int *r0(int *x);\n";
  pr "int *v0(int n, ...);\n";
  for i = 0 to k.k_ng - 1 do pr "int g%d;\n" i done;
  for i = 0 to k.k_np - 1 do pr "int *p%d;\n" i done;
  for i = 0 to k.k_nq - 1 do pr "int **q%d;\n" i done;
  pr "struct S s;\n";
  pr "struct S *sp = &s;\n";
  pr "void (*tab[3])(int *);\n";
  pr "int *arr[3];\n";
  pr "int *m[2][2];\n";
  pr "void (*fp0)(int *);\n";
  let body owner =
    Array.iteri
      (fun i (a : action) ->
        if keep.(i) && a.a_owner = owner then pr "  %s\n" a.a_code)
      k.k_actions
  in
  for i = 0 to k.k_nf - 1 do
    pr "void f%d(int *x) {\n" i;
    body i;
    pr "}\n"
  done;
  pr "int *r0(int *x) {\n";
  body k.k_nf;
  pr "  return x;\n}\n";
  pr "int *v0(int n, ...) {\n";
  pr "  __builtin_va_list ap;\n";
  pr "  int *t;\n";
  pr "  __builtin_va_start(ap, n);\n";
  pr "  t = __builtin_va_arg(ap, int *);\n";
  pr "  __builtin_va_end(ap);\n";
  pr "  return t;\n}\n";
  pr "void start(void) {\n";
  body (-1);
  pr "}\n";
  Buffer.contents b

let ref_constraints (k : case) ~(keep : bool array) : rcon list =
  let fixed =
    [ Raddr ("sp", "s");
      Rcopy ("r0$x", "r0@1"); Rcopy ("r0@ret", "r0$x");
      Raddr ("v0$ap", "v0@0"); Rload ("v0$t", "v0$ap");
      Rcopy ("v0@ret", "v0$t") ]
    @ List.init k.k_nf (fun i ->
          Rcopy (Fmt.str "f%d$x" i, Fmt.str "f%d@1" i))
  in
  let acts = ref [] in
  Array.iteri
    (fun i (a : action) -> if keep.(i) then acts := a.a_ref :: !acts)
    k.k_actions;
  fixed @ List.concat (List.rev !acts)

(* The variables whose observable points-to sets are compared.  All of
   them hold only named program objects (ints, pointers, the struct
   instance, functions), so the real solution's names line up with the
   abstract locations. *)
let probes (k : case) : string list =
  List.init k.k_np (fun i -> Fmt.str "p%d" i)
  @ List.init k.k_nq (fun i -> Fmt.str "q%d" i)
  @ [ "sp"; "fp0"; "tab"; "arr"; "m"; "S.h0"; "S.h1"; "S.d0" ]

(* ------------------------------------------------------------------ *)
(* Differential check                                                  *)
(* ------------------------------------------------------------------ *)

type divergence = {
  d_var : string;
  d_expected : string list;  (** reference solver, sorted *)
  d_actual : string list;  (** real pipeline, sorted *)
}

type kind =
  | Crash of string  (** exception out of the real pipeline *)
  | Diverge of divergence list

type failure = {
  f_index : int;  (** which case in the stream failed *)
  f_kind : kind;
  f_source : string;  (** greedily minimized reproducer *)
  f_full_source : string;  (** the original, unminimized case *)
}

type stats = {
  n_cases : int;
  n_probes : int;  (** points-to sets compared across all cases *)
}

let run_case (k : case) ~(keep : bool array) : (int, kind) result =
  match
    let source = render k ~keep in
    let view = Pipeline.compile_link [ ("fuzz.c", source) ] in
    let sol = (Andersen.solve ~demand:false view).Andersen.solution in
    let expected =
      ref_solve (ref_constraints k ~keep) ~arity:(List.init k.k_nf (fun i -> (Fmt.str "f%d" i, 1)))
    in
    let divs = ref [] in
    let checked = ref 0 in
    List.iter
      (fun name ->
        incr checked;
        let want = SS.elements (expected name) in
        let got =
          match Solution.find sol name with
          | None -> []
          | Some id ->
              Lvalset.to_list (Solution.points_to sol id)
              |> List.map (Solution.var_name sol)
              |> List.sort_uniq String.compare
        in
        if want <> got then
          divs := { d_var = name; d_expected = want; d_actual = got } :: !divs)
      (probes k);
    (!checked, List.rev !divs)
  with
  | checked, [] -> Ok checked
  | _, divs -> Error (Diverge divs)
  | exception e -> Error (Crash (Printexc.to_string e))

(* Greedy delta-debugging: try dropping each statement; keep the drop if
   the case still fails.  Two passes catch most order dependencies. *)
let minimize (k : case) : bool array * kind =
  let n = Array.length k.k_actions in
  let keep = Array.make n true in
  let last_kind = ref None in
  for _pass = 1 to 2 do
    for i = 0 to n - 1 do
      if keep.(i) then begin
        keep.(i) <- false;
        match run_case k ~keep with
        | Ok _ -> keep.(i) <- true (* needed for the failure *)
        | Error kind -> last_kind := Some kind
      end
    done
  done;
  let kind =
    match !last_kind with
    | Some kind -> kind
    | None -> (
        match run_case k ~keep with
        | Error kind -> kind
        | Ok _ -> assert false (* the unminimized case failed *))
  in
  (keep, kind)

(** Run [cases] differential cases derived from [seed].  Stops at the
    first failing case, returning it minimized; [on_progress] is called
    with each finished case index (for progress display). *)
let run ?(on_progress = fun _ -> ()) ~seed ~cases () :
    (stats, failure) result =
  let rng = Rng.create seed in
  let rec go i n_probes =
    if i >= cases then Ok { n_cases = cases; n_probes }
    else begin
      let k = gen_case rng in
      let all = Array.make (Array.length k.k_actions) true in
      match run_case k ~keep:all with
      | Ok checked ->
          on_progress i;
          go (i + 1) (n_probes + checked)
      | Error _ ->
          let keep, kind = minimize k in
          Error
            {
              f_index = i;
              f_kind = kind;
              f_source = render k ~keep;
              f_full_source = render k ~keep:all;
            }
    end
  in
  go 0 0

let pp_kind ppf = function
  | Crash msg -> Fmt.pf ppf "crash: %s" msg
  | Diverge divs ->
      Fmt.pf ppf "%d diverging points-to set(s):" (List.length divs);
      List.iter
        (fun d ->
          Fmt.pf ppf "@.  %s: expected {%s}, got {%s}" d.d_var
            (String.concat ", " d.d_expected)
            (String.concat ", " d.d_actual))
        divs
