(** Fault injection for CLA object files.

    Mutates serialized database bytes the way real corruption does —
    truncation, bit flips, reordered section tables — and checks the
    reader's contract: every mutant either loads and analyzes to the
    identical solution, or is rejected with a structured
    [Binio.Corrupt] / [Diag.Fail].  Deterministic via {!Rng}. *)

open Cla_core

type mutation =
  | Truncate of int  (** keep only the first [n] bytes *)
  | Byte_flip of int * int  (** xor the byte at [offset] with [mask] *)
  | Table_swap of int * int
      (** swap section-table entries [i mod nsec] and [j mod nsec] *)

val describe : mutation -> string

(** Apply a mutation to serialized bytes.  Out-of-range offsets and
    unlocatable section tables make the mutation a no-op. *)
val apply : string -> mutation -> string

(** Recompute a CLA2 file's section-table checksum (identity on CLA1 or
    unrecognizable bytes).  {!check} reseals after {!Table_swap} so the
    swap tests reader order-independence, not just the checksum. *)
val reseal : string -> string

(** Draw a random mutation sized to the given bytes. *)
val random : Rng.t -> string -> mutation

type outcome =
  | Accepted of Solution.t  (** parsed and analyzed *)
  | Rejected of string  (** rejected with a structured diagnostic *)

(** The reader's contract was broken: a mutation escaped as something
    other than [Binio.Corrupt] / [Diag.Fail] — or, in {!sweep} with a
    baseline, was accepted with a different solution. *)
exception Invariant_violation of mutation * exn

(** Load + analyze ([demand:false], so every block is decoded) the
    mutant of [data] under the given mutation. *)
val check : string -> mutation -> outcome

type stats = {
  n_total : int;
  n_accepted : int;  (** loaded and analyzed (identical solution) *)
  n_rejected : int;  (** rejected with a structured diagnostic *)
}

(** Run [n] seeded random mutations of [data] through load + analyze.
    With [baseline], accepted mutants must match it exactly. *)
val sweep : ?baseline:Solution.t -> seed:int64 -> n:int -> string -> stats
