(** Random constraint-program generator (database level, no C involved).

    Used by the property-based tests — on any generated program the
    pre-transitive, worklist and bit-vector solvers must agree exactly and
    Steensgaard's must over-approximate — and by the ablation benchmarks,
    which need dense pure-solver workloads without parse cost. *)

type params = {
  n_vars : int;
  n_addr : int;
  n_copy : int;
  n_store : int;
  n_load : int;
  n_deref2 : int;
  n_funcs : int;  (** functions with standardized arg/ret variables *)
  n_indirect : int;  (** indirect call sites *)
}

val default_params : params

(** Generate a database deterministically from the seed. *)
val generate : ?params:params -> int64 -> Cla_core.Objfile.db

(** Generate and roundtrip through serialization (what solvers consume). *)
val view : ?params:params -> int64 -> Cla_core.Objfile.view

(** {2 Shaped solver workloads}

    Deterministic pure-solver profiles for the solver micro-benchmark:
    - [Sparse]: many variables, few constraints each — points-to sets
      stay small (sorted-array regime);
    - [Dense]: a layered DAG with wide fan-in over a compact base-location
      pool — upper layers accumulate large dense sets (bitmap regime);
    - [Cyclic]: rings of copy edges with cross-ring chords — every
      reachability walk meets cycles (Tarjan/unification stress). *)
type shape = Sparse | Dense | Cyclic

val all_shapes : shape list
val shape_name : shape -> string

(** [shaped ?scale shape seed] generates a view of the given profile.
    [scale] (default 1.0) multiplies every size knob; small fractions make
    smoke-test workloads. *)
val shaped : ?scale:float -> shape -> int64 -> Cla_core.Objfile.view
