(** Load generator for [cla serve-bench]: a deterministic mixed stream
    of good, poisoned, and slow queries.

    The stream is the server's resilience exam in miniature: good
    queries must be answered, poisoned ones must come back as clean
    ["error"] responses (never a dead connection), and slow ones must
    either time out within their deadline or, by hogging execution
    slots, force admission control to shed the queries behind them.  The
    bench driver tallies the responses; the invariant it checks is that
    {e every} query gets exactly one classified answer and the server
    survives the whole stream. *)

open Cla_obs

type kind =
  | Good  (** well-formed points-to/alias/ping/stats over known vars *)
  | Poison  (** malformed json, unknown ops, unknown variables *)
  | Slow  (** [sleep] ops that outlive their deadline or hog a slot *)

let kind_name = function Good -> "good" | Poison -> "poison" | Slow -> "slow"

type query = { q_id : int; q_kind : kind; q_line : string }

type mix = { m_good : int; m_poison : int; m_slow : int }
(** Relative weights; they need not sum to anything in particular. *)

let default_mix = { m_good = 6; m_poison = 2; m_slow = 2 }

let obj fields = Json.to_string ~indent:false (Json.Obj fields)

let base id op = [ ("id", Json.Int id); ("op", Json.Str op) ]

let with_deadline ms fields = fields @ [ ("deadline_ms", Json.Int ms) ]

let with_fresh fresh fields =
  if fresh then fields @ [ ("fresh", Json.Bool true) ] else fields

let good rng ~id ~vars ~deadline_ms ~fresh_frac =
  let fresh () = fresh_frac > 0. && Rng.flip rng fresh_frac in
  match Rng.int rng 10 with
  | 0 -> obj (base id "ping")
  | 1 -> obj (base id "stats")
  | 2 | 3 | 4 ->
      let a = Rng.choose rng vars and b = Rng.choose rng vars in
      obj
        (with_fresh (fresh ())
           (with_deadline deadline_ms
              (base id "alias" @ [ ("var", Json.Str a); ("var2", Json.Str b) ])))
  | _ ->
      obj
        (with_fresh (fresh ())
           (with_deadline deadline_ms
              (base id "points-to" @ [ ("var", Json.Str (Rng.choose rng vars)) ])))

let poison rng ~id ~vars =
  match Rng.int rng 6 with
  | 0 -> "{\"id\":" ^ string_of_int id ^ ",\"op\":\"points-to\""  (* truncated *)
  | 1 -> "not json at all"
  | 2 -> obj (base id "frobnicate")
  | 3 -> obj (base id "points-to")  (* missing "var" *)
  | 4 -> obj (base id "sleep" @ [ ("ms", Json.Int (-5)) ])
  | _ ->
      (* well-formed but naming a variable the program does not have *)
      let ghost = "no_such_var_" ^ string_of_int (Rng.int rng 1000) in
      ignore vars;
      obj (base id "points-to" @ [ ("var", Json.Str ghost) ])

let slow rng ~id ~slow_ms =
  if Rng.flip rng 0.5 then
    (* sleeps past its own deadline: must come back as a timeout *)
    obj
      (with_deadline (max 1 (slow_ms / 4))
         (base id "sleep" @ [ ("ms", Json.Int slow_ms) ]))
  else
    (* sleeps within its deadline: hogs a slot so queries behind it
       queue up and, past the queue bound, get shed *)
    obj
      (with_deadline (slow_ms * 4)
         (base id "sleep" @ [ ("ms", Json.Int slow_ms) ]))

let generate ?(mix = default_mix) ?(fresh_frac = 0.) ~seed ~n ~vars
    ~deadline_ms ~slow_ms () =
  if Array.length vars = 0 then invalid_arg "Servebench.generate: no variables";
  let rng = Rng.create seed in
  let total = max 1 (mix.m_good + mix.m_poison + mix.m_slow) in
  List.init n (fun id ->
      let roll = Rng.int rng total in
      let q_kind =
        if roll < mix.m_good then Good
        else if roll < mix.m_good + mix.m_poison then Poison
        else Slow
      in
      let q_line =
        match q_kind with
        | Good -> good rng ~id ~vars ~deadline_ms ~fresh_frac
        | Poison -> poison rng ~id ~vars
        | Slow -> slow rng ~id ~slow_ms
      in
      { q_id = id; q_kind; q_line })

(* ------------------------------------------------------------------ *)
(* Fault schedule (the chaos harness)                                  *)
(* ------------------------------------------------------------------ *)

type fault =
  | Kill_shard of int  (** make the shard's worker domain die *)
  | Wedge_shard of int * int  (** shard, wedge duration in ms *)

type fault_event = { f_at_ms : int; f_fault : fault }

let fault_name = function
  | Kill_shard i -> Printf.sprintf "kill:%d" i
  | Wedge_shard (i, ms) -> Printf.sprintf "wedge:%d/%dms" i ms

(* A deterministic schedule of [kills] kill events and [wedges] wedge
   events, spread over the middle of a [span_ms] run (never in the first
   or last tenth, so every fault lands while the query stream is
   actually flowing and recovery is observable before the stream ends).
   Shards are picked round-robin-ish from the rng so multi-shard servers
   see faults on different replicas. *)
let fault_schedule ?(kills = 2) ?(wedges = 1) ~seed ~shards ~span_ms ~wedge_ms
    () =
  if shards <= 0 then invalid_arg "Servebench.fault_schedule: no shards";
  let rng = Rng.create seed in
  let lo = span_ms / 10 and hi = span_ms - (span_ms / 10) in
  let at () = lo + Rng.int rng (max 1 (hi - lo)) in
  let evs =
    List.init kills (fun _ ->
        { f_at_ms = at (); f_fault = Kill_shard (Rng.int rng shards) })
    @ List.init wedges (fun _ ->
          { f_at_ms = at (); f_fault = Wedge_shard (Rng.int rng shards, wedge_ms) })
  in
  List.sort (fun a b -> compare a.f_at_ms b.f_at_ms) evs
