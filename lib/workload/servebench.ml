(** Load generator for [cla serve-bench]: a deterministic mixed stream
    of good, poisoned, and slow queries.

    The stream is the server's resilience exam in miniature: good
    queries must be answered, poisoned ones must come back as clean
    ["error"] responses (never a dead connection), and slow ones must
    either time out within their deadline or, by hogging execution
    slots, force admission control to shed the queries behind them.  The
    bench driver tallies the responses; the invariant it checks is that
    {e every} query gets exactly one classified answer and the server
    survives the whole stream. *)

open Cla_obs

type kind =
  | Good  (** well-formed points-to/alias/ping/stats over known vars *)
  | Poison  (** malformed json, unknown ops, unknown variables *)
  | Slow  (** [sleep] ops that outlive their deadline or hog a slot *)

let kind_name = function Good -> "good" | Poison -> "poison" | Slow -> "slow"

type query = { q_id : int; q_kind : kind; q_line : string }

type mix = { m_good : int; m_poison : int; m_slow : int }
(** Relative weights; they need not sum to anything in particular. *)

let default_mix = { m_good = 6; m_poison = 2; m_slow = 2 }

let obj fields = Json.to_string ~indent:false (Json.Obj fields)

let base id op = [ ("id", Json.Int id); ("op", Json.Str op) ]

let with_deadline ms fields = fields @ [ ("deadline_ms", Json.Int ms) ]

let good rng ~id ~vars ~deadline_ms =
  match Rng.int rng 10 with
  | 0 -> obj (base id "ping")
  | 1 -> obj (base id "stats")
  | 2 | 3 | 4 ->
      let a = Rng.choose rng vars and b = Rng.choose rng vars in
      obj
        (with_deadline deadline_ms
           (base id "alias" @ [ ("var", Json.Str a); ("var2", Json.Str b) ]))
  | _ ->
      obj
        (with_deadline deadline_ms
           (base id "points-to" @ [ ("var", Json.Str (Rng.choose rng vars)) ]))

let poison rng ~id ~vars =
  match Rng.int rng 6 with
  | 0 -> "{\"id\":" ^ string_of_int id ^ ",\"op\":\"points-to\""  (* truncated *)
  | 1 -> "not json at all"
  | 2 -> obj (base id "frobnicate")
  | 3 -> obj (base id "points-to")  (* missing "var" *)
  | 4 -> obj (base id "sleep" @ [ ("ms", Json.Int (-5)) ])
  | _ ->
      (* well-formed but naming a variable the program does not have *)
      let ghost = "no_such_var_" ^ string_of_int (Rng.int rng 1000) in
      ignore vars;
      obj (base id "points-to" @ [ ("var", Json.Str ghost) ])

let slow rng ~id ~slow_ms =
  if Rng.flip rng 0.5 then
    (* sleeps past its own deadline: must come back as a timeout *)
    obj
      (with_deadline (max 1 (slow_ms / 4))
         (base id "sleep" @ [ ("ms", Json.Int slow_ms) ]))
  else
    (* sleeps within its deadline: hogs a slot so queries behind it
       queue up and, past the queue bound, get shed *)
    obj
      (with_deadline (slow_ms * 4)
         (base id "sleep" @ [ ("ms", Json.Int slow_ms) ]))

let generate ?(mix = default_mix) ~seed ~n ~vars ~deadline_ms ~slow_ms () =
  if Array.length vars = 0 then invalid_arg "Servebench.generate: no variables";
  let rng = Rng.create seed in
  let total = max 1 (mix.m_good + mix.m_poison + mix.m_slow) in
  List.init n (fun id ->
      let roll = Rng.int rng total in
      let q_kind =
        if roll < mix.m_good then Good
        else if roll < mix.m_good + mix.m_poison then Poison
        else Slow
      in
      let q_line =
        match q_kind with
        | Good -> good rng ~id ~vars ~deadline_ms
        | Poison -> poison rng ~id ~vars
        | Slow -> slow rng ~id ~slow_ms
      in
      { q_id = id; q_kind; q_line })
