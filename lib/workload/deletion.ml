(** The open-world soundness gate: body-deletion streams.

    Starts from a complete synthetic program (a {!Genc} profile), whose
    closed-world solution is exact, then deletes function bodies in a
    seeded random order — keeping their declared interfaces — and
    re-analyzes each stripped fragment with open-world havoc
    constraints.  Soundness demands that havoc can only {e add}
    may-point-to facts about the code that survives:

      for every variable present in both solutions,
      closed-world targets that still exist  ⊆  open-world targets

    Equality is deliberately not required: havoc is an
    over-approximation (the blob stands for everything the missing
    bodies could do), and objects owned by deleted bodies (their locals
    and temporaries) disappear from the stripped program entirely — the
    blob abstracts them, so they are excluded from the inclusion check
    on both sides.

    [inject_unsound] deliberately skips havoc synthesis (the stripped
    fragment is analyzed closed-world), which silently drops every flow
    through the deleted bodies — the gate must catch this, proving it
    can fail. *)

open Cla_core
module SS = Set.Make (String)

type violation = {
  v_step : int;  (** 1-based deletion step *)
  v_dropped : string list;  (** bodies deleted at this step *)
  v_var : string;  (** the variable whose facts went missing *)
  v_missing : string list;
      (** closed-world targets that survive deletion but are absent from
          the open-world set *)
}

type outcome = {
  n_steps : int;
  n_funcs : int;  (** defined functions in the complete program *)
  n_dropped : int;  (** bodies deleted by the final step *)
  n_checked : int;  (** (variable, step) inclusion checks performed *)
}

(* Variables are identified across compiles by owner-qualified display
   name ("f:x" for function f's local x, ":g" for a global): locals of
   different functions routinely share display names, and deleting one
   function's body must not confuse its locals with a survivor's.
   Same-key variables (block-scope shadowing) are unioned — the scoping
   is identical in both compiles, so the comparison stays well-defined. *)
let qualify (view : Objfile.view) v =
  let vi = view.Objfile.rvars.(v) in
  vi.Objfile.vowner ^ ":" ^ vi.Objfile.vname

let sets_by_name (sol : Solution.t) : (string, SS.t) Hashtbl.t =
  let view = sol.Solution.view in
  let m = Hashtbl.create 256 in
  for v = 0 to Array.length sol.Solution.pts - 1 do
    if Solution.is_program_var sol v then begin
      let key = qualify view v in
      let targets =
        Lvalset.to_list (Solution.points_to sol v)
        |> List.fold_left
             (fun acc z -> SS.add (qualify view z) acc)
             SS.empty
      in
      let prev = Option.value ~default:SS.empty (Hashtbl.find_opt m key) in
      Hashtbl.replace m key (SS.union prev targets)
    end
  done;
  m

let solve_names files ~options ~undefined =
  let view = Pipeline.compile_link ~options ~undefined files in
  let sol = (Andersen.solve ~demand:false view).Andersen.solution in
  let universe = ref SS.empty in
  for v = 0 to Objfile.n_vars view - 1 do
    universe := SS.add (qualify view v) !universe
  done;
  (sets_by_name sol, !universe)

(** Run the gate over [steps] (default 5) deletion steps of a seeded
    stream.  Returns the first violation found, if any. *)
let run ?(inject_unsound = false) ?(steps = 5) ~seed (profile : Profile.t) :
    (outcome, violation) result =
  let files = Genc.generate ~seed profile in
  let options = Compilep.default_options in
  let baseline, _ = solve_names files ~options ~undefined:Linkp.Ignore in
  (* the deletion order: defined functions, shuffled by the seed *)
  let fnames =
    let view = Pipeline.compile_link ~options files in
    Array.of_list
      (List.sort_uniq String.compare
         (Array.to_list
            (Array.map
               (fun (f : Objfile.fund_rec) ->
                 view.Objfile.rvars.(f.Objfile.ffvar).Objfile.vname)
               view.Objfile.rfundefs)))
  in
  let rng = Rng.create (Int64.add seed 0x6de1e7e0L) in
  let n = Array.length fnames in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = fnames.(i) in
    fnames.(i) <- fnames.(j);
    fnames.(j) <- t
  done;
  let checked = ref 0 in
  let final_k = ref 0 in
  let rec step i =
    if i > steps then
      Ok
        { n_steps = steps; n_funcs = n; n_dropped = !final_k;
          n_checked = !checked }
    else begin
      let k = min n (max 1 (i * n / steps)) in
      final_k := k;
      let dropped = Array.to_list (Array.sub fnames 0 k) in
      let dropset = SS.of_list dropped in
      let options =
        { options with Compilep.drop_bodies = (fun f -> SS.mem f dropset) }
      in
      let undefined =
        if inject_unsound then Linkp.Ignore else Linkp.Open_world
      in
      let opened, universe = solve_names files ~options ~undefined in
      let bad = ref None in
      Hashtbl.iter
        (fun name closed ->
          if !bad = None && Hashtbl.mem opened name then begin
            incr checked;
            let got =
              Option.value ~default:SS.empty (Hashtbl.find_opt opened name)
            in
            (* only targets that survive deletion are owed; deleted
               bodies' objects are abstracted by the blob *)
            let owed = SS.inter closed universe in
            if not (SS.subset owed got) then
              bad :=
                Some
                  {
                    v_step = i;
                    v_dropped = dropped;
                    v_var = name;
                    v_missing = SS.elements (SS.diff owed got);
                  }
          end)
        baseline;
      match !bad with Some v -> Error v | None -> step (i + 1)
    end
  in
  step 1
