(** Load generator for [cla serve-bench]: a deterministic mixed stream
    of good, poisoned, and slow queries.  Good queries must be answered,
    poisoned ones must come back as clean ["error"] responses, slow ones
    must time out or force shedding — and the server must survive the
    whole stream, answering every line exactly once. *)

type kind =
  | Good  (** well-formed points-to/alias/ping/stats over known vars *)
  | Poison  (** malformed json, unknown ops, unknown variables *)
  | Slow  (** [sleep] ops that outlive their deadline or hog a slot *)

val kind_name : kind -> string

type query = { q_id : int; q_kind : kind; q_line : string }

type mix = { m_good : int; m_poison : int; m_slow : int }
(** Relative weights; they need not sum to anything in particular. *)

(** 6 good : 2 poison : 2 slow. *)
val default_mix : mix

(** [generate ~seed ~n ~vars ~deadline_ms ~slow_ms ()] builds [n]
    request lines: good queries draw variables from [vars] and carry
    [deadline_ms]; slow queries sleep [slow_ms] (half with a deadline
    they will blow, half with room to spare so they hog a slot).
    Deterministic in [seed].  Raises [Invalid_argument] when [vars] is
    empty. *)
val generate :
  ?mix:mix ->
  seed:int64 ->
  n:int ->
  vars:string array ->
  deadline_ms:int ->
  slow_ms:int ->
  unit ->
  query list
