(** Load generator for [cla serve-bench]: a deterministic mixed stream
    of good, poisoned, and slow queries.  Good queries must be answered,
    poisoned ones must come back as clean ["error"] responses, slow ones
    must time out or force shedding — and the server must survive the
    whole stream, answering every line exactly once. *)

type kind =
  | Good  (** well-formed points-to/alias/ping/stats over known vars *)
  | Poison  (** malformed json, unknown ops, unknown variables *)
  | Slow  (** [sleep] ops that outlive their deadline or hog a slot *)

val kind_name : kind -> string

type query = { q_id : int; q_kind : kind; q_line : string }

type mix = { m_good : int; m_poison : int; m_slow : int }
(** Relative weights; they need not sum to anything in particular. *)

(** 6 good : 2 poison : 2 slow. *)
val default_mix : mix

(** [generate ~seed ~n ~vars ~deadline_ms ~slow_ms ()] builds [n]
    request lines: good queries draw variables from [vars] and carry
    [deadline_ms]; slow queries sleep [slow_ms] (half with a deadline
    they will blow, half with room to spare so they hog a slot).
    [fresh_frac] (default 0) makes that fraction of good points-to /
    alias queries carry ["fresh":true] — they bypass every cache and
    snapshot, forcing real shard solves, which is how the chaos stream
    keeps the worker domains exercised on a snapshot-backed server.
    Deterministic in [seed].  Raises [Invalid_argument] when [vars] is
    empty. *)
val generate :
  ?mix:mix ->
  ?fresh_frac:float ->
  seed:int64 ->
  n:int ->
  vars:string array ->
  deadline_ms:int ->
  slow_ms:int ->
  unit ->
  query list

(** Fault injections for the chaos harness ([bench chaos]): the driver
    fires each through {!Cla_serve.Server.chaos_kill_shard} /
    [chaos_wedge_shard] when its offset from stream start comes up. *)
type fault =
  | Kill_shard of int  (** make the shard's worker domain die *)
  | Wedge_shard of int * int  (** shard, wedge duration in ms *)

type fault_event = { f_at_ms : int; f_fault : fault }

val fault_name : fault -> string

(** A deterministic schedule of [kills] (default 2) kill events and
    [wedges] (default 1) wedge events over the middle 80% of a
    [span_ms] run, shards drawn from the rng.  Sorted by offset.
    Raises [Invalid_argument] when [shards <= 0]. *)
val fault_schedule :
  ?kills:int ->
  ?wedges:int ->
  seed:int64 ->
  shards:int ->
  span_ms:int ->
  wedge_ms:int ->
  unit ->
  fault_event list
