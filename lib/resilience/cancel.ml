(** Cooperative cancellation tokens.

    A token is a single atomic flag: one party (a watchdog thread, a
    signal handler, a draining server) calls [set]; the analysis polls
    [check] at the same points it polls its deadline and unwinds with
    {!Cancelled}.  [Atomic] makes the flag safe to set from another
    systhread or domain. *)

type t = bool Atomic.t

exception Cancelled of Progress.t

let create () : t = Atomic.make false
let set t = Atomic.set t true
let is_set t = Atomic.get t

let default_progress () = Progress.none

let check ?(progress = default_progress) t =
  if Atomic.get t then raise (Cancelled (progress ()))
