(** Deadline tokens over a monotonic clock.

    A token is an absolute expiry instant; [never] is the infinite
    deadline and costs nothing to check.  Solvers poll [check] at their
    pass boundaries and inside their traversal loops; when the clock
    passes the expiry the token raises {!Timed_out} carrying whatever
    {!Progress.t} the solver can report.  The same token threads through
    a whole degradation ladder, so each rung naturally runs in the
    remaining slice of the original budget. *)

external now_s : unit -> float = "cla_monotonic_now_s"
external now_ns : unit -> int = "cla_monotonic_now_ns" [@@noalloc]

type t = float (* absolute monotonic expiry; [infinity] = never *)

exception Timed_out of Progress.t

let never : t = infinity
let is_never t = t = infinity

let after ~seconds : t = now_s () +. Float.max 0. seconds
let of_ms ms = after ~seconds:(float_of_int ms /. 1000.)

let remaining_s t = if is_never t then infinity else t -. now_s ()
let remaining_ms t = remaining_s t *. 1000.
let expired t = (not (is_never t)) && now_s () >= t

let default_progress () = Progress.none

let check ?(progress = default_progress) t =
  if expired t then raise (Timed_out (progress ()))

let pp ppf t =
  if is_never t then Fmt.string ppf "never"
  else Fmt.pf ppf "%.1fms remaining" (remaining_ms t)
