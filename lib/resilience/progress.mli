(** What an aborted analysis had accomplished when it was cut short.
    Carried by {!Deadline.Timed_out} and {!Cancel.Cancelled}. *)

type t = {
  at_pass : int;  (** passes completed or in flight; 0 when none started *)
  elapsed_s : float;  (** monotonic seconds since the analysis began *)
  detail : string;  (** free-form, e.g. the last pass's convergence line *)
}

(** No progress at all — used when an abort fires before any work. *)
val none : t

val make : ?at_pass:int -> ?elapsed_s:float -> string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
