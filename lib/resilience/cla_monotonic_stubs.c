/* Monotonic clock for deadline tokens.  Wall-clock time
   (gettimeofday) can jump backwards under NTP adjustment, which would
   make a deadline fire early or never; CLOCK_MONOTONIC only moves
   forward. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value cla_monotonic_now_s(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}

/* Integer nanoseconds for latency histograms: a double holds ns exactly
   only up to 2^53 (~104 days of uptime); a 63-bit OCaml int holds ns
   for ~292 years and allocates nothing. */
CAMLprim value cla_monotonic_now_ns(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long) ts.tv_sec * 1000000000L + (long) ts.tv_nsec);
}
