/* Monotonic clock for deadline tokens.  Wall-clock time
   (gettimeofday) can jump backwards under NTP adjustment, which would
   make a deadline fire early or never; CLOCK_MONOTONIC only moves
   forward. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value cla_monotonic_now_s(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
