(** The graceful-degradation ladder.

    A ladder is an ordered list of rungs — ways to compute the same kind
    of answer, from most precise to cheapest sound over-approximation.
    [run] tries each rung in order under one shared deadline token (so
    every rung gets the remaining slice of the original budget); a rung
    that raises {!Deadline.Timed_out} is recorded as an attempt and the
    next rung is tried.

    By default the {e last} rung runs with {!Deadline.never}: the ladder
    trades the deadline for an answer, on the grounds that its final rung
    is cheap enough to always finish (Steensgaard's analysis is
    near-linear).  [~strict:true] enforces the deadline on every rung and
    lets the final [Timed_out] escape.

    {!Cancel.Cancelled} always propagates — cancellation means "stop
    working", not "answer worse". *)

type attempt = {
  a_rung : string;  (** rung that timed out *)
  a_progress : Progress.t;  (** how far it got *)
}

type 'a outcome = {
  value : 'a;
  rung : string;  (** name of the rung that answered *)
  rung_index : int;  (** 0-based position in the ladder *)
  degraded : bool;  (** [rung_index > 0] *)
  attempts : attempt list;  (** timed-out rungs, in order *)
}

let run ?(strict = false) ~(deadline : Deadline.t)
    ~(rungs : (string * (deadline:Deadline.t -> 'a)) list) () : 'a outcome =
  if rungs = [] then invalid_arg "Degrade.run: empty ladder";
  let rec go idx attempts = function
    | [] -> assert false
    | [ (name, f) ] when not strict ->
        (* final rung: exempt from the deadline so the ladder always
           answers; a cancel token threaded through [f] still aborts *)
        let value = f ~deadline:Deadline.never in
        {
          value;
          rung = name;
          rung_index = idx;
          degraded = idx > 0;
          attempts = List.rev attempts;
        }
    | (name, f) :: rest -> (
        match f ~deadline with
        | value ->
            {
              value;
              rung = name;
              rung_index = idx;
              degraded = idx > 0;
              attempts = List.rev attempts;
            }
        | exception Deadline.Timed_out p when rest <> [] || not strict ->
            go (idx + 1) ({ a_rung = name; a_progress = p } :: attempts) rest)
  in
  go 0 [] rungs

let pp_attempt ppf a =
  Fmt.pf ppf "%s timed out at %a" a.a_rung Progress.pp a.a_progress
