(** What an aborted analysis had accomplished when it was cut short.
    Carried by {!Deadline.Timed_out} and {!Cancel.Cancelled} so callers
    (the degradation ladder, the query server, the CLI) can report how
    far the precise solver got before giving up. *)

type t = {
  at_pass : int;  (** passes completed or in flight; 0 when none started *)
  elapsed_s : float;  (** monotonic seconds since the analysis began *)
  detail : string;  (** free-form, e.g. the last pass's convergence line *)
}

let none = { at_pass = 0; elapsed_s = 0.; detail = "" }

let make ?(at_pass = 0) ?(elapsed_s = 0.) detail =
  { at_pass; elapsed_s; detail }

let pp ppf p =
  Fmt.pf ppf "pass %d, %.1fms elapsed" p.at_pass (p.elapsed_s *. 1000.);
  if p.detail <> "" then Fmt.pf ppf " (%s)" p.detail

let to_string p = Fmt.str "%a" pp p
