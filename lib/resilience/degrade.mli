(** The graceful-degradation ladder: try rungs in order, from most
    precise to cheapest sound over-approximation, under one shared
    deadline token.

    A rung that raises {!Deadline.Timed_out} is recorded and the next
    rung runs in the remaining slice.  By default the final rung runs
    with {!Deadline.never} — the ladder trades the deadline for an
    answer; [~strict:true] enforces the deadline everywhere and lets the
    last [Timed_out] escape.  {!Cancel.Cancelled} always propagates:
    cancellation means "stop working", not "answer worse". *)

type attempt = {
  a_rung : string;  (** rung that timed out *)
  a_progress : Progress.t;  (** how far it got *)
}

type 'a outcome = {
  value : 'a;
  rung : string;  (** name of the rung that answered *)
  rung_index : int;  (** 0-based position in the ladder *)
  degraded : bool;  (** [rung_index > 0] *)
  attempts : attempt list;  (** timed-out rungs, in order *)
}

(** Raises [Invalid_argument] on an empty ladder; re-raises
    {!Deadline.Timed_out} only with [~strict:true] and every rung timed
    out. *)
val run :
  ?strict:bool ->
  deadline:Deadline.t ->
  rungs:(string * (deadline:Deadline.t -> 'a)) list ->
  unit ->
  'a outcome

val pp_attempt : Format.formatter -> attempt -> unit
