(** Cooperative cancellation tokens.

    One party sets the flag (a watchdog, a signal handler, a draining
    server); the analysis polls {!check} wherever it polls its deadline
    and unwinds with {!Cancelled}.  Setting is an atomic store, safe
    from another thread. *)

type t

(** Raised by {!check} once the token has been set. *)
exception Cancelled of Progress.t

val create : unit -> t

(** Request cancellation.  Idempotent; never blocks. *)
val set : t -> unit

val is_set : t -> bool

(** Raise [Cancelled (progress ())] if the token is set.  [progress]
    defaults to {!Progress.none} and is only evaluated on
    cancellation. *)
val check : ?progress:(unit -> Progress.t) -> t -> unit
