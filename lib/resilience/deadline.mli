(** Deadline tokens over a monotonic clock.

    A token is an absolute expiry instant on [CLOCK_MONOTONIC] (wall
    clocks can jump under NTP; a monotonic deadline cannot fire early or
    never).  Solvers poll {!check} at pass boundaries and inside
    traversal loops; threading one token through a degradation ladder
    gives each rung the remaining slice of the original budget. *)

type t

(** Raised by {!check} when the deadline has passed. *)
exception Timed_out of Progress.t

(** The infinite deadline: {!check} on it never raises. *)
val never : t

val is_never : t -> bool

(** Monotonic now, in seconds (the clock deadlines are measured on). *)
val now_s : unit -> float

(** Monotonic now, in integer nanoseconds — the timestamp source for
    latency histograms.  Allocation-free, and exact where a double
    derived from {!now_s} would round past ~104 days of uptime. *)
val now_ns : unit -> int

(** A deadline [seconds] from now (negative values clamp to "already
    expired"). *)
val after : seconds:float -> t

val of_ms : int -> t

(** Seconds until expiry ([infinity] for {!never}; negative once
    expired). *)
val remaining_s : t -> float

val remaining_ms : t -> float
val expired : t -> bool

(** Raise [Timed_out (progress ())] if the deadline has passed.
    [progress] defaults to {!Progress.none}; it is only evaluated on
    expiry, so passing a closure over live solver state is free on the
    fast path. *)
val check : ?progress:(unit -> Progress.t) -> t -> unit

val pp : Format.formatter -> t -> unit
