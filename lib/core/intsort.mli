(** Monomorphic sorting of int-array prefixes.

    [Array.sort compare] on an [int array] pays a polymorphic-compare
    call per comparison — a measurable constant factor on the solver's
    hot paths ({!Lvalset.of_dyn}, the worklist's delta dedup), where the
    buffers are usually short and already nearly sorted.  This sorter is
    specialized to ints: insertion sort for short prefixes, introsort
    (median-of-three quicksort with a heapsort fallback at depth limit)
    beyond that, so the worst case stays O(n log n). *)

(** [sort a len] sorts the first [len] cells of [a] in place, ascending.
    Cells at [len] and beyond are untouched.
    @raise Invalid_argument if [len < 0] or [len > Array.length a]. *)
val sort : int array -> int -> unit
