(** Open-addressing hash set of non-negative ints.

    One cache miss per operation — the pre-transitive solver performs
    millions of edge-dedup probes, where the stdlib [Hashtbl]'s chained
    buckets and per-insert allocation dominate solver time. *)

type t

(** [create capacity] sizes the table for about [capacity] elements. *)
val create : int -> t

val length : t -> int

(** [add t key] inserts; returns [true] iff the key was not present. *)
val add : t -> int -> bool

val mem : t -> int -> bool

(** {2 Packed pair keys}

    The solvers dedup graph edges by probing this set with a single int
    encoding the pair [(a, b)].  The packing is [(a lsl 31) lor b]: [b]
    occupies the low 31 bits, [a] the next 31, and the whole key fits an
    OCaml 63-bit immediate int with a bit to spare.

    {b Invariant}: both components must lie in [0, max_node_id].  Above
    that, [b] would bleed into [a]'s bits (silent collisions) and a large
    [a] would overflow the 63-bit int.  [pair_key] itself is unchecked —
    it sits on the hot path — so every graph enforces the bound once, at
    node-allocation time, via {!check_node_bound}. *)

(** Largest packable component: [2^31 - 1]. *)
val max_node_id : int

(** [pair_key a b] packs the pair into one int.  Collision-free iff both
    components are in [0, max_node_id] (unchecked here; see
    {!check_node_bound}). *)
val pair_key : int -> int -> int

(** [check_node_bound n] validates an id about to be allocated.
    @raise Invalid_argument if [n] is outside [0, max_node_id]. *)
val check_node_bound : int -> unit
