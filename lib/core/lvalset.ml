(** Shared sets of lvals, in a hybrid representation.

    "Since many lval sets are identical, a mechanism is implemented to
    share common lvals sets.  Such sets are implemented as ordered lists,
    and are linked into a hash table, based on set size." (Section 5)

    Small sets stay sorted, duplicate-free int arrays (cheap to build,
    cache-friendly to merge).  Sets that are both large and dense switch
    to word-packed bitmaps, turning unions into word-ORs and difference
    propagation into word-ANDNOTs.  The representation is {e canonical}
    — a pure function of the set's contents and the pool's threshold —
    so hash-cons sharing and physical-identity shortcuts survive the
    split: equal sets interned in one pool are always the same object in
    the same representation.

    The hash-cons pool is per-solver and is flushed at the beginning of
    each pass through the complex assignments, exactly as in the paper
    (after unifications, stale sets would otherwise pin memory). *)

(* 32 bits per word: power-of-two indexing ([lsr 5] / [land 31]) and
   every word fits an OCaml immediate with room for the popcount and
   merge arithmetic below. *)
let word_bits = 32
let word_shift = 5
let word_mask = 31

type repr =
  | Arr of int array  (* sorted, duplicate-free *)
  | Bits of { words : int array; card : int }
      (* bit [i] of [words.(i lsr 5)] at [i land 31]; the top word is
         non-zero (trimmed), [card] is the population count *)

(* [stamp] is scratch for traversal-time dedup by physical identity (see
   [try_stamp]); it carries no set semantics. *)
type t = { repr : repr; mutable stamp : int }

let no_stamp = min_int
let mk repr = { repr; stamp = no_stamp }
let empty = mk (Arr [||])

let cardinal s = match s.repr with Arr a -> Array.length a | Bits b -> b.card
let is_bitmap s = match s.repr with Arr _ -> false | Bits _ -> true

(* Population count of a <= 32-bit word.  The final byte-sum runs in
   OCaml's 63-bit ints, so unlike the C idiom the product's high bytes
   survive the shift and must be masked off. *)
let popcount32 w =
  let w = w - ((w lsr 1) land 0x55555555) in
  let w = (w land 0x33333333) + ((w lsr 2) land 0x33333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F in
  ((w * 0x01010101) lsr 24) land 0xFF

(* visit the set bits of one word in ascending order *)
let iter_word f base w =
  let w = ref w and bit = ref 0 in
  while !w <> 0 do
    if !w land 1 = 1 then f (base + !bit);
    w := !w lsr 1;
    incr bit
  done

let mem x s =
  match s.repr with
  | Arr a ->
      let lo = ref 0 and hi = ref (Array.length a) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) < x then lo := mid + 1 else hi := mid
      done;
      !lo < Array.length a && a.(!lo) = x
  | Bits b ->
      let w = x lsr word_shift in
      x >= 0
      && w < Array.length b.words
      && (Array.unsafe_get b.words w lsr (x land word_mask)) land 1 = 1

let iter f s =
  match s.repr with
  | Arr a -> Array.iter f a
  | Bits b ->
      for w = 0 to Array.length b.words - 1 do
        let word = Array.unsafe_get b.words w in
        if word <> 0 then iter_word f (w lsl word_shift) word
      done

let fold f acc s =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) s;
  !acc

let to_list s =
  match s.repr with
  | Arr a -> Array.to_list a
  | Bits _ -> List.rev (fold (fun acc x -> x :: acc) [] s)

(* Structural equality across representations.  Canonical representation
   makes the mixed cases impossible within one pool, but solutions built
   with different thresholds (the bench's sorted-array baseline vs the
   hybrid run) must still compare equal content-wise. *)
let equal a b =
  a == b
  ||
  match (a.repr, b.repr) with
  | Arr x, Arr y ->
      Array.length x = Array.length y
      && begin
           let ok = ref true in
           let i = ref 0 and n = Array.length x in
           while !ok && !i < n do
             if Array.unsafe_get x !i <> Array.unsafe_get y !i then ok := false;
             incr i
           done;
           !ok
         end
  | Bits x, Bits y ->
      x.card = y.card
      && Array.length x.words = Array.length y.words
      && begin
           let ok = ref true in
           let i = ref 0 and n = Array.length x.words in
           while !ok && !i < n do
             if Array.unsafe_get x.words !i <> Array.unsafe_get y.words !i
             then ok := false;
             incr i
           done;
           !ok
         end
  | Arr x, Bits _ ->
      Array.length x = cardinal b
      && Array.for_all (fun e -> mem e b) x
  | Bits _, Arr y ->
      cardinal a = Array.length y
      && Array.for_all (fun e -> mem e a) y

(** Iterate the elements of [cur] that are not in [prev].  Points-to sets
    only grow, so drivers remember the set they last processed and visit
    just the delta — difference propagation.  Bitmap/bitmap pairs take a
    word-ANDNOT fast path. *)
let iter_diff ~prev (cur : t) f =
  if prev == cur then ()
  else if cardinal prev = 0 then iter f cur
  else
    match (prev.repr, cur.repr) with
    | Arr p, Arr c ->
        let np = Array.length p and nc = Array.length c in
        let i = ref 0 and j = ref 0 in
        while !j < nc do
          if !i >= np then begin
            f c.(!j);
            incr j
          end
          else if p.(!i) < c.(!j) then incr i
          else if p.(!i) = c.(!j) then begin
            incr i;
            incr j
          end
          else begin
            f c.(!j);
            incr j
          end
        done
    | Bits p, Bits c ->
        let np = Array.length p.words in
        for w = 0 to Array.length c.words - 1 do
          let cw = Array.unsafe_get c.words w in
          if cw <> 0 then begin
            let pw = if w < np then Array.unsafe_get p.words w else 0 in
            let d = cw land lnot pw in
            if d <> 0 then iter_word f (w lsl word_shift) d
          end
        done
    | Arr p, Bits _ ->
        (* both enumerate ascending: walk [prev] with a cursor *)
        let np = Array.length p in
        let i = ref 0 in
        iter
          (fun x ->
            while !i < np && p.(!i) < x do incr i done;
            if !i >= np || p.(!i) <> x then f x)
          cur
    | Bits _, Arr c ->
        Array.iter (fun x -> if not (mem x prev) then f x) c

let try_stamp s q =
  if cardinal s = 0 || s.stamp = q then false
  else begin
    s.stamp <- q;
    true
  end

(* ------------------------------------------------------------------ *)
(* The sharing pool                                                    *)
(* ------------------------------------------------------------------ *)

(* Tunable crossover, overridable per pool (the bench's sorted-array
   baseline sets it to [max_int]).  Not an atomic: it is set once at
   startup, before any solver domain spawns. *)
let default_threshold = ref 64
let set_default_dense_threshold n = default_threshold := max 1 n
let default_dense_threshold () = !default_threshold

type pool = {
  mutable tbl : (int, t list ref) Hashtbl.t;
  threshold : int;
  mutable hits : int;
  mutable misses : int;
  mutable small_sets : int;
  mutable dense_sets : int;
}

type pool_stats = {
  p_hits : int;
  p_misses : int;
  p_small_sets : int;
  p_dense_sets : int;
}

let create_pool ?dense_threshold () =
  {
    tbl = Hashtbl.create 256;
    threshold =
      (match dense_threshold with
      | Some n -> max 1 n
      | None -> !default_threshold);
    hits = 0;
    misses = 0;
    small_sets = 0;
    dense_sets = 0;
  }

let flush_pool p = p.tbl <- Hashtbl.create 256

let pool_stats p =
  {
    p_hits = p.hits;
    p_misses = p.misses;
    p_small_sets = p.small_sets;
    p_dense_sets = p.dense_sets;
  }

let pool_dense_threshold p = p.threshold

(* The canonical representation rule: a set goes word-packed iff its
   cardinality clears the pool threshold AND it populates its bitmap at
   >= 1 element per word on average (otherwise a sparse tail — a huge
   max element — would make word-ORs slower than merges and the bitmap
   bigger than the array).  The rule is a pure function of (contents,
   threshold) and is closed under union, so sharing stays canonical. *)
let words_for max_elem = (max_elem lsr word_shift) + 1

let is_dense p ~card ~max_elem =
  card > p.threshold && card >= words_for max_elem

let hash_prefix (a : int array) len =
  let h = ref len in
  for i = 0 to len - 1 do
    h := (!h * 31) + Array.unsafe_get a i + 1
  done;
  !h land max_int

let hash_words (w : int array) =
  let h = ref (Array.length w lxor 0x5bd1e995) in
  for i = 0 to Array.length w - 1 do
    h := (!h * 31) + Array.unsafe_get w i + 1
  done;
  !h land max_int

let bucket p key = Hashtbl.find_opt p.tbl key

let insert p key s =
  (match bucket p key with
  | Some b -> b := s :: !b
  | None -> Hashtbl.add p.tbl key (ref [ s ]));
  p.misses <- p.misses + 1;
  (match s.repr with
  | Arr _ -> p.small_sets <- p.small_sets + 1
  | Bits _ -> p.dense_sets <- p.dense_sets + 1);
  s

(* Intern a sorted, duplicate-free prefix as an [Arr] set.  On a pool
   miss the backing store is [Array.sub]'d out of [buf] unless [copy] is
   false and the prefix covers the whole array — callers passing
   reusable scratch buffers must keep [copy = true]. *)
let intern_arr p ~copy (buf : int array) len =
  let key = hash_prefix buf len in
  let matches s =
    match s.repr with
    | Arr a ->
        Array.length a = len
        && begin
             let ok = ref true in
             let i = ref 0 in
             while !ok && !i < len do
               if Array.unsafe_get a !i <> Array.unsafe_get buf !i then
                 ok := false;
               incr i
             done;
             !ok
           end
    | Bits _ -> false
  in
  let miss () =
    let a =
      if (not copy) && len = Array.length buf then buf else Array.sub buf 0 len
    in
    insert p key (mk (Arr a))
  in
  match bucket p key with
  | Some b -> (
      match List.find_opt matches !b with
      | Some s ->
          p.hits <- p.hits + 1;
          s
      | None -> miss ())
  | None -> miss ()

(* Intern a trimmed bitmap. *)
let intern_bits p (words : int array) card =
  let key = hash_words words in
  let matches s =
    match s.repr with
    | Bits b ->
        b.card = card
        && Array.length b.words = Array.length words
        && begin
             let ok = ref true in
             let i = ref 0 and n = Array.length words in
             while !ok && !i < n do
               if Array.unsafe_get b.words !i <> Array.unsafe_get words !i
               then ok := false;
               incr i
             done;
             !ok
           end
    | Arr _ -> false
  in
  match bucket p key with
  | Some b -> (
      match List.find_opt matches !b with
      | Some s ->
          p.hits <- p.hits + 1;
          s
      | None -> insert p key (mk (Bits { words; card })))
  | None -> insert p key (mk (Bits { words; card }))

(* Build the bitmap of a sorted prefix (top word non-zero because the
   max element is [buf.(len-1)]). *)
let words_of_prefix (buf : int array) len =
  let words = Array.make (words_for buf.(len - 1)) 0 in
  for i = 0 to len - 1 do
    let x = Array.unsafe_get buf i in
    let w = x lsr word_shift in
    Array.unsafe_set words w
      (Array.unsafe_get words w lor (1 lsl (x land word_mask)))
  done;
  words

(* Intern a sorted dup-free prefix under the canonical rule. *)
let intern_prefix p ~copy buf len =
  if len = 0 then empty
  else if is_dense p ~card:len ~max_elem:buf.(len - 1) then
    intern_bits p (words_of_prefix buf len) len
  else intern_arr p ~copy buf len

(* Finalize a freshly-built (trimmed) bitmap: keep it word-packed when
   the canonical rule says dense, otherwise unpack to a sorted array.
   Unions can leave the dense regime when a small set contributes a far
   max element (sparse tail), so this check is what keeps interning
   canonical. *)
let intern_words p (words : int array) card =
  if card = 0 then empty
  else if card > p.threshold && card >= Array.length words then
    intern_bits p words card
  else begin
    let a = Array.make card 0 in
    let k = ref 0 in
    for w = 0 to Array.length words - 1 do
      let word = Array.unsafe_get words w in
      if word <> 0 then
        iter_word
          (fun x ->
            Array.unsafe_set a !k x;
            incr k)
          (w lsl word_shift) word
    done;
    intern_arr p ~copy:false a card
  end

(** Return the pooled representative of [a] (which must already be
    sorted and duplicate-free).  [a] may be retained as backing store. *)
let share pool (a : int array) : t =
  intern_prefix pool ~copy:false a (Array.length a)

(** Sort + dedup a scratch buffer of candidate members into a shared
    set.  The first [len] cells of [buf] are clobbered (sorted in
    place), but [buf] is never retained — callers may reuse it. *)
let of_dyn pool (buf : int array) (len : int) : t =
  if len = 0 then empty
  else begin
    Intsort.sort buf len;
    let w = ref 1 in
    for r = 1 to len - 1 do
      if buf.(r) <> buf.(!w - 1) then begin
        buf.(!w) <- buf.(r);
        incr w
      end
    done;
    intern_prefix pool ~copy:true buf !w
  end

let of_list pool l =
  let a = Array.of_list l in
  of_dyn pool a (Array.length a)

(* OR [src]'s words into [dst] (dst at least as long). *)
let or_words ~dst (src : int array) =
  for i = 0 to Array.length src - 1 do
    Array.unsafe_set dst i (Array.unsafe_get dst i lor Array.unsafe_get src i)
  done

let set_bit (words : int array) x =
  let w = x lsr word_shift in
  Array.unsafe_set words w
    (Array.unsafe_get words w lor (1 lsl (x land word_mask)))

let popcount_words (words : int array) =
  let c = ref 0 in
  for i = 0 to Array.length words - 1 do
    c := !c + popcount32 (Array.unsafe_get words i)
  done;
  !c

(* max element of a non-empty set *)
let max_elem s =
  match s.repr with
  | Arr a -> a.(Array.length a - 1)
  | Bits b -> ((Array.length b.words - 1) lsl word_shift) + word_bits - 1

(** Merge-union of two shared sets; returns one of its arguments
    physically when the other is a subset.  Bitmap pairs are word-ORs. *)
let union pool (a : t) (b : t) : t =
  if cardinal a = 0 then b
  else if cardinal b = 0 then a
  else if a == b then a
  else
    match (a.repr, b.repr) with
    | Arr x, Arr y ->
        let nx = Array.length x and ny = Array.length y in
        let out = Array.make (nx + ny) 0 in
        let i = ref 0 and j = ref 0 and k = ref 0 in
        while !i < nx && !j < ny do
          let xv = x.(!i) and yv = y.(!j) in
          if xv < yv then (out.(!k) <- xv; incr i)
          else if yv < xv then (out.(!k) <- yv; incr j)
          else (out.(!k) <- xv; incr i; incr j);
          incr k
        done;
        while !i < nx do out.(!k) <- x.(!i); incr i; incr k done;
        while !j < ny do out.(!k) <- y.(!j); incr j; incr k done;
        if !k = nx then a
        else if !k = ny then b
        else intern_prefix pool ~copy:false out !k
    | Bits x, Bits y ->
        let nx = Array.length x.words and ny = Array.length y.words in
        let words = Array.make (max nx ny) 0 in
        or_words ~dst:words x.words;
        or_words ~dst:words y.words;
        let card = popcount_words words in
        if card = x.card then a
        else if card = y.card then b
        else intern_words pool words card
    | Arr small, Bits big | Bits big, Arr small ->
        (* the result is a superset of the dense side *)
        let nw = max (Array.length big.words) (words_for small.(Array.length small - 1)) in
        let words = Array.make nw 0 in
        or_words ~dst:words big.words;
        Array.iter (fun e -> set_bit words e) small;
        let card = popcount_words words in
        if card = big.card then if cardinal a > cardinal b then a else b
        else intern_words pool words card

(** N-way union of [n] shared sets plus a raw element buffer, built in a
    single pass — the reachability walk's SCC-result construction.  The
    buffer may be unsorted and contain duplicates; it is clobbered. *)
let union_many pool (sets : t array) n (buf : int array) len : t =
  if n = 0 then of_dyn pool buf len
  else if n = 1 && len = 0 then sets.(0)
  else begin
    let total = ref len in
    for i = 0 to n - 1 do
      total := !total + cardinal sets.(i)
    done;
    if !total <= pool.threshold then begin
      (* everything is small: gather, sort, dedup *)
      let gather = Array.make !total 0 in
      let k = ref 0 in
      for i = 0 to n - 1 do
        iter
          (fun x ->
            gather.(!k) <- x;
            incr k)
          sets.(i)
      done;
      Array.blit buf 0 gather !k len;
      of_dyn pool gather !total
    end
    else begin
      (* bitmap accumulator sized to the widest input *)
      let maxe = ref 0 in
      for i = 0 to n - 1 do
        if cardinal sets.(i) > 0 then maxe := max !maxe (max_elem sets.(i))
      done;
      for i = 0 to len - 1 do
        maxe := max !maxe buf.(i)
      done;
      let words = Array.make (words_for !maxe) 0 in
      for i = 0 to n - 1 do
        match sets.(i).repr with
        | Bits b -> or_words ~dst:words b.words
        | Arr a -> Array.iter (fun e -> set_bit words e) a
      done;
      for i = 0 to len - 1 do
        set_bit words buf.(i)
      done;
      let card = popcount_words words in
      (* physical fast path: an input set of the same cardinality IS the
         union (every input is a subset of the union) *)
      let winner = ref None in
      for i = 0 to n - 1 do
        if !winner = None && cardinal sets.(i) = card then winner := Some sets.(i)
      done;
      match !winner with Some s -> s | None -> intern_words pool words card
    end
  end
