(** High-level façade: the full compile-link-analyze pipeline in one call.

    This is the API the examples and tools use:

    {[
      let view =
        Pipeline.compile_link
          [ ("a.c", source_a); ("b.c", source_b) ]
      in
      let sol = Pipeline.points_to view in
      Lvalset.to_list (Solution.points_to sol x)
    ]} *)

type algorithm =
  | Pretransitive  (** the paper's algorithm (Section 5) — default *)
  | Worklist  (** transitively-closed Andersen baseline *)
  | Bitvector  (** bit-vector subset baseline *)
  | Steensgaard  (** unification-based baseline *)

let algorithm_name = function
  | Pretransitive -> "pretransitive"
  | Worklist -> "worklist"
  | Bitvector -> "bitvector"
  | Steensgaard -> "steensgaard"

let algorithm_names = [ "pretransitive"; "worklist"; "bitvector"; "steensgaard" ]

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "pretransitive" | "pretrans" -> Some Pretransitive
  | "worklist" -> Some Worklist
  | "bitvector" | "bitvec" -> Some Bitvector
  | "steensgaard" | "steens" -> Some Steensgaard
  | _ -> None

(** Compile each (name, source) pair and link the results, all in memory. *)
let compile_link ?(options = Compilep.default_options) (sources : (string * string) list) :
    Objfile.view =
  let views =
    List.map
      (fun (file, src) ->
        let db = Compilep.compile_string ~options ~file src in
        Objfile.view_of_string (Objfile.write db))
      sources
  in
  let db, _stats = Linkp.link_views views in
  Objfile.view_of_string (Objfile.write db)

(** Compile-link from disk paths. *)
let compile_link_files ?(options = Compilep.default_options) paths : Objfile.view =
  let views =
    List.map
      (fun path -> Objfile.view_of_string (Objfile.write (Compilep.compile_file ~options path)))
      paths
  in
  let db, _stats = Linkp.link_views views in
  Objfile.view_of_string (Objfile.write db)

(** Run the selected points-to analysis over a linked view.  Each solver
    runs under an ["analyze"] span (the pre-transitive solver records its
    own, with per-pass children).  [deadline]/[cancel] abort with the
    typed {!Cla_resilience} exceptions — never a partial solution. *)
let points_to ?(algorithm = Pretransitive) ?config ?demand ?budget ?deadline
    ?cancel (view : Objfile.view) : Solution.t =
  match algorithm with
  | Pretransitive ->
      (Andersen.solve ?config ?demand ?budget ?deadline ?cancel view)
        .Andersen.solution
  | Worklist ->
      Cla_obs.Obs.with_span "analyze" ~label:"worklist" (fun () ->
          Worklist.solve ?deadline ?cancel view)
  | Bitvector ->
      Cla_obs.Obs.with_span "analyze" ~label:"bitvector" (fun () ->
          Bitsolver.solve ?deadline ?cancel view)
  | Steensgaard ->
      Cla_obs.Obs.with_span "analyze" ~label:"steensgaard" (fun () ->
          Steensgaard.solve ?deadline ?cancel view)

(** Like {!points_to} with the pre-transitive solver, returning the full
    result (pass count, loader statistics, graph statistics). *)
let points_to_result ?config ?demand ?budget ?deadline ?cancel view :
    Andersen.result =
  Andersen.solve ?config ?demand ?budget ?deadline ?cancel view

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                 *)
(* ------------------------------------------------------------------ *)

(** What a rung's answer means.  The worklist and bit-vector baselines
    compute the same subset-based solution as the pre-transitive solver
    (the equivalence tests enforce it); Steensgaard's unification is a
    sound over-approximation — every reported set is a superset of the
    subset-based one. *)
let soundness_note = function
  | Pretransitive -> "exact subset-based (Andersen) solution"
  | Worklist | Bitvector -> "exact subset-based (Andersen) baseline"
  | Steensgaard ->
      "sound over-approximation (unification; supersets of the \
       subset-based sets)"

(** The default ladder: the paper's solver, then the cheaper bit-vector
    formulation of the same subset problem, then the near-linear
    unification analysis that always finishes. *)
let default_ladder = [ Pretransitive; Bitvector; Steensgaard ]

type ladder_outcome = {
  lo_solution : Solution.t;
  lo_algorithm : algorithm;  (** the rung that answered *)
  lo_degraded : bool;
  lo_note : string;  (** soundness statement for that rung *)
  lo_timeouts : (algorithm * Cla_resilience.Progress.t) list;
      (** rungs that timed out, with how far each got *)
}

(** Run the degradation ladder under one deadline token.  Each rung gets
    the remaining slice; the final rung runs deadline-exempt (unless
    [strict]) so the ladder always returns a sound solution, labeled
    with its rung via {!Solution.set_provenance}.  A [cancel] token
    aborts the whole ladder.  Publishes [analyze.degraded],
    [analyze.deadline_ms], [analyze.rung] and [analyze.rung_timeouts]
    into the metrics registry. *)
let points_to_ladder ?(ladder = default_ladder) ?strict ?config ?demand
    ?budget ?(deadline = Cla_resilience.Deadline.never) ?cancel
    (view : Objfile.view) : ladder_outcome =
  if ladder = [] then invalid_arg "Pipeline.points_to_ladder: empty ladder";
  Cla_obs.Metrics.set "analyze.deadline_ms"
    (if Cla_resilience.Deadline.is_never deadline then -1
     else
       int_of_float (Float.max 0. (Cla_resilience.Deadline.remaining_ms deadline)));
  let rungs =
    List.map
      (fun a ->
        ( algorithm_name a,
          fun ~deadline ->
            points_to ~algorithm:a ?config ?demand ?budget ~deadline ?cancel
              view ))
      ladder
  in
  let o = Cla_resilience.Degrade.run ?strict ~deadline ~rungs () in
  let lo_algorithm = List.nth ladder o.Cla_resilience.Degrade.rung_index in
  let lo_note = soundness_note lo_algorithm in
  let lo_timeouts =
    List.map2
      (fun alg (a : Cla_resilience.Degrade.attempt) ->
        (alg, a.Cla_resilience.Degrade.a_progress))
      (List.filteri
         (fun i _ -> i < List.length o.Cla_resilience.Degrade.attempts)
         ladder)
      o.Cla_resilience.Degrade.attempts
  in
  let sol = o.Cla_resilience.Degrade.value in
  Solution.set_provenance sol
    {
      Solution.p_rung = algorithm_name lo_algorithm;
      p_degraded = o.Cla_resilience.Degrade.degraded;
      p_note = lo_note;
    };
  Cla_obs.Metrics.set "analyze.degraded"
    (if o.Cla_resilience.Degrade.degraded then 1 else 0);
  Cla_obs.Metrics.set_str "analyze.rung" (algorithm_name lo_algorithm);
  Cla_obs.Metrics.set "analyze.rung_timeouts" (List.length lo_timeouts);
  {
    lo_solution = sol;
    lo_algorithm;
    lo_degraded = o.Cla_resilience.Degrade.degraded;
    lo_note;
    lo_timeouts;
  }
