(** High-level façade: the full compile-link-analyze pipeline in one call.

    This is the API the examples and tools use:

    {[
      let view =
        Pipeline.compile_link
          [ ("a.c", source_a); ("b.c", source_b) ]
      in
      let sol = Pipeline.points_to view in
      Lvalset.to_list (Solution.points_to sol x)
    ]} *)

type algorithm =
  | Pretransitive  (** the paper's algorithm (Section 5) — default *)
  | Worklist  (** transitively-closed Andersen baseline *)
  | Bitvector  (** bit-vector subset baseline *)
  | Steensgaard  (** unification-based baseline *)

let algorithm_name = function
  | Pretransitive -> "pretransitive"
  | Worklist -> "worklist"
  | Bitvector -> "bitvector"
  | Steensgaard -> "steensgaard"

let algorithm_names = [ "pretransitive"; "worklist"; "bitvector"; "steensgaard" ]

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "pretransitive" | "pretrans" -> Some Pretransitive
  | "worklist" -> Some Worklist
  | "bitvector" | "bitvec" -> Some Bitvector
  | "steensgaard" | "steens" -> Some Steensgaard
  | _ -> None

(* Map [compile] over the translation units, fanning out across a domain
   pool when [jobs > 1].  Compilation is file-local (per-invocation
   front-end state, no shared mutable tables), so units are independent
   tasks; [Pool.map] preserves input order and each unit's output bytes
   do not depend on scheduling — [-j N] object bytes are byte-identical
   to [-j 1].  The main domain wraps the whole fan-out in one
   ["compile"] span (worker domains skip span recording).  Domains come
   from the process-wide persistent pool ({!Cla_par.Pool.shared}), so
   repeated compile-link calls — and the analyze fan-out after them —
   reuse the same parked workers instead of re-spawning. *)
let compile_units ~jobs compile units =
  let jobs = Cla_par.Pool.resolve_jobs jobs in
  if jobs <= 1 then List.map compile units
  else
    Cla_obs.Obs.with_span "compile" ~label:(Fmt.str "fan-out -j%d" jobs)
      (fun () ->
        let pool = Cla_par.Pool.shared ~jobs in
        Cla_par.Pool.map pool compile units)

(* The shared pool, when the caller asked for parallelism; [None] keeps
   every solver on its strictly sequential code path. *)
let pool_of_jobs jobs =
  match jobs with
  | None -> None
  | Some j ->
      let j = Cla_par.Pool.resolve_jobs j in
      if j <= 1 then None else Some (Cla_par.Pool.shared ~jobs:j)

(* Process-wide compile cache: TU content hash -> serialized object
   bytes.  {!compile_link} probes it with the cheap {!Compilep.tu_hash}
   (preprocess + digest) before paying for parse / normalize /
   serialize.  Entries are the exact bytes a fresh compile would emit,
   so a hit is indistinguishable from a recompile.  A mutex guards the
   table because the compile fan-out probes from worker domains; the
   table is content-addressed, so a stale entry is impossible — only
   growth is bounded (reset past [compile_cache_cap] entries). *)
let compile_cache : (string, string) Hashtbl.t = Hashtbl.create 64
let compile_cache_mutex = Mutex.create ()
let compile_cache_cap = 4096

let compile_obj ~options (file, src) : string =
  (* [drop_bodies] is a function and cannot be part of the content hash;
     a caller that replaced the default no-op (the deletion harness)
     must bypass the cache entirely or stale objects would defeat its
     soundness gate.  Every cache-friendly caller builds options with
     [{ Compilep.default_options with ... }], which preserves the
     default closure physically. *)
  if options.Compilep.drop_bodies
     != Compilep.default_options.Compilep.drop_bodies
  then Objfile.write (Compilep.compile_string ~options ~file src)
  else begin
  let h = Compilep.tu_hash ~options ~file src in
  Mutex.lock compile_cache_mutex;
  let cached = Hashtbl.find_opt compile_cache h in
  Mutex.unlock compile_cache_mutex;
  match cached with
  | Some bytes ->
      Cla_obs.Metrics.incr "compile.cache.hits";
      bytes
  | None ->
      Cla_obs.Metrics.incr "compile.cache.misses";
      let bytes =
        Objfile.write (Compilep.compile_string ~options ~file src)
      in
      Mutex.lock compile_cache_mutex;
      if Hashtbl.length compile_cache >= compile_cache_cap then
        Hashtbl.reset compile_cache;
      Hashtbl.replace compile_cache h bytes;
      Mutex.unlock compile_cache_mutex;
      bytes
  end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  source

(** Compile each (name, source) pair and link the results, all in memory.
    [jobs > 1] compiles translation units across a domain pool; the
    linked database is byte-identical to a sequential run.  Units whose
    TU content hash was compiled before are served from the process-wide
    compile cache ([compile.cache.hits]/[compile.cache.misses]). *)
let compile_link ?(options = Compilep.default_options) ?(jobs = 1) ?undefined
    (sources : (string * string) list) : Objfile.view =
  let objs = compile_units ~jobs (compile_obj ~options) sources in
  let views = List.map Objfile.view_of_string objs in
  let db, _stats = Linkp.link_views ?undefined views in
  Objfile.view_of_string (Objfile.write db)

(** Compile-link from disk paths.  Shares {!compile_link}'s content-
    addressed compile cache. *)
let compile_link_files ?(options = Compilep.default_options) ?(jobs = 1)
    ?undefined paths : Objfile.view =
  let objs =
    compile_units ~jobs
      (fun path -> compile_obj ~options (path, read_file path))
      paths
  in
  let views = List.map Objfile.view_of_string objs in
  let db, _stats = Linkp.link_views ?undefined views in
  Objfile.view_of_string (Objfile.write db)

(** Run the selected points-to analysis over a linked view.  Each solver
    runs under an ["analyze"] span (the pre-transitive solver records its
    own, with per-pass children).  [deadline]/[cancel] abort with the
    typed {!Cla_resilience} exceptions — never a partial solution. *)
let points_to ?(algorithm = Pretransitive) ?config ?demand ?budget ?deadline
    ?cancel ?jobs (view : Objfile.view) : Solution.t =
  let pool = pool_of_jobs jobs in
  match algorithm with
  | Pretransitive ->
      (Andersen.solve ?config ?demand ?budget ?deadline ?cancel ?pool view)
        .Andersen.solution
  | Worklist ->
      Cla_obs.Obs.with_span "analyze" ~label:"worklist" (fun () ->
          Worklist.solve ?deadline ?cancel view)
  | Bitvector ->
      Cla_obs.Obs.with_span "analyze" ~label:"bitvector" (fun () ->
          Bitsolver.solve ?deadline ?cancel ?pool view)
  | Steensgaard ->
      (* Unification would put the blob in one equivalence class with
         every escaping object — a degenerate "everything aliases
         everything" answer — so open-world databases are refused rather
         than silently mishandled (see DESIGN.md). *)
      if view.Objfile.ropenworld <> None then
        Diag.fail ~phase:Diag.Analyze
          "steensgaard cannot analyze an open-world database (unification \
           collapses the blob with every escaping object); supported \
           algorithms: pretransitive, worklist, bitvector";
      Cla_obs.Obs.with_span "analyze" ~label:"steensgaard" (fun () ->
          Steensgaard.solve ?deadline ?cancel view)

(** Like {!points_to} with the pre-transitive solver, returning the full
    result (pass count, loader statistics, graph statistics). *)
let points_to_result ?config ?demand ?budget ?deadline ?cancel ?jobs view :
    Andersen.result =
  let pool = pool_of_jobs jobs in
  Andersen.solve ?config ?demand ?budget ?deadline ?cancel ?pool view

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                 *)
(* ------------------------------------------------------------------ *)

(** What a rung's answer means.  The worklist and bit-vector baselines
    compute the same subset-based solution as the pre-transitive solver
    (the equivalence tests enforce it); Steensgaard's unification is a
    sound over-approximation — every reported set is a superset of the
    subset-based one. *)
let soundness_note = function
  | Pretransitive -> "exact subset-based (Andersen) solution"
  | Worklist | Bitvector -> "exact subset-based (Andersen) baseline"
  | Steensgaard ->
      "sound over-approximation (unification; supersets of the \
       subset-based sets)"

(** The default ladder: the paper's solver, then the cheaper bit-vector
    formulation of the same subset problem, then the near-linear
    unification analysis that always finishes. *)
let default_ladder = [ Pretransitive; Bitvector; Steensgaard ]

(** The ladder for open-world databases: Steensgaard's unification is
    unsupported there (see {!points_to}), so the bit-vector solver is
    the always-sound final rung. *)
let open_world_ladder = [ Pretransitive; Bitvector ]

type ladder_outcome = {
  lo_solution : Solution.t;
  lo_algorithm : algorithm;  (** the rung that answered *)
  lo_degraded : bool;
  lo_note : string;  (** soundness statement for that rung *)
  lo_timeouts : (algorithm * Cla_resilience.Progress.t) list;
      (** rungs that timed out, with how far each got *)
}

(* Stamp the answering rung onto the solution, publish the ladder
   metrics, and build the outcome record — shared by the sequential
   (Degrade.run) and hedged paths so both report identically. *)
let finish_outcome ~alg ~degraded ~timeouts sol =
  let lo_note = soundness_note alg in
  Solution.set_provenance sol
    { Solution.p_rung = algorithm_name alg; p_degraded = degraded; p_note = lo_note };
  Cla_obs.Metrics.set "analyze.degraded" (if degraded then 1 else 0);
  Cla_obs.Metrics.set_str "analyze.rung" (algorithm_name alg);
  Cla_obs.Metrics.set "analyze.rung_timeouts" (List.length timeouts);
  {
    lo_solution = sol;
    lo_algorithm = alg;
    lo_degraded = degraded;
    lo_note;
    lo_timeouts = timeouts;
  }

let outcome_of_solution alg sol =
  finish_outcome ~alg ~degraded:false ~timeouts:[] sol

(* The hedged ladder: run the cheap final rung on its own domain from
   the start, while the main domain climbs the precise rungs under the
   deadline.  First sound answer wins — a precise rung finishing in time
   cancels the hedge; every precise rung timing out means the hedge's
   answer (usually already done, Steensgaard being near-linear) is
   returned without the sequential ladder's "time out, then start the
   fallback from zero" latency cliff.  Unless [strict], the hedge runs
   deadline-exempt, like Degrade.run's final rung.

   The hedge is a {!Cla_par.Pool.async} future on the shared pool: at
   width 1 (no [-j]) that is a dedicated domain as before, at width >= 2
   it rides a parked worker.  The hedge body itself always solves
   sequentially (never [?jobs]) — a pool task must not submit batches to
   its own pool, and the final rung is the cheap near-linear one. *)
let hedged_ladder ~ladder ~strict ?config ?demand ?budget ~deadline ?cancel
    ?jobs (view : Objfile.view) : ladder_outcome =
  let init_rungs, final_rung =
    let rec split acc = function
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split (x :: acc) rest
      | [] -> assert false (* caller checked length >= 2 *)
    in
    split [] ladder
  in
  let hedge_cancel = Cla_resilience.Cancel.create () in
  let hedge_done = Atomic.make false in
  let hedge_deadline = if strict then deadline else Cla_resilience.Deadline.never in
  let hedge_pool =
    Cla_par.Pool.shared ~jobs:(Cla_par.Pool.resolve_jobs (Option.value jobs ~default:1))
  in
  let hedge =
    Cla_par.Pool.async hedge_pool (fun () ->
        let r =
          match
            points_to ~algorithm:final_rung ?config ?demand ?budget
              ~deadline:hedge_deadline ~cancel:hedge_cancel view
          with
          | sol -> Ok sol
          | exception e -> Error e
        in
        Atomic.set hedge_done true;
        r)
  in
  let discard_hedge () =
    Cla_resilience.Cancel.set hedge_cancel;
    ignore (Cla_par.Pool.await hedge)
  in
  let timeouts = ref [] in
  let rec run_init idx = function
    | [] -> None
    | alg :: rest -> (
        match
          points_to ~algorithm:alg ?config ?demand ?budget ~deadline ?cancel
            ?jobs view
        with
        | sol -> Some (alg, idx, sol)
        | exception Cla_resilience.Deadline.Timed_out p ->
            timeouts := (alg, p) :: !timeouts;
            run_init (idx + 1) rest)
  in
  match run_init 0 init_rungs with
  | Some (alg, idx, sol) ->
      discard_hedge ();
      Cla_obs.Metrics.set "analyze.hedge_won" 0;
      finish_outcome ~alg ~degraded:(idx > 0) ~timeouts:(List.rev !timeouts)
        sol
  | None -> (
      (* Every precise rung timed out; the hedge's answer is the result.
         While it is still running, keep relaying an external
         cancellation onto the hedge's own token so a watchdog can still
         abort the whole solve. *)
      (match cancel with
      | Some c ->
          while not (Atomic.get hedge_done) do
            if Cla_resilience.Cancel.is_set c then
              Cla_resilience.Cancel.set hedge_cancel;
            Unix.sleepf 0.002
          done
      | None -> ());
      match Cla_par.Pool.await hedge with
      | Ok sol ->
          Cla_obs.Metrics.set "analyze.hedge_won" 1;
          finish_outcome ~alg:final_rung ~degraded:true
            ~timeouts:(List.rev !timeouts) sol
      | Error e -> raise e)
  | exception e ->
      (* external cancellation or a genuine solver error: stop the hedge
         before unwinding *)
      discard_hedge ();
      raise e

(** Run the degradation ladder under one deadline token.  Each rung gets
    the remaining slice; the final rung runs deadline-exempt (unless
    [strict]) so the ladder always returns a sound solution, labeled
    with its rung via {!Solution.set_provenance}.  A [cancel] token
    aborts the whole ladder.  Publishes [analyze.degraded],
    [analyze.deadline_ms], [analyze.rung], [analyze.rung_timeouts] and
    [analyze.hedge]/[analyze.hedge_won] into the metrics registry.

    [~hedge:true] with a finite deadline and at least two rungs runs the
    final (cheapest, always-sound) rung concurrently on its own domain
    from the start; the first sound answer wins and the loser is
    cancelled. *)
let points_to_ladder ?(ladder = default_ladder) ?strict ?(hedge = false)
    ?config ?demand ?budget ?(deadline = Cla_resilience.Deadline.never)
    ?cancel ?jobs (view : Objfile.view) : ladder_outcome =
  (* open-world databases drop unsupported unification rungs rather
     than dying mid-ladder on the Steensgaard guard *)
  let ladder =
    if view.Objfile.ropenworld <> None then
      List.filter (fun a -> a <> Steensgaard) ladder
    else ladder
  in
  if ladder = [] then invalid_arg "Pipeline.points_to_ladder: empty ladder";
  Cla_obs.Metrics.set "analyze.deadline_ms"
    (if Cla_resilience.Deadline.is_never deadline then -1
     else
       int_of_float (Float.max 0. (Cla_resilience.Deadline.remaining_ms deadline)));
  let hedge_active =
    hedge
    && (not (Cla_resilience.Deadline.is_never deadline))
    && List.length ladder >= 2
  in
  Cla_obs.Metrics.set "analyze.hedge" (if hedge_active then 1 else 0);
  if hedge_active then
    hedged_ladder ~ladder
      ~strict:(Option.value strict ~default:false)
      ?config ?demand ?budget ~deadline ?cancel ?jobs view
  else begin
    let rungs =
      List.map
        (fun a ->
          ( algorithm_name a,
            fun ~deadline ->
              points_to ~algorithm:a ?config ?demand ?budget ~deadline ?cancel
                ?jobs view ))
        ladder
    in
    let o = Cla_resilience.Degrade.run ?strict ~deadline ~rungs () in
    let lo_algorithm = List.nth ladder o.Cla_resilience.Degrade.rung_index in
    let lo_timeouts =
      List.map2
        (fun alg (a : Cla_resilience.Degrade.attempt) ->
          (alg, a.Cla_resilience.Degrade.a_progress))
        (List.filteri
           (fun i _ -> i < List.length o.Cla_resilience.Degrade.attempts)
           ladder)
        o.Cla_resilience.Degrade.attempts
    in
    finish_outcome ~alg:lo_algorithm
      ~degraded:o.Cla_resilience.Degrade.degraded ~timeouts:lo_timeouts
      o.Cla_resilience.Degrade.value
  end
