(** Demand loader over a linked object-file view (the "analyze" phase's
    I/O layer, Section 4).

    The static section is always loaded; dynamic blocks are decoded only
    when the analysis asks for them, and the caller may discard decoded
    records and re-read them later ("once we have read information from the
    object file we can simply discard it and re-load it later if
    necessary").  The loader keeps the Table 3 accounting: assignments
    loaded, assignments retained in core, assignments in the file.

    With [~budget], retention is {e bounded}: the loader tracks which
    blocks hold retained assignments in LRU order, and when a [retain]
    would push the in-core total past the budget it discards
    least-recently-used blocks — notifying the analysis through
    [on_evict] so it can drop the decoded records and re-load them later.
    This makes the paper's discard-and-re-load strategy real rather than
    an accounting fiction. *)

open Cla_ir

type t = {
  view : Objfile.view;
  loaded_flag : Bytes.t;  (* per var: block loaded at least once *)
  mutable loaded : int;  (* primitive assignments decoded *)
  mutable in_core : int;  (* primitive assignments retained in memory *)
  mutable reloads : int;  (* blocks decoded again after a discard *)
  budget : int option;  (* max retained assignments, if bounded *)
  mutable evictions : int;  (* blocks discarded to stay within budget *)
  retained_n : int array;  (* per var: assignments currently retained *)
  (* LRU doubly-linked list over blocks with retained assignments;
     index [sentinel] (= n_vars) is the list head/tail anchor, [-1]
     marks "not in list". *)
  lru_prev : int array;
  lru_next : int array;
  sentinel : int;
  mutable on_evict : int -> unit;
}

let create ?budget (view : Objfile.view) =
  let n = Objfile.n_vars view in
  let s = n in
  let prev = Array.make (n + 1) (-1) and next = Array.make (n + 1) (-1) in
  prev.(s) <- s;
  next.(s) <- s;
  {
    view;
    loaded_flag = Bytes.make (max 1 n) '\000';
    loaded = 0;
    in_core = 0;
    reloads = 0;
    budget;
    evictions = 0;
    retained_n = Array.make (max 1 n) 0;
    lru_prev = prev;
    lru_next = next;
    sentinel = s;
    on_evict = ignore;
  }

(** Install the callback invoked with a block's object id when its
    retained assignments are discarded to stay within the budget. *)
let set_on_evict t f = t.on_evict <- f

let budget t = t.budget

(** [true] while the block of [src] still holds retained assignments
    (i.e. it has been retained and not evicted since). *)
let is_retained t src = t.retained_n.(src) > 0

(* ---------------- LRU bookkeeping ---------------- *)

let in_lru t v = t.lru_next.(v) >= 0

let lru_remove t v =
  if in_lru t v then begin
    let p = t.lru_prev.(v) and n = t.lru_next.(v) in
    t.lru_next.(p) <- n;
    t.lru_prev.(n) <- p;
    t.lru_next.(v) <- -1;
    t.lru_prev.(v) <- -1
  end

(* Most-recently-used position is right after the sentinel. *)
let lru_touch t v =
  lru_remove t v;
  let s = t.sentinel in
  let n = t.lru_next.(s) in
  t.lru_next.(s) <- v;
  t.lru_prev.(v) <- s;
  t.lru_next.(v) <- n;
  t.lru_prev.(n) <- v

let evict t v =
  t.in_core <- t.in_core - t.retained_n.(v);
  t.retained_n.(v) <- 0;
  lru_remove t v;
  t.evictions <- t.evictions + 1;
  t.on_evict v

(* Discard LRU blocks (never [keep], the block being retained right now)
   until the budget holds again.  If [keep] alone exceeds the budget
   there is nothing left to evict and the overshoot stands — a budget
   smaller than one block cannot be honored. *)
let enforce_budget t ~keep limit =
  let continue_ = ref true in
  while t.in_core > limit && !continue_ do
    let v = ref (t.lru_prev.(t.sentinel)) in
    while !v <> t.sentinel && !v = keep do
      v := t.lru_prev.(!v)
    done;
    if !v = t.sentinel then continue_ := false else evict t !v
  done

(* ---------------- loading & accounting ---------------- *)

(** The address-of assignments; counted as loaded (they are always read,
    then discarded per the Section 6 strategy). *)
let statics t =
  t.loaded <- t.loaded + Array.length t.view.Objfile.rstatics;
  t.view.Objfile.rstatics

(** Decode the block of [src].  Every call reads from the file bytes; the
    second and later calls on the same block count as re-loads. *)
let block t src : Objfile.prim_rec list =
  let prims = Objfile.read_block t.view src in
  let n = List.length prims in
  if n > 0 then begin
    t.loaded <- t.loaded + n;
    if Bytes.get t.loaded_flag src <> '\000' then t.reloads <- t.reloads + 1
    else Bytes.set t.loaded_flag src '\001';
    if is_retained t src then lru_touch t src
  end;
  prims

(** Record that [n] decoded assignments of the block of [src] are being
    kept in memory (complex assignments are retained; [x = y] and
    [x = &y] are discarded).  May evict other blocks to honor the
    budget. *)
let retain t ~src n =
  if n > 0 then begin
    t.in_core <- t.in_core + n;
    t.retained_n.(src) <- t.retained_n.(src) + n;
    lru_touch t src;
    match t.budget with
    | None -> ()
    | Some limit -> enforce_budget t ~keep:src limit
  end

type stats = {
  s_in_core : int;
  s_loaded : int;
  s_in_file : int;
  s_reloads : int;
  s_evictions : int;
}

let stats t =
  {
    s_in_core = t.in_core;
    s_loaded = t.loaded;
    s_in_file = Prim.total t.view.Objfile.rmeta.Objfile.mcounts;
    s_reloads = t.reloads;
    s_evictions = t.evictions;
  }

(** Publish a stats record into the metrics registry under
    [load.blocks.*] — Table 3's block-residency accounting — plus the
    eviction counter [load.evictions]. *)
let publish_stats ?reg (s : stats) =
  let set k v = Cla_obs.Metrics.set ?reg ("load.blocks." ^ k) v in
  set "in_core" s.s_in_core;
  set "loaded" s.s_loaded;
  set "in_file" s.s_in_file;
  set "reloads" s.s_reloads;
  Cla_obs.Metrics.set ?reg "load.evictions" s.s_evictions

(* ---------------- parallel integrity verification ---------------- *)

(** Open a database from bytes with the per-section CRC sweep fanned out
    across [pool] instead of running lazily at first section open.  The
    header (magic, table bounds, table checksum) is validated on the
    calling domain first; section payload checksums — the dominant cost
    on a large linked database — then run as one pool task per section,
    and the view is built with [~verify:false] since every section has
    already been checked.  A corrupt section raises {!Binio.Corrupt}
    exactly as the sequential path does; the pool cancels the remaining
    in-flight checksums via the batch token. *)
let view_par ~pool (data : string) : Objfile.view =
  let entries = Objfile.section_table data in
  ignore
    (Cla_par.Pool.map pool (fun e -> Objfile.verify_section data e) entries);
  Objfile.view_of_string ~verify:false data

(** Like {!Objfile.load_result}, but verifying section checksums across
    [pool]. *)
let load_file_par ~pool path : (Objfile.view, Diag.t) result =
  Diag.capture ~file:path ~phase:Diag.Load (fun () ->
      let ic = open_in_bin path in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      view_par ~pool data)

(* ------------------------------------------------------------------ *)
(* Cached file loads (the watch / incremental path)                     *)
(* ------------------------------------------------------------------ *)

(* Process-wide cache of loaded object files keyed by path.  Every probe
   revalidates the entry against the file's current (size, mtime) — a
   rewritten file is reloaded, an untouched one is served from memory
   and counted in [load.revalidations].  The watcher polls by stat, so
   this is the natural freshness granularity; a same-size same-mtime
   rewrite is indistinguishable by stat and treated as unchanged. *)
let file_cache : (string, int * float * Objfile.view) Hashtbl.t =
  Hashtbl.create 16

let file_cache_m = Mutex.create ()

let load_file_cached path : (Objfile.view, Diag.t) result =
  match Unix.stat path with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Diag.error ~file:path ~phase:Diag.Load
           ("cannot stat: " ^ Unix.error_message e))
  | st when st.Unix.st_kind <> Unix.S_REG ->
      Error (Diag.error ~file:path ~phase:Diag.Load "not a regular file")
  | st -> (
      let size = st.Unix.st_size and mtime = st.Unix.st_mtime in
      Mutex.lock file_cache_m;
      let hit =
        match Hashtbl.find_opt file_cache path with
        | Some (sz, mt, v) when sz = size && Float.equal mt mtime -> Some v
        | _ -> None
      in
      Mutex.unlock file_cache_m;
      match hit with
      | Some v ->
          Cla_obs.Metrics.incr "load.revalidations";
          Ok v
      | None -> (
          match Objfile.load_result path with
          | Error _ as e -> e
          | Ok v ->
              Mutex.lock file_cache_m;
              Hashtbl.replace file_cache path (size, mtime, v);
              Mutex.unlock file_cache_m;
              Ok v))

(** Operations through which points-to information survives: only these
    copies are relevant to aliasing, and the loader skips the rest
    ("non-pointer arithmetic assignments are usually ignored", Section 6). *)
let pointer_relevant_op = function
  | "+" | "-" | "u+" | "u-" | "cast" | "?:" -> true
  | _ -> false

let relevant_to_points_to (p : Objfile.prim_rec) =
  match (p.Objfile.pkind, p.Objfile.pop) with
  | Objfile.Pcopy, Some (op, _) -> pointer_relevant_op op
  | _ -> true
