(** Points-to analysis results over a linked database. *)

open Cla_ir

(* Which rung of a degradation ladder produced this solution.  A plain
   (non-ladder) solve leaves it [None]. *)
type provenance = {
  p_rung : string;  (* algorithm that answered, e.g. "steensgaard" *)
  p_degraded : bool;  (* true when a more precise rung timed out first *)
  p_note : string;  (* soundness statement for the rung *)
}

type t = {
  view : Objfile.view;
  pts : Lvalset.t array;  (** indexed by var id; locations are var ids *)
  mutable prov : provenance option;
}

let create view pts = { view; pts; prov = None }

let set_provenance t p = t.prov <- Some p
let provenance t = t.prov

(* A negative id can only come from an uninitialized slot (linker -1
   sentinels) or a corrupted database — fail loudly rather than analyze
   as empty.  Ids beyond the table are fresh solver-internal nodes with
   genuinely empty sets. *)
let points_to t v : Lvalset.t =
  if v < 0 then
    invalid_arg (Printf.sprintf "Solution.points_to: negative variable id %d" v)
  else if v < Array.length t.pts then t.pts.(v)
  else Lvalset.empty

let var_name t v = t.view.Objfile.rvars.(v).Objfile.vname
let var_kind t v = t.view.Objfile.rvars.(v).Objfile.vkind

(* Temporaries introduced by the normalizer are excluded from reported
   counts, as in Table 3 ("it does not include any temporary variables
   introduced by the analysis"). *)
let is_program_var t v = var_kind t v <> Var.Temp

(** Table 3's "pointer variables": program objects with a non-empty
    points-to set. *)
let n_pointer_vars t =
  let n = ref 0 in
  Array.iteri
    (fun v s ->
      if Lvalset.cardinal s > 0 && is_program_var t v then incr n)
    t.pts;
  !n

(** Table 3's "points-to relations": total size of all points-to sets of
    program objects. *)
let n_relations t =
  let n = ref 0 in
  Array.iteri
    (fun v s -> if is_program_var t v then n := !n + Lvalset.cardinal s)
    t.pts;
  !n

(** Resolve a variable by display name (first match). *)
let find t name =
  match Objfile.find_targets t.view name with v :: _ -> Some v | [] -> None

let pp_var t ppf v = Fmt.string ppf (var_name t v)

(** Print [x -> {a, b, c}]. *)
let pp_entry t ppf v =
  Fmt.pf ppf "%s -> {%a}" (var_name t v)
    (Fmt.list ~sep:(Fmt.any ", ") (pp_var t))
    (Lvalset.to_list (points_to t v))

let pp ppf t =
  Array.iteri
    (fun v s ->
      if Lvalset.cardinal s > 0 && is_program_var t v then
        Fmt.pf ppf "%a@." (pp_entry t) v)
    t.pts

(** Compare two solutions on program variables (used by the equivalence
    tests between solvers). *)
let equal a b =
  Array.length a.pts = Array.length b.pts
  && begin
       let ok = ref true in
       Array.iteri
         (fun v s ->
           if is_program_var a v && not (Lvalset.equal s b.pts.(v)) then
             ok := false)
         a.pts;
       !ok
     end
