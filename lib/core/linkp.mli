(** The CLA link phase: merge object files into one database, linking
    global symbols and recomputing the indexes (Section 4). *)

type stats = {
  n_units : int;
  n_extern_merged : int;  (** extern symbol occurrences unified away *)
  n_vars_out : int;
  n_undefined : int;  (** declared-but-undefined functions detected *)
}

(** What to do about declared-but-undefined functions (and never-defined
    extern objects):

    - [Ignore] — the library default: link the fragment as-is, with the
      closed-world under-approximation (tools and tests that analyze
      snippets calling [printf] etc. keep working);
    - [Error] — the strict linker contract ([cla link] without
      [--open-world]): raise {!Diag.Fail} naming the undefined
      functions, which the CLI renders as exit 3 (internal taxonomy:
      the link cannot produce a sound closed-world executable);
    - [Open_world] — [cla link --open-world]: synthesize
      {!Openworld} havoc constraints so the analysis stays sound, attach
      the {!Objfile.ow} summary, and publish the
      [link.open_world.undefined] / [link.open_world.escaping] metrics. *)
type undef_policy = Ignore | Error | Open_world

(** Publish a stats record into the metrics registry (default
    {!Cla_obs.Metrics.default}) under [link.*]. *)
val publish_stats : ?reg:Cla_obs.Metrics.t -> stats -> unit

(** Link several object-file views into a single database.  Extern objects
    with the same canonical key are unified; unit-private objects are
    renumbered; dynamic blocks of merged objects are concatenated; Table 2
    statistics are summed.  Recorded as a ["link"] span and published as
    [link.*] metrics.  [undefined] (default [Ignore]) selects the
    incomplete-program policy. *)
val link_views :
  ?undefined:undef_policy -> Objfile.view list -> Objfile.db * stats

(** Link object files from disk and write the "executable" database
    (which has the same format as the inputs, as in the paper). *)
val link_files :
  ?undefined:undef_policy -> output:string -> string list -> stats

(** Like {!link_files}, surfacing corrupt or unreadable inputs as
    structured diagnostics (bumping [load.corrupt]).  With [keep_going]
    the bad object files are skipped and the rest are linked; without it
    the first failure raises {!Diag.Fail}.  [None] means no input
    survived, in which case no output is written. *)
val link_files_result :
  ?keep_going:bool ->
  ?undefined:undef_policy ->
  output:string ->
  string list ->
  stats option * Diag.t list
