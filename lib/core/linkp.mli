(** The CLA link phase: merge object files into one database, linking
    global symbols and recomputing the indexes (Section 4). *)

type stats = {
  n_units : int;
  n_extern_merged : int;  (** extern symbol occurrences unified away *)
  n_vars_out : int;
  n_undefined : int;  (** declared-but-undefined functions detected *)
}

(** What to do about declared-but-undefined functions (and never-defined
    extern objects):

    - [Ignore] — the library default: link the fragment as-is, with the
      closed-world under-approximation (tools and tests that analyze
      snippets calling [printf] etc. keep working);
    - [Error] — the strict linker contract ([cla link] without
      [--open-world]): raise {!Diag.Fail} naming the undefined
      functions, which the CLI renders as exit 3 (internal taxonomy:
      the link cannot produce a sound closed-world executable);
    - [Open_world] — [cla link --open-world]: synthesize
      {!Openworld} havoc constraints so the analysis stays sound, attach
      the {!Objfile.ow} summary, and publish the
      [link.open_world.undefined] / [link.open_world.escaping] metrics. *)
type undef_policy = Ignore | Error | Open_world

(** Publish a stats record into the metrics registry (default
    {!Cla_obs.Metrics.default}) under [link.*]. *)
val publish_stats : ?reg:Cla_obs.Metrics.t -> stats -> unit

(** Link several object-file views into a single database.  Extern objects
    with the same canonical key are unified; unit-private objects are
    renumbered; dynamic blocks of merged objects are concatenated; Table 2
    statistics are summed.  Recorded as a ["link"] span and published as
    [link.*] metrics.  [undefined] (default [Ignore]) selects the
    incomplete-program policy. *)
val link_views :
  ?undefined:undef_policy -> Objfile.view list -> Objfile.db * stats

(** Link object files from disk and write the "executable" database
    (which has the same format as the inputs, as in the paper). *)
val link_files :
  ?undefined:undef_policy -> output:string -> string list -> stats

(** Like {!link_files}, surfacing corrupt or unreadable inputs as
    structured diagnostics (bumping [load.corrupt]).  With [keep_going]
    the bad object files are skipped and the rest are linked; without it
    the first failure raises {!Diag.Fail}.  [None] means no input
    survived, in which case no output is written. *)
val link_files_result :
  ?keep_going:bool ->
  ?undefined:undef_policy ->
  output:string ->
  string list ->
  stats option * Diag.t list

(* ------------------------------------------------------------------ *)
(** {1 Delta linking}

    Watch-mode machinery: keep the linker's state alive across edits and
    patch the linked database instead of re-merging the world. *)

(** What changed between two consecutive linked databases, in the linked
    id space.  Location fields are excluded from record identities (a
    pure line-number shift is not a semantic change). *)
type delta = {
  d_old_nvars : int;
  d_new_nvars : int;
  d_changed_units : int;  (** units added, removed, or content-changed *)
  d_added_statics : Objfile.prim_rec list;
  d_removed_statics : Objfile.prim_rec list;
  d_added_prims : Objfile.prim_rec list;
      (** non-[Paddr] dynamic assignments, [psrc]/[pdst] in linked ids *)
  d_removed_prims : Objfile.prim_rec list;
  d_added_fundefs : Objfile.fund_rec list;
  d_removed_fundefs : Objfile.fund_rec list;
  d_added_indirects : Objfile.indir_rec list;
  d_removed_indirects : Objfile.indir_rec list;
  d_added_strings : string list;  (** linked-view string-table additions *)
  d_removed_strings : string list;
  d_full_relink : bool;
      (** the database was rebuilt by a full merge (constraint removal);
          linked ids are NOT stable across this delta *)
}

(** True iff the delta only adds constraints — the precondition for the
    solver's truly-incremental resume.  On a pure-add delta, every old
    linked id is unchanged and every old section list survives as an
    exact prefix of its successor (positional caches stay valid). *)
val delta_is_pure_add : delta -> bool

val delta_size_added : delta -> int
val delta_size_removed : delta -> int

(** Persistent linker state for delta mode.  Only the closed-world
    [Ignore] policy is supported: open-world havoc synthesis rewrites
    the whole database and would defeat id stability. *)
type state

(** The current linked database / view (the view is re-serialized after
    every {!relink}, so block reads see the patched sections). *)
val state_view : state -> Objfile.view

val state_db : state -> Objfile.db

(** Fresh delta-linker state over an initial unit set — (name, per-unit
    view) pairs, names unique.  The returned delta is everything-added. *)
val state_create : (string * Objfile.view) list -> state * delta

(** Re-link after some units changed.  Units are matched to the previous
    set by name; a unit whose {!Objfile.view.rtuhash} is unchanged is
    not even diffed.  When every change is an addition the database is
    patched in place (old ids stable, old lists as prefixes) and the
    delta is pure-add; any removal falls back to a full merge with
    [d_full_relink] set.  Publishes [link.delta.*] metrics. *)
val relink : state -> (string * Objfile.view) list -> delta
