(** CRC-32 (IEEE 802.3 polynomial, reflected), pure OCaml.

    Used by the CLA2 object-file format for per-section integrity
    checksums.  The table is computed once at module load; no external
    dependency is involved — object files must stay readable on a bare
    toolchain. *)

(* Reflected polynomial 0xEDB88320; the classic 256-entry table.
   Computed eagerly at module load: [update] runs over every section of
   every object file, and a [Lazy.force] per call is both a branch in
   the hot loop and a race under parallel verification (forcing a lazy
   from two domains at once raises [Lazy.Undefined]). *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

(** Feed [len] bytes of [s] starting at [pos] into a running CRC.
    [crc] is the current state as returned by a previous call (start
    from [0]).  The table index is masked to [0..255], so the unsafe
    read cannot go out of bounds. *)
let update crc s ~pos ~len =
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(** CRC-32 of a substring. *)
let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub";
  update 0 s ~pos ~len

(** CRC-32 of a whole string. *)
let string s = update 0 s ~pos:0 ~len:(String.length s)
