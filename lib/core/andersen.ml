(** Andersen's analysis over the pre-transitive graph, with demand-driven
    loading from the CLA database — the paper's headline configuration
    (Sections 4 and 5).

    The driver implements Figure 5's Iteration Algorithm.  Blocks of the
    dynamic section are loaded when their owner's points-to set may become
    non-empty ("the points-to set for [q] is now non-empty, and so we must
    load all primitive assignments where [q] is the source"); [x = y] and
    [x = &y] records are discarded after their edge is inserted, complex
    assignments are kept in core (Section 6's discard strategy).  Indirect
    calls are linked at analysis time: when a function [g] enters the
    points-to set of a called pointer [f], we add [g@i = f@i] and
    [f@ret = g@ret]. *)

(** A retained complex assignment.  [Store]: for each [&z] in
    [getLvals(cptr)] add edge [z -> cother]; [Load]: for each [&z] add
    edge [cother -> z] ([cother] is the deref node [n_*y]).  [cseen]
    remembers the set processed last pass — sets grow monotonically, so
    only the delta needs new edges.  [corigin] is the block the record
    was decoded from: when the loader evicts that block to stay within
    its budget, the complex is dropped from core and re-created when the
    block is re-loaded. *)
type ckind = Kstore | Kload

type complex = {
  ckind : ckind;
  cptr : int;
  cother : int;
  corigin : int;
  mutable cseen : Lvalset.t;
}

type t = {
  g : Pretrans.t;
  mutable loader : Loader.t;  (* replaced wholesale by [resume] *)
  mutable view : Objfile.view;
  demand : bool;
  mutable active : Bytes.t;  (* per var: block requested *)
  mutable complexes : complex list;
  mutable n_complex : int;
  deref_nodes : (int, int) Hashtbl.t;  (* y -> n_*y *)
  deref2_tnodes : (int * int, int) Hashtbl.t;
      (* (dst, src) -> the split node of *dst = *src; memoized so a
         re-load of the block reuses the node instead of growing the
         graph *)
  fundef_by_var : (int, Objfile.fund_rec) Hashtbl.t;
  linked : (int, unit) Hashtbl.t;  (* (indirect idx, func var) pairs *)
  mutable passes : int;
  retained_by_block : (int, Objfile.prim_rec list) Hashtbl.t;
      (* the complex assignments kept in core (Section 6's discard
         strategy), grouped by origin block so eviction can drop a
         block's records — flattened into [result.retained] for the
         dependence analysis *)
  mutable linked_copies : (int * int * Cla_ir.Loc.t) list;
      (* analysis-time copies (dst, src) from indirect-call linking *)
  mutable iseen : Lvalset.t array;
      (* per indirect record: lvals already linked; [resume] extends it —
         the delta linker keeps the old indirect list as an exact prefix,
         so the positions stay meaningful *)
  mutable var_node : int array;
      (* var id -> graph node.  [[||]] means identity — the common case,
         where node ids [0 .. nvars-1] ARE the variable ids.  After a
         [resume] grows the variable space, new vars would collide with
         the deref/split nodes allocated past the old [nvars], so they
         are mapped through fresh nodes here instead.  Locations (base
         elements, lval-set members, [active] indices, [Solution]
         indices) always stay raw var ids — only node positions map. *)
  mutable seed_log : int list ref option;
      (* when set (during delta application), every structural change —
         a fresh edge's origin, a base addition's node — is logged as a
         seed for [Pretrans.invalidate_reaching] *)
  mutable pass_log : pass_stats list;
      (* per-pass convergence counters, reverse order *)
  mutable pending_evict : int list;
      (* blocks the loader evicted since the last pass boundary; their
         complexes are dropped at the end of the pass (after the pass's
         iteration snapshot has processed them) and re-loaded at the
         start of the next one *)
  evicted : (int, unit) Hashtbl.t;
      (* blocks whose complexes are currently out of core *)
  deadline : Cla_resilience.Deadline.t;
  cancel : Cla_resilience.Cancel.t option;
  t_start : float;  (* monotonic start, for abort progress reports *)
  mutable par_scratch : Pretrans.scratch array;
      (* per-domain traversal scratch for the parallel query fan-out,
         kept across passes (one per pool chunk, grown on demand) *)
}

(* Convergence counters for one pass of Figure 5's loop — the visible
   shape of the fixpoint iteration. *)
and pass_stats = {
  ps_pass : int;  (* 1-based pass number *)
  ps_edges_added : int;
  ps_lvals_discovered : int;  (* new lvals fed to difference propagation *)
  ps_unified : int;
  ps_queries : int;
  ps_changed : bool;
  ps_wall_s : float;  (* wall-clock time of the pass *)
}

(* Progress carried by a typed abort: the pass we were in plus the last
   completed pass's convergence line from [pass_log]. *)
let progress st () =
  let detail =
    match st.pass_log with
    | [] -> "before first pass"
    | p :: _ ->
        Fmt.str "pass %d: +%d edges, %d lvals discovered" p.ps_pass
          p.ps_edges_added p.ps_lvals_discovered
  in
  Cla_resilience.Progress.make ~at_pass:st.passes
    ~elapsed_s:(Cla_resilience.Deadline.now_s () -. st.t_start)
    detail

(* Deadline and cancel are polled here at every pass boundary, and — via
   the [Pretrans.set_interrupt] hook installed in [init] — inside the
   [get_lvals] traversal loops.  Both abort points sit where no
   invariant is in flight: the graph, the loader, and the retained
   complexes stay internally consistent, they are simply discarded with
   the state. *)
let check_tokens st =
  let progress = progress st in
  Cla_resilience.Deadline.check ~progress st.deadline;
  Option.iter (Cla_resilience.Cancel.check ~progress) st.cancel

let node_of st v =
  if Array.length st.var_node = 0 then v else st.var_node.(v)

(* Every structural mutation of the graph goes through these funnels so
   that, while a constraint delta is being applied ([seed_log] set), the
   affected positions are collected as invalidation seeds: a fresh edge
   [a -> b] grows [pts(a)], a new base element grows [pts(x)] — those
   nodes, and transitively everything that can reach them, must drop
   their surviving reachability memos before a resumed pass may trust
   the rest.  Outside delta application ([seed_log = None]) the funnels
   are free. *)
let add_edge st a b =
  let fresh = Pretrans.add_edge st.g a b in
  (match st.seed_log with
  | Some l when fresh -> l := a :: !l
  | _ -> ());
  fresh

let add_base st x z =
  Pretrans.add_base st.g x z;
  match st.seed_log with Some l -> l := x :: !l | None -> ()

let deref_node st y =
  match Hashtbl.find_opt st.deref_nodes y with
  | Some d -> d
  | None ->
      let d = Pretrans.fresh_node st.g in
      Hashtbl.replace st.deref_nodes y d;
      d

(* The split node of [*dst = *src] (Section 5 rewrites it into
   [*dst = t; t = *src]).  Memoized per (dst, src) so that re-loading an
   evicted block reuses the node — a re-load must reconstruct exactly
   the constraints of the first load, not grow the graph. *)
let deref2_tnode st dst src =
  match Hashtbl.find_opt st.deref2_tnodes (dst, src) with
  | Some n -> n
  | None ->
      let n = Pretrans.fresh_node st.g in
      Hashtbl.replace st.deref2_tnodes (dst, src) n;
      n

let rec activate st v =
  if Bytes.get st.active v = '\000' then begin
    Bytes.set st.active v '\001';
    load_block st v
  end

and load_block st v =
  let prims = Loader.block st.loader v in
  let kept = ref [] in
  List.iter
    (fun (p : Objfile.prim_rec) ->
      if Loader.relevant_to_points_to p then
        match p.Objfile.pkind with
        | Objfile.Paddr -> () (* lives in the static section *)
        | Objfile.Pcopy ->
            (* x = v: edge x -> v, then x's consumers matter too.  The
               record itself is discarded (the edge carries it). *)
            ignore (add_edge st (node_of st p.Objfile.pdst) (node_of st v));
            activate st p.Objfile.pdst
        | Objfile.Pload ->
            (* x = *v *)
            let d = deref_node st v in
            ignore (add_edge st (node_of st p.Objfile.pdst) d);
            st.complexes <-
              {
                ckind = Kload;
                cptr = node_of st v;
                cother = d;
                corigin = v;
                cseen = Lvalset.empty;
              }
              :: st.complexes;
            st.n_complex <- st.n_complex + 1;
            kept := p :: !kept;
            Loader.retain st.loader ~src:v 1;
            activate st p.Objfile.pdst
        | Objfile.Pstore ->
            (* *x = v *)
            st.complexes <-
              {
                ckind = Kstore;
                cptr = node_of st p.Objfile.pdst;
                cother = node_of st v;
                corigin = v;
                cseen = Lvalset.empty;
              }
              :: st.complexes;
            st.n_complex <- st.n_complex + 1;
            kept := p :: !kept;
            Loader.retain st.loader ~src:v 1
        | Objfile.Pderef2 ->
            (* *x = *v, split through node t: [*x = t; t = *v] *)
            kept := p :: !kept;
            let tnode = deref2_tnode st p.Objfile.pdst v in
            let d = deref_node st v in
            ignore (add_edge st tnode d);
            st.complexes <-
              {
                ckind = Kload;
                cptr = node_of st v;
                cother = d;
                corigin = v;
                cseen = Lvalset.empty;
              }
              :: {
                   ckind = Kstore;
                   cptr = node_of st p.Objfile.pdst;
                   cother = tnode;
                   corigin = v;
                   cseen = Lvalset.empty;
                 }
              :: st.complexes;
            st.n_complex <- st.n_complex + 2;
            Loader.retain st.loader ~src:v 2)
    prims;
  if !kept <> [] then Hashtbl.replace st.retained_by_block v (List.rev !kept)

(* Inject ONE added dynamic-section record whose block is already
   resident — the delta-solve path.  A block that was loaded before the
   delta will not be re-read (the old records' constraints are already
   in the graph), so its added records are translated here, mirroring
   [load_block]'s per-kind logic for a single record, including the
   retained-record bookkeeping the dependence analysis flattens. *)
let inject st (p : Objfile.prim_rec) =
  if Loader.relevant_to_points_to p then begin
    let v = p.Objfile.psrc in
    let keep () =
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt st.retained_by_block v)
      in
      Hashtbl.replace st.retained_by_block v (prev @ [ p ])
    in
    match p.Objfile.pkind with
    | Objfile.Paddr -> ()
    | Objfile.Pcopy ->
        ignore (add_edge st (node_of st p.Objfile.pdst) (node_of st v));
        activate st p.Objfile.pdst
    | Objfile.Pload ->
        let d = deref_node st v in
        ignore (add_edge st (node_of st p.Objfile.pdst) d);
        st.complexes <-
          {
            ckind = Kload;
            cptr = node_of st v;
            cother = d;
            corigin = v;
            cseen = Lvalset.empty;
          }
          :: st.complexes;
        st.n_complex <- st.n_complex + 1;
        keep ();
        Loader.retain st.loader ~src:v 1;
        activate st p.Objfile.pdst
    | Objfile.Pstore ->
        st.complexes <-
          {
            ckind = Kstore;
            cptr = node_of st p.Objfile.pdst;
            cother = node_of st v;
            corigin = v;
            cseen = Lvalset.empty;
          }
          :: st.complexes;
        st.n_complex <- st.n_complex + 1;
        keep ();
        Loader.retain st.loader ~src:v 1
    | Objfile.Pderef2 ->
        keep ();
        let tnode = deref2_tnode st p.Objfile.pdst v in
        let d = deref_node st v in
        ignore (add_edge st tnode d);
        st.complexes <-
          {
            ckind = Kload;
            cptr = node_of st v;
            cother = d;
            corigin = v;
            cseen = Lvalset.empty;
          }
          :: {
               ckind = Kstore;
               cptr = node_of st p.Objfile.pdst;
               cother = tnode;
               corigin = v;
               cseen = Lvalset.empty;
             }
          :: st.complexes;
        st.n_complex <- st.n_complex + 2;
        Loader.retain st.loader ~src:v 2
  end

(* Apply evictions the loader signalled since the last pass boundary:
   drop the evicted blocks' complexes and retained records from core and
   remember to re-load them.  Deferred to pass boundaries so that the
   pass's iteration snapshot — which already contains those complexes —
   stays the authority on what was processed; a block that was retained
   again after its eviction (evict-then-reload inside one boundary) is
   left alone. *)
let apply_evictions st =
  match st.pending_evict with
  | [] -> ()
  | pending ->
      st.pending_evict <- [];
      let dead = Hashtbl.create 16 in
      List.iter
        (fun v ->
          if not (Loader.is_retained st.loader v) then begin
            Hashtbl.replace dead v ();
            Hashtbl.remove st.retained_by_block v;
            Hashtbl.replace st.evicted v ()
          end)
        pending;
      if Hashtbl.length dead > 0 then begin
        st.complexes <-
          List.filter (fun c -> not (Hashtbl.mem dead c.corigin)) st.complexes;
        st.n_complex <- List.length st.complexes
      end

(* Re-load every evicted block before a pass iterates, so the pass again
   sees the complete constraint set — the re-load re-creates the same
   complexes (with a cleared [cseen], so they are re-checked against the
   full current points-to sets) and counts in the loader's re-load and
   eviction accounting. *)
let reload_evicted st =
  if Hashtbl.length st.evicted > 0 then begin
    let vs = Hashtbl.fold (fun v () acc -> v :: acc) st.evicted [] in
    Hashtbl.reset st.evicted;
    List.iter (fun v -> load_block st v) vs
  end

let init ?(config = Pretrans.default_config) ?(demand = true) ?budget
    ?(deadline = Cla_resilience.Deadline.never) ?cancel view =
  let nvars = Objfile.n_vars view in
  let st =
    {
      g = Pretrans.create ~config ~nodes:nvars ();
      loader = Loader.create ?budget view;
      view;
      demand;
      active = Bytes.make (max 1 nvars) '\000';
      complexes = [];
      n_complex = 0;
      deref_nodes = Hashtbl.create 256;
      deref2_tnodes = Hashtbl.create 64;
      fundef_by_var = Hashtbl.create 256;
      linked = Hashtbl.create 256;
      passes = 0;
      retained_by_block = Hashtbl.create 256;
      linked_copies = [];
      iseen =
        Array.make
          (max 1 (Array.length view.Objfile.rindirects))
          Lvalset.empty;
      var_node = [||];
      seed_log = None;
      pass_log = [];
      pending_evict = [];
      evicted = Hashtbl.create 16;
      deadline;
      cancel;
      t_start = Cla_resilience.Deadline.now_s ();
      par_scratch = [||];
    }
  in
  if not (Cla_resilience.Deadline.is_never deadline) || cancel <> None then
    Pretrans.set_interrupt st.g (Some (fun () -> check_tokens st));
  Loader.set_on_evict st.loader (fun v ->
      st.pending_evict <- v :: st.pending_evict);
  Array.iter
    (fun (f : Objfile.fund_rec) ->
      Hashtbl.replace st.fundef_by_var f.Objfile.ffvar f)
    view.Objfile.rfundefs;
  (* the static section is always loaded *)
  Array.iter
    (fun (p : Objfile.prim_rec) ->
      add_base st p.Objfile.pdst p.Objfile.psrc;
      if demand then activate st p.Objfile.pdst)
    (Loader.statics st.loader);
  if not demand then
    for v = 0 to nvars - 1 do
      Bytes.set st.active v '\001';
      load_block st v
    done;
  apply_evictions st;
  st

(* Parallel pre-transitive query fan-out: every [get_lvals] root the
   pass is about to ask for — the complex assignments' pointers and the
   indirect calls' called pointers, all known at pass start because the
   complexes list is an iteration snapshot — is answered up front by
   read-only traversals fanned across the pool, each chunk on its own
   {!Pretrans.scratch}.  The single-threaded [commit_scratches] then
   unifies the discovered cycles and installs the results into the pass
   cache in deterministic scratch order, so the sequential body below
   runs unchanged and every one of its [get_lvals] calls is a cache
   hit.  Pass counts may differ from a sequential run (the fan-out
   answers from the pass-start snapshot, where sequential in-pass
   queries see edges added earlier in the same pass) — the fixpoint,
   and hence the extracted {!Solution}, is identical either way. *)
let fan_out st pool =
  let width = Cla_par.Pool.jobs pool in
  let seen = Hashtbl.create 256 in
  let roots = Dynarr.create ~capacity:256 () in
  let add r =
    let r = Pretrans.deskip st.g r in
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.replace seen r ();
      Dynarr.push roots r
    end
  in
  List.iter (fun c -> add c.cptr) st.complexes;
  Array.iter
    (fun (r : Objfile.indir_rec) -> add (node_of st r.Objfile.iptr))
    st.view.Objfile.rindirects;
  let n = Dynarr.length roots in
  if n > 0 then begin
    let roots = Dynarr.to_array roots in
    let nchunks = min width n in
    if Array.length st.par_scratch < nchunks then
      st.par_scratch <-
        Array.init nchunks (fun i ->
            if i < Array.length st.par_scratch then st.par_scratch.(i)
            else Pretrans.make_scratch st.g);
    let scratches = Array.sub st.par_scratch 0 nchunks in
    ignore
      (Cla_par.Pool.map_array ?cancel:st.cancel pool
         (fun ci ->
           Pretrans.query_batch st.g scratches.(ci) roots
             ~lo:(ci * n / nchunks)
             ~hi:((ci + 1) * n / nchunks))
         (Array.init nchunks Fun.id));
    Pretrans.commit_scratches st.g roots scratches
  end

(* One pass of Figure 5's iteration algorithm; returns [true] if the graph
   changed.

   [keep_memos] is the resumed first pass of a delta solve: the
   reachability memos surviving from the previous fixpoint are kept
   instead of flushed ([Pretrans.new_pass]), relying on
   [Pretrans.invalidate_reaching] having dropped every memo the delta
   could touch.  The parallel fan-out is skipped too — it requires an
   empty pass cache.  If this pass changes the graph, the following
   passes run with the normal flush-everything semantics, so the
   fixpoint test ("a pass with no change") stays exact. *)
let pass ?pool ?(keep_memos = false) st =
  check_tokens st;
  let t0 = Cla_resilience.Deadline.now_s () in
  st.passes <- st.passes + 1;
  Cla_obs.Obs.with_span "analyze.pass" ~label:(string_of_int st.passes)
  @@ fun () ->
  (* bounded-memory mode: blocks evicted since the last boundary come
     back first, so every pass checks the complete constraint set — the
     no-change pass that ends the iteration has therefore verified every
     constraint, resident or re-loaded *)
  reload_evicted st;
  let before = Pretrans.stats st.g in
  if not keep_memos then begin
    Pretrans.new_pass st.g;
    match pool with
    | Some p when Cla_par.Pool.jobs p > 1 -> fan_out st p
    | _ -> ()
  end;
  let changed = ref false in
  let discovered = ref 0 in
  List.iter
    (fun c ->
      let lv = Pretrans.get_lvals st.g c.cptr in
      (* difference propagation: sets grow monotonically, so only the
         lvals not seen by this complex assignment need processing *)
      if Lvalset.cardinal lv > Lvalset.cardinal c.cseen then begin
        (match c.ckind with
        | Kstore ->
            (* for each new &z in getLvals(n_x): add edge n_z -> n_y *)
            Lvalset.iter_diff ~prev:c.cseen lv (fun z ->
                incr discovered;
                if add_edge st (node_of st z) c.cother then begin
                  changed := true;
                  if st.demand then activate st z
                end)
        | Kload ->
            (* for each new &z in getLvals(n_y): add edge n_*y -> n_z *)
            Lvalset.iter_diff ~prev:c.cseen lv (fun z ->
                incr discovered;
                if add_edge st c.cother (node_of st z) then changed := true));
        c.cseen <- lv
      end)
    st.complexes;
  (* analysis-time linking of indirect calls *)
  Array.iteri
    (fun idx (r : Objfile.indir_rec) ->
      let lv = Pretrans.get_lvals st.g (node_of st r.Objfile.iptr) in
      if Lvalset.cardinal lv > Lvalset.cardinal st.iseen.(idx) then begin
      Lvalset.iter_diff ~prev:st.iseen.(idx) lv
        (fun gv ->
          incr discovered;
          match Hashtbl.find_opt st.fundef_by_var gv with
          | None -> ()
          | Some fd ->
              let key = Intset.pair_key idx gv in
              if not (Hashtbl.mem st.linked key) then begin
                Hashtbl.replace st.linked key ();
                changed := true;
                let n = min r.Objfile.inargs fd.Objfile.farity in
                for i = 0 to n - 1 do
                  let garg = fd.Objfile.fargs.(i) and parg = r.Objfile.iargs.(i) in
                  if garg >= 0 && parg >= 0 then begin
                    (* g@i = f@i *)
                    ignore (add_edge st (node_of st garg) (node_of st parg));
                    st.linked_copies <-
                      (garg, parg, r.Objfile.iiloc) :: st.linked_copies;
                    if st.demand then activate st garg
                  end
                done;
                if r.Objfile.iret >= 0 && fd.Objfile.fret >= 0 then begin
                  (* f@ret = g@ret *)
                  ignore
                    (add_edge st
                       (node_of st r.Objfile.iret)
                       (node_of st fd.Objfile.fret));
                  st.linked_copies <-
                    (r.Objfile.iret, fd.Objfile.fret, r.Objfile.iiloc)
                    :: st.linked_copies;
                  if st.demand then activate st r.Objfile.iret
                end
              end);
      st.iseen.(idx) <- lv
      end)
    st.view.Objfile.rindirects;
  apply_evictions st;
  let after = Pretrans.stats st.g in
  st.pass_log <-
    {
      ps_pass = st.passes;
      ps_edges_added = after.Pretrans.edges - before.Pretrans.edges;
      ps_lvals_discovered = !discovered;
      ps_unified = after.Pretrans.unified - before.Pretrans.unified;
      ps_queries = after.Pretrans.queries - before.Pretrans.queries;
      ps_changed = !changed;
      ps_wall_s = Cla_resilience.Deadline.now_s () -. t0;
    }
    :: st.pass_log;
  !changed

type result = {
  solution : Solution.t;
  passes : int;
  loader_stats : Loader.stats;
  graph_stats : Pretrans.stats;
  pass_log : pass_stats list;
      (** per-pass convergence counters, first pass first *)
  retained : Objfile.prim_rec list;
      (** complex assignments kept in core; input to {!Cla_depend} *)
  linked_copies : (int * int * Cla_ir.Loc.t) list;
      (** analysis-time copies added while linking indirect calls *)
  alloc_bytes : float;
      (** bytes allocated on the OCaml heap over the whole solve
          ([Gc.allocated_bytes] delta) — the allocation-rate metric the
          solver bench divides by query count *)
}

(** Publish a result into the metrics registry: [analyze.passes], the
    [analyze.pretrans.*] graph counters, the [load.blocks.*] residency
    counters, and the per-pass convergence series [analyze.pass.*]
    (Figure 5's loop, one entry per pass). *)
let publish_result ?reg (r : result) =
  Cla_obs.Metrics.set ?reg "analyze.passes" r.passes;
  Cla_obs.Metrics.setf ?reg "analyze.alloc_bytes" r.alloc_bytes;
  Cla_obs.Metrics.set ?reg "analyze.complex.retained"
    (List.length r.retained);
  Cla_obs.Metrics.set ?reg "analyze.indirect.linked_copies"
    (List.length r.linked_copies);
  Pretrans.publish_stats ?reg r.graph_stats;
  Loader.publish_stats ?reg r.loader_stats;
  let series f name =
    Cla_obs.Metrics.set_series ?reg ("analyze.pass." ^ name)
      (List.map f r.pass_log)
  in
  series (fun p -> p.ps_edges_added) "edges_added";
  series (fun p -> p.ps_lvals_discovered) "lvals_discovered";
  series (fun p -> p.ps_unified) "unified";
  series (fun p -> p.ps_queries) "queries"

(* Extraction sweep shared by [solve] and [resume]: one [get_lvals] per
   variable of the current view (cheap at the end thanks to cycle
   elimination and caching — the paper's observation in Section 5). *)
let extract st a0 : result =
  Cla_obs.Obs.with_span "analyze.extract" @@ fun () ->
  (* the extraction sweep below issues one [get_lvals] per variable;
     the interrupt hook keeps it abortable too *)
  check_tokens st;
  (* blocks evicted during the final pass come back so [retained] is
     the complete complex-assignment set (the dependence analysis
     consumes it); blocks this displaces stay in [retained_by_block],
     so the flattened list below misses nothing *)
  reload_evicted st;
  Pretrans.new_pass st.g;
  let nvars = Objfile.n_vars st.view in
  let pts = Array.init nvars (fun v -> Pretrans.get_lvals st.g (node_of st v)) in
  {
    solution = Solution.create st.view pts;
    passes = st.passes;
    loader_stats = Loader.stats st.loader;
    graph_stats = Pretrans.stats st.g;
    pass_log = List.rev st.pass_log;
    retained =
      Hashtbl.fold
        (fun _ prims acc -> List.rev_append prims acc)
        st.retained_by_block [];
    linked_copies = st.linked_copies;
    alloc_bytes = Gc.allocated_bytes () -. a0;
  }

(** Run the analysis to fixpoint and extract points-to sets for every
    program variable. *)
let solve ?config ?demand ?budget ?deadline ?cancel ?pool view : result =
  Cla_obs.Obs.with_span "analyze" @@ fun () ->
  let a0 = Gc.allocated_bytes () in
  let st =
    Cla_obs.Obs.with_span "analyze.init" (fun () ->
        init ?config ?demand ?budget ?deadline ?cancel view)
  in
  while pass ?pool st do
    ()
  done;
  let r = extract st a0 in
  publish_result r;
  r

(** Like {!solve}, but also return the iteration state so a later
    constraint delta can be solved incrementally with {!resume}. *)
let solve_state ?config ?demand ?budget ?deadline ?cancel ?pool view :
    t * result =
  Cla_obs.Obs.with_span "analyze" @@ fun () ->
  let a0 = Gc.allocated_bytes () in
  let st =
    Cla_obs.Obs.with_span "analyze.init" (fun () ->
        init ?config ?demand ?budget ?deadline ?cancel view)
  in
  while pass ?pool st do
    ()
  done;
  let r = extract st a0 in
  publish_result r;
  (st, r)

(* Resume an already-solved state over a pure-add constraint delta —
   the delta-solve path.  The previous fixpoint's graph, complexes,
   [cseen]/[iseen] difference-propagation sets, and (crucially) the
   reachability memos from the final extraction sweep all survive; only
   the memos that the delta can actually affect are dropped
   ([Pretrans.invalidate_reaching]), and the first resumed pass runs
   without the usual flush.  Anything the resume cannot handle soundly
   returns [None] — the caller re-solves from scratch — behind the
   [pretrans.delta.fallbacks] counter:

   - a removal or full relink (old memos/edges would over-approximate);
   - a state/view mismatch (the delta was not computed against us);
   - a budgeted loader (evicted blocks would re-load from the OLD view's
     block layout mid-delta);
   - an added FUNDEF for a pre-existing variable: an indirect call's
     [iseen] may already contain that function variable (processed back
     when it had no definition), and difference propagation would never
     look at it again. *)
let resume ?pool st ~(view : Objfile.view) ~(delta : Linkp.delta) :
    result option =
  let fallback reason =
    Cla_obs.Metrics.incr "pretrans.delta.fallbacks";
    Cla_obs.Metrics.set_str "pretrans.delta.fallback_reason" reason;
    None
  in
  let old_nvars = delta.Linkp.d_old_nvars in
  if delta.Linkp.d_full_relink || not (Linkp.delta_is_pure_add delta) then
    fallback "removal"
  else if old_nvars <> Objfile.n_vars st.view then fallback "state_mismatch"
  else if Loader.budget st.loader <> None then fallback "budgeted"
  else if
    List.exists
      (fun (f : Objfile.fund_rec) -> f.Objfile.ffvar < old_nvars)
      delta.Linkp.d_added_fundefs
  then fallback "fundef_existing_var"
  else begin
    Cla_obs.Obs.with_span "analyze.resume" @@ fun () ->
    let a0 = Gc.allocated_bytes () in
    let new_nvars = delta.Linkp.d_new_nvars in
    (* reverse adjacency must cover the pre-delta edges; from here on
       [add_edge] keeps it current *)
    Pretrans.enable_pred_tracking st.g;
    (* swap in the new view and a loader over it (unbudgeted — checked
       above); the old loader is dropped wholesale *)
    st.view <- view;
    st.loader <- Loader.create view;
    Loader.set_on_evict st.loader (fun v ->
        st.pending_evict <- v :: st.pending_evict);
    let was_active = st.active in
    let active = Bytes.make (max 1 new_nvars) '\000' in
    Bytes.blit was_active 0 active 0
      (min (Bytes.length was_active) (Bytes.length active));
    st.active <- active;
    (* new vars get fresh graph nodes — their raw ids are already taken
       by the deref/split nodes allocated past the old [nvars] *)
    if Array.length st.var_node = 0 then
      st.var_node <- Array.init old_nvars Fun.id;
    if new_nvars > Array.length st.var_node then begin
      let vn = Array.make new_nvars 0 in
      let n0 = Array.length st.var_node in
      Array.blit st.var_node 0 vn 0 n0;
      for v = n0 to new_nvars - 1 do
        vn.(v) <- Pretrans.fresh_node st.g
      done;
      st.var_node <- vn
    end;
    (* the delta linker appends indirect records, keeping the old list
       as an exact prefix — so [iseen] extends positionally *)
    let n_ind = Array.length view.Objfile.rindirects in
    if n_ind > Array.length st.iseen then begin
      let ni = Array.make (max 1 n_ind) Lvalset.empty in
      Array.blit st.iseen 0 ni 0 (Array.length st.iseen);
      st.iseen <- ni
    end;
    List.iter
      (fun (f : Objfile.fund_rec) ->
        Hashtbl.replace st.fundef_by_var f.Objfile.ffvar f)
      delta.Linkp.d_added_fundefs;
    (* apply the delta with seed logging on: every fresh edge origin and
       base addition is an invalidation seed *)
    let seeds = ref [] in
    st.seed_log <- Some seeds;
    List.iter
      (fun (p : Objfile.prim_rec) ->
        add_base st (node_of st p.Objfile.pdst) p.Objfile.psrc;
        if st.demand then activate st p.Objfile.pdst)
      delta.Linkp.d_added_statics;
    if not st.demand then
      for v = old_nvars to new_nvars - 1 do
        Bytes.set st.active v '\001';
        load_block st v
      done;
    (* added dynamic records: a block resident BEFORE the delta will not
       be re-read, so its additions are injected one by one; a block
       activated during this application (or later) is read whole from
       the new view, additions included — the frozen [was_active]
       snapshot is what keeps the two cases disjoint *)
    let was_active v =
      v < old_nvars
      && v < Bytes.length was_active
      && Bytes.get was_active v = '\001'
    in
    List.iter
      (fun (p : Objfile.prim_rec) ->
        if was_active p.Objfile.psrc then inject st p)
      delta.Linkp.d_added_prims;
    st.seed_log <- None;
    let n_inv = Pretrans.invalidate_reaching st.g !seeds in
    Cla_obs.Metrics.incr "pretrans.delta.resumes";
    Cla_obs.Metrics.set "pretrans.delta.seeds" (List.length !seeds);
    Cla_obs.Metrics.set "pretrans.delta.invalidated" n_inv;
    (* first pass keeps the surviving memos — the incremental win; if it
       changes anything, the following passes run with the usual
       flush-everything semantics *)
    if pass ?pool ~keep_memos:true st then
      while pass ?pool st do
        ()
      done;
    let r = extract st a0 in
    publish_result r;
    Some r
  end
