(** The pre-transitive graph engine — the paper's second contribution
    (Section 5, Figure 5).

    The constraint graph is {e never} transitively closed.  An edge
    [a -> b] means [pts(a) ⊇ pts(b)]; each node carries the
    [baseElements] contributed by [x = &y] assignments.  Points-to sets
    are computed on demand by graph reachability ({!get_lvals}), made fast
    by per-pass caching of reachability results and by unifying every
    cycle met during a traversal (skip pointers with incremental
    de-skipping — detection is free, and exactly the cycles in the parts
    of the graph the analysis looks at are eliminated). *)

type config = {
  cache : bool;  (** reuse reachability results within a pass *)
  cycle_elim : bool;  (** unify the nodes of traversed cycles *)
}

(** Both optimizations on — the paper's configuration.  Turning either off
    reproduces the Section 5 ablation ("slow down by a factor in excess of
    50K ... when both of these components are turned off"). *)
val default_config : config

type t

(** [create ~config ~nodes ()] builds a graph whose node ids
    [0 .. nodes-1] are pre-allocated (conventionally the variable ids of a
    linked database); more nodes can be added with {!fresh_node}.
    [dense_threshold] is forwarded to the solver's lval-set pool (see
    {!Lvalset.create_pool}); node ids are bounds-checked against
    {!Intset.max_node_id} here and in {!fresh_node} so the packed edge
    keys stay collision-free.
    @raise Invalid_argument if [nodes - 1] exceeds [Intset.max_node_id]. *)
val create : ?config:config -> ?dense_threshold:int -> nodes:int -> unit -> t

(** Number of nodes allocated so far. *)
val n_nodes : t -> int

(** Allocate a fresh node (used for the [n_*y] dereference nodes and for
    splitting [*x = *y]). *)
val fresh_node : t -> int

(** Follow skip pointers to a node's unification representative, with path
    compression. *)
val deskip : t -> int -> int

(** [add_edge t a b] adds [a -> b] ([pts(a) ⊇ pts(b)]).  Returns [true] if
    the edge is new — the driver's [nochange] flag (Figure 5).  Edges are
    deduplicated against the canonical (de-skipped) endpoints. *)
val add_edge : t -> int -> int -> bool

(** [add_base t x z] records [x = &z]: location [z] joins
    [baseElements(x)]. *)
val add_base : t -> int -> int -> unit

(** Start a new pass over the complex assignments: flushes the
    reachability cache and the lval-set sharing pool.  Stale reads within
    a pass are sound because the driver iterates until [nochange]. *)
val new_pass : t -> unit

(** [get_lvals t n] — Figure 5's [getLvals]: the set of locations [&z]
    derivable from node [n], computed by reachability over the
    pre-transitive graph.  With [config.cache] the result is memoized for
    the rest of the current pass. *)
val get_lvals : t -> int -> Lvalset.t

(** {1 Delta invalidation (incremental re-solve)}

    Support for resuming a solve after new edges are added to the graph
    (the delta-solve path).  The per-pass reachability memo normally
    survives only until {!new_pass}; to resume {e without} flushing it,
    every memo entry whose node can reach a changed node must be
    invalidated first — a stale memo there would hide the new lvals and
    let the driver converge prematurely.  Reverse reachability needs
    predecessor lists, which the graph does not keep by default. *)

(** Start (or keep) maintaining predecessor lists.  Idempotent; on first
    call the lists are rebuilt from the live forward edges, after which
    {!add_edge} and cycle unification keep them current.  Unification
    over-approximates (stale ids are kept), which is sound for
    invalidation. *)
val enable_pred_tracking : t -> unit

val pred_tracking : t -> bool

(** [invalidate_reaching t seeds] clears the pass memo of every node
    that can reach any seed (including the seeds), by reverse BFS over
    the predecessor lists.  Returns the number of memo entries dropped.
    Requires {!enable_pred_tracking} to have been called before the
    edges now being invalidated were added (or rebuilt over them). *)
val invalidate_reaching : t -> int list -> int

(** {1 Read-only batch queries (parallel fan-out)}

    A {!scratch} is one worker domain's private traversal state: its own
    Tarjan arrays, pass-local memo, lval-set pool, and a log of the
    cycles it met.  {!query_batch} answers a slice of a shared root
    array with the same reachability walk as {!get_lvals} but treats the
    graph as read-only — no unification, no shared memo or pool writes —
    so any number of scratches may traverse one graph concurrently, as
    long as no mutating call ({!add_edge}, {!unify}-ing queries, ...)
    interleaves.  {!commit_scratches} then replays the recorded cycle
    unifications and installs the roots' results into the shared pass
    cache on one domain, in scratch order — deterministic regardless of
    how the batches were scheduled.  Keep scratches across passes:
    they regrow with the graph and their per-pass state is reset by
    {!query_batch}. *)

type scratch

val make_scratch : t -> scratch

(** [query_batch t s roots ~lo ~hi] answers roots [lo..hi-1] of [roots]
    into [s].  Must be bracketed by {!new_pass} (before) and
    {!commit_scratches} (after); the shared pass cache must be empty for
    the current pass.  The interrupt hook is polled inside the walk, as
    in {!get_lvals}. *)
val query_batch : t -> scratch -> int array -> lo:int -> hi:int -> unit

(** [commit_scratches t roots scratches] — single-threaded merge: unify
    the cycles every batch recorded (in scratch-then-discovery order),
    install each root's result into the shared pass cache (re-interned
    into the shared pool), and fold the batches' query statistics into
    the graph's.  After the commit, {!get_lvals} on any queried root is
    a cache hit for the rest of the pass. *)
val commit_scratches : t -> int array -> scratch array -> unit

(** Install (or clear) the cooperative-interruption hook: a callback
    polled periodically {e inside} the {!get_lvals} reachability walk, so
    a deadline or cancel token can abort a long traversal and not just a
    pass boundary.  The callback aborts by raising; aborting mid-walk is
    safe — cycle unification is deferred to the end of the walk, memo
    entries are only written for completed SCCs, and the per-query
    versioning of the traversal state invalidates the rest on the next
    query. *)
val set_interrupt : t -> (unit -> unit) option -> unit

(** Graph and query statistics.  The structural counters ([nodes],
    [edges], [unified]) mirror the live graph and grow monotonically over
    its lifetime; the query-side counters ([queries], [visits],
    [cache_hits]) grow monotonically between calls to {!reset_stats}.

    Invariants:
    - [cache_hits <= queries] — a hit is one kind of query outcome;
    - [unified <= nodes] — a node is unified away at most once;
    - [visits >= queries - cache_hits] — every non-cached query visits at
      least its root node. *)
type stats = {
  nodes : int;
  edges : int;
  unified : int;  (** nodes eliminated by cycle unification *)
  queries : int;  (** [get_lvals] calls *)
  visits : int;  (** nodes visited during reachability *)
  cache_hits : int;  (** queries answered from the per-pass memo *)
  pool_hits : int;  (** lval-set pool lookups answered by sharing *)
  pool_misses : int;  (** distinct lval sets interned *)
  pool_small : int;  (** interned sets in the sorted-array representation *)
  pool_dense : int;  (** interned sets in the bitmap representation *)
}

val stats : t -> stats

(** Zero the query-side counters ([queries], [visits], [cache_hits]); the
    structural counters describe the graph itself and are not
    resettable. *)
val reset_stats : t -> unit

(** Publish a stats record into the metrics registry (default
    {!Cla_obs.Metrics.default}) under [analyze.pretrans.*] (graph and
    query counters) and [analyze.pool.*] (lval-set sharing-pool
    counters). *)
val publish_stats : ?reg:Cla_obs.Metrics.t -> stats -> unit
