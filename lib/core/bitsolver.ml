(** Baseline: subset-based points-to analysis over bit vectors — the
    paper mentions "an implementation based on bit-vectors" among the
    analyses built on the CLA substrate (Section 4).

    The location space is compressed to the address-taken objects (only
    those can ever appear in a points-to set), and the solver iterates all
    constraints to a fixpoint.  Simple, allocation-light, and a useful
    differential oracle for the pre-transitive solver. *)

module Bits = struct
  type t = Bytes.t

  let create nbits = Bytes.make ((nbits + 7) / 8) '\000'

  let set (b : t) i =
    let byte = i lsr 3 in
    Bytes.unsafe_set b byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl (i land 7))))

  (* dst := dst ∪ src; returns true if dst changed *)
  let union_into ~dst ~src =
    let changed = ref false in
    for i = 0 to Bytes.length dst - 1 do
      let d = Char.code (Bytes.unsafe_get dst i) in
      let s = Char.code (Bytes.unsafe_get src i) in
      let u = d lor s in
      if u <> d then begin
        Bytes.unsafe_set dst i (Char.unsafe_chr u);
        changed := true
      end
    done;
    !changed

  let iter f (b : t) =
    for i = 0 to Bytes.length b - 1 do
      let byte = Char.code (Bytes.unsafe_get b i) in
      if byte <> 0 then
        for bit = 0 to 7 do
          if byte land (1 lsl bit) <> 0 then f ((i lsl 3) lor bit)
        done
    done
end

type constraint_ =
  | Ccopy of int * int  (* dst ⊇ src *)
  | Cload of int * int  (* dst ⊇ *src *)
  | Cstore of int * int  (* *dst ⊇ src *)

let solve ?(deadline = Cla_resilience.Deadline.never) ?cancel
    (view : Objfile.view) : Solution.t =
  let t_start = Cla_resilience.Deadline.now_s () in
  let rounds = ref 0 in
  let applied = ref 0 in
  let progress () =
    Cla_resilience.Progress.make ~at_pass:!rounds
      ~elapsed_s:(Cla_resilience.Deadline.now_s () -. t_start)
      (Fmt.str "bitvector: round %d, %d constraints applied" !rounds !applied)
  in
  let check () =
    Cla_resilience.Deadline.check ~progress deadline;
    Option.iter (Cla_resilience.Cancel.check ~progress) cancel
  in
  (* polled at every fixpoint round and every few hundred constraint
     applications; aborting between applications is safe (the bit
     matrices are discarded with the state) *)
  let tick () =
    incr applied;
    if !applied land 255 = 0 then check ()
  in
  check ();
  let nvars = Objfile.n_vars view in
  let loader = Loader.create view in
  let statics = Loader.statics loader in
  (* compress the location space to address-taken objects *)
  let loc_index = Hashtbl.create 256 in
  let locs = Dynarr.create ~capacity:64 () in
  let intern_loc z =
    match Hashtbl.find_opt loc_index z with
    | Some i -> i
    | None ->
        let i = Dynarr.length locs in
        Hashtbl.replace loc_index z i;
        Dynarr.push locs z;
        i
  in
  Array.iter (fun (p : Objfile.prim_rec) -> ignore (intern_loc p.Objfile.psrc)) statics;
  let nlocs = Dynarr.length locs in
  let nnodes = ref nvars in
  let constraints = ref [] in
  let bases = ref [] in
  Array.iter
    (fun (p : Objfile.prim_rec) ->
      bases := (p.Objfile.pdst, intern_loc p.Objfile.psrc) :: !bases)
    statics;
  for v = 0 to nvars - 1 do
    List.iter
      (fun (p : Objfile.prim_rec) ->
        if Loader.relevant_to_points_to p then
          match p.Objfile.pkind with
          | Objfile.Paddr -> ()
          | Objfile.Pcopy -> constraints := Ccopy (p.Objfile.pdst, v) :: !constraints
          | Objfile.Pload -> constraints := Cload (p.Objfile.pdst, v) :: !constraints
          | Objfile.Pstore -> constraints := Cstore (p.Objfile.pdst, v) :: !constraints
          | Objfile.Pderef2 ->
              let t = !nnodes in
              incr nnodes;
              constraints := Cload (t, v) :: Cstore (p.Objfile.pdst, t) :: !constraints)
      (Loader.block loader v)
  done;
  let nnodes = !nnodes in
  let pts = Array.init nnodes (fun _ -> Bits.create nlocs) in
  List.iter (fun (x, li) -> Bits.set pts.(x) li) !bases;
  let fundef_by_var = Hashtbl.create 64 in
  Array.iter
    (fun (f : Objfile.fund_rec) -> Hashtbl.replace fundef_by_var f.Objfile.ffvar f)
    view.Objfile.rfundefs;
  let constraints = Array.of_list !constraints in
  let loc_of = Dynarr.to_array locs in
  let changed = ref true in
  while !changed do
    incr rounds;
    check ();
    changed := false;
    Array.iter
      (fun c ->
        tick ();
        match c with
        | Ccopy (dst, src) ->
            if Bits.union_into ~dst:pts.(dst) ~src:pts.(src) then changed := true
        | Cload (dst, src) ->
            Bits.iter
              (fun li ->
                let z = loc_of.(li) in
                if Bits.union_into ~dst:pts.(dst) ~src:pts.(z) then changed := true)
              pts.(src)
        | Cstore (dst, src) ->
            Bits.iter
              (fun li ->
                let z = loc_of.(li) in
                if Bits.union_into ~dst:pts.(z) ~src:pts.(src) then changed := true)
              pts.(dst))
      constraints;
    (* indirect calls *)
    Array.iter
      (fun (r : Objfile.indir_rec) ->
        Bits.iter
          (fun li ->
            let gv = loc_of.(li) in
            match Hashtbl.find_opt fundef_by_var gv with
            | None -> ()
            | Some fd ->
                let n = min r.Objfile.inargs fd.Objfile.farity in
                for i = 0 to n - 1 do
                  let garg = fd.Objfile.fargs.(i) and parg = r.Objfile.iargs.(i) in
                  if garg >= 0 && parg >= 0 then
                    if Bits.union_into ~dst:pts.(garg) ~src:pts.(parg) then
                      changed := true
                done;
                if r.Objfile.iret >= 0 && fd.Objfile.fret >= 0 then
                  if Bits.union_into ~dst:pts.(r.Objfile.iret) ~src:pts.(fd.Objfile.fret)
                  then changed := true)
          pts.(r.Objfile.iptr))
      view.Objfile.rindirects
  done;
  let pool = Lvalset.create_pool () in
  (* one reusable buffer: [of_dyn] never retains it *)
  let acc = Dynarr.create ~capacity:64 () in
  let out =
    Array.init nvars (fun v ->
        Dynarr.clear acc;
        Bits.iter (fun li -> Dynarr.push acc loc_of.(li)) pts.(v);
        Lvalset.of_dyn pool acc.Dynarr.data (Dynarr.length acc))
  in
  Solution.create view out
