(** Baseline: subset-based points-to analysis over bit vectors — the
    paper mentions "an implementation based on bit-vectors" among the
    analyses built on the CLA substrate (Section 4).

    The location space is compressed to the address-taken objects (only
    those can ever appear in a points-to set), and the solver iterates all
    constraints to a fixpoint.  Simple, allocation-light, and a useful
    differential oracle for the pre-transitive solver. *)

module Bits = struct
  type t = Bytes.t

  let create nbits = Bytes.make ((nbits + 7) / 8) '\000'
  let clear (b : t) = Bytes.fill b 0 (Bytes.length b) '\000'
  let is_empty (b : t) =
    let rec go i = i >= Bytes.length b || (Bytes.unsafe_get b i = '\000' && go (i + 1)) in
    go 0

  let set (b : t) i =
    let byte = i lsr 3 in
    Bytes.unsafe_set b byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl (i land 7))))

  (* dst := dst ∪ src; returns true if dst changed *)
  let union_into ~dst ~src =
    let changed = ref false in
    for i = 0 to Bytes.length dst - 1 do
      let d = Char.code (Bytes.unsafe_get dst i) in
      let s = Char.code (Bytes.unsafe_get src i) in
      let u = d lor s in
      if u <> d then begin
        Bytes.unsafe_set dst i (Char.unsafe_chr u);
        changed := true
      end
    done;
    !changed

  let iter f (b : t) =
    for i = 0 to Bytes.length b - 1 do
      let byte = Char.code (Bytes.unsafe_get b i) in
      if byte <> 0 then
        for bit = 0 to 7 do
          if byte land (1 lsl bit) <> 0 then f ((i lsl 3) lor bit)
        done
    done
end

type constraint_ =
  | Ccopy of int * int  (* dst ⊇ src *)
  | Cload of int * int  (* dst ⊇ *src *)
  | Cstore of int * int  (* *dst ⊇ src *)

let solve ?(deadline = Cla_resilience.Deadline.never) ?cancel ?pool
    (view : Objfile.view) : Solution.t =
  let t_start = Cla_resilience.Deadline.now_s () in
  let rounds = ref 0 in
  let applied = ref 0 in
  let progress () =
    Cla_resilience.Progress.make ~at_pass:!rounds
      ~elapsed_s:(Cla_resilience.Deadline.now_s () -. t_start)
      (Fmt.str "bitvector: round %d, %d constraints applied" !rounds !applied)
  in
  let check () =
    Cla_resilience.Deadline.check ~progress deadline;
    Option.iter (Cla_resilience.Cancel.check ~progress) cancel
  in
  (* polled at every fixpoint round and every few hundred constraint
     applications; aborting between applications is safe (the bit
     matrices are discarded with the state) *)
  let tick () =
    incr applied;
    if !applied land 255 = 0 then check ()
  in
  check ();
  let nvars = Objfile.n_vars view in
  let loader = Loader.create view in
  let statics = Loader.statics loader in
  (* compress the location space to address-taken objects *)
  let loc_index = Hashtbl.create 256 in
  let locs = Dynarr.create ~capacity:64 () in
  let intern_loc z =
    match Hashtbl.find_opt loc_index z with
    | Some i -> i
    | None ->
        let i = Dynarr.length locs in
        Hashtbl.replace loc_index z i;
        Dynarr.push locs z;
        i
  in
  Array.iter (fun (p : Objfile.prim_rec) -> ignore (intern_loc p.Objfile.psrc)) statics;
  let nlocs = Dynarr.length locs in
  let nnodes = ref nvars in
  let constraints = ref [] in
  let bases = ref [] in
  Array.iter
    (fun (p : Objfile.prim_rec) ->
      bases := (p.Objfile.pdst, intern_loc p.Objfile.psrc) :: !bases)
    statics;
  for v = 0 to nvars - 1 do
    List.iter
      (fun (p : Objfile.prim_rec) ->
        if Loader.relevant_to_points_to p then
          match p.Objfile.pkind with
          | Objfile.Paddr -> ()
          | Objfile.Pcopy -> constraints := Ccopy (p.Objfile.pdst, v) :: !constraints
          | Objfile.Pload -> constraints := Cload (p.Objfile.pdst, v) :: !constraints
          | Objfile.Pstore -> constraints := Cstore (p.Objfile.pdst, v) :: !constraints
          | Objfile.Pderef2 ->
              let t = !nnodes in
              incr nnodes;
              constraints := Cload (t, v) :: Cstore (p.Objfile.pdst, t) :: !constraints)
      (Loader.block loader v)
  done;
  let nnodes = !nnodes in
  let pts = Array.init nnodes (fun _ -> Bits.create nlocs) in
  List.iter (fun (x, li) -> Bits.set pts.(x) li) !bases;
  let fundef_by_var = Hashtbl.create 64 in
  Array.iter
    (fun (f : Objfile.fund_rec) -> Hashtbl.replace fundef_by_var f.Objfile.ffvar f)
    view.Objfile.rfundefs;
  let constraints = Array.of_list !constraints in
  let loc_of = Dynarr.to_array locs in
  (* The sequential tail of every round: [Cstore] constraints and
     indirect calls write {e arbitrary} rows, so they stay on one domain
     regardless of the pool width.  Marks changed rows in [dirty]. *)
  let apply_seq dirty c =
    tick ();
    match c with
    | Ccopy (dst, src) ->
        if Bits.union_into ~dst:pts.(dst) ~src:pts.(src) then Bits.set dirty dst
    | Cload (dst, src) ->
        Bits.iter
          (fun li ->
            let z = loc_of.(li) in
            if Bits.union_into ~dst:pts.(dst) ~src:pts.(z) then Bits.set dirty dst)
          pts.(src)
    | Cstore (dst, src) ->
        Bits.iter
          (fun li ->
            let z = loc_of.(li) in
            if Bits.union_into ~dst:pts.(z) ~src:pts.(src) then Bits.set dirty z)
          pts.(dst)
  in
  let apply_indirects dirty =
    Array.iter
      (fun (r : Objfile.indir_rec) ->
        Bits.iter
          (fun li ->
            let gv = loc_of.(li) in
            match Hashtbl.find_opt fundef_by_var gv with
            | None -> ()
            | Some fd ->
                let n = min r.Objfile.inargs fd.Objfile.farity in
                for i = 0 to n - 1 do
                  let garg = fd.Objfile.fargs.(i) and parg = r.Objfile.iargs.(i) in
                  if garg >= 0 && parg >= 0 then
                    if Bits.union_into ~dst:pts.(garg) ~src:pts.(parg) then
                      Bits.set dirty garg
                done;
                if r.Objfile.iret >= 0 && fd.Objfile.fret >= 0 then
                  if Bits.union_into ~dst:pts.(r.Objfile.iret) ~src:pts.(fd.Objfile.fret)
                  then Bits.set dirty r.Objfile.iret)
          pts.(r.Objfile.iptr))
      view.Objfile.rindirects
  in
  let width =
    match pool with Some p when Cla_par.Pool.jobs p > 1 -> Cla_par.Pool.jobs p | _ -> 1
  in
  let dirty = Bits.create nnodes in
  if width = 1 then begin
    (* sequential baseline: one domain applies everything, in order *)
    let changed = ref true in
    while !changed do
      incr rounds;
      check ();
      Bits.clear dirty;
      Array.iter (apply_seq dirty) constraints;
      apply_indirects dirty;
      changed := not (Bits.is_empty dirty)
    done
  end
  else begin
    let pool = Option.get pool in
    (* Row-parallel rounds.  [Ccopy]/[Cload] write only their [dst] row,
       so sorting them by [dst] and cutting chunks on group boundaries
       makes every row's writes exclusive to one chunk: no lost updates,
       so a round's change detection is exact for the rows it owns.
       Reads of {e other} rows may race with their owner's writes — a
       stale read is benign (rows only gain bits; monotone iteration
       converges to the same unique least fixpoint), and it cannot cause
       early termination: a round that reads anything stale is a round
       in which some owner wrote, and that owner's own dirty bitmap
       forces another round.  [Cstore] and indirect calls write rows
       they do not own, so they run single-threaded after the barrier. *)
    let is_rowpar = function Ccopy _ | Cload _ -> true | Cstore _ -> false in
    let rowpar =
      Array.of_list (List.filter is_rowpar (Array.to_list constraints))
    in
    let stores =
      Array.of_list
        (List.filter (fun c -> not (is_rowpar c)) (Array.to_list constraints))
    in
    let dst_of = function Ccopy (d, _) | Cload (d, _) | Cstore (d, _) -> d in
    Array.sort (fun a b -> compare (dst_of a) (dst_of b)) rowpar;
    let nrp = Array.length rowpar in
    (* chunk bounds: ~equal constraint counts, never splitting a dst group *)
    let bounds = Dynarr.create ~capacity:(width + 1) () in
    let target = (nrp + width - 1) / max 1 width in
    let i = ref 0 in
    while !i < nrp do
      Dynarr.push bounds !i;
      let stop = min nrp (!i + target) in
      let j = ref stop in
      while !j < nrp && dst_of rowpar.(!j) = dst_of rowpar.(!j - 1) do
        incr j
      done;
      i := !j
    done;
    Dynarr.push bounds nrp;
    let nchunks = Dynarr.length bounds - 1 in
    let chunk_dirty = Array.init nchunks (fun _ -> Bits.create nnodes) in
    let chunk_ids = Array.init nchunks Fun.id in
    let run_chunk ci =
      let lo = Dynarr.get bounds ci and hi = Dynarr.get bounds (ci + 1) in
      let d = chunk_dirty.(ci) in
      Bits.clear d;
      let napplied = ref 0 in
      for k = lo to hi - 1 do
        incr napplied;
        (* deadline/cancel poll: raising here propagates through the
           pool's lowest-index-error rule to the caller *)
        if !napplied land 255 = 0 then check ();
        match rowpar.(k) with
        | Ccopy (dst, src) ->
            if Bits.union_into ~dst:pts.(dst) ~src:pts.(src) then Bits.set d dst
        | Cload (dst, src) ->
            Bits.iter
              (fun li ->
                let z = loc_of.(li) in
                if Bits.union_into ~dst:pts.(dst) ~src:pts.(z) then Bits.set d dst)
              pts.(src)
        | Cstore _ -> assert false
      done;
      !napplied
    in
    let changed = ref true in
    while !changed do
      incr rounds;
      check ();
      Bits.clear dirty;
      (* phase A: row-owned constraints across the pool *)
      let counts = Cla_par.Pool.map_array ?cancel pool run_chunk chunk_ids in
      Array.iter (fun n -> applied := !applied + n) counts;
      (* pass barrier: merge the per-domain dirty bitmaps *)
      Array.iter (fun d -> ignore (Bits.union_into ~dst:dirty ~src:d)) chunk_dirty;
      (* phase B: cross-row writers, single-threaded *)
      Array.iter (apply_seq dirty) stores;
      apply_indirects dirty;
      changed := not (Bits.is_empty dirty)
    done;
    Cla_obs.Metrics.set "bitsolver.par.chunks" nchunks;
    Cla_obs.Metrics.set "bitsolver.par.rounds" !rounds
  end;
  let pool = Lvalset.create_pool () in
  (* one reusable buffer: [of_dyn] never retains it *)
  let acc = Dynarr.create ~capacity:64 () in
  let out =
    Array.init nvars (fun v ->
        Dynarr.clear acc;
        Bits.iter (fun li -> Dynarr.push acc loc_of.(li)) pts.(v);
        Lvalset.of_dyn pool acc.Dynarr.data (Dynarr.length acc))
  in
  Solution.create view out
