(** Persistent solution snapshots ([.snap] sidecar files).

    A non-degraded {!Pipeline.ladder_outcome} frozen into a compact
    immutable arena: each {e distinct} points-to set is stored once
    (sorted, delta-encoded — the hash-consed {!Lvalset} pool means a
    whole solution is usually a few hundred distinct sets), plus one
    set index per variable.  The format follows the CLA2 object file:
    magic ["CSN1"], a version word, a section table with per-section
    CRC32s and a table checksum.  The snapshot is bound to the exact
    database bytes it was solved from (length + CRC32), so it can never
    answer for a different or edited database.

    Gating mirrors the object-file loader: every malformed, truncated,
    bit-flipped, version-bumped or wrongly-bound snapshot raises
    {!Binio.Corrupt} ({!load_result}: a [Load]-phase {!Diag.t},
    [load.corrupt]); callers fall back to a live solve.  A thawed
    outcome is byte-for-byte the one frozen: same sets, same provenance,
    [lo_degraded = false], no timeouts. *)

val magic : string
(** ["CSN1"]. *)

val current_version : int

(** Freeze an outcome into snapshot bytes.  Raises [Invalid_argument] on
    a degraded outcome — persisting one would serve its reduced
    precision forever — or if the solution names objects outside
    [view]. *)
val freeze : view:Objfile.view -> Pipeline.ladder_outcome -> string

(** Rebuild the outcome from snapshot bytes, validating magic, version,
    checksums and the database binding against [view].  Distinct sets
    are re-interned through a fresh pool, so identical sets come back
    physically shared.  Raises {!Binio.Corrupt} on any violation. *)
val thaw : view:Objfile.view -> string -> Pipeline.ladder_outcome

val save : string -> view:Objfile.view -> Pipeline.ladder_outcome -> unit

(** Read and thaw a snapshot file.  Raises {!Binio.Corrupt} /
    [Sys_error] like {!thaw}. *)
val load : string -> view:Objfile.view -> Pipeline.ladder_outcome

(** Like {!load}, surfacing corruption and I/O failures as a [Load]-phase
    {!Diag.t} naming the file — the same contract as
    {!Objfile.load_result}. *)
val load_result :
  string -> view:Objfile.view -> (Pipeline.ladder_outcome, Diag.t) result
