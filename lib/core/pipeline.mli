(** High-level façade: the full compile-link-analyze pipeline in one
    call.  This is the entry point the examples, tools and tests use. *)

(** Which points-to solver to run over the linked database.  All four are
    implemented on the same object-file substrate — the architecture's
    selling point (Section 4). *)
type algorithm =
  | Pretransitive  (** the paper's algorithm (Section 5) — default *)
  | Worklist  (** transitively-closed Andersen baseline *)
  | Bitvector  (** bit-vector subset baseline *)
  | Steensgaard  (** unification-based baseline *)

val algorithm_name : algorithm -> string

(** The canonical names, in ladder order — for CLI error messages. *)
val algorithm_names : string list

(** Case-insensitive; also accepts the short forms [pretrans], [bitvec],
    [steens]. *)
val algorithm_of_string : string -> algorithm option

(** Compile each [(name, source)] pair and link the results, all in
    memory.  [jobs > 1] compiles translation units across a domain pool
    (compilation is file-local, so units are independent); [jobs = 0]
    means auto ({!Cla_par.Pool.resolve_jobs}).  Object and linked bytes
    are byte-identical to a sequential run regardless of [jobs].
    [undefined] (default [Ignore]) selects the linker's
    incomplete-program policy — pass {!Linkp.Open_world} to get a
    soundly havocked open-world database. *)
val compile_link :
  ?options:Compilep.options ->
  ?jobs:int ->
  ?undefined:Linkp.undef_policy ->
  (string * string) list ->
  Objfile.view

(** Compile and link C files from disk; [jobs]/[undefined] as in
    {!compile_link}. *)
val compile_link_files :
  ?options:Compilep.options ->
  ?jobs:int ->
  ?undefined:Linkp.undef_policy ->
  string list ->
  Objfile.view

(** Run the selected points-to analysis over a linked view.  [budget]
    bounds the retained assignments kept in core (pre-transitive solver
    only; see {!Loader.create}).  [deadline]/[cancel] make the solve
    abortable: on expiry or cancellation it unwinds with a typed
    {!Cla_resilience.Deadline.Timed_out} /
    {!Cla_resilience.Cancel.Cancelled} — never a partial solution.

    [Steensgaard] on an open-world database raises {!Diag.Fail}
    (unification would collapse the blob with every escaping object);
    the other algorithms treat havoc constraints like ordinary ones.

    [jobs >= 2] ([0] = auto) solves on the process-wide persistent
    domain pool ({!Cla_par.Pool.shared}): the pre-transitive solver fans
    each pass's [get_lvals] roots across domains, the bit-vector solver
    partitions variable rows per pass.  The returned solution is
    byte-identical to a sequential run at any width; [Worklist] and
    [Steensgaard] always run sequentially. *)
val points_to :
  ?algorithm:algorithm ->
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  ?jobs:int ->
  Objfile.view ->
  Solution.t

(** Like {!points_to} with the pre-transitive solver, returning the full
    result: pass count, loader statistics, graph statistics, and the
    retained complex assignments the dependence analysis reuses. *)
val points_to_result :
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  ?jobs:int ->
  Objfile.view ->
  Andersen.result

(** The default degradation ladder:
    [Pretransitive -> Bitvector -> Steensgaard] — the paper's solver,
    then the cheaper bit-vector formulation of the same subset problem,
    then the near-linear unification analysis that always finishes. *)
val default_ladder : algorithm list

(** The ladder for open-world databases ([Pretransitive -> Bitvector]):
    unification rungs are unsupported there.  {!points_to_ladder}
    filters [Steensgaard] out of any ladder automatically when the view
    carries an open-world section. *)
val open_world_ladder : algorithm list

(** The soundness statement attached to answers from this rung
    ([lo_note] / {!Solution.provenance}'s [p_note]) — exposed so callers
    that persist a plain solve (e.g. [cla analyze --save-snapshot]) can
    label it identically. *)
val soundness_note : algorithm -> string

type ladder_outcome = {
  lo_solution : Solution.t;
  lo_algorithm : algorithm;  (** the rung that answered *)
  lo_degraded : bool;
  lo_note : string;  (** soundness statement for that rung *)
  lo_timeouts : (algorithm * Cla_resilience.Progress.t) list;
      (** rungs that timed out, with how far each got *)
}

(** Wrap an exact (non-degraded, no-timeout) solution produced by [alg]
    outside the ladder as a ladder outcome: stamps provenance and the
    ladder metrics the same way a ladder answer would.  The watch-mode
    server uses it to install incremental solves as served outcomes. *)
val outcome_of_solution : algorithm -> Solution.t -> ladder_outcome

(** Run the degradation ladder under one deadline token: each rung gets
    the remaining slice of the budget, and the final rung runs
    deadline-exempt (unless [strict]) so the ladder always returns a
    {e sound} solution, labeled with its rung via
    {!Solution.set_provenance}.  Every answer is safe to act on: the
    subset-based rungs are exact and the unification rung
    over-approximates — a degraded answer may report {e more} aliases,
    never fewer.  A [cancel] token aborts the whole ladder with
    {!Cla_resilience.Cancel.Cancelled}.  Publishes [analyze.degraded],
    [analyze.deadline_ms], [analyze.rung], [analyze.rung_timeouts] and
    [analyze.hedge]/[analyze.hedge_won].

    [~hedge:true] (with a finite deadline and at least two rungs) runs
    the final — cheapest, always-sound — rung concurrently on its own
    domain from the start, instead of only after every precise rung has
    timed out.  The first sound answer wins: a precise rung finishing
    within the deadline cancels the hedge and the outcome is exactly the
    sequential one; if every precise rung times out, the hedge's answer
    (typically already computed) is returned immediately, eliminating
    the "time out, then start the fallback from zero" latency cliff.
    Hedging never changes {e which} answer a given rung computes, only
    when the fallback starts.

    [jobs] parallelizes the precise rungs' solves on the shared domain
    pool, as in {!points_to}; the hedge rung itself always solves
    sequentially (it is the cheap near-linear one, and a pool task must
    not submit batches to its own pool). *)
val points_to_ladder :
  ?ladder:algorithm list ->
  ?strict:bool ->
  ?hedge:bool ->
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  ?jobs:int ->
  Objfile.view ->
  ladder_outcome
