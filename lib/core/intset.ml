(** Open-addressing hash set of non-negative ints.

    The pre-transitive solver performs millions of edge-dedup probes (one
    per candidate edge, Section 5 keeps the edges "in both a hash table and
    a per-node list"); the stdlib [Hashtbl] costs two chained probes plus
    allocation per insertion, which dominates solver time on dense
    workloads.  Linear probing with power-of-two capacity makes it one
    cache miss per operation. *)

type t = {
  mutable keys : int array;  (* 0 = empty; stored value is key+1 *)
  mutable mask : int;
  mutable count : int;
}

let create capacity =
  let cap = ref 16 in
  while !cap < capacity * 2 do
    cap := !cap * 2
  done;
  { keys = Array.make !cap 0; mask = !cap - 1; count = 0 }

let length t = t.count

(* Fibonacci hashing: spreads consecutive keys. *)
let slot t key = (key * 0x9E3779B97F4A7C1) land max_int land t.mask

let rec grow t =
  let old = t.keys in
  t.keys <- Array.make (2 * Array.length old) 0;
  t.mask <- (2 * Array.length old) - 1;
  t.count <- 0;
  Array.iter (fun k -> if k <> 0 then ignore (add_raw t k)) old

(* [k] is the stored (offset) key. *)
and add_raw t k =
  let i = ref (slot t (k - 1)) in
  let continue = ref true in
  let added = ref false in
  while !continue do
    let cur = Array.unsafe_get t.keys !i in
    if cur = 0 then begin
      Array.unsafe_set t.keys !i k;
      t.count <- t.count + 1;
      added := true;
      continue := false
    end
    else if cur = k then continue := false
    else i := (!i + 1) land t.mask
  done;
  !added

(** [add t key] inserts; returns [true] iff the key was not present. *)
let add t key =
  if 2 * (t.count + 1) > Array.length t.keys then grow t;
  add_raw t (key + 1)

(* Packed (a, b) pair keys — see the .mli for the 31-bit invariant.
   Shared by every edge table (pretransitive graph, worklist baseline,
   indirect-call link dedup) so the packing exists in exactly one
   place. *)
let max_node_id = (1 lsl 31) - 1
let pair_key a b = (a lsl 31) lor b

let check_node_bound n =
  if n < 0 || n > max_node_id then
    invalid_arg
      (Printf.sprintf
         "node id %d outside [0, %d]: the packed edge-key encoding holds \
          31 bits per endpoint"
         n max_node_id)

let mem t key =
  let k = key + 1 in
  let i = ref (slot t key) in
  let res = ref false in
  let continue = ref true in
  while !continue do
    let cur = Array.unsafe_get t.keys !i in
    if cur = 0 then continue := false
    else if cur = k then begin
      res := true;
      continue := false
    end
    else i := (!i + 1) land t.mask
  done;
  !res
