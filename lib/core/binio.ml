(** Binary encoding primitives for CLA object files.

    Varints are LEB128 (unsigned); this keeps the indexed database compact —
    Table 2 reports object files roughly 5-20x smaller than the preprocessed
    source they encode. *)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = Buffer.t

let writer () : writer = Buffer.create (1 lsl 16)
let wpos (b : writer) = Buffer.length b

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let u32 b v =
  u8 b v;
  u8 b (v lsr 8);
  u8 b (v lsr 16);
  u8 b (v lsr 24)

let rec varint b v =
  if v < 0 then invalid_arg "Binio.varint: negative";
  if v < 0x80 then u8 b v
  else begin
    u8 b (0x80 lor (v land 0x7f));
    varint b (v lsr 7)
  end

let bytes_ b s =
  varint b (String.length s);
  Buffer.add_string b s

let contents (b : writer) = Buffer.contents b

(** Patch a previously-written u32 at [pos] (used for section tables whose
    offsets are only known after the sections are serialized). *)
let patch_u32 (bytes : Bytes.t) ~pos v =
  Bytes.set bytes pos (Char.chr (v land 0xff));
  Bytes.set bytes (pos + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set bytes (pos + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set bytes (pos + 3) (Char.chr ((v lsr 24) land 0xff))

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

(** A reader is a cursor over an immutable byte string; cheap to create, so
    the demand loader makes one per block read. *)
type reader = { data : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  { data; pos; limit }

let check r n =
  if r.pos + n > r.limit then raise (Corrupt "unexpected end of data")

let ru8 r =
  check r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  let a = ru8 r in
  let b = ru8 r in
  let c = ru8 r in
  let d = ru8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

(* Decoded values must fit OCaml's non-negative int range (62 value
   bits), so an encoding is at most 9 data bytes; a 10th continuation
   byte — or high bits that would shift past bit 61 — is corruption, not
   undefined [lsl] behavior. *)
let rvarint r =
  let rec go shift acc =
    let byte = ru8 r in
    let bits = byte land 0x7f in
    if shift >= 63 then raise (Corrupt "varint too long")
    else if shift > 62 - 7 && bits lsr (62 - shift) <> 0 then
      raise (Corrupt "varint overflows 63-bit int")
    else begin
      let acc = acc lor (bits lsl shift) in
      if byte land 0x80 <> 0 then go (shift + 7) acc else acc
    end
  in
  go 0 0

(** Read a u32 record count that must be plausible for the remaining
    bytes of the reader: every record occupies at least [min_size]
    (default 1) byte(s), so a count exceeding the remainder can only
    come from a corrupt file — reject it before any allocation. *)
let rcount ?(min_size = 1) r =
  let n = ru32 r in
  if n < 0 || n * min_size > r.limit - r.pos then
    raise (Corrupt (Fmt.str "implausible count %d" n))
  else n

let rbytes r =
  let len = rvarint r in
  check r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let at_end r = r.pos >= r.limit
