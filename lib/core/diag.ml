(** Structured diagnostics for the compile-link-analyze pipeline.

    Instead of aborting the whole run with an uncaught exception, each
    phase can record a diagnostic — severity, phase, offending file,
    source location, message — and keep going past the failing input
    (PIP-style graceful degradation: one malformed translation unit or
    one corrupt object file must not kill a million-line run).

    Errors are mirrored into the {!Cla_obs.Metrics} registry under
    per-phase counters ([compile.errors], [link.errors], [load.corrupt],
    [analyze.errors]) so the [--stats]/[--stats-json] exports account
    for skipped inputs. *)

open Cla_ir

type severity = Error | Warning

type phase = Compile | Link | Load | Analyze

type t = {
  severity : severity;
  phase : phase;
  file : string option;  (** offending source or object file *)
  loc : Loc.t option;
  message : string;
}

(** Raised by pipeline entry points that cannot return a [result]; the
    CLI guard turns it into a one-line diagnostic and a distinct exit
    code. *)
exception Fail of t

let phase_name = function
  | Compile -> "compile"
  | Link -> "link"
  | Load -> "load"
  | Analyze -> "analyze"

(** Metric bumped when an error in this phase is recorded.  [Load]
    failures are corruption by construction ([load.corrupt]). *)
let metric_of_phase = function
  | Compile -> "compile.errors"
  | Link -> "link.errors"
  | Load -> "load.corrupt"
  | Analyze -> "analyze.errors"

let error ?file ?loc ~phase message =
  { severity = Error; phase; file; loc; message }

let warning ?file ?loc ~phase message =
  { severity = Warning; phase; file; loc; message }

let fail ?file ?loc ~phase message =
  raise (Fail (error ?file ?loc ~phase message))

let pp ppf d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  (match (d.file, d.loc) with
  | _, Some loc -> Fmt.pf ppf "%a: " Loc.pp loc
  | Some file, None -> Fmt.pf ppf "%s: " file
  | None, None -> ());
  Fmt.pf ppf "%s %s: %s" (phase_name d.phase) sev d.message

let to_string d = Fmt.str "%a" pp d

(* ------------------------------------------------------------------ *)
(* Collector (keep-going mode)                                         *)
(* ------------------------------------------------------------------ *)

(** Accumulates diagnostics across a multi-input run; recording an error
    bumps the matching phase counter in the metrics registry. *)
type collector = { mutable diags : t list (* reversed *) }

let collector () = { diags = [] }

let add c d =
  c.diags <- d :: c.diags;
  if d.severity = Error then Cla_obs.Metrics.incr (metric_of_phase d.phase)

let to_list c = List.rev c.diags

let error_count c =
  List.length (List.filter (fun d -> d.severity = Error) c.diags)

(* ------------------------------------------------------------------ *)
(* Exception capture                                                   *)
(* ------------------------------------------------------------------ *)

(** Exceptions a phase is allowed to fail with — everything the C front
    end and the object-file reader raise on bad {e input}, as opposed to
    internal invariant violations. *)
let diag_of_exn ?file ~phase = function
  | Cla_cfront.Cparser.Parse_error (msg, loc) ->
      Some (error ?file ~loc ~phase ("parse error: " ^ msg))
  | Cla_cfront.Cpp.Cpp_error (msg, f, line) ->
      Some
        (error ?file
           ~loc:(Loc.make ~file:f ~line ~col:0)
           ~phase ("cpp error: " ^ msg))
  | Cla_cfront.Clexer.Error (msg, pos) ->
      Some
        (error ?file
           ~loc:
             (Loc.make ~file:pos.Lexing.pos_fname ~line:pos.Lexing.pos_lnum
                ~col:0)
           ~phase ("lex error: " ^ msg))
  | Binio.Corrupt msg -> Some (error ?file ~phase ("corrupt object file: " ^ msg))
  | Fail d -> Some d
  | Sys_error msg -> Some (error ?file ~phase msg)
  | _ -> None

(** Run [f], turning input-level exceptions into [Error d].  Internal
    errors (anything {!diag_of_exn} does not recognize) still escape. *)
let capture ?file ~phase f =
  match f () with
  | v -> Ok v
  | exception e -> (
      match diag_of_exn ?file ~phase e with
      | Some d -> Error d
      | None -> raise e)

(* ------------------------------------------------------------------ *)
(* Exit codes                                                          *)
(* ------------------------------------------------------------------ *)

(* The CLI contract: usage errors keep cmdliner's 124; bad input (parse
   errors, corrupt databases) and internal failures are separated so
   scripts can retry or alert appropriately. *)
let exit_ok = 0
let exit_input = 2
let exit_internal = 3
let exit_deadline = 4
let exit_usage = 124
