(** Persistent solution snapshots: a solved, non-degraded ladder outcome
    frozen into a compact immutable arena and written as a sidecar
    [.snap] file, so a server restart costs O(read) instead of O(solve).

    The arena exploits the hash-consed hybrid {!Lvalset} pool: a
    solution's millions of points-to relations typically live in a few
    hundred distinct sets, so the file stores each distinct set once —
    sorted elements, delta-encoded — plus one set index per variable.
    Thawing re-interns every distinct set through a fresh pool, so the
    in-memory result has the same physical-sharing structure the solver
    built: identical sets are pointer-equal again, and every reader
    (shard) answers from the one shared, immutable arena.

    The format is CLA2's, in miniature: magic, version, a section table
    of (id, offset, size, CRC32) entries, a table checksum, then the
    sections.  A snapshot is also {e bound} to the database bytes it was
    solved from (length + CRC32 of the whole [.cla] file), so a snapshot
    can never be replayed against a different or edited database.  Any
    violation — bad magic, unknown version, table or section checksum
    mismatch, binding mismatch, non-ascending set elements, out-of-range
    ids — raises {!Binio.Corrupt}; {!load_result} surfaces it as a
    [Load]-phase {!Diag.t} ([load.corrupt]), and callers fall back to a
    live solve.  Never a wrong answer. *)

let magic = "CSN1"
let current_version = 1

(* Section ids.  BINDING first so a mismatched database is reported as
   such, not as downstream garbage. *)
let sec_binding = 0
let sec_prov = 1
let sec_sets = 2
let sec_varsets = 3

let entry_size = 13 (* u8 id + u32 off + u32 size + u32 crc *)

let write_str w s =
  Binio.varint w (String.length s);
  Buffer.add_string w s

let read_str r =
  let n = Binio.rvarint r in
  if r.Binio.pos + n > r.Binio.limit then
    raise (Binio.Corrupt "string past end of section");
  let s = String.sub r.Binio.data r.Binio.pos n in
  r.Binio.pos <- r.Binio.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Freezing                                                            *)
(* ------------------------------------------------------------------ *)

(* Distinct-set table: sets are hash-consed per solver pool, so physical
   identity catches most duplicates in O(1); the content key behind it
   makes dedup exact even across pools (e.g. a hedged rung's result). *)
let freeze ~(view : Objfile.view) (o : Pipeline.ladder_outcome) : string =
  if o.Pipeline.lo_degraded then
    invalid_arg
      "Snapshot.freeze: refusing to persist a degraded outcome (it would \
       serve stale precision forever)";
  let sol = o.Pipeline.lo_solution in
  let pts = sol.Solution.pts in
  let n_vars = Array.length pts in
  let nv_view = Objfile.n_vars view in
  (* distinct sets, in first-appearance order *)
  let by_content : (int list, int) Hashtbl.t = Hashtbl.create 256 in
  let sets = ref [] and n_sets = ref 0 in
  let var_set = Array.make n_vars 0 in
  Array.iteri
    (fun v set ->
      if Lvalset.cardinal set > 0 then begin
        let elems = Lvalset.to_list set in
        List.iter
          (fun z ->
            if z < 0 || z >= nv_view then
              invalid_arg
                (Fmt.str
                   "Snapshot.freeze: set element %d outside the database's \
                    %d objects"
                   z nv_view))
          elems;
        let idx =
          match Hashtbl.find_opt by_content elems with
          | Some i -> i
          | None ->
              incr n_sets;
              Hashtbl.replace by_content elems !n_sets;
              sets := elems :: !sets;
              !n_sets
        in
        var_set.(v) <- idx
      end)
    pts;
  let sets = Array.of_list (List.rev !sets) in
  (* BINDING: the database these answers are about *)
  let b_bind = Binio.writer () in
  Binio.u32 b_bind (String.length view.Objfile.data);
  Binio.u32 b_bind (Crc32.string view.Objfile.data);
  (* PROV: which rung answered, and its soundness statement *)
  let b_prov = Binio.writer () in
  write_str b_prov (Pipeline.algorithm_name o.Pipeline.lo_algorithm);
  write_str b_prov o.Pipeline.lo_note;
  Binio.u32 b_prov n_vars;
  (* SETS: each distinct set once, elements delta-encoded (ascending) *)
  let b_sets = Binio.writer () in
  Binio.u32 b_sets (Array.length sets);
  Array.iter
    (fun elems ->
      Binio.varint b_sets (List.length elems);
      ignore
        (List.fold_left
           (fun prev z ->
             (match prev with
             | None -> Binio.varint b_sets z
             | Some p -> Binio.varint b_sets (z - p));
             Some z)
           None elems))
    sets;
  (* VARSETS: per variable, its index into the set table (0 = empty) *)
  let b_vs = Binio.writer () in
  Binio.u32 b_vs n_vars;
  Array.iter (fun i -> Binio.varint b_vs i) var_set;
  let sections =
    [
      (sec_binding, b_bind); (sec_prov, b_prov); (sec_sets, b_sets);
      (sec_varsets, b_vs);
    ]
  in
  let header = Binio.writer () in
  Buffer.add_string header magic;
  Binio.u32 header current_version;
  Binio.u32 header (List.length sections);
  let table_pos = Binio.wpos header in
  List.iter
    (fun _ ->
      Binio.u8 header 0;
      Binio.u32 header 0;
      Binio.u32 header 0;
      Binio.u32 header 0)
    sections;
  Binio.u32 header 0 (* table CRC, patched below *);
  let out = Buffer.create (1 lsl 12) in
  Buffer.add_buffer out header;
  let offsets =
    List.map
      (fun (id, b) ->
        let off = Buffer.length out in
        Buffer.add_buffer out b;
        (id, off, Buffer.length b))
      sections
  in
  let bytes = Buffer.to_bytes out in
  let data = Bytes.unsafe_to_string bytes in
  List.iteri
    (fun i (id, off, size) ->
      let entry = table_pos + (i * entry_size) in
      Bytes.set bytes entry (Char.chr id);
      Binio.patch_u32 bytes ~pos:(entry + 1) off;
      Binio.patch_u32 bytes ~pos:(entry + 5) size;
      Binio.patch_u32 bytes ~pos:(entry + 9)
        (Crc32.sub data ~pos:off ~len:size))
    offsets;
  let table_end = table_pos + (List.length sections * entry_size) in
  (* covers version + count + entries: a flipped version or id is caught
     by the checksum even when it would otherwise parse *)
  Binio.patch_u32 bytes ~pos:table_end (Crc32.sub data ~pos:4 ~len:(table_end - 4));
  data

(* ------------------------------------------------------------------ *)
(* Thawing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_header (data : string) =
  let len = String.length data in
  if len < 12 then raise (Binio.Corrupt "not a CLA snapshot (too short)");
  if String.sub data 0 4 <> magic then
    raise (Binio.Corrupt "not a CLA snapshot (bad magic)");
  let r = Binio.reader ~pos:4 data in
  let version = Binio.ru32 r in
  if version <> current_version then
    raise
      (Binio.Corrupt
         (Fmt.str "unsupported snapshot version %d (this build reads %d)"
            version current_version));
  let nsec = Binio.rcount ~min_size:entry_size r in
  let table_pos = 12 in
  let table_end = table_pos + (nsec * entry_size) in
  let header_end = table_end + 4 in
  let sections = Hashtbl.create 8 in
  for _ = 1 to nsec do
    let id = Binio.ru8 r in
    let off = Binio.ru32 r in
    let size = Binio.ru32 r in
    let crc = Binio.ru32 r in
    if Hashtbl.mem sections id then
      raise (Binio.Corrupt (Fmt.str "duplicate snapshot section %d" id));
    if off < header_end || off + size > len then
      raise
        (Binio.Corrupt
           (Fmt.str "snapshot section %d out of range (%d+%d of %d)" id off
              size len));
    Hashtbl.replace sections id (off, size, crc)
  done;
  if Binio.ru32 r <> Crc32.sub data ~pos:4 ~len:(table_end - 4) then
    raise (Binio.Corrupt "snapshot table checksum mismatch");
  sections

let open_section data sections id name =
  match Hashtbl.find_opt sections id with
  | None -> raise (Binio.Corrupt (Fmt.str "snapshot %s section missing" name))
  | Some (off, size, crc) ->
      if Crc32.sub data ~pos:off ~len:size <> crc then
        raise
          (Binio.Corrupt (Fmt.str "snapshot %s section checksum mismatch" name));
      Binio.reader ~pos:off ~limit:(off + size) data

let thaw ~(view : Objfile.view) (data : string) : Pipeline.ladder_outcome =
  let sections = parse_header data in
  (* binding: right database? *)
  let r = open_section data sections sec_binding "binding" in
  let db_len = Binio.ru32 r in
  let db_crc = Binio.ru32 r in
  if
    db_len <> String.length view.Objfile.data
    || db_crc <> Crc32.string view.Objfile.data
  then
    raise
      (Binio.Corrupt
         "snapshot was solved from a different database (binding mismatch)");
  (* provenance *)
  let r = open_section data sections sec_prov "provenance" in
  let rung = read_str r in
  let note = read_str r in
  let n_vars = Binio.ru32 r in
  let algorithm =
    match Pipeline.algorithm_of_string rung with
    | Some a -> a
    | None -> raise (Binio.Corrupt (Fmt.str "snapshot names unknown rung %S" rung))
  in
  let nv_view = Objfile.n_vars view in
  (* distinct sets, re-interned through a fresh pool so identical sets
     are physically shared again *)
  let r = open_section data sections sec_sets "sets" in
  let n_sets = Binio.rcount ~min_size:2 r in
  let pool = Lvalset.create_pool () in
  let sets = Array.make (n_sets + 1) Lvalset.empty in
  for i = 1 to n_sets do
    let card = Binio.rvarint r in
    if card < 1 then
      raise (Binio.Corrupt (Fmt.str "snapshot set %d is empty" i));
    let elems = Array.make card 0 in
    let prev = ref (-1) in
    for k = 0 to card - 1 do
      let z =
        if k = 0 then Binio.rvarint r
        else
          let gap = Binio.rvarint r in
          if gap < 1 then
            raise
              (Binio.Corrupt
                 (Fmt.str "snapshot set %d is not strictly ascending" i))
          else !prev + gap
      in
      if z < 0 || z >= nv_view then
        raise
          (Binio.Corrupt
             (Fmt.str "snapshot set %d names object %d of %d" i z nv_view));
      elems.(k) <- z;
      prev := z
    done;
    sets.(i) <- Lvalset.share pool elems
  done;
  (* per-variable set indices *)
  let r = open_section data sections sec_varsets "varsets" in
  let n = Binio.rcount r in
  if n <> n_vars then
    raise
      (Binio.Corrupt
         (Fmt.str "snapshot varsets count %d disagrees with provenance %d" n
            n_vars));
  let pts = Array.make n_vars Lvalset.empty in
  for v = 0 to n_vars - 1 do
    let i = Binio.rvarint r in
    if i > n_sets then
      raise
        (Binio.Corrupt (Fmt.str "variable %d names set %d of %d" v i n_sets));
    pts.(v) <- sets.(i)
  done;
  let sol = Solution.create view pts in
  Solution.set_provenance sol
    { Solution.p_rung = rung; p_degraded = false; p_note = note };
  {
    Pipeline.lo_solution = sol;
    lo_algorithm = algorithm;
    lo_degraded = false;
    lo_note = note;
    lo_timeouts = [];
  }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let save path ~view outcome =
  let data = freeze ~view outcome in
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let load path ~view : Pipeline.ladder_outcome =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  thaw ~view data

let load_result path ~view : (Pipeline.ladder_outcome, Diag.t) result =
  Diag.capture ~file:path ~phase:Diag.Load (fun () -> load path ~view)
