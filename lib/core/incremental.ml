(** The incremental compile–link–analyze driver.

    Holds the three persistent states of the pipeline — the per-unit
    compile cache (TU content hash -> compiled unit view), the delta
    linker ({!Linkp.state}), and the solver's iteration state
    ({!Andersen.t}) — and threads an edited source set through all
    three:

    - unchanged units are detected by {!Compilep.tu_hash} (one
      preprocessor run, no parse) and reused, counted in
      [compile.cache.hits]/[compile.cache.misses];
    - the delta linker patches the linked view in place of a full
      re-merge when it can ({!Linkp.relink});
    - a pure-add constraint delta is absorbed by {!Andersen.resume} —
      surviving reachability memos and difference-propagation state do
      most of the work — and anything else falls back to a from-scratch
      solve behind the [pretrans.delta.fallbacks] counter.

    The invariant the whole chain maintains: after every {!update}, the
    held solution equals a from-scratch
    compile-link-{!Andersen.solve} of the same sources
    ({!Solution.equal}); the incremental path only changes how fast it
    is computed. *)

let now = Cla_resilience.Deadline.now_s

type t = {
  options : Compilep.options;
  pool : Cla_par.Pool.t option;
  units : (string, string * Objfile.view) Hashtbl.t;
      (* file -> (tuhash, compiled unit view) *)
  lstate : Linkp.state;
  mutable solver : Andersen.t;
  mutable result : Andersen.result;
}

type stats = {
  sources : int;
  cache_hits : int;
  cache_misses : int;
  resumed : bool;
  delta_pure : bool;
  delta_added : int;
  delta_removed : int;
  wall_compile_s : float;
  wall_link_s : float;
  wall_solve_s : float;
}

(* [drop_bodies] is a function and cannot be content-hashed
   (see {!Compilep.tu_hash}); a non-default one disables unit reuse the
   same way {!Pipeline}'s object cache bypasses itself. *)
let cacheable options =
  options.Compilep.drop_bodies == Compilep.default_options.Compilep.drop_bodies

let compile_unit ~options file src =
  let db = Compilep.compile_string ~options ~file src in
  let hash =
    match db.Objfile.tuhash with
    | Some h -> h
    | None -> (* compile_string always records one *) assert false
  in
  (hash, Objfile.view_of_string (Objfile.write db))

let solution t = t.result.Andersen.solution
let result t = t.result
let view t = Linkp.state_view t.lstate

let create ?(options = Compilep.default_options) ?pool ?(units = []) sources =
  let t0 = now () in
  let tbl = Hashtbl.create 64 in
  let compiled =
    List.map
      (fun (file, src) ->
        Cla_obs.Metrics.incr "compile.cache.misses";
        let h, uview = compile_unit ~options file src in
        Hashtbl.replace tbl file (h, uview);
        (file, uview))
      sources
  in
  let t1 = now () in
  let lstate, delta = Linkp.state_create (compiled @ units) in
  let lview = Linkp.state_view lstate in
  let t2 = now () in
  let solver, result = Andersen.solve_state ?pool lview in
  let t3 = now () in
  ( { options; pool; units = tbl; lstate; solver; result },
    {
      sources = List.length sources + List.length units;
      cache_hits = 0;
      cache_misses = List.length sources;
      resumed = false;
      delta_pure = Linkp.delta_is_pure_add delta;
      delta_added = Linkp.delta_size_added delta;
      delta_removed = Linkp.delta_size_removed delta;
      wall_compile_s = t1 -. t0;
      wall_link_s = t2 -. t1;
      wall_solve_s = t3 -. t2;
    } )

let update t ?(units = []) sources =
  Cla_obs.Obs.with_span "incremental.update" @@ fun () ->
  Cla_obs.Metrics.incr "incremental.updates";
  let t0 = now () in
  let hits = ref 0 and misses = ref 0 in
  let compiled =
    List.map
      (fun (file, src) ->
        let reuse =
          if not (cacheable t.options) then None
          else
            match Hashtbl.find_opt t.units file with
            | Some (h, uview)
              when String.equal h
                     (Compilep.tu_hash ~options:t.options ~file src) ->
                Some uview
            | _ -> None
        in
        match reuse with
        | Some uview ->
            incr hits;
            Cla_obs.Metrics.incr "compile.cache.hits";
            (file, uview)
        | None ->
            incr misses;
            Cla_obs.Metrics.incr "compile.cache.misses";
            let h, uview = compile_unit ~options:t.options file src in
            Hashtbl.replace t.units file (h, uview);
            (file, uview))
      sources
  in
  (* forget cache entries for files no longer in the source set *)
  let present = Hashtbl.create 64 in
  List.iter (fun (file, _) -> Hashtbl.replace present file ()) compiled;
  let stale =
    Hashtbl.fold
      (fun file _ acc -> if Hashtbl.mem present file then acc else file :: acc)
      t.units []
  in
  List.iter (Hashtbl.remove t.units) stale;
  let t1 = now () in
  let delta = Linkp.relink t.lstate (compiled @ units) in
  let lview = Linkp.state_view t.lstate in
  let t2 = now () in
  let resumed, result =
    match Andersen.resume ?pool:t.pool t.solver ~view:lview ~delta with
    | Some r -> (true, r)
    | None ->
        (* resume declined (removal, full relink, ...) and bumped
           [pretrans.delta.fallbacks]; re-solve from scratch over the
           relinked view *)
        let solver, r = Andersen.solve_state ?pool:t.pool lview in
        t.solver <- solver;
        (false, r)
  in
  t.result <- result;
  let t3 = now () in
  {
    sources = List.length sources + List.length units;
    cache_hits = !hits;
    cache_misses = !misses;
    resumed;
    delta_pure =
      Linkp.delta_is_pure_add delta && not delta.Linkp.d_full_relink;
    delta_added = Linkp.delta_size_added delta;
    delta_removed = Linkp.delta_size_removed delta;
    wall_compile_s = t1 -. t0;
    wall_link_s = t2 -. t1;
    wall_solve_s = t3 -. t2;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "%d sources (%d cached, %d compiled), delta %s+%d/-%d, %s solve, \
     compile %.3fs link %.3fs solve %.3fs"
    s.sources s.cache_hits s.cache_misses
    (if s.delta_pure then "pure-add " else "")
    s.delta_added s.delta_removed
    (if s.resumed then "resumed" else "scratch")
    s.wall_compile_s s.wall_link_s s.wall_solve_s
