(** The CLA link phase: merge object files into one database.

    "The link phase merges all of the database files into one database,
    using the linking information present in the object files to link
    global symbols ... During this process we must recompute indexing
    information." (Section 4) *)

open Cla_ir

type stats = {
  n_units : int;
  n_extern_merged : int;  (** extern symbol occurrences unified away *)
  n_vars_out : int;
  n_undefined : int;  (** declared-but-undefined functions detected *)
}

(** Incomplete-program policy: [Ignore] links the fragment as-is (the
    library default — a closed-world under-approximation), [Error]
    raises {!Diag.Fail} naming the undefined functions (the strict
    [cla link] contract, rendered as exit 3), [Open_world] synthesizes
    {!Openworld} havoc constraints and attaches the summary section. *)
type undef_policy = Ignore | Error | Open_world

(** Link several object-file views into a single database.  Extern objects
    with the same canonical key are unified; unit-private objects are
    renumbered. *)
let link_views (views : Objfile.view list) : Objfile.db * stats =
  let key_ids : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let out_vars = ref [] in
  (* reversed *)
  let next = ref 0 in
  let merged = ref 0 in
  let alloc (vi : Objfile.varinfo) =
    let id = !next in
    incr next;
    out_vars := vi :: !out_vars;
    id
  in
  let unit_maps =
    List.map
      (fun (v : Objfile.view) ->
        let n = Objfile.n_vars v in
        let keys = Hashtbl.create 64 in
        List.iter (fun (uid, key) -> Hashtbl.replace keys uid key) v.Objfile.rkeys;
        let map = Array.make n (-1) in
        for uid = 0 to n - 1 do
          let vi = v.Objfile.rvars.(uid) in
          match Hashtbl.find_opt keys uid with
          | Some key -> (
              match Hashtbl.find_opt key_ids key with
              | Some id ->
                  incr merged;
                  map.(uid) <- id
              | None ->
                  let id = alloc vi in
                  Hashtbl.replace key_ids key id;
                  map.(uid) <- id)
          | None -> map.(uid) <- alloc vi
        done;
        (v, map))
      views
  in
  let nvars = !next in
  let vars =
    Array.make nvars
      {
        Objfile.vname = "";
        vkind = Var.Temp;
        vlinkage = Var.Intern;
        vtyp = "";
        vloc = Loc.none;
        vowner = "";
        vdefined = true;
      }
  in
  List.iteri
    (fun i vi -> vars.(nvars - 1 - i) <- vi)
    !out_vars;
  (* prefer a declaration that has a type over one that does not (the same
     extern may be declared with and without type info in different units) *)
  List.iter
    (fun ((v : Objfile.view), map) ->
      Array.iteri
        (fun uid id ->
          let vi = v.Objfile.rvars.(uid) in
          if vars.(id).Objfile.vtyp = "" && vi.Objfile.vtyp <> "" then
            vars.(id) <- vi)
        map)
    unit_maps;
  (* a merged object is defined iff any unit defines it — one definition
     satisfies every extern declaration of the same key *)
  let defined = Array.make nvars false in
  List.iter
    (fun ((v : Objfile.view), map) ->
      Array.iteri
        (fun uid id ->
          if v.Objfile.rvars.(uid).Objfile.vdefined then defined.(id) <- true)
        map)
    unit_maps;
  Array.iteri
    (fun id vi ->
      if vi.Objfile.vdefined <> defined.(id) then
        vars.(id) <- { vi with Objfile.vdefined = defined.(id) })
    vars;
  let remap_prim map (p : Objfile.prim_rec) =
    { p with Objfile.pdst = map.(p.pdst); psrc = map.(p.psrc) }
  in
  let statics = ref [] in
  let blocks = Array.make nvars [] in
  let fundefs = ref [] in
  let seen_fun = Hashtbl.create 64 in
  let indirects = ref [] in
  let consts = ref [] in
  let files = ref [] in
  let src_lines = ref 0 in
  let pre_lines = ref 0 in
  let counts = ref Prim.zero_counts in
  List.iter
    (fun ((v : Objfile.view), map) ->
      Array.iter
        (fun p -> statics := remap_prim map p :: !statics)
        v.Objfile.rstatics;
      for uid = 0 to Objfile.n_vars v - 1 do
        if Objfile.has_block v uid then begin
          let prims = List.map (remap_prim map) (Objfile.read_block v uid) in
          let id = map.(uid) in
          blocks.(id) <- List.rev_append (List.rev prims) blocks.(id)
        end
      done;
      Array.iter
        (fun (f : Objfile.fund_rec) ->
          let id = map.(f.ffvar) in
          if not (Hashtbl.mem seen_fun id) then begin
            Hashtbl.replace seen_fun id ();
            fundefs :=
              {
                f with
                Objfile.ffvar = id;
                fret = (if f.fret >= 0 then map.(f.fret) else -1);
                fargs =
                  Array.map (fun a -> if a >= 0 then map.(a) else -1) f.fargs;
              }
              :: !fundefs
          end)
        v.Objfile.rfundefs;
      Array.iter
        (fun (i : Objfile.indir_rec) ->
          indirects :=
            {
              i with
              Objfile.iptr = map.(i.iptr);
              iret = (if i.iret >= 0 then map.(i.iret) else -1);
              iargs =
                Array.map (fun a -> if a >= 0 then map.(a) else -1) i.iargs;
            }
            :: !indirects)
        v.Objfile.rindirects;
      List.iter
        (fun (var, c) -> consts := (map.(var), c) :: !consts)
        v.Objfile.rconsts;
      files := List.rev_append v.Objfile.rmeta.Objfile.mfiles !files;
      src_lines := !src_lines + v.Objfile.rmeta.Objfile.msource_lines;
      pre_lines := !pre_lines + v.Objfile.rmeta.Objfile.mpreproc_lines;
      counts := Prim.add_counts !counts v.Objfile.rmeta.Objfile.mcounts)
    unit_maps;
  let db =
    {
      Objfile.vars;
      keys = Hashtbl.fold (fun key id acc -> (id, key) :: acc) key_ids [];
      statics = List.rev !statics;
      blocks;
      fundefs = List.rev !fundefs;
      indirects = List.rev !indirects;
      consts = List.rev !consts;
      openworld = None;
      meta =
        {
          mfiles = List.rev !files;
          msource_lines = !src_lines;
          mpreproc_lines = !pre_lines;
          mcounts = !counts;
        };
    }
  in
  ( db,
    {
      n_units = List.length views;
      n_extern_merged = !merged;
      n_vars_out = nvars;
      n_undefined = 0;
    } )

(** Publish a stats record into the metrics registry under [link.*]. *)
let publish_stats ?reg (s : stats) =
  let set k v = Cla_obs.Metrics.set ?reg ("link." ^ k) v in
  set "units" s.n_units;
  set "extern_merged" s.n_extern_merged;
  set "vars_out" s.n_vars_out

(* Apply the incomplete-program policy to a freshly merged database. *)
let apply_policy undefined (db, stats) =
  match undefined with
  | Ignore -> (db, stats)
  | Error -> (
      let r = Openworld.detect db in
      match r.Openworld.undefined with
      | [] -> (db, stats)
      | names ->
          Diag.fail ~phase:Diag.Link
            (Fmt.str "undefined function%s: %s (link with --open-world to \
                      analyze the incomplete program soundly)"
               (if List.length names = 1 then "" else "s")
               (String.concat ", " names)))
  | Open_world ->
      let r = Openworld.detect db in
      let db = Openworld.synthesize db r in
      let n_undefined = List.length r.Openworld.undefined in
      Cla_obs.Metrics.set "link.open_world.undefined" n_undefined;
      Cla_obs.Metrics.set "link.open_world.escaping"
        (List.length r.Openworld.escaping);
      (db, { stats with n_undefined })

(* Shadow the raw implementation with the instrumented entry point. *)
let link_views ?(undefined = Ignore) views =
  Cla_obs.Obs.with_span "link"
    ~label:(string_of_int (List.length views) ^ " unit(s)")
    (fun () ->
      let db, stats = apply_policy undefined (link_views views) in
      publish_stats stats;
      (db, stats))

(** Link object files from disk and write the "executable" database. *)
let link_files ?undefined ~output paths =
  let views = List.map Objfile.load paths in
  let db, stats = link_views ?undefined views in
  Objfile.save output db;
  stats

(** Like {!link_files}, surfacing corrupt or unreadable inputs as
    structured diagnostics (bumping [load.corrupt]).  With [keep_going]
    the bad object files are skipped and the rest are linked; without it
    the first failure raises {!Diag.Fail}.  [None] means no input
    survived, in which case no output is written. *)
let link_files_result ?(keep_going = false) ?undefined ~output paths :
    stats option * Diag.t list =
  let c = Diag.collector () in
  let views =
    List.filter_map
      (fun path ->
        match Objfile.load_result path with
        | Ok v -> Some v
        | Error d ->
            Diag.add c d;
            if not keep_going then raise (Diag.Fail d);
            None)
      paths
  in
  let stats =
    if views = [] then None
    else begin
      let db, stats = link_views ?undefined views in
      Objfile.save output db;
      Some stats
    end
  in
  (stats, Diag.to_list c)
