(** The CLA link phase: merge object files into one database.

    "The link phase merges all of the database files into one database,
    using the linking information present in the object files to link
    global symbols ... During this process we must recompute indexing
    information." (Section 4) *)

open Cla_ir

type stats = {
  n_units : int;
  n_extern_merged : int;  (** extern symbol occurrences unified away *)
  n_vars_out : int;
  n_undefined : int;  (** declared-but-undefined functions detected *)
}

(** Incomplete-program policy: [Ignore] links the fragment as-is (the
    library default — a closed-world under-approximation), [Error]
    raises {!Diag.Fail} naming the undefined functions (the strict
    [cla link] contract, rendered as exit 3), [Open_world] synthesizes
    {!Openworld} havoc constraints and attaches the summary section. *)
type undef_policy = Ignore | Error | Open_world

(** Link several object-file views into a single database.  Extern objects
    with the same canonical key are unified; unit-private objects are
    renumbered.  Also returns the per-unit uid → linked-id maps and the
    canonical-key table, which the delta linker below snapshots. *)
let link_views_full (views : Objfile.view list) :
    Objfile.db * stats * (Objfile.view * int array) list * (string, int) Hashtbl.t
    =
  let key_ids : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let out_vars = ref [] in
  (* reversed *)
  let next = ref 0 in
  let merged = ref 0 in
  let alloc (vi : Objfile.varinfo) =
    let id = !next in
    incr next;
    out_vars := vi :: !out_vars;
    id
  in
  let unit_maps =
    List.map
      (fun (v : Objfile.view) ->
        let n = Objfile.n_vars v in
        let keys = Hashtbl.create 64 in
        List.iter (fun (uid, key) -> Hashtbl.replace keys uid key) v.Objfile.rkeys;
        let map = Array.make n (-1) in
        for uid = 0 to n - 1 do
          let vi = v.Objfile.rvars.(uid) in
          match Hashtbl.find_opt keys uid with
          | Some key -> (
              match Hashtbl.find_opt key_ids key with
              | Some id ->
                  incr merged;
                  map.(uid) <- id
              | None ->
                  let id = alloc vi in
                  Hashtbl.replace key_ids key id;
                  map.(uid) <- id)
          | None -> map.(uid) <- alloc vi
        done;
        (v, map))
      views
  in
  let nvars = !next in
  let vars =
    Array.make nvars
      {
        Objfile.vname = "";
        vkind = Var.Temp;
        vlinkage = Var.Intern;
        vtyp = "";
        vloc = Loc.none;
        vowner = "";
        vdefined = true;
      }
  in
  List.iteri
    (fun i vi -> vars.(nvars - 1 - i) <- vi)
    !out_vars;
  (* prefer a declaration that has a type over one that does not (the same
     extern may be declared with and without type info in different units) *)
  List.iter
    (fun ((v : Objfile.view), map) ->
      Array.iteri
        (fun uid id ->
          let vi = v.Objfile.rvars.(uid) in
          if vars.(id).Objfile.vtyp = "" && vi.Objfile.vtyp <> "" then
            vars.(id) <- vi)
        map)
    unit_maps;
  (* a merged object is defined iff any unit defines it — one definition
     satisfies every extern declaration of the same key *)
  let defined = Array.make nvars false in
  List.iter
    (fun ((v : Objfile.view), map) ->
      Array.iteri
        (fun uid id ->
          if v.Objfile.rvars.(uid).Objfile.vdefined then defined.(id) <- true)
        map)
    unit_maps;
  Array.iteri
    (fun id vi ->
      if vi.Objfile.vdefined <> defined.(id) then
        vars.(id) <- { vi with Objfile.vdefined = defined.(id) })
    vars;
  let remap_prim map (p : Objfile.prim_rec) =
    { p with Objfile.pdst = map.(p.pdst); psrc = map.(p.psrc) }
  in
  let statics = ref [] in
  let blocks = Array.make nvars [] in
  let fundefs = ref [] in
  let seen_fun = Hashtbl.create 64 in
  let indirects = ref [] in
  let consts = ref [] in
  let files = ref [] in
  let src_lines = ref 0 in
  let pre_lines = ref 0 in
  let counts = ref Prim.zero_counts in
  List.iter
    (fun ((v : Objfile.view), map) ->
      Array.iter
        (fun p -> statics := remap_prim map p :: !statics)
        v.Objfile.rstatics;
      for uid = 0 to Objfile.n_vars v - 1 do
        if Objfile.has_block v uid then begin
          let prims = List.map (remap_prim map) (Objfile.read_block v uid) in
          let id = map.(uid) in
          blocks.(id) <- List.rev_append (List.rev prims) blocks.(id)
        end
      done;
      Array.iter
        (fun (f : Objfile.fund_rec) ->
          let id = map.(f.ffvar) in
          if not (Hashtbl.mem seen_fun id) then begin
            Hashtbl.replace seen_fun id ();
            fundefs :=
              {
                f with
                Objfile.ffvar = id;
                fret = (if f.fret >= 0 then map.(f.fret) else -1);
                fargs =
                  Array.map (fun a -> if a >= 0 then map.(a) else -1) f.fargs;
              }
              :: !fundefs
          end)
        v.Objfile.rfundefs;
      Array.iter
        (fun (i : Objfile.indir_rec) ->
          indirects :=
            {
              i with
              Objfile.iptr = map.(i.iptr);
              iret = (if i.iret >= 0 then map.(i.iret) else -1);
              iargs =
                Array.map (fun a -> if a >= 0 then map.(a) else -1) i.iargs;
            }
            :: !indirects)
        v.Objfile.rindirects;
      List.iter
        (fun (var, c) -> consts := (map.(var), c) :: !consts)
        v.Objfile.rconsts;
      files := List.rev_append v.Objfile.rmeta.Objfile.mfiles !files;
      src_lines := !src_lines + v.Objfile.rmeta.Objfile.msource_lines;
      pre_lines := !pre_lines + v.Objfile.rmeta.Objfile.mpreproc_lines;
      counts := Prim.add_counts !counts v.Objfile.rmeta.Objfile.mcounts)
    unit_maps;
  let db =
    {
      Objfile.vars;
      keys = Hashtbl.fold (fun key id acc -> (id, key) :: acc) key_ids [];
      statics = List.rev !statics;
      blocks;
      fundefs = List.rev !fundefs;
      indirects = List.rev !indirects;
      consts = List.rev !consts;
      openworld = None;
      tuhash = None;
      meta =
        {
          mfiles = List.rev !files;
          msource_lines = !src_lines;
          mpreproc_lines = !pre_lines;
          mcounts = !counts;
        };
    }
  in
  ( db,
    {
      n_units = List.length views;
      n_extern_merged = !merged;
      n_vars_out = nvars;
      n_undefined = 0;
    },
    unit_maps,
    key_ids )

let link_views views : Objfile.db * stats =
  let db, stats, _, _ = link_views_full views in
  (db, stats)

(** Publish a stats record into the metrics registry under [link.*]. *)
let publish_stats ?reg (s : stats) =
  let set k v = Cla_obs.Metrics.set ?reg ("link." ^ k) v in
  set "units" s.n_units;
  set "extern_merged" s.n_extern_merged;
  set "vars_out" s.n_vars_out

(* Apply the incomplete-program policy to a freshly merged database. *)
let apply_policy undefined (db, stats) =
  match undefined with
  | Ignore -> (db, stats)
  | Error -> (
      let r = Openworld.detect db in
      match r.Openworld.undefined with
      | [] -> (db, stats)
      | names ->
          Diag.fail ~phase:Diag.Link
            (Fmt.str "undefined function%s: %s (link with --open-world to \
                      analyze the incomplete program soundly)"
               (if List.length names = 1 then "" else "s")
               (String.concat ", " names)))
  | Open_world ->
      let r = Openworld.detect db in
      let db = Openworld.synthesize db r in
      let n_undefined = List.length r.Openworld.undefined in
      Cla_obs.Metrics.set "link.open_world.undefined" n_undefined;
      Cla_obs.Metrics.set "link.open_world.escaping"
        (List.length r.Openworld.escaping);
      (db, { stats with n_undefined })

(* Shadow the raw implementation with the instrumented entry point. *)
let link_views ?(undefined = Ignore) views =
  Cla_obs.Obs.with_span "link"
    ~label:(string_of_int (List.length views) ^ " unit(s)")
    (fun () ->
      let db, stats = apply_policy undefined (link_views views) in
      publish_stats stats;
      (db, stats))

(** Link object files from disk and write the "executable" database. *)
let link_files ?undefined ~output paths =
  let views = List.map Objfile.load paths in
  let db, stats = link_views ?undefined views in
  Objfile.save output db;
  stats

(** Like {!link_files}, surfacing corrupt or unreadable inputs as
    structured diagnostics (bumping [load.corrupt]).  With [keep_going]
    the bad object files are skipped and the rest are linked; without it
    the first failure raises {!Diag.Fail}.  [None] means no input
    survived, in which case no output is written. *)
let link_files_result ?(keep_going = false) ?undefined ~output paths :
    stats option * Diag.t list =
  let c = Diag.collector () in
  let views =
    List.filter_map
      (fun path ->
        match Objfile.load_result path with
        | Ok v -> Some v
        | Error d ->
            Diag.add c d;
            if not keep_going then raise (Diag.Fail d);
            None)
      paths
  in
  let stats =
    if views = [] then None
    else begin
      let db, stats = link_views ?undefined views in
      Objfile.save output db;
      Some stats
    end
  in
  (stats, Diag.to_list c)

(* ------------------------------------------------------------------ *)
(* Delta linking                                                       *)
(* ------------------------------------------------------------------ *)

(** What changed between two consecutive linked databases, in the linked
    id space.  Produced by {!relink}; consumed by the incremental solver
    ({!Andersen.resume}) and the delta tests. *)
type delta = {
  d_old_nvars : int;
  d_new_nvars : int;
  d_changed_units : int;
  d_added_statics : Objfile.prim_rec list;
  d_removed_statics : Objfile.prim_rec list;
  d_added_prims : Objfile.prim_rec list;  (** non-[Paddr], [psrc] mapped *)
  d_removed_prims : Objfile.prim_rec list;
  d_added_fundefs : Objfile.fund_rec list;
  d_removed_fundefs : Objfile.fund_rec list;
  d_added_indirects : Objfile.indir_rec list;
  d_removed_indirects : Objfile.indir_rec list;
  d_added_strings : string list;  (** linked-view string-table additions *)
  d_removed_strings : string list;
  d_full_relink : bool;
      (** the database was rebuilt by a full merge (constraint removal);
          linked ids are NOT stable across this delta *)
}

let delta_is_pure_add d =
  (not d.d_full_relink)
  && d.d_removed_statics = []
  && d.d_removed_prims = []
  && d.d_removed_fundefs = []
  && d.d_removed_indirects = []

let delta_size_added d =
  List.length d.d_added_statics + List.length d.d_added_prims
  + List.length d.d_added_fundefs
  + List.length d.d_added_indirects

let delta_size_removed d =
  List.length d.d_removed_statics + List.length d.d_removed_prims
  + List.length d.d_removed_fundefs
  + List.length d.d_removed_indirects

type unit_entry = {
  ue_name : string;
  mutable ue_hash : string option;  (** the unit's [rtuhash], if any *)
  mutable ue_view : Objfile.view;
  mutable ue_map : int array;  (** uid → linked id *)
}

(** Persistent linker state for delta mode: the unit set with its uid →
    linked-id maps, the canonical-key table, and the current linked
    database/view.  Only the closed-world [Ignore] policy is supported —
    open-world havoc synthesis rewrites the whole database and would
    defeat id stability (callers wanting [--open-world] must re-link
    fully). *)
type state = {
  mutable s_key_ids : (string, int) Hashtbl.t;
  mutable s_units : unit_entry list;  (** in link order *)
  mutable s_next : int;  (** next fresh linked id *)
  mutable s_db : Objfile.db;
  mutable s_view : Objfile.view;
}

let state_view st = st.s_view
let state_db st = st.s_db

let empty_db : Objfile.db =
  {
    Objfile.vars = [||];
    keys = [];
    statics = [];
    blocks = [||];
    fundefs = [];
    indirects = [];
    consts = [];
    openworld = None;
    tuhash = None;
    meta =
      {
        Objfile.mfiles = [];
        msource_lines = 0;
        mpreproc_lines = 0;
        mcounts = Prim.zero_counts;
      };
  }

(* A unit's full contribution to the linked database, in linked ids. *)
type contrib = {
  c_statics : Objfile.prim_rec list;
  c_prims : Objfile.prim_rec list;  (* dynamic blocks, flattened *)
  c_fundefs : Objfile.fund_rec list;
  c_indirects : Objfile.indir_rec list;
}

let empty_contrib =
  { c_statics = []; c_prims = []; c_fundefs = []; c_indirects = [] }

let contrib_of (v : Objfile.view) (map : int array) : contrib =
  let remap (p : Objfile.prim_rec) =
    { p with Objfile.pdst = map.(p.Objfile.pdst); psrc = map.(p.Objfile.psrc) }
  in
  let map_opt a = if a >= 0 then map.(a) else -1 in
  let prims = ref [] in
  for uid = Objfile.n_vars v - 1 downto 0 do
    if Objfile.has_block v uid then
      prims :=
        List.rev_append
          (List.rev_map remap (Objfile.read_block v uid))
          !prims
  done;
  {
    c_statics = List.map remap (Array.to_list v.Objfile.rstatics);
    c_prims = !prims;
    c_fundefs =
      List.map
        (fun (f : Objfile.fund_rec) ->
          {
            f with
            Objfile.ffvar = map.(f.Objfile.ffvar);
            fret = map_opt f.Objfile.fret;
            fargs = Array.map map_opt f.Objfile.fargs;
          })
        (Array.to_list v.Objfile.rfundefs);
    c_indirects =
      List.map
        (fun (i : Objfile.indir_rec) ->
          {
            i with
            Objfile.iptr = map.(i.Objfile.iptr);
            iret = map_opt i.Objfile.iret;
            iargs = Array.map map_opt i.Objfile.iargs;
          })
        (Array.to_list v.Objfile.rindirects);
  }

(* Multiset diff of two record lists under a projection [key] (location
   fields are excluded from identities — a line-number shift is not a
   semantic change).  Returns (added, removed) with records drawn from
   the respective sides. *)
let multiset_diff ~key old_l new_l =
  let counts = Hashtbl.create 64 in
  let olds = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let k = key x in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k));
      Hashtbl.add olds k x)
    old_l;
  let added =
    List.filter
      (fun x ->
        let k = key x in
        match Hashtbl.find_opt counts k with
        | Some n when n > 0 ->
            Hashtbl.replace counts k (n - 1);
            false
        | _ -> true)
      new_l
  in
  let removed =
    Hashtbl.fold
      (fun k n acc ->
        if n <= 0 then acc
        else
          (* any [n] representatives of the surplus key will do *)
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          take n (Hashtbl.find_all olds k) @ acc)
      counts []
  in
  (added, removed)

let static_key (p : Objfile.prim_rec) = (p.Objfile.pdst, p.Objfile.psrc)

let prim_key (p : Objfile.prim_rec) =
  (p.Objfile.pkind, p.Objfile.pdst, p.Objfile.psrc)

let fund_key (f : Objfile.fund_rec) =
  (f.Objfile.ffvar, f.Objfile.farity, f.Objfile.fret,
   Array.to_list f.Objfile.fargs)

let indir_key (i : Objfile.indir_rec) =
  (i.Objfile.iptr, i.Objfile.inargs, i.Objfile.iret,
   Array.to_list i.Objfile.iargs)

let strings_diff (old_v : Objfile.view) (new_v : Objfile.view) =
  let setify a =
    let t = Hashtbl.create (Array.length a) in
    Array.iter (fun s -> Hashtbl.replace t s ()) a;
    t
  in
  let olds = setify old_v.Objfile.strings
  and news = setify new_v.Objfile.strings in
  let added =
    Hashtbl.fold
      (fun s () acc -> if Hashtbl.mem olds s then acc else s :: acc)
      news []
  and removed =
    Hashtbl.fold
      (fun s () acc -> if Hashtbl.mem news s then acc else s :: acc)
      olds []
  in
  (added, removed)

(* Recompute the per-var metadata passes of [link_views_full] (typed
   declaration wins; defined iff any unit defines) over the current unit
   set.  Cheap — O(total vars) — so the patch path reruns it instead of
   tracking per-field provenance. *)
let refresh_vars vars units =
  let nvars = Array.length vars in
  List.iter
    (fun ue ->
      Array.iteri
        (fun uid id ->
          let vi = ue.ue_view.Objfile.rvars.(uid) in
          if vars.(id).Objfile.vtyp = "" && vi.Objfile.vtyp <> "" then
            vars.(id) <- vi)
        ue.ue_map)
    units;
  let defined = Array.make nvars false in
  List.iter
    (fun ue ->
      Array.iteri
        (fun uid id ->
          if ue.ue_view.Objfile.rvars.(uid).Objfile.vdefined then
            defined.(id) <- true)
        ue.ue_map)
    units;
  Array.iteri
    (fun id vi ->
      if vi.Objfile.vdefined <> defined.(id) then
        vars.(id) <- { vi with Objfile.vdefined = defined.(id) })
    vars

let meta_of_units units : Objfile.meta =
  let files = ref [] and src = ref 0 and pre = ref 0 in
  let counts = ref Prim.zero_counts in
  List.iter
    (fun ue ->
      let m = ue.ue_view.Objfile.rmeta in
      files := List.rev_append m.Objfile.mfiles !files;
      src := !src + m.Objfile.msource_lines;
      pre := !pre + m.Objfile.mpreproc_lines;
      counts := Prim.add_counts !counts m.Objfile.mcounts)
    units;
  {
    Objfile.mfiles = List.rev !files;
    msource_lines = !src;
    mpreproc_lines = !pre;
    mcounts = !counts;
  }

(** Re-link after some units changed.  Units are matched to the previous
    set by name; a unit whose [rtuhash] is unchanged is not even
    diffed.  When every change is an addition, the new database is built
    by {e patching} the previous one — old linked ids are stable, old
    section lists survive as exact prefixes (the solver's positional
    caches depend on this) — and the returned delta is "pure add".  Any
    constraint removal falls back to a full merge (ids reassigned,
    [d_full_relink] set), which the solver answers with a from-scratch
    solve.  Publishes [link.delta.*] metrics. *)
let relink (st : state) (units : (string * Objfile.view) list) : delta =
  Cla_obs.Obs.with_span "link" ~label:"delta" (fun () ->
  let old_nvars = Array.length st.s_db.Objfile.vars in
  let old_view = st.s_view in
  let old_by_name = Hashtbl.create 16 in
  List.iter (fun ue -> Hashtbl.replace old_by_name ue.ue_name ue) st.s_units;
  (* tentative fresh-id allocations: committed only on the patch path *)
  let next = ref st.s_next in
  let new_keys : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let new_vars = ref [] (* reversed *) in
  let alloc vi =
    let id = !next in
    incr next;
    new_vars := vi :: !new_vars;
    id
  in
  let key_id key vi =
    match Hashtbl.find_opt st.s_key_ids key with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt new_keys key with
        | Some id -> id
        | None ->
            let id = alloc vi in
            Hashtbl.replace new_keys key id;
            id)
  in
  (* The stable-id map for a changed unit: keyed (extern) objects resolve
     through the canonical-key table exactly as before; an unkeyed object
     keeps its old linked id iff the same uid held an identical-identity
     unkeyed object in the old unit (append-only edits always satisfy
     this); anything else gets a fresh id. *)
  let map_for (v : Objfile.view) (old : unit_entry option) : int array =
    let n = Objfile.n_vars v in
    let keys = Hashtbl.create 64 in
    List.iter (fun (uid, k) -> Hashtbl.replace keys uid k) v.Objfile.rkeys;
    let old_keys = Hashtbl.create 64 in
    (match old with
    | Some ue ->
        List.iter
          (fun (uid, k) -> Hashtbl.replace old_keys uid k)
          ue.ue_view.Objfile.rkeys
    | None -> ());
    let map = Array.make n (-1) in
    for uid = 0 to n - 1 do
      let vi = v.Objfile.rvars.(uid) in
      match Hashtbl.find_opt keys uid with
      | Some key -> map.(uid) <- key_id key vi
      | None ->
          let stable =
            match old with
            | Some ue
              when uid < Objfile.n_vars ue.ue_view
                   && not (Hashtbl.mem old_keys uid) ->
                let ovi = ue.ue_view.Objfile.rvars.(uid) in
                if
                  String.equal ovi.Objfile.vname vi.Objfile.vname
                  && ovi.Objfile.vkind = vi.Objfile.vkind
                  && String.equal ovi.Objfile.vowner vi.Objfile.vowner
                then Some ue.ue_map.(uid)
                else None
            | _ -> None
          in
          map.(uid) <-
            (match stable with Some id -> id | None -> alloc vi)
    done;
    map
  in
  let changed = ref 0 in
  let add_st = ref [] and rem_st = ref [] in
  let add_pr = ref [] and rem_pr = ref [] in
  let add_fn = ref [] and rem_fn = ref [] in
  let add_in = ref [] and rem_in = ref [] in
  let accum oldc newc =
    let a, r = multiset_diff ~key:static_key oldc.c_statics newc.c_statics in
    add_st := a @ !add_st;
    rem_st := r @ !rem_st;
    let a, r = multiset_diff ~key:prim_key oldc.c_prims newc.c_prims in
    add_pr := a @ !add_pr;
    rem_pr := r @ !rem_pr;
    let a, r = multiset_diff ~key:fund_key oldc.c_fundefs newc.c_fundefs in
    add_fn := a @ !add_fn;
    rem_fn := r @ !rem_fn;
    let a, r = multiset_diff ~key:indir_key oldc.c_indirects newc.c_indirects in
    add_in := a @ !add_in;
    rem_in := r @ !rem_in
  in
  let new_entries =
    List.map
      (fun (name, v) ->
        let old = Hashtbl.find_opt old_by_name name in
        if old <> None then Hashtbl.remove old_by_name name;
        let hash = v.Objfile.rtuhash in
        match old with
        | Some ue when hash <> None && ue.ue_hash = hash ->
            ue (* unchanged: same hash, not even diffed *)
        | _ ->
            incr changed;
            let map = map_for v old in
            let oldc =
              match old with
              | None -> empty_contrib
              | Some ue -> contrib_of ue.ue_view ue.ue_map
            in
            let newc = contrib_of v map in
            accum oldc newc;
            (match old with
            | Some ue ->
                ue.ue_hash <- hash;
                ue.ue_view <- v;
                ue.ue_map <- map;
                ue
            | None -> { ue_name = name; ue_hash = hash; ue_view = v; ue_map = map }))
      units
  in
  (* units dropped from the set: their whole contribution is removed *)
  Hashtbl.iter
    (fun _ ue ->
      incr changed;
      accum (contrib_of ue.ue_view ue.ue_map) empty_contrib)
    old_by_name;
  let has_removals =
    !rem_st <> [] || !rem_pr <> [] || !rem_fn <> [] || !rem_in <> []
  in
  if not has_removals then begin
    (* Patch path: append-only.  Old ids, old list prefixes, and old
       block order all survive — the solver resumes on top of them. *)
    st.s_next <- !next;
    Hashtbl.iter (fun k id -> Hashtbl.replace st.s_key_ids k id) new_keys;
    let nvars = !next in
    let fresh = Array.of_list (List.rev !new_vars) in
    let vars =
      Array.init nvars (fun id ->
          if id < old_nvars then st.s_db.Objfile.vars.(id)
          else fresh.(id - old_nvars))
    in
    refresh_vars vars new_entries;
    let blocks = Array.make nvars [] in
    Array.blit st.s_db.Objfile.blocks 0 blocks 0 old_nvars;
    let by_src = Hashtbl.create 64 in
    List.iter
      (fun (p : Objfile.prim_rec) ->
        Hashtbl.replace by_src p.Objfile.psrc
          (p
          :: Option.value ~default:[]
               (Hashtbl.find_opt by_src p.Objfile.psrc)))
      !add_pr;
    Hashtbl.iter
      (fun src ps -> blocks.(src) <- blocks.(src) @ List.rev ps)
      by_src;
    let seen_fun = Hashtbl.create 64 in
    List.iter
      (fun (f : Objfile.fund_rec) ->
        Hashtbl.replace seen_fun f.Objfile.ffvar ())
      st.s_db.Objfile.fundefs;
    let added_fundefs =
      List.filter
        (fun (f : Objfile.fund_rec) ->
          if Hashtbl.mem seen_fun f.Objfile.ffvar then false
          else begin
            Hashtbl.replace seen_fun f.Objfile.ffvar ();
            true
          end)
        (List.rev !add_fn)
    in
    let consts = ref [] in
    List.iter
      (fun ue ->
        List.iter
          (fun (var, c) -> consts := (ue.ue_map.(var), c) :: !consts)
          ue.ue_view.Objfile.rconsts)
      new_entries;
    let db =
      {
        Objfile.vars;
        keys =
          Hashtbl.fold (fun key id acc -> (id, key) :: acc) st.s_key_ids [];
        statics = st.s_db.Objfile.statics @ List.rev !add_st;
        blocks;
        fundefs = st.s_db.Objfile.fundefs @ added_fundefs;
        indirects = st.s_db.Objfile.indirects @ List.rev !add_in;
        consts = List.rev !consts;
        openworld = None;
        tuhash = None;
        meta = meta_of_units new_entries;
      }
    in
    st.s_db <- db;
    st.s_view <- Objfile.view_of_string (Objfile.write db);
    st.s_units <- new_entries
  end
  else begin
    (* Removal: rebuild by full merge.  Ids are reassigned; the caller's
       solver must start from scratch (d_full_relink tells it so). *)
    let views = List.map snd units in
    let db, _stats, maps, key_ids = link_views_full views in
    st.s_key_ids <- key_ids;
    st.s_next <- Array.length db.Objfile.vars;
    st.s_units <-
      List.map2
        (fun (name, v) (_, map) ->
          { ue_name = name; ue_hash = v.Objfile.rtuhash; ue_view = v; ue_map = map })
        units maps;
    st.s_db <- db;
    st.s_view <- Objfile.view_of_string (Objfile.write db)
  end;
  let added_strings, removed_strings = strings_diff old_view st.s_view in
  let d =
    {
      d_old_nvars = old_nvars;
      d_new_nvars = Array.length st.s_db.Objfile.vars;
      d_changed_units = !changed;
      d_added_statics = List.rev !add_st;
      d_removed_statics = List.rev !rem_st;
      d_added_prims = List.rev !add_pr;
      d_removed_prims = List.rev !rem_pr;
      d_added_fundefs = List.rev !add_fn;
      d_removed_fundefs = List.rev !rem_fn;
      d_added_indirects = List.rev !add_in;
      d_removed_indirects = List.rev !rem_in;
      d_added_strings = added_strings;
      d_removed_strings = removed_strings;
      d_full_relink = has_removals;
    }
  in
  Cla_obs.Metrics.set "link.delta.units_changed" d.d_changed_units;
  Cla_obs.Metrics.set "link.delta.added" (delta_size_added d);
  Cla_obs.Metrics.set "link.delta.removed" (delta_size_removed d);
  Cla_obs.Metrics.set "link.delta.strings_added"
    (List.length d.d_added_strings);
  Cla_obs.Metrics.set "link.delta.pure" (if delta_is_pure_add d then 1 else 0);
  if d.d_full_relink then Cla_obs.Metrics.incr "link.delta.full_relinks";
  Cla_obs.Metrics.set "link.units" (List.length units);
  Cla_obs.Metrics.set "link.vars_out" d.d_new_nvars;
  d)

(** Fresh delta-linker state over an initial unit set: (name, unit view)
    pairs, names unique.  The first delta is everything-added. *)
let state_create (units : (string * Objfile.view) list) : state * delta =
  let st =
    {
      s_key_ids = Hashtbl.create 1024;
      s_units = [];
      s_next = 0;
      s_db = empty_db;
      s_view = Objfile.view_of_string (Objfile.write empty_db);
    }
  in
  let d = relink st units in
  (st, d)
