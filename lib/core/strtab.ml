(** Interned string table — the "string section" of a CLA object file.

    Variable names, type spellings, file names and operator spellings are
    stored once and referenced by index everywhere else ("common strings",
    Figure 4). *)

type t = {
  by_string : (string, int) Hashtbl.t;
  mutable strings : string list;  (* reversed *)
  mutable next : int;
}

let create () = { by_string = Hashtbl.create 256; strings = []; next = 0 }

(** Intern [s], returning its stable index. *)
let intern t s =
  match Hashtbl.find_opt t.by_string s with
  | Some i -> i
  | None ->
      let i = t.next in
      t.next <- i + 1;
      Hashtbl.add t.by_string s i;
      t.strings <- s :: t.strings;
      i

let size t = t.next
let to_array t = Array.of_list (List.rev t.strings)

let write w t =
  let arr = to_array t in
  Binio.u32 w (Array.length arr);
  Array.iter (fun s -> Binio.bytes_ w s) arr

(** Read back as a plain array: readers index it directly. *)
let read r =
  let n = Binio.rcount r in
  Array.init n (fun _ -> Binio.rbytes r)
