(** Baseline: Andersen's analysis with an explicitly transitively-closed
    points-to representation and difference propagation — the style of
    solver the paper improves on (Fähndrich et al. PLDI'98, Sucomplete
    et al.).  Points-to sets are enumerated per node; every element flows
    along every copy edge, which is exactly the O(n·E) propagation cost
    the pre-transitive graph avoids (Section 5's tradeoff discussion).

    Used for (a) cross-checking the pre-transitive solver (the two must
    agree exactly) and (b) the solver-comparison benchmark. *)

type t = {
  view : Objfile.view;
  nvars : int;
  mutable nnodes : int;
  mutable pts : int array array;  (* sorted points-to set per node *)
  mutable delta : Dynarr.t array;  (* pending, unpropagated elements *)
  mutable copy_out : Dynarr.t array;  (* n -> consumers m (m ⊇ n) *)
  mutable load_subs : Dynarr.t array;  (* n -> xs with x = *n *)
  mutable store_subs : Dynarr.t array;  (* n -> ys with *n = y *)
  edge_tbl : Intset.t;
  queue : int Queue.t;
  mutable inqueue : Bytes.t;
  fundef_by_var : (int, Objfile.fund_rec) Hashtbl.t;
  indirect_subs : (int, (int * Objfile.indir_rec) list) Hashtbl.t;
      (* by ptr; each record keeps its global index for link dedup *)
  linked : (int * int, unit) Hashtbl.t;  (* (record index, func) *)
}

let grow st needed =
  let cap = Array.length st.pts in
  if needed > cap then begin
    (* packed edge keys hold 31 bits per endpoint (see Intset.pair_key);
       enforce the bound once, at node allocation *)
    Intset.check_node_bound (needed - 1);
    let cap' = max needed (2 * cap) in
    let arr_arr =
      Array.init cap' (fun i -> if i < cap then st.pts.(i) else [||])
    in
    st.pts <- arr_arr;
    let dyn old = Array.init cap' (fun i -> if i < cap then old.(i) else Dynarr.create ~capacity:2 ()) in
    st.delta <- dyn st.delta;
    st.copy_out <- dyn st.copy_out;
    st.load_subs <- dyn st.load_subs;
    st.store_subs <- dyn st.store_subs;
    let b = Bytes.make cap' '\000' in
    Bytes.blit st.inqueue 0 b 0 cap;
    st.inqueue <- b
  end

let fresh_node st =
  let id = st.nnodes in
  grow st (id + 1);
  st.nnodes <- id + 1;
  id

let enqueue st n =
  if Bytes.get st.inqueue n = '\000' then begin
    Bytes.set st.inqueue n '\001';
    Queue.push n st.queue
  end

(* Add the sorted, deduped [elems] to pts(n); new elements also join the
   delta and [n] is scheduled. *)
let add_elems st n (elems : int array) =
  if Array.length elems > 0 then begin
    let old = st.pts.(n) in
    let out = Array.make (Array.length old + Array.length elems) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    let added = ref false in
    while !i < Array.length old && !j < Array.length elems do
      let x = old.(!i) and y = elems.(!j) in
      if x < y then (out.(!k) <- x; incr i; incr k)
      else if y < x then begin
        out.(!k) <- y;
        Dynarr.push st.delta.(n) y;
        added := true;
        incr j; incr k
      end
      else (out.(!k) <- x; incr i; incr j; incr k)
    done;
    while !i < Array.length old do out.(!k) <- old.(!i); incr i; incr k done;
    while !j < Array.length elems do
      out.(!k) <- elems.(!j);
      Dynarr.push st.delta.(n) elems.(!j);
      added := true;
      incr j; incr k
    done;
    if !added then begin
      st.pts.(n) <- Array.sub out 0 !k;
      enqueue st n
    end
  end

let add_one st n z = add_elems st n [| z |]

(* m ⊇ n; on creation, everything already at n flows to m. *)
let add_copy st ~dst:m ~src:n =
  if m <> n && Intset.add st.edge_tbl (Intset.pair_key m n) then begin
    Dynarr.push st.copy_out.(n) m;
    add_elems st m st.pts.(n)
  end

let create (view : Objfile.view) =
  let nvars = Objfile.n_vars view in
  Intset.check_node_bound (max 0 (nvars - 1));
  let cap = max 16 nvars in
  let st =
    {
      view;
      nvars;
      nnodes = nvars;
      pts = Array.make cap [||];
      delta = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
      copy_out = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
      load_subs = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
      store_subs = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
      edge_tbl = Intset.create 4096;
      queue = Queue.create ();
      inqueue = Bytes.make cap '\000';
      fundef_by_var = Hashtbl.create 256;
      indirect_subs = Hashtbl.create 256;
      linked = Hashtbl.create 256;
    }
  in
  Array.iter
    (fun (f : Objfile.fund_rec) ->
      Hashtbl.replace st.fundef_by_var f.Objfile.ffvar f)
    view.Objfile.rfundefs;
  Array.iteri
    (fun idx (r : Objfile.indir_rec) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt st.indirect_subs r.Objfile.iptr)
      in
      Hashtbl.replace st.indirect_subs r.Objfile.iptr ((idx, r) :: prev))
    view.Objfile.rindirects;
  st

let load_all st =
  let loader = Loader.create st.view in
  Array.iter
    (fun (p : Objfile.prim_rec) -> add_one st p.Objfile.pdst p.Objfile.psrc)
    (Loader.statics loader);
  for v = 0 to st.nvars - 1 do
    List.iter
      (fun (p : Objfile.prim_rec) ->
        if Loader.relevant_to_points_to p then
          match p.Objfile.pkind with
          | Objfile.Paddr -> ()
          | Objfile.Pcopy -> add_copy st ~dst:p.Objfile.pdst ~src:v
          | Objfile.Pload ->
              (* x = *v: subscribe x on the pointer v *)
              Dynarr.push st.load_subs.(v) p.Objfile.pdst
          | Objfile.Pstore ->
              (* *x = v: subscribe the value v on the pointer x *)
              Dynarr.push st.store_subs.(p.Objfile.pdst) v
          | Objfile.Pderef2 ->
              (* *x = *v, split through t: t = *v; *x = t *)
              let tnode = fresh_node st in
              Dynarr.push st.load_subs.(v) tnode;
              Dynarr.push st.store_subs.(p.Objfile.pdst) tnode)
      (Loader.block loader v)
  done

let link_indirect st idx r gv =
  match Hashtbl.find_opt st.fundef_by_var gv with
  | None -> ()
  | Some fd ->
      let key = (idx, gv) in
      if not (Hashtbl.mem st.linked key) then begin
        Hashtbl.replace st.linked key ();
        let n = min r.Objfile.inargs fd.Objfile.farity in
        for i = 0 to n - 1 do
          let garg = fd.Objfile.fargs.(i) and parg = r.Objfile.iargs.(i) in
          if garg >= 0 && parg >= 0 then add_copy st ~dst:garg ~src:parg
        done;
        if r.Objfile.iret >= 0 && fd.Objfile.fret >= 0 then
          add_copy st ~dst:r.Objfile.iret ~src:fd.Objfile.fret
      end

let propagate ?(tick = fun () -> ()) st =
  while not (Queue.is_empty st.queue) do
    tick ();
    let n = Queue.pop st.queue in
    Bytes.set st.inqueue n '\000';
    let d = Dynarr.to_array st.delta.(n) in
    Dynarr.clear st.delta.(n);
    if Array.length d > 0 then begin
      Intsort.sort d (Array.length d);
      (* dedup *)
      let w = ref 1 in
      for r = 1 to Array.length d - 1 do
        if d.(r) <> d.(!w - 1) then begin
          d.(!w) <- d.(r);
          incr w
        end
      done;
      let d = Array.sub d 0 !w in
      (* copy edges: flow the delta to consumers *)
      Dynarr.iter (fun m -> add_elems st m d) st.copy_out.(n);
      (* loads x = *n: subscribe x to each new pointee *)
      Dynarr.iter
        (fun x -> Array.iter (fun z -> add_copy st ~dst:x ~src:z) d)
        st.load_subs.(n);
      (* stores *n = y: each new pointee consumes y *)
      Dynarr.iter
        (fun y -> Array.iter (fun z -> add_copy st ~dst:z ~src:y) d)
        st.store_subs.(n);
      (* indirect calls through n *)
      (match Hashtbl.find_opt st.indirect_subs n with
      | Some rs ->
          Array.iter
            (fun gv -> List.iter (fun (idx, r) -> link_indirect st idx r gv) rs)
            d
      | None -> ())
    end
  done

(** Run the transitively-closed baseline to fixpoint.  [deadline] and
    [cancel] are polled every few hundred worklist pops; aborting between
    pops is safe (the queue is simply discarded with the state). *)
let solve ?(deadline = Cla_resilience.Deadline.never) ?cancel
    (view : Objfile.view) : Solution.t =
  let t_start = Cla_resilience.Deadline.now_s () in
  let pops = ref 0 in
  let progress () =
    Cla_resilience.Progress.make
      ~elapsed_s:(Cla_resilience.Deadline.now_s () -. t_start)
      (Fmt.str "worklist: %d pops" !pops)
  in
  let check () =
    Cla_resilience.Deadline.check ~progress deadline;
    Option.iter (Cla_resilience.Cancel.check ~progress) cancel
  in
  let tick () =
    incr pops;
    if !pops land 255 = 0 then check ()
  in
  check ();
  let st = create view in
  load_all st;
  propagate ~tick st;
  let pool = Lvalset.create_pool () in
  let pts =
    Array.init st.nvars (fun v -> Lvalset.share pool st.pts.(v))
  in
  Solution.create view pts
