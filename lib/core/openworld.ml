(** Open-world havoc synthesis (PIP-style: "Making Andersen's Points-to
    Analysis Sound and Practical for Incomplete C Programs").

    A linked database is {e incomplete} when functions are declared (or
    called) but never defined, or when extern objects are never defined
    by any unit.  Closed-world analysis silently under-approximates such
    programs: pointers flowing into the missing code simply vanish.

    This module makes the missing half explicit with a single {e blob}
    abstract location [β] that absorbs and re-emits every pointer that
    escapes the analyzed fragment:

    - [β = &β], [*β = β], [β = *β] — unknown memory points to unknown
      memory, and unknown code is free to store and load through it;
    - for every declared-but-undefined function [f]: [β = f@i] (arguments
      are absorbed, including the varargs bucket [f@0]) and [f@ret = β]
      (results come back from the unknown), plus a synthesized FUNDEFS
      record so indirect calls that resolve to [f] link against the same
      havoc interface;
    - for every never-defined extern object [x]: [β = &x], [x = β] and
      [β = x] — its address, contents and stores all escape;
    - one synthesized FUNDEFS record for [β] itself and one INDIRECT
      record [( *β)(β, …, β) = β] — unknown code may call any function
      value that escaped (callbacks receive [β] in every parameter and
      their results are absorbed), and analyzed code may call function
      values produced by unknown code.

    Everything synthesized is an ordinary prim / fundef / indirect
    record, so all solvers, provenance printing and the degradation
    ladder treat blob and havoc edges exactly like source-level ones. *)

open Cla_ir

(** How many parameters the unknown external caller havocs on escaped
    callbacks (and the blob's own callable interface accepts).  Callbacks
    with more parameters than this keep the extra ones unhavocked —
    documented in DESIGN.md. *)
let havoc_arity = 8

type report = {
  undefined : string list;  (** declared-but-undefined functions, sorted *)
  escaping : int list;
      (** objects the missing code can name: every file-scope object and
          defined function designator, once anything at all is missing *)
}

(* The function name behind a standardized variable's display name
   ("f@1", "f@ret", "f@..." -> "f").  C identifiers cannot contain '@'. *)
let fun_base (vi : Objfile.varinfo) =
  match String.rindex_opt vi.Objfile.vname '@' with
  | Some i -> String.sub vi.Objfile.vname 0 i
  | None -> vi.Objfile.vname

(** Find what escapes the analyzed fragment.  Undefined functions are
    extern-linkage functions that are used (a [Func] designator or
    standardized [Arg]/[Ret] variable exists) but defined by no unit.

    Escape is all-or-nothing: once {e anything} is missing — an
    undefined function, or an extern object no unit defines — the
    missing code could name any file-scope object (take its address,
    read it, overwrite it) and call or take the address of any defined
    function, so every [Global] object, every file-scope static
    (owner-less [Filelocal]), and every [Func] designator escapes.  This is deliberately coarse: it is what makes the
    body-deletion gate's ⊇ property hold for deletions {e within} a
    unit, where the deleted body saw the unit's statics too
    (DESIGN.md, "Open world"). *)
let detect (db : Objfile.db) : report =
  let defined = Hashtbl.create 64 in
  List.iter
    (fun (f : Objfile.fund_rec) ->
      Hashtbl.replace defined db.Objfile.vars.(f.Objfile.ffvar).Objfile.vname ())
    db.Objfile.fundefs;
  let used = Hashtbl.create 64 in
  let undef_extern = ref false in
  Array.iter
    (fun (vi : Objfile.varinfo) ->
      if vi.Objfile.vlinkage = Var.Extern then
        match vi.Objfile.vkind with
        | Var.Func | Var.Arg _ | Var.Ret ->
            Hashtbl.replace used (fun_base vi) ()
        | Var.Global -> if not vi.Objfile.vdefined then undef_extern := true
        | _ -> ())
    db.Objfile.vars;
  let undefined =
    Hashtbl.fold
      (fun name () acc ->
        if Hashtbl.mem defined name then acc else name :: acc)
      used []
    |> List.sort String.compare
  in
  let escaping = ref [] in
  if undefined <> [] || !undef_extern then
    Array.iteri
      (fun id (vi : Objfile.varinfo) ->
        match vi.Objfile.vkind with
        | Var.Global | Var.Func -> escaping := id :: !escaping
        | Var.Filelocal when vi.Objfile.vowner = "" ->
            (* file-scope statics: same-unit missing code saw them too *)
            escaping := id :: !escaping
        | Var.Field ->
            (* field-based mode shares one object per (struct, field)
               across all instances, so missing code reaches it with
               nothing but its own locals: [struct S s; s.f = ...] *)
            escaping := id :: !escaping
        | _ -> ())
      db.Objfile.vars;
  { undefined; escaping = List.rev !escaping }

(* The interface vars of one undefined function, gathered from the
   variables that exist in the linked database. *)
type iface = {
  mutable i_fvar : int;  (* Func designator, or -1 *)
  mutable i_ret : int;  (* f@ret, or -1 *)
  mutable i_args : (int * int) list;  (* (position, var); 0 = varargs bucket *)
}

(** Rebuild [db] with the blob location and havoc constraints of
    [report] baked into the ordinary sections, and the open-world
    summary attached.  Idempotence guard: raises [Invalid_argument] if
    [db] already carries a summary. *)
let synthesize (db : Objfile.db) (report : report) : Objfile.db =
  if db.Objfile.openworld <> None then
    invalid_arg "Openworld.synthesize: database is already open-world";
  let loc = Loc.make ~file:"<open-world>" ~line:0 ~col:0 in
  let nv = Array.length db.Objfile.vars in
  let extra = ref [] (* appended varinfo records, reversed *) in
  let next = ref nv in
  let add_var vi =
    let id = !next in
    incr next;
    extra := vi :: !extra;
    id
  in
  let blob =
    add_var
      {
        Objfile.vname = "<blob>";
        vkind = Var.Heap;
        vlinkage = Var.Intern;
        vtyp = "";
        vloc = loc;
        vowner = "";
        vdefined = true;
      }
  in
  (* gather the existing interface vars of every undefined function *)
  let ifaces : (string, iface) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun name ->
      Hashtbl.replace ifaces name { i_fvar = -1; i_ret = -1; i_args = [] })
    report.undefined;
  Array.iteri
    (fun id (vi : Objfile.varinfo) ->
      if vi.Objfile.vlinkage = Var.Extern then
        match Hashtbl.find_opt ifaces (fun_base vi) with
        | None -> ()
        | Some i -> (
            match vi.Objfile.vkind with
            | Var.Func -> i.i_fvar <- id
            | Var.Ret -> i.i_ret <- id
            | Var.Arg k -> i.i_args <- (k, id) :: i.i_args
            | _ -> ()))
    db.Objfile.vars;
  (* every undefined function needs a return variable to havoc (an
     address-taken one may never have been called directly) *)
  List.iter
    (fun name ->
      let i = Hashtbl.find ifaces name in
      if i.i_ret < 0 then
        i.i_ret <-
          add_var
            {
              Objfile.vname = name ^ "@ret";
              vkind = Var.Ret;
              vlinkage = Var.Extern;
              vtyp = "";
              vloc = loc;
              vowner = "";
              vdefined = true;
            })
    report.undefined;
  let nv' = !next in
  let vars =
    Array.append db.Objfile.vars (Array.of_list (List.rev !extra))
  in
  let blocks = Array.make nv' [] in
  Array.blit db.Objfile.blocks 0 blocks 0 nv;
  let statics = ref [] in
  let counts = ref db.Objfile.meta.Objfile.mcounts in
  let prim pkind ~dst ~src =
    let p = { Objfile.pkind; pdst = dst; psrc = src; pop = None; ploc = loc } in
    (counts :=
       let c = !counts in
       match pkind with
       | Objfile.Paddr -> { c with Prim.n_addr = c.Prim.n_addr + 1 }
       | Objfile.Pcopy -> { c with Prim.n_copy = c.Prim.n_copy + 1 }
       | Objfile.Pstore -> { c with Prim.n_store = c.Prim.n_store + 1 }
       | Objfile.Pload -> { c with Prim.n_load = c.Prim.n_load + 1 }
       | Objfile.Pderef2 -> { c with Prim.n_deref2 = c.Prim.n_deref2 + 1 });
    p
  in
  let static pkind ~dst ~src = statics := prim pkind ~dst ~src :: !statics in
  let block pkind ~dst ~src =
    blocks.(src) <- blocks.(src) @ [ prim pkind ~dst ~src ]
  in
  (* the blob: unknown memory points to unknown memory, and unknown code
     stores and loads through it at will *)
  static Objfile.Paddr ~dst:blob ~src:blob;
  block Objfile.Pstore ~dst:blob ~src:blob;
  block Objfile.Pload ~dst:blob ~src:blob;
  (* escaping objects: address, contents and stores all escape; a
     function designator only escapes as a value (its interface is then
     havocked by the external-caller INDIRECT record below) *)
  List.iter
    (fun x ->
      static Objfile.Paddr ~dst:blob ~src:x;
      if vars.(x).Objfile.vkind <> Var.Func then begin
        block Objfile.Pcopy ~dst:x ~src:blob;
        block Objfile.Pcopy ~dst:blob ~src:x
      end)
    report.escaping;
  (* undefined functions: arguments absorbed, results re-emitted *)
  let fundefs = ref [] in
  List.iter
    (fun name ->
      let i = Hashtbl.find ifaces name in
      List.iter
        (fun (_, a) -> block Objfile.Pcopy ~dst:blob ~src:a)
        i.i_args;
      block Objfile.Pcopy ~dst:i.i_ret ~src:blob;
      (* a synthesized definition record, so indirect calls that resolve
         to this function link against the same havoc interface; missing
         positional args fall through to the blob itself *)
      if i.i_fvar >= 0 then begin
        let arity =
          List.fold_left (fun m (k, _) -> max m k) 0 i.i_args
        in
        let fargs =
          Array.init arity (fun k ->
              match List.assoc_opt (k + 1) i.i_args with
              | Some a -> a
              | None -> blob)
        in
        fundefs :=
          { Objfile.ffvar = i.i_fvar; farity = arity; fret = i.i_ret; fargs;
            ffloc = loc }
          :: !fundefs
      end)
    report.undefined;
  (* the blob is callable (function values produced by unknown code), and
     the unknown external caller invokes every escaped function value *)
  let blob_args = Array.make havoc_arity blob in
  fundefs :=
    { Objfile.ffvar = blob; farity = havoc_arity; fret = blob;
      fargs = blob_args; ffloc = loc }
    :: !fundefs;
  let ext_call =
    { Objfile.iptr = blob; inargs = havoc_arity; iret = blob;
      iargs = blob_args; iiloc = loc }
  in
  {
    db with
    Objfile.vars;
    blocks;
    statics = db.Objfile.statics @ List.rev !statics;
    fundefs = db.Objfile.fundefs @ List.rev !fundefs;
    indirects = db.Objfile.indirects @ [ ext_call ];
    openworld =
      Some
        {
          Objfile.owblob = blob;
          owundef = report.undefined;
          owescape = report.escaping;
        };
    meta = { db.Objfile.meta with Objfile.mcounts = !counts };
  }
