(** The CLA object file: an indexed database of primitive assignments
    (Section 4, Figure 4 of the paper).

    Layout (all little-endian, varint = LEB128):

    {v
    magic "CLA2"  (version byte is the 4th magic character)
    u32 section_count
    section table: (u8 id, u32 offset, u32 size, u32 crc32) per section
    u32 table_crc32: checksum of section_count + table
                     (CLA1 files carry neither crc field; checks skipped)
    sections:
      STRTAB   common strings (Figure 4's "string section")
      VARS     one record per object: name, kind, linkage, type, decl loc
      GLOBALS  linking information: (var, canonical key) for extern objects
      STATIC   address-of assignments x = &y — always loaded by points-to
      DYNAMIC  per-object blocks: for each object, the primitive
               assignments in which it is the *source*, preceded by an
               index (var -> offset,count) so one lookup finds a block
      FUNDEFS  per defined function: arity and its standardized arg/ret
               variables (used to link indirect calls at analysis time)
      INDIRECT per indirect call site: the pointer, arity, arg/ret vars
      TARGETS  name -> object index, sorted, for the dependence analysis
      META     provenance and Table 2 statistics
      OPENWORLD (optional) blob var, undefined functions, escaping
               externs — present iff linked with --open-world
    v}

    The same format serves as both "object file" (per translation unit) and
    "executable" (after linking) — exactly as in the paper, where the
    linked file "has the same format as the object files". *)

open Cla_ir

(* Format versions.  CLA2 adds a per-section CRC32 to every section-table
   entry; CLA1 files (written before checksums existed) are still read,
   with verification skipped. *)
let magic_v1 = "CLA1"
let magic = "CLA2"
let current_version = 2

(* Section-table entry sizes: (u8 id, u32 off, u32 size) in CLA1, plus a
   u32 crc in CLA2. *)
let entry_size = function 1 -> 9 | _ -> 13

(* Section ids *)
let sec_strtab = 0
let sec_vars = 1
let sec_globals = 2
let sec_static = 3
let sec_dynamic = 4
let sec_fundefs = 5
let sec_indirect = 6
let sec_targets = 7
let sec_meta = 8
let sec_consts = 9
let sec_openworld = 10
let sec_tuhash = 11

(* ------------------------------------------------------------------ *)
(* In-memory database records                                          *)
(* ------------------------------------------------------------------ *)

type varinfo = {
  vname : string;
  vkind : Var.kind;
  vlinkage : Var.linkage;
  vtyp : string;
  vloc : Loc.t;
  vowner : string;  (** enclosing function, or [""] for file scope *)
  vdefined : bool;
      (** false while every occurrence seen so far is an extern
          declaration — the open-world linker treats such objects as
          escaping into the unanalyzed part of the program *)
}

(** The five primitive kinds, in Table 2 column order. *)
type pkind = Pcopy | Paddr | Pstore | Pderef2 | Pload

type prim_rec = {
  pkind : pkind;
  pdst : int;
  psrc : int;
  pop : (string * Strength.t) option;  (** operation provenance on copies *)
  ploc : Loc.t;
}

type fund_rec = {
  ffvar : int;
  farity : int;
  fret : int;
  fargs : int array;  (** standardized argument variables, 1..arity *)
  ffloc : Loc.t;
}

type indir_rec = {
  iptr : int;
  inargs : int;
  iret : int;
  iargs : int array;
  iiloc : Loc.t;
}

type meta = {
  mfiles : string list;  (** source files linked into this database *)
  msource_lines : int;  (** non-blank, non-# source lines *)
  mpreproc_lines : int;
  mcounts : Prim.counts;  (** per-kind totals (Table 2) *)
}

(** Open-world summary attached by [cla link --open-world].  The havoc
    constraints themselves are ordinary records baked into the STATIC /
    DYNAMIC / FUNDEFS / INDIRECT sections (so every solver consumes them
    through the normal machinery); this section records what was
    synthesized and why. *)
type ow = {
  owblob : int;  (** var id of the blob abstract location *)
  owundef : string list;  (** declared-but-undefined function names *)
  owescape : int list;  (** extern objects never defined by any unit *)
}

(** A complete database, ready to serialize. *)
type db = {
  vars : varinfo array;
  keys : (int * string) list;  (** extern var -> canonical linking key *)
  statics : prim_rec list;  (** all [Paddr]; in source order *)
  blocks : prim_rec list array;  (** indexed by source var; no [Paddr] *)
  fundefs : fund_rec list;
  indirects : indir_rec list;
  consts : (int * int64) list;  (** integer constants assigned to objects *)
  openworld : ow option;  (** present iff linked under open-world mode *)
  tuhash : string option;
      (** content hash of the preprocessed TU + compile flags — present
          on per-unit objects produced by {!Compilep}, absent on linked
          databases.  The incremental pipeline compares it to decide
          whether a recompile can be skipped. *)
  meta : meta;
}

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let kind_code = function
  | Var.Global -> 0
  | Var.Filelocal -> 1
  | Var.Temp -> 2
  | Var.Field -> 3
  | Var.Heap -> 4
  | Var.Func -> 5
  | Var.Arg _ -> 6
  | Var.Ret -> 7

let pkind_code = function
  | Pcopy -> 0
  | Paddr -> 1
  | Pstore -> 2
  | Pderef2 -> 3
  | Pload -> 4

let strength_code = function
  | Strength.None_ -> 0
  | Strength.Weak -> 1
  | Strength.Strong -> 2

(* zigzag-encode an int64 into two 32-bit varints *)
let write_i64 w (v : int64) =
  let z = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63) in
  Binio.varint w (Int64.to_int (Int64.logand z 0xFFFFFFFFL));
  Binio.varint w (Int64.to_int (Int64.shift_right_logical z 32))

let read_i64 r =
  let lo = Int64.of_int (Binio.rvarint r) in
  let hi = Int64.of_int (Binio.rvarint r) in
  let z = Int64.logor lo (Int64.shift_left hi 32) in
  Int64.logxor (Int64.shift_right_logical z 1) (Int64.neg (Int64.logand z 1L))

let write_loc w st (l : Loc.t) =
  Binio.varint w (Strtab.intern st l.file);
  Binio.varint w l.line;
  Binio.varint w l.col

(* A prim inside a block: the source is implicit (the block's owner). *)
let write_block_prim w st p =
  let tag =
    pkind_code p.pkind lor (match p.pop with Some _ -> 0x8 | None -> 0)
  in
  Binio.u8 w tag;
  Binio.varint w p.pdst;
  (match p.pop with
  | Some (op, s) ->
      Binio.varint w (Strtab.intern st op);
      Binio.u8 w (strength_code s)
  | None -> ());
  write_loc w st p.ploc

(** Serialize a database to object-file bytes.  [version] defaults to
    the current CLA2 format; [~version:1] writes the legacy checksum-free
    CLA1 layout (kept for compatibility tests and downgrade paths). *)
let write ?(version = current_version) (db : db) : string =
  if version <> 1 && version <> 2 then
    invalid_arg (Fmt.str "Objfile.write: unsupported version %d" version);
  let st = Strtab.create () in
  (* Pre-intern everything so the string table can be emitted first;
     sections are built into their own buffers. *)
  let b_vars = Binio.writer () in
  Binio.u32 b_vars (Array.length db.vars);
  Array.iter
    (fun v ->
      Binio.varint b_vars (Strtab.intern st v.vname);
      Binio.u8 b_vars (kind_code v.vkind);
      (match v.vkind with
      | Var.Arg i -> Binio.varint b_vars i
      | _ -> ());
      (* one byte: bit0 linkage, bit1 set when the object is only ever
         declared (never defined) — files written before the bit existed
         read back as defined, the closed-world assumption *)
      Binio.u8 b_vars
        ((match v.vlinkage with Var.Extern -> 0 | Var.Intern -> 1)
        lor if v.vdefined then 0 else 2);
      Binio.varint b_vars (Strtab.intern st v.vtyp);
      Binio.varint b_vars (Strtab.intern st v.vowner);
      write_loc b_vars st v.vloc)
    db.vars;
  let b_globals = Binio.writer () in
  Binio.u32 b_globals (List.length db.keys);
  List.iter
    (fun (var, key) ->
      Binio.varint b_globals var;
      Binio.varint b_globals (Strtab.intern st key))
    db.keys;
  let b_static = Binio.writer () in
  Binio.u32 b_static (List.length db.statics);
  List.iter
    (fun p ->
      Binio.varint b_static p.pdst;
      Binio.varint b_static p.psrc;
      write_loc b_static st p.ploc)
    db.statics;
  (* dynamic: blob of blocks + index *)
  let b_blob = Binio.writer () in
  let index = ref [] in
  Array.iteri
    (fun src prims ->
      match prims with
      | [] -> ()
      | prims ->
          let off = Binio.wpos b_blob in
          List.iter (fun p -> write_block_prim b_blob st p) prims;
          index := (src, off, List.length prims) :: !index)
    db.blocks;
  let b_dynamic = Binio.writer () in
  let index = List.rev !index in
  Binio.u32 b_dynamic (List.length index);
  List.iter
    (fun (src, off, n) ->
      Binio.varint b_dynamic src;
      Binio.varint b_dynamic off;
      Binio.varint b_dynamic n)
    index;
  Binio.u32 b_dynamic (Binio.wpos b_blob);
  Buffer.add_buffer b_dynamic b_blob;
  let b_fundefs = Binio.writer () in
  Binio.u32 b_fundefs (List.length db.fundefs);
  List.iter
    (fun f ->
      Binio.varint b_fundefs f.ffvar;
      Binio.varint b_fundefs f.farity;
      Binio.varint b_fundefs f.fret;
      Array.iter (fun a -> Binio.varint b_fundefs a) f.fargs;
      write_loc b_fundefs st f.ffloc)
    db.fundefs;
  let b_indirect = Binio.writer () in
  Binio.u32 b_indirect (List.length db.indirects);
  List.iter
    (fun i ->
      Binio.varint b_indirect i.iptr;
      Binio.varint b_indirect i.inargs;
      Binio.varint b_indirect i.iret;
      Array.iter (fun a -> Binio.varint b_indirect a) i.iargs;
      write_loc b_indirect st i.iiloc)
    db.indirects;
  (* targets: (display name, var) sorted by name for binary search *)
  let b_targets = Binio.writer () in
  let targets =
    Array.to_list
      (Array.mapi
         (fun i v -> (v.vname, i))
         db.vars)
    |> List.filter (fun (_, i) ->
           match db.vars.(i).vkind with
           | Var.Temp | Var.Arg _ | Var.Ret -> false
           | _ -> true)
    |> List.sort compare
  in
  Binio.u32 b_targets (List.length targets);
  List.iter
    (fun (name, i) ->
      Binio.varint b_targets (Strtab.intern st name);
      Binio.varint b_targets i)
    targets;
  let b_meta = Binio.writer () in
  Binio.u32 b_meta (List.length db.meta.mfiles);
  List.iter (fun f -> Binio.varint b_meta (Strtab.intern st f)) db.meta.mfiles;
  Binio.varint b_meta db.meta.msource_lines;
  Binio.varint b_meta db.meta.mpreproc_lines;
  let c = db.meta.mcounts in
  Binio.varint b_meta c.Prim.n_copy;
  Binio.varint b_meta c.Prim.n_addr;
  Binio.varint b_meta c.Prim.n_store;
  Binio.varint b_meta c.Prim.n_deref2;
  Binio.varint b_meta c.Prim.n_load;
  let b_consts = Binio.writer () in
  Binio.u32 b_consts (List.length db.consts);
  List.iter
    (fun (var, v) ->
      Binio.varint b_consts var;
      write_i64 b_consts v)
    db.consts;
  let b_openworld =
    Option.map
      (fun ow ->
        let b = Binio.writer () in
        Binio.varint b ow.owblob;
        Binio.u32 b (List.length ow.owundef);
        List.iter (fun n -> Binio.varint b (Strtab.intern st n)) ow.owundef;
        Binio.u32 b (List.length ow.owescape);
        List.iter (fun v -> Binio.varint b v) ow.owescape;
        b)
      db.openworld
  in
  let b_tuhash =
    Option.map
      (fun h ->
        let b = Binio.writer () in
        Binio.varint b (Strtab.intern st h);
        b)
      db.tuhash
  in
  (* strtab last to build, first to emit *)
  let b_strtab = Binio.writer () in
  Strtab.write b_strtab st;
  let sections =
    [
      (sec_strtab, b_strtab); (sec_vars, b_vars); (sec_globals, b_globals);
      (sec_static, b_static); (sec_dynamic, b_dynamic);
      (sec_fundefs, b_fundefs); (sec_indirect, b_indirect);
      (sec_targets, b_targets); (sec_meta, b_meta); (sec_consts, b_consts);
    ]
    @ (match b_openworld with Some b -> [ (sec_openworld, b) ] | None -> [])
    @ match b_tuhash with Some b -> [ (sec_tuhash, b) ] | None -> []
  in
  let header = Binio.writer () in
  Buffer.add_string header (if version = 1 then magic_v1 else magic);
  Binio.u32 header (List.length sections);
  let table_pos = Binio.wpos header in
  let esize = entry_size version in
  List.iter
    (fun (id, _) ->
      Binio.u8 header id;
      Binio.u32 header 0;
      Binio.u32 header 0;
      if version >= 2 then Binio.u32 header 0)
    sections;
  (* v2: checksum over the table itself (count + entries), so corruption
     of the header — a flipped section count or id — cannot silently
     drop or retarget sections. *)
  if version >= 2 then Binio.u32 header 0;
  let out = Buffer.create (1 lsl 16) in
  Buffer.add_buffer out header;
  let offsets =
    List.map
      (fun (id, b) ->
        let off = Buffer.length out in
        Buffer.add_buffer out b;
        (id, off, Buffer.length b))
      sections
  in
  let bytes = Buffer.to_bytes out in
  let data = Bytes.unsafe_to_string bytes in
  List.iteri
    (fun i (_, off, size) ->
      let entry = table_pos + (i * esize) in
      Binio.patch_u32 bytes ~pos:(entry + 1) off;
      Binio.patch_u32 bytes ~pos:(entry + 5) size;
      if version >= 2 then
        (* [data] aliases [bytes], already carrying the section payloads;
           only the table itself is still being patched. *)
        Binio.patch_u32 bytes ~pos:(entry + 9)
          (Crc32.sub data ~pos:off ~len:size))
    offsets;
  if version >= 2 then begin
    let table_end = table_pos + (List.length sections * esize) in
    Binio.patch_u32 bytes ~pos:table_end
      (Crc32.sub data ~pos:4 ~len:(table_end - 4))
  end;
  data

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

(** A view over serialized object-file bytes.  Cheap sections (vars,
    globals, static, fundefs, indirect, targets, meta) are decoded eagerly;
    the DYNAMIC blocks — the bulk of the file — are decoded on demand via
    {!read_block}, which is what makes the load-on-demand /
    load-and-throw-away strategies of Section 6 possible. *)
type view = {
  data : string;
  rversion : int;  (** format version the file was written with (1 or 2) *)
  strings : string array;
  rvars : varinfo array;
  rkeys : (int * string) list;
  rstatics : prim_rec array;
  block_index : (int * int) array;
      (** per var: (absolute offset, count), or [(-1, 0)] if no block *)
  blob_limit : int;
      (** absolute end of the DYNAMIC blob — block reads never cross it *)
  rfundefs : fund_rec array;
  rindirects : indir_rec array;
  rtargets : (string * int) array;  (** sorted by name *)
  rconsts : (int * int64) list;
  ropenworld : ow option;  (** present iff linked under open-world mode *)
  rtuhash : string option;  (** per-unit content hash, if recorded *)
  rmeta : meta;
}

let decode_kind r =
  match Binio.ru8 r with
  | 0 -> Var.Global
  | 1 -> Var.Filelocal
  | 2 -> Var.Temp
  | 3 -> Var.Field
  | 4 -> Var.Heap
  | 5 -> Var.Func
  | 6 -> Var.Arg (Binio.rvarint r)
  | 7 -> Var.Ret
  | n -> raise (Binio.Corrupt (Fmt.str "bad var kind %d" n))

let decode_strength = function
  | 0 -> Strength.None_
  | 1 -> Strength.Weak
  | 2 -> Strength.Strong
  | n -> raise (Binio.Corrupt (Fmt.str "bad strength %d" n))

(* Checked string-table access: a corrupt index must surface as [Corrupt],
   never as [Invalid_argument] from a raw array access. *)
let str strings i =
  if i >= Array.length strings then
    raise (Binio.Corrupt (Fmt.str "string index %d out of range" i))
  else strings.(i)

let read_loc r strings =
  let file = str strings (Binio.rvarint r) in
  let line = Binio.rvarint r in
  let col = Binio.rvarint r in
  Loc.make ~file ~line ~col

let decode_pkind = function
  | 0 -> Pcopy
  | 1 -> Paddr
  | 2 -> Pstore
  | 3 -> Pderef2
  | 4 -> Pload
  | n -> raise (Binio.Corrupt (Fmt.str "bad prim kind %d" n))

type section_entry = {
  sec_id : int;
  sec_off : int;
  sec_size : int;
  sec_crc : int option;  (** [None] for checksum-free CLA1 files *)
}

(* Parse and fully validate the header: magic, section table bounds
   (entries inside the file, past the header, non-overlapping), and —
   for CLA2 — the table's own checksum.  Shared by [view_of_string] and
   [section_table] so the parallel verifier walks exactly the same
   validated table as the sequential loader. *)
let parse_header (data : string) =
  let len = String.length data in
  let version =
    if len < 8 then raise (Binio.Corrupt "not a CLA object file (too short)")
    else if String.sub data 0 4 = magic then 2
    else if String.sub data 0 4 = magic_v1 then 1
    else raise (Binio.Corrupt "not a CLA object file (bad magic)")
  in
  let r = Binio.reader ~pos:4 data in
  let esize = entry_size version in
  let nsec = Binio.rcount ~min_size:esize r in
  let table_end = 8 + (nsec * esize) in
  (* v2 appends a u32 checksum of the table after the entries *)
  let header_end = if version >= 2 then table_end + 4 else table_end in
  let sections = Hashtbl.create 16 in
  let entries = ref [] in
  for _ = 1 to nsec do
    let id = Binio.ru8 r in
    let off = Binio.ru32 r in
    let size = Binio.ru32 r in
    let crc = if version >= 2 then Some (Binio.ru32 r) else None in
    if Hashtbl.mem sections id then
      raise (Binio.Corrupt (Fmt.str "duplicate section %d" id));
    if off < header_end || off + size > len then
      raise
        (Binio.Corrupt
           (Fmt.str "section %d out of range (%d+%d of %d)" id off size len));
    Hashtbl.replace sections id (off, size, crc);
    entries := { sec_id = id; sec_off = off; sec_size = size; sec_crc = crc }
               :: !entries
  done;
  (* the table checksum covers the count and every entry: a flipped
     section count, id, offset or size is caught here even when the
     mutated table would otherwise parse cleanly *)
  if version >= 2 && Binio.ru32 r <> Crc32.sub data ~pos:4 ~len:(table_end - 4)
  then raise (Binio.Corrupt "section table checksum mismatch");
  (* sections may be laid out in any order but must not overlap *)
  let sorted =
    List.sort (fun a b -> compare a.sec_off b.sec_off) !entries
  in
  ignore
    (List.fold_left
       (fun prev_end e ->
         if e.sec_off < prev_end then
           raise (Binio.Corrupt (Fmt.str "section %d overlaps" e.sec_id));
         e.sec_off + e.sec_size)
       header_end sorted);
  (version, sections, List.rev !entries)

let section_table data =
  let _, _, entries = parse_header data in
  entries

(** Checksum one section against its table entry (no-op for CLA1
    entries, which carry no checksum).  Raises {!Binio.Corrupt} on
    mismatch.  Pure over immutable bytes, so entries of the same file
    may be verified from concurrent domains. *)
let verify_section data e =
  match e.sec_crc with
  | None -> ()
  | Some crc ->
      if Crc32.sub data ~pos:e.sec_off ~len:e.sec_size <> crc then
        raise
          (Binio.Corrupt (Fmt.str "section %d checksum mismatch" e.sec_id))

(** Parse the header and eager sections of object-file bytes.

    Defensive by design: the section table is bounds-checked (entries
    must lie inside the file, past the header, and must not overlap),
    every record count is checked against the bytes that remain, and —
    for CLA2 files — each section's CRC32 is verified the first time it
    is opened.  Any violation raises {!Binio.Corrupt}; no input may
    produce [Invalid_argument], out-of-bounds access, or an attempted
    huge allocation.

    [~verify:false] skips the per-section checksums — for callers that
    have already verified them, e.g. {!Loader.view_par}, which fans the
    CRC sweep out across a domain pool before parsing. *)
let view_of_string ?(verify = true) (data : string) : view =
  let version, sections, _ = parse_header data in
  let verified = Array.make 256 false in
  let sec id =
    match Hashtbl.find_opt sections id with
    | Some (off, size, crc) ->
        (if verify && not verified.(id) then begin
           (match crc with
           | Some crc when Crc32.sub data ~pos:off ~len:size <> crc ->
               raise
                 (Binio.Corrupt (Fmt.str "section %d checksum mismatch" id))
           | _ -> ());
           verified.(id) <- true
         end);
        Binio.reader ~pos:off ~limit:(off + size) data
    | None -> raise (Binio.Corrupt (Fmt.str "missing section %d" id))
  in
  let strings = Strtab.read (sec sec_strtab) in
  let r = sec sec_vars in
  let nvars = Binio.rcount ~min_size:8 r in
  let rvars =
    Array.init nvars (fun _ ->
        let vname = str strings (Binio.rvarint r) in
        let vkind = decode_kind r in
        let lb = Binio.ru8 r in
        let vlinkage = if lb land 1 = 0 then Var.Extern else Var.Intern in
        let vdefined = lb land 2 = 0 in
        let vtyp = str strings (Binio.rvarint r) in
        let vowner = str strings (Binio.rvarint r) in
        let vloc = read_loc r strings in
        { vname; vkind; vlinkage; vtyp; vloc; vowner; vdefined })
  in
  (* Object ids decoded from here on must index [rvars]. *)
  let check_var what v =
    if v >= nvars then
      raise (Binio.Corrupt (Fmt.str "%s id %d out of range (%d objects)" what v nvars))
    else v
  in
  let r = sec sec_globals in
  let nkeys = Binio.rcount ~min_size:2 r in
  let rkeys =
    List.init nkeys (fun _ ->
        let var = check_var "extern" (Binio.rvarint r) in
        let key = str strings (Binio.rvarint r) in
        (var, key))
  in
  let r = sec sec_static in
  let nstat = Binio.rcount ~min_size:5 r in
  let rstatics =
    Array.init nstat (fun _ ->
        let pdst = check_var "static dst" (Binio.rvarint r) in
        let psrc = check_var "static src" (Binio.rvarint r) in
        let ploc = read_loc r strings in
        { pkind = Paddr; pdst; psrc; pop = None; ploc })
  in
  let r = sec sec_dynamic in
  let nblocks = Binio.rcount ~min_size:3 r in
  let block_index = Array.make nvars (-1, 0) in
  let entries =
    Array.init nblocks (fun _ ->
        let src = check_var "block" (Binio.rvarint r) in
        let off = Binio.rvarint r in
        let n = Binio.rvarint r in
        (src, off, n))
  in
  let blob_size = Binio.ru32 r in
  let blob_start = r.Binio.pos in
  if blob_start + blob_size > r.Binio.limit then
    raise (Binio.Corrupt "dynamic blob larger than its section");
  let blob_limit = blob_start + blob_size in
  Array.iter
    (fun (src, off, n) ->
      (* each record is at least 5 bytes (tag, dst, 3-varint loc) *)
      if off > blob_size || n * 5 > blob_size - off then
        raise
          (Binio.Corrupt (Fmt.str "block of object %d outside the blob" src));
      block_index.(src) <- (blob_start + off, n))
    entries;
  let r = sec sec_fundefs in
  let nfun = Binio.rcount ~min_size:6 r in
  let check_args r n =
    if n * 1 > r.Binio.limit - r.Binio.pos then
      raise (Binio.Corrupt (Fmt.str "implausible arity %d" n))
    else n
  in
  let rfundefs =
    Array.init nfun (fun _ ->
        let ffvar = check_var "fundef" (Binio.rvarint r) in
        let farity = check_args r (Binio.rvarint r) in
        let fret = check_var "fundef ret" (Binio.rvarint r) in
        let fargs =
          Array.init farity (fun _ -> check_var "fundef arg" (Binio.rvarint r))
        in
        let ffloc = read_loc r strings in
        { ffvar; farity; fret; fargs; ffloc })
  in
  let r = sec sec_indirect in
  let nind = Binio.rcount ~min_size:6 r in
  let rindirects =
    Array.init nind (fun _ ->
        let iptr = check_var "indirect ptr" (Binio.rvarint r) in
        let inargs = check_args r (Binio.rvarint r) in
        let iret = check_var "indirect ret" (Binio.rvarint r) in
        let iargs =
          Array.init inargs (fun _ ->
              check_var "indirect arg" (Binio.rvarint r))
        in
        let iiloc = read_loc r strings in
        { iptr; inargs; iret; iargs; iiloc })
  in
  let r = sec sec_targets in
  let ntgt = Binio.rcount ~min_size:2 r in
  let rtargets =
    Array.init ntgt (fun _ ->
        let name = str strings (Binio.rvarint r) in
        let var = check_var "target" (Binio.rvarint r) in
        (name, var))
  in
  let rconsts =
    match Hashtbl.find_opt sections sec_consts with
    | None -> [] (* object files written before the section existed *)
    | Some _ ->
        let r = sec sec_consts in
        let n = Binio.rcount ~min_size:3 r in
        List.init n (fun _ ->
            let var = check_var "const" (Binio.rvarint r) in
            let v = read_i64 r in
            (var, v))
  in
  let ropenworld =
    match Hashtbl.find_opt sections sec_openworld with
    | None -> None (* closed-world file *)
    | Some _ ->
        let r = sec sec_openworld in
        let owblob = check_var "open-world blob" (Binio.rvarint r) in
        let nundef = Binio.rcount ~min_size:1 r in
        let owundef =
          List.init nundef (fun _ -> str strings (Binio.rvarint r))
        in
        let nesc = Binio.rcount ~min_size:1 r in
        let owescape =
          List.init nesc (fun _ ->
              check_var "open-world escape" (Binio.rvarint r))
        in
        Some { owblob; owundef; owescape }
  in
  let rtuhash =
    match Hashtbl.find_opt sections sec_tuhash with
    | None -> None (* linked databases and pre-incremental objects *)
    | Some _ ->
        let r = sec sec_tuhash in
        Some (str strings (Binio.rvarint r))
  in
  let r = sec sec_meta in
  let nfiles = Binio.rcount r in
  let mfiles = List.init nfiles (fun _ -> str strings (Binio.rvarint r)) in
  let msource_lines = Binio.rvarint r in
  let mpreproc_lines = Binio.rvarint r in
  let n_copy = Binio.rvarint r in
  let n_addr = Binio.rvarint r in
  let n_store = Binio.rvarint r in
  let n_deref2 = Binio.rvarint r in
  let n_load = Binio.rvarint r in
  {
    data;
    rversion = version;
    strings;
    rvars;
    rkeys;
    rstatics;
    block_index;
    blob_limit;
    rfundefs;
    rindirects;
    rtargets;
    rconsts;
    ropenworld;
    rtuhash;
    rmeta =
      {
        mfiles;
        msource_lines;
        mpreproc_lines;
        mcounts = { Prim.n_copy; n_addr; n_store; n_deref2; n_load };
      };
  }

(** Decode the dynamic block of [src]: the primitive assignments in which
    [src] is the source.  Each call re-reads from the underlying bytes —
    callers are free to discard the result and call again (the
    load-and-throw-away strategy). *)
let read_block (v : view) (src : int) : prim_rec list =
  let off, n = v.block_index.(src) in
  if off < 0 then []
  else begin
    let nvars = Array.length v.rvars in
    let r = Binio.reader ~pos:off ~limit:v.blob_limit v.data in
    List.init n (fun _ ->
        let tag = Binio.ru8 r in
        let pkind = decode_pkind (tag land 0x7) in
        let pdst = Binio.rvarint r in
        if pdst >= nvars then
          raise (Binio.Corrupt (Fmt.str "block dst %d out of range" pdst));
        let pop =
          if tag land 0x8 <> 0 then begin
            let op = str v.strings (Binio.rvarint r) in
            let s = decode_strength (Binio.ru8 r) in
            Some (op, s)
          end
          else None
        in
        let ploc = read_loc r v.strings in
        { pkind; pdst; psrc = src; pop; ploc })
  end

let has_block (v : view) (src : int) = fst v.block_index.(src) >= 0
let n_vars (v : view) = Array.length v.rvars

(** Look up objects by display name (the "target section" hashtable of
    Figure 4; here a sorted array with binary search). *)
let find_targets (v : view) name : int list =
  let lo = ref 0 and hi = ref (Array.length v.rtargets) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (fst v.rtargets.(mid)) name < 0 then lo := mid + 1
    else hi := mid
  done;
  let acc = ref [] in
  let i = ref !lo in
  while
    !i < Array.length v.rtargets && String.equal (fst v.rtargets.(!i)) name
  do
    acc := snd v.rtargets.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* File helpers                                                        *)
(* ------------------------------------------------------------------ *)

let save path (db : db) =
  let data = write db in
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let load path : view =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  view_of_string data

(** Like {!load}, but surfacing corruption and I/O failures as a
    structured {!Diag.t} naming the offending file. *)
let load_result path : (view, Diag.t) result =
  Diag.capture ~file:path ~phase:Diag.Load (fun () -> load path)
