(** Baseline: unification-based (Steensgaard-style) points-to analysis —
    near-linear time, coarser results.  The computed sets must be
    supersets of Andersen's, a property the test suite checks.

    Exposed pieces beyond {!solve} support white-box tests. *)

type t

val create : Objfile.view -> t

(** Run the unification passes (assignments, then iterated indirect-call
    linking).  [tick] is called between constraint blocks (the
    deadline/cancel poll point). *)
val process : ?tick:(unit -> unit) -> t -> unit

(** [pts(x)] is every address-taken object in the class [x] points to.
    [deadline]/[cancel] are polled between constraint blocks; near-linear
    cost makes this the degradation ladder's always-answers final rung,
    but a cancel token can still stop it. *)
val solve :
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  Objfile.view ->
  Solution.t
