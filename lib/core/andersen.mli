(** Andersen's analysis over the pre-transitive graph, with demand-driven
    loading from the CLA database — the paper's headline configuration.

    Most callers want {!solve}; {!init} and {!pass} expose the iteration
    (Figure 5's outer loop) for benchmarks that meter each pass. *)

(** A retained complex assignment.  [Kstore]: for each new [&z] in
    [getLvals(cptr)], add edge [z -> cother].  [Kload]: add
    [cother -> z] ([cother] is the dereference node [n_*y]).  [cseen]
    remembers the set processed last pass (difference propagation).
    [corigin] is the block the record was decoded from — the unit of
    eviction under a loader budget. *)
type ckind = Kstore | Kload

type complex = {
  ckind : ckind;
  cptr : int;
  cother : int;
  corigin : int;
  mutable cseen : Lvalset.t;
}

(** In-flight analysis state. *)
type t = {
  g : Pretrans.t;  (** the pre-transitive constraint graph *)
  mutable loader : Loader.t;  (** replaced wholesale by {!resume} *)
  mutable view : Objfile.view;
  demand : bool;
  mutable active : Bytes.t;
  mutable complexes : complex list;  (** kept in core (Section 6) *)
  mutable n_complex : int;
  deref_nodes : (int, int) Hashtbl.t;
  deref2_tnodes : (int * int, int) Hashtbl.t;
      (** memoized split nodes of [*x = *y], so re-loading an evicted
          block reuses nodes instead of growing the graph *)
  fundef_by_var : (int, Objfile.fund_rec) Hashtbl.t;
  linked : (int, unit) Hashtbl.t;
  mutable passes : int;
  retained_by_block : (int, Objfile.prim_rec list) Hashtbl.t;
      (** complex assignments kept in core, grouped by origin block *)
  mutable linked_copies : (int * int * Cla_ir.Loc.t) list;
  mutable iseen : Lvalset.t array;
      (** per indirect record, positional; {!resume} extends it — the
          delta linker keeps the old indirect list as an exact prefix *)
  mutable var_node : int array;
      (** var id -> graph node; [[||]] = identity.  Populated by
          {!resume} when the variable space grows (new var ids would
          collide with the deref/split nodes past the old [nvars]).
          Locations — base elements, lval-set members, {!Solution}
          indices — always stay raw var ids; only node positions map. *)
  mutable seed_log : int list ref option;
      (** while a constraint delta is applied: structural-change seeds
          for {!Pretrans.invalidate_reaching} *)
  mutable pass_log : pass_stats list;
      (** per-pass convergence counters, reverse order *)
  mutable pending_evict : int list;
      (** blocks evicted by the loader since the last pass boundary *)
  evicted : (int, unit) Hashtbl.t;
      (** blocks whose complexes are currently out of core *)
  deadline : Cla_resilience.Deadline.t;
  cancel : Cla_resilience.Cancel.t option;
  t_start : float;  (** monotonic start, for abort progress reports *)
  mutable par_scratch : Pretrans.scratch array;
      (** per-domain traversal scratch for the parallel query fan-out,
          kept across passes (one per pool chunk, grown on demand) *)
}

(** Convergence counters for one pass of Figure 5's loop. *)
and pass_stats = {
  ps_pass : int;  (** 1-based pass number *)
  ps_edges_added : int;
  ps_lvals_discovered : int;
      (** new lvals fed to difference propagation (complex assignments
          and indirect-call linking) *)
  ps_unified : int;  (** nodes unified away by cycle elimination *)
  ps_queries : int;  (** [get_lvals] calls issued during the pass *)
  ps_changed : bool;
  ps_wall_s : float;  (** wall-clock time of the pass *)
}

(** Load the static section (and, in demand mode, the blocks it activates)
    and set up the iteration state.  [demand=false] loads every block up
    front.  [budget] bounds the retained assignments kept in core (see
    {!Loader.create}): blocks evicted by the loader are dropped at pass
    boundaries and transparently re-loaded before the next pass, so every
    pass still checks the complete constraint set and the fixpoint — a
    pass with no change — is identical to the unbounded run.

    [deadline] and [cancel] make the iteration abortable: both tokens
    are polled at every pass boundary and, via the {!Pretrans}
    interruption hook, inside the [get_lvals] traversal loops.  On
    expiry or cancellation the analysis unwinds with a typed
    {!Cla_resilience.Deadline.Timed_out} /
    {!Cla_resilience.Cancel.Cancelled} carrying the pass count and the
    last pass's convergence counters — never a partial solution. *)
val init :
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  Objfile.view ->
  t

(** One pass of Figure 5's iteration algorithm (complex assignments, then
    analysis-time indirect-call linking).  Returns [true] if the graph
    changed — iterate until it does not.

    [pool] (width ≥ 2) fans the pass's [get_lvals] roots — all known at
    pass start, since the complexes list is an iteration snapshot —
    across the pool as read-only traversals, each chunk on its own
    {!Pretrans.scratch}; cycle unifications and pass-cache writes are
    then applied in a deterministic single-threaded merge
    ({!Pretrans.commit_scratches}), so the sequential pass body runs
    unchanged with every query a cache hit.  Pass counts may differ
    from a sequential run (the fan-out answers from the pass-start
    snapshot); the fixpoint — and the extracted {!Solution} — is
    identical.

    [keep_memos] is the delta-solve resume's first pass: the
    reachability memos surviving from the previous fixpoint are kept
    instead of flushed, relying on {!Pretrans.invalidate_reaching}
    having dropped every memo the delta could affect ({!resume} sets
    this up; do not pass it by hand).  It also skips the parallel
    fan-out, which requires an empty pass cache. *)
val pass : ?pool:Cla_par.Pool.t -> ?keep_memos:bool -> t -> bool

type result = {
  solution : Solution.t;
  passes : int;
  loader_stats : Loader.stats;
  graph_stats : Pretrans.stats;
  pass_log : pass_stats list;
      (** per-pass convergence counters, first pass first *)
  retained : Objfile.prim_rec list;
      (** complex assignments kept in core; input to the dependence
          analysis *)
  linked_copies : (int * int * Cla_ir.Loc.t) list;
      (** analysis-time copies added while linking indirect calls *)
  alloc_bytes : float;
      (** bytes allocated on the OCaml heap over the whole solve
          ([Gc.allocated_bytes] delta); published as
          [analyze.alloc_bytes] *)
}

(** Publish a result into the metrics registry (default
    {!Cla_obs.Metrics.default}): [analyze.passes], [analyze.alloc_bytes],
    [analyze.pretrans.*], [analyze.pool.*], [load.blocks.*], and the
    per-pass convergence series [analyze.pass.*].  {!solve} calls this
    itself. *)
val publish_result : ?reg:Cla_obs.Metrics.t -> result -> unit

(** Run to fixpoint and extract the points-to set of every variable.
    Recorded as an ["analyze"] span (children ["analyze.init"], one
    ["analyze.pass"] per pass, ["analyze.extract"]); the result is
    published into the metrics registry.  [pool] parallelizes each
    pass's query fan-out (see {!pass}); the returned solution is
    identical at any pool width. *)
val solve :
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  ?pool:Cla_par.Pool.t ->
  Objfile.view ->
  result

(** Like {!solve}, but also return the iteration state so a later
    constraint delta can be solved incrementally with {!resume}. *)
val solve_state :
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  ?pool:Cla_par.Pool.t ->
  Objfile.view ->
  t * result

(** {1 Delta solving}

    [resume st ~view ~delta] re-solves after a {!Linkp.relink} produced
    [view] and a {b pure-add} [delta] against the view [st] was solved
    on.  The previous fixpoint's graph, complexes, difference-propagation
    sets and — crucially — the reachability memos of the final
    extraction sweep all survive; only the memos the delta can actually
    affect are invalidated (reverse reachability from the added
    constraints' endpoints), and the first resumed pass runs without the
    usual flush.  The result's [solution] is indexed by the NEW view's
    variable ids and equals a from-scratch {!solve} of [view].

    Returns [None] — bumping [pretrans.delta.fallbacks], with the
    reason in [pretrans.delta.fallback_reason] — when the resume cannot
    be done soundly: the delta removes constraints or forced a full
    relink; it was not computed against [st]'s view; [st]'s loader is
    budgeted; or a FUNDEF was added for a pre-existing variable (an
    indirect call's difference propagation may already have consumed
    that variable and would never re-examine it).  The caller then
    re-solves from scratch.  On [Some _], [st] is updated in place and
    can absorb further deltas; on [None] it is unchanged and still
    valid for its old view. *)
val resume :
  ?pool:Cla_par.Pool.t ->
  t ->
  view:Objfile.view ->
  delta:Linkp.delta ->
  result option
