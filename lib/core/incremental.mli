(** The incremental compile–link–analyze driver: persistent pipeline
    state that absorbs source edits.

    {!create} compiles, links and solves a source set from scratch while
    keeping the three pieces of reusable state: the per-unit compile
    cache (TU content hash -> unit view, probed by {!Compilep.tu_hash}),
    the delta linker ({!Linkp.state}) and the solver's iteration state
    ({!Andersen.t}).  Each {!update} then skips unchanged units
    ([compile.cache.hits]), patches the linked view
    ({!Linkp.relink}) and — on a pure-add constraint delta — resumes
    the solver ({!Andersen.resume}) instead of re-solving.  Any delta
    the resume cannot handle soundly falls back to a from-scratch solve
    behind [pretrans.delta.fallbacks].

    Soundness invariant: after every {!update}, {!solution} is
    {!Solution.equal} to a from-scratch solve of the same sources —
    incrementality changes the wall-clock, never the answer. *)

type t

(** Per-{!update} accounting, for callers that report or gate on the
    incremental path being taken. *)
type stats = {
  sources : int;  (** units in the set *)
  cache_hits : int;  (** units reused via TU-hash probe *)
  cache_misses : int;  (** units recompiled *)
  resumed : bool;  (** solver resumed (vs from-scratch fallback) *)
  delta_pure : bool;  (** link delta was pure-add with stable ids *)
  delta_added : int;  (** added constraints across sections *)
  delta_removed : int;
  wall_compile_s : float;
  wall_link_s : float;
  wall_solve_s : float;
}

(** [create ?options ?pool ?units sources] — full build of
    [(file, source)] pairs (file names unique; they key the compile
    cache and the delta linker's unit matching).  [pool] parallelizes
    the solver's query fan-out.  [units] are pre-compiled unit views
    (e.g. [.clo] files the caller loads and revalidates itself —
    {!Loader.load_file_cached}) linked after the compiled sources; they
    bypass the compile cache and its hit/miss counters.  With a
    non-default [drop_bodies] the compile cache disables itself (the
    predicate cannot be content-hashed). *)
val create :
  ?options:Compilep.options ->
  ?pool:Cla_par.Pool.t ->
  ?units:(string * Objfile.view) list ->
  (string * string) list ->
  t * stats

(** Re-sync to an edited source set.  Files absent from [sources] (and
    [units]) are unlinked (a removal — the solver falls back to
    scratch); new files are compiled and linked in; everything else is
    probed by content hash.  [units] follow {!create}'s contract. *)
val update : t -> ?units:(string * Objfile.view) list -> (string * string) list -> stats

(** The current points-to solution, indexed by the current linked
    view's variable ids. *)
val solution : t -> Solution.t

(** The full solver result behind {!solution}. *)
val result : t -> Andersen.result

(** The current linked view. *)
val view : t -> Objfile.view

val pp_stats : Format.formatter -> stats -> unit
