(** The CLA object file: an indexed database of primitive assignments
    (Section 4, Figure 4 of the paper).

    One format serves as both "object file" (per translation unit) and
    "executable" (after linking), exactly as in the paper.  The layout is
    COFF/ELF-like — a section table followed by sections — so that new
    sections can be added without rewriting existing analyses:

    - {b STRTAB}: interned common strings;
    - {b VARS}: one record per object (name, kind, linkage, type, owner
      function, declaration site);
    - {b GLOBALS}: linking information — the canonical key of every
      extern object;
    - {b STATIC}: the address-of assignments [x = &y], always loaded by
      points-to analysis;
    - {b DYNAMIC}: per-object blocks — for each object, the primitive
      assignments in which it is the {e source} — preceded by an index so
      one lookup finds a block;
    - {b FUNDEFS} / {b INDIRECT}: standardized argument/return variables
      of function definitions and indirect call sites, linked at analysis
      time;
    - {b TARGETS}: name → object index, for the dependence analysis;
    - {b META}: provenance and Table 2 statistics;
    - {b OPENWORLD} (optional): the open-world summary — blob variable,
      undefined functions, escaping externs — present iff the database
      was linked with [--open-world]. *)

open Cla_ir

(* ------------------------------------------------------------------ *)
(** {1 In-memory database} *)

type varinfo = {
  vname : string;  (** display name ([f@1] for standardized arguments) *)
  vkind : Var.kind;
  vlinkage : Var.linkage;
  vtyp : string;  (** pretty-printed declared type, or [""] *)
  vloc : Loc.t;  (** declaration site *)
  vowner : string;  (** enclosing function for locals, or [""] *)
  vdefined : bool;
      (** false while the object is only ever declared ([extern] without
          initializer); files written before the bit existed read back as
          defined *)
}

(** The five primitive kinds, in Table 2 column order. *)
type pkind = Pcopy | Paddr | Pstore | Pderef2 | Pload

type prim_rec = {
  pkind : pkind;
  pdst : int;
  psrc : int;
  pop : (string * Strength.t) option;
      (** operation provenance on copies ([x =(+) y]) *)
  ploc : Loc.t;
}

type fund_rec = {
  ffvar : int;  (** the function object *)
  farity : int;
  fret : int;  (** standardized return variable, or [-1] *)
  fargs : int array;  (** standardized argument variables (may hold [-1]) *)
  ffloc : Loc.t;
}

type indir_rec = {
  iptr : int;  (** the called pointer *)
  inargs : int;
  iret : int;
  iargs : int array;
  iiloc : Loc.t;
}

type meta = {
  mfiles : string list;
  msource_lines : int;  (** non-blank, non-# source lines (Table 2) *)
  mpreproc_lines : int;
  mcounts : Prim.counts;  (** per-kind totals (Table 2) *)
}

(** Open-world summary attached by the linker's [Open_world] policy.
    The havoc constraints themselves are ordinary prim/fundef/indirect
    records baked into the normal sections — every solver consumes them
    through the standard machinery; this summary records what was
    synthesized and why. *)
type ow = {
  owblob : int;  (** var id of the blob abstract location *)
  owundef : string list;  (** declared-but-undefined function names *)
  owescape : int list;  (** extern objects never defined by any unit *)
}

(** A complete database, ready to serialize.  Produced by the compile
    phase, the linker, and the {!Transform} optimizers. *)
type db = {
  vars : varinfo array;
  keys : (int * string) list;  (** extern object → canonical linking key *)
  statics : prim_rec list;  (** all [Paddr], in source order *)
  blocks : prim_rec list array;  (** indexed by source object *)
  fundefs : fund_rec list;
  indirects : indir_rec list;
  consts : (int * int64) list;
      (** integer constants assigned directly to objects — the paper's
          constants section, used by the narrowing checker *)
  openworld : ow option;  (** present iff linked under open-world mode *)
  tuhash : string option;
      (** content hash of the preprocessed TU + compile flags — present
          on per-unit objects produced by {!Compilep}, absent on linked
          databases.  The incremental pipeline compares it to skip
          recompiling unchanged units. *)
  meta : meta;
}

(* ------------------------------------------------------------------ *)
(** {1 Serialization} *)

(** The format version {!write} emits by default (2, magic ["CLA2"]). *)
val current_version : int

(** Serialize a database to object-file bytes.  The default CLA2 format
    carries a per-section CRC32 in the section table; [~version:1]
    writes the legacy checksum-free CLA1 layout (compatibility tests,
    downgrade paths).  Raises [Invalid_argument] on any other version. *)
val write : ?version:int -> db -> string

(** A view over serialized bytes.  Everything cheap is decoded eagerly;
    the DYNAMIC blocks — the bulk of the file — decode on demand via
    {!read_block}, which is what enables the load-on-demand and
    load-and-throw-away strategies of Section 6. *)
type view = {
  data : string;
  rversion : int;  (** format version the file was written with (1 or 2) *)
  strings : string array;
  rvars : varinfo array;
  rkeys : (int * string) list;
  rstatics : prim_rec array;
  block_index : (int * int) array;
      (** per object: (absolute offset, record count), or [(-1, 0)] *)
  blob_limit : int;
      (** absolute end of the DYNAMIC blob — block reads never cross it *)
  rfundefs : fund_rec array;
  rindirects : indir_rec array;
  rtargets : (string * int) array;  (** sorted by name *)
  rconsts : (int * int64) list;
  ropenworld : ow option;  (** present iff linked under open-world mode *)
  rtuhash : string option;  (** per-unit content hash, if recorded *)
  rmeta : meta;
}

(** One validated section-table entry, as returned by {!section_table}. *)
type section_entry = {
  sec_id : int;
  sec_off : int;
  sec_size : int;
  sec_crc : int option;  (** [None] for checksum-free CLA1 files *)
}

(** Parse and validate the section table alone (magic, bounds,
    non-overlap, table checksum) without decoding any section.  Raises
    {!Binio.Corrupt} on a malformed header.  Feed the entries to
    {!verify_section} — possibly from several domains at once — to
    checksum the payloads. *)
val section_table : string -> section_entry list

(** Checksum one section's bytes against its table entry; no-op for
    CLA1 entries.  Raises {!Binio.Corrupt} on mismatch.  Pure over
    immutable bytes: safe to call concurrently from worker domains. *)
val verify_section : string -> section_entry -> unit

(** Parse the header and eager sections.  Raises {!Binio.Corrupt} on a
    malformed file — and only {!Binio.Corrupt}: the section table is
    bounds-checked (in-range, non-overlapping entries), CLA2 checksums
    are verified at section open, record counts are validated against
    the bytes available, and every decoded object/string index is range
    checked, so hostile bytes cannot surface as [Invalid_argument],
    out-of-bounds access, or a huge allocation.

    [~verify:false] skips the per-section checksums, for callers that
    have already run them — e.g. {!Loader.view_par}, which fans the CRC
    sweep out across a domain pool before parsing. *)
val view_of_string : ?verify:bool -> string -> view

(** Decode the dynamic block of an object: the assignments in which it is
    the source.  Re-reads the underlying bytes on every call — callers are
    free to discard results and ask again. *)
val read_block : view -> int -> prim_rec list

val has_block : view -> int -> bool
val n_vars : view -> int

(** Look up objects by display name (Figure 4's "target section"). *)
val find_targets : view -> string -> int list

(* ------------------------------------------------------------------ *)
(** {1 Files} *)

val save : string -> db -> unit
val load : string -> view

(** Like {!load}, but surfacing corruption and I/O failures as a
    structured {!Diag.t} naming the offending file. *)
val load_result : string -> (view, Diag.t) result
