(** Points-to analysis results over a linked database.

    A solution maps every variable id of the database to the set of
    locations it may point to.  Locations are themselves variable ids
    (variables, struct fields, heap-allocation sites, functions). *)

(** Which rung of a degradation ladder produced this solution (see
    {!Pipeline.points_to_ladder}); [None] for a plain solve. *)
type provenance = {
  p_rung : string;  (** algorithm that answered, e.g. ["steensgaard"] *)
  p_degraded : bool;
      (** [true] when a more precise rung timed out first *)
  p_note : string;  (** soundness statement for the rung *)
}

type t = {
  view : Objfile.view;
  pts : Lvalset.t array;  (** indexed by variable id *)
  mutable prov : provenance option;
}

val create : Objfile.view -> Lvalset.t array -> t
val set_provenance : t -> provenance -> unit
val provenance : t -> provenance option

(** The points-to set of a variable.  Ids beyond the variable table
    (fresh solver-internal nodes) yield [empty]; a negative id can only
    come from an uninitialized linker sentinel or a corrupted database
    and raises [Invalid_argument] so corruption fails loudly instead of
    analyzing as empty. *)
val points_to : t -> int -> Lvalset.t

val var_name : t -> int -> string
val var_kind : t -> int -> Cla_ir.Var.kind

(** Normalizer temporaries are excluded from reported counts, as in
    Table 3. *)
val is_program_var : t -> int -> bool

(** Table 3's "pointer variables": program objects with a non-empty
    points-to set. *)
val n_pointer_vars : t -> int

(** Table 3's "points-to relations": total size of all points-to sets of
    program objects. *)
val n_relations : t -> int

(** Resolve a variable by display name (first match). *)
val find : t -> string -> int option

val pp_var : t -> Format.formatter -> int -> unit
val pp_entry : t -> Format.formatter -> int -> unit

(** Print every non-empty set, one line each. *)
val pp : Format.formatter -> t -> unit

(** Exact equality of two solutions on program variables — the contract
    between the pre-transitive solver and the baselines. *)
val equal : t -> t -> bool
