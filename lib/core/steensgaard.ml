(** Baseline: unification-based (Steensgaard-style) points-to analysis —
    the paper implemented one on the CLA substrate to demonstrate that the
    object-file format is analysis-agnostic (Section 4), and Section 3
    discusses the accuracy gap versus the subset-based approach.

    Every abstract location has an equivalence class; an assignment
    [x = y] unifies the classes *pointed to* by [x] and [y].  Near-linear
    time, coarser results: the computed sets must be supersets of
    Andersen's (a property the test suite checks). *)

type t = {
  view : Objfile.view;
  mutable parent : int array;  (* union-find over class ids *)
  mutable rank : int array;
  mutable target : int array;  (* class -> pointed-to class, or -1 *)
  mutable nnodes : int;
  pending : (int * int) Queue.t;  (* deferred unions (cascades) *)
}

let grow st needed =
  let cap = Array.length st.parent in
  if needed > cap then begin
    let cap' = max needed (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    st.parent <- extend st.parent (-1);
    st.rank <- extend st.rank 0;
    st.target <- extend st.target (-1)
  end

let fresh st =
  let id = st.nnodes in
  grow st (id + 1);
  st.nnodes <- id + 1;
  st.parent.(id) <- id;
  id

let rec find st x =
  let p = st.parent.(x) in
  if p = x then x
  else begin
    let r = find st p in
    st.parent.(x) <- r;
    r
  end

(* Union two classes; when both point somewhere, their targets must unify
   too (the cascade is queued to keep the stack flat). *)
let union st a b =
  let ra = find st a and rb = find st b in
  if ra <> rb then begin
    let ra, rb =
      if st.rank.(ra) >= st.rank.(rb) then (ra, rb) else (rb, ra)
    in
    st.parent.(rb) <- ra;
    if st.rank.(ra) = st.rank.(rb) then st.rank.(ra) <- st.rank.(ra) + 1;
    let ta = st.target.(ra) and tb = st.target.(rb) in
    (match (ta, tb) with
    | -1, -1 -> ()
    | -1, t -> st.target.(ra) <- t
    | _, -1 -> ()
    | ta, tb -> Queue.push (ta, tb) st.pending);
    st.target.(rb) <- -1
  end

let settle st =
  while not (Queue.is_empty st.pending) do
    let a, b = Queue.pop st.pending in
    union st a b
  done

(* The class [x] points to, created on demand. *)
let deref st x =
  let r = find st x in
  if st.target.(r) = -1 then begin
    let t = fresh st in
    (* re-find: fresh may have grown arrays but never moves roots *)
    st.target.(find st x) <- t;
    t
  end
  else st.target.(r)

let create (view : Objfile.view) =
  let nvars = Objfile.n_vars view in
  let cap = max 16 nvars in
  let st =
    {
      view;
      parent = Array.init cap (fun i -> i);
      rank = Array.make cap 0;
      target = Array.make cap (-1);
      nnodes = nvars;
      pending = Queue.create ();
    }
  in
  st

let process ?(tick = fun () -> ()) st =
  let loader = Loader.create st.view in
  Array.iter
    (fun (p : Objfile.prim_rec) ->
      (* x = &y: y joins the class x points to *)
      union st (deref st p.Objfile.pdst) p.Objfile.psrc;
      settle st)
    (Loader.statics loader);
  for v = 0 to Objfile.n_vars st.view - 1 do
    tick ();
    List.iter
      (fun (p : Objfile.prim_rec) ->
        (if Loader.relevant_to_points_to p then
           match p.Objfile.pkind with
           | Objfile.Paddr -> ()
           | Objfile.Pcopy -> union st (deref st p.Objfile.pdst) (deref st v)
           | Objfile.Pload ->
               (* x = *y: *x ~ **y *)
               union st (deref st p.Objfile.pdst) (deref st (deref st v))
           | Objfile.Pstore ->
               (* *x = y: **x ~ *y *)
               union st (deref st (deref st p.Objfile.pdst)) (deref st v)
           | Objfile.Pderef2 ->
               union st
                 (deref st (deref st p.Objfile.pdst))
                 (deref st (deref st v)));
        settle st)
      (Loader.block loader v)
  done;
  (* indirect calls: iterate because unification can reveal new callees *)
  let fundef_by_var = Hashtbl.create 64 in
  Array.iter
    (fun (f : Objfile.fund_rec) -> Hashtbl.replace fundef_by_var f.Objfile.ffvar f)
    st.view.Objfile.rfundefs;
  let funcs =
    Array.to_list st.view.Objfile.rfundefs
    |> List.map (fun (f : Objfile.fund_rec) -> f.Objfile.ffvar)
  in
  let linked = Hashtbl.create 64 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun idx (r : Objfile.indir_rec) ->
        tick ();
        let tclass = deref st r.Objfile.iptr in
        List.iter
          (fun gv ->
            if find st gv = find st tclass then begin
              let key = (idx, gv) in
              if not (Hashtbl.mem linked key) then begin
                Hashtbl.replace linked key ();
                changed := true;
                let fd = Hashtbl.find fundef_by_var gv in
                let n = min r.Objfile.inargs fd.Objfile.farity in
                for i = 0 to n - 1 do
                  let garg = fd.Objfile.fargs.(i) and parg = r.Objfile.iargs.(i) in
                  if garg >= 0 && parg >= 0 then begin
                    union st (deref st garg) (deref st parg);
                    settle st
                  end
                done;
                if r.Objfile.iret >= 0 && fd.Objfile.fret >= 0 then begin
                  union st (deref st r.Objfile.iret) (deref st fd.Objfile.fret);
                  settle st
                end
              end
            end)
          funcs)
      st.view.Objfile.rindirects
  done

(** Run the unification-based analysis.  [pts(x)] is every address-taken
    object in the class [x] points to.  [deadline]/[cancel] are polled
    between constraint blocks; near-linear cost makes this the ladder's
    always-answers final rung, but a cancel token must still be able to
    stop it. *)
let solve ?(deadline = Cla_resilience.Deadline.never) ?cancel
    (view : Objfile.view) : Solution.t =
  let t_start = Cla_resilience.Deadline.now_s () in
  let steps = ref 0 in
  let progress () =
    Cla_resilience.Progress.make
      ~elapsed_s:(Cla_resilience.Deadline.now_s () -. t_start)
      (Fmt.str "steensgaard: %d blocks processed" !steps)
  in
  let check () =
    Cla_resilience.Deadline.check ~progress deadline;
    Option.iter (Cla_resilience.Cancel.check ~progress) cancel
  in
  let tick () =
    incr steps;
    if !steps land 255 = 0 then check ()
  in
  check ();
  let st = create view in
  process ~tick st;
  (* group address-taken objects by class *)
  let groups : (int, Dynarr.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (p : Objfile.prim_rec) ->
      let z = p.Objfile.psrc in
      let r = find st z in
      let d =
        match Hashtbl.find_opt groups r with
        | Some d -> d
        | None ->
            let d = Dynarr.create ~capacity:4 () in
            Hashtbl.replace groups r d;
            d
      in
      Dynarr.push d z)
    view.Objfile.rstatics;
  let pool = Lvalset.create_pool () in
  (* one shared set per class, not one sort per variable *)
  let group_sets = Hashtbl.create 64 in
  Hashtbl.iter
    (fun root d ->
      Hashtbl.replace group_sets root
        (Lvalset.of_dyn pool d.Dynarr.data (Dynarr.length d)))
    groups;
  let nvars = Objfile.n_vars view in
  let pts =
    Array.init nvars (fun v ->
        let rv = find st v in
        if st.target.(rv) = -1 then Lvalset.empty
        else
          match Hashtbl.find_opt group_sets (find st st.target.(rv)) with
          | Some s -> s
          | None -> Lvalset.empty)
  in
  Solution.create view pts
