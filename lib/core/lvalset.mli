(** Shared sets of lvals in a hybrid representation, with hash-consing.

    "Since many lval sets are identical, a mechanism is implemented to
    share common lvals sets ... linked into a hash table, based on set
    size" (Section 5).  Sharing is what makes the dense benchmarks cheap:
    identical sets are physically equal, so unions short-circuit and a
    whole benchmark's millions of points-to relations may live in a few
    hundred distinct sets.

    Small sets are sorted, duplicate-free int arrays.  Sets that are both
    large (cardinality above the pool's dense threshold) and dense (at
    least one element per 32-bit word of their bitmap extent) switch to
    word-packed bitmaps: unions become word-ORs, difference propagation
    becomes word-ANDNOTs.  The representation is {e canonical} — a pure
    function of contents and threshold — so hash-cons sharing and the
    physical-identity fast paths hold across both forms. *)

type t

val empty : t
val cardinal : t -> int

(** True when the set is in the word-packed bitmap representation (the
    bench's set-representation histograms). *)
val is_bitmap : t -> bool

(** Membership: binary search on array sets, one bit probe on bitmaps. *)
val mem : int -> t -> bool

(** Iteration is in ascending element order for both representations. *)
val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list

(** Structural equality (physically shared sets compare in O(1)).  Works
    across representations, so solutions built with different pool
    thresholds — e.g. the bench's sorted-array baseline vs a hybrid run —
    still compare content-wise. *)
val equal : t -> t -> bool

(** [iter_diff ~prev cur f] visits the elements of [cur] not in [prev].
    Points-to sets grow monotonically, so drivers remember the set they
    last processed and visit just the delta — difference propagation.
    Bitmap/bitmap pairs take a per-word ANDNOT fast path. *)
val iter_diff : prev:t -> t -> (int -> unit) -> unit

(** [try_stamp s q] returns [true] iff [s] is non-empty and was not
    already stamped with [q], marking it as it answers.  This is the O(1)
    replacement for [List.memq]-style distinct-set scans during
    reachability accumulation: stamp with a fresh id per accumulation and
    only sets answering [true] need be unioned in.  [q] must be
    non-negative and monotonically fresh per traversal.  The shared
    {!empty} always answers [false] (adding it is a no-op anyway), so the
    global is never mutated. *)
val try_stamp : t -> int -> bool

(** {2 The sharing pool}

    One per solver; flushed at the start of each pass over the complex
    assignments, as in the paper (after unifications, stale sets would
    otherwise pin memory). *)

type pool

(** [create_pool ?dense_threshold ()] — sets with cardinality above
    [dense_threshold] (default: {!default_dense_threshold}) become
    bitmaps when dense enough.  Pass [max_int] for a pure sorted-array
    pool (the bench baseline). *)
val create_pool : ?dense_threshold:int -> unit -> pool

val flush_pool : pool -> unit

(** Global default for [create_pool]'s threshold.  Set once at startup
    (e.g. from a CLI flag), before solver domains spawn. *)
val set_default_dense_threshold : int -> unit

val default_dense_threshold : unit -> int
val pool_dense_threshold : pool -> int

(** Cumulative pool counters; they survive {!flush_pool}. [p_small_sets]
    / [p_dense_sets] count distinct interned sets per representation. *)
type pool_stats = {
  p_hits : int;
  p_misses : int;
  p_small_sets : int;
  p_dense_sets : int;
}

val pool_stats : pool -> pool_stats

(** Return the pooled physical representative of a sorted, duplicate-free
    array.  On a pool miss the array may be retained as the set's backing
    store — do not mutate it afterwards. *)
val share : pool -> int array -> t

(** Sort + dedup the first [len] elements of a scratch buffer into a
    shared set.  The first [len] cells of the buffer are clobbered
    (sorted in place), but the buffer is never retained — callers may
    pass a reusable scratch array. *)
val of_dyn : pool -> int array -> int -> t

val of_list : pool -> int list -> t

(** Merge-union; returns one of its arguments physically when the other
    is a subset.  Bitmap pairs are unioned by word-OR. *)
val union : pool -> t -> t -> t

(** [union_many pool sets n buf len] unions the first [n] sets of [sets]
    with the first [len] raw elements of [buf] in a single pass (the
    reachability walk's SCC-result construction: one bitmap fill + one
    popcount instead of n-1 pairwise merges).  [buf] may be unsorted and
    contain duplicates; its first [len] cells are clobbered.  Returns an
    input set physically when it already equals the union. *)
val union_many : pool -> t array -> int -> int array -> int -> t
