(** The CLA compile phase: C source -> object-file database.

    "The compile phase parses source files, extracts assignments and
    function calls/returns/definitions, and writes an object file that is
    basically an indexed database structure of these basic program
    components.  No analysis is performed yet." (Section 4) *)

type options = {
  mode : Cla_cfront.Normalize.mode;
      (** field-based (paper default) or field-independent structs *)
  include_dirs : string list;
  defines : (string * string) list;
  virtual_fs : (string * string) list;  (** in-memory headers, for tests *)
  drop_bodies : string -> bool;
      (** suppress these function bodies, keeping declared interfaces —
          the building block of open-world deletion testing *)
}

val default_options : options

(** Lower a normalized translation unit to a serializable database. *)
val db_of_prog :
  ?source_lines:int -> ?preproc_lines:int -> Cla_ir.Prog.t -> Objfile.db

(** Content-hash a translation unit without parsing it: preprocessed
    source plus a canonical rendering of the options (mode, defines,
    include dirs).  Equals the [Objfile.tuhash] that {!compile_string}
    records for the same input — the cheap probe the incremental
    pipeline uses to skip unchanged units.  Note [drop_bodies] is not
    part of the hash (it is a function); callers using it must not rely
    on hash equality. *)
val tu_hash : ?options:options -> file:string -> string -> string

(** Compile C source text into a database.  The produced database
    carries [tuhash = Some (tu_hash ...)]. *)
val compile_string : ?options:options -> file:string -> string -> Objfile.db

(** Compile a C file from disk. *)
val compile_file : ?options:options -> string -> Objfile.db

(** Compile and serialize to an object file on disk (like [cc -c]). *)
val compile_to : ?options:options -> output:string -> string -> unit

(** Like {!compile_file}, surfacing front-end failures (parse, cpp, lex,
    missing file) as a structured {!Diag.t} instead of an exception. *)
val compile_file_result :
  ?options:options -> string -> (Objfile.db, Diag.t) result

(** Compile a batch of files.  Failures are recorded as diagnostics
    (bumping [compile.errors]); with [keep_going] the remaining files
    are still compiled, without it the first failure raises
    {!Diag.Fail}.  Returns the units that did compile, in input order,
    with their paths. *)
val compile_many :
  ?options:options ->
  ?keep_going:bool ->
  string list ->
  (string * Objfile.db) list * Diag.t list
