(** The CLA compile phase: C source -> object file database.

    "The compile phase parses source files, extracts assignments and
    function calls/returns/definitions, and writes an object file that is
    basically an indexed database structure of these basic program
    components.  No analysis is performed yet." (Section 4) *)

open Cla_ir
open Cla_cfront

type options = {
  mode : Normalize.mode;
  include_dirs : string list;
  defines : (string * string) list;
  virtual_fs : (string * string) list;
  drop_bodies : string -> bool;
      (** suppress these function bodies, keeping declared interfaces *)
}

let default_options =
  {
    mode = Normalize.Field_based;
    include_dirs = [];
    defines = [];
    virtual_fs = [];
    drop_bodies = (fun _ -> false);
  }

(* Non-blank, non-# lines — the paper's source line count metric. *)
let count_source_lines text =
  let n = ref 0 in
  List.iter
    (fun line ->
      let t = String.trim line in
      if t <> "" && t.[0] <> '#' then incr n)
    (String.split_on_char '\n' text);
  !n

let count_lines text =
  List.length (String.split_on_char '\n' text)

(** Lower a normalized translation unit to a serializable database. *)
let db_of_prog ?(source_lines = 0) ?(preproc_lines = 0) (p : Prog.t) : Objfile.db
    =
  let nvars = Array.length p.vars in
  let vars =
    Array.map
      (fun v ->
        {
          Objfile.vname = Var.display v;
          vkind = Var.kind v;
          vlinkage = Var.linkage v;
          vtyp = v.Var.typ;
          vloc = v.Var.loc;
          vowner = Var.owner v;
          vdefined = Var.defined v;
        })
      p.vars
  in
  let keys =
    Array.to_list p.vars
    |> List.filter_map (fun v ->
           if Var.linkage v = Var.Extern then
             Some (Var.uid v, Var.key (Var.kind v) (Var.name v))
           else None)
  in
  (* find the standardized arg/ret variables by (kind, owner name) *)
  let std = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      match Var.kind v with
      | Var.Arg i -> Hashtbl.replace std (`Arg i, Var.name v) (Var.uid v)
      | Var.Ret -> Hashtbl.replace std (`Ret, Var.name v) (Var.uid v)
      | _ -> ())
    p.vars;
  let statics = ref [] in
  let blocks = Array.make nvars [] in
  List.iter
    (fun (a : Prim.t) ->
      let dst = Var.uid a.dst and src = Var.uid a.src in
      let rec_ pkind pop =
        { Objfile.pkind; pdst = dst; psrc = src; pop; ploc = a.loc }
      in
      match a.kind with
      | Prim.Addr -> statics := rec_ Objfile.Paddr None :: !statics
      | Prim.Copy op ->
          let pop =
            Option.map (fun o -> (o.Prim.op, o.Prim.strength)) op
          in
          blocks.(src) <- rec_ Objfile.Pcopy pop :: blocks.(src)
      | Prim.Store -> blocks.(src) <- rec_ Objfile.Pstore None :: blocks.(src)
      | Prim.Load -> blocks.(src) <- rec_ Objfile.Pload None :: blocks.(src)
      | Prim.Deref2 -> blocks.(src) <- rec_ Objfile.Pderef2 None :: blocks.(src))
    p.assigns;
  Array.iteri (fun i l -> blocks.(i) <- List.rev l) blocks;
  let lookup_std what owner missing =
    match Hashtbl.find_opt std (what, owner) with
    | Some uid -> uid
    | None -> missing
  in
  let fundefs =
    List.map
      (fun (f : Prog.fundef) ->
        let fname = Var.name f.fvar in
        {
          Objfile.ffvar = Var.uid f.fvar;
          farity = f.arity;
          fret = lookup_std `Ret fname (-1);
          fargs =
            Array.init f.arity (fun i ->
                lookup_std (`Arg (i + 1)) fname (-1));
          ffloc = f.floc;
        })
      p.fundefs
  in
  let indirects =
    List.map
      (fun (i : Prog.indirect) ->
        let owner = Fmt.str "ip%d" (Var.uid i.ptr) in
        {
          Objfile.iptr = Var.uid i.ptr;
          inargs = i.nargs;
          iret = lookup_std `Ret owner (-1);
          iargs =
            Array.init i.nargs (fun k ->
                lookup_std (`Arg (k + 1)) owner (-1));
          iiloc = i.iloc;
        })
      p.indirects
  in
  {
    Objfile.vars;
    keys;
    statics = List.rev !statics;
    blocks;
    fundefs;
    indirects;
    consts =
      List.map (fun (v, c) -> (Var.uid v, c)) p.consts;
    openworld = None;
    tuhash = None;
    meta =
      {
        mfiles = [ p.file ];
        msource_lines = source_lines;
        mpreproc_lines = preproc_lines;
        mcounts = Prog.counts p;
      };
  }

(* Canonical rendering of the compile options that shape the produced
   database, for the TU content hash.  [virtual_fs] is omitted — its
   effect is fully captured by the preprocessed text; [drop_bodies] is a
   function and cannot be rendered, so callers that use it must bypass
   the compile cache (the incremental driver never sets it). *)
let render_options (o : options) =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (match o.mode with
    | Normalize.Field_based -> "field_based"
    | Normalize.Field_independent -> "field_independent");
  List.iter
    (fun d ->
      Buffer.add_string b "\x00I";
      Buffer.add_string b d)
    o.include_dirs;
  List.iter
    (fun (k, v) ->
      Buffer.add_string b "\x00D";
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    o.defines;
  Buffer.contents b

(* The TU content hash: preprocessed source + canonical options.  Two
   units with equal hashes compile to interchangeable databases. *)
let hash_of_preprocessed ~options preprocessed =
  Digest.to_hex
    (Digest.string (render_options options ^ "\x00" ^ preprocessed))

(** Content-hash a translation unit without parsing it: just the
    preprocessor plus a digest.  This is the cheap probe the incremental
    pipeline runs to decide whether the expensive parse / normalize /
    serialize steps can be skipped; it equals the [tuhash] recorded in
    the object {!compile_string} would produce for the same input. *)
let tu_hash ?(options = default_options) ~file source : string =
  let preprocessed =
    Cpp.preprocess_string ~include_dirs:options.include_dirs
      ~virtual_fs:options.virtual_fs ~defines:options.defines ~file source
  in
  hash_of_preprocessed ~options preprocessed

(** Compile C source text into a database.  Recorded as a ["compile"]
    span (labelled with the file) and published as [compile.*] metrics. *)
let compile_string ?(options = default_options) ~file source : Objfile.db =
  Cla_obs.Obs.with_span "compile" ~label:file (fun () ->
      let preprocessed =
        Cpp.preprocess_string ~include_dirs:options.include_dirs
          ~virtual_fs:options.virtual_fs ~defines:options.defines ~file source
      in
      let tuhash = hash_of_preprocessed ~options preprocessed in
      let parsed = Cparser.parse_string ~file preprocessed in
      let prog =
        Normalize.run ~mode:options.mode ~drop_bodies:options.drop_bodies
          parsed
      in
      let db =
        {
          (db_of_prog
             ~source_lines:(count_source_lines source)
             ~preproc_lines:(count_lines preprocessed) prog)
          with
          Objfile.tuhash = Some tuhash;
        }
      in
      Cla_obs.Metrics.incr "compile.units";
      Cla_obs.Metrics.incr ~by:db.Objfile.meta.Objfile.msource_lines
        "compile.source_lines";
      Cla_obs.Metrics.incr ~by:db.Objfile.meta.Objfile.mpreproc_lines
        "compile.preproc_lines";
      db)

(** Compile a C file from disk into a database. *)
let compile_file ?(options = default_options) path : Objfile.db =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  compile_string ~options ~file:path source

(** Compile and serialize to an object file on disk (like [cc -c]). *)
let compile_to ?(options = default_options) ~output path =
  Objfile.save output (compile_file ~options path)

(** Like {!compile_file}, surfacing front-end failures (parse, cpp, lex,
    missing file) as a structured {!Diag.t} instead of an exception. *)
let compile_file_result ?(options = default_options) path :
    (Objfile.db, Diag.t) result =
  Diag.capture ~file:path ~phase:Diag.Compile (fun () ->
      compile_file ~options path)

(** Compile a batch of files.  Failures are recorded as diagnostics
    (bumping [compile.errors]); with [keep_going] the remaining files are
    still compiled, without it the first failure raises {!Diag.Fail}.
    Returns the units that did compile, in input order, with their
    paths. *)
let compile_many ?(options = default_options) ?(keep_going = false) paths :
    (string * Objfile.db) list * Diag.t list =
  let c = Diag.collector () in
  let dbs =
    List.filter_map
      (fun path ->
        match compile_file_result ~options path with
        | Ok db -> Some (path, db)
        | Error d ->
            Diag.add c d;
            if not keep_going then raise (Diag.Fail d);
            None)
      paths
  in
  (dbs, Diag.to_list c)
