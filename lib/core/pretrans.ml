(** The pre-transitive graph engine — the paper's second contribution
    (Section 5, Figure 5).

    The constraint graph [G] is *never* transitively closed.  An edge
    [a -> b] means "everything derivable from [b] is derivable from [a]"
    (i.e. [pts(a) ⊇ pts(b)]); each node carries its [baseElements] (the
    [y]s of [x = &y] assignments).  The points-to set of a node is computed
    on demand by graph reachability ([get_lvals]), made fast by:

    - {b caching}: a reachability result is memoized and reused for the
      rest of the current pass over the complex assignments; stale reads
      are sound because the driver's [nochange] flag forces another pass;
    - {b cycle elimination}: every cycle met during reachability is
      collapsed by unifying its nodes ([skip] pointers with incremental
      de-skipping).  Detection is free: we find exactly the cycles in the
      parts of the graph we traverse — "the costly cycles".

    Reachability runs an iterative Tarjan SCC walk (recursion would
    overflow the OCaml stack on ~100k-node graphs), which detects each
    traversed cycle once and lets us unify whole strongly-connected
    components at a time; this realizes the paper's
    [foreach n' in path, unifyNode(n', n)] without re-scanning paths. *)

type config = {
  cache : bool;  (** reuse reachability results within a pass *)
  cycle_elim : bool;  (** unify the nodes of traversed cycles *)
}

let default_config = { cache = true; cycle_elim = true }

type t = {
  cfg : config;
  pool : Lvalset.pool;
  mutable n : int;  (* nodes allocated *)
  mutable skip : int array;  (* skip.(n) >= 0: n was unified into skip.(n) *)
  mutable succ : Dynarr.t array;
  mutable base : Dynarr.t array;  (* baseElements (location ids, deduped) *)
  mutable mark : int array;  (* memo validity stamp per node *)
  mutable result : Lvalset.t array;  (* memoized reachability result *)
  (* per-query Tarjan state, versioned by [query] *)
  mutable disc : int array;
  mutable low : int array;
  mutable qid : int array;
  mutable onstk : int array;  (* = query when the node is on the SCC stack *)
  edge_tbl : Intset.t;
  base_tbl : Intset.t;
  mutable stamp : int;
  mutable query : int;
  (* cooperative interruption: called every [interrupt_mask+1] visits of
     the reachability walk so a deadline or cancel token can abort a long
     [get_lvals] traversal, not just a pass boundary *)
  mutable interrupt : (unit -> unit) option;
  mutable ticks : int;
  (* statistics *)
  mutable n_edges : int;
  mutable n_unified : int;
  mutable n_queries : int;
  mutable n_visits : int;
  mutable n_cache_hits : int;
}

let create ?(config = default_config) ~nodes () =
  let cap = max 16 nodes in
  {
    cfg = config;
    pool = Lvalset.create_pool ();
    n = nodes;
    skip = Array.make cap (-1);
    succ = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
    base = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
    mark = Array.make cap (-1);
    result = Array.make cap Lvalset.empty;
    disc = Array.make cap 0;
    low = Array.make cap 0;
    qid = Array.make cap (-1);
    onstk = Array.make cap (-1);
    edge_tbl = Intset.create 4096;
    base_tbl = Intset.create 1024;
    stamp = 0;
    query = 0;
    interrupt = None;
    ticks = 0;
    n_edges = 0;
    n_unified = 0;
    n_queries = 0;
    n_visits = 0;
    n_cache_hits = 0;
  }

let n_nodes t = t.n

(* Poll the interrupt this often inside the Tarjan walk.  Aborting
   mid-walk is safe: unification is deferred to the end of the walk,
   memo entries are only written for completed SCCs (whose results are
   complete for the current stamp), and the per-query versioning of the
   Tarjan arrays invalidates everything else on the next query. *)
let interrupt_mask = 1023

let set_interrupt t f = t.interrupt <- f

let tick t =
  t.ticks <- t.ticks + 1;
  if t.ticks land interrupt_mask = 0 then
    match t.interrupt with Some f -> f () | None -> ()

let grow t needed =
  let cap = Array.length t.skip in
  if needed > cap then begin
    let cap' = max needed (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.skip <- extend t.skip (-1);
    let succ' = Array.init cap' (fun i -> if i < cap then t.succ.(i) else Dynarr.create ~capacity:2 ()) in
    t.succ <- succ';
    let base' = Array.init cap' (fun i -> if i < cap then t.base.(i) else Dynarr.create ~capacity:2 ()) in
    t.base <- base';
    t.mark <- extend t.mark (-1);
    let r' = Array.make cap' Lvalset.empty in
    Array.blit t.result 0 r' 0 cap;
    t.result <- r';
    t.disc <- extend t.disc 0;
    t.low <- extend t.low 0;
    t.qid <- extend t.qid (-1);
    t.onstk <- extend t.onstk (-1)
  end

(** Allocate a fresh node (used for [*x = *y] splitting and [n_*y] deref
    nodes). *)
let fresh_node t =
  let id = t.n in
  grow t (id + 1);
  t.n <- id + 1;
  id

(** Follow skip pointers with path compression ("an incremental algorithm
    for updating graph edges to skip-nodes to their de-skipped
    counterparts"). *)
let rec deskip t n =
  let s = t.skip.(n) in
  if s < 0 then n
  else begin
    let r = deskip t s in
    if r <> s then t.skip.(n) <- r;
    r
  end

let edge_key a b = (a lsl 31) lor b

(** Add edge [a -> b] ([pts(a) ⊇ pts(b)]).  Returns [true] if the edge is
    new — the driver's [nochange] flag. *)
let add_edge t a b =
  let a = deskip t a and b = deskip t b in
  if a = b then false
  else begin
    let key = edge_key a b in
    if Intset.add t.edge_tbl key then begin
      Dynarr.push t.succ.(a) b;
      t.n_edges <- t.n_edges + 1;
      true
    end
    else false
  end

(** Record [x = &z]: [z] joins [baseElements(x)]. *)
let add_base t x z =
  let x = deskip t x in
  let key = edge_key x z in
  if Intset.add t.base_tbl key then Dynarr.push t.base.(x) z

(** Start a new pass over the complex assignments: flush the reachability
    cache and the lval-set sharing pool. *)
let new_pass t =
  t.stamp <- t.stamp + 1;
  Lvalset.flush_pool t.pool

(* Merge [m]'s edges and base elements into representative [rep] and
   install the skip pointer. *)
let unify_into t m rep =
  t.skip.(m) <- rep;
  t.n_unified <- t.n_unified + 1;
  Dynarr.iter
    (fun s ->
      let s = deskip t s in
      ignore (add_edge t rep s))
    t.succ.(m);
  Dynarr.iter (fun z -> add_base t rep z) t.base.(m);
  (* free the merged node's storage *)
  t.succ.(m) <- Dynarr.create ~capacity:1 ();
  t.base.(m) <- Dynarr.create ~capacity:1 ()

(* ------------------------------------------------------------------ *)
(* Reachability (getLvals)                                             *)
(* ------------------------------------------------------------------ *)

(* Iterative Tarjan.  Frames are parallel stacks; [sccs] collects the
   components (size > 1) to unify after the walk completes. *)
let tarjan t root =
  t.query <- t.query + 1;
  let q = t.query in
  let counter = ref 0 in
  let fnode = Dynarr.create ~capacity:64 () in
  let fidx = Dynarr.create ~capacity:64 () in
  let fidx_data = fidx in
  let tstack = Dynarr.create ~capacity:64 () in
  let sccs : int list list ref = ref [] in
  let push_frame n =
    t.qid.(n) <- q;
    t.disc.(n) <- !counter;
    t.low.(n) <- !counter;
    incr counter;
    t.onstk.(n) <- q;
    Dynarr.push tstack n;
    Dynarr.push fnode n;
    Dynarr.push fidx_data 0;
    t.n_visits <- t.n_visits + 1
  in
  push_frame root;
  while Dynarr.length fnode > 0 do
    tick t;
    let top = Dynarr.length fnode - 1 in
    let n = Dynarr.get fnode top in
    let i = Dynarr.get fidx_data top in
    if i < Dynarr.length t.succ.(n) then begin
      fidx_data.Dynarr.data.(top) <- i + 1;
      let s = deskip t (Dynarr.unsafe_get t.succ.(n) i) in
      if s = n then () (* self loop after de-skip *)
      else if t.mark.(s) = t.stamp then
        (* finished this pass/query: treat as leaf with known result *)
        ()
      else if t.qid.(s) = q then begin
        if t.onstk.(s) = q && t.disc.(s) < t.low.(n) then
          t.low.(n) <- t.disc.(s)
      end
      else push_frame s
    end
    else begin
      (* node finished: pop frame *)
      fnode.Dynarr.len <- top;
      fidx_data.Dynarr.len <- top;
      (* propagate lowlink to parent *)
      if top > 0 then begin
        let p = Dynarr.get fnode (top - 1) in
        if t.low.(n) < t.low.(p) then t.low.(p) <- t.low.(n)
      end;
      if t.low.(n) = t.disc.(n) then begin
        (* n roots an SCC: pop members, compute their common result *)
        let members = ref [] in
        let continue = ref true in
        while !continue do
          let m = Dynarr.get tstack (Dynarr.length tstack - 1) in
          tstack.Dynarr.len <- Dynarr.length tstack - 1;
          t.onstk.(m) <- -1;
          members := m :: !members;
          if m = n then continue := false
        done;
        let members = !members in
        (* result = base elements of members ∪ results of out-of-SCC succs.
           Successor results are hash-consed, so most of a node's (possibly
           thousands of) successors carry the *same physical* set — dedup
           by physical identity before paying for any union (the paper's
           set-sharing enhancement is what makes this possible). *)
        let acc = ref Lvalset.empty in
        let distinct : Lvalset.t list ref = ref [] in
        let n_distinct = ref 0 in
        let add_set (s : Lvalset.t) =
          if Lvalset.cardinal s <> 0 && not (List.memq s !distinct) then begin
            distinct := s :: !distinct;
            incr n_distinct;
            if !n_distinct > 48 then begin
              List.iter (fun x -> acc := Lvalset.union t.pool !acc x) !distinct;
              distinct := [];
              n_distinct := 0
            end
          end
        in
        let scratch = Dynarr.create ~capacity:16 () in
        List.iter
          (fun m ->
            Dynarr.iter (fun z -> Dynarr.push scratch z) t.base.(m);
            Dynarr.iter
              (fun s ->
                let s = deskip t s in
                if t.mark.(s) = t.stamp && t.onstk.(s) <> q then
                  add_set t.result.(s))
              t.succ.(m))
          members;
        List.iter (fun x -> acc := Lvalset.union t.pool !acc x) !distinct;
        let own = Lvalset.of_dyn t.pool (Dynarr.to_array scratch) (Dynarr.length scratch) in
        let set = Lvalset.union t.pool !acc own in
        List.iter
          (fun m ->
            t.mark.(m) <- t.stamp;
            t.result.(m) <- set)
          members;
        match members with
        | _ :: _ :: _ when t.cfg.cycle_elim -> sccs := members :: !sccs
        | _ -> ()
      end
    end
  done;
  (* unify the traversed cycles (safe now that the walk is complete) *)
  List.iter
    (fun members ->
      match members with
      | rep :: rest ->
          let rep = deskip t rep in
          List.iter
            (fun m ->
              let m = deskip t m in
              if m <> rep then unify_into t m rep)
            rest
      | [] -> ())
    !sccs

(** [get_lvals t n] — the set of locations [&z] derivable from [n]
    (Figure 5's [getLvals]).  With [config.cache] the result is memoized
    for the rest of the current pass. *)
let get_lvals t node =
  let node = deskip t node in
  t.n_queries <- t.n_queries + 1;
  if t.cfg.cache && t.mark.(node) = t.stamp then begin
    t.n_cache_hits <- t.n_cache_hits + 1;
    t.result.(node)
  end
  else begin
    (* with caching off every top-level query recomputes from scratch; the
       stamp bump invalidates the previous query's memo *)
    if not t.cfg.cache then t.stamp <- t.stamp + 1;
    tarjan t node;
    t.result.(deskip t node)
  end

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  nodes : int;
  edges : int;
  unified : int;
  queries : int;
  visits : int;
  cache_hits : int;
}

(* The structural counters ([nodes], [edges], [unified]) mirror the live
   graph and are monotonic over its lifetime; the query-side counters
   ([queries], [visits], [cache_hits]) are monotonic between calls to
   [reset_stats].  Invariants (see the .mli): cache_hits <= queries,
   unified <= nodes, and visits >= queries - cache_hits. *)
let stats t =
  {
    nodes = t.n;
    edges = t.n_edges;
    unified = t.n_unified;
    queries = t.n_queries;
    visits = t.n_visits;
    cache_hits = t.n_cache_hits;
  }

(** Zero the query-side counters ([queries], [visits], [cache_hits]).
    The structural counters describe the graph itself and are not
    resettable. *)
let reset_stats t =
  t.n_queries <- 0;
  t.n_visits <- 0;
  t.n_cache_hits <- 0

(** Publish a stats record into the metrics registry under
    [analyze.pretrans.*]. *)
let publish_stats ?reg (s : stats) =
  let set k v = Cla_obs.Metrics.set ?reg ("analyze.pretrans." ^ k) v in
  set "nodes" s.nodes;
  set "edges" s.edges;
  set "unified" s.unified;
  set "queries" s.queries;
  set "visits" s.visits;
  set "cache_hits" s.cache_hits
