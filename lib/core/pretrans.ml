(** The pre-transitive graph engine — the paper's second contribution
    (Section 5, Figure 5).

    The constraint graph [G] is *never* transitively closed.  An edge
    [a -> b] means "everything derivable from [b] is derivable from [a]"
    (i.e. [pts(a) ⊇ pts(b)]); each node carries its [baseElements] (the
    [y]s of [x = &y] assignments).  The points-to set of a node is computed
    on demand by graph reachability ([get_lvals]), made fast by:

    - {b caching}: a reachability result is memoized and reused for the
      rest of the current pass over the complex assignments; stale reads
      are sound because the driver's [nochange] flag forces another pass;
    - {b cycle elimination}: every cycle met during reachability is
      collapsed by unifying its nodes ([skip] pointers with incremental
      de-skipping).  Detection is free: we find exactly the cycles in the
      parts of the graph we traverse — "the costly cycles".

    Reachability runs an iterative Tarjan SCC walk (recursion would
    overflow the OCaml stack on ~100k-node graphs), which detects each
    traversed cycle once and lets us unify whole strongly-connected
    components at a time; this realizes the paper's
    [foreach n' in path, unifyNode(n', n)] without re-scanning paths.

    The walk itself is allocation-free in steady state: the frame stacks,
    the SCC accumulator, and the distinct-successor-result buffer are all
    per-solver scratch reused across queries; distinct-set dedup is an
    O(1) stamp on the hash-consed set ({!Lvalset.try_stamp}) instead of a
    [List.memq] scan; and the successor edge lists are path-compressed in
    place as the walk de-skips them. *)

type config = {
  cache : bool;  (** reuse reachability results within a pass *)
  cycle_elim : bool;  (** unify the nodes of traversed cycles *)
}

let default_config = { cache = true; cycle_elim = true }

type t = {
  cfg : config;
  pool : Lvalset.pool;
  mutable n : int;  (* nodes allocated *)
  mutable skip : int array;  (* skip.(n) >= 0: n was unified into skip.(n) *)
  mutable succ : Dynarr.t array;
  mutable base : Dynarr.t array;  (* baseElements (location ids, deduped) *)
  mutable mark : int array;  (* memo validity stamp per node *)
  mutable result : Lvalset.t array;  (* memoized reachability result *)
  (* per-query Tarjan state, versioned by [query] *)
  mutable disc : int array;
  mutable low : int array;
  mutable qid : int array;
  mutable onstk : int array;  (* = query when the node is on the SCC stack *)
  edge_tbl : Intset.t;
  base_tbl : Intset.t;
  (* reverse adjacency for targeted invalidation (delta solving).  Off by
     default; [enable_pred_tracking] builds it from the live edges and
     [add_edge]/[unify_into] maintain it from then on.  Entries may be
     stale (pre-unification node ids) — consumers de-skip on read, and
     unification merges a victim's predecessor list into its
     representative, a sound over-approximation. *)
  mutable preds : Dynarr.t array;  (* [||] while tracking is off *)
  mutable track_preds : bool;
  mutable stamp : int;
  mutable query : int;
  (* reusable traversal scratch — one of each per solver, never per query *)
  fnode : Dynarr.t;  (* Tarjan frame stack: node per frame *)
  fidx : Dynarr.t;  (* Tarjan frame stack: next successor index *)
  tstack : Dynarr.t;  (* Tarjan SCC stack *)
  scc_buf : Dynarr.t;  (* members of cycles awaiting unification ... *)
  scc_ends : Dynarr.t;  (* ... flattened; end offset per cycle *)
  base_scratch : Dynarr.t;  (* base elements gathered per SCC *)
  mutable set_buf : Lvalset.t array;  (* distinct successor results *)
  mutable set_len : int;
  mutable accum : int;  (* fresh stamp per SCC-result accumulation *)
  (* cooperative interruption: called every [interrupt_mask+1] visits of
     the reachability walk so a deadline or cancel token can abort a long
     [get_lvals] traversal, not just a pass boundary *)
  mutable interrupt : (unit -> unit) option;
  mutable ticks : int;
  (* statistics *)
  mutable n_edges : int;
  mutable n_unified : int;
  mutable n_queries : int;
  mutable n_visits : int;
  mutable n_cache_hits : int;
}

let create ?(config = default_config) ?dense_threshold ~nodes () =
  Intset.check_node_bound (max 0 (nodes - 1));
  let cap = max 16 nodes in
  {
    cfg = config;
    pool = Lvalset.create_pool ?dense_threshold ();
    n = nodes;
    skip = Array.make cap (-1);
    succ = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
    base = Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
    mark = Array.make cap (-1);
    result = Array.make cap Lvalset.empty;
    disc = Array.make cap 0;
    low = Array.make cap 0;
    qid = Array.make cap (-1);
    onstk = Array.make cap (-1);
    edge_tbl = Intset.create 4096;
    base_tbl = Intset.create 1024;
    preds = [||];
    track_preds = false;
    stamp = 0;
    query = 0;
    fnode = Dynarr.create ~capacity:64 ();
    fidx = Dynarr.create ~capacity:64 ();
    tstack = Dynarr.create ~capacity:64 ();
    scc_buf = Dynarr.create ~capacity:16 ();
    scc_ends = Dynarr.create ~capacity:8 ();
    base_scratch = Dynarr.create ~capacity:64 ();
    set_buf = Array.make 64 Lvalset.empty;
    set_len = 0;
    accum = 0;
    interrupt = None;
    ticks = 0;
    n_edges = 0;
    n_unified = 0;
    n_queries = 0;
    n_visits = 0;
    n_cache_hits = 0;
  }

let n_nodes t = t.n

(* Poll the interrupt this often inside the Tarjan walk.  Aborting
   mid-walk is safe: unification is deferred to the end of the walk,
   memo entries are only written for completed SCCs (whose results are
   complete for the current stamp), and the per-query versioning of the
   Tarjan arrays invalidates everything else on the next query. *)
let interrupt_mask = 1023

let set_interrupt t f = t.interrupt <- f

let tick t =
  t.ticks <- t.ticks + 1;
  if t.ticks land interrupt_mask = 0 then
    match t.interrupt with Some f -> f () | None -> ()

let grow t needed =
  let cap = Array.length t.skip in
  if needed > cap then begin
    (* the packed edge keys hold 31 bits per endpoint; enforce the bound
       once here so [Intset.pair_key] stays unchecked on the hot path *)
    Intset.check_node_bound (needed - 1);
    let cap' = max needed (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.skip <- extend t.skip (-1);
    let succ' = Array.init cap' (fun i -> if i < cap then t.succ.(i) else Dynarr.create ~capacity:2 ()) in
    t.succ <- succ';
    let base' = Array.init cap' (fun i -> if i < cap then t.base.(i) else Dynarr.create ~capacity:2 ()) in
    t.base <- base';
    t.mark <- extend t.mark (-1);
    let r' = Array.make cap' Lvalset.empty in
    Array.blit t.result 0 r' 0 cap;
    t.result <- r';
    t.disc <- extend t.disc 0;
    t.low <- extend t.low 0;
    t.qid <- extend t.qid (-1);
    t.onstk <- extend t.onstk (-1);
    if t.track_preds then begin
      let preds' =
        Array.init cap' (fun i ->
            if i < cap then t.preds.(i) else Dynarr.create ~capacity:2 ())
      in
      t.preds <- preds'
    end
  end

(** Allocate a fresh node (used for [*x = *y] splitting and [n_*y] deref
    nodes). *)
let fresh_node t =
  let id = t.n in
  grow t (id + 1);
  t.n <- id + 1;
  id

(** Follow skip pointers with path compression ("an incremental algorithm
    for updating graph edges to skip-nodes to their de-skipped
    counterparts"). *)
let rec deskip t n =
  let s = t.skip.(n) in
  if s < 0 then n
  else begin
    let r = deskip t s in
    if r <> s then t.skip.(n) <- r;
    r
  end

(** Add edge [a -> b] ([pts(a) ⊇ pts(b)]).  Returns [true] if the edge is
    new — the driver's [nochange] flag. *)
let add_edge t a b =
  let a = deskip t a and b = deskip t b in
  if a = b then false
  else begin
    let key = Intset.pair_key a b in
    if Intset.add t.edge_tbl key then begin
      Dynarr.push t.succ.(a) b;
      if t.track_preds then Dynarr.push t.preds.(b) a;
      t.n_edges <- t.n_edges + 1;
      true
    end
    else false
  end

(** Record [x = &z]: [z] joins [baseElements(x)]. *)
let add_base t x z =
  let x = deskip t x in
  let key = Intset.pair_key x z in
  if Intset.add t.base_tbl key then Dynarr.push t.base.(x) z

(** Start a new pass over the complex assignments: flush the reachability
    cache and the lval-set sharing pool. *)
let new_pass t =
  t.stamp <- t.stamp + 1;
  Lvalset.flush_pool t.pool

(* Merge [m]'s edges and base elements into representative [rep] and
   install the skip pointer. *)
let unify_into t m rep =
  t.skip.(m) <- rep;
  t.n_unified <- t.n_unified + 1;
  Dynarr.iter
    (fun s ->
      let s = deskip t s in
      ignore (add_edge t rep s))
    t.succ.(m);
  Dynarr.iter (fun z -> add_base t rep z) t.base.(m);
  if t.track_preds then begin
    (* edges into [m] now semantically target [rep]; keeping the merged
       list (stale ids and all) over-approximates, which is sound for
       invalidation *)
    Dynarr.iter (fun p -> Dynarr.push t.preds.(rep) p) t.preds.(m);
    t.preds.(m) <- Dynarr.create ~capacity:1 ()
  end;
  (* free the merged node's storage *)
  t.succ.(m) <- Dynarr.create ~capacity:1 ();
  t.base.(m) <- Dynarr.create ~capacity:1 ()

(* ------------------------------------------------------------------ *)
(* Delta invalidation                                                  *)
(* ------------------------------------------------------------------ *)

(** Turn on reverse-adjacency tracking, building the predecessor lists
    from the edges already in the graph (so it can be enabled on a
    solved graph, not just an empty one).  Idempotent. *)
let enable_pred_tracking t =
  if not t.track_preds then begin
    let cap = Array.length t.skip in
    t.preds <- Array.init cap (fun _ -> Dynarr.create ~capacity:2 ());
    t.track_preds <- true;
    for a = 0 to t.n - 1 do
      Dynarr.iter
        (fun raw -> Dynarr.push t.preds.(deskip t raw) a)
        t.succ.(a)
    done
  end

let pred_tracking t = t.track_preds

(** Invalidate the reachability memo of every node that can reach one of
    [seeds] — i.e. every node whose points-to set may grow because
    [seeds]' sets grew (a new base element or a new out-edge).  This is
    the soundness core of delta solving: a resumed pass may keep every
    memo EXCEPT those, because a stale surviving memo could otherwise
    report "no change" and let the driver converge on a fixpoint that
    never saw the delta.  Requires {!enable_pred_tracking}; the walk is
    a reverse BFS over the (over-approximate) predecessor lists.
    Returns the number of memos invalidated. *)
let invalidate_reaching t seeds =
  if not t.track_preds then
    invalid_arg "Pretrans.invalidate_reaching: pred tracking is off";
  let visited = Bytes.make (Array.length t.skip) '\000' in
  let stack = Dynarr.create ~capacity:64 () in
  let count = ref 0 in
  let push x =
    let x = deskip t x in
    if Bytes.unsafe_get visited x = '\000' then begin
      Bytes.unsafe_set visited x '\001';
      t.mark.(x) <- -1;
      incr count;
      Dynarr.push stack x
    end
  in
  List.iter push seeds;
  while Dynarr.length stack > 0 do
    let x = Dynarr.get stack (Dynarr.length stack - 1) in
    stack.Dynarr.len <- Dynarr.length stack - 1;
    Dynarr.iter (fun p -> push p) t.preds.(x)
  done;
  !count

(* ------------------------------------------------------------------ *)
(* Reachability (getLvals)                                             *)
(* ------------------------------------------------------------------ *)

let push_set t s =
  if t.set_len = Array.length t.set_buf then begin
    let b = Array.make (2 * t.set_len) Lvalset.empty in
    Array.blit t.set_buf 0 b 0 t.set_len;
    t.set_buf <- b
  end;
  t.set_buf.(t.set_len) <- s;
  t.set_len <- t.set_len + 1

(* Iterative Tarjan over the per-solver scratch stacks.  Zero allocation
   in steady state: frames live in [t.fnode]/[t.fidx], the SCC stack in
   [t.tstack], cycles awaiting unification in [t.scc_buf]/[t.scc_ends],
   and each SCC's result is built by one [Lvalset.union_many] over the
   stamped-distinct successor results plus the members' base elements. *)
let tarjan t root =
  t.query <- t.query + 1;
  let q = t.query in
  let counter = ref 0 in
  let fnode = t.fnode and fidx = t.fidx and tstack = t.tstack in
  Dynarr.clear fnode;
  Dynarr.clear fidx;
  Dynarr.clear tstack;
  Dynarr.clear t.scc_buf;
  Dynarr.clear t.scc_ends;
  let push_frame n =
    t.qid.(n) <- q;
    t.disc.(n) <- !counter;
    t.low.(n) <- !counter;
    incr counter;
    t.onstk.(n) <- q;
    Dynarr.push tstack n;
    Dynarr.push fnode n;
    Dynarr.push fidx 0;
    t.n_visits <- t.n_visits + 1
  in
  push_frame root;
  while Dynarr.length fnode > 0 do
    tick t;
    let top = Dynarr.length fnode - 1 in
    let n = Dynarr.get fnode top in
    let i = Dynarr.get fidx top in
    let sn = t.succ.(n) in
    if i < Dynarr.length sn then begin
      fidx.Dynarr.data.(top) <- i + 1;
      (* de-skip the edge and compress it in place — the paper's
         incremental updating of edges to skip-nodes, hoisted out of
         future traversals of this edge *)
      let raw = Dynarr.unsafe_get sn i in
      let s =
        if t.skip.(raw) < 0 then raw
        else begin
          let r = deskip t raw in
          sn.Dynarr.data.(i) <- r;
          r
        end
      in
      if s = n then () (* self loop after de-skip *)
      else if t.mark.(s) = t.stamp then
        (* finished this pass/query: treat as leaf with known result *)
        ()
      else if t.qid.(s) = q then begin
        if t.onstk.(s) = q && t.disc.(s) < t.low.(n) then
          t.low.(n) <- t.disc.(s)
      end
      else push_frame s
    end
    else begin
      (* node finished: pop frame *)
      fnode.Dynarr.len <- top;
      fidx.Dynarr.len <- top;
      (* propagate lowlink to parent *)
      if top > 0 then begin
        let p = Dynarr.get fnode (top - 1) in
        if t.low.(n) < t.low.(p) then t.low.(p) <- t.low.(n)
      end;
      if t.low.(n) = t.disc.(n) then begin
        (* [n] roots an SCC whose members sit contiguously at the top of
           [tstack]: locate the root, process the slice in place. *)
        let tlen = Dynarr.length tstack in
        let mstart = ref (tlen - 1) in
        while Dynarr.get tstack !mstart <> n do decr mstart done;
        let mstart = !mstart in
        for k = mstart to tlen - 1 do
          t.onstk.(Dynarr.unsafe_get tstack k) <- -1
        done;
        (* result = base elements of members ∪ results of out-of-SCC
           succs.  Successor results are hash-consed, so most of a node's
           (possibly thousands of) successors carry the *same physical*
           set — dedup by an O(1) stamp before paying for any union (the
           paper's set-sharing enhancement is what makes this possible). *)
        t.accum <- t.accum + 1;
        let aid = t.accum in
        t.set_len <- 0;
        Dynarr.clear t.base_scratch;
        for k = mstart to tlen - 1 do
          let m = Dynarr.unsafe_get tstack k in
          Dynarr.iter (fun z -> Dynarr.push t.base_scratch z) t.base.(m);
          let sm = t.succ.(m) in
          for j = 0 to Dynarr.length sm - 1 do
            let raw = Dynarr.unsafe_get sm j in
            let s =
              if t.skip.(raw) < 0 then raw
              else begin
                let r = deskip t raw in
                sm.Dynarr.data.(j) <- r;
                r
              end
            in
            if t.mark.(s) = t.stamp && t.onstk.(s) <> q then begin
              let rs = t.result.(s) in
              if Lvalset.try_stamp rs aid then push_set t rs
            end
          done
        done;
        let set =
          Lvalset.union_many t.pool t.set_buf t.set_len
            t.base_scratch.Dynarr.data
            (Dynarr.length t.base_scratch)
        in
        for k = mstart to tlen - 1 do
          let m = Dynarr.unsafe_get tstack k in
          t.mark.(m) <- t.stamp;
          t.result.(m) <- set
        done;
        if tlen - mstart > 1 && t.cfg.cycle_elim then begin
          for k = mstart to tlen - 1 do
            Dynarr.push t.scc_buf (Dynarr.unsafe_get tstack k)
          done;
          Dynarr.push t.scc_ends (Dynarr.length t.scc_buf)
        end;
        tstack.Dynarr.len <- mstart
      end
    end
  done;
  (* unify the traversed cycles (safe now that the walk is complete) *)
  let start = ref 0 in
  for c = 0 to Dynarr.length t.scc_ends - 1 do
    let stop = Dynarr.get t.scc_ends c in
    let rep = deskip t (Dynarr.get t.scc_buf !start) in
    for k = !start + 1 to stop - 1 do
      let m = deskip t (Dynarr.get t.scc_buf k) in
      if m <> rep then unify_into t m rep
    done;
    start := stop
  done

(** [get_lvals t n] — the set of locations [&z] derivable from [n]
    (Figure 5's [getLvals]).  With [config.cache] the result is memoized
    for the rest of the current pass. *)
let get_lvals t node =
  let node = deskip t node in
  t.n_queries <- t.n_queries + 1;
  if t.cfg.cache && t.mark.(node) = t.stamp then begin
    t.n_cache_hits <- t.n_cache_hits + 1;
    t.result.(node)
  end
  else begin
    (* with caching off every top-level query recomputes from scratch; the
       stamp bump invalidates the previous query's memo *)
    if not t.cfg.cache then t.stamp <- t.stamp + 1;
    tarjan t node;
    t.result.(deskip t node)
  end

(* ------------------------------------------------------------------ *)
(* Read-only batch queries (parallel fan-out)                          *)
(* ------------------------------------------------------------------ *)

(* A worker domain's private traversal state: its own Tarjan arrays,
   its own pass-local memo, its own lval-set pool, and a log of the
   cycles it met.  [query_batch] runs the same walk as [tarjan] but
   treats the shared graph as read-only — no unification, no shared
   memo or pool writes — so any number of scratches can traverse one
   graph concurrently.  The only shared-state writes a read-only walk
   performs are [skip]/successor path compression, and those are
   convergent: every domain writes the same final representative
   (unification is barred during the fan-out), so a racing reader sees
   either the raw node or the representative and de-skips both to the
   same place.  Discoveries are replayed deterministically by
   [commit_scratches] on one domain. *)
type scratch = {
  s_pool : Lvalset.pool;
  mutable s_disc : int array;
  mutable s_low : int array;
  mutable s_qid : int array;
  mutable s_onstk : int array;
  mutable s_mark : int array;  (* local memo validity, versus [s_stamp] *)
  mutable s_result : Lvalset.t array;  (* local memo, sets in [s_pool] *)
  s_fnode : Dynarr.t;
  s_fidx : Dynarr.t;
  s_tstack : Dynarr.t;
  s_scc_buf : Dynarr.t;  (* members of traversed cycles ... *)
  s_scc_ends : Dynarr.t;  (* ... flattened; end offset per cycle *)
  s_base_scratch : Dynarr.t;
  mutable s_set_buf : Lvalset.t array;
  mutable s_set_len : int;
  mutable s_accum : int;
  mutable s_query : int;
  mutable s_stamp : int;  (* bumped per batch = per pass *)
  mutable s_ticks : int;
  (* the slice of the shared root array this batch answered *)
  mutable s_lo : int;
  mutable s_hi : int;
  mutable s_res : Lvalset.t array;  (* per root of the slice *)
  (* stat deltas folded into the shared counters at commit *)
  mutable s_queries : int;
  mutable s_visits : int;
  mutable s_cache_hits : int;
}

let make_scratch t =
  let cap = max 16 t.n in
  {
    s_pool = Lvalset.create_pool ~dense_threshold:(Lvalset.pool_dense_threshold t.pool) ();
    s_disc = Array.make cap 0;
    s_low = Array.make cap 0;
    s_qid = Array.make cap (-1);
    s_onstk = Array.make cap (-1);
    s_mark = Array.make cap (-1);
    s_result = Array.make cap Lvalset.empty;
    s_fnode = Dynarr.create ~capacity:64 ();
    s_fidx = Dynarr.create ~capacity:64 ();
    s_tstack = Dynarr.create ~capacity:64 ();
    s_scc_buf = Dynarr.create ~capacity:16 ();
    s_scc_ends = Dynarr.create ~capacity:8 ();
    s_base_scratch = Dynarr.create ~capacity:64 ();
    s_set_buf = Array.make 64 Lvalset.empty;
    s_set_len = 0;
    s_accum = 0;
    s_query = 0;
    s_stamp = 0;
    s_ticks = 0;
    s_lo = 0;
    s_hi = 0;
    s_res = [||];
    s_queries = 0;
    s_visits = 0;
    s_cache_hits = 0;
  }

let ensure_scratch t s =
  let cap = Array.length s.s_disc in
  if t.n > cap then begin
    let cap' = max t.n (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    s.s_disc <- extend s.s_disc 0;
    s.s_low <- extend s.s_low 0;
    s.s_qid <- extend s.s_qid (-1);
    s.s_onstk <- extend s.s_onstk (-1);
    s.s_mark <- extend s.s_mark (-1);
    let r' = Array.make cap' Lvalset.empty in
    Array.blit s.s_result 0 r' 0 cap;
    s.s_result <- r'
  end

let s_push_set s v =
  if s.s_set_len = Array.length s.s_set_buf then begin
    let b = Array.make (2 * s.s_set_len) Lvalset.empty in
    Array.blit s.s_set_buf 0 b 0 s.s_set_len;
    s.s_set_buf <- b
  end;
  s.s_set_buf.(s.s_set_len) <- v;
  s.s_set_len <- s.s_set_len + 1

(* [tarjan], read-only: shared-graph structure is only read (modulo the
   convergent path compression described above), memo/pool/stat writes
   go to the scratch, and multi-node SCCs are logged instead of unified. *)
let tarjan_ro t s root =
  s.s_query <- s.s_query + 1;
  let q = s.s_query in
  let counter = ref 0 in
  let fnode = s.s_fnode and fidx = s.s_fidx and tstack = s.s_tstack in
  Dynarr.clear fnode;
  Dynarr.clear fidx;
  Dynarr.clear tstack;
  let push_frame n =
    s.s_qid.(n) <- q;
    s.s_disc.(n) <- !counter;
    s.s_low.(n) <- !counter;
    incr counter;
    s.s_onstk.(n) <- q;
    Dynarr.push tstack n;
    Dynarr.push fnode n;
    Dynarr.push fidx 0;
    s.s_visits <- s.s_visits + 1
  in
  push_frame root;
  while Dynarr.length fnode > 0 do
    s.s_ticks <- s.s_ticks + 1;
    if s.s_ticks land interrupt_mask = 0 then
      (match t.interrupt with Some f -> f () | None -> ());
    let top = Dynarr.length fnode - 1 in
    let n = Dynarr.get fnode top in
    let i = Dynarr.get fidx top in
    let sn = t.succ.(n) in
    if i < Dynarr.length sn then begin
      fidx.Dynarr.data.(top) <- i + 1;
      let raw = Dynarr.unsafe_get sn i in
      let sx =
        if t.skip.(raw) < 0 then raw
        else begin
          let r = deskip t raw in
          sn.Dynarr.data.(i) <- r;
          r
        end
      in
      if sx = n then ()
      else if s.s_mark.(sx) = s.s_stamp then ()
      else if s.s_qid.(sx) = q then begin
        if s.s_onstk.(sx) = q && s.s_disc.(sx) < s.s_low.(n) then
          s.s_low.(n) <- s.s_disc.(sx)
      end
      else push_frame sx
    end
    else begin
      fnode.Dynarr.len <- top;
      fidx.Dynarr.len <- top;
      if top > 0 then begin
        let p = Dynarr.get fnode (top - 1) in
        if s.s_low.(n) < s.s_low.(p) then s.s_low.(p) <- s.s_low.(n)
      end;
      if s.s_low.(n) = s.s_disc.(n) then begin
        let tlen = Dynarr.length tstack in
        let mstart = ref (tlen - 1) in
        while Dynarr.get tstack !mstart <> n do decr mstart done;
        let mstart = !mstart in
        for k = mstart to tlen - 1 do
          s.s_onstk.(Dynarr.unsafe_get tstack k) <- -1
        done;
        s.s_accum <- s.s_accum + 1;
        let aid = s.s_accum in
        s.s_set_len <- 0;
        Dynarr.clear s.s_base_scratch;
        for k = mstart to tlen - 1 do
          let m = Dynarr.unsafe_get tstack k in
          Dynarr.iter (fun z -> Dynarr.push s.s_base_scratch z) t.base.(m);
          let sm = t.succ.(m) in
          for j = 0 to Dynarr.length sm - 1 do
            let raw = Dynarr.unsafe_get sm j in
            let sx =
              if t.skip.(raw) < 0 then raw
              else begin
                let r = deskip t raw in
                sm.Dynarr.data.(j) <- r;
                r
              end
            in
            if s.s_mark.(sx) = s.s_stamp && s.s_onstk.(sx) <> q then begin
              let rs = s.s_result.(sx) in
              (* [rs] lives in this scratch's private pool, so the
                 stamp dedup never touches another domain's sets *)
              if Lvalset.try_stamp rs aid then s_push_set s rs
            end
          done
        done;
        let set =
          Lvalset.union_many s.s_pool s.s_set_buf s.s_set_len
            s.s_base_scratch.Dynarr.data
            (Dynarr.length s.s_base_scratch)
        in
        for k = mstart to tlen - 1 do
          let m = Dynarr.unsafe_get tstack k in
          s.s_mark.(m) <- s.s_stamp;
          s.s_result.(m) <- set
        done;
        if tlen - mstart > 1 && t.cfg.cycle_elim then begin
          for k = mstart to tlen - 1 do
            Dynarr.push s.s_scc_buf (Dynarr.unsafe_get tstack k)
          done;
          Dynarr.push s.s_scc_ends (Dynarr.length s.s_scc_buf)
        end;
        tstack.Dynarr.len <- mstart
      end
    end
  done

let query_batch t s roots ~lo ~hi =
  ensure_scratch t s;
  s.s_stamp <- s.s_stamp + 1;
  Lvalset.flush_pool s.s_pool;
  Dynarr.clear s.s_scc_buf;
  Dynarr.clear s.s_scc_ends;
  s.s_lo <- lo;
  s.s_hi <- hi;
  if Array.length s.s_res < hi - lo then
    s.s_res <- Array.make (max 16 (hi - lo)) Lvalset.empty;
  for k = lo to hi - 1 do
    (* no unification runs during a fan-out, so the de-skip is stable *)
    let node = deskip t roots.(k) in
    s.s_queries <- s.s_queries + 1;
    if s.s_mark.(node) = s.s_stamp then begin
      s.s_cache_hits <- s.s_cache_hits + 1;
      s.s_res.(k - lo) <- s.s_result.(node)
    end
    else begin
      tarjan_ro t s node;
      s.s_res.(k - lo) <- s.s_result.(node)
    end
  done

let commit_scratches t roots scratches =
  (* 1. replay the recorded cycles in scratch-then-discovery order —
     the one mutating step, deterministic because the order never
     depends on domain scheduling *)
  Array.iter
    (fun s ->
      let start = ref 0 in
      for c = 0 to Dynarr.length s.s_scc_ends - 1 do
        let stop = Dynarr.get s.s_scc_ends c in
        let rep = deskip t (Dynarr.get s.s_scc_buf !start) in
        for k = !start + 1 to stop - 1 do
          let m = deskip t (Dynarr.get s.s_scc_buf k) in
          if m <> rep then unify_into t m rep
        done;
        start := stop
      done)
    scratches;
  (* 2. install the roots' results into the shared pass cache,
     re-interned into the shared pool so later sequential queries share
     them physically.  First scratch to claim a (post-unification)
     representative wins — again scratch order, not domain order. *)
  let b = Dynarr.create ~capacity:256 () in
  Array.iter
    (fun s ->
      for k = s.s_lo to s.s_hi - 1 do
        let node = deskip t roots.(k) in
        if t.mark.(node) <> t.stamp then begin
          Dynarr.clear b;
          Lvalset.iter (fun z -> Dynarr.push b z) s.s_res.(k - s.s_lo);
          let set = Lvalset.of_dyn t.pool b.Dynarr.data (Dynarr.length b) in
          t.mark.(node) <- t.stamp;
          t.result.(node) <- set
        end
      done;
      t.n_queries <- t.n_queries + s.s_queries;
      t.n_visits <- t.n_visits + s.s_visits;
      t.n_cache_hits <- t.n_cache_hits + s.s_cache_hits;
      s.s_queries <- 0;
      s.s_visits <- 0;
      s.s_cache_hits <- 0)
    scratches

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  nodes : int;
  edges : int;
  unified : int;
  queries : int;
  visits : int;
  cache_hits : int;
  pool_hits : int;
  pool_misses : int;
  pool_small : int;
  pool_dense : int;
}

(* The structural counters ([nodes], [edges], [unified]) mirror the live
   graph and are monotonic over its lifetime; the query-side counters
   ([queries], [visits], [cache_hits]) are monotonic between calls to
   [reset_stats].  Invariants (see the .mli): cache_hits <= queries,
   unified <= nodes, and visits >= queries - cache_hits. *)
let stats t =
  let p = Lvalset.pool_stats t.pool in
  {
    nodes = t.n;
    edges = t.n_edges;
    unified = t.n_unified;
    queries = t.n_queries;
    visits = t.n_visits;
    cache_hits = t.n_cache_hits;
    pool_hits = p.Lvalset.p_hits;
    pool_misses = p.Lvalset.p_misses;
    pool_small = p.Lvalset.p_small_sets;
    pool_dense = p.Lvalset.p_dense_sets;
  }

(** Zero the query-side counters ([queries], [visits], [cache_hits]).
    The structural counters describe the graph itself and are not
    resettable. *)
let reset_stats t =
  t.n_queries <- 0;
  t.n_visits <- 0;
  t.n_cache_hits <- 0

(** Publish a stats record into the metrics registry under
    [analyze.pretrans.*] (graph/query counters) and [analyze.pool.*]
    (lval-set sharing-pool counters). *)
let publish_stats ?reg (s : stats) =
  let set k v = Cla_obs.Metrics.set ?reg ("analyze.pretrans." ^ k) v in
  set "nodes" s.nodes;
  set "edges" s.edges;
  set "unified" s.unified;
  set "queries" s.queries;
  set "visits" s.visits;
  set "cache_hits" s.cache_hits;
  let setp k v = Cla_obs.Metrics.set ?reg ("analyze.pool." ^ k) v in
  setp "hits" s.pool_hits;
  setp "misses" s.pool_misses;
  setp "small_sets" s.pool_small;
  setp "dense_sets" s.pool_dense
