(** Baseline: subset-based points-to analysis over bit vectors — the
    paper mentions "an implementation based on bit-vectors" among the
    analyses built on the CLA substrate (Section 4).

    The location space is compressed to the address-taken objects; the
    solver iterates all constraints to a fixpoint.  Simple and a useful
    differential oracle for the pre-transitive solver. *)

(** [deadline]/[cancel] are polled at every fixpoint round and every few
    hundred constraint applications, aborting with a typed
    {!Cla_resilience.Deadline.Timed_out} / {!Cla_resilience.Cancel.Cancelled}.

    [pool] (width ≥ 2) runs each round row-parallel: copy/load
    constraints write only their destination row, so they are grouped
    by destination and partitioned across the pool's domains with
    per-domain dirty bitmaps merged at the pass barrier; store
    constraints and indirect calls, which write rows they do not own,
    run single-threaded after the barrier.  The iteration converges to
    the same unique least fixpoint, so the returned {!Solution} is
    byte-identical to a sequential solve — round counts may differ,
    the answer may not.  Omitting [pool] (or passing a width-1 pool)
    runs the sequential baseline. *)
val solve :
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  ?pool:Cla_par.Pool.t ->
  Objfile.view ->
  Solution.t
