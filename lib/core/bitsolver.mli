(** Baseline: subset-based points-to analysis over bit vectors — the
    paper mentions "an implementation based on bit-vectors" among the
    analyses built on the CLA substrate (Section 4).

    The location space is compressed to the address-taken objects; the
    solver iterates all constraints to a fixpoint.  Simple and a useful
    differential oracle for the pre-transitive solver. *)

(** [deadline]/[cancel] are polled at every fixpoint round and every few
    hundred constraint applications, aborting with a typed
    {!Cla_resilience.Deadline.Timed_out} / {!Cla_resilience.Cancel.Cancelled}. *)
val solve :
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  Objfile.view ->
  Solution.t
