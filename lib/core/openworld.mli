(** Open-world havoc synthesis: make a linked database sound for
    incomplete programs (PIP-style).

    A single {e blob} abstract location absorbs and re-emits every
    pointer that escapes the analyzed fragment: arguments to
    declared-but-undefined functions, their results, and — since missing
    code can name any file-scope object — the address, contents and
    stores of every global object and the designator of every function,
    as soon as anything at all is missing.  Everything synthesized is an
    ordinary prim /
    fundef / indirect record in the normal sections, so every solver,
    provenance printing and the degradation ladder treat blob and havoc
    edges exactly like source-level ones.  The {!Objfile.ow} summary
    attached to the database records what was synthesized and why. *)

(** Parameters the unknown external caller havocs on escaped callbacks;
    callbacks with more parameters keep the extras unhavocked. *)
val havoc_arity : int

type report = {
  undefined : string list;  (** declared-but-undefined functions, sorted *)
  escaping : int list;
      (** objects the missing code can name: every [Global] object,
          file-scope static, struct-field object and [Func] designator,
          once anything at all is missing *)
}

(** Find what escapes a linked database.  Escape is all-or-nothing: one
    undefined function (or one extern object no unit defines) makes
    every file-scope object (extern or static), every struct-field
    object (field-based mode shares one object per field across all
    instances) and every function designator escape, because the
    missing code could name any of them directly (DESIGN.md explains
    why this coarseness is what makes the deletion gate's ⊇ property
    hold). *)
val detect : Objfile.db -> report

(** Rebuild the database with the blob location and the report's havoc
    constraints baked into the ordinary sections, and the open-world
    summary attached.  Raises [Invalid_argument] if the database already
    carries a summary. *)
val synthesize : Objfile.db -> report -> Objfile.db
