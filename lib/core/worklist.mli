(** Baseline: Andersen's analysis with an explicitly transitively-closed
    points-to representation and difference propagation — the style of
    solver the paper improves on.  Points-to sets are enumerated per node
    and every element flows along every copy edge: the O(n·E) propagation
    cost the pre-transitive graph avoids (Section 5).

    Cross-checked against the pre-transitive solver by property tests —
    the two must produce identical solutions. *)

(** [deadline]/[cancel] are polled every few hundred worklist pops and
    abort with a typed
    {!Cla_resilience.Deadline.Timed_out} / {!Cla_resilience.Cancel.Cancelled}. *)
val solve :
  ?deadline:Cla_resilience.Deadline.t ->
  ?cancel:Cla_resilience.Cancel.t ->
  Objfile.view ->
  Solution.t
