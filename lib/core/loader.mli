(** Demand loader over a linked object-file view (the analyze phase's I/O
    layer, Section 4).

    The static section is always loaded; dynamic blocks are decoded only
    when the analysis asks, and decoded records may be discarded and
    re-read later.  The loader keeps Table 3's accounting: assignments
    loaded, assignments retained in core, assignments in the file.

    With [~budget], retention is bounded: blocks holding retained
    assignments are tracked in LRU order and discarded — with an
    [on_evict] notification — whenever a [retain] would push the in-core
    total past the budget.  The analysis re-loads discarded blocks on
    demand (the paper's discard-and-re-load strategy, Section 6). *)

type t

(** [create ?budget view].  [budget] is the maximum number of retained
    assignments kept in core; omitted means unbounded (the seed
    behavior).  A budget smaller than a single block's retention cannot
    be honored — the lone block is never evicted mid-retention. *)
val create : ?budget:int -> Objfile.view -> t

(** Install the callback invoked with a block's object id when its
    retained assignments are discarded to stay within the budget. *)
val set_on_evict : t -> (int -> unit) -> unit

val budget : t -> int option

(** [true] while the block of [src] holds retained assignments (retained
    and not evicted since). *)
val is_retained : t -> int -> bool

(** The address-of assignments — always read, counted as loaded. *)
val statics : t -> Objfile.prim_rec array

(** Decode the dynamic block of a variable (the assignments in which it is
    the source).  Each call re-reads the underlying bytes; repeat calls
    count as re-loads (the load-and-throw-away strategy). *)
val block : t -> int -> Objfile.prim_rec list

(** Record that [n] decoded assignments of the block of [src] are being
    kept in memory (complex assignments are retained; [x = y] and
    [x = &y] are discarded after use, Section 6).  May evict
    least-recently-used blocks — never [src] itself — to honor the
    budget. *)
val retain : t -> src:int -> int -> unit

type stats = {
  s_in_core : int;  (** assignments retained in memory *)
  s_loaded : int;  (** assignments decoded from the file *)
  s_in_file : int;  (** total assignments in the database *)
  s_reloads : int;  (** blocks decoded again after a discard *)
  s_evictions : int;  (** blocks discarded to stay within the budget *)
}

val stats : t -> stats

(** Publish a stats record into the metrics registry (default
    {!Cla_obs.Metrics.default}) under [load.blocks.*] — Table 3's
    block-residency accounting — plus [load.evictions]. *)
val publish_stats : ?reg:Cla_obs.Metrics.t -> stats -> unit

(** Open a database from bytes with the per-section CRC sweep fanned
    out across a domain pool, instead of lazily at first section open.
    Raises {!Binio.Corrupt} on a bad header or section, exactly like
    {!Objfile.view_of_string}; a corrupt section cancels the remaining
    in-flight checksums. *)
val view_par : pool:Cla_par.Pool.t -> string -> Objfile.view

(** Like {!Objfile.load_result}, but verifying section checksums across
    the pool. *)
val load_file_par : pool:Cla_par.Pool.t -> string -> (Objfile.view, Diag.t) result

(** Like {!Objfile.load_result} through a process-wide path-keyed cache.
    Every probe revalidates the cached view against the file's current
    (size, mtime): an untouched file is served from memory and counted
    in [load.revalidations]; a rewritten file is reloaded and the entry
    replaced.  Thread-safe.  This is the object-file side of the watch /
    incremental path ([cla serve --watch]). *)
val load_file_cached : string -> (Objfile.view, Diag.t) result

(** Operations through which points-to information survives ([+], [-],
    casts, [?:]); everything else is skipped by the points-to loader
    ("non-pointer arithmetic assignments are usually ignored"). *)
val pointer_relevant_op : string -> bool

val relevant_to_points_to : Objfile.prim_rec -> bool
