(** Structured diagnostics for the compile-link-analyze pipeline.

    Each phase records what went wrong — severity, phase, offending
    file, source location, message — instead of aborting the run with a
    raw exception, so keep-going compilation and corrupt-database
    recovery are possible.  Errors are mirrored into the metrics
    registry ([compile.errors], [link.errors], [load.corrupt],
    [analyze.errors]). *)

open Cla_ir

type severity = Error | Warning

type phase = Compile | Link | Load | Analyze

type t = {
  severity : severity;
  phase : phase;
  file : string option;  (** offending source or object file *)
  loc : Loc.t option;
  message : string;
}

(** Raised by entry points that cannot return a [result]; the CLI guard
    renders it as a one-line diagnostic with a distinct exit code. *)
exception Fail of t

val phase_name : phase -> string

(** The metrics-registry counter bumped when an error in this phase is
    recorded ([Load] errors are corruption: [load.corrupt]). *)
val metric_of_phase : phase -> string

val error : ?file:string -> ?loc:Loc.t -> phase:phase -> string -> t
val warning : ?file:string -> ?loc:Loc.t -> phase:phase -> string -> t

(** Raise {!Fail} with a fresh error diagnostic. *)
val fail : ?file:string -> ?loc:Loc.t -> phase:phase -> string -> 'a

(** One-line rendering: [FILE:LINE:COL: PHASE error: MESSAGE]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Collector (keep-going mode)} *)

(** Accumulates diagnostics across a multi-input run. *)
type collector

val collector : unit -> collector

(** Record a diagnostic; errors bump the phase counter in the default
    metrics registry. *)
val add : collector -> t -> unit

(** Diagnostics in recording order. *)
val to_list : collector -> t list

val error_count : collector -> int

(** {1 Exception capture} *)

(** Classify an exception as an input-level failure of [phase]:
    front-end parse/cpp/lex errors, {!Binio.Corrupt}, {!Fail},
    [Sys_error].  [None] means an internal error that should escape. *)
val diag_of_exn : ?file:string -> phase:phase -> exn -> t option

(** Run [f], turning input-level exceptions into [Error d]; internal
    errors still escape. *)
val capture : ?file:string -> phase:phase -> (unit -> 'a) -> ('a, t) result

(** {1 CLI exit codes} *)

val exit_ok : int  (** 0 *)

val exit_input : int  (** 2 — malformed source or corrupt database *)

val exit_internal : int
(** 3 — unexpected internal failure.  Also the strict-link policy's
    verdict on an incomplete program: `cla link` without [--open-world]
    raises a [Link]-phase {!Fail} naming the undefined functions, so a
    build that silently lost a translation unit stops the pipeline
    instead of producing a database whose analysis would be unsound.
    Re-link with [--open-world] to accept the incompleteness and havoc
    the missing code (exit 0). *)

val exit_deadline : int
(** 4 — the analysis deadline expired (or a served query was refused
    for capacity) and no fallback was allowed to answer *)

val exit_usage : int  (** 124 — cmdliner usage error, unchanged *)
