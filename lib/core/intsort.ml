(** Monomorphic int-prefix sorting: insertion sort for the short scratch
    buffers the solver usually sees, introsort beyond that. *)

(* Below this length, insertion sort beats any partitioning scheme (the
   scratch buffers [Lvalset.of_dyn] sees are mostly this short). *)
let insertion_cutoff = 24

let insertion (a : int array) lo hi =
  for i = lo + 1 to hi do
    let x = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get a !j > x do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) x
  done

(* Binary-heap sort on [a.(lo..hi)] — the depth-limit fallback that
   bounds the worst case at O(n log n). *)
let heapsort (a : int array) lo hi =
  let n = hi - lo + 1 in
  let get i = Array.unsafe_get a (lo + i) in
  let set i x = Array.unsafe_set a (lo + i) x in
  let sift_down root last =
    let x = get root in
    let i = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !i) + 1 in
      if child > last then continue := false
      else begin
        let child =
          if child + 1 <= last && get (child + 1) > get child then child + 1
          else child
        in
        if get child <= x then continue := false
        else begin
          set !i (get child);
          i := child
        end
      end
    done;
    set !i x
  in
  for root = (n / 2) - 1 downto 0 do
    sift_down root (n - 1)
  done;
  for last = n - 1 downto 1 do
    let x = get last in
    set last (get 0);
    set 0 x;
    sift_down 0 (last - 1)
  done

let rec intro (a : int array) lo hi depth =
  if hi - lo + 1 <= insertion_cutoff then insertion a lo hi
  else if depth = 0 then heapsort a lo hi
  else begin
    (* median of three as the pivot, stored at [lo] *)
    let mid = lo + ((hi - lo) / 2) in
    let swap i j =
      let x = Array.unsafe_get a i in
      Array.unsafe_set a i (Array.unsafe_get a j);
      Array.unsafe_set a j x
    in
    if Array.unsafe_get a mid < Array.unsafe_get a lo then swap mid lo;
    if Array.unsafe_get a hi < Array.unsafe_get a lo then swap hi lo;
    if Array.unsafe_get a hi < Array.unsafe_get a mid then swap hi mid;
    swap lo mid;
    let pivot = Array.unsafe_get a lo in
    let i = ref lo and j = ref (hi + 1) in
    let continue = ref true in
    while !continue do
      incr i;
      while !i <= hi && Array.unsafe_get a !i < pivot do incr i done;
      decr j;
      while Array.unsafe_get a !j > pivot do decr j done;
      if !i >= !j then continue := false else swap !i !j
    done;
    swap lo !j;
    (* recurse into the smaller side, loop on the larger (bounded stack) *)
    let j = !j in
    if j - lo < hi - j then begin
      intro a lo (j - 1) (depth - 1);
      intro a (j + 1) hi (depth - 1)
    end
    else begin
      intro a (j + 1) hi (depth - 1);
      intro a lo (j - 1) (depth - 1)
    end
  end

let sort (a : int array) len =
  if len < 0 || len > Array.length a then invalid_arg "Intsort.sort";
  if len > 1 then begin
    (* depth limit ~ 2*log2 len, the classic introsort bound *)
    let depth = ref 0 in
    let n = ref len in
    while !n > 0 do
      incr depth;
      n := !n lsr 1
    done;
    intro a 0 (len - 1) (2 * !depth)
  end
