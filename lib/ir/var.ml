(** Abstract objects ("variables") tracked by the analyses.

    A variable is anything that can hold or be a pointer value: source
    variables, struct fields (in the field-based mode every field of every
    struct definition becomes one variable, Section 3), heap-allocation
    sites, functions themselves (targets of function pointers), the
    standardized argument/return variables [f@i]/[f@ret] of Section 4, and
    compiler temporaries introduced while flattening complex expressions. *)

type kind =
  | Global  (** file-scope variable with external linkage *)
  | Filelocal  (** [static] variable, function local, or parameter *)
  | Temp  (** temporary introduced by the normalizer *)
  | Field  (** struct/union field object; [name] is ["S.f"] *)
  | Heap  (** heap allocation site; one per static occurrence of malloc *)
  | Func  (** a function, as an object function pointers can denote *)
  | Arg of int  (** standardized i-th argument (1-based) of function [name] *)
  | Ret  (** standardized return variable of function [name] *)

(** [Extern] variables are merged by name across object files by the linker;
    [Intern] variables are private to their translation unit. *)
type linkage = Extern | Intern

type t = {
  uid : int;  (** identity within one translation unit (assigned by {!Vartab}) *)
  name : string;  (** source-level name, or synthesized name for temps/heap *)
  kind : kind;
  linkage : linkage;
  typ : string;  (** pretty-printed declared type, for dependence reports *)
  loc : Loc.t;  (** declaration site *)
  owner : string;
      (** enclosing function for locals — the paper's object files record
          "for each local variable ... the function in which it is defined"
          to support advanced searches and context-sensitivity experiments *)
  mutable defined : bool;
      (** [false] while the unit has only seen extern declarations of the
          object — the linker's open-world mode uses this to find externs
          whose definition lives outside the analyzed fragment *)
}

let uid v = v.uid
let name v = v.name
let kind v = v.kind
let linkage v = v.linkage
let owner v = v.owner
let defined v = v.defined
let mark_defined v = v.defined <- true

let kind_tag = function
  | Global -> "G"
  | Filelocal -> "L"
  | Temp -> "T"
  | Field -> "F"
  | Heap -> "H"
  | Func -> "N"
  | Arg i -> "A" ^ string_of_int i
  | Ret -> "R"

(* The [scope] argument disambiguates file-local names ("f::x" vs "g::x");
   it is empty for every other kind. *)
let key ?(scope = "") kind name =
  match kind with
  | Filelocal -> "L:" ^ scope ^ ":" ^ name
  | k -> kind_tag k ^ ":" ^ name

(** Display name used in analysis output: [f@2] for arguments, [f@ret] for
    returns, the plain name otherwise. *)
let display v =
  match v.kind with
  | Arg 0 -> v.name ^ "@..."  (* the varargs bucket of a variadic function *)
  | Arg i -> Fmt.str "%s@%d" v.name i
  | Ret -> v.name ^ "@ret"
  | _ -> v.name

let equal a b = a.uid = b.uid
let compare a b = Int.compare a.uid b.uid
let hash a = a.uid

let pp ppf v = Fmt.string ppf (display v)

(* Figure 1 prints objects as "w/short <eg1.c:3>". *)
let pp_qualified ppf v =
  if v.typ = "" then Fmt.pf ppf "%s %a" (display v) Loc.pp v.loc
  else Fmt.pf ppf "%s/%s %a" (display v) v.typ Loc.pp v.loc

let to_string v = Fmt.str "%a" pp v
