(** Per-translation-unit variable table.

    Interns variables by their canonical key so that every occurrence of the
    same source object maps to one {!Var.t} with a unit-local [uid].  The
    compile phase writes the table into the object file; the linker merges
    [Extern] entries by key. *)

type t = {
  by_key : (string, Var.t) Hashtbl.t;
  mutable vars : Var.t list;  (* in reverse uid order *)
  mutable next : int;
  mutable ntemp : int;
}

let create () = { by_key = Hashtbl.create 512; vars = []; next = 0; ntemp = 0 }
let size t = t.next

(** [intern t ~scope ~kind ~name] returns the existing variable with the
    same canonical key, or creates one.  [typ] and [loc] are recorded on
    first creation only (the declaration wins over later uses). *)
let intern ?(scope = "") ?(typ = "") ?(loc = Loc.none)
    ?(linkage : Var.linkage option) ?(defined = true) t ~kind ~name () =
  let key = Var.key ~scope kind name in
  match Hashtbl.find_opt t.by_key key with
  | Some v ->
      (* definitions are sticky: a later definition upgrades an object
         first seen as an extern declaration, never the other way round *)
      if defined then Var.mark_defined v;
      v
  | None ->
      let linkage =
        match linkage with
        | Some l -> l
        | None -> (
            match (kind : Var.kind) with
            | Global | Field | Func | Arg _ | Ret -> Var.Extern
            | Filelocal | Temp | Heap -> Var.Intern)
      in
      let v =
        { Var.uid = t.next; name; kind; linkage; typ; loc; owner = scope;
          defined }
      in
      t.next <- t.next + 1;
      Hashtbl.add t.by_key key v;
      t.vars <- v :: t.vars;
      v

(** Fresh compiler temporary; never aliases an existing variable. *)
let fresh_temp ?(loc = Loc.none) t =
  let n = t.ntemp in
  t.ntemp <- n + 1;
  intern t ~kind:Temp ~name:(Fmt.str "#%d" n) ~loc ()

let find_opt ?(scope = "") t ~kind ~name =
  Hashtbl.find_opt t.by_key (Var.key ~scope kind name)

(** All variables in increasing [uid] order. *)
let to_array t =
  let a = Array.make t.next None in
  List.iter (fun v -> a.(Var.uid v) <- Some v) t.vars;
  Array.map
    (function Some v -> v | None -> invalid_arg "Vartab.to_array: hole")
    a

let iter f t = List.iter f (List.rev t.vars)
