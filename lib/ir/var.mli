(** Abstract objects ("variables") tracked by the analyses: source
    variables, struct fields (one per field of each struct definition in
    field-based mode), heap-allocation sites, functions themselves, and
    the standardized argument/return variables [f@i] / [f@ret] of
    Section 4. *)

type kind =
  | Global  (** file-scope variable with external linkage *)
  | Filelocal  (** [static] variable, function local, or parameter *)
  | Temp  (** temporary introduced by the normalizer *)
  | Field  (** struct/union field object; the name is ["S.f"] *)
  | Heap  (** heap allocation site; one per static occurrence of malloc *)
  | Func  (** a function, as an object function pointers can denote *)
  | Arg of int  (** standardized i-th argument (1-based) of a function *)
  | Ret  (** standardized return variable of a function *)

(** [Extern] objects are merged by canonical key across object files by
    the linker; [Intern] objects are private to their translation unit. *)
type linkage = Extern | Intern

type t = {
  uid : int;  (** identity within one translation unit *)
  name : string;
  kind : kind;
  linkage : linkage;
  typ : string;  (** pretty-printed declared type, for dependence reports *)
  loc : Loc.t;  (** declaration site *)
  owner : string;  (** enclosing function for locals, or [""] *)
  mutable defined : bool;
      (** [false] while the unit has only seen extern declarations — the
          open-world linker uses this to find escaping externs *)
}

val uid : t -> int
val name : t -> string
val kind : t -> kind
val linkage : t -> linkage
val owner : t -> string
val defined : t -> bool

(** Definitions are sticky: once a unit defines the object, later extern
    declarations do not un-define it. *)
val mark_defined : t -> unit

(** Canonical linking key: two extern objects with the same key are the
    same object.  [scope] disambiguates file-local names. *)
val key : ?scope:string -> kind -> string -> string

(** Display name: [f@2] for arguments ([f@...] for the [Arg 0] varargs
    bucket), [f@ret] for returns, the plain name otherwise. *)
val display : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Figure 1's qualified form: [w/short <eg1.c:3>]. *)
val pp_qualified : Format.formatter -> t -> unit

val to_string : t -> string
