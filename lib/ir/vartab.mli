(** Per-translation-unit variable table: interns variables by canonical
    key so every occurrence of a source object maps to one {!Var.t} with
    a unit-local uid.  The compile phase serializes the table; the linker
    merges [Extern] entries by key. *)

type t

val create : unit -> t
val size : t -> int

(** Return the existing variable with the same canonical key, or create
    one.  [typ] and [loc] are recorded on first creation only; [linkage]
    defaults by kind (globals/fields/functions/args/rets extern, the rest
    intern).  [defined] (default [true]) marks whether this occurrence
    defines the object; definitions are sticky — an extern declaration
    ([defined:false]) never downgrades an object already defined. *)
val intern :
  ?scope:string ->
  ?typ:string ->
  ?loc:Loc.t ->
  ?linkage:Var.linkage ->
  ?defined:bool ->
  t ->
  kind:Var.kind ->
  name:string ->
  unit ->
  Var.t

(** Fresh compiler temporary; never aliases an existing variable. *)
val fresh_temp : ?loc:Loc.t -> t -> Var.t

val find_opt : ?scope:string -> t -> kind:Var.kind -> name:string -> Var.t option

(** All variables in increasing uid order. *)
val to_array : t -> Var.t array

val iter : (Var.t -> unit) -> t -> unit
