/* Fuzzer regression: multi-level array decay.
   Arrays are index-independent — arr[i] denotes the object arr — and
   that must survive nesting: m[i][j], m[i] and m all denote the
   object m, so a store through a decayed row pointer lands in the
   same object as a direct element store.  Inner rows used to decay
   to a dropped temporary. */
int g0, g1;
int *arr[3];
int *m[2][2];

void start(void) {
  int **row;
  arr[1] = &g0;
  m[0][1] = &g1;
  row = m[1];
  row[0] = &g0;
}
