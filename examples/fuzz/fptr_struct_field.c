/* Fuzzer regression: function pointers through struct fields.
   Field-based analysis keys one object per (struct, field) — "S.h0"
   here — shared by every instance, so both the plain-member store and
   the indirect calls through s and sp must meet at that object.  The
   frontend used to drop indirect calls whose callee was a field
   access rather than a bare identifier. */
int g0;

struct S {
  void (*h0)(int *);
};

void f0(int *p) { *p = 0; }

void start(void) {
  struct S s;
  struct S *sp = &s;
  s.h0 = f0;
  (*sp->h0)(&g0);
  sp->h0(&g0);
}
