/* Fuzzer regression: varargs call sites.
   Arguments past a callee's fixed arity land in its varargs bucket
   v0@...; va_start aims ap at the bucket and va_arg loads through it,
   so &g0 and &g1 both flow to t and back out through v0's return.
   The call-site copy into the bucket used to be dropped. */
int g0, g1;
int *t0;

int *v0(int n, ...) {
  __builtin_va_list ap;
  int *t;
  __builtin_va_start(ap, n);
  t = __builtin_va_arg(ap, int *);
  __builtin_va_end(ap);
  return t;
}

void start(void) { t0 = v0(0, &g0, &g1); }
