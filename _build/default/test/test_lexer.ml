(* Tests for the C lexer: token classification, literals, positions, and
   the line markers the preprocessor emits. *)

open Cla_cfront
module T = Ctoken

let toks src =
  (* drop the trailing EOF for compact expected lists *)
  match List.rev (Clexer.tokens_of_string src) with
  | T.EOF :: rest -> List.rev rest
  | l -> List.rev l

let tok = Alcotest.testable (fun ppf t -> Fmt.string ppf (T.to_string t)) T.equal
let check_toks name expected src = Alcotest.(check (list tok)) name expected (toks src)

let test_keywords () =
  check_toks "keywords"
    [ T.KW_INT; T.KW_STATIC; T.KW_STRUCT; T.KW_RETURN; T.KW_WHILE ]
    "int static struct return while";
  (* GNU spellings map to standard keywords *)
  check_toks "gnu alt spellings" [ T.KW_CONST; T.KW_INLINE; T.KW_SIGNED ]
    "__const __inline__ __signed__"

let test_identifiers () =
  check_toks "idents"
    [ T.IDENT "x"; T.IDENT "_y"; T.IDENT "z123"; T.IDENT "intx" ]
    "x _y z123 intx"

let test_int_literals () =
  (match toks "42 0x1F 017 42u 42UL" with
  | [ T.INTLIT (a, _); T.INTLIT (b, _); T.INTLIT (c, _); T.INTLIT (d, _); T.INTLIT (e, _) ] ->
      Alcotest.(check int64) "dec" 42L a;
      Alcotest.(check int64) "hex" 31L b;
      Alcotest.(check int64) "oct-ish" 17L c;
      (* note: we keep C89 octal spelling but parse the digits decimally
         through Int64.of_string's 0-prefix handling *)
      ignore c;
      Alcotest.(check int64) "suffix u" 42L d;
      Alcotest.(check int64) "suffix ul" 42L e
  | _ -> Alcotest.fail "wrong int literal tokens");
  ()

let test_float_literals () =
  check_toks "floats"
    [ T.FLOATLIT "1.5"; T.FLOATLIT "2e10"; T.FLOATLIT ".5f"; T.FLOATLIT "3.14159" ]
    "1.5 2e10 .5f 3.14159"

let test_char_literals () =
  (match toks "'a' '\\n' '\\0' '\\\\'" with
  | [ T.CHARLIT a; T.CHARLIT n; T.CHARLIT z; T.CHARLIT b ] ->
      Alcotest.(check int) "a" 97 a;
      Alcotest.(check int) "newline" 10 n;
      Alcotest.(check int) "nul" 0 z;
      Alcotest.(check int) "backslash" 92 b
  | _ -> Alcotest.fail "wrong char literal tokens")

let test_string_literals () =
  (match toks {|"hello" "with \"quotes\"" "tab\there"|} with
  | [ T.STRLIT a; T.STRLIT b; T.STRLIT c ] ->
      Alcotest.(check string) "plain" "hello" a;
      Alcotest.(check string) "escaped quotes" {|with "quotes"|} b;
      Alcotest.(check string) "escape" "tab\there" c
  | _ -> Alcotest.fail "wrong string tokens")

let test_punctuation () =
  check_toks "multi-char ops"
    [ T.ARROW; T.PLUSPLUS; T.LTLT; T.GTGTEQ; T.ELLIPSIS; T.AMPAMP; T.BANGEQ ]
    "-> ++ << >>= ... && !=";
  check_toks "singles"
    [ T.LPAREN; T.STAR; T.AMP; T.QUESTION; T.COLON; T.RPAREN; T.SEMI ]
    "( * & ? : ) ;"

let test_comments_skipped () =
  check_toks "comments" [ T.KW_INT; T.IDENT "x"; T.SEMI ]
    "int /* c1 */ x; // trailing"

let test_line_marker_positions () =
  let lexbuf = Lexing.from_string "# 10 \"orig.c\"\nint x;\n" in
  Lexing.set_filename lexbuf "pre.i";
  let _int_tok = Clexer.token lexbuf in
  let p = lexbuf.Lexing.lex_curr_p in
  Alcotest.(check string) "file from marker" "orig.c" p.Lexing.pos_fname;
  Alcotest.(check int) "line from marker" 10 p.Lexing.pos_lnum

let test_newline_tracking () =
  let lexbuf = Lexing.from_string "int\nx\n;" in
  ignore (Clexer.token lexbuf);
  ignore (Clexer.token lexbuf);
  Alcotest.(check int) "line 2 after x" 2 lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum

let test_error_on_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Clexer.tokens_of_string "int x @ y;");
       false
     with Clexer.Error _ -> true)

let test_adjacent_tokens () =
  (* maximal munch: a+++b lexes as a ++ + b *)
  check_toks "maximal munch"
    [ T.IDENT "a"; T.PLUSPLUS; T.PLUS; T.IDENT "b" ]
    "a+++b"

let () =
  Alcotest.run "lexer"
    [
      ( "tokens",
        [
          Alcotest.test_case "keywords" `Quick test_keywords;
          Alcotest.test_case "identifiers" `Quick test_identifiers;
          Alcotest.test_case "punctuation" `Quick test_punctuation;
          Alcotest.test_case "maximal munch" `Quick test_adjacent_tokens;
        ] );
      ( "literals",
        [
          Alcotest.test_case "ints" `Quick test_int_literals;
          Alcotest.test_case "floats" `Quick test_float_literals;
          Alcotest.test_case "chars" `Quick test_char_literals;
          Alcotest.test_case "strings" `Quick test_string_literals;
        ] );
      ( "positions",
        [
          Alcotest.test_case "line markers" `Quick test_line_marker_positions;
          Alcotest.test_case "newlines" `Quick test_newline_tracking;
        ] );
      ( "errors",
        [
          Alcotest.test_case "garbage" `Quick test_error_on_garbage;
          Alcotest.test_case "comments" `Quick test_comments_skipped;
        ] );
    ]
