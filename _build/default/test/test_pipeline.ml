(* End-to-end tests: multi-file compile-link-analyze scenarios through the
   public API, covering the paper's worked examples and realistic program
   shapes (linked lists, callbacks, cross-file flows). *)

open Cla_core

let pts_of sol name =
  match Solution.find sol name with
  | Some v ->
      List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol v))
      |> List.sort compare
  | None -> Alcotest.fail ("no variable " ^ name)

let solve sources = Pipeline.points_to (Pipeline.compile_link sources)

(* ------------------------------------------------------------------ *)

let test_figure3_end_to_end () =
  let sol =
    solve [ ("fig3.c", "int x, *y; int **z;\nvoid main(void) { z = &y; *z = &x; }") ]
  in
  Alcotest.(check (list string)) "y" [ "x" ] (pts_of sol "y");
  Alcotest.(check (list string)) "z" [ "y" ] (pts_of sol "z")

let test_section3_field_example () =
  let src =
    "struct S { int *x; int *y; } A, B;\n\
     int z;\n\
     int main(void) { int *p, *q, *r, *s;\n\
     A.x = &z; p = A.x; q = A.y; r = B.x; s = B.y; return 0; }"
  in
  let sol = solve [ ("fields.c", src) ] in
  Alcotest.(check (list string)) "p gets z" [ "z" ] (pts_of sol "p");
  Alcotest.(check (list string)) "q empty" [] (pts_of sol "q");
  Alcotest.(check (list string)) "r gets z (field-based)" [ "z" ] (pts_of sol "r");
  Alcotest.(check (list string)) "s empty" [] (pts_of sol "s")

let test_linked_list () =
  let src =
    {|
struct node { struct node *next; int *payload; };
struct node a, b, c;
int d1, d2;
void build(void) {
  a.next = &b;
  b.next = &c;
  a.payload = &d1;
  c.payload = &d2;
}
struct node *walk(struct node *n) { return n->next; }
int *get(struct node *n) { return n->payload; }
|}
  in
  let sol = solve [ ("list.c", src) ] in
  (* field-based: one "next" object for the whole list type *)
  Alcotest.(check (list string)) "next field" [ "b"; "c" ] (pts_of sol "node.next");
  Alcotest.(check (list string)) "payload field" [ "d1"; "d2" ]
    (pts_of sol "node.payload")

let test_callback_registration () =
  let sources =
    [
      ( "registry.c",
        "typedef void (*cb_t)(int *);\n\
         cb_t registry[8];\n\
         int slot;\n\
         void register_cb(cb_t f) { registry[slot] = f; }\n\
         void fire(int *arg) { (*registry[slot])(arg); }" );
      ( "client.c",
        "typedef void (*cb_t)(int *);\n\
         extern void register_cb(cb_t f);\n\
         int hits;\n\
         void on_event(int *p) { hits = *p; }\n\
         void setup(void) { register_cb(on_event); }" );
    ]
  in
  let view = Pipeline.compile_link sources in
  let sol = Pipeline.points_to view in
  Alcotest.(check (list string)) "registry resolves across files"
    [ "on_event" ] (pts_of sol "registry")

let test_heap_graph () =
  let src =
    {|
extern void *malloc(unsigned long);
struct box { int *inner; };
int v;
struct box *mk(void) {
  struct box *b;
  b = (struct box *)malloc(sizeof(struct box));
  b->inner = &v;
  return b;
}
struct box *owner;
void main(void) { owner = mk(); }
|}
  in
  let sol = solve [ ("heap.c", src) ] in
  (match pts_of sol "owner" with
  | [ h ] ->
      Alcotest.(check bool) "owner points to a heap site" true
        (String.length h >= 6 && String.sub h 0 6 = "malloc")
  | other -> Alcotest.fail (Fmt.str "expected one heap site, got %d" (List.length other)));
  Alcotest.(check (list string)) "inner field set" [ "v" ] (pts_of sol "box.inner")

let test_swap_through_pointers () =
  let src =
    {|
int a, b;
void swap(int **x, int **y) {
  int *tmp;
  tmp = *x;
  *x = *y;
  *y = tmp;
}
int *p, *q;
void main(void) {
  p = &a;
  q = &b;
  swap(&p, &q);
}
|}
  in
  let sol = solve [ ("swap.c", src) ] in
  (* flow-insensitively both end up pointing at both *)
  Alcotest.(check (list string)) "p" [ "a"; "b" ] (pts_of sol "p");
  Alcotest.(check (list string)) "q" [ "a"; "b" ] (pts_of sol "q")

let test_return_flows () =
  let sources =
    [
      ( "lib.c",
        "static int secret;\nint *get_secret(void) { return &secret; }" );
      ( "app.c",
        "extern int *get_secret(void);\n\
         int *leak;\n\
         void main(void) { leak = get_secret(); }" );
    ]
  in
  let sol = solve sources in
  Alcotest.(check (list string)) "return value crosses files" [ "secret" ]
    (pts_of sol "leak")

let test_three_files_diamond () =
  let sources =
    [
      ("top.c", "int *shared;\nint obj;\nvoid init(void) { shared = &obj; }");
      ( "left.c",
        "extern int *shared;\nint *l;\nvoid takel(void) { l = shared; }" );
      ( "right.c",
        "extern int *shared;\nint *r;\nvoid taker(void) { r = shared; }" );
    ]
  in
  let sol = solve sources in
  Alcotest.(check (list string)) "left" [ "obj" ] (pts_of sol "l");
  Alcotest.(check (list string)) "right" [ "obj" ] (pts_of sol "r")

let test_varargs_call_tolerated () =
  let src =
    "int printf(const char *fmt, ...);\n\
     int x;\nvoid main(void) { printf(\"%d\", x); }"
  in
  let sol = solve [ ("va.c", src) ] in
  ignore sol

let test_recursive_function () =
  let src =
    {|
struct t { struct t *kids; };
struct t root, leaf;
struct t *visit(struct t *n) {
  if (n) return visit(n->kids);
  return n;
}
void main(void) { root.kids = &leaf; visit(&root); }
|}
  in
  let view = Pipeline.compile_link [ ("rec.c", src) ] in
  let sol = Pipeline.points_to view in
  (* standardized arg variables are not targets; reach them through the
     function's record *)
  let fd =
    Array.to_list view.Objfile.rfundefs
    |> List.find (fun (f : Objfile.fund_rec) ->
           Solution.var_name sol f.Objfile.ffvar = "visit")
  in
  let arg =
    List.map (Solution.var_name sol)
      (Lvalset.to_list (Solution.points_to sol fd.Objfile.fargs.(0)))
  in
  Alcotest.(check bool)
    (Fmt.str "recursion reaches both nodes: [%s]" (String.concat ";" arg))
    true
    (List.mem "root" arg && List.mem "leaf" arg)

let test_all_algorithms_on_scenario () =
  let src =
    {|
int o1, o2;
int *select(int c, int *a, int *b) { if (c) return a; return b; }
int *res;
void main(int c) { res = select(c, &o1, &o2); }
|}
  in
  let view = Pipeline.compile_link [ ("sel.c", src) ] in
  List.iter
    (fun algo ->
      let sol = Pipeline.points_to ~algorithm:algo view in
      Alcotest.(check (list string))
        (Pipeline.algorithm_name algo)
        [ "o1"; "o2" ] (pts_of sol "res"))
    [ Pipeline.Pretransitive; Pipeline.Worklist; Pipeline.Bitvector ]

let test_cpp_macros_in_pipeline () =
  let src =
    {|
#define DECLARE_PTR(n) int *n
#define TAKE(p, v) p = &v
DECLARE_PTR(gp);
int gv;
void main(void) { TAKE(gp, gv); }
|}
  in
  let sol = solve [ ("mac.c", src) ] in
  Alcotest.(check (list string)) "through macros" [ "gv" ] (pts_of sol "gp")

let () =
  Alcotest.run "pipeline"
    [
      ( "paper examples",
        [
          Alcotest.test_case "figure 3" `Quick test_figure3_end_to_end;
          Alcotest.test_case "section 3 fields" `Quick test_section3_field_example;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "linked list" `Quick test_linked_list;
          Alcotest.test_case "callback registration" `Quick test_callback_registration;
          Alcotest.test_case "heap graph" `Quick test_heap_graph;
          Alcotest.test_case "swap" `Quick test_swap_through_pointers;
          Alcotest.test_case "cross-file returns" `Quick test_return_flows;
          Alcotest.test_case "diamond imports" `Quick test_three_files_diamond;
          Alcotest.test_case "varargs" `Quick test_varargs_call_tolerated;
          Alcotest.test_case "recursion" `Quick test_recursive_function;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "agree on scenario" `Quick test_all_algorithms_on_scenario;
          Alcotest.test_case "macros" `Quick test_cpp_macros_in_pipeline;
        ] );
    ]
